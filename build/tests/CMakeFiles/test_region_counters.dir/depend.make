# Empty dependencies file for test_region_counters.
# This may be replaced when dependencies are built.
