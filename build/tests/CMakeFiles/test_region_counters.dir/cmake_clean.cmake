file(REMOVE_RECURSE
  "CMakeFiles/test_region_counters.dir/test_region_counters.cc.o"
  "CMakeFiles/test_region_counters.dir/test_region_counters.cc.o.d"
  "test_region_counters"
  "test_region_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_region_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
