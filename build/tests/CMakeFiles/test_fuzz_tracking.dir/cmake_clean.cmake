file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_tracking.dir/test_fuzz_tracking.cc.o"
  "CMakeFiles/test_fuzz_tracking.dir/test_fuzz_tracking.cc.o.d"
  "test_fuzz_tracking"
  "test_fuzz_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
