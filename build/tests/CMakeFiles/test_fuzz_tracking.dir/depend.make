# Empty dependencies file for test_fuzz_tracking.
# This may be replaced when dependencies are built.
