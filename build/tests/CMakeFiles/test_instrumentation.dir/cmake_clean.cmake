file(REMOVE_RECURSE
  "CMakeFiles/test_instrumentation.dir/test_instrumentation.cc.o"
  "CMakeFiles/test_instrumentation.dir/test_instrumentation.cc.o.d"
  "test_instrumentation"
  "test_instrumentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
