file(REMOVE_RECURSE
  "CMakeFiles/test_stencil_runtime.dir/test_stencil_runtime.cc.o"
  "CMakeFiles/test_stencil_runtime.dir/test_stencil_runtime.cc.o.d"
  "test_stencil_runtime"
  "test_stencil_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stencil_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
