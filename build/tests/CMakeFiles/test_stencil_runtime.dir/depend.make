# Empty dependencies file for test_stencil_runtime.
# This may be replaced when dependencies are built.
