# Empty compiler generated dependencies file for test_config_env.
# This may be replaced when dependencies are built.
