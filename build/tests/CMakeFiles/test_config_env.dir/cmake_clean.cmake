file(REMOVE_RECURSE
  "CMakeFiles/test_config_env.dir/test_config_env.cc.o"
  "CMakeFiles/test_config_env.dir/test_config_env.cc.o.d"
  "test_config_env"
  "test_config_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
