file(REMOVE_RECURSE
  "CMakeFiles/test_agents.dir/test_agents.cc.o"
  "CMakeFiles/test_agents.dir/test_agents.cc.o.d"
  "test_agents"
  "test_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
