file(REMOVE_RECURSE
  "CMakeFiles/test_packet_model.dir/test_packet_model.cc.o"
  "CMakeFiles/test_packet_model.dir/test_packet_model.cc.o.d"
  "test_packet_model"
  "test_packet_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
