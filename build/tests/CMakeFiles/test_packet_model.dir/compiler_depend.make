# Empty compiler generated dependencies file for test_packet_model.
# This may be replaced when dependencies are built.
