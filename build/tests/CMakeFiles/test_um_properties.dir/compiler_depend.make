# Empty compiler generated dependencies file for test_um_properties.
# This may be replaced when dependencies are built.
