file(REMOVE_RECURSE
  "CMakeFiles/test_um_properties.dir/test_um_properties.cc.o"
  "CMakeFiles/test_um_properties.dir/test_um_properties.cc.o.d"
  "test_um_properties"
  "test_um_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_um_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
