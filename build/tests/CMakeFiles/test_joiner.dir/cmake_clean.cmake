file(REMOVE_RECURSE
  "CMakeFiles/test_joiner.dir/test_joiner.cc.o"
  "CMakeFiles/test_joiner.dir/test_joiner.cc.o.d"
  "test_joiner"
  "test_joiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_joiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
