# Empty compiler generated dependencies file for test_joiner.
# This may be replaced when dependencies are built.
