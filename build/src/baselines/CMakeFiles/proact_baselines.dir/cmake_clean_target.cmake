file(REMOVE_RECURSE
  "libproact_baselines.a"
)
