# Empty dependencies file for proact_baselines.
# This may be replaced when dependencies are built.
