file(REMOVE_RECURSE
  "CMakeFiles/proact_baselines.dir/runner.cc.o"
  "CMakeFiles/proact_baselines.dir/runner.cc.o.d"
  "libproact_baselines.a"
  "libproact_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proact_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
