# CMake generated Testfile for 
# Source directory: /root/repo/src/proact
# Build directory: /root/repo/build/src/proact
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
