
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proact/config.cc" "src/proact/CMakeFiles/proact_core.dir/config.cc.o" "gcc" "src/proact/CMakeFiles/proact_core.dir/config.cc.o.d"
  "/root/repo/src/proact/counters.cc" "src/proact/CMakeFiles/proact_core.dir/counters.cc.o" "gcc" "src/proact/CMakeFiles/proact_core.dir/counters.cc.o.d"
  "/root/repo/src/proact/instrumentation.cc" "src/proact/CMakeFiles/proact_core.dir/instrumentation.cc.o" "gcc" "src/proact/CMakeFiles/proact_core.dir/instrumentation.cc.o.d"
  "/root/repo/src/proact/profiler.cc" "src/proact/CMakeFiles/proact_core.dir/profiler.cc.o" "gcc" "src/proact/CMakeFiles/proact_core.dir/profiler.cc.o.d"
  "/root/repo/src/proact/region.cc" "src/proact/CMakeFiles/proact_core.dir/region.cc.o" "gcc" "src/proact/CMakeFiles/proact_core.dir/region.cc.o.d"
  "/root/repo/src/proact/runtime.cc" "src/proact/CMakeFiles/proact_core.dir/runtime.cc.o" "gcc" "src/proact/CMakeFiles/proact_core.dir/runtime.cc.o.d"
  "/root/repo/src/proact/transfer_agent.cc" "src/proact/CMakeFiles/proact_core.dir/transfer_agent.cc.o" "gcc" "src/proact/CMakeFiles/proact_core.dir/transfer_agent.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/proact_system.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/proact_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/proact_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/proact_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
