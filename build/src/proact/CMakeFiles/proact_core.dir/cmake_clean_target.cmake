file(REMOVE_RECURSE
  "libproact_core.a"
)
