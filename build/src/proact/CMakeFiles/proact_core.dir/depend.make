# Empty dependencies file for proact_core.
# This may be replaced when dependencies are built.
