file(REMOVE_RECURSE
  "CMakeFiles/proact_core.dir/config.cc.o"
  "CMakeFiles/proact_core.dir/config.cc.o.d"
  "CMakeFiles/proact_core.dir/counters.cc.o"
  "CMakeFiles/proact_core.dir/counters.cc.o.d"
  "CMakeFiles/proact_core.dir/instrumentation.cc.o"
  "CMakeFiles/proact_core.dir/instrumentation.cc.o.d"
  "CMakeFiles/proact_core.dir/profiler.cc.o"
  "CMakeFiles/proact_core.dir/profiler.cc.o.d"
  "CMakeFiles/proact_core.dir/region.cc.o"
  "CMakeFiles/proact_core.dir/region.cc.o.d"
  "CMakeFiles/proact_core.dir/runtime.cc.o"
  "CMakeFiles/proact_core.dir/runtime.cc.o.d"
  "CMakeFiles/proact_core.dir/transfer_agent.cc.o"
  "CMakeFiles/proact_core.dir/transfer_agent.cc.o.d"
  "libproact_core.a"
  "libproact_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proact_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
