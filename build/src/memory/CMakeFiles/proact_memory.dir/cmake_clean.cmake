file(REMOVE_RECURSE
  "CMakeFiles/proact_memory.dir/page_table.cc.o"
  "CMakeFiles/proact_memory.dir/page_table.cc.o.d"
  "CMakeFiles/proact_memory.dir/um_driver.cc.o"
  "CMakeFiles/proact_memory.dir/um_driver.cc.o.d"
  "libproact_memory.a"
  "libproact_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proact_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
