# Empty dependencies file for proact_memory.
# This may be replaced when dependencies are built.
