file(REMOVE_RECURSE
  "libproact_memory.a"
)
