file(REMOVE_RECURSE
  "libproact_system.a"
)
