file(REMOVE_RECURSE
  "CMakeFiles/proact_system.dir/multi_gpu_system.cc.o"
  "CMakeFiles/proact_system.dir/multi_gpu_system.cc.o.d"
  "CMakeFiles/proact_system.dir/platform.cc.o"
  "CMakeFiles/proact_system.dir/platform.cc.o.d"
  "libproact_system.a"
  "libproact_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proact_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
