# Empty compiler generated dependencies file for proact_system.
# This may be replaced when dependencies are built.
