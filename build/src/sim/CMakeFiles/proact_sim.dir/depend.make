# Empty dependencies file for proact_sim.
# This may be replaced when dependencies are built.
