file(REMOVE_RECURSE
  "CMakeFiles/proact_sim.dir/channel.cc.o"
  "CMakeFiles/proact_sim.dir/channel.cc.o.d"
  "CMakeFiles/proact_sim.dir/event_queue.cc.o"
  "CMakeFiles/proact_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/proact_sim.dir/logging.cc.o"
  "CMakeFiles/proact_sim.dir/logging.cc.o.d"
  "CMakeFiles/proact_sim.dir/stats.cc.o"
  "CMakeFiles/proact_sim.dir/stats.cc.o.d"
  "CMakeFiles/proact_sim.dir/trace.cc.o"
  "CMakeFiles/proact_sim.dir/trace.cc.o.d"
  "libproact_sim.a"
  "libproact_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proact_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
