file(REMOVE_RECURSE
  "libproact_sim.a"
)
