file(REMOVE_RECURSE
  "CMakeFiles/proact_workloads.dir/als.cc.o"
  "CMakeFiles/proact_workloads.dir/als.cc.o.d"
  "CMakeFiles/proact_workloads.dir/graph.cc.o"
  "CMakeFiles/proact_workloads.dir/graph.cc.o.d"
  "CMakeFiles/proact_workloads.dir/jacobi.cc.o"
  "CMakeFiles/proact_workloads.dir/jacobi.cc.o.d"
  "CMakeFiles/proact_workloads.dir/mbir.cc.o"
  "CMakeFiles/proact_workloads.dir/mbir.cc.o.d"
  "CMakeFiles/proact_workloads.dir/microbench.cc.o"
  "CMakeFiles/proact_workloads.dir/microbench.cc.o.d"
  "CMakeFiles/proact_workloads.dir/pagerank.cc.o"
  "CMakeFiles/proact_workloads.dir/pagerank.cc.o.d"
  "CMakeFiles/proact_workloads.dir/registry.cc.o"
  "CMakeFiles/proact_workloads.dir/registry.cc.o.d"
  "CMakeFiles/proact_workloads.dir/sssp.cc.o"
  "CMakeFiles/proact_workloads.dir/sssp.cc.o.d"
  "CMakeFiles/proact_workloads.dir/workload.cc.o"
  "CMakeFiles/proact_workloads.dir/workload.cc.o.d"
  "libproact_workloads.a"
  "libproact_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proact_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
