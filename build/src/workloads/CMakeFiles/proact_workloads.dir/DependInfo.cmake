
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/als.cc" "src/workloads/CMakeFiles/proact_workloads.dir/als.cc.o" "gcc" "src/workloads/CMakeFiles/proact_workloads.dir/als.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/workloads/CMakeFiles/proact_workloads.dir/graph.cc.o" "gcc" "src/workloads/CMakeFiles/proact_workloads.dir/graph.cc.o.d"
  "/root/repo/src/workloads/jacobi.cc" "src/workloads/CMakeFiles/proact_workloads.dir/jacobi.cc.o" "gcc" "src/workloads/CMakeFiles/proact_workloads.dir/jacobi.cc.o.d"
  "/root/repo/src/workloads/mbir.cc" "src/workloads/CMakeFiles/proact_workloads.dir/mbir.cc.o" "gcc" "src/workloads/CMakeFiles/proact_workloads.dir/mbir.cc.o.d"
  "/root/repo/src/workloads/microbench.cc" "src/workloads/CMakeFiles/proact_workloads.dir/microbench.cc.o" "gcc" "src/workloads/CMakeFiles/proact_workloads.dir/microbench.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/workloads/CMakeFiles/proact_workloads.dir/pagerank.cc.o" "gcc" "src/workloads/CMakeFiles/proact_workloads.dir/pagerank.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/proact_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/proact_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/sssp.cc" "src/workloads/CMakeFiles/proact_workloads.dir/sssp.cc.o" "gcc" "src/workloads/CMakeFiles/proact_workloads.dir/sssp.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/proact_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/proact_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/proact_system.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/proact_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/proact_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/proact_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
