# Empty dependencies file for proact_workloads.
# This may be replaced when dependencies are built.
