file(REMOVE_RECURSE
  "libproact_workloads.a"
)
