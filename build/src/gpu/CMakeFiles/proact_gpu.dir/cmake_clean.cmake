file(REMOVE_RECURSE
  "CMakeFiles/proact_gpu.dir/dma_engine.cc.o"
  "CMakeFiles/proact_gpu.dir/dma_engine.cc.o.d"
  "CMakeFiles/proact_gpu.dir/gpu.cc.o"
  "CMakeFiles/proact_gpu.dir/gpu.cc.o.d"
  "CMakeFiles/proact_gpu.dir/gpu_spec.cc.o"
  "CMakeFiles/proact_gpu.dir/gpu_spec.cc.o.d"
  "libproact_gpu.a"
  "libproact_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proact_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
