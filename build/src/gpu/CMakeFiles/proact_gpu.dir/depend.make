# Empty dependencies file for proact_gpu.
# This may be replaced when dependencies are built.
