file(REMOVE_RECURSE
  "libproact_gpu.a"
)
