file(REMOVE_RECURSE
  "CMakeFiles/proact_collectives.dir/collectives.cc.o"
  "CMakeFiles/proact_collectives.dir/collectives.cc.o.d"
  "libproact_collectives.a"
  "libproact_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proact_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
