# Empty dependencies file for proact_collectives.
# This may be replaced when dependencies are built.
