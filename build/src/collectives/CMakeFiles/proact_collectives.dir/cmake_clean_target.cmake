file(REMOVE_RECURSE
  "libproact_collectives.a"
)
