# Empty dependencies file for proact_harness.
# This may be replaced when dependencies are built.
