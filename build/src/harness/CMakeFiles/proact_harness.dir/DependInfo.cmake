
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/paradigm.cc" "src/harness/CMakeFiles/proact_harness.dir/paradigm.cc.o" "gcc" "src/harness/CMakeFiles/proact_harness.dir/paradigm.cc.o.d"
  "/root/repo/src/harness/session.cc" "src/harness/CMakeFiles/proact_harness.dir/session.cc.o" "gcc" "src/harness/CMakeFiles/proact_harness.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proact/CMakeFiles/proact_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/proact_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/proact_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/proact_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/proact_system.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/proact_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/proact_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/proact_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
