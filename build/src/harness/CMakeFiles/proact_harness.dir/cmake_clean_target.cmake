file(REMOVE_RECURSE
  "libproact_harness.a"
)
