file(REMOVE_RECURSE
  "CMakeFiles/proact_harness.dir/paradigm.cc.o"
  "CMakeFiles/proact_harness.dir/paradigm.cc.o.d"
  "CMakeFiles/proact_harness.dir/session.cc.o"
  "CMakeFiles/proact_harness.dir/session.cc.o.d"
  "libproact_harness.a"
  "libproact_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proact_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
