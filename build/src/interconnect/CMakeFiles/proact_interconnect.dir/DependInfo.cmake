
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interconnect/fabric.cc" "src/interconnect/CMakeFiles/proact_interconnect.dir/fabric.cc.o" "gcc" "src/interconnect/CMakeFiles/proact_interconnect.dir/fabric.cc.o.d"
  "/root/repo/src/interconnect/interconnect.cc" "src/interconnect/CMakeFiles/proact_interconnect.dir/interconnect.cc.o" "gcc" "src/interconnect/CMakeFiles/proact_interconnect.dir/interconnect.cc.o.d"
  "/root/repo/src/interconnect/packet_model.cc" "src/interconnect/CMakeFiles/proact_interconnect.dir/packet_model.cc.o" "gcc" "src/interconnect/CMakeFiles/proact_interconnect.dir/packet_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/proact_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
