# Empty compiler generated dependencies file for proact_interconnect.
# This may be replaced when dependencies are built.
