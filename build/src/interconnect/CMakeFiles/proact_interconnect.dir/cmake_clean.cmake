file(REMOVE_RECURSE
  "CMakeFiles/proact_interconnect.dir/fabric.cc.o"
  "CMakeFiles/proact_interconnect.dir/fabric.cc.o.d"
  "CMakeFiles/proact_interconnect.dir/interconnect.cc.o"
  "CMakeFiles/proact_interconnect.dir/interconnect.cc.o.d"
  "CMakeFiles/proact_interconnect.dir/packet_model.cc.o"
  "CMakeFiles/proact_interconnect.dir/packet_model.cc.o.d"
  "libproact_interconnect.a"
  "libproact_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proact_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
