file(REMOVE_RECURSE
  "libproact_interconnect.a"
)
