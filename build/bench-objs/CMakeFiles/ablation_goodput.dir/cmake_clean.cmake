file(REMOVE_RECURSE
  "../bench/ablation_goodput"
  "../bench/ablation_goodput.pdb"
  "CMakeFiles/ablation_goodput.dir/ablation_goodput.cc.o"
  "CMakeFiles/ablation_goodput.dir/ablation_goodput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
