# Empty compiler generated dependencies file for ablation_goodput.
# This may be replaced when dependencies are built.
