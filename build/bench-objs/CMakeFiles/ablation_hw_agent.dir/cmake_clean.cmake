file(REMOVE_RECURSE
  "../bench/ablation_hw_agent"
  "../bench/ablation_hw_agent.pdb"
  "CMakeFiles/ablation_hw_agent.dir/ablation_hw_agent.cc.o"
  "CMakeFiles/ablation_hw_agent.dir/ablation_hw_agent.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hw_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
