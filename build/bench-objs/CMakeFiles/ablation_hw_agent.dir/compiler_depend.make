# Empty compiler generated dependencies file for ablation_hw_agent.
# This may be replaced when dependencies are built.
