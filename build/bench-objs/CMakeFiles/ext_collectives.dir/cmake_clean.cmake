file(REMOVE_RECURSE
  "../bench/ext_collectives"
  "../bench/ext_collectives.pdb"
  "CMakeFiles/ext_collectives.dir/ext_collectives.cc.o"
  "CMakeFiles/ext_collectives.dir/ext_collectives.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
