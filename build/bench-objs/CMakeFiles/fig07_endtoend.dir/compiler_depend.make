# Empty compiler generated dependencies file for fig07_endtoend.
# This may be replaced when dependencies are built.
