file(REMOVE_RECURSE
  "../bench/fig07_endtoend"
  "../bench/fig07_endtoend.pdb"
  "CMakeFiles/fig07_endtoend.dir/fig07_endtoend.cc.o"
  "CMakeFiles/fig07_endtoend.dir/fig07_endtoend.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
