file(REMOVE_RECURSE
  "../bench/ext_weak_scaling"
  "../bench/ext_weak_scaling.pdb"
  "CMakeFiles/ext_weak_scaling.dir/ext_weak_scaling.cc.o"
  "CMakeFiles/ext_weak_scaling.dir/ext_weak_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
