file(REMOVE_RECURSE
  "../bench/table2_configs"
  "../bench/table2_configs.pdb"
  "CMakeFiles/table2_configs.dir/table2_configs.cc.o"
  "CMakeFiles/table2_configs.dir/table2_configs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
