file(REMOVE_RECURSE
  "../bench/ablation_um_hints"
  "../bench/ablation_um_hints.pdb"
  "CMakeFiles/ablation_um_hints.dir/ablation_um_hints.cc.o"
  "CMakeFiles/ablation_um_hints.dir/ablation_um_hints.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_um_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
