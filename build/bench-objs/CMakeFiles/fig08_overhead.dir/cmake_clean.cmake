file(REMOVE_RECURSE
  "../bench/fig08_overhead"
  "../bench/fig08_overhead.pdb"
  "CMakeFiles/fig08_overhead.dir/fig08_overhead.cc.o"
  "CMakeFiles/fig08_overhead.dir/fig08_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
