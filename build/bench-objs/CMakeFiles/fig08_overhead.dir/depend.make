# Empty dependencies file for fig08_overhead.
# This may be replaced when dependencies are built.
