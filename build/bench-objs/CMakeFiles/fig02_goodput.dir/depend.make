# Empty dependencies file for fig02_goodput.
# This may be replaced when dependencies are built.
