file(REMOVE_RECURSE
  "../bench/fig02_goodput"
  "../bench/fig02_goodput.pdb"
  "CMakeFiles/fig02_goodput.dir/fig02_goodput.cc.o"
  "CMakeFiles/fig02_goodput.dir/fig02_goodput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
