file(REMOVE_RECURSE
  "../bench/fig01_timeline"
  "../bench/fig01_timeline.pdb"
  "CMakeFiles/fig01_timeline.dir/fig01_timeline.cc.o"
  "CMakeFiles/fig01_timeline.dir/fig01_timeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
