# Empty dependencies file for fig01_timeline.
# This may be replaced when dependencies are built.
