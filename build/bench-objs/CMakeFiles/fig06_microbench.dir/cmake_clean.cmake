file(REMOVE_RECURSE
  "../bench/fig06_microbench"
  "../bench/fig06_microbench.pdb"
  "CMakeFiles/fig06_microbench.dir/fig06_microbench.cc.o"
  "CMakeFiles/fig06_microbench.dir/fig06_microbench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
