# Empty dependencies file for fig06_microbench.
# This may be replaced when dependencies are built.
