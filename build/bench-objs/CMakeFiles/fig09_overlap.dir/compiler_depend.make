# Empty compiler generated dependencies file for fig09_overlap.
# This may be replaced when dependencies are built.
