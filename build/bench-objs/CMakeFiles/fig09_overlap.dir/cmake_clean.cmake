file(REMOVE_RECURSE
  "../bench/fig09_overlap"
  "../bench/fig09_overlap.pdb"
  "CMakeFiles/fig09_overlap.dir/fig09_overlap.cc.o"
  "CMakeFiles/fig09_overlap.dir/fig09_overlap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
