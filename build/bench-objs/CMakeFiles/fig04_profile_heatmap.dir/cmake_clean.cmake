file(REMOVE_RECURSE
  "../bench/fig04_profile_heatmap"
  "../bench/fig04_profile_heatmap.pdb"
  "CMakeFiles/fig04_profile_heatmap.dir/fig04_profile_heatmap.cc.o"
  "CMakeFiles/fig04_profile_heatmap.dir/fig04_profile_heatmap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_profile_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
