/**
 * @file
 * Shared machinery for the paper-reproduction harnesses.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * Runs execute in timing-only mode (kernels report footprints without
 * doing the math — timing is independent of data values by
 * construction), with workload footprints scaled by
 * PROACT_FOOTPRINT_SCALE (default 16) to reach the paper's
 * application scales; numerical correctness is covered by the test
 * suite instead. Paradigm construction comes from the harness
 * library (harness/paradigm.hh).
 */

#ifndef PROACT_BENCH_BENCH_COMMON_HH
#define PROACT_BENCH_BENCH_COMMON_HH

#include "harness/paradigm.hh"
#include "harness/session.hh"
#include "proact/profiler.hh"
#include "proact/runtime.hh"
#include "system/multi_gpu_system.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace proact::bench {

using proact::allParadigms;
using proact::Paradigm;
using proact::paradigmName;

/** Footprint scale from PROACT_FOOTPRINT_SCALE (default 16). */
std::uint64_t envFootprintScale();

/**
 * Execute @p workload on a fresh system for @p platform under the
 * given paradigm, timing-only.
 *
 * @param config Decoupled transfer config (ProactDecoupled only).
 * @return Simulated makespan in ticks.
 */
Tick runParadigm(const PlatformSpec &platform, Workload &workload,
                 Paradigm paradigm,
                 const TransferConfig &config = {});

/**
 * Single-GPU reference time for speedup normalization: the workload
 * set up for one GPU on the same GPU/fabric generation.
 */
Tick singleGpuReference(const PlatformSpec &platform,
                        const std::string &workload_name,
                        std::uint64_t footprint_scale);

/** Create a standard workload, set up and footprint-scaled. */
std::unique_ptr<Workload>
makeScaledWorkload(const std::string &name, int num_gpus,
                   std::uint64_t footprint_scale);

/** Reduced profiling options honouring PROACT_QUICK. */
Profiler::Options defaultProfilerOptions();

/** Print a right-aligned numeric cell. */
std::string cell(double value, int width = 8, int precision = 2);

} // namespace proact::bench

#endif // PROACT_BENCH_BENCH_COMMON_HH
