/**
 * @file
 * Extension study (beyond the paper's strong-scaling evaluation):
 * weak scaling on the DGX-2. The problem grows proportionally with
 * the GPU count (via the footprint scale), so perfect scaling keeps
 * iteration time flat — efficiency = T(1 GPU, 1x) / T(N GPUs, Nx).
 *
 * Expected shape: PROACT sustains high efficiency (communication
 * stays overlapped as per-GPU work is constant) while cudaMemcpy
 * efficiency decays with the N*(N-1) serialized copy issue and the
 * growing duplicated volume.
 */

#include "bench/bench_common.hh"

#include <cmath>
#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const std::uint64_t base_scale = envFootprintScale();
    const PlatformSpec dgx2 = dgx2Platform();
    const auto apps = standardWorkloadNames();

    TransferConfig config;
    config.mechanism = TransferMechanism::Polling;
    config.chunkBytes = 256 * KiB;
    config.transferThreads = 2048;

    std::cout << "Extension: weak scaling on " << dgx2.name
              << " (problem grows with GPU count; efficiency = "
                 "T(1)/T(N), geomean across apps)\n\n";
    std::cout << std::left << std::setw(8) << "#GPUs" << std::right
              << std::setw(16) << "cudaMemcpy" << std::setw(16)
              << "PROACT" << std::setw(16) << "Infinite-BW" << "\n";

    std::vector<Tick> singles;
    for (const auto &app : apps)
        singles.push_back(
            singleGpuReference(dgx2, app, base_scale));

    for (const int n : {1, 2, 4, 8, 16}) {
        std::cout << std::left << std::setw(8) << n;
        for (const Paradigm p :
             {Paradigm::CudaMemcpy, Paradigm::ProactDecoupled,
              Paradigm::InfiniteBw}) {
            double log_eff = 0.0;
            for (std::size_t a = 0; a < apps.size(); ++a) {
                auto workload = makeWorkload(apps[a],
                                             envScaleShift());
                workload->setFootprintScale(base_scale * n);
                workload->setup(n);
                const Tick t = runParadigm(
                    dgx2.withGpuCount(n), *workload, p, config);
                log_eff += std::log(
                    static_cast<double>(singles[a])
                    / static_cast<double>(t));
            }
            std::cout << cell(
                100.0 * std::exp(log_eff
                                 / static_cast<double>(apps.size())),
                15, 1)
                      << "%";
        }
        std::cout << "\n";
    }
    return 0;
}
