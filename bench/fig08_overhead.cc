/**
 * @file
 * Reproduces paper Figure 8: compute slowdown caused by PROACT's
 * decoupled tracking. Measured as the paper does: run each
 * application with full instrumentation and transfer initiation but
 * with the data-moving stores elided, and compare against the
 * infinite-interconnect-bandwidth runtime.
 *
 * Expected shape (paper): 10-15 % average per platform, from
 * negligible up to ~40 % (PageRank); a hardware agent would remove
 * it.
 */

#include "bench/bench_common.hh"

#include <cmath>
#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const std::uint64_t scale = envFootprintScale();
    const auto apps = standardWorkloadNames();

    std::cout << "Figure 8: compute slowdown due to PROACT decoupled "
                 "tracking (instrumentation, no transfers)\n\n";
    std::cout << std::left << std::setw(12) << "app";
    for (const auto &platform : quadPlatforms())
        std::cout << std::right << std::setw(14) << platform.name;
    std::cout << "\n";

    std::vector<double> geomean(quadPlatforms().size(), 0.0);
    for (const auto &app : apps) {
        std::cout << std::left << std::setw(12) << app;
        std::size_t p = 0;
        for (const auto &platform : quadPlatforms()) {
            auto workload = makeScaledWorkload(
                app, platform.numGpus, scale);

            Profiler profiler(platform, defaultProfilerOptions());
            const TransferConfig cfg =
                profiler.profile(*workload).bestDecoupled().config;

            const Tick ideal = runParadigm(
                platform, *workload, Paradigm::InfiniteBw);

            MultiGpuSystem system(platform);
            system.setFunctional(false);
            ProactRuntime::Options options;
            options.config = cfg;
            options.elideTransfers = true;
            ProactRuntime runtime(system, options);
            const Tick tracked = runtime.run(*workload);

            const double slowdown =
                static_cast<double>(tracked)
                    / static_cast<double>(ideal)
                - 1.0;
            geomean[p] += slowdown;
            std::cout << cell(100.0 * slowdown, 13, 1) << "%";
            ++p;
        }
        std::cout << "\n";
    }

    std::cout << std::left << std::setw(12) << "mean";
    for (std::size_t p = 0; p < geomean.size(); ++p) {
        std::cout << cell(100.0 * geomean[p]
                              / static_cast<double>(apps.size()),
                          13, 1)
                  << "%";
    }
    std::cout << "\n\n(paper: 10-15% average, up to ~40% for "
                 "Pagerank; included in all reported results)\n";
    return 0;
}
