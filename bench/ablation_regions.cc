/**
 * @file
 * Ablation of the paper's Sec. V-A performance-region taxonomy:
 * decompose the microbenchmark's runtime at each decoupled transfer
 * granularity into producer-kernel time and tail-transfer time, and
 * label the dominant regime (initiation-bound, bandwidth-bound, or
 * tail-transfer-bound).
 */

#include "bench/bench_common.hh"
#include "workloads/microbench.hh"

#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const PlatformSpec platform = voltaPlatform();

    MicrobenchWorkload::Params params;
    params.totalBytes = 64 * MiB;
    MicrobenchWorkload workload(platform, params);
    workload.setup(platform.numGpus);

    const Tick memcpy_ticks =
        runParadigm(platform, workload, Paradigm::CudaMemcpy);

    std::cout << "Ablation: decoupled-transfer performance regions "
                 "(microbenchmark, " << platform.name
              << ", polling agent, 2048 threads)\n\n";
    std::cout << std::left << std::setw(12) << "granularity"
              << std::right << std::setw(12) << "time (ms)"
              << std::setw(10) << "speedup" << std::setw(10)
              << "tail %" << std::setw(22) << "regime" << "\n";

    const std::vector<std::uint64_t> chunks = {
        4 * KiB, 16 * KiB, 64 * KiB,  256 * KiB,
        1 * MiB, 4 * MiB,  16 * MiB,  64 * MiB};

    for (const auto c : chunks) {
        MultiGpuSystem system(platform);
        system.setFunctional(false);
        ProactRuntime::Options options;
        options.config.mechanism = TransferMechanism::Polling;
        options.config.chunkBytes = c;
        options.config.transferThreads = 2048;
        ProactRuntime runtime(system, options);
        const Tick ticks = runtime.run(workload);

        const double speedup = static_cast<double>(memcpy_ticks)
            / static_cast<double>(ticks);
        const double tail_frac = static_cast<double>(
                                     runtime.tailTicks())
            / static_cast<double>(ticks);

        std::string regime = "bandwidth-bound";
        if (speedup < 1.0 && tail_frac < 0.2)
            regime = "initiation-bound";
        else if (tail_frac >= 0.2)
            regime = "tail-transfer-bound";

        std::cout << std::left << std::setw(12) << formatBytes(c)
                  << cell(secondsFromTicks(ticks) * 1e3, 12, 3)
                  << cell(speedup, 10) << cell(100.0 * tail_frac, 10, 1)
                  << std::right << std::setw(22) << regime << "\n";
    }
    return 0;
}
