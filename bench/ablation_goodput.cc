/**
 * @file
 * Ablation for the abstract's efficiency claim: PROACT "achiev[es]
 * near-ideal interconnect efficiency" while retaining fine-grained
 * semantics. For each paradigm and application on 4x Volta, report
 * the achieved fabric goodput (useful payload / wire bytes) next to
 * the protocol's ideal (maximum-size packets).
 *
 * Expected shape: cudaMemcpy, UM and PROACT-decoupled ride at the
 * protocol's packetized peak (~89 % on NVLink2); PROACT-inline
 * collapses on the irregular apps (8-byte effective stores -> ~17 %).
 */

#include "bench/bench_common.hh"

#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const std::uint64_t scale = envFootprintScale();
    const PlatformSpec platform = voltaPlatform();
    const PacketModel packet =
        packetModelFor(platform.fabric.protocol);

    TransferConfig config;
    config.mechanism = TransferMechanism::Polling;
    config.chunkBytes = 128 * KiB;
    config.transferThreads = 2048;

    const std::vector<Paradigm> paradigms = {
        Paradigm::CudaMemcpy, Paradigm::UnifiedMemory,
        Paradigm::ProactInline, Paradigm::ProactDecoupled};

    std::cout << "Ablation: achieved interconnect goodput per "
                 "paradigm on " << platform.name << " (protocol peak "
              << cell(100.0 * packet.efficiency(
                                  packet.maxPayloadBytes),
                      0, 1)
              << "%)\n\n";
    std::cout << std::left << std::setw(12) << "app";
    for (const auto p : paradigms)
        std::cout << std::right << std::setw(18) << paradigmName(p);
    std::cout << "\n";

    for (const auto &app : standardWorkloadNames()) {
        auto workload = makeScaledWorkload(app, 4, scale);
        std::cout << std::left << std::setw(12) << app;
        for (const auto p : paradigms) {
            MultiGpuSystem system(platform);
            system.setFunctional(false);
            makeRuntime(p, system, config)->run(*workload);
            const double goodput =
                static_cast<double>(
                    system.fabric().totalPayloadBytes())
                / static_cast<double>(
                      system.fabric().totalWireBytes());
            std::cout << cell(100.0 * goodput, 17, 1) << "%";
        }
        std::cout << "\n";
    }
    std::cout << "\n(PROACT-decoupled matches bulk-DMA efficiency "
                 "while keeping fine-grained semantics; inline "
                 "collapses where writes do not coalesce)\n";
    return 0;
}
