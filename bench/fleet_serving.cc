/**
 * @file
 * Fleet serving benchmark: a seeded stream of mixed-registry tenants
 * on one DGX-2.
 *
 * A multi-tenant fabric is the serving-time counterpart of the
 * paper's per-application study: instead of one workload owning the
 * machine, a stream of jobs (every registry application, 2-8 GPUs
 * each, priorities, deadlines) is admitted, placed on baseboard
 * planes, and served with a PROACT config elected per (workload,
 * gpus, share) from the profiler cache. The whole pipeline is
 * deterministic, and this harness proves it: the identical stream is
 * served twice on fresh sessions and the per-tenant percentile
 * tables must match byte for byte.
 *
 * Usage: fleet_serving [--jobs N] [--seed S]
 *
 * Output is the percentile table plus machine-readable JSON
 * (BENCH_fleet.json, or $PROACT_BENCH_JSON) for CI artifacts.
 * Acceptance (ISSUE): >= 32 mixed jobs on the 16-GPU DGX-2, every
 * per-tenant record bit-identical across the two serves, and
 * per-tenant p50/p95/p99 latency reported.
 */

#include "fleet/fleet_session.hh"
#include "fleet/job.hh"
#include "system/platform.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace proact;
using namespace proact::fleet;

int
main(int argc, char **argv)
{
    int num_jobs = 48;
    std::uint64_t seed = 7;
    for (int i = 1; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        if (flag == "--jobs")
            num_jobs = std::atoi(argv[i + 1]);
        else if (flag == "--seed")
            seed = static_cast<std::uint64_t>(
                std::atoll(argv[i + 1]));
    }

    ArrivalModel model;
    model.seed = seed;
    model.numJobs = num_jobs;
    const std::vector<JobSpec> jobs = generateJobStream(model);

    const PlatformSpec platform = dgx2Platform();
    std::cout << "Fleet serving: " << jobs.size()
              << " mixed-registry jobs on " << platform.name
              << " (seed " << seed << ")\n\n";

    // Two serves on fresh sessions: determinism is a property of the
    // pipeline, not of a warmed cache.
    FleetSession first(platform);
    const FleetReport run1 = first.serve(jobs);
    FleetSession second(platform);
    const FleetReport run2 = second.serve(jobs);

    const std::string table1 = run1.percentileTable();
    const bool tables_match = table1 == run2.percentileTable();
    bool tenants_match = run1.tenants.size() == run2.tenants.size();
    for (std::size_t i = 0;
         tenants_match && i < run1.tenants.size(); ++i) {
        const TenantRecord &a = run1.tenants[i];
        const TenantRecord &b = run2.tenants[i];
        tenants_match = a.job.id == b.job.id
            && a.admitted == b.admitted
            && a.serviceTicks == b.serviceTicks
            && a.latency == b.latency;
    }

    std::cout << table1 << "\n";
    std::cout << "makespan " << run1.makespan / ticksPerMillisecond
              << "ms  throughput " << run1.throughputJobsPerSec
              << " jobs/s  payload " << run1.payloadGBps
              << " GB/s  utilization " << run1.fabricUtilization
              << "\n";
    std::cout << "election: " << run1.electionSweeps << " sweeps, "
              << run1.electionCacheHits << " cache hits\n";
    std::cout << "admission: " << run1.admitted << " admitted, "
              << run1.deferredCapacity << " capacity deferrals, "
              << run1.deferredCongestion << " congestion deferrals, "
              << run1.forcedAdmissions << " forced\n";

    const bool enough_jobs =
        run1.tenants.size() >= 32
        && platform.numGpus == 16;
    const bool percentiles_ok =
        run1.p50 > 0 && run1.p95 >= run1.p50 && run1.p99 >= run1.p95;
    const bool deterministic = tables_match && tenants_match;
    const bool pass = enough_jobs && percentiles_ok && deterministic;

    std::ostringstream json;
    json << "{\n  \"report\": "
         << run1.toJson(platform.name, seed)
         << ",\n  \"acceptance\": {\n"
         << "    \"jobs_ok\": " << (enough_jobs ? "true" : "false")
         << ",\n    \"percentiles_ok\": "
         << (percentiles_ok ? "true" : "false")
         << ",\n    \"deterministic\": "
         << (deterministic ? "true" : "false") << ",\n    \"pass\": "
         << (pass ? "true" : "false") << "\n  }\n}\n";

    const char *env = std::getenv("PROACT_BENCH_JSON");
    const std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_fleet.json";
    std::ofstream(path) << json.str();

    std::cout << "\nacceptance: " << run1.tenants.size()
              << " jobs (need >= 32), percentile output "
              << (deterministic ? "bit-identical" : "DIVERGES")
              << " across two serves\n"
              << "JSON written to " << path << "\n";
    return pass ? 0 : 1;
}
