/**
 * @file
 * Reproduces paper Figure 7: 4-GPU speedup over a single GPU for
 * every application under each data-transfer paradigm, on the three
 * 4-GPU platforms (Kepler/PCIe3, Pascal/NVLink, Volta/NVLink2).
 * Also reports the Sec. V-B ALS statistic: the ratio of wire store
 * transactions under PROACT-inline vs. PROACT-decoupled on 4x Volta.
 *
 * Expected shape (paper): infinite-BW geomean ~3.6x; PROACT (best of
 * inline/decoupled) ~3.0x (~83% of the limit); cudaMemcpy ~2.1x with
 * high variance; UM highly variable, worst on PageRank, competitive
 * on Jacobi; inline beats decoupled only on the dense-write apps
 * (X-ray CT, Jacobi).
 */

#include "bench/bench_common.hh"

#include <cmath>
#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const std::uint64_t scale = envFootprintScale();
    const auto apps = standardWorkloadNames();
    const std::vector<Paradigm> paradigms = {
        Paradigm::UnifiedMemory, Paradigm::CudaMemcpy,
        Paradigm::ProactInline, Paradigm::ProactDecoupled,
        Paradigm::InfiniteBw};

    std::cout << "Figure 7: 4-GPU speedup over single GPU, per "
                 "paradigm (footprint scale " << scale << ")\n";

    for (const PlatformSpec &platform : quadPlatforms()) {
        std::cout << "\n== " << platform.name << " ("
                  << platform.fabric.name << ") ==\n";
        std::cout << std::left << std::setw(10) << "app";
        for (const auto p : paradigms)
            std::cout << std::right << std::setw(18)
                      << paradigmName(p);
        std::cout << "\n";

        std::vector<double> geomean(paradigms.size(), 0.0);
        double proact_capture = 0.0; // log-mean of best/ideal.
        for (const auto &app : apps) {
            const Tick single =
                singleGpuReference(platform, app, scale);
            auto workload = makeScaledWorkload(
                app, platform.numGpus, scale);

            Profiler profiler(platform, defaultProfilerOptions());
            const ProfileResult prof = profiler.profile(*workload);
            const TransferConfig decoupled_cfg =
                prof.bestDecoupled().config;

            std::cout << std::left << std::setw(10) << app;
            std::vector<double> speedups(paradigms.size(), 0.0);
            for (std::size_t i = 0; i < paradigms.size(); ++i) {
                const Tick t = runParadigm(platform, *workload,
                                           paradigms[i],
                                           decoupled_cfg);
                speedups[i] = static_cast<double>(single)
                    / static_cast<double>(t);
                geomean[i] += std::log(speedups[i]);
                std::cout << cell(speedups[i], 18);
            }
            std::cout << "\n";

            // PROACT picks the best of inline and decoupled; the
            // limit study is the last column.
            const double best_proact =
                std::max(speedups[2], speedups[3]);
            proact_capture +=
                std::log(best_proact / speedups.back());
        }

        std::cout << std::left << std::setw(10) << "geomean";
        for (std::size_t i = 0; i < paradigms.size(); ++i) {
            std::cout << cell(
                std::exp(geomean[i] / static_cast<double>(apps.size())),
                18);
        }
        std::cout << "\nPROACT captures "
                  << cell(100.0
                              * std::exp(proact_capture
                                         / static_cast<double>(
                                               apps.size())),
                          0, 0)
                  << "% of the infinite-BW opportunity "
                     "(paper: 83%)\n";
    }

    // Sec. V-B: ALS on 4x Volta issues far more wire store
    // transactions inline than decoupled (paper: 26x).
    {
        const PlatformSpec platform = voltaPlatform();
        auto workload = makeScaledWorkload("ALS", 4, scale);

        auto transactions = [&](TransferMechanism mech) {
            MultiGpuSystem system(platform);
            system.setFunctional(false);
            ProactRuntime::Options options;
            options.config.mechanism = mech;
            options.config.chunkBytes = 128 * KiB;
            options.config.transferThreads = 2048;
            ProactRuntime runtime(system, options);
            runtime.run(*workload);
            return system.fabric().totalStoreTransactions();
        };

        const auto inline_txns =
            transactions(TransferMechanism::Inline);
        const auto decoupled_txns =
            transactions(TransferMechanism::Polling);
        std::cout << "\nALS on 4x Volta: inline store transactions = "
                  << inline_txns << ", decoupled = " << decoupled_txns
                  << " -> ratio "
                  << cell(static_cast<double>(inline_txns)
                              / static_cast<double>(decoupled_txns),
                          0, 1)
                  << "x (paper: 26x)\n";
    }
    return 0;
}
