/**
 * @file
 * Reproduces paper Figure 6: microbenchmark speedup over cudaMemcpy
 * for the two decoupled transfer mechanisms (CDP and Polling) as a
 * function of transfer granularity, on the Kepler, Pascal and Volta
 * 4-GPU systems.
 *
 * Expected shape (paper): three regions — initiation-bound slowdown
 * at fine granularity, a bandwidth-bound plateau (peak ~1.5-1.9x)
 * through the middle, and a tail-transfer-bound drop at very coarse
 * granularity. Polling loses badly on Kepler (wasted resources),
 * wins on Pascal/Volta; CDP peaks lower on Volta (higher dynamic
 * launch cost).
 */

#include "bench/bench_common.hh"
#include "workloads/microbench.hh"

#include <algorithm>
#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

namespace {

std::uint32_t
transferThreadsFor(const PlatformSpec &platform)
{
    // Saturating counts per Table II.
    switch (platform.gpu.arch) {
      case GpuArch::Kepler:
        return 256;
      case GpuArch::Pascal:
        return 4096;
      case GpuArch::Volta:
        return 2048;
    }
    return 1024;
}

} // namespace

int
main()
{
    const std::uint64_t total_bytes =
        std::getenv("PROACT_FULL_SWEEP") ? 256 * MiB : 64 * MiB;

    std::vector<std::uint64_t> chunks = {
        4 * KiB,  16 * KiB, 64 * KiB,  256 * KiB, 1 * MiB,
        4 * MiB,  16 * MiB, 64 * MiB,  total_bytes};
    chunks.erase(std::unique(chunks.begin(), chunks.end()),
                 chunks.end());

    std::cout << "Figure 6: microbenchmark speedup over cudaMemcpy "
                 "vs decoupled transfer granularity ("
              << formatBytes(total_bytes) << " per phase)\n";

    for (const PlatformSpec &platform : quadPlatforms()) {
        MicrobenchWorkload::Params params;
        params.totalBytes = total_bytes;
        MicrobenchWorkload workload(platform, params);
        workload.setup(platform.numGpus);

        const Tick memcpy_ticks =
            runParadigm(platform, workload, Paradigm::CudaMemcpy);
        const std::uint32_t threads = transferThreadsFor(platform);

        std::cout << "\n== " << platform.name << " (" << threads
                  << " transfer threads) ==\n";
        std::cout << std::left << std::setw(12) << "granularity"
                  << std::right << std::setw(10) << "CDP"
                  << std::setw(10) << "Polling" << "\n";

        for (const auto c : chunks) {
            std::cout << std::left << std::setw(12)
                      << formatBytes(c);
            for (const auto mech : {TransferMechanism::Cdp,
                                    TransferMechanism::Polling}) {
                MultiGpuSystem system(platform);
                system.setFunctional(false);
                ProactRuntime::Options options;
                options.config.mechanism = mech;
                options.config.chunkBytes = c;
                options.config.transferThreads = threads;
                ProactRuntime runtime(system, options);
                const Tick ticks = runtime.run(workload);
                std::cout << cell(static_cast<double>(memcpy_ticks)
                                      / static_cast<double>(ticks),
                                  10);
            }
            std::cout << "\n";
        }
    }
    std::cout << "\n(paper: initiation-bound below ~16kB, "
                 "bandwidth-bound 16kB-1MB peaking 1.5-1.9x, "
                 "tail-transfer-bound beyond ~1MB; polling loses on "
                 "Kepler)\n";
    return 0;
}
