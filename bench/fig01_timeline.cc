/**
 * @file
 * Reproduces paper Figure 1 (conceptually): the timeline of one
 * producer/consumer phase pair under each communication paradigm,
 * rendered from the simulator's span trace.
 *
 * Expected shape (paper): (a) bulk DMA fully exposes the transfer
 * between the producer and consumer kernels; (c) P2P/inline stores
 * overlap but occupy the fabric inefficiently (the transfer row
 * stretches); (d) PROACT pushes chunks during the producer kernel at
 * full efficiency, leaving only a short tail.
 */

#include "bench/bench_common.hh"
#include "sim/trace.hh"
#include "workloads/microbench.hh"

#include <iostream>

using namespace proact;
using namespace proact::bench;

namespace {

void
show(const PlatformSpec &platform, const std::string &title,
     Paradigm paradigm, const TransferConfig &config)
{
    MicrobenchWorkload::Params params;
    params.totalBytes = 16 * MiB;
    params.iterations = 2;
    MicrobenchWorkload workload(platform, params);
    workload.setup(platform.numGpus);

    MultiGpuSystem system(platform);
    system.setFunctional(false);
    Trace trace;
    system.setTrace(&trace);
    makeRuntime(paradigm, system, config)->run(workload);

    // Collapse transfers into one logical row per GPU pair is too
    // wide for 4 GPUs; keep kernel rows plus gpu0's outgoing
    // transfers (the producer).
    Trace view;
    for (const auto &span : trace.spans()) {
        if (span.category == "kernel" &&
            span.label.find("gpu0") != std::string::npos) {
            view.record(span.start, span.end, span.category,
                        span.label);
        }
        if (span.category == "transfer" &&
            span.label.rfind("gpu0->", 0) == 0) {
            view.record(span.start, span.end, span.category,
                        "wire " + span.label);
        }
    }

    std::cout << "--- " << title << " ---\n";
    view.renderTimeline(std::cout, 68);
    std::cout << "\n";
}

} // namespace

int
main()
{
    const PlatformSpec platform = voltaPlatform();
    std::cout << "Figure 1: communication-paradigm timelines "
                 "(microbenchmark producer on gpu0, " << platform.name
              << ", 2 phases)\n\n";

    TransferConfig decoupled;
    decoupled.mechanism = TransferMechanism::Polling;
    decoupled.chunkBytes = 256 * KiB;
    decoupled.transferThreads = 2048;

    show(platform, "(a) bulk cudaMemcpy: transfer exposed between "
                   "kernels",
         Paradigm::CudaMemcpy, decoupled);
    show(platform, "(c) P2P/inline stores: overlapped but "
                   "inefficient on the wire",
         Paradigm::ProactInline, decoupled);
    show(platform, "(d) PROACT decoupled: chunks pushed during the "
                   "kernel, short tail",
         Paradigm::ProactDecoupled, decoupled);
    return 0;
}
