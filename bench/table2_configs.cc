/**
 * @file
 * Reproduces paper Table II: the best-performing PROACT
 * configuration per application and 4-GPU platform, as selected by
 * the brute-force profiler. Each entry reads
 *   "I"                         for PROACT-inline, or
 *   "D <granularity> <threads> <Poll|CDP>" for decoupled.
 *
 * Expected shape (paper): inline wins for the dense-write apps
 * (X-ray CT on Pascal/Volta, Jacobi on Kepler/Pascal); decoupled
 * wins everywhere else, with CDP on Kepler (polling wastes its
 * scarce bandwidth), polling with large thread counts on
 * Pascal/Volta, and mid-range granularities (16 kB - 1 MB).
 */

#include "bench/bench_common.hh"

#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const std::uint64_t scale = envFootprintScale();
    const auto apps = standardWorkloadNames();
    const auto platforms = quadPlatforms();

    std::cout << "Table II: best configuration per application and "
                 "platform (footprint scale " << scale << ")\n\n";
    std::cout << std::left << std::setw(12) << "Application";
    for (const auto &p : platforms)
        std::cout << std::left << std::setw(22) << p.name;
    std::cout << "\n" << std::string(12 + 22 * platforms.size(), '-')
              << "\n";

    for (const auto &app : apps) {
        std::cout << std::left << std::setw(12) << app;
        for (const auto &platform : platforms) {
            auto workload = makeScaledWorkload(
                app, platform.numGpus, scale);
            Profiler profiler(platform, defaultProfilerOptions());
            const ProfileResult prof = profiler.profile(*workload);
            std::cout << std::left << std::setw(22)
                      << prof.best.toString();
        }
        std::cout << "\n";
    }

    std::cout << "\n(paper studied ranges: granularity 4kB-16MB, "
                 "threads 32-8192)\n";
    return 0;
}
