/**
 * @file
 * Reproduces paper Figure 2: interconnect goodput (percentage of
 * peak) as a function of write-transfer granularity, for PCIe and
 * NVLink.
 *
 * Expected shape (paper): both protocols drop off sharply below
 * 128 B; 4-byte stores achieve ~14 % on PCIe and ~8 % on NVLink;
 * >=128 B approaches peak.
 */

#include "interconnect/packet_model.hh"

#include <iomanip>
#include <iostream>
#include <vector>

using namespace proact;

int
main()
{
    const std::vector<std::uint32_t> sizes = {1,  2,  4,   8,   16,
                                              32, 64, 128, 256, 512,
                                              1024};
    const PacketModel pcie = packetModelFor(Protocol::PCIe3);
    const PacketModel nvlink = packetModelFor(Protocol::NVLink1);

    std::cout << "Figure 2: goodput vs write transfer granularity\n\n";
    std::cout << std::right << std::setw(10) << "bytes"
              << std::setw(12) << "PCIe %" << std::setw(12)
              << "NVLink %" << "\n";
    for (const auto s : sizes) {
        std::cout << std::setw(10) << s << std::fixed
                  << std::setprecision(1) << std::setw(12)
                  << 100.0 * pcie.efficiency(s) << std::setw(12)
                  << 100.0 * nvlink.efficiency(s) << "\n";
    }
    std::cout << "\n(paper: 4B stores -> ~14% PCIe, ~8% NVLink; "
                 ">=128B near peak)\n";
    return 0;
}
