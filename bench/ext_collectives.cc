/**
 * @file
 * Extension study: PROACT as a communication-library back end
 * (paper Sec. II-B: "the PROACT technique could be implemented as a
 * new back end to many of these commonly used libraries").
 *
 * Compares broadcast and all-gather latency / bus bandwidth between
 * a bulk-DMA transport (host-issued cudaMemcpy per destination) and
 * the PROACT transport (device-side chunked pushes) across message
 * sizes on the DGX-2 fabric.
 *
 * Expected shape: at small and medium sizes PROACT wins by removing
 * the serialized host issue + DMA initiation; at very large sizes
 * both converge to the fabric's packetized peak.
 */

#include "bench/bench_common.hh"
#include "collectives/collectives.hh"

#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const PlatformSpec platform = dgx2Platform();

    TransferConfig config;
    config.chunkBytes = 256 * KiB;
    config.transferThreads = 2048;

    std::cout << "Extension: collective latency, bulk-DMA vs PROACT "
                 "transport (" << platform.name << ", "
              << platform.fabric.name << ")\n\n";

    for (const bool gather : {false, true}) {
        std::cout << (gather ? "all-gather (per-GPU contribution)"
                             : "broadcast from gpu0")
                  << ":\n";
        std::cout << std::left << std::setw(12) << "size"
                  << std::right << std::setw(16) << "bulk-DMA (us)"
                  << std::setw(16) << "PROACT (us)" << std::setw(12)
                  << "speedup" << std::setw(18) << "PROACT busBW"
                  << "\n";

        for (const std::uint64_t size :
             {64 * KiB, 1 * MiB, 16 * MiB, 256 * MiB}) {
            Tick ticks[2];
            int i = 0;
            for (const auto backend :
                 {CollectiveBackend::BulkDma,
                  CollectiveBackend::Proact}) {
                MultiGpuSystem system(platform);
                Collectives coll(system, config);
                const Tick done = gather
                    ? coll.allGather(size, backend)
                    : coll.broadcast(0, size, backend);
                system.run();
                ticks[i++] = done;
            }

            const std::uint64_t payload = gather
                ? size * platform.numGpus * (platform.numGpus - 1)
                : size * (platform.numGpus - 1);
            std::cout << std::left << std::setw(12)
                      << formatBytes(size)
                      << cell(secondsFromTicks(ticks[0]) * 1e6, 16, 1)
                      << cell(secondsFromTicks(ticks[1]) * 1e6, 16, 1)
                      << cell(static_cast<double>(ticks[0])
                                  / static_cast<double>(ticks[1]),
                              12)
                      << cell(Collectives::busBandwidth(payload,
                                                        ticks[1])
                                  / 1e9,
                              13, 1)
                      << " GB/s\n";
        }
        std::cout << "\n";
    }
    return 0;
}
