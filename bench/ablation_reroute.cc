/**
 * @file
 * Fault-adaptation ablation: what does each layer of the adaptive
 * runtime buy when a link dies mid-run?
 *
 * A 4-GPU pairwise-link Volta runs a workload while the 0->1 link
 * goes DOWN a quarter of the way into the (healthy) makespan and
 * never recovers. Three stacked configurations face the same fault
 * plan:
 *
 *   retry-only   acknowledged chunks, exponential backoff, reliable
 *                fallback after the attempt budget — every post-fault
 *                chunk to GPU 1 pays the full discovery latency.
 *   + reroute    the health monitor trips the link DOWN after a short
 *                loss streak and new sends detour via a relay GPU on
 *                physically distinct pair links.
 *   + reprofile  a narrowed online sweep re-tunes chunk size/threads
 *                for the detoured fabric; the runtime hot-swaps the
 *                config at the next iteration boundary.
 *
 * The acceptance bar (ISSUE): rerouting + reprofiling completes
 * strictly faster than retry-only under the identical fault plan.
 * Emits a machine-readable summary (ablation_reroute.json or
 * $PROACT_BENCH_JSON) uploaded as a CI artifact.
 */

#include "bench/bench_common.hh"

#include "faults/fault_plan.hh"
#include "health/link_health.hh"
#include "interconnect/rerouter.hh"
#include "proact/reprofiler.hh"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

using namespace proact;
using namespace proact::bench;

namespace {

PlatformSpec
pairwiseVolta()
{
    PlatformSpec p = voltaPlatform();
    p.fabric.topology = FabricTopology::PairwiseLinks;
    return p;
}

TransferConfig
baseConfig()
{
    TransferConfig config;
    config.mechanism = TransferMechanism::Polling;
    config.chunkBytes = 64 * KiB;
    config.transferThreads = 2048;
    config.retry.enabled = true;
    config.retry.maxAttempts = 5;
    return config;
}

struct Outcome
{
    Tick ticks = 0;
    double retried = 0;
    double fallbacks = 0;
    double detours = 0;
    double sweeps = 0;
};

Outcome
runOnce(const std::string &app, std::uint64_t scale, Tick down_at,
        bool reroute, bool reprofile)
{
    auto workload = makeScaledWorkload(app, 4, scale);
    MultiGpuSystem system(pairwiseVolta());
    system.setFunctional(false);

    if (down_at != maxTick) {
        FaultPlan plan;
        plan.downLink(down_at, maxTick, 0, 1);
        system.installFaults(std::move(plan));
    }

    std::unique_ptr<AdaptiveReprofiler> reprofiler;
    if (reroute) {
        system.enableHealth();
        system.fabric().setRebooking(true);
        system.enableReroute();
    }
    if (reprofile) {
        auto factory = [&](int gpus) {
            auto w = makeScaledWorkload(app, gpus, 1);
            return w;
        };
        reprofiler = std::make_unique<AdaptiveReprofiler>(
            system, factory, baseConfig());
    }

    ProactRuntime::Options options;
    options.config = baseConfig();
    options.reprofiler = reprofiler.get();
    ProactRuntime runtime(system, options);

    Outcome out;
    out.ticks = runtime.run(*workload);
    out.retried = runtime.stats().get("transfers.retried");
    out.fallbacks = runtime.stats().get("fallback.activations");
    if (const Rerouter *rr = system.rerouter()) {
        out.detours = rr->stats().get("reroute.detours")
            + rr->stats().get("reroute.splits");
    }
    if (reprofiler)
        out.sweeps = reprofiler->stats().get("reprofile.sweeps");
    return out;
}

} // namespace

int
main()
{
    const std::uint64_t scale = envFootprintScale();
    const std::string app = "Jacobi";

    // The link dies a quarter of the way into the healthy makespan.
    const Tick healthy = runOnce(app, scale, maxTick, false, false)
                             .ticks;
    const Tick down_at = healthy / 4;

    std::cout << "Ablation: fault-adaptive runtime layers ("
              << app << " on 4x Volta, pairwise links)\n"
              << "link gpu0->gpu1 DOWN at " << down_at / 1000
              << " ns, never recovers\n\n";

    std::cout << std::left << std::setw(22) << "configuration"
              << std::right << std::setw(12) << "slowdown"
              << std::setw(10) << "retries" << std::setw(10)
              << "fallbks" << std::setw(10) << "detours"
              << std::setw(8) << "sweeps" << "\n";

    std::ostringstream json;
    json << "{\n  \"bench\": \"ablation_reroute\",\n  \"app\": \""
         << app << "\",\n  \"down_at_ticks\": " << down_at
         << ",\n  \"rows\": [";
    bool first_row = true;

    auto row = [&](const std::string &label, const Outcome &out) {
        const double slowdown = static_cast<double>(out.ticks)
            / static_cast<double>(healthy);
        std::cout << std::left << std::setw(22) << label << std::right
                  << std::setw(11) << std::fixed
                  << std::setprecision(2) << slowdown << "x"
                  << std::setw(10)
                  << static_cast<long>(out.retried) << std::setw(10)
                  << static_cast<long>(out.fallbacks) << std::setw(10)
                  << static_cast<long>(out.detours) << std::setw(8)
                  << static_cast<long>(out.sweeps) << "\n";
        json << (first_row ? "" : ",") << "\n    {\"config\": \""
             << label << "\", \"ticks\": " << out.ticks
             << ", \"slowdown\": " << slowdown
             << ", \"retries\": " << static_cast<long>(out.retried)
             << ", \"fallbacks\": "
             << static_cast<long>(out.fallbacks)
             << ", \"detours\": " << static_cast<long>(out.detours)
             << ", \"sweeps\": " << static_cast<long>(out.sweeps)
             << "}";
        first_row = false;
    };

    row("healthy fabric", Outcome{healthy, 0, 0, 0, 0});
    const Outcome retry_only =
        runOnce(app, scale, down_at, false, false);
    row("retry-only", retry_only);
    const Outcome rerouted = runOnce(app, scale, down_at, true, false);
    row("+ reroute", rerouted);
    const Outcome adaptive = runOnce(app, scale, down_at, true, true);
    row("+ reroute+reprofile", adaptive);

    const bool pass = adaptive.ticks < retry_only.ticks;
    json << "\n  ],\n  \"acceptance\": {\n"
         << "    \"adaptive_beats_retry_only\": "
         << (pass ? "true" : "false") << ",\n    \"pass\": "
         << (pass ? "true" : "false") << "\n  }\n}\n";

    const char *env = std::getenv("PROACT_BENCH_JSON");
    const std::string path =
        env != nullptr && *env != '\0' ? env : "ablation_reroute.json";
    std::ofstream(path) << json.str();

    std::cout << "\nacceptance: reroute+reprofile "
              << (pass ? "beats" : "DOES NOT BEAT")
              << " retry-only ("
              << static_cast<double>(retry_only.ticks)
                     / static_cast<double>(adaptive.ticks)
              << "x faster)\nJSON written to " << path << "\n";
    return pass ? 0 : 1;
}
