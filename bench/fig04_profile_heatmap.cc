/**
 * @file
 * Reproduces paper Figure 4: the profiler's view of microbenchmark
 * throughput as a function of transfer thread count and aggregate
 * transfer (chunk) size, on the Kepler system.
 *
 * Expected shape (paper): best throughput for granularities between
 * 64 kB and 1 MB once >=128 threads are used; more threads beyond
 * fabric saturation gain nothing.
 */

#include "bench/bench_common.hh"
#include "workloads/microbench.hh"

#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const PlatformSpec platform = keplerPlatform();

    MicrobenchWorkload::Params params;
    params.totalBytes = 64 * MiB;
    MicrobenchWorkload workload(platform, params);
    workload.setup(platform.numGpus);

    // Baseline: bulk cudaMemcpy duplication.
    const Tick memcpy_ticks =
        runParadigm(platform, workload, Paradigm::CudaMemcpy);

    const std::vector<std::uint32_t> threads = {32,  64,   128, 256,
                                                512, 1024, 2048, 4096,
                                                8192};
    const std::vector<std::uint64_t> chunks = {
        4 * KiB,   16 * KiB, 64 * KiB, 256 * KiB,
        1 * MiB,   4 * MiB,  16 * MiB, 64 * MiB};

    std::cout << "Figure 4: microbenchmark throughput (speedup over "
                 "cudaMemcpy) vs transfer threads x chunk size\n";
    std::cout << "platform: " << platform.name << ", polling agent\n\n";

    std::cout << std::left << std::setw(10) << "threads";
    for (const auto c : chunks)
        std::cout << std::right << std::setw(9) << formatBytes(c);
    std::cout << "\n";

    for (const auto t : threads) {
        std::cout << std::left << std::setw(10) << t;
        for (const auto c : chunks) {
            MultiGpuSystem system(platform);
            system.setFunctional(false);
            ProactRuntime::Options options;
            options.config.mechanism = TransferMechanism::Polling;
            options.config.chunkBytes = c;
            options.config.transferThreads = t;
            ProactRuntime runtime(system, options);
            const Tick ticks = runtime.run(workload);
            std::cout << cell(static_cast<double>(memcpy_ticks)
                                  / static_cast<double>(ticks),
                              9);
        }
        std::cout << "\n";
    }
    std::cout << "\n(paper: plateau for 64kB-1MB chunks at >=128 "
                 "threads)\n";
    return 0;
}
