/**
 * @file
 * Figure 10 fault variants: strong scaling under chassis-level faults
 * on the DGX-2.
 *
 * The healthy Fig. 10 study answers "how far does PROACT scale?";
 * this companion asks "how much of that scaling survives a fault?".
 * The DGX-2 platform runs at 4, 8 and 16 GPUs, and a quarter of the
 * way into the healthy makespan one of two correlated chassis events
 * strikes:
 *
 *   plane-degrade  half the NVSwitch planes die: every directed pair
 *                  keeps running at half bandwidth (degradePlane,
 *                  dgx2DownSwitchPlanes at the full chassis).
 *   board-down     one baseboard's switch complex dies: every
 *                  intra-board pair on that side delivers nothing
 *                  (downPlane, dgx2DownBaseboard at the full
 *                  chassis); cross-board pairs survive.
 *
 * Two stacked configurations face each plan:
 *
 *   retry-only     acknowledged chunks, backoff, reliable fallback.
 *   adaptive       + health monitoring, epoch-cached multi-relay
 *                  rerouting, and reroute-aware retry.
 *
 * A multi-node companion extends the series past one chassis: 2x16
 * and 4x16 hierarchical platforms face an uplinks-down plan (every
 * network-tier link incident to half of node 0 dies), the multi-node
 * analogue of board-down — the victims' only way off the node is a
 * relay through a same-node peer whose uplinks survive.
 *
 * Output is a table plus machine-readable JSON (fig10_faults.json,
 * or $PROACT_BENCH_JSON) for CI artifacts. Acceptance (ISSUE): at 16
 * GPUs under the board-down plan the adaptive stack beats retry-only
 * goodput, and the epoch-keyed plan cache serves >= 10x more lookups
 * than it computes (i.e. >= 10x cheaper than per-transfer planning);
 * at 32 GPUs under uplinks-down the adaptive stack must again beat
 * retry-only goodput.
 */

#include "bench/bench_common.hh"

#include "faults/fault_plan.hh"
#include "health/link_health.hh"
#include "interconnect/rerouter.hh"
#include "system/platform.hh"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

using namespace proact;
using namespace proact::bench;

namespace {

TransferConfig
baseConfig(bool adaptive)
{
    TransferConfig config;
    config.mechanism = TransferMechanism::Polling;
    config.chunkBytes = 64 * KiB;
    config.transferThreads = 2048;
    config.retry.enabled = true;
    config.retry.maxAttempts = 5;
    if (adaptive)
        config.retry.rerouteAfterAttempts = 2;
    return config;
}

/**
 * The chassis event scaled to @p n GPUs: the dgx2 helpers describe
 * the full 16-GPU chassis; smaller instantiations fault the same
 * fraction of the machine so the study varies only the GPU count.
 */
FaultPlan
makePlan(const std::string &fault, int n, Tick at)
{
    FaultPlan plan;
    if (fault == "plane-degrade") {
        if (n == dgx2Platform().numGpus) {
            dgx2DownSwitchPlanes(plan, at, maxTick,
                                 dgx2NumSwitchPlanes / 2);
        } else {
            std::vector<int> all;
            for (int g = 0; g < n; ++g)
                all.push_back(g);
            plan.degradePlane(at, maxTick, 0.5, all);
        }
    } else { // board-down
        if (n == dgx2Platform().numGpus) {
            dgx2DownBaseboard(plan, at, maxTick, 0);
        } else {
            std::vector<int> board;
            for (int g = 0; g < n / 2; ++g)
                board.push_back(g);
            plan.downPlane(at, maxTick, board);
        }
    }
    return plan;
}

/**
 * The multi-node chassis event: every inter-node link whose endpoint
 * sits in the first half of node 0 dies. Cross-node traffic from the
 * victims must relay through a surviving same-node peer (one chassis
 * hop to a healthy uplink), so the adaptive stack has a detour to
 * find while retry-only can only fall back.
 */
FaultPlan
uplinksDownPlan(const PlatformSpec &platform, Tick at)
{
    FaultPlan plan;
    const FabricSpec &fabric = platform.fabric;
    for (int g = 0; g < fabric.gpusPerNode / 2; ++g) {
        for (int h = 0; h < platform.numGpus; ++h) {
            if (fabric.sameNode(g, h))
                continue;
            plan.downLink(at, maxTick, g, h);
            plan.downLink(at, maxTick, h, g);
        }
    }
    return plan;
}

struct Outcome
{
    Tick ticks = 0;
    double goodputGBps = 0.0;
    double retried = 0;
    double replanned = 0;
    double fallbacks = 0;
    double reroutes = 0;
    double planRequests = 0;
    double planComputes = 0;
    double transitions = 0;
};

Outcome
runOnce(const std::string &app, const PlatformSpec &platform,
        std::uint64_t scale, FaultPlan plan, bool adaptive)
{
    const int n = platform.numGpus;
    auto workload = makeScaledWorkload(app, n, scale);
    MultiGpuSystem system(platform);
    system.setFunctional(false);

    if (!plan.empty())
        system.installFaults(std::move(plan));

    if (adaptive) {
        // Detour traffic congests relay links, which reads as
        // degradation; the holdoff keeps those links from flapping at
        // delivery rate and churning the plan cache.
        HealthPolicy health;
        health.transitionHoldoff = 50 * ticksPerMicrosecond;
        system.enableHealth(health);
        system.fabric().setRebooking(true);
        system.enableReroute();
    }

    ProactRuntime::Options options;
    options.config = baseConfig(adaptive);
    ProactRuntime runtime(system, options);

    Outcome out;
    out.ticks = runtime.run(*workload);
    const double bytes = runtime.stats().get("delivered_bytes");
    out.goodputGBps = bytes
        / (static_cast<double>(out.ticks)
           / static_cast<double>(ticksPerSecond))
        / 1e9;
    out.retried = runtime.stats().get("transfers.retried");
    out.replanned = runtime.stats().get("transfers.replanned");
    out.fallbacks = runtime.stats().get("fallback.activations");
    if (const Rerouter *rr = system.rerouter()) {
        out.reroutes = rr->stats().get("reroute.detours")
            + rr->stats().get("reroute.splits");
        out.planRequests = rr->stats().get("reroute.plan_requests");
        out.planComputes = rr->stats().get("reroute.plan_computes");
    }
    if (const LinkHealthMonitor *mon = system.health())
        out.transitions = mon->stats().get("health.transitions");
    return out;
}

} // namespace

int
main()
{
    const std::uint64_t scale = envFootprintScale();
    const std::string app = "Jacobi";
    const std::vector<int> counts = {4, 8, 16};
    const std::vector<std::string> faults = {"plane-degrade",
                                             "board-down"};

    std::cout << "Figure 10 fault variants: DGX-2 scaling under "
                 "chassis faults (" << app << ")\n"
              << "fault strikes at 1/4 of the healthy makespan, "
                 "never recovers\n\n";
    std::cout << std::left << std::setw(7) << "#GPUs" << std::setw(15)
              << "fault" << std::setw(12) << "config" << std::right
              << std::setw(11) << "goodput" << std::setw(10)
              << "retries" << std::setw(9) << "replans" << std::setw(9)
              << "fallbks" << std::setw(10) << "reroutes"
              << std::setw(12) << "plan req" << std::setw(10)
              << "computed" << std::setw(8) << "trans" << "\n";

    std::ostringstream json;
    json << "{\n  \"platform\": \"" << dgx2Platform().name
         << "\",\n  \"app\": \"" << app
         << "\",\n  \"fault_start_fraction\": 0.25,\n  \"rows\": [";

    bool first_row = true;
    auto row = [&](int n, const std::string &fault,
                   const std::string &config, const Outcome &out) {
        std::cout << std::left << std::setw(7) << n << std::setw(15)
                  << (fault.empty() ? "none" : fault) << std::setw(12)
                  << config << std::right
                  << cell(out.goodputGBps, 11) << std::setw(10)
                  << static_cast<long>(out.retried) << std::setw(9)
                  << static_cast<long>(out.replanned) << std::setw(9)
                  << static_cast<long>(out.fallbacks) << std::setw(10)
                  << static_cast<long>(out.reroutes) << std::setw(12)
                  << static_cast<long>(out.planRequests)
                  << std::setw(10)
                  << static_cast<long>(out.planComputes)
                  << std::setw(8)
                  << static_cast<long>(out.transitions) << "\n";
        json << (first_row ? "" : ",") << "\n    {\"gpus\": " << n
             << ", \"fault\": \""
             << (fault.empty() ? "none" : fault)
             << "\", \"config\": \"" << config
             << "\", \"makespan_us\": "
             << static_cast<double>(out.ticks)
                / static_cast<double>(ticksPerMicrosecond)
             << ", \"goodput_gbps\": " << out.goodputGBps
             << ", \"retried\": " << out.retried
             << ", \"replanned\": " << out.replanned
             << ", \"fallbacks\": " << out.fallbacks
             << ", \"reroutes\": " << out.reroutes
             << ", \"plan_requests\": " << out.planRequests
             << ", \"plan_computes\": " << out.planComputes
             << ", \"health_transitions\": " << out.transitions
             << "}";
        first_row = false;
    };

    bool beats_at_16 = false;
    double cache_ratio_at_16 = 0.0;

    for (const int n : counts) {
        const PlatformSpec platform = dgx2Platform().withGpuCount(n);
        const Outcome clean = runOnce(app, platform, scale, {}, false);
        const Tick at = clean.ticks / 4;
        row(n, "", "retry-only", clean);

        for (const auto &fault : faults) {
            const Outcome retry_only = runOnce(
                app, platform, scale, makePlan(fault, n, at), false);
            const Outcome adaptive = runOnce(
                app, platform, scale, makePlan(fault, n, at), true);
            row(n, fault, "retry-only", retry_only);
            row(n, fault, "adaptive", adaptive);

            if (n == 16 && fault == "board-down") {
                beats_at_16 =
                    adaptive.goodputGBps > retry_only.goodputGBps;
                if (adaptive.planComputes > 0.0) {
                    cache_ratio_at_16 = adaptive.planRequests
                        / adaptive.planComputes;
                }
            }
        }
    }

    // Multi-node series: scaling under a network-tier fault at 2 and
    // 4 DGX-2-class nodes (32 / 64 GPUs).
    bool beats_at_32 = false;
    for (const int nodes : {2, 4}) {
        const PlatformSpec platform = multiNodePlatform(nodes, 16);
        const int n = platform.numGpus;
        const Outcome clean = runOnce(app, platform, scale, {}, false);
        const Tick at = clean.ticks / 4;
        row(n, "", "retry-only", clean);

        const Outcome retry_only = runOnce(
            app, platform, scale, uplinksDownPlan(platform, at),
            false);
        const Outcome adaptive = runOnce(
            app, platform, scale, uplinksDownPlan(platform, at),
            true);
        row(n, "uplinks-down", "retry-only", retry_only);
        row(n, "uplinks-down", "adaptive", adaptive);
        if (n == 32)
            beats_at_32 =
                adaptive.goodputGBps > retry_only.goodputGBps;
    }

    const bool cache_ok = cache_ratio_at_16 >= 10.0;
    json << "\n  ],\n  \"acceptance\": {\n"
         << "    \"adaptive_beats_retry_only_at_16\": "
         << (beats_at_16 ? "true" : "false") << ",\n"
         << "    \"plan_cache_ratio_at_16\": " << cache_ratio_at_16
         << ",\n    \"adaptive_beats_retry_only_at_32\": "
         << (beats_at_32 ? "true" : "false") << ",\n    \"pass\": "
         << (beats_at_16 && cache_ok && beats_at_32 ? "true"
                                                    : "false")
         << "\n  }\n}\n";

    const char *env = std::getenv("PROACT_BENCH_JSON");
    const std::string path =
        env != nullptr && *env != '\0' ? env : "fig10_faults.json";
    std::ofstream(path) << json.str();

    std::cout << "\nacceptance: adaptive "
              << (beats_at_16 ? "beats" : "DOES NOT BEAT")
              << " retry-only goodput at 16 GPUs (board-down); "
              << "plan cache served "
              << cell(cache_ratio_at_16, 0, 1)
              << "x its compute count (need >= 10x); adaptive "
              << (beats_at_32 ? "beats" : "DOES NOT BEAT")
              << " retry-only at 32 GPUs (uplinks-down)\n"
              << "JSON written to " << path << "\n";
    return beats_at_16 && cache_ok && beats_at_32 ? 0 : 1;
}
