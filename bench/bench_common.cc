#include "bench/bench_common.hh"

#include "sim/logging.hh"

#include <cstdlib>
#include <iomanip>
#include <sstream>

namespace proact::bench {

std::uint64_t
envFootprintScale()
{
    const char *env = std::getenv("PROACT_FOOTPRINT_SCALE");
    if (env == nullptr)
        return 16;
    const long v = std::atol(env);
    return v >= 1 ? static_cast<std::uint64_t>(v) : 1;
}

Tick
runParadigm(const PlatformSpec &platform, Workload &workload,
            Paradigm paradigm, const TransferConfig &config)
{
    MultiGpuSystem system(platform);
    system.setFunctional(false);
    return makeRuntime(paradigm, system, config)->run(workload);
}

std::unique_ptr<Workload>
makeScaledWorkload(const std::string &name, int num_gpus,
                   std::uint64_t footprint_scale)
{
    auto workload = makeWorkload(name, envScaleShift());
    workload->setFootprintScale(footprint_scale);
    workload->setup(num_gpus);
    return workload;
}

Tick
singleGpuReference(const PlatformSpec &platform,
                   const std::string &workload_name,
                   std::uint64_t footprint_scale)
{
    auto workload =
        makeScaledWorkload(workload_name, 1, footprint_scale);
    MultiGpuSystem system(platform.withGpuCount(1));
    system.setFunctional(false);
    return makeRuntime(Paradigm::InfiniteBw, system)->run(*workload);
}

Profiler::Options
defaultProfilerOptions()
{
    Profiler::Options options;
    if (std::getenv("PROACT_QUICK") != nullptr) {
        options.chunkSizes = {16 * KiB, 128 * KiB, 1 * MiB, 4 * MiB};
        options.threadCounts = {256, 2048, 4096};
    } else if (std::getenv("PROACT_FULL_SWEEP") == nullptr) {
        // Default: coarser steps spanning the paper's full studied
        // ranges (4 kB - 16 MB, 32 - 8192 threads); set
        // PROACT_FULL_SWEEP for every point of the fine grid.
        options.chunkSizes = {4 * KiB,   16 * KiB, 128 * KiB,
                              256 * KiB, 1 * MiB,  16 * MiB};
        options.threadCounts = {32, 256, 1024, 2048, 4096, 8192};
    }
    options.profileIterations = 2;
    return options;
}

std::string
cell(double value, int width, int precision)
{
    std::ostringstream oss;
    oss << std::right << std::setw(width) << std::fixed
        << std::setprecision(precision) << value;
    return oss.str();
}

} // namespace proact::bench
