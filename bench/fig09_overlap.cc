/**
 * @file
 * Reproduces paper Figure 9: the fraction of data-transfer time
 * PROACT overlaps with computation. Measured as the paper does: run
 * with full PROACT, run again with the data-moving stores elided
 * (instrumentation and initiation kept); the difference is the
 * non-overlapped transfer time, compared against the cudaMemcpy
 * baseline's exposed copy time.
 *
 * Expected shape (paper): at least 75 % of transfer time hidden,
 * often near 100 %.
 */

#include "bench/bench_common.hh"
#include "baselines/runner.hh"

#include <algorithm>
#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const std::uint64_t scale = envFootprintScale();
    const auto apps = standardWorkloadNames();

    std::cout << "Figure 9: fraction of transfer time overlapped "
                 "with compute\n\n";
    std::cout << std::left << std::setw(12) << "app";
    for (const auto &platform : quadPlatforms())
        std::cout << std::right << std::setw(14) << platform.name;
    std::cout << "\n";

    for (const auto &app : apps) {
        std::cout << std::left << std::setw(12) << app;
        for (const auto &platform : quadPlatforms()) {
            auto workload = makeScaledWorkload(
                app, platform.numGpus, scale);

            Profiler profiler(platform, defaultProfilerOptions());
            const ProfileResult prof = profiler.profile(*workload);
            ProactRuntime::Options options;
            options.config = prof.best;
            if (!options.config.decoupled())
                options.config = prof.bestDecoupled().config;

            Tick full = 0, elided = 0;
            {
                MultiGpuSystem system(platform);
                system.setFunctional(false);
                ProactRuntime runtime(system, options);
                full = runtime.run(*workload);
            }
            {
                MultiGpuSystem system(platform);
                system.setFunctional(false);
                auto opts = options;
                opts.elideTransfers = true;
                ProactRuntime runtime(system, opts);
                elided = runtime.run(*workload);
            }

            // Baseline exposed copy time under bulk duplication.
            Tick copy_ticks = 0;
            {
                MultiGpuSystem system(platform);
                system.setFunctional(false);
                BulkMemcpyRuntime runtime(system);
                runtime.run(*workload);
                copy_ticks = runtime.copyTicks();
            }

            const Tick exposed = full > elided ? full - elided : 0;
            const double overlap = copy_ticks == 0
                ? 1.0
                : std::clamp(1.0
                                 - static_cast<double>(exposed)
                                     / static_cast<double>(copy_ticks),
                             0.0, 1.0);
            std::cout << cell(100.0 * overlap, 13, 1) << "%";
        }
        std::cout << "\n";
    }
    std::cout << "\n(paper: always >=75% of transfer time hidden, "
                 "often ~100%)\n";
    return 0;
}
