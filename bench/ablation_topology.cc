/**
 * @file
 * Ablation: sensitivity of the reproduced results to the fabric
 * topology assumption. The paper's 4-GPU NVLink systems are
 * direct-attached (links statically partitioned across peers) while
 * our default model exposes each GPU's aggregate bandwidth as shared
 * ports. Because PROACT's traffic is an all-peer broadcast, the two
 * organizations should deliver nearly identical end-to-end numbers —
 * this bench quantifies the residual difference per application.
 */

#include "bench/bench_common.hh"

#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const std::uint64_t scale = envFootprintScale();

    PlatformSpec shared = voltaPlatform();
    PlatformSpec pairwise = voltaPlatform();
    pairwise.fabric.topology = FabricTopology::PairwiseLinks;

    TransferConfig config;
    config.mechanism = TransferMechanism::Polling;
    config.chunkBytes = 128 * KiB;
    config.transferThreads = 2048;

    std::cout << "Ablation: shared-port vs pairwise-link NVLink2 "
                 "fabric (4x Volta, PROACT-decoupled "
              << config.toString() << ")\n\n";
    std::cout << std::left << std::setw(12) << "app" << std::right
              << std::setw(16) << "shared (ms)" << std::setw(16)
              << "pairwise (ms)" << std::setw(10) << "delta" << "\n";

    for (const auto &app : standardWorkloadNames()) {
        auto workload = makeScaledWorkload(app, 4, scale);
        const Tick t_shared = runParadigm(
            shared, *workload, Paradigm::ProactDecoupled, config);
        const Tick t_pair = runParadigm(
            pairwise, *workload, Paradigm::ProactDecoupled, config);

        std::cout << std::left << std::setw(12) << app
                  << cell(secondsFromTicks(t_shared) * 1e3, 16, 3)
                  << cell(secondsFromTicks(t_pair) * 1e3, 16, 3)
                  << cell(100.0
                              * (static_cast<double>(t_pair)
                                     / static_cast<double>(t_shared)
                                 - 1.0),
                          9, 1)
                  << "%\n";
    }

    std::cout << "\n(all-peer broadcasts exercise every link, so the "
                 "organizations should agree within a few percent)\n";
    return 0;
}
