/**
 * @file
 * Ablation of the paper's Sec. IV-B Unified Memory methodology:
 * "we hand-tested various hinting strategies ... making a best-effort
 * attempt to optimize each application". Compares forced hint
 * strategies (pure fault path, prefetch, prefetch + read-duplicate)
 * against the runtime's per-traffic default on 4x Volta.
 *
 * Expected shape: the fault path collapses on the sporadic apps
 * (the paper's PageRank observation) while hints keep the
 * sequential apps near the bound. Note a model simplification: in
 * this simulator a forced prefetch *would* rescue the sporadic apps
 * because the modeled region is exactly the data consumers need; on
 * real UM the sporadic apps' touch pattern spans data the driver
 * cannot usefully prefetch, which is why the paper's hand-tuned
 * best effort (our "default" column) still rides the fault path.
 */

#include "baselines/runner.hh"
#include "bench/bench_common.hh"

#include <iomanip>
#include <iostream>
#include <optional>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const std::uint64_t scale = envFootprintScale();
    const PlatformSpec platform = voltaPlatform();

    struct Strategy
    {
        const char *name;
        std::optional<UmHints> hints;
    };
    const std::vector<Strategy> strategies = {
        {"default", std::nullopt},
        {"faults", UmHints{false, false}},
        {"prefetch", UmHints{true, false}},
        {"pf+dup", UmHints{true, true}},
    };

    std::cout << "Ablation: UM hint strategies on " << platform.name
              << " (speedup over 1 GPU)\n\n";
    std::cout << std::left << std::setw(12) << "app";
    for (const auto &s : strategies)
        std::cout << std::right << std::setw(12) << s.name;
    std::cout << "\n";

    for (const auto &app : standardWorkloadNames()) {
        const Tick single = singleGpuReference(platform, app, scale);
        std::cout << std::left << std::setw(12) << app;
        for (const auto &strategy : strategies) {
            auto workload = makeScaledWorkload(app, 4, scale);
            MultiGpuSystem system(platform);
            system.setFunctional(false);
            Tick t = 0;
            if (strategy.hints.has_value()) {
                UnifiedMemoryRuntime runtime(system,
                                             *strategy.hints);
                t = runtime.run(*workload);
            } else {
                UnifiedMemoryRuntime runtime(system);
                t = runtime.run(*workload);
            }
            std::cout << cell(static_cast<double>(single)
                                  / static_cast<double>(t),
                              12);
        }
        std::cout << "\n";
    }
    std::cout << "\n(default = the paper's best-effort outcome: "
                 "fault path for sporadic apps, hints for "
                 "sequential ones; see header for the forced-"
                 "prefetch caveat)\n";
    return 0;
}
