/**
 * @file
 * Reproduces paper Figure 10: strong scaling of PROACT vs. bulk
 * cudaMemcpy duplication vs. the infinite-bandwidth limit, on the
 * Kepler and Pascal systems (1-4 GPUs) and the Volta/NVSwitch DGX-2
 * (1-16 GPUs). Speedups are geometric means across the five
 * applications, normalized to one GPU of the same platform.
 *
 * Expected shape (paper): with 2 GPUs every method ties; cudaMemcpy
 * flattens (Kepler beyond 2, Pascal beyond ~3, Volta beyond ~5)
 * while PROACT scales near-linearly, reaching ~11x at 16 GPUs —
 * 1.2x/2.2x/5.3x over cudaMemcpy at 4/8/16 GPUs on the DGX-2.
 */

#include "bench/bench_common.hh"

#include <cmath>
#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const std::uint64_t scale = envFootprintScale();
    const auto apps = standardWorkloadNames();

    struct Study
    {
        PlatformSpec platform;
        std::vector<int> gpuCounts;
    };
    const std::vector<Study> studies = {
        {keplerPlatform(), {1, 2, 3, 4}},
        {pascalPlatform(), {1, 2, 3, 4}},
        {dgx2Platform(), {1, 2, 4, 6, 8, 12, 16}},
    };

    std::cout << "Figure 10: strong scaling (geomean speedup across "
                 "applications vs 1 GPU)\n";

    for (const auto &study : studies) {
        std::cout << "\n== " << study.platform.name << " ("
                  << study.platform.fabric.name << ") ==\n";
        std::cout << std::left << std::setw(8) << "#GPUs"
                  << std::right << std::setw(14) << "cudaMemcpy"
                  << std::setw(14) << "PROACT" << std::setw(14)
                  << "Infinite-BW" << "\n";

        // Profile each app once on the full platform; deploy that
        // configuration at every GPU count (profile-once semantics).
        std::vector<TransferConfig> configs;
        std::vector<bool> use_inline;
        for (const auto &app : apps) {
            auto workload = makeScaledWorkload(
                app, study.platform.numGpus, scale);
            Profiler profiler(study.platform,
                              defaultProfilerOptions());
            const ProfileResult prof = profiler.profile(*workload);
            configs.push_back(prof.bestDecoupled().config);
            use_inline.push_back(!prof.best.decoupled());
        }

        std::vector<Tick> singles;
        for (const auto &app : apps)
            singles.push_back(
                singleGpuReference(study.platform, app, scale));

        for (const int n : study.gpuCounts) {
            const PlatformSpec plat =
                study.platform.withGpuCount(n);
            double log_memcpy = 0.0, log_proact = 0.0,
                   log_ideal = 0.0;

            for (std::size_t a = 0; a < apps.size(); ++a) {
                auto workload =
                    makeScaledWorkload(apps[a], n, scale);
                const auto single =
                    static_cast<double>(singles[a]);

                const Tick t_memcpy = runParadigm(
                    plat, *workload, Paradigm::CudaMemcpy);
                const Tick t_ideal = runParadigm(
                    plat, *workload, Paradigm::InfiniteBw);
                const Tick t_dec = runParadigm(
                    plat, *workload, Paradigm::ProactDecoupled,
                    configs[a]);
                Tick t_proact = t_dec;
                if (use_inline[a]) {
                    const Tick t_inl = runParadigm(
                        plat, *workload, Paradigm::ProactInline);
                    t_proact = std::min(t_proact, t_inl);
                }

                log_memcpy +=
                    std::log(single / static_cast<double>(t_memcpy));
                log_proact +=
                    std::log(single / static_cast<double>(t_proact));
                log_ideal +=
                    std::log(single / static_cast<double>(t_ideal));
            }

            const double inv = 1.0 / static_cast<double>(apps.size());
            std::cout << std::left << std::setw(8) << n
                      << cell(std::exp(log_memcpy * inv), 14)
                      << cell(std::exp(log_proact * inv), 14)
                      << cell(std::exp(log_ideal * inv), 14) << "\n";
        }
    }
    std::cout << "\n(paper: PROACT near-linear to 16 GPUs, ~11x mean; "
                 "cudaMemcpy flattens, 5.3x gap at 16 GPUs)\n";
    return 0;
}
