/**
 * @file
 * Google-Benchmark microbenchmarks of the simulator itself: event
 * dispatch rate, channel booking, graph generation, and full
 * timing-only application runs. These guard the simulator's own
 * performance (the profiler sweeps hundreds of configurations per
 * application, so simulation throughput is a feature).
 */

#include "harness/paradigm.hh"
#include "proact/runtime.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "workloads/graph.hh"
#include "workloads/registry.hh"

#include <benchmark/benchmark.h>

using namespace proact;

namespace {

void
BM_EventQueueDispatch(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        long fired = 0;
        for (int i = 0; i < state.range(0); ++i)
            eq.schedule((i * 7919) % 100000, [&fired] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueDispatch)->Arg(1 << 10)->Arg(1 << 16);

void
BM_ChannelBooking(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        Channel ch(eq, "bench", 100.0e9);
        Tick last = 0;
        for (int i = 0; i < state.range(0); ++i)
            last = ch.submit(4096, 4096);
        eq.run();
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelBooking)->Arg(1 << 14);

void
BM_RmatGeneration(benchmark::State &state)
{
    RmatParams params;
    params.numVertices = 1 << 14;
    params.numEdges = state.range(0);
    for (auto _ : state) {
        const Graph g = generateRmat(params);
        benchmark::DoNotOptimize(g.numEdges());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RmatGeneration)->Arg(1 << 17);

void
BM_TimingOnlyRun(benchmark::State &state)
{
    // Full 4-GPU PROACT-decoupled Pagerank iteration sweep in
    // timing-only mode — the profiler's unit of work.
    auto workload = makeWorkload("Pagerank", 4); // Scaled down 16x.
    workload->setup(4);
    TransferConfig config;
    config.mechanism = TransferMechanism::Polling;
    config.chunkBytes = 128 * KiB;
    config.transferThreads = 2048;

    for (auto _ : state) {
        MultiGpuSystem system(voltaPlatform());
        system.setFunctional(false);
        ProactRuntime::Options options;
        options.config = config;
        options.maxIterations = 2;
        ProactRuntime runtime(system, options);
        benchmark::DoNotOptimize(runtime.run(*workload));
    }
}
BENCHMARK(BM_TimingOnlyRun);

} // namespace

BENCHMARK_MAIN();
