/**
 * @file
 * Simulator performance trajectory: the event engine measured against
 * itself.
 *
 * The profiler sweeps hundreds of transfer configurations per
 * application and the fleet elector re-runs narrowed sweeps on every
 * cache miss, so simulation throughput is a product feature. This
 * harness starts the repo's simulator perf trajectory
 * (BENCH_simulator.json, the BENCH_fleet.json pattern):
 *
 *  1. Serial core A/B — the BM_EventQueueDispatch workload measured
 *     on a faithful copy of the pre-rewrite engine (shared_ptr
 *     entries + std::priority_queue + per-event unordered_map) and on
 *     the current slab/4-ary-heap engine. Acceptance: >= 2x
 *     improvement (gated in optimized builds).
 *  2. Cancel-heavy A/B — same comparison with half the events
 *     descheduled, exercising the O(1) generation-checked cancel
 *     path against the hash-map one.
 *  3. Sharded trajectory — a synthetic ring-exchange traffic model
 *     (per-GPU shard, per-GPU egress channel, cross-shard deliveries
 *     at >= lookahead) run on ShardedEventEngine at 16..256 GPUs,
 *     sequential (1 worker) vs. sharded (PROACT_SIM_SHARDS or
 *     hardware concurrency), with a merged-stats determinism check.
 *
 * Default run executes the driver and writes the JSON; pass --gbench
 * [gbench args...] for the original google-benchmark microbenches.
 */

#include "harness/paradigm.hh"
#include "proact/runtime.hh"
#include "system/platform.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_engine.hh"
#include "workloads/graph.hh"
#include "workloads/registry.hh"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <queue>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace proact;

namespace {

// ---------------------------------------------------------------------
// Legacy engine: the pre-rewrite EventQueue, kept verbatim (minus the
// run-until paths the A/B doesn't exercise) as the "before" reference
// so the trajectory always measures against the same baseline.
// ---------------------------------------------------------------------

namespace legacy {

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    std::uint64_t
    schedule(Tick when, Callback cb, int priority = 0)
    {
        auto entry = std::make_shared<Entry>();
        entry->when = when;
        entry->priority = priority;
        entry->seq = _nextSeq++;
        entry->id = _nextId++;
        entry->cb = std::move(cb);
        _queue.push(entry);
        _pendingIndex.emplace(entry->id, entry);
        ++_liveEvents;
        return entry->id;
    }

    bool
    deschedule(std::uint64_t id)
    {
        auto it = _pendingIndex.find(id);
        if (it == _pendingIndex.end())
            return false;
        it->second->cancelled = true;
        _pendingIndex.erase(it);
        --_liveEvents;
        return true;
    }

    bool
    runNext()
    {
        while (!_queue.empty()) {
            auto entry = _queue.top();
            _queue.pop();
            if (entry->cancelled)
                continue;
            _curTick = entry->when;
            --_liveEvents;
            _pendingIndex.erase(entry->id);
            Callback cb = std::move(entry->cb);
            cb();
            return true;
        }
        return false;
    }

    void
    run()
    {
        while (runNext()) {
        }
    }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint64_t id;
        Callback cb;
        bool cancelled = false;
    };

    struct EntryCompare
    {
        bool
        operator()(const std::shared_ptr<Entry> &a,
                   const std::shared_ptr<Entry> &b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->seq > b->seq;
        }
    };

    std::priority_queue<std::shared_ptr<Entry>,
                        std::vector<std::shared_ptr<Entry>>,
                        EntryCompare> _queue;
    std::unordered_map<std::uint64_t, std::shared_ptr<Entry>>
        _pendingIndex;
    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _nextId = 1;
    std::uint64_t _liveEvents = 0;
};

} // namespace legacy

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** BM_EventQueueDispatch inner loop on any engine type. */
template <typename Queue>
double
dispatchEventsPerSec(int events, int repeats)
{
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
        Queue eq;
        long fired = 0;
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < events; ++i) {
            eq.schedule(static_cast<Tick>((i * 7919) % 100000),
                        [&fired] { ++fired; });
        }
        eq.run();
        const double secs = secondsSince(start);
        benchmark::DoNotOptimize(fired);
        if (secs > 0.0)
            best = std::max(best, static_cast<double>(events) / secs);
    }
    return best;
}

/** Cancel-heavy variant: every second event is descheduled. */
template <typename Queue>
double
cancelEventsPerSec(int events, int repeats)
{
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
        Queue eq;
        long fired = 0;
        std::vector<std::uint64_t> ids;
        ids.reserve(static_cast<std::size_t>(events));
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < events; ++i) {
            ids.push_back(
                eq.schedule(static_cast<Tick>((i * 7919) % 100000),
                            [&fired] { ++fired; }));
        }
        for (int i = 0; i < events; i += 2)
            eq.deschedule(ids[static_cast<std::size_t>(i)]);
        eq.run();
        const double secs = secondsSince(start);
        benchmark::DoNotOptimize(fired);
        if (secs > 0.0)
            best = std::max(best, static_cast<double>(events) / secs);
    }
    return best;
}

// ---------------------------------------------------------------------
// Sharded trajectory: ring-exchange traffic on ShardedEventEngine.
// ---------------------------------------------------------------------

/**
 * One GPU per shard. Every round a GPU books a chunk on its own
 * egress channel (local shard state — the contention-free structures
 * the parallel mode depends on), the delivery lands on the ring
 * neighbour at >= link latency, and each delivery fans out a little
 * local work (the CTA-completion events that dominate real runs).
 */
struct RingModel
{
    static constexpr Tick LinkLatency = ticksPerMicrosecond;
    static constexpr int LocalEventsPerDelivery = 8;

    explicit RingModel(ShardedEventEngine &engine, int rounds)
        : _engine(engine), _rounds(rounds)
    {
        const int gpus = engine.numShards();
        _egress.reserve(static_cast<std::size_t>(gpus));
        for (int g = 0; g < gpus; ++g) {
            _egress.push_back(std::make_unique<Channel>(
                engine.shard(g), "egress" + std::to_string(g),
                100.0e9, LinkLatency));
        }
        for (int g = 0; g < gpus; ++g) {
            _engine.shard(g).schedule(
                ticksPerNanosecond, [this, g] { sendRound(g, 0); });
        }
    }

    void
    sendRound(int gpu, int round)
    {
        if (round >= _rounds)
            return;
        const int peer = (gpu + 1) % _engine.numShards();
        Channel &ch = *_egress[static_cast<std::size_t>(gpu)];
        // Book occupancy locally; the delivery itself crosses shards
        // with at least LinkLatency (>= engine lookahead), honouring
        // the conservative contract.
        const Tick delivered =
            ch.submit(64 * KiB, 64 * KiB, nullptr);
        _engine.stats(gpu).inc("chunks.sent");
        _engine.post(gpu, peer, delivered, [this, peer, round] {
            receiveChunk(peer, round);
        });
    }

    void
    receiveChunk(int gpu, int round)
    {
        EventQueue &eq = _engine.shard(gpu);
        _engine.stats(gpu).inc("chunks.delivered");
        // Local fan-out: consumer CTAs waking on chunk arrival.
        for (int i = 0; i < LocalEventsPerDelivery; ++i) {
            eq.scheduleIn(static_cast<Tick>(i + 1) * 10, [this, gpu] {
                _engine.stats(gpu).inc("ctas.completed");
            });
        }
        sendRound(gpu, round + 1);
    }

  private:
    ShardedEventEngine &_engine;
    int _rounds;
    std::vector<std::unique_ptr<Channel>> _egress;
};

struct ShardedPoint
{
    int gpus = 0;
    int workers = 1;
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
    double eventsPerSec = 0.0;
    std::string statsDigest;
};

ShardedPoint
runSharded(int gpus, int workers, int rounds)
{
    ShardedEventEngine::Options options;
    options.numShards = gpus;
    options.lookahead = RingModel::LinkLatency;
    options.workers = workers;
    ShardedEventEngine engine(options);
    RingModel model(engine, rounds);

    const auto start = std::chrono::steady_clock::now();
    engine.run();
    const double secs = secondsSince(start);

    ShardedPoint point;
    point.gpus = gpus;
    point.workers = engine.workers();
    point.events = engine.dispatchedEvents();
    point.windows = engine.windows();
    point.eventsPerSec =
        secs > 0.0 ? static_cast<double>(point.events) / secs : 0.0;
    std::ostringstream digest;
    engine.mergedStats().dump(digest);
    point.statsDigest = digest.str();
    return point;
}

// ---------------------------------------------------------------------
// End-to-end sharded paradigm execution: the product path, not a
// synthetic model. A 64-GPU pairwise ring runs PROACT-decoupled
// Jacobi (ring halo exchange) through MultiGpuSystem's sharded
// engine; 1 shard is the determinism reference, N shards must
// reproduce its full stat ledger bit for bit and beat it on
// wall-clock.
// ---------------------------------------------------------------------

struct EndToEndPoint
{
    int shards = 0;
    double seconds = 0.0;
    Tick ticks = 0;
    std::string digest;
};

EndToEndPoint
runEndToEnd(const PlatformSpec &platform, int shards,
            int scale_shift)
{
    auto workload = makeWorkload("Jacobi", scale_shift);
    workload->setup(platform.numGpus);

    MultiGpuSystem system(platform, shards);
    system.setFunctional(false);
    ProactRuntime::Options options;
    options.config.mechanism = TransferMechanism::Polling;
    options.config.chunkBytes = 64 * KiB;
    options.config.transferThreads = 2048;
    ProactRuntime runtime(system, options);

    const auto start = std::chrono::steady_clock::now();
    const Tick ticks = runtime.run(*workload);

    EndToEndPoint point;
    point.shards = shards;
    point.seconds = secondsSince(start);
    point.ticks = ticks;
    std::ostringstream digest;
    digest << "ticks=" << ticks << " tail=" << runtime.tailTicks()
           << "\n";
    runtime.stats().dump(digest);
    point.digest = digest.str();
    return point;
}

// ---------------------------------------------------------------------
// Original google-benchmark microbenches (run via --gbench).
// ---------------------------------------------------------------------

void
BM_EventQueueDispatch(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        long fired = 0;
        for (int i = 0; i < state.range(0); ++i)
            eq.schedule((i * 7919) % 100000, [&fired] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueDispatch)->Arg(1 << 10)->Arg(1 << 16);

void
BM_EventQueueCancel(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        long fired = 0;
        std::vector<EventId> ids;
        for (int i = 0; i < state.range(0); ++i)
            ids.push_back(eq.schedule((i * 7919) % 100000,
                                      [&fired] { ++fired; }));
        for (int i = 0; i < state.range(0); i += 2)
            eq.deschedule(ids[static_cast<std::size_t>(i)]);
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueCancel)->Arg(1 << 16);

void
BM_ChannelBooking(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        Channel ch(eq, "bench", 100.0e9);
        Tick last = 0;
        for (int i = 0; i < state.range(0); ++i)
            last = ch.submit(4096, 4096);
        eq.run();
        benchmark::DoNotOptimize(last);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelBooking)->Arg(1 << 14);

void
BM_ShardedRing(benchmark::State &state)
{
    for (auto _ : state) {
        const ShardedPoint p = runSharded(
            static_cast<int>(state.range(0)), 1, 64);
        benchmark::DoNotOptimize(p.events);
    }
}
BENCHMARK(BM_ShardedRing)->Arg(16)->Arg(64);

void
BM_RmatGeneration(benchmark::State &state)
{
    RmatParams params;
    params.numVertices = 1 << 14;
    params.numEdges = state.range(0);
    for (auto _ : state) {
        const Graph g = generateRmat(params);
        benchmark::DoNotOptimize(g.numEdges());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RmatGeneration)->Arg(1 << 17);

void
BM_TimingOnlyRun(benchmark::State &state)
{
    // Full 4-GPU PROACT-decoupled Pagerank iteration sweep in
    // timing-only mode — the profiler's unit of work.
    auto workload = makeWorkload("Pagerank", 4); // Scaled down 16x.
    workload->setup(4);
    TransferConfig config;
    config.mechanism = TransferMechanism::Polling;
    config.chunkBytes = 128 * KiB;
    config.transferThreads = 2048;

    for (auto _ : state) {
        MultiGpuSystem system(voltaPlatform());
        system.setFunctional(false);
        ProactRuntime::Options options;
        options.config = config;
        options.maxIterations = 2;
        ProactRuntime runtime(system, options);
        benchmark::DoNotOptimize(runtime.run(*workload));
    }
}
BENCHMARK(BM_TimingOnlyRun);

int
runDriver()
{
    const int events = 1 << 16;
    const int repeats = 5;

    std::cout << "Simulator performance trajectory\n\n";

    // 1. + 2. Serial core A/B on the BM_EventQueueDispatch workload.
    const double before =
        dispatchEventsPerSec<legacy::EventQueue>(events, repeats);
    const double after =
        dispatchEventsPerSec<EventQueue>(events, repeats);
    const double speedup = before > 0.0 ? after / before : 0.0;

    const double cancel_before =
        cancelEventsPerSec<legacy::EventQueue>(events, repeats);
    const double cancel_after =
        cancelEventsPerSec<EventQueue>(events, repeats);
    const double cancel_speedup =
        cancel_before > 0.0 ? cancel_after / cancel_before : 0.0;

    std::cout << "BM_EventQueueDispatch (" << events << " events):\n"
              << "  before (shared_ptr heap + hash map): "
              << static_cast<std::uint64_t>(before) << " events/s\n"
              << "  after  (slab + 4-ary heap):          "
              << static_cast<std::uint64_t>(after) << " events/s\n"
              << "  speedup: " << speedup << "x (gate: >= 2x)\n"
              << "cancel-heavy variant: " << cancel_speedup
              << "x\n\n";

    // 3. Sharded trajectory across topology sizes. Sequential first
    // (1 worker — the determinism reference), then the pool.
    int shard_workers = envSimShards();
    if (shard_workers <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        shard_workers = static_cast<int>(hw == 0 ? 1 : hw);
    }

    struct Row
    {
        ShardedPoint serial;
        ShardedPoint sharded;
        bool deterministic = false;
    };
    std::vector<Row> rows;
    bool all_deterministic = true;
    for (const int gpus : {16, 32, 64, 128, 256}) {
        Row row;
        row.serial = runSharded(gpus, 1, 48);
        row.sharded = runSharded(gpus, shard_workers, 48);
        row.deterministic =
            row.serial.statsDigest == row.sharded.statsDigest
            && row.serial.events == row.sharded.events;
        all_deterministic = all_deterministic && row.deterministic;
        std::cout << "ring " << gpus << " GPUs: serial "
                  << static_cast<std::uint64_t>(
                         row.serial.eventsPerSec)
                  << " ev/s, sharded(" << row.sharded.workers
                  << " workers) "
                  << static_cast<std::uint64_t>(
                         row.sharded.eventsPerSec)
                  << " ev/s, " << row.sharded.windows
                  << " windows, stats "
                  << (row.deterministic ? "bit-identical"
                                        : "DIVERGE")
                  << "\n";
        rows.push_back(std::move(row));
    }

    // 4. End-to-end datapoint: the same gate on the product path.
    PlatformSpec ring = voltaPlatform().withGpuCount(64);
    ring.fabric.topology = FabricTopology::PairwiseLinks;
    const int e2e_shards = std::max(4, std::min(shard_workers, 16));
    const EndToEndPoint e2e_serial = runEndToEnd(ring, 1, 2);
    const EndToEndPoint e2e_sharded =
        runEndToEnd(ring, e2e_shards, 2);
    const bool e2e_deterministic =
        e2e_serial.digest == e2e_sharded.digest;
    const double e2e_speedup = e2e_sharded.seconds > 0.0
        ? e2e_serial.seconds / e2e_sharded.seconds
        : 0.0;
    all_deterministic = all_deterministic && e2e_deterministic;
    std::cout << "\nend-to-end 64-GPU ring (PROACT Jacobi): 1 shard "
              << e2e_serial.seconds << " s, " << e2e_sharded.shards
              << " shards " << e2e_sharded.seconds << " s ("
              << e2e_speedup << "x), stats "
              << (e2e_deterministic ? "bit-identical" : "DIVERGE")
              << "\n";

    // 5. Multi-node datapoint: the same workload on a hierarchical
    // 2x16 platform, so the trajectory tracks the two-tier fabric's
    // sharded path (per-pair channels spanning the network tier)
    // next to the flat ring.
    const PlatformSpec multi = multiNodePlatform(2, 16);
    const EndToEndPoint mn_serial = runEndToEnd(multi, 1, 2);
    const EndToEndPoint mn_sharded =
        runEndToEnd(multi, e2e_shards, 2);
    const bool mn_deterministic =
        mn_serial.digest == mn_sharded.digest;
    const double mn_speedup = mn_sharded.seconds > 0.0
        ? mn_serial.seconds / mn_sharded.seconds
        : 0.0;
    all_deterministic = all_deterministic && mn_deterministic;
    std::cout << "multi-node 2x16 (PROACT Jacobi): 1 shard "
              << mn_serial.seconds << " s, " << mn_sharded.shards
              << " shards " << mn_sharded.seconds << " s ("
              << mn_speedup << "x), stats "
              << (mn_deterministic ? "bit-identical" : "DIVERGE")
              << "\n";

    // The wall-clock gate needs cores to run the shards on; on a
    // starved machine the datapoint is still recorded (and the
    // determinism check still binds) but speedup is not enforced.
    const unsigned hw_cores = std::thread::hardware_concurrency();
    const bool e2e_measurable = hw_cores >= 4;
#ifdef NDEBUG
    const bool gate_e2e = !e2e_measurable || e2e_speedup > 1.0;
#else
    const bool gate_e2e = true;
#endif
    if (!e2e_measurable) {
        std::cout << "(only " << hw_cores
                  << " core(s) available: end-to-end speedup gate "
                     "not enforced)\n";
    }

#ifdef NDEBUG
    const bool gate_speedup = speedup >= 2.0;
#else
    // Debug builds carry bookkeeping asserts on the new engine's hot
    // path that the legacy copy lacks; the >=2x gate only means
    // something optimized.
    const bool gate_speedup = true;
    std::cout << "\n(non-optimized build: >=2x gate not enforced)\n";
#endif
    const bool pass = gate_speedup && all_deterministic && gate_e2e;

    std::ostringstream json;
    json << "{\n  \"bm_event_queue_dispatch\": {\n"
         << "    \"events\": " << events << ",\n"
         << "    \"before_events_per_sec\": " << before << ",\n"
         << "    \"after_events_per_sec\": " << after << ",\n"
         << "    \"speedup\": " << speedup << ",\n"
         << "    \"cancel_before_events_per_sec\": " << cancel_before
         << ",\n"
         << "    \"cancel_after_events_per_sec\": " << cancel_after
         << ",\n"
         << "    \"cancel_speedup\": " << cancel_speedup << "\n"
         << "  },\n  \"sharded_ring\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        json << "    {\"gpus\": " << row.serial.gpus
             << ", \"events\": " << row.serial.events
             << ", \"windows\": " << row.serial.windows
             << ", \"serial_events_per_sec\": "
             << row.serial.eventsPerSec
             << ", \"sharded_events_per_sec\": "
             << row.sharded.eventsPerSec
             << ", \"workers\": " << row.sharded.workers
             << ", \"deterministic\": "
             << (row.deterministic ? "true" : "false") << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"end_to_end_sharded\": {\n"
         << "    \"gpus\": 64,\n"
         << "    \"workload\": \"Jacobi\",\n"
         << "    \"ticks\": " << e2e_serial.ticks << ",\n"
         << "    \"serial_seconds\": " << e2e_serial.seconds << ",\n"
         << "    \"sharded_seconds\": " << e2e_sharded.seconds
         << ",\n"
         << "    \"shards\": " << e2e_sharded.shards << ",\n"
         << "    \"speedup\": " << e2e_speedup << ",\n"
         << "    \"speedup_enforced\": "
         << (e2e_measurable ? "true" : "false") << ",\n"
         << "    \"deterministic\": "
         << (e2e_deterministic ? "true" : "false") << "\n"
         << "  },\n  \"end_to_end_multinode\": {\n"
         << "    \"platform\": \"" << multi.name << "\",\n"
         << "    \"gpus\": " << multi.numGpus << ",\n"
         << "    \"workload\": \"Jacobi\",\n"
         << "    \"ticks\": " << mn_serial.ticks << ",\n"
         << "    \"serial_seconds\": " << mn_serial.seconds << ",\n"
         << "    \"sharded_seconds\": " << mn_sharded.seconds
         << ",\n"
         << "    \"shards\": " << mn_sharded.shards << ",\n"
         << "    \"speedup\": " << mn_speedup << ",\n"
         << "    \"deterministic\": "
         << (mn_deterministic ? "true" : "false") << "\n"
         << "  },\n  \"acceptance\": {\n"
         << "    \"serial_speedup_ok\": "
         << (gate_speedup ? "true" : "false")
         << ",\n    \"deterministic\": "
         << (all_deterministic ? "true" : "false")
         << ",\n    \"end_to_end_speedup_ok\": "
         << (gate_e2e ? "true" : "false")
         << ",\n    \"pass\": " << (pass ? "true" : "false")
         << "\n  }\n}\n";

    const char *env = std::getenv("PROACT_BENCH_JSON");
    const std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_simulator.json";
    std::ofstream(path) << json.str();
    std::cout << "\nJSON written to " << path << "\n";
    return pass ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--gbench") == 0) {
        int gargc = argc - 1;
        std::vector<char *> gargv;
        gargv.push_back(argv[0]);
        for (int i = 2; i < argc; ++i)
            gargv.push_back(argv[i]);
        benchmark::Initialize(&gargc, gargv.data());
        benchmark::RunSpecifiedBenchmarks();
        return 0;
    }
    return runDriver();
}
