/**
 * @file
 * Fault-injection ablation: how gracefully does each transfer
 * mechanism degrade when the fabric misbehaves?
 *
 * Sweeps delivery-drop probability x bandwidth degradation over the
 * four mechanisms (inline, polling, CDP, hardware) on 4x Volta. For
 * every cell we report the slowdown versus the same mechanism on a
 * healthy fabric, plus the retry/fallback work the resilience layer
 * performed. Deliveries stay exactly-once throughout (the runtime
 * verifies its delivery count), so the whole table is "completed
 * correctly, this much slower".
 *
 * Expected shape: drops cost roughly the re-sent bytes plus the ack
 * timeouts spent discovering each loss, so a few percent of drops
 * stays a mild slowdown; bandwidth degradation hits every mechanism
 * in proportion to its fabric occupancy.
 */

#include "bench/bench_common.hh"

#include <iomanip>
#include <iostream>
#include <sstream>

using namespace proact;
using namespace proact::bench;

namespace {

struct Outcome
{
    Tick ticks = 0;
    double retried = 0;
    double fallbacks = 0;
};

Outcome
runOnce(const std::string &app, std::uint64_t scale,
        TransferMechanism mech, double drop_rate, double degrade)
{
    auto workload = makeScaledWorkload(app, 4, scale);
    MultiGpuSystem system(voltaPlatform());
    system.setFunctional(false);

    const bool faulted = drop_rate > 0.0 || degrade > 0.0;
    if (faulted) {
        FaultPlan plan;
        plan.seed = 7;
        if (drop_rate > 0.0)
            plan.dropDeliveries(0, maxTick, drop_rate);
        if (degrade > 0.0)
            plan.degradeLink(0, maxTick, degrade);
        system.installFaults(std::move(plan));
    }

    ProactRuntime::Options options;
    options.config.mechanism = mech;
    options.config.chunkBytes = 128 * KiB;
    options.config.transferThreads = 2048;
    options.config.retry.enabled = faulted;
    ProactRuntime runtime(system, options);

    Outcome out;
    out.ticks = runtime.run(*workload);
    out.retried = runtime.stats().get("transfers.retried");
    out.fallbacks = runtime.stats().get("fallback.activations");
    return out;
}

} // namespace

int
main()
{
    const std::uint64_t scale = envFootprintScale();
    const std::string app = "Pagerank";

    const std::vector<TransferMechanism> mechanisms = {
        TransferMechanism::Inline, TransferMechanism::Polling,
        TransferMechanism::Cdp, TransferMechanism::Hardware};
    const std::vector<double> drop_rates = {0.0, 0.01, 0.05};
    const std::vector<double> degrades = {0.0, 0.5};

    std::cout << "Ablation: fault resilience per transfer mechanism "
                 "(" << app << " on 4x Volta)\n"
              << "cells: slowdown vs healthy fabric "
                 "(retries / fallbacks)\n\n";

    std::cout << std::left << std::setw(22) << "faults";
    for (const auto mech : mechanisms) {
        std::cout << std::right << std::setw(20)
                  << mechanismName(mech);
    }
    std::cout << "\n";

    std::vector<Tick> healthy;
    for (const auto mech : mechanisms)
        healthy.push_back(runOnce(app, scale, mech, 0.0, 0.0).ticks);

    for (const double degrade : degrades) {
        for (const double drop : drop_rates) {
            std::ostringstream label;
            label << "drop=" << std::setprecision(2) << drop
                  << " degrade=" << degrade;
            std::cout << std::left << std::setw(22) << label.str();

            for (std::size_t m = 0; m < mechanisms.size(); ++m) {
                const Outcome out = runOnce(app, scale, mechanisms[m],
                                            drop, degrade);
                const double slowdown = static_cast<double>(out.ticks)
                    / static_cast<double>(healthy[m]);
                std::ostringstream c;
                c << std::fixed << std::setprecision(2) << slowdown
                  << "x (" << static_cast<long>(out.retried) << "/"
                  << static_cast<long>(out.fallbacks) << ")";
                std::cout << std::right << std::setw(20) << c.str();
            }
            std::cout << "\n";
        }
    }
    std::cout << "\n(every run completes with exactly-once delivery; "
                 "the resilience layer turns loss into latency)\n";
    return 0;
}
