/**
 * @file
 * Device-loss recovery benchmark: a seeded campaign of mid-run GPU
 * deaths across a multi-tenant DGX-2 serve.
 *
 * The fleet serves the same seeded job stream three times:
 *
 *  1. a fault-free baseline with recovery armed (checkpoints on, so
 *     the checkpoint overhead is inside the baseline, not the gate);
 *  2. the campaign: every Nth job loses one GPU halfway through its
 *     baseline service time — the watchdog declares the device LOST,
 *     the fleet quarantines it, and the job restarts from its latest
 *     checkpoint on surviving GPUs;
 *  3. the identical campaign on a fresh session, which must produce
 *     a bit-identical report (recovery events included).
 *
 * Usage: fault_recovery [--jobs N] [--seed S]
 *
 * Output is the percentile table plus recovery telemetry and
 * machine-readable JSON (BENCH_recovery.json, or $PROACT_BENCH_JSON).
 * Acceptance (ISSUE): the campaign completes every job, at least one
 * device loss is recovered, the double serve is bit-identical, and
 * the recovered jobs' p95 completion latency stays within 2.5x their
 * fault-free baseline.
 */

#include "faults/fault_plan.hh"
#include "fleet/fleet_session.hh"
#include "fleet/job.hh"
#include "system/platform.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace proact;
using namespace proact::fleet;

namespace {

/** Every victimStride-th job loses a GPU on its first attempt. */
constexpr int victimStride = 6;

bool
isVictim(const JobSpec &job)
{
    return job.id % victimStride == 1;
}

} // namespace

int
main(int argc, char **argv)
{
    int num_jobs = 24;
    std::uint64_t seed = 7;
    for (int i = 1; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        if (flag == "--jobs")
            num_jobs = std::atoi(argv[i + 1]);
        else if (flag == "--seed")
            seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    }

    ArrivalModel model;
    model.seed = seed;
    model.numJobs = num_jobs;
    const std::vector<JobSpec> jobs = generateJobStream(model);

    const PlatformSpec platform = dgx2Platform();
    std::cout << "Fault recovery: " << jobs.size()
              << " mixed-registry jobs on " << platform.name
              << " (seed " << seed << "), device loss for every "
              << victimStride << "th job\n\n";

    FleetSession::Options base_options;
    base_options.recovery.enabled = true;

    // Fault-free baseline (checkpoints still on: the gate measures
    // the cost of dying, not the cost of being ready to).
    FleetSession baseline_session(platform, base_options);
    const FleetReport baseline = baseline_session.serve(jobs);

    // The campaign kills one GPU halfway through each victim's
    // measured baseline service, so every loss lands mid-run
    // regardless of how long the tenant actually executes.
    std::map<int, Tick> baseline_service;
    std::map<int, Tick> baseline_latency;
    for (const TenantRecord &t : baseline.tenants) {
        baseline_service[t.job.id] = t.serviceTicks;
        baseline_latency[t.job.id] = t.latency;
    }

    FleetSession::Options campaign_options = base_options;
    campaign_options.faultPlanFor =
        [&baseline_service](const JobSpec &job, int attempt) {
            FaultPlan plan;
            if (attempt != 0 || !isVictim(job))
                return plan;
            const Tick mid = baseline_service.at(job.id) / 2;
            plan.downGpu(mid, maxTick, job.id % job.gpus);
            return plan;
        };

    // Two serves on fresh sessions: recovery must not cost the fleet
    // its bit-for-bit determinism.
    FleetSession first(platform, campaign_options);
    const FleetReport run1 = first.serve(jobs);
    FleetSession second(platform, campaign_options);
    const FleetReport run2 = second.serve(jobs);

    const std::string table1 = run1.percentileTable();
    const bool deterministic = table1 == run2.percentileTable()
        && run1.toJson(platform.name, seed)
            == run2.toJson(platform.name, seed);

    std::cout << table1 << "\n";
    std::cout << "makespan " << run1.makespan / ticksPerMillisecond
              << "ms (baseline "
              << baseline.makespan / ticksPerMillisecond
              << "ms)  quarantined " << run1.quarantinedGpus
              << " of " << platform.numGpus << " GPUs\n";
    std::cout << "recoveries: " << run1.recoveries.size()
              << "  lost-work p50/p95 "
              << run1.lostWorkP50 / ticksPerMicrosecond << "/"
              << run1.lostWorkP95 / ticksPerMicrosecond
              << "us  recovery-latency p50/p95 "
              << run1.recoveryLatencyP50 / ticksPerMicrosecond << "/"
              << run1.recoveryLatencyP95 / ticksPerMicrosecond
              << "us\n";
    for (const RecoveryEvent &ev : run1.recoveries) {
        std::cout << "  job" << ev.jobId << " attempt" << ev.attempt
                  << " lost gpu" << ev.lostGpu << " resumed at iter "
                  << ev.resumeIteration << " (lost "
                  << ev.lostWork / ticksPerMicrosecond << "us)\n";
    }

    // Gate: recovered jobs' p95 completion latency vs the identical
    // jobs served fault-free.
    std::set<int> recovered_ids;
    for (const RecoveryEvent &ev : run1.recoveries)
        recovered_ids.insert(ev.jobId);
    std::vector<Tick> recovered_latency;
    std::vector<Tick> recovered_baseline;
    bool all_complete = run1.tenants.size() == jobs.size();
    for (const TenantRecord &t : run1.tenants) {
        all_complete = all_complete && !t.run.aborted;
        if (recovered_ids.count(t.job.id)) {
            recovered_latency.push_back(t.latency);
            recovered_baseline.push_back(
                baseline_latency.at(t.job.id));
        }
    }
    const Tick p95_faulted =
        FleetReport::percentile(recovered_latency, 95.0);
    const Tick p95_clean =
        FleetReport::percentile(recovered_baseline, 95.0);
    const double p95_ratio = p95_clean > 0
        ? static_cast<double>(p95_faulted)
            / static_cast<double>(p95_clean)
        : 0.0;

    const bool recovered_any = !run1.recoveries.empty();
    const bool p95_ok = recovered_any && p95_ratio > 0.0
        && p95_ratio <= 2.5;
    const bool pass =
        all_complete && recovered_any && deterministic && p95_ok;

    std::cout << "\nrecovered-job p95: "
              << p95_faulted / ticksPerMicrosecond << "us vs "
              << p95_clean / ticksPerMicrosecond
              << "us fault-free (ratio " << p95_ratio
              << ", gate 2.5)\n";

    std::ostringstream json;
    json << "{\n  \"report\": " << run1.toJson(platform.name, seed)
         << ",\n  \"baseline_makespan_ticks\": " << baseline.makespan
         << ",\n  \"recovered_p95_ticks\": " << p95_faulted
         << ",\n  \"recovered_baseline_p95_ticks\": " << p95_clean
         << ",\n  \"recovered_p95_ratio\": " << p95_ratio
         << ",\n  \"acceptance\": {\n"
         << "    \"all_complete\": "
         << (all_complete ? "true" : "false")
         << ",\n    \"recovered_any\": "
         << (recovered_any ? "true" : "false")
         << ",\n    \"deterministic\": "
         << (deterministic ? "true" : "false")
         << ",\n    \"p95_ok\": " << (p95_ok ? "true" : "false")
         << ",\n    \"pass\": " << (pass ? "true" : "false")
         << "\n  }\n}\n";

    const char *env = std::getenv("PROACT_BENCH_JSON");
    const std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_recovery.json";
    std::ofstream(path) << json.str();

    std::cout << "acceptance: "
              << (all_complete ? "all jobs completed" : "JOBS LOST")
              << ", " << run1.recoveries.size()
              << " recoveries (need >= 1), report "
              << (deterministic ? "bit-identical" : "DIVERGES")
              << " across two serves, p95 ratio "
              << (p95_ok ? "within" : "EXCEEDS") << " gate\n"
              << "JSON written to " << path << "\n";
    return pass ? 0 : 1;
}
