/**
 * @file
 * Ablation for the paper's Sec. III-D hardware proposal: compare the
 * software agents (Polling, CDP) against the envisioned dedicated
 * hardware agent (counters and transfer triggering off the SMs) on
 * 4x Volta, at the profiler-chosen configuration per application.
 *
 * Expected shape: the hardware agent matches or beats both software
 * agents everywhere — it removes the tracking slowdown of Fig. 8 —
 * and beats inline even on the dense-write apps, supporting the
 * paper's claim that "a hardware implementation [would] outperform
 * the inline variant in all cases".
 */

#include "bench/bench_common.hh"

#include <iomanip>
#include <iostream>

using namespace proact;
using namespace proact::bench;

int
main()
{
    const std::uint64_t scale = envFootprintScale();
    const PlatformSpec platform = voltaPlatform();
    const auto apps = standardWorkloadNames();

    std::cout << "Ablation: software vs hardware transfer agents on "
              << platform.name << " (speedup over 1 GPU)\n\n";
    std::cout << std::left << std::setw(12) << "app" << std::right
              << std::setw(10) << "Inline" << std::setw(10) << "CDP"
              << std::setw(10) << "Polling" << std::setw(10) << "HW"
              << std::setw(12) << "Infinite" << "\n";

    for (const auto &app : apps) {
        const Tick single = singleGpuReference(platform, app, scale);
        auto workload =
            makeScaledWorkload(app, platform.numGpus, scale);

        Profiler profiler(platform, defaultProfilerOptions());
        const TransferConfig best =
            profiler.profile(*workload).bestDecoupled().config;

        auto speedup = [&](TransferMechanism mech) {
            MultiGpuSystem system(platform);
            system.setFunctional(false);
            ProactRuntime::Options options;
            options.config = best;
            options.config.mechanism = mech;
            ProactRuntime runtime(system, options);
            return static_cast<double>(single)
                / static_cast<double>(runtime.run(*workload));
        };

        const Tick ideal =
            runParadigm(platform, *workload, Paradigm::InfiniteBw);

        std::cout << std::left << std::setw(12) << app
                  << cell(speedup(TransferMechanism::Inline), 10)
                  << cell(speedup(TransferMechanism::Cdp), 10)
                  << cell(speedup(TransferMechanism::Polling), 10)
                  << cell(speedup(TransferMechanism::Hardware), 10)
                  << cell(static_cast<double>(single)
                              / static_cast<double>(ideal),
                          12)
                  << "\n";
    }
    return 0;
}
