/**
 * @file
 * Prints paper Table I: the key characteristics of the four
 * simulated test systems, as encoded in the platform presets.
 */

#include "system/platform.hh"

#include <iomanip>
#include <iostream>
#include <sstream>

using namespace proact;

int
main()
{
    const auto platforms = allPlatforms();

    auto row = [&](const std::string &label, auto getter) {
        std::cout << std::left << std::setw(18) << label;
        for (const auto &p : platforms)
            std::cout << std::right << std::setw(16) << getter(p);
        std::cout << "\n";
    };

    std::cout << "Table I: simulated test systems\n\n";
    row("System", [](const PlatformSpec &p) { return p.name; });
    row("GPU", [](const PlatformSpec &p) { return p.gpu.name; });
    row("GPU Arch",
        [](const PlatformSpec &p) { return archName(p.gpu.arch); });
    row("#GPUs",
        [](const PlatformSpec &p) { return std::to_string(p.numGpus); });
    row("Interconnect",
        [](const PlatformSpec &p) { return p.fabric.name; });
    row("Bidir BW/GPU GB/s", [](const PlatformSpec &p) {
        return std::to_string(static_cast<int>(
            p.fabric.perGpuBidirBandwidth / 1e9));
    });
    row("#Cores (SMs)", [](const PlatformSpec &p) {
        return std::to_string(p.gpu.numSms);
    });
    row("TFLOPS", [](const PlatformSpec &p) {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(2) << p.gpu.tflops;
        return oss.str();
    });
    row("Mem BW GB/s", [](const PlatformSpec &p) {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(1)
            << p.gpu.memBandwidth / 1e9;
        return oss.str();
    });
    row("Mem Cap GB", [](const PlatformSpec &p) {
        return std::to_string(
            static_cast<int>(p.gpu.memCapacity / GiB));
    });
    return 0;
}
