/**
 * @file
 * Unit tests for StatSet and Histogram.
 */

#include "sim/stats.hh"

#include <gtest/gtest.h>

#include <sstream>

using namespace proact;

TEST(StatSet, AbsentNamesReadZero)
{
    StatSet s;
    EXPECT_DOUBLE_EQ(s.get("nothing"), 0.0);
    EXPECT_FALSE(s.has("nothing"));
}

TEST(StatSet, IncrementAndSet)
{
    StatSet s;
    s.inc("a");
    s.inc("a", 2.5);
    EXPECT_DOUBLE_EQ(s.get("a"), 3.5);
    s.set("a", 7.0);
    EXPECT_DOUBLE_EQ(s.get("a"), 7.0);
    EXPECT_TRUE(s.has("a"));
}

TEST(StatSet, MaxTracksMaximum)
{
    StatSet s;
    s.max("m", 5.0);
    s.max("m", 3.0);
    s.max("m", 9.0);
    EXPECT_DOUBLE_EQ(s.get("m"), 9.0);
}

TEST(StatSet, MergeSums)
{
    StatSet a, b;
    a.inc("x", 1.0);
    a.inc("y", 2.0);
    b.inc("y", 3.0);
    b.inc("z", 4.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 1.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 5.0);
    EXPECT_DOUBLE_EQ(a.get("z"), 4.0);
}

TEST(StatSet, ClearEmpties)
{
    StatSet s;
    s.inc("a");
    s.clear();
    EXPECT_FALSE(s.has("a"));
    EXPECT_TRUE(s.all().empty());
}

TEST(StatSet, DumpIsSortedByName)
{
    StatSet s;
    s.set("zeta", 1);
    s.set("alpha", 2);
    std::ostringstream oss;
    s.dump(oss, "p.");
    EXPECT_EQ(oss.str(), "p.alpha = 2\np.zeta = 1\n");
}

TEST(Histogram, PowerOfTwoBuckets)
{
    Histogram h;
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(4);
    // [1,2): 1 sample; [2,4): 2; [4,8): 1.
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(99), 0u);
}

TEST(Histogram, ZeroGoesToBucketZero)
{
    Histogram h;
    h.record(0);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.samples(), 1u);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h;
    h.record(256, 10);
    EXPECT_EQ(h.samples(), 10u);
    EXPECT_EQ(h.total(), 2560u);
    EXPECT_EQ(h.bucket(8), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 256.0);
}

TEST(Histogram, MinMaxTracking)
{
    Histogram h;
    h.record(100);
    h.record(7);
    h.record(5000);
    EXPECT_EQ(h.minValue(), 7u);
    EXPECT_EQ(h.maxValue(), 5000u);
}

TEST(Histogram, MeanOfEmptyIsZero)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ClearResets)
{
    Histogram h;
    h.record(64, 3);
    h.clear();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.numBuckets(), 0u);
}
