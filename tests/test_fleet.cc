/**
 * @file
 * Tests for the multi-tenant fleet serving layer: seeded stream
 * generation, deterministic admission, disjoint-placement isolation
 * (a tenant's faults never perturb a neighbour), plane-sharing
 * contention, and cache-hit strategy election.
 */

#include "fleet/admission.hh"
#include "fleet/elector.hh"
#include "fleet/fleet_session.hh"
#include "fleet/job.hh"
#include "fleet/placement.hh"
#include "sim/logging.hh"
#include "system/platform.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace proact;
using namespace proact::fleet;

namespace {

/** A job list pinned by hand (no generator draws). */
JobSpec
fixedJob(int id, const std::string &workload, int gpus,
         Tick arrival = 0, int priority = 0)
{
    JobSpec job;
    job.id = id;
    job.workload = workload;
    job.gpus = gpus;
    job.arrival = arrival;
    job.priority = priority;
    return job;
}

} // namespace

TEST(FleetJobs, StreamIsSeedDeterministicAndAppendStable)
{
    ArrivalModel model;
    model.seed = 11;
    model.numJobs = 24;

    const auto a = generateJobStream(model);
    const auto b = generateJobStream(model);
    ASSERT_EQ(a.size(), 24u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].gpus, b[i].gpus);
        EXPECT_EQ(a[i].priority, b[i].priority);
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].deadline, b[i].deadline);
        EXPECT_EQ(a[i].seed, b[i].seed);
    }

    // Per-job derived streams: growing the campaign never rewrites
    // the existing jobs.
    model.numJobs = 32;
    const auto longer = generateJobStream(model);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(longer[i].workload, a[i].workload);
        EXPECT_EQ(longer[i].arrival, a[i].arrival);
    }

    // Arrivals are nondecreasing and the mix spans the registry.
    std::vector<std::string> seen;
    for (std::size_t i = 1; i < longer.size(); ++i)
        EXPECT_GE(longer[i].arrival, longer[i - 1].arrival);
    for (const auto &job : longer)
        seen.push_back(job.workload);
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    EXPECT_GE(seen.size(), 3u);
}

TEST(FleetPlacement, DisjointGivesEveryPlaneToOneTenant)
{
    PlacementAllocator alloc(dgx2Platform(),
                             PlacementMode::Disjoint);
    EXPECT_EQ(alloc.numPlanes(), 2);
    EXPECT_EQ(alloc.gpusPerPlane(), 8);

    const auto a = alloc.tryAllocate(4);
    const auto b = alloc.tryAllocate(4);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->shareCount, 1);
    EXPECT_EQ(b->shareCount, 1);
    ASSERT_EQ(a->planes.size(), 1u);
    ASSERT_EQ(b->planes.size(), 1u);
    EXPECT_NE(a->planes[0], b->planes[0]);

    // Both planes hold a tenant: a third tenant must wait even
    // though 8 GPUs sit idle.
    EXPECT_FALSE(alloc.tryAllocate(2).has_value());

    alloc.release(*a);
    const auto c = alloc.tryAllocate(8);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->planes[0], a->planes[0]);
}

TEST(FleetPlacement, SharingPacksLeastLoadedPlaneFirst)
{
    PlacementAllocator alloc(dgx2Platform(),
                             PlacementMode::PlaneSharing, 2);
    const auto a = alloc.tryAllocate(4);
    const auto b = alloc.tryAllocate(4);
    const auto c = alloc.tryAllocate(4);
    const auto d = alloc.tryAllocate(4);
    ASSERT_TRUE(a && b && c && d);

    // Spread before sharing: the first two tenants land on distinct
    // planes, the next two co-locate and see shareCount 2.
    EXPECT_NE(a->planes[0], b->planes[0]);
    EXPECT_EQ(a->shareCount, 1);
    EXPECT_EQ(b->shareCount, 1);
    EXPECT_EQ(c->shareCount, 2);
    EXPECT_EQ(d->shareCount, 2);

    // GPUs never overlap even on a shared plane.
    std::vector<int> all;
    for (const auto &p : {a, b, c, d})
        all.insert(all.end(), p->gpus.begin(), p->gpus.end());
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());

    // Tenant cap: both planes carry two tenants already.
    EXPECT_FALSE(alloc.tryAllocate(2).has_value());
}

TEST(FleetAdmission, OrdersByPriorityThenArrivalThenId)
{
    const JobSpec lo = fixedJob(5, "Jacobi", 2, 100, 0);
    const JobSpec hi_late = fixedJob(7, "Jacobi", 2, 200, 2);
    const JobSpec hi_early = fixedJob(9, "Jacobi", 2, 50, 2);
    const JobSpec hi_tie = fixedJob(3, "Jacobi", 2, 50, 2);

    std::vector<const JobSpec *> queue = {&lo, &hi_late, &hi_early,
                                          &hi_tie};
    AdmissionController::sortQueue(queue);
    EXPECT_EQ(queue[0]->id, 3); // prio 2, t=50, lowest id.
    EXPECT_EQ(queue[1]->id, 9); // prio 2, t=50.
    EXPECT_EQ(queue[2]->id, 7); // prio 2, t=200.
    EXPECT_EQ(queue[3]->id, 5); // prio 0.
}

TEST(FleetAdmission, DefersCongestedCoLocationUnlessIdle)
{
    PlacementAllocator alloc(dgx2Platform(),
                             PlacementMode::PlaneSharing, 2);
    AdmissionController admission;
    const JobSpec job = fixedJob(0, "Jacobi", 4);

    // The first two tenants spread onto their own planes; with
    // shareCount 1, congestion never blocks them.
    const auto first = admission.tryAdmit(
        job, alloc, [](int) { return true; }, false);
    const auto second = admission.tryAdmit(
        job, alloc, [](int) { return true; }, false);
    ASSERT_TRUE(first && second);
    EXPECT_EQ(first->shareCount, 1);
    EXPECT_EQ(second->shareCount, 1);

    // The third would co-locate — but every plane reads congested:
    // deferred, and the failed attempt must not leak seats.
    const auto deferred = admission.tryAdmit(
        job, alloc, [](int) { return true; }, false);
    EXPECT_FALSE(deferred.has_value());
    EXPECT_EQ(admission.stats().get("admission.deferred_congestion"),
              1.0);
    EXPECT_EQ(alloc.tenantsOnPlane(0) + alloc.tenantsOnPlane(1), 2);

    // Same ask on an idle fabric is force-admitted instead of
    // deadlocking.
    const auto forced = admission.tryAdmit(
        job, alloc, [](int) { return true; }, true);
    EXPECT_TRUE(forced.has_value());
    EXPECT_EQ(admission.stats().get("admission.forced"), 1.0);
}

TEST(FleetSessionTest, ServeIsDeterministicUnderFixedSeed)
{
    ArrivalModel model;
    model.seed = 3;
    model.numJobs = 10;
    const auto jobs = generateJobStream(model);

    FleetSession session(dgx2Platform());
    const FleetReport first = session.serve(jobs);
    const FleetReport second = session.serve(jobs);

    ASSERT_EQ(first.tenants.size(), jobs.size());
    ASSERT_EQ(second.tenants.size(), jobs.size());
    for (std::size_t i = 0; i < first.tenants.size(); ++i) {
        const TenantRecord &a = first.tenants[i];
        const TenantRecord &b = second.tenants[i];
        EXPECT_EQ(a.job.id, b.job.id);
        EXPECT_EQ(a.placement.gpus, b.placement.gpus);
        EXPECT_EQ(a.placement.shareCount, b.placement.shareCount);
        EXPECT_EQ(a.admitted, b.admitted);
        EXPECT_EQ(a.serviceTicks, b.serviceTicks);
        EXPECT_EQ(a.latency, b.latency);
        EXPECT_EQ(a.election.paradigm, b.election.paradigm);
        EXPECT_EQ(a.election.config.toString(),
                  b.election.config.toString());
    }
    EXPECT_EQ(first.percentileTable(), second.percentileTable());
    EXPECT_EQ(first.p95, second.p95);
}

TEST(FleetSessionTest, SecondServeElectsEntirelyFromCache)
{
    ArrivalModel model;
    model.seed = 5;
    model.numJobs = 8;
    const auto jobs = generateJobStream(model);

    FleetSession session(dgx2Platform());
    const FleetReport first = session.serve(jobs);
    EXPECT_GT(first.electionSweeps, 0u);

    const FleetReport second = session.serve(jobs);
    EXPECT_EQ(second.electionSweeps, 0u);
    EXPECT_EQ(second.electionCacheHits,
              static_cast<std::uint64_t>(jobs.size()));
    for (const TenantRecord &t : second.tenants)
        EXPECT_TRUE(t.election.cacheHit);
}

TEST(FleetSessionTest, DisjointPlacementIsolatesTenantFaults)
{
    // Two simultaneous tenants, one plane each. Tenant 0 runs on a
    // lossy fabric; tenant 1 must not notice — not a dropped
    // delivery, not a retry, not one tick of service time.
    const std::vector<JobSpec> jobs = {fixedJob(0, "Jacobi", 4),
                                       fixedJob(1, "Jacobi", 4)};

    FleetSession::Options faulty;
    faulty.placement = PlacementMode::Disjoint;
    faulty.faultPlanFor = [](const JobSpec &job, int) {
        FaultPlan plan;
        if (job.id == 0)
            plan.dropDeliveries(0, maxTick, 0.05);
        return plan;
    };
    std::uint64_t observed_drops[2] = {0, 0};
    std::uint64_t observed_deliveries[2] = {0, 0};
    faulty.observerFor = [&](const JobSpec &job) {
        const int id = job.id;
        return [&observed_drops, &observed_deliveries, id](
                   const Interconnect::Request &,
                   const Interconnect::DeliverySample &sample) {
            if (sample.dropped)
                ++observed_drops[id];
            else
                ++observed_deliveries[id];
        };
    };

    FleetSession session(dgx2Platform(), faulty);
    const FleetReport report = session.serve(jobs);
    ASSERT_EQ(report.tenants.size(), 2u);
    const TenantRecord &faulted = report.tenants[0];
    const TenantRecord &clean = report.tenants[1];
    ASSERT_EQ(faulted.job.id, 0);
    ASSERT_EQ(clean.job.id, 1);

    // Simultaneous arrivals on a disjoint fleet start together.
    EXPECT_EQ(faulted.admitted, clean.admitted);
    EXPECT_EQ(clean.placement.shareCount, 1);

    // The injected faults landed on tenant 0 alone; the per-tenant
    // observers (riding the observer list next to each slice's own
    // machinery) agree with the harness counters.
    EXPECT_GT(faulted.run.faultsDropped, 0u);
    EXPECT_GT(observed_drops[0], 0u);
    EXPECT_EQ(clean.run.faultsDropped, 0u);
    EXPECT_EQ(clean.run.retries, 0u);
    EXPECT_EQ(observed_drops[1], 0u);
    EXPECT_GT(observed_deliveries[1], 0u);

    // Zero cross-tenant leakage: the clean tenant's run is
    // tick-identical to the same fleet with no faults anywhere.
    FleetSession::Options pristine;
    pristine.placement = PlacementMode::Disjoint;
    FleetSession baseline_session(dgx2Platform(), pristine);
    const FleetReport baseline = baseline_session.serve(jobs);
    EXPECT_EQ(clean.serviceTicks, baseline.tenants[1].serviceTicks);
    EXPECT_EQ(clean.run.wireBytes, baseline.tenants[1].run.wireBytes);
    EXPECT_EQ(clean.latency, baseline.tenants[1].latency);
}

TEST(FleetSessionTest, PlaneSharingContentionRaisesTenantP95)
{
    // Four simultaneous 4-GPU tenants: sharing packs two per plane
    // (two exclusive, two halved); disjoint serializes instead.
    const std::vector<JobSpec> jobs = {fixedJob(0, "Jacobi", 4),
                                       fixedJob(1, "Jacobi", 4),
                                       fixedJob(2, "Jacobi", 4),
                                       fixedJob(3, "Jacobi", 4)};

    FleetSession::Options sharing;
    sharing.placement = PlacementMode::PlaneSharing;
    FleetSession shared_session(dgx2Platform(), sharing);
    const FleetReport shared = shared_session.serve(jobs);

    FleetSession::Options isolated;
    isolated.placement = PlacementMode::Disjoint;
    FleetSession disjoint_session(dgx2Platform(), isolated);
    const FleetReport disjoint = disjoint_session.serve(jobs);

    ASSERT_EQ(shared.tenants.size(), 4u);
    ASSERT_EQ(disjoint.tenants.size(), 4u);

    // Sharing happened, and every disjoint run was exclusive.
    std::vector<Tick> shared_service, exclusive_service;
    for (const TenantRecord &t : shared.tenants) {
        if (t.placement.shareCount > 1)
            shared_service.push_back(t.serviceTicks);
    }
    ASSERT_FALSE(shared_service.empty());
    for (const TenantRecord &t : disjoint.tenants) {
        EXPECT_EQ(t.placement.shareCount, 1);
        exclusive_service.push_back(t.serviceTicks);
    }

    // A halved fabric slice serves strictly slower: the shared
    // tenants' p95 service time exceeds the exclusive baseline's.
    EXPECT_GT(FleetReport::percentile(shared_service, 95.0),
              FleetReport::percentile(exclusive_service, 95.0));

    // ... and the fleet-level monitor saw the co-location: the
    // shared planes were classified CONGESTED at admission time.
    EXPECT_GT(shared.admitted, 0u);
    bool any_congestion_event = false;
    for (const auto &t : shared_session.health().transitions())
        any_congestion_event |= t.to == LinkState::Congested;
    EXPECT_TRUE(any_congestion_event);
}

TEST(FleetSessionTest, PriorityJumpsTheQueueUnderBackpressure)
{
    // Saturate both planes with 8-GPU tenants of different lengths
    // (so the planes free up at distinct ticks), then race a low-
    // and a high-priority job: the high-priority one (later id, same
    // arrival) must start first when the first plane frees up.
    std::vector<JobSpec> jobs = {
        fixedJob(0, "Jacobi", 8, 0),
        fixedJob(1, "X-ray CT", 8, 0),
        fixedJob(2, "SSSP", 8, 0, /*priority=*/0),
        fixedJob(3, "SSSP", 8, 0, /*priority=*/2),
    };

    FleetSession session(dgx2Platform());
    const FleetReport report = session.serve(jobs);
    ASSERT_EQ(report.tenants.size(), 4u);

    Tick start2 = 0, start3 = 0;
    for (const TenantRecord &t : report.tenants) {
        if (t.job.id == 2)
            start2 = t.admitted;
        if (t.job.id == 3)
            start3 = t.admitted;
    }
    EXPECT_LT(start3, start2);
}
