/**
 * @file
 * Unit tests for the GPU timing model: specs, kernel streams, wave
 * scheduling, the HBM channel, the atomic unit, and interference
 * reservations.
 */

#include "gpu/gpu.hh"
#include "gpu/gpu_spec.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;

namespace {

KernelLaunch
simpleKernel(int num_ctas, double flops, std::uint64_t local_bytes,
             EventQueue::Callback on_complete = nullptr)
{
    KernelLaunch launch;
    launch.desc.name = "test";
    launch.desc.numCtas = num_ctas;
    launch.desc.body = [flops, local_bytes](const CtaContext &) {
        CtaWork w;
        w.flops = flops;
        w.localBytes = local_bytes;
        return w;
    };
    launch.onComplete = std::move(on_complete);
    return launch;
}

} // namespace

TEST(GpuSpec, TableOneValues)
{
    const GpuSpec kepler = keplerSpec();
    EXPECT_EQ(kepler.numSms, 15);
    EXPECT_DOUBLE_EQ(kepler.tflops, 1.43);
    EXPECT_DOUBLE_EQ(kepler.memBandwidth, 288.4e9);
    EXPECT_EQ(kepler.memCapacity, 12 * GiB);
    EXPECT_FALSE(kepler.umPageFaulting);

    const GpuSpec pascal = pascalSpec();
    EXPECT_EQ(pascal.numSms, 56);
    EXPECT_TRUE(pascal.umPageFaulting);

    const GpuSpec volta = voltaSpec();
    EXPECT_EQ(volta.numSms, 80);
    EXPECT_DOUBLE_EQ(volta.memBandwidth, 920.0e9);
    EXPECT_EQ(volta32Spec().memCapacity, 32 * GiB);
}

TEST(GpuSpec, DerivedQuantities)
{
    const GpuSpec volta = voltaSpec();
    EXPECT_NEAR(volta.smFlops(), 7.8e12 / 80.0, 1e3);
    EXPECT_EQ(volta.maxResidentCtas(), 80 * 8);
}

TEST(GpuSpec, VoltaCdpLaunchCostsMost)
{
    // Paper Sec. V-A: dynamic-kernel initiation highest on Volta.
    EXPECT_GT(voltaSpec().cdpLaunchLatency,
              pascalSpec().cdpLaunchLatency);
    EXPECT_GT(voltaSpec().cdpLaunchLatency,
              keplerSpec().cdpLaunchLatency);
}

TEST(Gpu, LaunchValidation)
{
    EventQueue eq;
    Gpu gpu(eq, voltaSpec(), 0);
    KernelLaunch bad;
    bad.desc.numCtas = 0;
    bad.desc.body = [](const CtaContext &) { return CtaWork{}; };
    EXPECT_THROW(gpu.launch(bad), FatalError);

    KernelLaunch nobody;
    nobody.desc.numCtas = 1;
    EXPECT_THROW(gpu.launch(nobody), FatalError);
}

TEST(Gpu, MemoryBoundKernelTimeMatchesBandwidth)
{
    EventQueue eq;
    const GpuSpec spec = voltaSpec();
    Gpu gpu(eq, spec, 0);

    // 1024 CTAs x 1 MB = 1 GB of traffic at 920 GB/s ~= 1.087 ms.
    Tick end = 0;
    gpu.launch(simpleKernel(1024, 0.0, 1 << 20,
                            [&] { end = eq.curTick(); }));
    eq.run();
    const double seconds = secondsFromTicks(end);
    EXPECT_NEAR(seconds, 1.0737e9 / 920.0e9, 0.05e-3);
}

TEST(Gpu, ComputeBoundKernelScalesWithWaves)
{
    EventQueue eq;
    const GpuSpec spec = voltaSpec();
    Gpu gpu(eq, spec, 0);

    // 2 waves of max-resident CTAs, each 97.5 GFLOP/SM * 10 us.
    const double cta_flops = spec.smFlops() * 10e-6;
    const int ctas = spec.maxResidentCtas() * 2;
    Tick end = 0;
    gpu.launch(simpleKernel(ctas, cta_flops, 0,
                            [&] { end = eq.curTick(); }));
    eq.run();
    // ~2 waves x 10 us + launch latency.
    const Tick expected =
        spec.kernelLaunchLatency + 2 * 10 * ticksPerMicrosecond;
    EXPECT_NEAR(static_cast<double>(end),
                static_cast<double>(expected), 1e6 /* 1 us */);
}

TEST(Gpu, StragglerDrainsAtFullBandwidth)
{
    // One monster CTA among small ones must not serialize the kernel
    // at a fractional bandwidth share (regression test for the
    // fixed-share model).
    EventQueue eq;
    const GpuSpec spec = voltaSpec();
    Gpu gpu(eq, spec, 0);

    KernelLaunch launch;
    launch.desc.numCtas = 100;
    launch.desc.body = [](const CtaContext &ctx) {
        CtaWork w;
        w.localBytes = ctx.ctaId == 99 ? (64 << 20) : 1024;
        return w;
    };
    Tick end = 0;
    launch.onComplete = [&] { end = eq.curTick(); };
    gpu.launch(launch);
    eq.run();

    // Total traffic ~64 MB at 920 GB/s ~= 73 us (plus overheads),
    // far below the ~4.5 ms a 1/640 share would cost.
    EXPECT_LT(secondsFromTicks(end), 0.3e-3);
}

TEST(Gpu, StreamSerializesKernels)
{
    EventQueue eq;
    Gpu gpu(eq, voltaSpec(), 0);
    std::vector<int> order;
    gpu.launch(simpleKernel(8, 0, 1 << 20,
                            [&] { order.push_back(1); }));
    gpu.launch(simpleKernel(8, 0, 1024,
                            [&] { order.push_back(2); }));
    EXPECT_TRUE(gpu.busy());
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_FALSE(gpu.busy());
}

TEST(Gpu, CtaHooksFireOncePerCta)
{
    EventQueue eq;
    Gpu gpu(eq, voltaSpec(), 0);
    std::vector<int> seen;
    KernelLaunch launch = simpleKernel(10, 0, 4096);
    launch.onCtaComplete = [&](int cta) { seen.push_back(cta); };
    gpu.launch(launch);
    eq.run();
    EXPECT_EQ(seen.size(), 10u);
    std::sort(seen.begin(), seen.end());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(seen[i], i);
}

TEST(Gpu, InstrumentedKernelPaysAtomicRoundTrip)
{
    EventQueue eq;
    const GpuSpec spec = voltaSpec();

    auto run = [&](bool instrumented) {
        EventQueue q;
        Gpu gpu(q, spec, 0);
        KernelLaunch launch;
        launch.desc.numCtas = 4;
        launch.desc.body = [](const CtaContext &) {
            CtaWork w;
            w.localBytes = 1024;
            return w;
        };
        launch.instrumented = instrumented;
        Tick end = 0;
        launch.onComplete = [&end, &q] { end = q.curTick(); };
        gpu.launch(launch);
        q.run();
        return end;
    };

    EXPECT_GE(run(true), run(false) + spec.atomicLatency);
}

TEST(Gpu, ComputeReservationSlowsComputeBoundKernels)
{
    const GpuSpec spec = voltaSpec();
    auto run = [&](double share) {
        EventQueue eq;
        Gpu gpu(eq, spec, 0);
        gpu.reserveCompute(share);
        Tick end = 0;
        gpu.launch(simpleKernel(spec.maxResidentCtas(),
                                spec.smFlops() * 100e-6, 0,
                                [&] { end = eq.curTick(); }));
        eq.run();
        return end;
    };
    const Tick base = run(0.0);
    const Tick slowed = run(0.5);
    EXPECT_NEAR(static_cast<double>(slowed - voltaSpec()
                                                 .kernelLaunchLatency)
                    / static_cast<double>(
                          base - voltaSpec().kernelLaunchLatency),
                2.0, 0.05);
}

TEST(Gpu, MemBwReservationSlowsMemoryBoundKernels)
{
    const GpuSpec spec = voltaSpec();
    auto run = [&](double share) {
        EventQueue eq;
        Gpu gpu(eq, spec, 0);
        gpu.reserveMemBw(share);
        Tick end = 0;
        gpu.launch(simpleKernel(512, 0, 1 << 20,
                                [&] { end = eq.curTick(); }));
        eq.run();
        return end;
    };
    EXPECT_GT(run(0.5), run(0.0));
}

TEST(Gpu, ReleaseRestoresRates)
{
    EventQueue eq;
    Gpu gpu(eq, voltaSpec(), 0);
    gpu.reserveCompute(0.3);
    gpu.reserveMemBw(0.2);
    gpu.releaseCompute(0.3);
    gpu.releaseMemBw(0.2);
    EXPECT_DOUBLE_EQ(gpu.computeFactor(), 1.0);
    EXPECT_DOUBLE_EQ(gpu.memBwFactor(), 1.0);
}

TEST(Gpu, HbmTrafficOverheadSlowsKernel)
{
    const GpuSpec spec = voltaSpec();
    auto run = [&](double overhead) {
        EventQueue eq;
        Gpu gpu(eq, spec, 0);
        KernelLaunch launch = simpleKernel(512, 0, 1 << 20);
        launch.hbmTrafficOverhead = overhead;
        Tick end = 0;
        launch.onComplete = [&end, &eq] { end = eq.curTick(); };
        gpu.launch(launch);
        eq.run();
        return end;
    };
    const Tick base = run(0.0);
    const Tick loaded = run(0.12);
    EXPECT_GT(loaded, base);
    // The slowdown approaches the overhead fraction.
    EXPECT_NEAR(static_cast<double>(loaded) / base, 1.12, 0.03);
}

TEST(Gpu, StatsAccumulate)
{
    EventQueue eq;
    Gpu gpu(eq, voltaSpec(), 0);
    gpu.launch(simpleKernel(16, 100.0, 2048));
    eq.run();
    EXPECT_DOUBLE_EQ(gpu.stats.get("kernels"), 1.0);
    EXPECT_DOUBLE_EQ(gpu.stats.get("ctas"), 16.0);
    EXPECT_DOUBLE_EQ(gpu.stats.get("flops"), 1600.0);
    EXPECT_DOUBLE_EQ(gpu.stats.get("local_bytes"), 16.0 * 2048);
}

TEST(Gpu, FunctionalFlagReachesCtaContext)
{
    EventQueue eq;
    Gpu gpu(eq, voltaSpec(), 0);
    bool functional_seen = true;
    gpu.setFunctional(false);
    KernelLaunch launch;
    launch.desc.numCtas = 1;
    launch.desc.body = [&](const CtaContext &ctx) {
        functional_seen = ctx.functional;
        return CtaWork{};
    };
    gpu.launch(launch);
    eq.run();
    EXPECT_FALSE(functional_seen);
}
