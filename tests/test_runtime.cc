/**
 * @file
 * Unit tests for the PROACT runtime (inline and decoupled paths).
 */

#include "proact/runtime.hh"
#include "tests/toy_workload.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;
using proact::test::ToyWorkload;

namespace {

ProactRuntime::Options
decoupledOptions(TransferMechanism mech = TransferMechanism::Polling,
                 std::uint64_t chunk = 64 * KiB,
                 std::uint32_t threads = 2048)
{
    ProactRuntime::Options options;
    options.config.mechanism = mech;
    options.config.chunkBytes = chunk;
    options.config.transferThreads = threads;
    return options;
}

} // namespace

TEST(ProactRuntime, RejectsMismatchedGpuCount)
{
    ToyWorkload workload;
    workload.setup(2);
    MultiGpuSystem system(voltaPlatform()); // 4 GPUs.
    ProactRuntime runtime(system, decoupledOptions());
    EXPECT_THROW(runtime.run(workload), FatalError);
}

TEST(ProactRuntime, RejectsZeroChunk)
{
    MultiGpuSystem system(voltaPlatform());
    auto options = decoupledOptions();
    options.config.chunkBytes = 0;
    EXPECT_THROW(ProactRuntime(system, options), FatalError);
}

TEST(ProactRuntime, DecoupledRunsAndVerifies)
{
    for (const auto mech :
         {TransferMechanism::Polling, TransferMechanism::Cdp,
          TransferMechanism::Hardware}) {
        ToyWorkload workload;
        workload.setup(4);
        MultiGpuSystem system(voltaPlatform());
        ProactRuntime runtime(system, decoupledOptions(mech));
        const Tick ticks = runtime.run(workload);
        EXPECT_GT(ticks, 0u) << mechanismName(mech);
        EXPECT_TRUE(workload.verify()) << mechanismName(mech);
    }
}

TEST(ProactRuntime, InlineRunsAndVerifies)
{
    ToyWorkload workload;
    workload.setup(4);
    MultiGpuSystem system(voltaPlatform());
    ProactRuntime::Options options;
    options.config.mechanism = TransferMechanism::Inline;
    ProactRuntime runtime(system, options);
    EXPECT_GT(runtime.run(workload), 0u);
    EXPECT_TRUE(workload.verify());
}

TEST(ProactRuntime, AllPayloadReachesAllPeers)
{
    ToyWorkload::Params params;
    params.iterations = 2;
    ToyWorkload workload(params);
    workload.setup(4);
    MultiGpuSystem system(voltaPlatform());
    ProactRuntime runtime(system, decoupledOptions());
    runtime.run(workload);

    // 4 GPUs x 3 peers x partition x 2 iterations.
    const std::uint64_t expected =
        4ull * 3ull * params.partitionBytes * 2ull;
    EXPECT_EQ(system.fabric().totalPayloadBytes(), expected);
    EXPECT_DOUBLE_EQ(runtime.stats().get("delivered_bytes"),
                     static_cast<double>(expected));
}

TEST(ProactRuntime, SingleGpuSkipsFabric)
{
    ToyWorkload workload;
    workload.setup(1);
    MultiGpuSystem system(voltaPlatform().withGpuCount(1));
    ProactRuntime runtime(system, decoupledOptions());
    EXPECT_GT(runtime.run(workload), 0u);
    EXPECT_EQ(system.fabric().totalPayloadBytes(), 0u);
    EXPECT_TRUE(workload.verify());
}

TEST(ProactRuntime, MaxIterationsLimitsRun)
{
    ToyWorkload::Params params;
    params.iterations = 5;
    ToyWorkload workload(params);
    workload.setup(2);
    MultiGpuSystem system(voltaPlatform().withGpuCount(2));
    auto options = decoupledOptions();
    options.maxIterations = 2;
    ProactRuntime runtime(system, options);
    runtime.run(workload);
    EXPECT_DOUBLE_EQ(runtime.stats().get("iterations"), 2.0);
}

TEST(ProactRuntime, ElideTransfersMovesNoBytes)
{
    ToyWorkload workload;
    workload.setup(4);
    MultiGpuSystem system(voltaPlatform());
    auto options = decoupledOptions();
    options.elideTransfers = true;
    ProactRuntime runtime(system, options);
    EXPECT_GT(runtime.run(workload), 0u);
    EXPECT_EQ(system.fabric().totalPayloadBytes(), 0u);
    // Tracking still ran.
    EXPECT_GT(runtime.stats().get("counter_decrements"), 0.0);
}

TEST(ProactRuntime, ElidedRunIsFasterOrEqual)
{
    auto run = [](bool elide) {
        ToyWorkload::Params params;
        params.partitionBytes = 4 * MiB; // Make transfers matter.
        ToyWorkload workload(params);
        workload.setup(4);
        MultiGpuSystem system(voltaPlatform());
        auto options = decoupledOptions();
        options.elideTransfers = elide;
        ProactRuntime runtime(system, options);
        return runtime.run(workload);
    };
    EXPECT_LE(run(true), run(false));
}

TEST(ProactRuntime, TimingIndependentOfFunctionalMode)
{
    auto run = [](bool functional) {
        ToyWorkload workload;
        workload.setup(4);
        MultiGpuSystem system(voltaPlatform());
        system.setFunctional(functional);
        ProactRuntime runtime(system, decoupledOptions());
        return runtime.run(workload);
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(ProactRuntime, DeterministicAcrossRuns)
{
    auto run = [] {
        ToyWorkload workload;
        workload.setup(4);
        MultiGpuSystem system(voltaPlatform());
        ProactRuntime runtime(system, decoupledOptions());
        return runtime.run(workload);
    };
    EXPECT_EQ(run(), run());
}

TEST(ProactRuntime, HardwareAgentBeatsSoftware)
{
    auto run = [](TransferMechanism mech) {
        ToyWorkload::Params params;
        params.partitionBytes = 4 * MiB;
        ToyWorkload workload(params);
        workload.setup(4);
        MultiGpuSystem system(voltaPlatform());
        ProactRuntime runtime(system, decoupledOptions(mech));
        return runtime.run(workload);
    };
    const Tick hw = run(TransferMechanism::Hardware);
    EXPECT_LE(hw, run(TransferMechanism::Polling));
    EXPECT_LE(hw, run(TransferMechanism::Cdp));
}

TEST(ProactRuntime, FootprintScaleScalesTime)
{
    auto run = [](std::uint64_t scale) {
        ToyWorkload::Params params;
        params.partitionBytes = 1 * MiB;
        params.ctaLocalBytes = 512 * KiB; // Work >> fixed overheads.
        ToyWorkload workload(params);
        workload.setFootprintScale(scale);
        workload.setup(4);
        MultiGpuSystem system(voltaPlatform());
        ProactRuntime runtime(system, decoupledOptions());
        return runtime.run(workload);
    };
    const Tick base = run(1);
    const Tick scaled = run(8);
    // Time grows roughly with the footprint scale (fixed launch and
    // polling overheads keep it somewhat below 8x).
    EXPECT_GT(scaled, 5 * base);
    EXPECT_LT(scaled, 9 * base);
}

TEST(ProactRuntime, NamesDescribeConfiguration)
{
    MultiGpuSystem system(voltaPlatform());
    ProactRuntime::Options inline_opts;
    inline_opts.config.mechanism = TransferMechanism::Inline;
    EXPECT_EQ(ProactRuntime(system, inline_opts).name(),
              "PROACT-inline");
    ProactRuntime decoupled(system, decoupledOptions());
    EXPECT_NE(decoupled.name().find("PROACT-decoupled"),
              std::string::npos);
}
