/**
 * @file
 * Parameterized end-to-end property sweeps: for every (platform,
 * mechanism, GPU count) combination the PROACT pipeline must
 * conserve bytes, complete deterministically, and respect the
 * infinite-bandwidth bound.
 */

#include "harness/session.hh"
#include "proact/runtime.hh"
#include "tests/toy_workload.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

#include <sstream>

using namespace proact;
using proact::test::ToyWorkload;

namespace {

struct PipelineCase
{
    const char *platform;
    TransferMechanism mechanism;
    int gpus;
};

PlatformSpec
platformFor(const std::string &name, int gpus)
{
    PlatformSpec spec = voltaPlatform();
    if (name == "kepler")
        spec = keplerPlatform();
    else if (name == "pascal")
        spec = pascalPlatform();
    else if (name == "dgx2")
        spec = dgx2Platform();
    return spec.withGpuCount(gpus);
}

std::string
caseName(const ::testing::TestParamInfo<PipelineCase> &info)
{
    std::ostringstream oss;
    oss << info.param.platform << "_"
        << mechanismName(info.param.mechanism) << "_"
        << info.param.gpus << "gpu";
    return oss.str();
}

} // namespace

class PipelineProperty : public ::testing::TestWithParam<PipelineCase>
{
  protected:
    static constexpr std::uint64_t partitionBytes = 512 * KiB;

    ToyWorkload::Params
    params() const
    {
        ToyWorkload::Params p;
        p.partitionBytes = partitionBytes;
        p.iterations = 2;
        return p;
    }

    ProactRuntime::Options
    options() const
    {
        ProactRuntime::Options o;
        o.config.mechanism = GetParam().mechanism;
        o.config.chunkBytes = 64 * KiB;
        o.config.transferThreads = 1024;
        return o;
    }
};

TEST_P(PipelineProperty, ConservesBytesAcrossTheFabric)
{
    const auto param = GetParam();
    ToyWorkload workload(params());
    workload.setup(param.gpus);
    MultiGpuSystem system(platformFor(param.platform, param.gpus));
    system.setFunctional(false);
    ProactRuntime runtime(system, options());
    runtime.run(workload);

    const std::uint64_t expected = param.gpus <= 1
        ? 0
        : static_cast<std::uint64_t>(param.gpus)
            * (param.gpus - 1) * partitionBytes * 2;
    EXPECT_EQ(system.fabric().totalPayloadBytes(), expected);
    EXPECT_GE(system.fabric().totalWireBytes(), expected);
}

TEST_P(PipelineProperty, DeterministicAcrossRepeats)
{
    const auto param = GetParam();
    auto run_once = [&] {
        ToyWorkload workload(params());
        workload.setup(param.gpus);
        MultiGpuSystem system(
            platformFor(param.platform, param.gpus));
        system.setFunctional(false);
        ProactRuntime runtime(system, options());
        return runtime.run(workload);
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST_P(PipelineProperty, RespectsInfiniteBandwidthBound)
{
    const auto param = GetParam();
    const PlatformSpec plat =
        platformFor(param.platform, param.gpus);

    ToyWorkload ideal_wl(params());
    ideal_wl.setup(param.gpus);
    MultiGpuSystem ideal_system(plat);
    ideal_system.setFunctional(false);
    const Tick ideal = makeRuntime(Paradigm::InfiniteBw, ideal_system)
                           ->run(ideal_wl);

    ToyWorkload workload(params());
    workload.setup(param.gpus);
    MultiGpuSystem system(plat);
    system.setFunctional(false);
    ProactRuntime runtime(system, options());
    const Tick t = runtime.run(workload);

    EXPECT_GE(t, ideal);
}

TEST_P(PipelineProperty, TailNeverExceedsRuntime)
{
    const auto param = GetParam();
    ToyWorkload workload(params());
    workload.setup(param.gpus);
    MultiGpuSystem system(platformFor(param.platform, param.gpus));
    system.setFunctional(false);
    ProactRuntime runtime(system, options());
    const Tick t = runtime.run(workload);
    EXPECT_LE(runtime.tailTicks(), t);
}

TEST_P(PipelineProperty, StatsDumpIsWellFormed)
{
    const auto param = GetParam();
    ToyWorkload workload(params());
    workload.setup(param.gpus);
    MultiGpuSystem system(platformFor(param.platform, param.gpus));
    system.setFunctional(false);
    ProactRuntime runtime(system, options());
    runtime.run(workload);

    std::ostringstream oss;
    system.dumpStats(oss);
    const std::string dump = oss.str();
    EXPECT_NE(dump.find("gpu0:"), std::string::npos);
    EXPECT_NE(dump.find("fabric:"), std::string::npos);
    EXPECT_NE(dump.find("kernels"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    ::testing::Values(
        PipelineCase{"kepler", TransferMechanism::Cdp, 4},
        PipelineCase{"kepler", TransferMechanism::Polling, 2},
        PipelineCase{"pascal", TransferMechanism::Polling, 4},
        PipelineCase{"pascal", TransferMechanism::Hardware, 3},
        PipelineCase{"volta", TransferMechanism::Polling, 4},
        PipelineCase{"volta", TransferMechanism::Cdp, 4},
        PipelineCase{"volta", TransferMechanism::Inline, 4},
        PipelineCase{"volta", TransferMechanism::Hardware, 1},
        PipelineCase{"dgx2", TransferMechanism::Polling, 16},
        PipelineCase{"dgx2", TransferMechanism::Cdp, 8},
        PipelineCase{"dgx2", TransferMechanism::Inline, 12}),
    caseName);
