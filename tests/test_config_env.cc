/**
 * @file
 * Tests for configuration rendering and environment-variable
 * parsing used by the benchmark harnesses.
 */

#include "proact/config.hh"
#include "workloads/registry.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace proact;

namespace {

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : _name(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr) {
            _had = true;
            _old = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (_had)
            ::setenv(_name, _old.c_str(), 1);
        else
            ::unsetenv(_name);
    }

  private:
    const char *_name;
    bool _had = false;
    std::string _old;
};

} // namespace

TEST(ConfigEnv, ScaleShiftDefaultsToZero)
{
    ScopedEnv env("PROACT_SCALE_SHIFT", nullptr);
    EXPECT_EQ(envScaleShift(), 0);
}

TEST(ConfigEnv, ScaleShiftParsesAndClamps)
{
    {
        ScopedEnv env("PROACT_SCALE_SHIFT", "3");
        EXPECT_EQ(envScaleShift(), 3);
    }
    {
        ScopedEnv env("PROACT_SCALE_SHIFT", "99");
        EXPECT_EQ(envScaleShift(), 8); // Clamped.
    }
    {
        ScopedEnv env("PROACT_SCALE_SHIFT", "-4");
        EXPECT_EQ(envScaleShift(), 0);
    }
    {
        ScopedEnv env("PROACT_SCALE_SHIFT", "garbage");
        EXPECT_EQ(envScaleShift(), 0);
    }
}

TEST(ConfigEnv, ScaledWorkloadsShrink)
{
    auto big = makeWorkload("Jacobi", 0);
    auto small = makeWorkload("Jacobi", 2);
    big->setup(1);
    small->setup(1);
    const Phase pb = big->phase(0);
    const Phase ps = small->phase(0);
    EXPECT_EQ(pb.perGpu[0].bytesProduced,
              4 * ps.perGpu[0].bytesProduced);
}

TEST(ConfigEnv, FormatBytesRendering)
{
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(4 * KiB), "4kB");
    EXPECT_EQ(formatBytes(128 * KiB), "128kB");
    EXPECT_EQ(formatBytes(1 * MiB), "1MB");
    EXPECT_EQ(formatBytes(16 * MiB), "16MB");
    EXPECT_EQ(formatBytes(2 * GiB), "2GB");
    // Non-power-of-two values fall back to raw bytes.
    EXPECT_EQ(formatBytes(1000), "1000B");
}

TEST(ConfigEnv, MechanismNamesRoundTrip)
{
    EXPECT_EQ(mechanismName(TransferMechanism::Inline), "inline");
    EXPECT_EQ(mechanismName(TransferMechanism::Polling), "polling");
    EXPECT_EQ(mechanismName(TransferMechanism::Cdp), "cdp");
    EXPECT_EQ(mechanismName(TransferMechanism::Hardware), "hardware");
    EXPECT_EQ(mechanismCode(TransferMechanism::Polling), "Poll");
    EXPECT_EQ(mechanismCode(TransferMechanism::Hardware), "HW");
}

TEST(ConfigEnv, FaultsDefaultOff)
{
    ScopedEnv off("PROACT_FAULTS", nullptr);
    EXPECT_FALSE(envFaultsEnabled());
    EXPECT_TRUE(envFaultPlan().empty());
    EXPECT_FALSE(envRetryPolicy().enabled);

    ScopedEnv zero("PROACT_FAULTS", "0");
    EXPECT_FALSE(envFaultsEnabled());
}

TEST(ConfigEnv, FaultKnobsBuildAPlan)
{
    ScopedEnv on("PROACT_FAULTS", "1");
    ScopedEnv seed("PROACT_FAULT_SEED", "123");
    ScopedEnv drop("PROACT_FAULT_DROP_RATE", "0.25");
    ScopedEnv degrade("PROACT_FAULT_DEGRADE", "0.5");

    EXPECT_TRUE(envFaultsEnabled());
    const FaultPlan plan = envFaultPlan();
    EXPECT_EQ(plan.seed, 123u);
    ASSERT_EQ(plan.episodes.size(), 2u);
    EXPECT_EQ(plan.episodes[0].kind, FaultKind::DeliveryDrop);
    EXPECT_DOUBLE_EQ(plan.episodes[0].severity, 0.25);
    EXPECT_EQ(plan.episodes[1].kind, FaultKind::LinkDegrade);
    EXPECT_DOUBLE_EQ(plan.episodes[1].severity, 0.5);
    EXPECT_NO_THROW(plan.validate(4));
    EXPECT_TRUE(envRetryPolicy().enabled);
}

TEST(ConfigEnv, FaultKnobsClampAndDefault)
{
    ScopedEnv on("PROACT_FAULTS", "1");
    {
        // Defaults: 1 % drops, no degradation.
        ScopedEnv drop("PROACT_FAULT_DROP_RATE", nullptr);
        ScopedEnv degrade("PROACT_FAULT_DEGRADE", nullptr);
        const FaultPlan plan = envFaultPlan();
        ASSERT_EQ(plan.episodes.size(), 1u);
        EXPECT_DOUBLE_EQ(plan.episodes[0].severity, 0.01);
    }
    {
        // Out-of-range values clamp into the valid episode ranges.
        ScopedEnv drop("PROACT_FAULT_DROP_RATE", "7.0");
        ScopedEnv degrade("PROACT_FAULT_DEGRADE", "1.0");
        const FaultPlan plan = envFaultPlan();
        ASSERT_EQ(plan.episodes.size(), 2u);
        EXPECT_DOUBLE_EQ(plan.episodes[0].severity, 1.0);
        EXPECT_DOUBLE_EQ(plan.episodes[1].severity, 0.95);
        EXPECT_NO_THROW(plan.validate(4));
    }
    {
        ScopedEnv attempts("PROACT_RETRY_MAX_ATTEMPTS", "99");
        EXPECT_EQ(envRetryPolicy().maxAttempts, 16); // Clamped.
    }
    {
        ScopedEnv attempts("PROACT_RETRY_MAX_ATTEMPTS", "3");
        EXPECT_EQ(envRetryPolicy().maxAttempts, 3);
    }
}

TEST(ConfigEnv, DecoupledPredicate)
{
    TransferConfig config;
    config.mechanism = TransferMechanism::Inline;
    EXPECT_FALSE(config.decoupled());
    for (const auto mech :
         {TransferMechanism::Polling, TransferMechanism::Cdp,
          TransferMechanism::Hardware}) {
        config.mechanism = mech;
        EXPECT_TRUE(config.decoupled());
    }
}

TEST(ConfigEnv, RerouteQueueWeightKnob)
{
    // Default: flat congestedPenalty discount, knob off.
    ScopedEnv off("PROACT_REROUTE_QUEUE_WEIGHT", nullptr);
    EXPECT_FALSE(envReroutePolicy().queueWeightedCongestion);
    {
        ScopedEnv zero("PROACT_REROUTE_QUEUE_WEIGHT", "0");
        EXPECT_FALSE(envReroutePolicy().queueWeightedCongestion);
    }
    {
        ScopedEnv on("PROACT_REROUTE_QUEUE_WEIGHT", "1");
        EXPECT_TRUE(envReroutePolicy().queueWeightedCongestion);
    }
    {
        // Any non-"0" value enables, matching the other layer knobs.
        ScopedEnv on("PROACT_REROUTE_QUEUE_WEIGHT", "yes");
        EXPECT_TRUE(envReroutePolicy().queueWeightedCongestion);
    }
}
