/**
 * @file
 * Tests for configuration rendering and environment-variable
 * parsing used by the benchmark harnesses.
 */

#include "proact/config.hh"
#include "workloads/registry.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace proact;

namespace {

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : _name(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr) {
            _had = true;
            _old = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (_had)
            ::setenv(_name, _old.c_str(), 1);
        else
            ::unsetenv(_name);
    }

  private:
    const char *_name;
    bool _had = false;
    std::string _old;
};

} // namespace

TEST(ConfigEnv, ScaleShiftDefaultsToZero)
{
    ScopedEnv env("PROACT_SCALE_SHIFT", nullptr);
    EXPECT_EQ(envScaleShift(), 0);
}

TEST(ConfigEnv, ScaleShiftParsesAndClamps)
{
    {
        ScopedEnv env("PROACT_SCALE_SHIFT", "3");
        EXPECT_EQ(envScaleShift(), 3);
    }
    {
        ScopedEnv env("PROACT_SCALE_SHIFT", "99");
        EXPECT_EQ(envScaleShift(), 8); // Clamped.
    }
    {
        ScopedEnv env("PROACT_SCALE_SHIFT", "-4");
        EXPECT_EQ(envScaleShift(), 0);
    }
    {
        ScopedEnv env("PROACT_SCALE_SHIFT", "garbage");
        EXPECT_EQ(envScaleShift(), 0);
    }
}

TEST(ConfigEnv, ScaledWorkloadsShrink)
{
    auto big = makeWorkload("Jacobi", 0);
    auto small = makeWorkload("Jacobi", 2);
    big->setup(1);
    small->setup(1);
    const Phase pb = big->phase(0);
    const Phase ps = small->phase(0);
    EXPECT_EQ(pb.perGpu[0].bytesProduced,
              4 * ps.perGpu[0].bytesProduced);
}

TEST(ConfigEnv, FormatBytesRendering)
{
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(4 * KiB), "4kB");
    EXPECT_EQ(formatBytes(128 * KiB), "128kB");
    EXPECT_EQ(formatBytes(1 * MiB), "1MB");
    EXPECT_EQ(formatBytes(16 * MiB), "16MB");
    EXPECT_EQ(formatBytes(2 * GiB), "2GB");
    // Non-power-of-two values fall back to raw bytes.
    EXPECT_EQ(formatBytes(1000), "1000B");
}

TEST(ConfigEnv, MechanismNamesRoundTrip)
{
    EXPECT_EQ(mechanismName(TransferMechanism::Inline), "inline");
    EXPECT_EQ(mechanismName(TransferMechanism::Polling), "polling");
    EXPECT_EQ(mechanismName(TransferMechanism::Cdp), "cdp");
    EXPECT_EQ(mechanismName(TransferMechanism::Hardware), "hardware");
    EXPECT_EQ(mechanismCode(TransferMechanism::Polling), "Poll");
    EXPECT_EQ(mechanismCode(TransferMechanism::Hardware), "HW");
}

TEST(ConfigEnv, DecoupledPredicate)
{
    TransferConfig config;
    config.mechanism = TransferMechanism::Inline;
    EXPECT_FALSE(config.decoupled());
    for (const auto mech :
         {TransferMechanism::Polling, TransferMechanism::Cdp,
          TransferMechanism::Hardware}) {
        config.mechanism = mech;
        EXPECT_TRUE(config.decoupled());
    }
}
