/**
 * @file
 * Per-application tests: footprint consistency, functional
 * correctness under multi-GPU execution, determinism, and the
 * workload-specific numerical properties.
 */

#include "baselines/runner.hh"
#include "tests/small_workloads.hh"
#include "workloads/registry.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

#include <cmath>

using namespace proact;
using namespace proact::test;

/** Parameterized over (workload, gpu count). */
class WorkloadProperty
    : public ::testing::TestWithParam<
          std::tuple<std::string, int>>
{
  protected:
    std::unique_ptr<Workload> workload;
    int gpus = 0;

    void
    SetUp() override
    {
        const auto &[name, n] = GetParam();
        gpus = n;
        workload = makeSmallWorkload(name);
        ASSERT_NE(workload, nullptr);
        workload->setup(n);
    }
};

TEST_P(WorkloadProperty, FootprintsTilePartitionExactly)
{
    for (int iter = 0; iter < 2; ++iter) {
        const Phase phase = workload->phase(iter);
        ASSERT_EQ(static_cast<int>(phase.perGpu.size()), gpus);
        for (int g = 0; g < gpus; ++g) {
            const GpuPhaseWork &work = phase.perGpu[g];
            ASSERT_TRUE(work.ctaRange);
            std::uint64_t prev_hi = 0;
            for (int cta = 0; cta < work.kernel.numCtas; ++cta) {
                const ByteRange r = work.ctaRange(cta);
                EXPECT_EQ(r.lo, prev_hi)
                    << "gpu " << g << " cta " << cta;
                EXPECT_GE(r.hi, r.lo);
                prev_hi = r.hi;
            }
            EXPECT_EQ(prev_hi, work.bytesProduced) << "gpu " << g;
        }
    }
}

TEST_P(WorkloadProperty, PartitionsCoverTheRegion)
{
    const Phase phase = workload->phase(0);
    std::uint64_t total = 0;
    for (const auto &work : phase.perGpu) {
        total += work.bytesProduced;
        EXPECT_GE(work.kernel.numCtas, 1);
        EXPECT_TRUE(work.kernel.body);
    }
    EXPECT_GT(total, 0u);

    // The region size must not depend on the GPU count: compare
    // against a single-GPU setup of the same workload.
    auto reference = makeSmallWorkload(std::get<0>(GetParam()));
    reference->setup(1);
    const Phase ref_phase = reference->phase(0);
    EXPECT_EQ(total, ref_phase.perGpu.at(0).bytesProduced);
}

TEST_P(WorkloadProperty, FunctionalRunVerifies)
{
    MultiGpuSystem system(
        voltaPlatform().withGpuCount(gpus));
    IdealRuntime runtime(system);
    runtime.run(*workload);
    EXPECT_TRUE(workload->verify());
}

TEST_P(WorkloadProperty, FootprintsAreDataIndependent)
{
    // The paper requires deterministic stores (Sec. III-B): the
    // declared footprints must match between a fresh workload and
    // one that has already run.
    auto fresh = makeSmallWorkload(std::get<0>(GetParam()));
    fresh->setup(gpus);

    MultiGpuSystem system(voltaPlatform().withGpuCount(gpus));
    IdealRuntime runtime(system);
    runtime.run(*workload);

    const Phase after = workload->phase(0);
    const Phase before = fresh->phase(0);
    for (int g = 0; g < gpus; ++g) {
        EXPECT_EQ(after.perGpu[g].bytesProduced,
                  before.perGpu[g].bytesProduced);
        EXPECT_EQ(after.perGpu[g].kernel.numCtas,
                  before.perGpu[g].kernel.numCtas);
        CtaContext ctx{g, 0, after.perGpu[g].kernel.numCtas, false};
        const CtaWork wa = after.perGpu[g].kernel.body(ctx);
        const CtaWork wb = before.perGpu[g].kernel.body(ctx);
        EXPECT_DOUBLE_EQ(wa.flops, wb.flops);
        EXPECT_EQ(wa.localBytes, wb.localBytes);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, WorkloadProperty,
    ::testing::Combine(::testing::Values("X-ray CT", "Jacobi",
                                         "Pagerank", "SSSP", "ALS"),
                       ::testing::Values(1, 2, 4)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        for (auto &c : name) {
            if (c == ' ' || c == '-')
                c = '_';
        }
        return name + "_" + std::to_string(std::get<1>(info.param))
            + "gpu";
    });

TEST(Workloads, JacobiConverges)
{
    auto workload = makeSmallWorkload("Jacobi");
    workload->setup(2);
    auto &jacobi = dynamic_cast<JacobiWorkload &>(*workload);
    const double before = jacobi.relativeResidual();

    MultiGpuSystem system(voltaPlatform().withGpuCount(2));
    IdealRuntime runtime(system);
    runtime.run(jacobi);
    EXPECT_LT(jacobi.relativeResidual(), 0.5 * before);
}

TEST(Workloads, SsspMatchesSerialReferenceBitwise)
{
    auto workload = makeSmallWorkload("SSSP");
    workload->setup(4);
    auto &sssp = dynamic_cast<SsspWorkload &>(*workload);

    MultiGpuSystem system(voltaPlatform());
    IdealRuntime runtime(system);
    runtime.run(sssp);

    const auto ref = sssp.referenceDistances(4);
    ASSERT_EQ(ref.size(), sssp.distances().size());
    for (std::size_t v = 0; v < ref.size(); ++v)
        ASSERT_EQ(ref[v], sssp.distances()[v]) << "vertex " << v;
}

TEST(Workloads, SsspDistancesImproveMonotonically)
{
    SsspWorkload::Params p;
    p.graph.numVertices = 1 << 10;
    p.graph.numEdges = 1 << 13;
    SsspWorkload sssp(p);
    sssp.setup(1);
    const auto d1 = sssp.referenceDistances(1);
    const auto d3 = sssp.referenceDistances(3);
    for (std::size_t v = 0; v < d1.size(); ++v)
        EXPECT_LE(d3[v], d1[v]);
}

TEST(Workloads, PagerankMassAndSkew)
{
    auto workload = makeSmallWorkload("Pagerank");
    workload->setup(4);
    MultiGpuSystem system(voltaPlatform());
    IdealRuntime runtime(system);
    runtime.run(*workload);

    auto &pr = dynamic_cast<PagerankWorkload &>(*workload);
    double sum = 0.0;
    for (const double r : pr.ranks())
        sum += r;
    EXPECT_GT(sum, 0.15); // (1 - d) lower bound.
    EXPECT_LE(sum, 1.0 + 1e-9);
    EXPECT_TRUE(pr.verify());
}

TEST(Workloads, AlsReducesRmse)
{
    auto workload = makeSmallWorkload("ALS");
    workload->setup(2);
    auto &als = dynamic_cast<AlsWorkload &>(*workload);
    const double before = als.rmse();

    MultiGpuSystem system(voltaPlatform().withGpuCount(2));
    IdealRuntime runtime(system);
    runtime.run(als);
    EXPECT_LT(als.rmse(), before);
}

TEST(Workloads, MbirReducesReconstructionError)
{
    auto workload = makeSmallWorkload("X-ray CT");
    workload->setup(2);
    auto &ct = dynamic_cast<MbirWorkload &>(*workload);
    const double before = ct.reconstructionError();
    ASSERT_GT(before, 0.9); // Starts from a zero image.

    MultiGpuSystem system(voltaPlatform().withGpuCount(2));
    IdealRuntime runtime(system);
    runtime.run(ct);
    EXPECT_LT(ct.reconstructionError(), 0.5 * before);
    EXPECT_LT(ct.relativeResidual(), 0.5);
}

TEST(Workloads, TrafficProfilesMatchPaperCharacterization)
{
    // Dense-write apps coalesce; irregular apps do not (Sec. V-B).
    EXPECT_GE(makeSmallWorkload("Jacobi")->traffic().inlineStoreBytes,
              128u);
    EXPECT_GE(
        makeSmallWorkload("X-ray CT")->traffic().inlineStoreBytes,
        128u);
    EXPECT_LE(
        makeSmallWorkload("Pagerank")->traffic().inlineStoreBytes,
        16u);
    EXPECT_LE(makeSmallWorkload("SSSP")->traffic().inlineStoreBytes,
              16u);
    EXPECT_LE(makeSmallWorkload("ALS")->traffic().inlineStoreBytes,
              16u);
    EXPECT_TRUE(makeSmallWorkload("Jacobi")->traffic()
                    .sequentialAccess);
    EXPECT_FALSE(makeSmallWorkload("Pagerank")->traffic()
                     .sequentialAccess);
}

TEST(Workloads, RegistryCreatesAllStandardWorkloads)
{
    for (const auto &name : standardWorkloadNames()) {
        auto workload = makeWorkload(name, 6); // Heavily scaled down.
        ASSERT_NE(workload, nullptr) << name;
        EXPECT_EQ(workload->name(), name);
    }
    EXPECT_THROW(makeWorkload("NoSuchApp"), FatalError);
}

TEST(Workloads, FootprintScaleValidation)
{
    auto workload = makeSmallWorkload("Jacobi");
    EXPECT_THROW(workload->setFootprintScale(0), FatalError);
    workload->setFootprintScale(4);
    EXPECT_EQ(workload->footprintScale(), 4u);
}

TEST(Workloads, FootprintScaleMultipliesDeclaredWork)
{
    auto base = makeSmallWorkload("Jacobi");
    base->setup(2);
    auto scaled = makeSmallWorkload("Jacobi");
    scaled->setFootprintScale(8);
    scaled->setup(2);

    const Phase pb = base->phase(0);
    const Phase ps = scaled->phase(0);
    EXPECT_EQ(ps.perGpu[0].bytesProduced,
              8 * pb.perGpu[0].bytesProduced);

    CtaContext ctx{0, 0, pb.perGpu[0].kernel.numCtas, false};
    EXPECT_EQ(ps.perGpu[0].kernel.body(ctx).localBytes,
              8 * pb.perGpu[0].kernel.body(ctx).localBytes);
    EXPECT_EQ(ps.perGpu[0].ctaRange(0).hi,
              8 * pb.perGpu[0].ctaRange(0).hi);
}
