/**
 * @file
 * Unit tests for the span tracer and its system wiring.
 */

#include "baselines/runner.hh"
#include "proact/runtime.hh"
#include "sim/trace.hh"
#include "tests/toy_workload.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

#include <sstream>

using namespace proact;
using proact::test::ToyWorkload;

TEST(Trace, RecordsAndFilters)
{
    Trace trace;
    EXPECT_TRUE(trace.empty());
    trace.record(0, 10, "kernel", "a");
    trace.record(5, 20, "transfer", "b");
    trace.record(12, 15, "kernel", "c");

    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.horizon(), 20u);
    EXPECT_EQ(trace.byCategory("kernel").size(), 2u);
    EXPECT_EQ(trace.byCategory("transfer").size(), 1u);
    EXPECT_EQ(trace.byCategory("nothing").size(), 0u);

    trace.clear();
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.horizon(), 0u);
}

TEST(Trace, CsvDump)
{
    Trace trace;
    trace.record(100, 200, "kernel", "gpu0.foo");
    std::ostringstream oss;
    trace.dumpCsv(oss);
    EXPECT_EQ(oss.str(),
              "start_ps,end_ps,category,label\n"
              "100,200,kernel,gpu0.foo\n");
}

TEST(Trace, TimelineRendersRowsPerLabel)
{
    Trace trace;
    trace.record(0, 50, "kernel", "k");
    trace.record(50, 100, "transfer", "t");
    std::ostringstream oss;
    trace.renderTimeline(oss, 20);
    const std::string out = oss.str();
    EXPECT_NE(out.find("k  "), std::string::npos);
    EXPECT_NE(out.find("t  "), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Trace, EmptyTimelineIsSafe)
{
    Trace trace;
    std::ostringstream oss;
    trace.renderTimeline(oss);
    EXPECT_EQ(oss.str(), "(empty trace)\n");
}

TEST(Trace, SystemWiringCapturesKernelsAndTransfers)
{
    ToyWorkload workload;
    workload.setup(4);
    MultiGpuSystem system(voltaPlatform());
    system.setFunctional(false);
    Trace trace;
    system.setTrace(&trace);

    BulkMemcpyRuntime runtime(system);
    runtime.run(workload);

    // 4 GPUs x 3 iterations of kernels, plus 12 copies x 3 iters.
    EXPECT_EQ(trace.byCategory("kernel").size(), 12u);
    EXPECT_EQ(trace.byCategory("transfer").size(), 36u);
    for (const auto &span : trace.spans())
        EXPECT_LE(span.start, span.end);

    // Detaching stops recording.
    system.setTrace(nullptr);
    const std::size_t before = trace.size();
    ToyWorkload again;
    again.setup(4);
    BulkMemcpyRuntime runtime2(system);
    runtime2.run(again);
    EXPECT_EQ(trace.size(), before);
}

TEST(Trace, BulkTransfersDoNotOverlapProducerKernels)
{
    // The defining property of the bulk-synchronous paradigm,
    // verified from the trace: every transfer starts after every
    // same-iteration kernel ends.
    ToyWorkload::Params params;
    params.iterations = 1;
    ToyWorkload workload(params);
    workload.setup(4);
    MultiGpuSystem system(voltaPlatform());
    system.setFunctional(false);
    Trace trace;
    system.setTrace(&trace);
    BulkMemcpyRuntime runtime(system);
    runtime.run(workload);

    Tick last_kernel_end = 0;
    for (const auto &span : trace.byCategory("kernel"))
        last_kernel_end = std::max(last_kernel_end, span.end);
    for (const auto &span : trace.byCategory("transfer"))
        EXPECT_GE(span.start, last_kernel_end);
}

TEST(Trace, ProactTransfersOverlapProducerKernels)
{
    ToyWorkload::Params params;
    params.iterations = 1;
    params.partitionBytes = 4 * MiB;
    ToyWorkload workload(params);
    workload.setup(4);
    MultiGpuSystem system(voltaPlatform());
    system.setFunctional(false);
    Trace trace;
    system.setTrace(&trace);

    ProactRuntime::Options options;
    options.config.mechanism = TransferMechanism::Polling;
    options.config.chunkBytes = 64 * KiB;
    options.config.transferThreads = 2048;
    ProactRuntime runtime(system, options);
    runtime.run(workload);

    Tick last_kernel_end = 0;
    for (const auto &span : trace.byCategory("kernel"))
        last_kernel_end = std::max(last_kernel_end, span.end);
    int overlapped = 0;
    for (const auto &span : trace.byCategory("transfer")) {
        if (span.start < last_kernel_end)
            ++overlapped;
    }
    EXPECT_GT(overlapped, 0);
}
