/**
 * @file
 * Unit tests for the microbenchmark workload (paper Sec. IV-C).
 */

#include "baselines/runner.hh"
#include "harness/paradigm.hh"
#include "workloads/microbench.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;

TEST(Microbench, RejectsBadShapes)
{
    MicrobenchWorkload::Params params;
    params.bytesPerCta = 0;
    EXPECT_THROW(MicrobenchWorkload(voltaPlatform(), params),
                 FatalError);
    params.bytesPerCta = 1 * MiB;
    params.totalBytes = 4 * KiB;
    EXPECT_THROW(MicrobenchWorkload(voltaPlatform(), params),
                 FatalError);
}

TEST(Microbench, SourceProducesEverything)
{
    MicrobenchWorkload::Params params;
    params.totalBytes = 4 * MiB;
    MicrobenchWorkload workload(voltaPlatform(), params);
    workload.setup(4);

    const Phase phase = workload.phase(0);
    EXPECT_EQ(phase.perGpu[0].bytesProduced, params.totalBytes);
    EXPECT_EQ(phase.perGpu[0].kernel.numCtas,
              static_cast<int>(params.totalBytes
                               / params.bytesPerCta));
    for (int g = 1; g < 4; ++g)
        EXPECT_EQ(phase.perGpu[g].bytesProduced, 0u);
}

TEST(Microbench, CtaRangesTileFourKilobytesEach)
{
    MicrobenchWorkload::Params params;
    params.totalBytes = 1 * MiB;
    MicrobenchWorkload workload(voltaPlatform(), params);
    workload.setup(2);
    const Phase phase = workload.phase(0);
    const auto &src = phase.perGpu[0];
    for (int cta = 0; cta < src.kernel.numCtas; ++cta) {
        const ByteRange r = src.ctaRange(cta);
        EXPECT_EQ(r.size(), params.bytesPerCta);
        EXPECT_EQ(r.lo, cta * params.bytesPerCta);
    }
}

TEST(Microbench, ComputeTunedToMemcpyTransferTime)
{
    // The source kernel under infinite BW should run for roughly the
    // analytic cudaMemcpy duplication time (the paper's tuning).
    MicrobenchWorkload::Params params;
    params.totalBytes = 16 * MiB;
    params.iterations = 1;
    MicrobenchWorkload workload(voltaPlatform(), params);
    workload.setup(4);

    MultiGpuSystem system(voltaPlatform());
    system.setFunctional(false);
    const Tick kernel_time =
        makeRuntime(Paradigm::InfiniteBw, system)->run(workload);

    const double ratio = static_cast<double>(kernel_time)
        / static_cast<double>(workload.targetTransferTicks());
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.4);
}

TEST(Microbench, TuningAdaptsToPlatform)
{
    MicrobenchWorkload::Params params;
    params.totalBytes = 16 * MiB;

    MicrobenchWorkload kepler_wl(keplerPlatform(), params);
    kepler_wl.setup(4);
    MicrobenchWorkload volta_wl(voltaPlatform(), params);
    volta_wl.setup(4);

    // PCIe transfers the same bytes ~19x slower, so the tuned Kepler
    // kernel must carry far more local traffic per CTA.
    EXPECT_GT(kepler_wl.targetTransferTicks(),
              10 * volta_wl.targetTransferTicks());
    EXPECT_GT(kepler_wl.ctaLocalBytes(), volta_wl.ctaLocalBytes());
}

TEST(Microbench, FunctionalPatternVerifies)
{
    MicrobenchWorkload::Params params;
    params.totalBytes = 1 * MiB;
    params.iterations = 2;
    MicrobenchWorkload workload(voltaPlatform(), params);
    workload.setup(2);

    MultiGpuSystem system(voltaPlatform().withGpuCount(2));
    IdealRuntime runtime(system);
    runtime.run(workload);
    EXPECT_TRUE(workload.verify());
}

TEST(Microbench, UnrunWorkloadFailsVerification)
{
    MicrobenchWorkload::Params params;
    params.totalBytes = 1 * MiB;
    MicrobenchWorkload workload(voltaPlatform(), params);
    workload.setup(2);
    EXPECT_FALSE(workload.verify());
}
