/**
 * @file
 * Unit tests for the decoupled transfer agents (paper Sec. III-C).
 */

#include "proact/transfer_agent.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;

namespace {

struct AgentHarness
{
    MultiGpuSystem system;
    int deliveries = 0;
    std::uint64_t deliveredBytes = 0;
    Tick lastDelivery = 0;
    StatSet stats;

    explicit AgentHarness(const PlatformSpec &platform = voltaPlatform())
        : system(platform)
    {
    }

    TransferAgent::Context
    context(TransferMechanism mech, std::uint64_t chunk = 128 * KiB,
            std::uint32_t threads = 2048, bool elide = false)
    {
        TransferAgent::Context ctx;
        ctx.system = &system;
        ctx.gpuId = 0;
        ctx.config.mechanism = mech;
        ctx.config.chunkBytes = chunk;
        ctx.config.transferThreads = threads;
        ctx.elideTransfers = elide;
        ctx.stats = &stats;
        ctx.onDelivered = [this](std::uint64_t bytes) {
            ++deliveries;
            deliveredBytes += bytes;
            lastDelivery = system.now();
        };
        return ctx;
    }
};

} // namespace

TEST(Agents, FactoryCreatesEachMechanism)
{
    AgentHarness h;
    EXPECT_EQ(makeAgent(TransferMechanism::Polling,
                        h.context(TransferMechanism::Polling))
                  ->mechanism(),
              TransferMechanism::Polling);
    EXPECT_EQ(makeAgent(TransferMechanism::Cdp,
                        h.context(TransferMechanism::Cdp))
                  ->mechanism(),
              TransferMechanism::Cdp);
    EXPECT_EQ(makeAgent(TransferMechanism::Hardware,
                        h.context(TransferMechanism::Hardware))
                  ->mechanism(),
              TransferMechanism::Hardware);
    EXPECT_THROW(makeAgent(TransferMechanism::Inline,
                           h.context(TransferMechanism::Inline)),
                 FatalError);
}

TEST(Agents, ChunkReachesEveryPeer)
{
    AgentHarness h;
    auto agent = makeAgent(TransferMechanism::Hardware,
                           h.context(TransferMechanism::Hardware));
    agent->chunkReady(0, 4096);
    h.system.run();
    EXPECT_EQ(h.deliveries, h.system.numGpus() - 1);
    EXPECT_EQ(h.deliveredBytes, 4096u * (h.system.numGpus() - 1));
}

TEST(Agents, PollingReservesResourcesForItsLifetime)
{
    AgentHarness h;
    auto &gpu = h.system.gpu(0);
    EXPECT_DOUBLE_EQ(gpu.memBwFactor(), 1.0);
    {
        PollingAgent agent(h.context(TransferMechanism::Polling));
        EXPECT_LT(gpu.memBwFactor(), 1.0);
        EXPECT_LT(gpu.computeFactor(), 1.0);
        EXPECT_GT(agent.memBwShare(), 0.0);
    }
    EXPECT_DOUBLE_EQ(gpu.memBwFactor(), 1.0);
    EXPECT_DOUBLE_EQ(gpu.computeFactor(), 1.0);
}

TEST(Agents, PollingSharesMatchTheScanLoopModel)
{
    // The bitmap scan's memory-bandwidth cost is a property of the
    // loop, not of the data-moving thread count (Fig. 4: threads
    // beyond saturation neither help nor hurt); SM occupancy does
    // scale with the thread count.
    AgentHarness h;
    PollingAgent small(
        h.context(TransferMechanism::Polling, 128 * KiB, 32));

    AgentHarness h2;
    PollingAgent big(
        h2.context(TransferMechanism::Polling, 128 * KiB, 8192));

    EXPECT_DOUBLE_EQ(big.memBwShare(), small.memBwShare());
    EXPECT_GT(big.computeShare(), small.computeShare());
}

TEST(Agents, PollingDiscoveryWaitsForPollTick)
{
    AgentHarness h;
    PollingAgent agent(h.context(TransferMechanism::Polling));
    const Tick interval = h.system.gpu(0).spec().pollInterval;

    agent.chunkReady(0, 1024);
    h.system.run();
    // Delivery cannot precede the next bitmap scan.
    EXPECT_GE(h.lastDelivery, interval);
    EXPECT_DOUBLE_EQ(h.stats.get("polls"), 1.0);
    EXPECT_DOUBLE_EQ(h.stats.get("bitmap_sets"), 1.0);
}

TEST(Agents, PollingSerializesPerChunkSetup)
{
    AgentHarness h;
    PollingAgent agent(h.context(TransferMechanism::Polling, 4096));
    for (int c = 0; c < 100; ++c)
        agent.chunkReady(c, 64); // Tiny chunks: setup dominates.
    h.system.run();
    EXPECT_EQ(h.deliveries, 100 * (h.system.numGpus() - 1));
    // 100 chunks x 1 us setup each, serialized.
    EXPECT_GE(h.lastDelivery, 100 * PollingAgent::chunkSetupCost);
}

TEST(Agents, CdpPaysLaunchLatency)
{
    AgentHarness h;
    CdpAgent agent(h.context(TransferMechanism::Cdp));
    agent.chunkReady(0, 1024);
    h.system.run();
    EXPECT_GE(h.lastDelivery,
              h.system.gpu(0).spec().cdpLaunchLatency);
    EXPECT_DOUBLE_EQ(h.stats.get("cdp_launches"), 1.0);
}

TEST(Agents, CdpLaunchEngineSerializes)
{
    AgentHarness h;
    CdpAgent agent(h.context(TransferMechanism::Cdp, 4096));
    const int chunks = 50;
    for (int c = 0; c < chunks; ++c)
        agent.chunkReady(c, 64);
    h.system.run();
    EXPECT_GE(h.lastDelivery,
              chunks * h.system.gpu(0).spec().cdpLaunchLatency);
}

TEST(Agents, CdpWindowLimitsConcurrentChildren)
{
    AgentHarness h;
    CdpAgent agent(h.context(TransferMechanism::Cdp, 1 * MiB));
    for (int c = 0; c < 100; ++c)
        agent.chunkReady(c, 1 * MiB);
    EXPECT_LE(agent.activeChildren(),
              CdpAgent::maxConcurrentChildren);
    h.system.run();
    EXPECT_EQ(h.deliveries, 100 * (h.system.numGpus() - 1));
    EXPECT_EQ(agent.activeChildren(), 0);
}

TEST(Agents, HardwareAgentIsFastest)
{
    auto last_delivery = [](TransferMechanism mech) {
        AgentHarness h;
        auto agent = makeAgent(mech, h.context(mech));
        agent->chunkReady(0, 128 * KiB);
        h.system.run();
        return h.lastDelivery;
    };
    const Tick hw = last_delivery(TransferMechanism::Hardware);
    EXPECT_LE(hw, last_delivery(TransferMechanism::Polling));
    EXPECT_LE(hw, last_delivery(TransferMechanism::Cdp));
}

TEST(Agents, ElideTransfersSkipsFabricKeepsInitiation)
{
    AgentHarness h;
    CdpAgent agent(
        h.context(TransferMechanism::Cdp, 128 * KiB, 2048, true));
    agent.chunkReady(0, 128 * KiB);
    h.system.run();
    EXPECT_EQ(h.deliveries, h.system.numGpus() - 1);
    EXPECT_EQ(h.system.fabric().totalPayloadBytes(), 0u);
    // Initiation latency is still paid (Fig. 8/9 methodology).
    EXPECT_GE(h.lastDelivery,
              h.system.gpu(0).spec().cdpLaunchLatency);
}

TEST(Agents, ThreadCountGatesAchievedBandwidth)
{
    auto delivery_time = [](std::uint32_t threads) {
        AgentHarness h;
        PollingAgent agent(h.context(TransferMechanism::Polling,
                                     4 * MiB, threads));
        agent.chunkReady(0, 4 * MiB);
        h.system.run();
        return h.lastDelivery;
    };
    // 32 threads cannot saturate NVLink2 egress; 8192 can.
    EXPECT_GT(delivery_time(32), 2 * delivery_time(8192));
}
