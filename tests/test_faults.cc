/**
 * @file
 * Tests for the fault-injection & resilience subsystem (src/faults):
 * plan validation, episode scheduling, deterministic seeded drops,
 * retry/backoff ordering, reliable-path fallback, and end-to-end
 * survival of every transfer mechanism on a faulty fabric.
 */

#include "faults/fault_injector.hh"
#include "faults/fault_plan.hh"
#include "faults/retry.hh"
#include "harness/paradigm.hh"
#include "proact/runtime.hh"
#include "proact/transfer_agent.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "tests/small_workloads.hh"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

using namespace proact;
using namespace proact::test;

namespace {

/** Agent-level harness mirroring tests/test_agents.cc. */
struct FaultHarness
{
    MultiGpuSystem system;
    int deliveries = 0;
    Tick lastDelivery = 0;
    StatSet stats;

    explicit FaultHarness(const PlatformSpec &platform = voltaPlatform())
        : system(platform)
    {
    }

    TransferAgent::Context
    context(TransferMechanism mech, RetryPolicy retry = {})
    {
        TransferAgent::Context ctx;
        ctx.system = &system;
        ctx.gpuId = 0;
        ctx.config.mechanism = mech;
        ctx.config.chunkBytes = 128 * KiB;
        ctx.config.transferThreads = 2048;
        ctx.config.retry = retry;
        ctx.stats = &stats;
        ctx.onDelivered = [this](std::uint64_t) {
            ++deliveries;
            lastDelivery = system.now();
        };
        return ctx;
    }

    int peers() const { return system.numGpus() - 1; }
};

RetryPolicy
testRetry(int max_attempts = 5)
{
    RetryPolicy policy;
    policy.enabled = true;
    policy.maxAttempts = max_attempts;
    return policy;
}

} // namespace

TEST(FaultPlanTest, ValidateRejectsNonsense)
{
    {
        FaultPlan plan;
        plan.dropDeliveries(100, 100, 0.5); // Empty window.
        EXPECT_THROW(plan.validate(4), FatalError);
    }
    {
        FaultPlan plan;
        plan.dropDeliveries(0, maxTick, 1.5); // Probability > 1.
        EXPECT_THROW(plan.validate(4), FatalError);
    }
    {
        FaultPlan plan;
        plan.degradeLink(0, maxTick, 1.0); // Fully dead != degrade.
        EXPECT_THROW(plan.validate(4), FatalError);
    }
    {
        FaultPlan plan;
        plan.downLink(0, maxTick, 7, 1); // GPU 7 of 4.
        EXPECT_THROW(plan.validate(4), FatalError);
    }
    {
        FaultPlan plan;
        plan.downLink(0, maxTick, 2, 2); // src == dst.
        EXPECT_THROW(plan.validate(4), FatalError);
    }
    {
        FaultPlan plan;
        plan.delayDeliveries(0, maxTick, 0); // Zero spike.
        EXPECT_THROW(plan.validate(4), FatalError);
    }
    {
        FaultPlan plan;
        plan.dropDeliveries(0, maxTick, 0.01)
            .degradeLink(ticksPerMicrosecond, 2 * ticksPerMicrosecond,
                         0.5, 0, 1)
            .stallDma(0, 100, 3);
        EXPECT_NO_THROW(plan.validate(4));
    }
}

TEST(FaultPlanTest, DescribeAndKindNames)
{
    EXPECT_EQ(faultKindName(FaultKind::LinkDegrade), "degrade");
    EXPECT_EQ(faultKindName(FaultKind::DeliveryDrop), "drop");

    FaultPlan plan;
    plan.dropDeliveries(0, maxTick, 0.25, -1, 2);
    EXPECT_EQ(plan.episodes.at(0).describe(), "drop p=0.25 gpu*->gpu2");
    plan.stallDma(0, 10, 1);
    EXPECT_EQ(plan.episodes.at(1).describe(), "dma-stall gpu1");
}

TEST(FaultPlanTest, PlaneBuildersExpandToAllPairsInOneGroup)
{
    FaultPlan plan;
    plan.downPlane(10, 20, {0, 1, 2});
    plan.degradePlane(30, 40, 0.5, {1, 3});

    // k GPUs -> k*(k-1) directed episodes, one fresh group per plane.
    ASSERT_EQ(plan.episodes.size(), 6u + 2u);
    EXPECT_EQ(plan.numGroups(), 2);

    for (std::size_t i = 0; i < 6; ++i) {
        const FaultEpisode &ep = plan.episodes[i];
        EXPECT_EQ(ep.kind, FaultKind::LinkDown);
        EXPECT_EQ(ep.group, 0);
        EXPECT_EQ(ep.start, 10u);
        EXPECT_EQ(ep.end, 20u);
        EXPECT_NE(ep.src, ep.dst);
        EXPECT_TRUE(ep.src >= 0 && ep.src <= 2);
        EXPECT_TRUE(ep.dst >= 0 && ep.dst <= 2);
    }
    for (std::size_t i = 6; i < 8; ++i) {
        const FaultEpisode &ep = plan.episodes[i];
        EXPECT_EQ(ep.kind, FaultKind::LinkDegrade);
        EXPECT_EQ(ep.group, 1);
        EXPECT_DOUBLE_EQ(ep.severity, 0.5);
    }
    // Every directed pair is distinct.
    std::set<std::pair<int, int>> pairs;
    for (std::size_t i = 0; i < 6; ++i)
        pairs.emplace(plan.episodes[i].src, plan.episodes[i].dst);
    EXPECT_EQ(pairs.size(), 6u);

    EXPECT_NO_THROW(plan.validate(4));
    EXPECT_NE(plan.episodes[0].describe().find("[group 0]"),
              std::string::npos);
}

TEST(FaultPlanTest, ValidateRejectsSplitGroupWindows)
{
    // A correlation group models ONE physical event; episodes that
    // disagree on the window cannot be the same event.
    FaultPlan plan;
    plan.downPlane(10, 20, {0, 1});
    FaultEpisode stray;
    stray.kind = FaultKind::LinkDown;
    stray.start = 15; // Same group, different window.
    stray.end = 25;
    stray.src = 2;
    stray.dst = 3;
    stray.group = 0;
    plan.episodes.push_back(stray);
    EXPECT_THROW(plan.validate(4), FatalError);

    EXPECT_THROW(FaultPlan{}.downPlane(0, 10, {2}).validate(4),
                 FatalError); // A plane needs >= 2 GPUs.
}

TEST(FaultInjectorTest, CorrelatedGroupsCountOncePerPlane)
{
    MultiGpuSystem system(voltaPlatform());
    FaultPlan plan;
    plan.downPlane(0, 10 * ticksPerMicrosecond, {0, 1, 2});
    plan.downLink(0, ticksPerMicrosecond, 3, 0); // Independent.
    FaultInjector &inj = system.installFaults(std::move(plan));

    // All windows opened at arm time: 6 plane episodes + 1 loner
    // began, but only one correlated physical event happened.
    EXPECT_DOUBLE_EQ(inj.stats().get("faults.injected"), 7.0);
    EXPECT_DOUBLE_EQ(inj.stats().get("faults.down_windows"), 7.0);
    EXPECT_DOUBLE_EQ(inj.stats().get("faults.correlated_groups"), 1.0);
}

TEST(FaultPlanTest, RandomPlanIsDeterministicAndValid)
{
    RandomFaultOptions options;
    options.numEvents = 8;
    options.planeProbability = 0.5;
    options.planeSize = 3;

    const FaultPlan a = randomFaultPlan(1234, 4, options);
    const FaultPlan b = randomFaultPlan(1234, 4, options);
    const FaultPlan c = randomFaultPlan(4321, 4, options);

    EXPECT_EQ(a.seed, 1234u);
    EXPECT_NO_THROW(a.validate(4)); // Generator self-validates too.

    auto fingerprint = [](const FaultPlan &plan) {
        std::vector<std::string> lines;
        for (const FaultEpisode &ep : plan.episodes) {
            lines.push_back(ep.describe() + " @" +
                            std::to_string(ep.start) + "-" +
                            std::to_string(ep.end));
        }
        return lines;
    };
    EXPECT_EQ(fingerprint(a), fingerprint(b));
    EXPECT_NE(fingerprint(a), fingerprint(c));

    // Every target respects the system size.
    for (const FaultEpisode &ep : a.episodes) {
        EXPECT_GE(ep.src, 0);
        EXPECT_LT(ep.src, 4);
        EXPECT_GE(ep.dst, 0);
        EXPECT_LT(ep.dst, 4);
        EXPECT_NE(ep.src, ep.dst);
    }
}

TEST(FaultPlanTest, RandomPlanEventMixFollowsOptions)
{
    RandomFaultOptions options;
    options.numEvents = 5;
    options.planeProbability = 0.0; // Single-link events only.
    const FaultPlan singles = randomFaultPlan(7, 4, options);
    EXPECT_EQ(singles.episodes.size(), 5u);
    EXPECT_EQ(singles.numGroups(), 0);

    options.planeProbability = 1.0; // Every event is a plane.
    options.planeSize = 3;
    const FaultPlan planes = randomFaultPlan(7, 4, options);
    EXPECT_EQ(planes.numGroups(), 5);
    EXPECT_EQ(planes.episodes.size(), 5u * 6u); // 3 GPUs -> 6 pairs.
}

TEST(FaultInjectorTest, DegradeWindowSlowsAndRestores)
{
    const Tick window_end = 10 * ticksPerMillisecond;

    auto run_one = [&](bool degraded) {
        FaultHarness h;
        if (degraded) {
            FaultPlan plan;
            plan.degradeLink(0, window_end, 0.5);
            h.system.installFaults(std::move(plan));
        }
        HardwareAgent agent(h.context(TransferMechanism::Hardware));
        agent.chunkReady(0, 4 * MiB);
        h.system.run();
        return std::pair<Tick, double>(
            h.lastDelivery, h.system.fabric().egress(0).rateScale());
    };

    const auto [healthy_tick, healthy_scale] = run_one(false);
    const auto [degraded_tick, degraded_scale] = run_one(true);

    // Half the bandwidth must slow the bulk of the transfer down.
    EXPECT_GT(degraded_tick, healthy_tick);
    EXPECT_DOUBLE_EQ(healthy_scale, 1.0);
    // The end boundary restored the nominal rate.
    EXPECT_DOUBLE_EQ(degraded_scale, 1.0);
}

TEST(FaultInjectorTest, DegradeStatsAndEpisodeScheduling)
{
    FaultHarness h;
    FaultPlan plan;
    plan.degradeLink(ticksPerMicrosecond, 2 * ticksPerMicrosecond,
                     0.9);
    FaultInjector &inj = h.system.installFaults(std::move(plan));

    auto &eq = h.system.eventQueue();
    // Before the window: nominal.
    eq.runUntil(ticksPerMicrosecond - 1);
    EXPECT_DOUBLE_EQ(h.system.fabric().egress(0).rateScale(), 1.0);
    // Inside: scaled.
    eq.runUntil(ticksPerMicrosecond);
    EXPECT_DOUBLE_EQ(h.system.fabric().egress(0).rateScale(), 0.1);
    EXPECT_DOUBLE_EQ(inj.stats().get("faults.degrade_windows"), 1.0);
    EXPECT_DOUBLE_EQ(inj.stats().get("faults.injected"), 1.0);
    // After: restored.
    eq.runUntil(2 * ticksPerMicrosecond);
    EXPECT_DOUBLE_EQ(h.system.fabric().egress(0).rateScale(), 1.0);
}

TEST(FaultInjectorTest, DroppedDeliveriesAreRetriedAndLand)
{
    FaultHarness h;
    FaultPlan plan;
    // Everything is lost for the first 20 us, then the fabric heals.
    plan.downLink(0, 20 * ticksPerMicrosecond);
    h.system.installFaults(std::move(plan));

    HardwareAgent agent(
        h.context(TransferMechanism::Hardware, testRetry(10)));
    agent.chunkReady(0, 4 * KiB);
    h.system.run();

    EXPECT_EQ(h.deliveries, h.peers());
    EXPECT_GE(h.lastDelivery, 20 * ticksPerMicrosecond);
    EXPECT_GT(h.stats.get("transfers.retried"), 0.0);
    EXPECT_DOUBLE_EQ(h.stats.get("transfers.abandoned"), 0.0);
    EXPECT_GT(h.system.faults()->stats().get("faults.dropped"), 0.0);
    EXPECT_EQ(h.system.fabric().droppedDeliveries(),
              static_cast<std::uint64_t>(
                  h.system.faults()->stats().get("faults.dropped")));
}

TEST(FaultInjectorTest, RetryBackoffSpacingGrows)
{
    FaultHarness h;
    Trace trace;
    h.system.setTrace(&trace);

    FaultPlan plan;
    plan.downLink(0, maxTick, 0, 1); // gpu0 -> gpu1 dead forever.
    h.system.installFaults(std::move(plan));

    HardwareAgent agent(
        h.context(TransferMechanism::Hardware, testRetry(4)));
    agent.chunkReady(0, 1 * KiB);
    h.system.run();

    // Only the gpu0->gpu1 transfers are lost; the budget (4 attempts)
    // is spent, then the reliable fallback lands the payload.
    EXPECT_EQ(h.deliveries, h.peers());
    EXPECT_DOUBLE_EQ(h.stats.get("transfers.retried"), 3.0);
    EXPECT_DOUBLE_EQ(h.stats.get("transfers.abandoned"), 1.0);
    EXPECT_DOUBLE_EQ(h.stats.get("fallback.activations"), 1.0);

    // Retry spans record each lost attempt's submission; the gaps
    // between consecutive submissions widen (exponential backoff).
    const auto retries = trace.byCategory("retry");
    ASSERT_EQ(retries.size(), 4u);
    std::vector<Tick> gaps;
    for (std::size_t i = 1; i < retries.size(); ++i) {
        ASSERT_GT(retries[i].start, retries[i - 1].start);
        gaps.push_back(retries[i].start - retries[i - 1].start);
    }
    for (std::size_t i = 1; i < gaps.size(); ++i)
        EXPECT_GT(gaps[i], gaps[i - 1]);

    ASSERT_EQ(trace.byCategory("fallback").size(), 1u);
}

TEST(FaultInjectorTest, FallbackSurvivesAPermanentlyDeadLink)
{
    FaultHarness h;
    FaultPlan plan;
    plan.downLink(0, maxTick); // Nothing from gpu0 ever arrives.
    h.system.installFaults(std::move(plan));

    HardwareAgent agent(
        h.context(TransferMechanism::Hardware, testRetry(2)));
    agent.chunkReady(0, 64 * KiB);
    h.system.run();

    // Degraded mode: every peer is reached via the reliable path.
    EXPECT_EQ(h.deliveries, h.peers());
    EXPECT_DOUBLE_EQ(h.stats.get("transfers.abandoned"),
                     static_cast<double>(h.peers()));
    EXPECT_DOUBLE_EQ(h.stats.get("fallback.activations"),
                     static_cast<double>(h.peers()));
}

TEST(FaultInjectorTest, DelaySpikesShiftDeliveryExactly)
{
    const Tick spike = 10 * ticksPerMicrosecond;

    auto last_delivery = [&](bool delayed) {
        FaultHarness h;
        if (delayed) {
            FaultPlan plan;
            plan.delayDeliveries(0, maxTick, spike);
            h.system.installFaults(std::move(plan));
        }
        HardwareAgent agent(h.context(TransferMechanism::Hardware));
        agent.chunkReady(0, 4 * KiB);
        h.system.run();
        EXPECT_EQ(h.deliveries, h.peers());
        return h.lastDelivery;
    };

    EXPECT_EQ(last_delivery(true), last_delivery(false) + spike);
}

TEST(FaultInjectorTest, DmaStallHoldsCopiesUntilWindowEnds)
{
    const Tick window_end = 50 * ticksPerMicrosecond;

    MultiGpuSystem system(voltaPlatform());
    FaultPlan plan;
    plan.stallDma(0, window_end, 0);
    FaultInjector &inj = system.installFaults(std::move(plan));

    Tick stalled_done = 0;
    Tick free_done = 0;
    system.dma(0).copyToPeer(1, 4 * KiB,
                             [&] { stalled_done = system.now(); });
    system.dma(1).copyToPeer(0, 4 * KiB,
                             [&] { free_done = system.now(); });
    system.run();

    EXPECT_GE(stalled_done, window_end);
    EXPECT_LT(free_done, window_end);
    EXPECT_DOUBLE_EQ(inj.stats().get("faults.stall_windows"), 1.0);
}

TEST(FaultInjectorTest, ReliablePathIsExemptFromLoss)
{
    MultiGpuSystem system(voltaPlatform());
    FaultPlan plan;
    plan.downLink(0, maxTick);
    system.installFaults(std::move(plan));

    // DMA copies ride the hardware-reliable path: delivered despite
    // the dead link.
    bool delivered = false;
    system.dma(0).copyToPeer(1, 64 * KiB, [&] { delivered = true; });
    system.run();
    EXPECT_TRUE(delivered);
    EXPECT_EQ(system.fabric().droppedDeliveries(), 0u);
}

TEST(FaultInjectorTest, SeededDropsAreDeterministic)
{
    auto run_once = [] {
        FaultHarness h;
        FaultPlan plan;
        plan.seed = 42;
        plan.dropDeliveries(0, maxTick, 0.5);
        h.system.installFaults(std::move(plan));

        PollingAgent agent(
            h.context(TransferMechanism::Polling, testRetry(6)));
        for (int c = 0; c < 32; ++c)
            agent.chunkReady(c, 16 * KiB);
        h.system.run();

        EXPECT_EQ(h.deliveries, 32 * h.peers());
        return std::tuple<Tick, double, double>(
            h.lastDelivery, h.stats.get("transfers.retried"),
            h.system.faults()->stats().get("faults.dropped"));
    };

    const auto a = run_once();
    const auto b = run_once();
    EXPECT_GT(std::get<1>(a), 0.0);
    EXPECT_EQ(a, b);
}

TEST(RebookingTest, WindowEndRetimesInFlightTransfers)
{
    // A transfer booked inside a degrade window but outliving it: the
    // submission-rate model (default) honors the degraded rate to the
    // end; rebooking re-times the remainder at nominal speed once the
    // window closes, landing strictly earlier.
    auto run_one = [](bool degraded, bool rebooking,
                      Tick window_end) {
        FaultHarness h;
        h.system.fabric().setRebooking(rebooking);
        if (degraded) {
            FaultPlan plan;
            plan.degradeLink(0, window_end, 0.5);
            h.system.installFaults(std::move(plan));
        }
        HardwareAgent agent(h.context(TransferMechanism::Hardware));
        agent.chunkReady(0, 4 * MiB);
        h.system.run();
        EXPECT_EQ(h.deliveries, h.peers());
        return std::pair<Tick, std::uint64_t>(
            h.lastDelivery, h.system.fabric().rebookedDeliveries());
    };

    const Tick healthy = run_one(false, false, 0).first;
    // Close the window when the healthy run would just have finished:
    // at half rate only ~half the bytes are through by then.
    const Tick window_end = healthy;
    const auto [norebook, norebook_moves] =
        run_one(true, false, window_end);
    const auto [rebooked, rebook_moves] =
        run_one(true, true, window_end);

    EXPECT_GT(norebook, healthy); // The window really cut through.
    EXPECT_LT(rebooked, norebook);
    EXPECT_GT(rebooked, healthy);
    EXPECT_EQ(norebook_moves, 0u);
    EXPECT_GT(rebook_moves, 0u);
}

TEST(RebookingTest, RetryHorizonFollowsASlowedDelivery)
{
    // A degrade window opening mid-flight pushes the delivery past the
    // originally predicted tick. With rebooking on, the retry layer's
    // ack horizon must follow the new completion instead of declaring
    // the slowed (but healthy) transfer lost.
    FaultHarness h;
    h.system.fabric().setRebooking(true);
    FaultPlan plan;
    plan.degradeLink(5 * ticksPerMicrosecond,
                     500 * ticksPerMicrosecond, 0.8);
    h.system.installFaults(std::move(plan));

    HardwareAgent agent(
        h.context(TransferMechanism::Hardware, testRetry(4)));
    agent.chunkReady(0, 4 * MiB);
    h.system.run();

    EXPECT_EQ(h.deliveries, h.peers());
    EXPECT_GT(h.system.fabric().rebookedDeliveries(), 0u);
    // Nothing was dropped, so nothing may have been retried.
    EXPECT_DOUBLE_EQ(h.stats.get("transfers.retried"), 0.0);
    EXPECT_DOUBLE_EQ(h.stats.get("transfers.abandoned"), 0.0);
}

TEST(RetryRerouteTest, ReplansThroughRerouterInsteadOfFallback)
{
    // Reroute-aware retry: after rerouteAfterAttempts lost attempts
    // the sender consults the rerouter instead of burning the rest of
    // its budget on the dead wire. By the time the replan finds a
    // relay plan the loss streak has marked the link DOWN, so every
    // chunk completes through relays — the reliable fallback never
    // fires.
    PlatformSpec platform = voltaPlatform();
    platform.fabric.topology = FabricTopology::PairwiseLinks;
    FaultHarness h(platform);
    h.system.enableHealth();
    h.system.enableReroute();

    FaultPlan plan;
    plan.downLink(0, maxTick, 0, 1);
    h.system.installFaults(std::move(plan));

    RetryPolicy retry = testRetry(8);
    retry.rerouteAfterAttempts = 2;
    PollingAgent agent(
        h.context(TransferMechanism::Polling, retry));
    const int chunks = 4;
    auto &eq = h.system.eventQueue();
    for (int c = 0; c < chunks; ++c) {
        eq.schedule(static_cast<Tick>(c) * 20 * ticksPerMicrosecond,
                    [&agent, c] { agent.chunkReady(c, 64 * KiB); });
    }
    h.system.run();

    EXPECT_EQ(h.deliveries, chunks * h.peers());
    EXPECT_GT(h.stats.get("transfers.retried"), 0.0);
    EXPECT_GT(h.stats.get("transfers.replanned"), 0.0);
    EXPECT_DOUBLE_EQ(h.stats.get("fallback.activations"), 0.0);
    EXPECT_EQ(h.system.health()->linkState(0, 1), LinkState::Down);
}

TEST(RetryRerouteTest, DisabledKnobNeverReplans)
{
    // rerouteAfterAttempts = 0 keeps the pre-reroute behavior even
    // with a rerouter installed: exhaust attempts, then fall back.
    PlatformSpec platform = voltaPlatform();
    platform.fabric.topology = FabricTopology::PairwiseLinks;
    FaultHarness h(platform);
    h.system.enableHealth();
    h.system.enableReroute();

    FaultPlan plan;
    plan.downLink(0, maxTick, 0, 1);
    h.system.installFaults(std::move(plan));

    HardwareAgent agent(
        h.context(TransferMechanism::Hardware, testRetry(3)));
    agent.chunkReady(0, 64 * KiB);
    h.system.run();

    EXPECT_EQ(h.deliveries, h.peers());
    EXPECT_DOUBLE_EQ(h.stats.get("transfers.replanned"), 0.0);
    EXPECT_GT(h.stats.get("fallback.activations"), 0.0);
}

TEST(FaultInjectorTest, ArmTwiceIsFatal)
{
    MultiGpuSystem system(voltaPlatform());
    FaultPlan plan;
    plan.dropDeliveries(0, maxTick, 0.1);
    FaultInjector &inj = system.installFaults(std::move(plan));
    EXPECT_THROW(inj.arm(), FatalError);
    EXPECT_THROW(system.installFaults(FaultPlan{}), FatalError);
}

/**
 * The acceptance scenario: a seeded plan with delivery drops and a
 * 50 % bandwidth-degradation window; all four transfer mechanisms
 * complete a functional workload with verified numerics (SSSP checks
 * bitwise against its serial reference, so results match the
 * fault-free run), non-zero retries, and no hang.
 */
class FaultedMechanismSweep
    : public ::testing::TestWithParam<TransferMechanism>
{
  protected:
    static FaultPlan
    acceptancePlan()
    {
        FaultPlan plan;
        plan.seed = 7;
        plan.dropDeliveries(0, maxTick, 0.05);
        plan.degradeLink(0, 2 * ticksPerMillisecond, 0.5);
        return plan;
    }
};

TEST_P(FaultedMechanismSweep, WorkloadSurvivesWithVerifiedResults)
{
    const TransferMechanism mech = GetParam();

    auto run_once = [&] {
        auto workload = makeSmallWorkload("SSSP");
        workload->setup(4);
        MultiGpuSystem system(voltaPlatform());
        system.installFaults(acceptancePlan());

        ProactRuntime::Options options;
        options.config.mechanism = mech;
        options.config.chunkBytes = 4 * KiB;
        options.config.transferThreads = 2048;
        options.config.retry = testRetry(6);
        ProactRuntime runtime(system, options);

        const Tick ticks = runtime.run(*workload);
        EXPECT_TRUE(workload->verify());
        EXPECT_GT(runtime.stats().get("transfers.retried"), 0.0);
        EXPECT_GT(system.faults()->stats().get("faults.dropped"),
                  0.0);
        return std::pair<Tick, std::map<std::string, double>>(
            ticks, runtime.stats().all());
    };

    // Two runs with the same seed: identical final tick and stats.
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, FaultedMechanismSweep,
    ::testing::Values(TransferMechanism::Inline,
                      TransferMechanism::Polling,
                      TransferMechanism::Cdp,
                      TransferMechanism::Hardware),
    [](const auto &info) { return mechanismName(info.param); });
