/**
 * @file
 * Unit tests for the page table, UM driver, and DMA engine.
 */

#include "gpu/dma_engine.hh"
#include "memory/um_driver.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;

TEST(PageTable, GeometryAndBounds)
{
    PageTable pt(4, 1000000, 4096);
    EXPECT_EQ(pt.numPages(), (1000000 + 4095) / 4096);
    EXPECT_EQ(pt.pageOf(0), 0u);
    EXPECT_EQ(pt.pageOf(4096), 1u);
    EXPECT_THROW(pt.isResident(0, pt.numPages()), PanicError);
    EXPECT_THROW(pt.isResident(4, 0), PanicError);
    EXPECT_THROW(PageTable(0, 100, 4096), FatalError);
    EXPECT_THROW(PageTable(2, 100, 0), FatalError);
}

TEST(PageTable, ReplicateAndMigrate)
{
    PageTable pt(3, 64 * 1024, 4096);
    EXPECT_FALSE(pt.isResident(0, 5));
    pt.replicate(0, 5);
    pt.replicate(1, 5);
    EXPECT_EQ(pt.replicaCount(5), 2);
    pt.migrate(2, 5);
    EXPECT_EQ(pt.replicaCount(5), 1);
    EXPECT_TRUE(pt.isResident(2, 5));
    EXPECT_FALSE(pt.isResident(0, 5));
}

TEST(PageTable, WritesInvalidatePeers)
{
    PageTable pt(2, 64 * 1024, 4096);
    pt.replicate(0, 3);
    pt.replicate(1, 3);
    pt.writeBy(0, 3);
    EXPECT_TRUE(pt.isResident(0, 3));
    EXPECT_FALSE(pt.isResident(1, 3));
}

TEST(PageTable, RangeOperations)
{
    PageTable pt(2, 64 * 1024, 4096);
    pt.writeRangeBy(0, 0, 3 * 4096);
    EXPECT_EQ(pt.missingPages(1, 0, 3 * 4096), 3u);
    EXPECT_EQ(pt.missingPages(0, 0, 3 * 4096), 0u);
    EXPECT_EQ(pt.missingPages(0, 0, 0), 0u);
    // Partial page counts as one page.
    EXPECT_EQ(pt.missingPages(1, 3 * 4096, 1), 1u);
}

TEST(UmDriver, ResidentAccessIsFree)
{
    MultiGpuSystem system(voltaPlatform());
    UmDriver driver(system, 1 << 20);
    driver.producerWrote(1, 0, 1 << 20);

    UmHints hints;
    hints.prefetch = true;
    const Tick first =
        driver.access(0, 1, 0, 1 << 20, true, hints, 0);
    EXPECT_GT(first, 0u);
    // Second access: pages already resident.
    const Tick second =
        driver.access(0, 1, 0, 1 << 20, true, hints, first);
    EXPECT_EQ(second, std::max(system.now(), first));
}

TEST(UmDriver, ProducerWritesInvalidateConsumers)
{
    MultiGpuSystem system(voltaPlatform());
    UmDriver driver(system, 1 << 20);
    driver.producerWrote(1, 0, 1 << 20);

    UmHints hints;
    hints.prefetch = true;
    driver.access(0, 1, 0, 1 << 20, true, hints, 0);
    EXPECT_EQ(driver.pageTable().missingPages(0, 0, 1 << 20), 0u);

    driver.producerWrote(1, 0, 1 << 20);
    EXPECT_EQ(driver.pageTable().missingPages(0, 0, 1 << 20),
              driver.pageTable().numPages());
}

TEST(UmDriver, FaultPathSlowerThanPrefetch)
{
    auto access_time = [](bool prefetch, bool sequential) {
        MultiGpuSystem system(voltaPlatform());
        UmDriver driver(system, 4 << 20);
        driver.producerWrote(1, 0, 4 << 20);
        UmHints hints;
        hints.prefetch = prefetch;
        return driver.access(0, 1, 0, 4 << 20, sequential, hints, 0);
    };
    EXPECT_LT(access_time(true, true), access_time(false, true));
    // Sporadic faults serialize: far worse than sequential faults.
    EXPECT_LT(access_time(false, true), access_time(false, false));
}

TEST(UmDriver, LegacyModeUsedWithoutHardwareFaulting)
{
    MultiGpuSystem system(keplerPlatform());
    UmDriver driver(system, 1 << 20);
    EXPECT_FALSE(driver.hardwareFaulting());
    UmHints hints;
    const Tick t = driver.access(0, 1, 0, 1 << 20, true, hints, 0);
    EXPECT_GT(t, 0u);
    EXPECT_DOUBLE_EQ(driver.stats.get("legacy_migrations"), 1.0);
}

TEST(UmDriver, ReadDuplicationKeepsOwnerResident)
{
    MultiGpuSystem system(voltaPlatform());
    UmDriver driver(system, 1 << 20);
    driver.producerWrote(1, 0, 1 << 20);
    UmHints hints;
    hints.prefetch = true;
    hints.readDuplicate = true;
    driver.access(0, 1, 0, 1 << 20, true, hints, 0);
    // Both the consumer replica and the owner copy are valid.
    EXPECT_TRUE(driver.pageTable().isResident(0, 0));
    EXPECT_TRUE(driver.pageTable().isResident(1, 0));
}

TEST(DmaEngine, CopyPaysInitiationAndWireTime)
{
    MultiGpuSystem system(voltaPlatform());
    bool done = false;
    const Tick t = system.dma(0).copyToPeer(1, 1 << 20,
                                            [&] { done = true; });
    const GpuSpec &spec = system.platform().gpu;
    EXPECT_GT(t, spec.dmaInitLatency);
    system.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(system.dma(0).numCopies(), 1u);
    EXPECT_EQ(system.dma(0).bytesCopied(), 1u << 20);
    EXPECT_EQ(system.fabric().totalPayloadBytes(), 1u << 20);
}

TEST(DmaEngine, CopiesUseBestPacketGranularity)
{
    MultiGpuSystem system(voltaPlatform());
    system.dma(0).copyToPeer(1, 1 << 20);
    system.run();
    const auto &hist = system.fabric().writeSizes();
    EXPECT_EQ(hist.maxValue(),
              system.fabric().packetModel().maxPayloadBytes);
    EXPECT_EQ(hist.minValue(), hist.maxValue());
}

TEST(DmaEngine, NotBeforeIsRespected)
{
    MultiGpuSystem system(voltaPlatform());
    const Tick t =
        system.dma(0).copyToPeer(1, 4096, nullptr, 1000000);
    EXPECT_GE(t, 1000000 + system.platform().gpu.dmaInitLatency);
}
