/**
 * @file
 * Integration tests: full profile-then-run pipelines on the real
 * applications, cross-paradigm performance orderings, and the
 * paper's headline relationships at test scale.
 */

#include "baselines/runner.hh"
#include "proact/profiler.hh"
#include "proact/runtime.hh"
#include "tests/small_workloads.hh"
#include "workloads/microbench.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;
using namespace proact::test;

namespace {

Profiler::Options
quickOptions()
{
    Profiler::Options options;
    options.chunkSizes = {16 * KiB, 128 * KiB, 1 * MiB};
    options.threadCounts = {256, 2048};
    options.profileIterations = 1;
    return options;
}

Tick
runParadigmTicks(const PlatformSpec &platform, Workload &workload,
                 const std::function<std::unique_ptr<Runtime>(
                     MultiGpuSystem &)> &make)
{
    MultiGpuSystem system(platform);
    system.setFunctional(false);
    return make(system)->run(workload);
}

} // namespace

TEST(Integration, ProfileThenRunVerifiesEveryApp)
{
    const PlatformSpec platform = voltaPlatform().withGpuCount(2);
    for (const auto &name : smallWorkloadNames()) {
        auto workload = makeSmallWorkload(name);
        workload->setup(2);

        Profiler profiler(platform, quickOptions());
        const ProfileResult prof = profiler.profile(*workload);

        MultiGpuSystem system(platform);
        ProactRuntime::Options options;
        options.config = prof.best;
        if (!options.config.decoupled())
            options.config.mechanism = TransferMechanism::Inline;
        ProactRuntime runtime(system, options);
        EXPECT_GT(runtime.run(*workload), 0u) << name;
        EXPECT_TRUE(workload->verify()) << name;
    }
}

TEST(Integration, EveryParadigmComputesTheSameAnswer)
{
    // SSSP verifies bitwise against a serial reference, so running
    // it under every paradigm checks functional equivalence.
    const PlatformSpec platform = voltaPlatform();
    using Factory =
        std::function<std::unique_ptr<Runtime>(MultiGpuSystem &)>;
    const std::vector<Factory> paradigms = {
        [](MultiGpuSystem &s) {
            return std::make_unique<IdealRuntime>(s);
        },
        [](MultiGpuSystem &s) {
            return std::make_unique<BulkMemcpyRuntime>(s);
        },
        [](MultiGpuSystem &s) {
            return std::make_unique<UnifiedMemoryRuntime>(s);
        },
        [](MultiGpuSystem &s) {
            ProactRuntime::Options o;
            o.config.mechanism = TransferMechanism::Inline;
            return std::make_unique<ProactRuntime>(s, o);
        },
        [](MultiGpuSystem &s) {
            ProactRuntime::Options o;
            o.config.mechanism = TransferMechanism::Cdp;
            o.config.chunkBytes = 64 * KiB;
            return std::make_unique<ProactRuntime>(s, o);
        },
    };

    for (const auto &make : paradigms) {
        auto workload = makeSmallWorkload("SSSP");
        workload->setup(4);
        MultiGpuSystem system(platform);
        make(system)->run(*workload);
        EXPECT_TRUE(workload->verify());
    }
}

TEST(Integration, InfiniteBwBoundsEveryParadigm)
{
    for (const auto &name : {"Jacobi", "Pagerank"}) {
        auto workload = makeSmallWorkload(name);
        workload->setup(4);
        const PlatformSpec platform = voltaPlatform();

        const Tick ideal = runParadigmTicks(
            platform, *workload, [](MultiGpuSystem &s) {
                return std::make_unique<IdealRuntime>(s);
            });
        const Tick memcpy_t = runParadigmTicks(
            platform, *workload, [](MultiGpuSystem &s) {
                return std::make_unique<BulkMemcpyRuntime>(s);
            });
        const Tick proact = runParadigmTicks(
            platform, *workload, [](MultiGpuSystem &s) {
                ProactRuntime::Options o;
                o.config.mechanism = TransferMechanism::Polling;
                o.config.chunkBytes = 128 * KiB;
                o.config.transferThreads = 2048;
                return std::make_unique<ProactRuntime>(s, o);
            });

        EXPECT_LE(ideal, memcpy_t) << name;
        EXPECT_LE(ideal, proact) << name;
    }
}

TEST(Integration, DecoupledBeatsBulkOnCommunicationHeavyApps)
{
    // At communication-heavy shapes PROACT's overlap must beat the
    // bulk-synchronous baseline (the paper's core claim).
    auto workload = makeSmallWorkload("Pagerank");
    workload->setFootprintScale(64);
    workload->setup(4);
    const PlatformSpec platform = voltaPlatform();

    const Tick memcpy_t = runParadigmTicks(
        platform, *workload, [](MultiGpuSystem &s) {
            return std::make_unique<BulkMemcpyRuntime>(s);
        });
    const Tick proact = runParadigmTicks(
        platform, *workload, [](MultiGpuSystem &s) {
            ProactRuntime::Options o;
            o.config.mechanism = TransferMechanism::Polling;
            o.config.chunkBytes = 256 * KiB;
            o.config.transferThreads = 2048;
            return std::make_unique<ProactRuntime>(s, o);
        });
    EXPECT_LT(proact, memcpy_t);
}

TEST(Integration, InlineLosesWireEfficiencyOnScatteredApps)
{
    auto workload = makeSmallWorkload("ALS");
    workload->setup(4);
    const PlatformSpec platform = voltaPlatform();

    auto transactions = [&](TransferMechanism mech) {
        MultiGpuSystem system(platform);
        system.setFunctional(false);
        ProactRuntime::Options o;
        o.config.mechanism = mech;
        o.config.chunkBytes = 128 * KiB;
        ProactRuntime runtime(system, o);
        runtime.run(*workload);
        return system.fabric().totalStoreTransactions();
    };

    const auto inline_txns = transactions(TransferMechanism::Inline);
    const auto decoupled_txns =
        transactions(TransferMechanism::Polling);
    // Paper Sec. V-B reports 26x for ALS; the model gives the
    // granularity ratio 256/8 = 32x.
    EXPECT_GT(inline_txns, 20 * decoupled_txns);
}

TEST(Integration, MicrobenchmarkOverlapApproachesTwoX)
{
    // Compute is tuned to the memcpy transfer time, so perfect
    // overlap doubles throughput (paper Sec. IV-C).
    const PlatformSpec platform = voltaPlatform();
    MicrobenchWorkload::Params params;
    params.totalBytes = 16 * MiB;
    MicrobenchWorkload workload(platform, params);
    workload.setup(4);

    MultiGpuSystem bulk_system(platform);
    bulk_system.setFunctional(false);
    BulkMemcpyRuntime bulk(bulk_system);
    const Tick t_bulk = bulk.run(workload);

    MultiGpuSystem proact_system(platform);
    proact_system.setFunctional(false);
    ProactRuntime::Options o;
    o.config.mechanism = TransferMechanism::Polling;
    o.config.chunkBytes = 256 * KiB;
    o.config.transferThreads = 2048;
    ProactRuntime runtime(proact_system, o);
    const Tick t_proact = runtime.run(workload);

    const double speedup = static_cast<double>(t_bulk)
        / static_cast<double>(t_proact);
    EXPECT_GT(speedup, 1.4);
    EXPECT_LT(speedup, 2.1);
}

TEST(Integration, IdealScalingImprovesWithGpuCount)
{
    Tick prev = ~Tick(0);
    for (const int n : {1, 2, 4, 8}) {
        auto workload = makeSmallWorkload("Jacobi");
        workload->setFootprintScale(64); // Work >> launch overheads.
        workload->setup(n);
        MultiGpuSystem system(dgx2Platform().withGpuCount(n));
        system.setFunctional(false);
        IdealRuntime runtime(system);
        const Tick t = runtime.run(*workload);
        EXPECT_LT(t, prev) << n << " GPUs";
        prev = t;
    }
}

TEST(Integration, MemcpyScalingFlattensOnPcie)
{
    // The paper's Kepler observation: beyond 2 GPUs the added
    // transfer volume erases bulk-synchronous gains.
    auto time_at = [](int n) {
        auto workload = makeSmallWorkload("Pagerank");
        workload->setFootprintScale(64);
        workload->setup(n);
        MultiGpuSystem system(keplerPlatform().withGpuCount(n));
        system.setFunctional(false);
        BulkMemcpyRuntime runtime(system);
        return runtime.run(*workload);
    };
    const double gain_2_to_4 = static_cast<double>(time_at(2))
        / static_cast<double>(time_at(4));
    EXPECT_LT(gain_2_to_4, 1.5); // Far from the ideal 2x.
}

TEST(Integration, ProactScalesWhereMemcpyCannot)
{
    auto time_under = [](int n, bool proact) {
        auto workload = makeSmallWorkload("Pagerank");
        workload->setFootprintScale(64);
        workload->setup(n);
        MultiGpuSystem system(voltaPlatform().withGpuCount(n));
        system.setFunctional(false);
        if (proact) {
            ProactRuntime::Options o;
            o.config.mechanism = TransferMechanism::Polling;
            o.config.chunkBytes = 128 * KiB;
            o.config.transferThreads = 2048;
            ProactRuntime runtime(system, o);
            return runtime.run(*workload);
        }
        BulkMemcpyRuntime runtime(system);
        return runtime.run(*workload);
    };
    const double proact_gain = static_cast<double>(time_under(2, true))
        / static_cast<double>(time_under(4, true));
    const double memcpy_gain =
        static_cast<double>(time_under(2, false))
        / static_cast<double>(time_under(4, false));
    EXPECT_GT(proact_gain, memcpy_gain);
}
