/**
 * @file
 * Parallel sharded event engine battery (`ctest -L pdes`).
 *
 * The load-bearing property is the determinism gate: a sharded run
 * with N workers must be bit-identical to the 1-worker sequential
 * reference — same per-shard dispatch orders, clocks, counters and
 * merged statistics. The battery checks that on synthetic shard
 * models (seeded random traffic, ring token passing) and on the
 * product path gated by PROACT_SIM_SHARDS (parallel profiler sweeps
 * and Session paradigm comparisons).
 */

#include "sim/sharded_engine.hh"

#include "faults/fault_plan.hh"
#include "harness/session.hh"
#include "proact/profiler.hh"
#include "proact/runtime.hh"
#include "sim/random.hh"
#include "system/multi_gpu_system.hh"
#include "system/platform.hh"
#include "tests/small_workloads.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

using namespace proact;

namespace {

std::string
statsDigest(const ShardedEventEngine &engine)
{
    std::ostringstream os;
    engine.mergedStats().dump(os);
    return os.str();
}

/**
 * Seeded random traffic over N shards. Every event logs into its
 * shard's order log, bumps that shard's StatSet, and spawns at most
 * one successor — locally with a pseudo-random delay, or on a
 * pseudo-random peer via post() at >= lookahead distance. All state
 * is shard-local, so any worker interleaving that respects the
 * engine contract must reproduce the exact same logs.
 */
struct RandomTrafficModel
{
    static constexpr Tick Lookahead = 500;

    RandomTrafficModel(int shards, int workers, std::uint64_t seed)
        : engine(ShardedEventEngine::Options{shards, Lookahead,
                                             workers}),
          rng(static_cast<std::size_t>(shards)),
          log(static_cast<std::size_t>(shards))
    {
        for (int s = 0; s < shards; ++s) {
            rng[static_cast<std::size_t>(s)] =
                seed * 2654435761ull + static_cast<std::uint64_t>(s)
                + 1;
            const int hops = 300 + s * 7;
            const Tick when = static_cast<Tick>((s * 17) % 97 + 1);
            engine.shard(s).schedule(when, [this, s, hops] {
                step(s, hops);
            });
        }
    }

    std::uint64_t next(int s)
    {
        std::uint64_t x = rng[static_cast<std::size_t>(s)];
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return rng[static_cast<std::size_t>(s)] = x;
    }

    void step(int s, int hops)
    {
        EventQueue &q = engine.shard(s);
        log[static_cast<std::size_t>(s)].push_back(
            (q.curTick() << 10) ^ static_cast<std::uint64_t>(hops));
        engine.stats(s).inc("model.steps");
        if (hops == 0)
            return;

        const std::uint64_t r = next(s);
        const int n = engine.numShards();
        if (n == 1 || r % 4 != 0) {
            q.schedule(q.curTick() + 1 + r % 100,
                       [this, s, hops] { step(s, hops - 1); });
        } else {
            const int peer = static_cast<int>(
                (static_cast<std::uint64_t>(s) + 1 + (r >> 8)
                 % static_cast<std::uint64_t>(n - 1))
                % static_cast<std::uint64_t>(n));
            const Tick when =
                q.curTick() + engine.lookahead() + (r >> 16) % 200;
            engine.stats(s).inc("model.posts");
            engine.post(s, peer, when,
                        [this, peer, hops] { step(peer, hops - 1); },
                        static_cast<int>((r >> 32) % 3));
        }
    }

    ShardedEventEngine engine;
    std::vector<std::uint64_t> rng;
    std::vector<std::vector<std::uint64_t>> log;
};

struct ModelResult
{
    std::vector<std::vector<std::uint64_t>> log;
    std::vector<Tick> shardTicks;
    std::uint64_t dispatched;
    std::uint64_t posted;
    std::uint64_t windows;
    std::string digest;
};

ModelResult
runRandomModel(int shards, int workers, std::uint64_t seed)
{
    RandomTrafficModel model(shards, workers, seed);
    model.engine.run();
    ModelResult r;
    r.log = model.log;
    for (int s = 0; s < shards; ++s)
        r.shardTicks.push_back(model.engine.shard(s).curTick());
    r.dispatched = model.engine.dispatchedEvents();
    r.posted = model.engine.postedEvents();
    r.windows = model.engine.windows();
    r.digest = statsDigest(model.engine);
    return r;
}

} // namespace

TEST(ShardedEngine, EnvKnobParsesAndClamps)
{
    unsetenv("PROACT_SIM_SHARDS");
    EXPECT_EQ(envSimShards(), 0);
    setenv("PROACT_SIM_SHARDS", "1", 1);
    EXPECT_EQ(envSimShards(), 0); // 1 shard == sequential == off.
    setenv("PROACT_SIM_SHARDS", "4", 1);
    EXPECT_EQ(envSimShards(), 4);
    setenv("PROACT_SIM_SHARDS", "999", 1);
    EXPECT_EQ(envSimShards(), 64);
    setenv("PROACT_SIM_SHARDS", "-3", 1);
    EXPECT_EQ(envSimShards(), 0);
    unsetenv("PROACT_SIM_SHARDS");
}

TEST(ShardedEngine, SingleShardMatchesPlainEventQueue)
{
    ShardedEventEngine engine(
        ShardedEventEngine::Options{1, 100, 1});
    std::vector<int> order;
    engine.shard(0).schedule(30, [&] { order.push_back(3); });
    engine.shard(0).schedule(10, [&] { order.push_back(1); });
    engine.shard(0).schedule(20, [&] { order.push_back(2); });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(engine.dispatchedEvents(), 3u);
    EXPECT_EQ(engine.shard(0).curTick(), 30u);
}

TEST(ShardedEngine, CrossShardMailDeliveredInDeterministicOrder)
{
    ShardedEventEngine engine(
        ShardedEventEngine::Options{3, 100, 1});
    std::vector<int> seen;
    // Setup-time posts from different sources at one target tick:
    // merge order is (when, priority, from, fromSeq), not post order.
    engine.post(2, 0, 50, [&] { seen.push_back(20); });
    engine.post(1, 0, 50, [&] { seen.push_back(10); });
    engine.post(1, 0, 50, [&] { seen.push_back(11); });
    engine.post(2, 0, 40, [&] { seen.push_back(9); });
    engine.post(1, 0, 50, [&] { seen.push_back(5); }, /*priority=*/-1);
    engine.run();
    EXPECT_EQ(seen, (std::vector<int>{9, 5, 10, 11, 20}));
    EXPECT_EQ(engine.postedEvents(), 5u);
}

TEST(ShardedEngine, PostInsideWindowBelowLookaheadThrows)
{
    ShardedEventEngine engine(
        ShardedEventEngine::Options{2, 1000, 1});
    engine.shard(0).schedule(10, [&] {
        // windowEnd is 10 + 1000; a cross-shard effect at tick 11
        // breaks the conservative contract and must be rejected.
        engine.post(0, 1, engine.shard(0).curTick() + 1, [] {});
    });
    EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(ShardedEngine, ContractViolationNamesOffendingEdge)
{
    // The rejection must carry enough to act on: which edge broke the
    // contract and by how much (the fix is lowering the lookahead or
    // raising the model's minimum delay on exactly that path).
    ShardedEventEngine engine(
        ShardedEventEngine::Options{2, 1000, 1});
    engine.shard(0).schedule(10, [&] {
        engine.post(0, 1, engine.shard(0).curTick() + 1, [] {});
    });
    try {
        engine.run();
        FAIL() << "lookahead violation was not rejected";
    } catch (const std::logic_error &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("from shard 0"), std::string::npos)
            << what;
        EXPECT_NE(what.find("to shard 1"), std::string::npos) << what;
        EXPECT_NE(what.find("when=11"), std::string::npos) << what;
        EXPECT_NE(what.find("window end=1010"), std::string::npos)
            << what;
    }
}

TEST(ShardedEngine, PostAtWindowEndIsAccepted)
{
    ShardedEventEngine engine(
        ShardedEventEngine::Options{2, 1000, 1});
    bool delivered = false;
    engine.shard(0).schedule(10, [&] {
        engine.post(0, 1, engine.windowEnd(),
                    [&] { delivered = true; });
    });
    engine.run();
    EXPECT_TRUE(delivered);
    EXPECT_EQ(engine.shard(1).curTick(), 1010u);
}

TEST(ShardedEngine, WorkerExceptionSurfacesFromRun)
{
    ShardedEventEngine engine(
        ShardedEventEngine::Options{4, 100, 4});
    for (int s = 0; s < 4; ++s)
        engine.shard(s).schedule(10 + s, [] {});
    engine.shard(2).schedule(20, [] {
        throw std::runtime_error("model failure");
    });
    EXPECT_THROW(engine.run(), std::runtime_error);
    // The pool must still shut down cleanly (checked by destruction).
}

TEST(ShardedEngine, MergedStatsAggregatesAcrossShards)
{
    ShardedEventEngine engine(
        ShardedEventEngine::Options{3, 100, 1});
    engine.stats(0).inc("x", 1.0);
    engine.stats(1).inc("x", 2.0);
    engine.stats(2).inc("y", 5.0);
    const StatSet merged = engine.mergedStats();
    EXPECT_DOUBLE_EQ(merged.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(merged.get("y"), 5.0);
}

TEST(ShardedEngine, RandomTrafficParallelMatchesSequential)
{
    // The determinism gate on a seeded random model: 4 workers must
    // reproduce the 1-worker reference bit for bit, across seeds.
    for (const std::uint64_t seed : {1ull, 42ull, 20210614ull}) {
        const ModelResult serial = runRandomModel(4, 1, seed);
        const ModelResult parallel = runRandomModel(4, 4, seed);
        EXPECT_EQ(serial.log, parallel.log) << "seed=" << seed;
        EXPECT_EQ(serial.shardTicks, parallel.shardTicks);
        EXPECT_EQ(serial.dispatched, parallel.dispatched);
        EXPECT_EQ(serial.posted, parallel.posted);
        EXPECT_EQ(serial.windows, parallel.windows);
        EXPECT_EQ(serial.digest, parallel.digest);
        EXPECT_GT(serial.posted, 0u) << "model never crossed shards";
    }
}

TEST(ShardedEngine, RandomTrafficRepeatedParallelRunsAgree)
{
    const ModelResult a = runRandomModel(6, 3, 7);
    const ModelResult b = runRandomModel(6, 3, 7);
    EXPECT_EQ(a.log, b.log);
    EXPECT_EQ(a.digest, b.digest);
}

TEST(ShardedEngine, RingTokenPassingDeterministicAcrossWorkers)
{
    // A token circles the ring R times; each hop is a cross-shard
    // post at exactly the lookahead. Total hops and the final clock
    // are worker-count independent.
    const auto run_ring = [](int workers) {
        constexpr int Shards = 8;
        constexpr Tick Lookahead = 250;
        ShardedEventEngine engine(ShardedEventEngine::Options{
            Shards, Lookahead, workers});
        std::uint64_t hops = 0;
        std::function<void(int, int)> hop = [&](int s,
                                                int remaining) {
            ++hops;
            engine.stats(s).inc("ring.hops");
            if (remaining == 0)
                return;
            const int peer = (s + 1) % Shards;
            engine.post(s, peer,
                        engine.shard(s).curTick() + Lookahead,
                        [&hop, peer, remaining] {
                            hop(peer, remaining - 1);
                        });
        };
        engine.shard(0).schedule(1, [&] { hop(0, Shards * 5); });
        engine.run();
        std::ostringstream os;
        engine.mergedStats().dump(os);
        return std::make_tuple(hops, engine.maxShardTick(),
                               engine.windows(), os.str());
    };
    EXPECT_EQ(run_ring(1), run_ring(4));
}

TEST(PdesProfiler, ParallelSweepBitIdenticalToSerial)
{
    const SweepWorkloadFactory factory = [](int gpus) {
        auto workload = test::makeSmallWorkload("Jacobi");
        workload->setup(gpus);
        return workload;
    };

    Profiler::Options quick;
    quick.chunkSizes = {64 * KiB, 128 * KiB};
    quick.threadCounts = {1024, 2048};
    quick.profileIterations = 1;

    Profiler::Options serial = quick;
    serial.shards = 1;
    Profiler::Options parallel = quick;
    parallel.shards = 4;
    parallel.sweepFactory = factory;

    const PlatformSpec platform = voltaPlatform();
    auto workload_a = factory(platform.numGpus);
    const ProfileResult a =
        Profiler(platform, serial).profile(*workload_a);
    auto workload_b = factory(platform.numGpus);
    const ProfileResult b =
        Profiler(platform, parallel).profile(*workload_b);

    EXPECT_EQ(a.bestTicks, b.bestTicks);
    EXPECT_EQ(a.inlineTicks, b.inlineTicks);
    EXPECT_EQ(a.best.mechanism, b.best.mechanism);
    EXPECT_EQ(a.best.chunkBytes, b.best.chunkBytes);
    EXPECT_EQ(a.best.transferThreads, b.best.transferThreads);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_EQ(a.entries[i].ticks, b.entries[i].ticks) << i;
        EXPECT_EQ(a.entries[i].config.chunkBytes,
                  b.entries[i].config.chunkBytes) << i;
        EXPECT_EQ(a.entries[i].config.transferThreads,
                  b.entries[i].config.transferThreads) << i;
        EXPECT_EQ(a.entries[i].config.mechanism,
                  b.entries[i].config.mechanism) << i;
    }
}

TEST(PdesSession, CompareParadigmsBitIdenticalUnderEnvShards)
{
    // The Session-level gate from the issue: PROACT_SIM_SHARDS > 1
    // must leave every summary number untouched under a fixed seed
    // (the simulator is deterministic; the knob only adds workers).
    const WorkloadFactory factory = [](int gpus) {
        auto workload = test::makeSmallWorkload("Jacobi");
        workload->setup(gpus);
        return workload;
    };

    Profiler::Options quick;
    quick.chunkSizes = {64 * KiB, 128 * KiB};
    quick.threadCounts = {2048};
    quick.profileIterations = 1;

    Session session(voltaPlatform());
    unsetenv("PROACT_SIM_SHARDS");
    const auto serial =
        session.compareParadigms(factory, /*functional=*/false, quick);
    setenv("PROACT_SIM_SHARDS", "4", 1);
    const auto sharded =
        session.compareParadigms(factory, /*functional=*/false, quick);
    unsetenv("PROACT_SIM_SHARDS");

    ASSERT_EQ(serial.size(), sharded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].paradigm, sharded[i].paradigm);
        EXPECT_EQ(serial[i].ticks, sharded[i].ticks)
            << paradigmName(serial[i].paradigm);
        EXPECT_DOUBLE_EQ(serial[i].speedup, sharded[i].speedup);
        EXPECT_EQ(serial[i].wireBytes, sharded[i].wireBytes);
        EXPECT_EQ(serial[i].payloadBytes, sharded[i].payloadBytes);
        EXPECT_EQ(serial[i].storeTransactions,
                  sharded[i].storeTransactions);
    }
}

// ---------------------------------------------------------------------------
// Paradigm-execution determinism battery: the headline gate of the
// sharded execution loop. Every run below goes through the product
// path (Session::RunOptions::simShards); the 1-shard engine is the
// reference and every higher shard count must reproduce it bit for
// bit — stats, summaries and fault counters alike.
// ---------------------------------------------------------------------------

namespace {

/**
 * The battery machine: voltaPlatform() models NVLink2 as shared
 * ports, which (correctly) degrades sharding to serial — there is no
 * per-pair channel to bind to a shard. Switching the same machine to
 * pairwise links makes the conservative contract satisfiable, so the
 * engine actually engages and the gate means something.
 */
PlatformSpec
pairwiseVolta()
{
    PlatformSpec platform = voltaPlatform();
    platform.fabric.topology = FabricTopology::PairwiseLinks;
    return platform;
}

/** All four transfer mechanisms and the paradigm each rides on. */
struct MechanismCase
{
    TransferMechanism mechanism;
    Paradigm paradigm;
};

constexpr MechanismCase kMechanisms[] = {
    {TransferMechanism::Inline, Paradigm::ProactInline},
    {TransferMechanism::Polling, Paradigm::ProactDecoupled},
    {TransferMechanism::Cdp, Paradigm::ProactDecoupled},
    {TransferMechanism::Hardware, Paradigm::ProactDecoupled},
};

/** Every ParadigmRun field (and the summary line) in one string. */
std::string
runDigest(const ParadigmRun &r)
{
    std::ostringstream os;
    os << "ticks=" << r.ticks << " wire=" << r.wireBytes
       << " payload=" << r.payloadBytes
       << " stores=" << r.storeTransactions
       << " dropped=" << r.faultsDropped << " retries=" << r.retries
       << " fallbacks=" << r.fallbacks
       << " transitions=" << r.linkTransitions << "/"
       << r.wireTransitions << " congested=" << r.congestionEvents
       << " reroutes=" << r.reroutes << " swaps=" << r.configSwaps
       << " aborted=" << r.aborted << " lost=" << r.lostGpu
       << " iters=" << r.completedIterations
       << " ckpt=" << r.checkpointIteration << "/" << r.checkpoints
       << "/" << r.checkpointTicks
       << " refused=" << r.refusedDeliveries
       << " quiesced=" << r.quiescedFlights
       << " orphaned=" << r.orphanedTransfers << " ["
       << r.faultSummary() << "]";
    return os.str();
}

Session::RunOptions
batteryOptions(TransferMechanism mechanism, int shards)
{
    Session::RunOptions options;
    options.functional = false;
    options.config.mechanism = mechanism;
    options.config.chunkBytes = 64 * KiB;
    options.config.transferThreads = 2048;
    options.simShards = shards;
    return options;
}

} // namespace

TEST(PdesParadigm, EveryWorkloadAndMechanismBitIdenticalAcrossShards)
{
    Session session(pairwiseVolta());
    const int gpus = session.platform().numGpus;
    for (const std::string &name : test::smallWorkloadNames()) {
        for (const MechanismCase &mc : kMechanisms) {
            auto run_once = [&](int shards) {
                auto workload = test::makeSmallWorkload(name);
                workload->setup(gpus);
                return runDigest(session.run(
                    *workload, mc.paradigm,
                    batteryOptions(mc.mechanism, shards)));
            };
            const std::string ref = run_once(1);
            for (const int shards : {2, 4, 8}) {
                EXPECT_EQ(ref, run_once(shards))
                    << name << " under "
                    << mechanismName(mc.mechanism) << " at "
                    << shards << " shards";
            }
        }
    }
}

TEST(PdesParadigm, FaultedReroutedRunsBitIdenticalAcrossShards)
{
    // Same gate with the whole fault-adaptive stack live: a seeded
    // random fault plan, the retry ladder, link health classification
    // and rerouting, and the device watchdog all running inside the
    // sharded engine. Retries and reroutes are exactly the paths that
    // cross shards, so this is where nondeterminism would surface.
    Session session(pairwiseVolta());
    const int gpus = session.platform().numGpus;
    int mech_index = 0;
    for (const MechanismCase &mc : kMechanisms) {
        const std::uint64_t seed = deriveSeed(
            0x70646573u, static_cast<std::uint64_t>(mech_index++));
        auto run_once = [&](int shards) {
            auto workload = test::makeSmallWorkload("Jacobi");
            workload->setup(gpus);
            Session::RunOptions options =
                batteryOptions(mc.mechanism, shards);
            options.armFaults = true;
            RandomFaultOptions fopts;
            fopts.numEvents = 5;
            FaultPlan plan = randomFaultPlan(seed, gpus, fopts);
            // The random episodes are sparse against this workload's
            // sparse chunk traffic; a lossy wildcard window plus one
            // long outage guarantee drops, retries and reroutes
            // actually occur (an untouched run gates nothing).
            plan.dropDeliveries(0, maxTick, 0.3);
            plan.downLink(10000 * ticksPerMicrosecond,
                          30000 * ticksPerMicrosecond, 0, 1);
            options.faults = std::move(plan);
            options.retry.enabled = true;
            options.retry.maxAttempts = 6;
            options.retry.rerouteAfterAttempts = 2;
            options.health = true;
            options.reroute = true;
            options.deviceHealth = true;
            return runDigest(
                session.run(*workload, mc.paradigm, options));
        };
        const std::string ref = run_once(1);
        // Non-vacuity: the plan must actually have cost deliveries
        // and triggered retries, or the gate proves nothing.
        EXPECT_EQ(ref.find(" dropped=0 "), std::string::npos) << ref;
        EXPECT_EQ(ref.find(" retries=0 "), std::string::npos) << ref;
        for (const int shards : {2, 4, 8}) {
            EXPECT_EQ(ref, run_once(shards))
                << mechanismName(mc.mechanism) << " at " << shards
                << " shards (seed " << seed << ")";
        }
    }
}

TEST(PdesParadigm, DeviceLossRecoveryBitIdenticalAcrossShards)
{
    // Recovery path under the gate: an unconditional mid-run device
    // death with checkpointing armed. The abort decision, the lost
    // GPU, the surviving iteration count and the checkpoint ledger
    // must all be shard-count invariant.
    Session session(pairwiseVolta());
    const int gpus = session.platform().numGpus;
    auto run_once = [&](int shards) {
        auto workload = test::makeSmallWorkload("Pagerank");
        workload->setup(gpus);
        Session::RunOptions options =
            batteryOptions(TransferMechanism::Polling, shards);
        options.armFaults = true;
        FaultPlan plan;
        plan.downGpu(120 * ticksPerMicrosecond, maxTick, gpus - 1);
        options.faults = std::move(plan);
        options.retry.enabled = true;
        options.retry.maxAttempts = 4;
        options.health = true;
        options.reroute = true;
        options.deviceHealth = true;
        options.checkpoint.enabled = true;
        options.checkpoint.interval = 1;
        const ParadigmRun r = session.run(
            *workload, Paradigm::ProactDecoupled, options);
        EXPECT_TRUE(r.aborted) << shards << " shards";
        EXPECT_EQ(r.lostGpu, gpus - 1) << shards << " shards";
        return runDigest(r);
    };
    const std::string ref = run_once(1);
    for (const int shards : {2, 4, 8})
        EXPECT_EQ(ref, run_once(shards)) << shards << " shards";
}

TEST(PdesParadigm, RuntimeStatDumpsBitIdenticalAcrossShards)
{
    // Below the Session summary: the full StatSet ledger of the
    // runtime (every counter it ever bumped, including the per-GPU
    // lanes folded in after the drain) must match key-for-key and
    // bit-for-bit across shard counts.
    auto dump_once = [](int shards, TransferMechanism mechanism) {
        MultiGpuSystem system(pairwiseVolta(), shards);
        // Guard against a silent serial degrade, which would make
        // every comparison in this battery vacuously true.
        EXPECT_TRUE(system.sharded()) << shards << " shards";
        system.setFunctional(false);
        auto workload = test::makeSmallWorkload("SSSP");
        workload->setup(system.numGpus());
        ProactRuntime::Options options;
        options.config.mechanism = mechanism;
        options.config.chunkBytes = 64 * KiB;
        options.config.transferThreads = 2048;
        ProactRuntime runtime(system, options);
        std::ostringstream os;
        os << "ticks=" << runtime.run(*workload)
           << " tail=" << runtime.tailTicks() << "\n";
        runtime.stats().dump(os);
        return os.str();
    };
    for (const MechanismCase &mc : kMechanisms) {
        const std::string ref = dump_once(1, mc.mechanism);
        for (const int shards : {2, 4}) {
            EXPECT_EQ(ref, dump_once(shards, mc.mechanism))
                << mechanismName(mc.mechanism) << " at " << shards
                << " shards";
        }
    }
}
