/**
 * @file
 * Congestion / wire-fault discrimination battery.
 *
 * The fabric splits every delivery into queueing delay (time spent
 * behind other flows at shared ports) and wire service time (what the
 * delivery would cost on an idle fabric at current link rates). The
 * health monitor must classify from the right component: a port
 * backlog of equal observable magnitude to a wire fault must surface
 * as CONGESTED — never DEGRADED, never a reroute, never a plan
 * recompute — while the wire fault must trip DEGRADED and have fresh
 * route plans available the instant the transition fires. A seeded
 * fuzz campaign checks the whole stack keeps exactly-once delivery
 * and tick-for-tick replay when congestion and MTTR/MTBF link
 * flapping overlap.
 */

#include "faults/fault_plan.hh"
#include "health/link_health.hh"
#include "interconnect/rerouter.hh"
#include "proact/reprofiler.hh"
#include "proact/transfer_agent.hh"
#include "sim/random.hh"
#include "tests/small_workloads.hh"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

using namespace proact;
using namespace proact::test;

namespace {

/** Shared-port Volta: flows into one GPU contend on its ingress. */
PlatformSpec
sharedVolta()
{
    return voltaPlatform();
}

/** Pairwise-link Volta: detours ride physically distinct wires. */
PlatformSpec
pairwiseVolta()
{
    PlatformSpec p = voltaPlatform();
    p.fabric.topology = FabricTopology::PairwiseLinks;
    return p;
}

RetryPolicy
testRetry(int max_attempts = 6)
{
    RetryPolicy policy;
    policy.enabled = true;
    policy.maxAttempts = max_attempts;
    return policy;
}

/** Submit one fire-and-forget transfer at the current tick. */
Tick
sendNow(MultiGpuSystem &system, int src, int dst, std::uint64_t bytes)
{
    Interconnect::Request req;
    req.src = src;
    req.dst = dst;
    req.bytes = bytes;
    req.writeGranularity = 256;
    return system.fabric().transfer(req);
}

/** Delivery latency of one transfer on an otherwise idle fabric. */
Tick
idleLatency(const PlatformSpec &platform, std::uint64_t bytes)
{
    MultiGpuSystem system(platform);
    return sendNow(system, 0, 1, bytes);
}

/** Campaign seed; each fuzz case derives its own stream from it. */
constexpr std::uint64_t kCongestionCampaign = 0x636f6e67u;

} // namespace

TEST(CongestionTest, PureCongestionIsNotAWireFault)
{
    MultiGpuSystem system(sharedVolta());
    LinkHealthMonitor &mon = system.enableHealth();
    Rerouter &rr = system.enableReroute();

    // Warm the 0->1 route plan while the fabric is quiet.
    ASSERT_EQ(rr.plan(0, 1).size(), 1u);
    ASSERT_TRUE(rr.plan(0, 1)[0].direct());
    const double computes_warm =
        rr.stats().get("reroute.plan_computes");

    // Back up gpu1's shared ingress port with other flows' traffic.
    for (int i = 0; i < 6; ++i) {
        sendNow(system, 2, 1, 4 * MiB);
        sendNow(system, 3, 1, 4 * MiB);
    }

    // The measured 0->1 flow queues behind that backlog: its
    // end-to-end latency inflates at least as much as a serious wire
    // fault would inflate it...
    const Tick idle = idleLatency(sharedVolta(), 64 * KiB);
    Tick total_latency = 0;
    const int samples = 8;
    for (int i = 0; i < samples; ++i)
        total_latency += sendNow(system, 0, 1, 64 * KiB);
    EXPECT_GE(total_latency / samples, 2 * idle);

    // ...yet the monitor attributes the wait to queueing, not the
    // wire: CONGESTED, with the bandwidth EWMA unharmed.
    EXPECT_EQ(mon.linkState(0, 1), LinkState::Congested);
    EXPECT_GT(mon.ewmaQueueRatio(0, 1),
              mon.policy().congestedQueueRatio);
    EXPECT_DOUBLE_EQ(mon.residualFraction(0, 1), 1.0);
    EXPECT_EQ(mon.stats().get("health.wire_transitions"), 0.0);
    EXPECT_GT(mon.stats().get("health.to_congested"), 0.0);

    // Spread-don't-detour: congestion causes zero plan churn. The
    // push listener ignored every congestion-only flip, the warm
    // direct plan survived, and no detour or split was ever planned.
    EXPECT_EQ(rr.stats().get("reroute.push_invalidations"), 0.0);
    EXPECT_GT(rr.stats().get("reroute.push_ignored"), 0.0);
    const auto &legs = rr.plan(0, 1);
    ASSERT_EQ(legs.size(), 1u);
    EXPECT_TRUE(legs[0].direct());
    EXPECT_EQ(rr.stats().get("reroute.plan_computes"), computes_warm);
    EXPECT_EQ(rr.stats().get("reroute.detours"), 0.0);
    EXPECT_EQ(rr.stats().get("reroute.splits"), 0.0);
    // Push mode: quiet-fabric lookups never read provider epochs.
    EXPECT_EQ(rr.stats().get("reroute.epoch_reads"), 0.0);
}

TEST(CongestionTest, EqualMagnitudeWireFaultTripsDegradedAndReroutes)
{
    // Same observable slowdown, opposite verdict: a severity-0.9
    // degrade stretches the wire service itself (~10x), which must
    // land on the wire EWMA, trip DEGRADED, and evict the route plan
    // the instant the transition fires — no staleness window.
    const Tick idle = idleLatency(pairwiseVolta(), 64 * KiB);
    {
        MultiGpuSystem probe(pairwiseVolta());
        FaultPlan plan;
        plan.degradeLink(0, maxTick, 0.9, 0, 1);
        probe.installFaults(std::move(plan));
        Tick delivered = 0;
        Tick submitted = 0;
        probe.eventQueue().schedule(
            10 * ticksPerMicrosecond, [&] {
                submitted = probe.now();
                delivered = sendNow(probe, 0, 1, 64 * KiB);
            });
        probe.run();
        EXPECT_GE(delivered - submitted, 2 * idle);
    }

    MultiGpuSystem system(pairwiseVolta());
    LinkHealthMonitor &mon = system.enableHealth();
    Rerouter &rr = system.enableReroute();

    FaultPlan plan;
    plan.degradeLink(0, maxTick, 0.9, 0, 1);
    system.installFaults(std::move(plan));

    // Warm the 0->1 plan so the transition has something to evict.
    ASSERT_TRUE(rr.plan(0, 1)[0].direct());

    Tick degraded_at = 0;
    bool plan_recomputed_at_transition = false;
    mon.addListener([&](int s, int d, LinkState, LinkState to) {
        if (s != 0 || d != 1 || to != LinkState::Degraded ||
            degraded_at != 0) {
            return;
        }
        degraded_at = system.now();
        // The rerouter's push listener ran first in this same
        // fan-out, so the very next lookup must recompute: route
        // decisions reflect the wire fault within the transition
        // itself, well inside any holdoff window.
        const double before = rr.stats().get("reroute.plan_computes");
        rr.plan(0, 1);
        plan_recomputed_at_transition =
            rr.stats().get("reroute.plan_computes") == before + 1.0;
    });

    StatSet stats;
    int deliveries = 0;
    TransferAgent::Context ctx;
    ctx.system = &system;
    ctx.gpuId = 0;
    ctx.config.mechanism = TransferMechanism::Polling;
    ctx.config.chunkBytes = 64 * KiB;
    ctx.config.transferThreads = 2048;
    ctx.config.retry = testRetry();
    ctx.stats = &stats;
    ctx.onDelivered = [&deliveries](std::uint64_t) { ++deliveries; };
    PollingAgent agent(ctx);

    const int chunks = 16;
    auto &eq = system.eventQueue();
    for (int c = 0; c < chunks; ++c) {
        eq.schedule(static_cast<Tick>(c) * 50 * ticksPerMicrosecond,
                    [&agent, c] { agent.chunkReady(c, 64 * KiB); });
    }
    system.run();

    EXPECT_EQ(mon.linkState(0, 1), LinkState::Degraded);
    EXPECT_LT(mon.residualFraction(0, 1),
              mon.policy().degradedBwFraction);
    EXPECT_GT(degraded_at, 0u);
    EXPECT_TRUE(plan_recomputed_at_transition);
    EXPECT_GE(mon.stats().get("health.wire_transitions"), 1.0);
    EXPECT_GE(rr.stats().get("reroute.push_invalidations"), 1.0);
    // Traffic sent after the verdict split off the degraded wire,
    // and exactly-once accounting survived the splits.
    EXPECT_GT(rr.stats().get("reroute.splits"), 0.0);
    EXPECT_EQ(deliveries, chunks * (system.numGpus() - 1));
    EXPECT_GT(rr.plan(0, 1).size(), 1u);
}

TEST(CongestionTest, WireVerdictWinsWhenCongestionOverlapsAFault)
{
    // Both signals at once: the 0->1 pair link is degraded AND its
    // queue is backed up with earlier traffic. The wire verdict must
    // win — a congested EWMA never masks a broken wire.
    MultiGpuSystem system(pairwiseVolta());
    LinkHealthMonitor &mon = system.enableHealth();

    FaultPlan plan;
    plan.degradeLink(0, maxTick, 0.8, 0, 1);
    system.installFaults(std::move(plan));

    system.eventQueue().schedule(10 * ticksPerMicrosecond, [&] {
        // A burst of large transfers builds the queue...
        for (int i = 0; i < 6; ++i)
            sendNow(system, 0, 1, 1 * MiB);
        // ...and the measured samples wait behind it on a slow wire.
        for (int i = 0; i < 6; ++i)
            sendNow(system, 0, 1, 64 * KiB);
    });
    system.run();

    EXPECT_EQ(mon.linkState(0, 1), LinkState::Degraded);
    EXPECT_LT(mon.residualFraction(0, 1),
              mon.policy().degradedBwFraction);
    // The congestion signal was genuinely present and tracked...
    EXPECT_GT(mon.ewmaQueueRatio(0, 1),
              mon.policy().congestedQueueRatio);
    // ...but the classification came from the wire component.
    EXPECT_GE(mon.stats().get("health.wire_transitions"), 1.0);
}

TEST(CongestionTest, CongestionClearsWithoutDisturbingPlansOrProfiles)
{
    MultiGpuSystem system(sharedVolta());
    LinkHealthMonitor &mon = system.enableHealth();
    Rerouter &rr = system.enableReroute();

    auto factory = [](int gpus) {
        auto w = makeSmallWorkload("SSSP");
        w->setup(gpus);
        return w;
    };
    TransferConfig initial;
    initial.mechanism = TransferMechanism::Polling;
    initial.chunkBytes = 64 * KiB;
    initial.transferThreads = 2048;
    initial.retry = testRetry();
    AdaptiveReprofiler reprofiler(system, factory, initial);

    ASSERT_TRUE(rr.plan(0, 1)[0].direct());
    const double computes_warm =
        rr.stats().get("reroute.plan_computes");

    auto &eq = system.eventQueue();
    // Phase 1: backlog gpu1's ingress and sample 0->1 through it.
    eq.schedule(0, [&] {
        for (int i = 0; i < 4; ++i) {
            sendNow(system, 2, 1, 1 * MiB);
            sendNow(system, 3, 1, 1 * MiB);
        }
        for (int i = 0; i < 6; ++i)
            sendNow(system, 0, 1, 64 * KiB);
    });
    // Phase 2: long after the backlog drained, quiet samples walk
    // the queue EWMA back below the clear threshold.
    for (int i = 0; i < 48; ++i) {
        eq.schedule((2000 + static_cast<Tick>(i) * 5)
                        * ticksPerMicrosecond,
                    [&] { sendNow(system, 0, 1, 64 * KiB); });
    }
    system.run();

    // The link visited CONGESTED and came back — and nothing else.
    EXPECT_EQ(mon.linkState(0, 1), LinkState::Healthy);
    EXPECT_LT(mon.ewmaQueueRatio(0, 1), mon.policy().clearQueueRatio);
    int congested = 0;
    int healthy = 0;
    for (const auto &t : mon.transitions()) {
        if (t.src != 0 || t.dst != 1)
            continue;
        if (t.to == LinkState::Congested)
            ++congested;
        else if (t.to == LinkState::Healthy)
            ++healthy;
        else
            ADD_FAILURE() << "unexpected transition " << t.describe();
    }
    EXPECT_EQ(congested, 1);
    EXPECT_EQ(healthy, 1);
    EXPECT_EQ(mon.stats().get("health.wire_transitions"), 0.0);

    // The whole congestion episode caused zero plan churn and never
    // dirtied the reprofiler: no recompute, no sweep, no epoch read.
    EXPECT_EQ(rr.stats().get("reroute.plan_computes"), computes_warm);
    EXPECT_EQ(rr.stats().get("reroute.push_invalidations"), 0.0);
    EXPECT_GE(rr.stats().get("reroute.push_ignored"), 2.0);
    EXPECT_EQ(rr.stats().get("reroute.epoch_reads"), 0.0);
    EXPECT_FALSE(reprofiler.dirty());
    EXPECT_FALSE(reprofiler.refresh());
    EXPECT_DOUBLE_EQ(reprofiler.stats().get("reprofile.sweeps"), 0.0);
}

class CongestionFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CongestionFuzz, DeliveryAttributionIdentityHolds)
{
    // Every sample the fabric exports must satisfy
    //   enqueued + queueDelay + serviceTime == delivered
    // with fault delay spikes charged to the service component —
    // under random traffic, degradation windows and delay faults.
    const std::uint64_t seed =
        deriveSeed(kCongestionCampaign, 100 + GetParam());
    Rng rng(seed);

    MultiGpuSystem system(sharedVolta());
    FaultPlan plan;
    plan.seed = seed;
    plan.degradeLink(100 * ticksPerMicrosecond,
                     400 * ticksPerMicrosecond, 0.5, 0, 1);
    plan.delayDeliveries(50 * ticksPerMicrosecond,
                         300 * ticksPerMicrosecond,
                         5 * ticksPerMicrosecond, 2, 3);
    system.installFaults(std::move(plan));

    int samples = 0;
    system.fabric().addDeliveryObserver(
        [&samples](const Interconnect::Request &,
                   const Interconnect::DeliverySample &s) {
            ++samples;
            EXPECT_EQ(s.enqueued + s.queueDelay + s.serviceTime,
                      s.delivered);
            EXPECT_GE(s.start, s.enqueued);
            EXPECT_GT(s.serviceTime, 0u);
            EXPECT_GT(s.wireBytes, 0u);
        });

    auto &eq = system.eventQueue();
    for (int i = 0; i < 120; ++i) {
        const int src = static_cast<int>(rng.below(4));
        int dst = static_cast<int>(rng.below(3));
        if (dst >= src)
            ++dst;
        const std::uint64_t bytes = 1 + rng.below(256 * KiB);
        eq.schedule(rng.below(500) * ticksPerMicrosecond,
                    [&system, src, dst, bytes] {
                        sendNow(system, src, dst, bytes);
                    });
    }
    system.run();
    EXPECT_EQ(samples, 120);
}

TEST_P(CongestionFuzz, ExactlyOnceUnderFlappingAndCongestion)
{
    // MTTR/MTBF link flapping overlapping bursty background traffic:
    // whatever the derived stream draws, every chunk lands on every
    // peer exactly once and the run replays tick-for-tick.
    const std::uint64_t seed =
        deriveSeed(kCongestionCampaign, GetParam());

    auto run_once = [seed] {
        MultiGpuSystem system(pairwiseVolta());
        system.setFunctional(false);
        LinkHealthMonitor &mon = system.enableHealth();
        Rerouter &rr = system.enableReroute();

        LinkLifecycleOptions lifecycle;
        lifecycle.mtbf = 150 * ticksPerMicrosecond;
        lifecycle.mttr = 60 * ticksPerMicrosecond;
        lifecycle.horizon = 600 * ticksPerMicrosecond;
        lifecycle.downProbability = 0.5;
        system.installFaults(
            mtbfFaultPlan(seed, system.numGpus(), 2, lifecycle));

        StatSet stats;
        int deliveries = 0;
        Tick last = 0;
        TransferAgent::Context ctx;
        ctx.system = &system;
        ctx.gpuId = 0;
        ctx.config.mechanism = TransferMechanism::Polling;
        ctx.config.chunkBytes = 64 * KiB;
        ctx.config.transferThreads = 2048;
        ctx.config.retry = testRetry();
        ctx.config.retry.rerouteAfterAttempts = 2;
        ctx.stats = &stats;
        ctx.onDelivered = [&deliveries, &last,
                           &system](std::uint64_t) {
            ++deliveries;
            last = system.now();
        };
        PollingAgent agent(ctx);

        auto &eq = system.eventQueue();
        // Bursty background load (fire-and-forget, unacknowledged).
        Rng rng(deriveSeed(seed, 1u << 20));
        for (int i = 0; i < 40; ++i) {
            const int src = static_cast<int>(rng.below(4));
            int dst = static_cast<int>(rng.below(3));
            if (dst >= src)
                ++dst;
            const std::uint64_t bytes = 1 + rng.below(512 * KiB);
            eq.schedule(rng.below(700) * ticksPerMicrosecond,
                        [&system, src, dst, bytes] {
                            sendNow(system, src, dst, bytes);
                        });
        }
        // The measured, acknowledged flow.
        const int chunks = 8;
        for (int c = 0; c < chunks; ++c) {
            eq.schedule(
                static_cast<Tick>(c) * 60 * ticksPerMicrosecond,
                [&agent, c] { agent.chunkReady(c, 64 * KiB); });
        }
        system.run();

        EXPECT_EQ(deliveries, chunks * (system.numGpus() - 1))
            << "case " << seed;
        // Push mode: no per-send epoch reads, ever.
        EXPECT_EQ(rr.stats().get("reroute.epoch_reads"), 0.0);

        return std::make_tuple(
            last, deliveries, stats.get("transfers.retried"),
            stats.get("fallback.activations"),
            rr.stats().get("reroute.detours")
                + rr.stats().get("reroute.splits"),
            rr.stats().get("reroute.push_invalidations"),
            mon.stats().get("health.transitions"),
            mon.stats().get("health.wire_transitions"),
            mon.stats().get("health.to_congested"));
    };

    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a, b) << "case " << GetParam()
                    << " did not replay deterministically";
}

INSTANTIATE_TEST_SUITE_P(Cases, CongestionFuzz,
                         ::testing::Range<std::uint64_t>(0u, 8u));

namespace {

/**
 * Fixed-state provider for routing unit tests: every link HEALTHY
 * except an explicit list, with per-link queue ratios.
 */
class ScriptedLinkState : public LinkStateProvider
{
  public:
    void set(int src, int dst, LinkState state, double queue_ratio = 0.0)
    {
        _states[key(src, dst)] = state;
        _ratios[key(src, dst)] = queue_ratio;
    }

    LinkState linkState(int src, int dst) const override
    {
        const auto it = _states.find(key(src, dst));
        return it == _states.end() ? LinkState::Healthy : it->second;
    }

    double residualFraction(int src, int dst) const override
    {
        return linkState(src, dst) == LinkState::Down ? 0.0 : 1.0;
    }

    double queueRatio(int src, int dst) const override
    {
        const auto it = _ratios.find(key(src, dst));
        return it == _ratios.end() ? 0.0 : it->second;
    }

  private:
    static long key(int src, int dst) { return 1000L * src + dst; }
    std::map<long, LinkState> _states;
    std::map<long, double> _ratios;
};

/** Fraction carried via relay @p via in @p plan (0 if absent). */
double
relayFraction(const std::vector<Rerouter::Leg> &plan, int via)
{
    for (const auto &leg : plan)
        if (!leg.direct() && leg.via() == via)
            return leg.fraction;
    return 0.0;
}

} // namespace

TEST(QueueWeightedReroute, FlatPenaltyTreatsAllBacklogsAlike)
{
    // Direct 0->1 is DOWN on a 4-GPU fabric; relays 2 and 3 are both
    // CONGESTED on their first hop but with very different backlogs.
    EventQueue eq;
    FabricSpec spec = sharedVolta().fabric;
    Interconnect fabric(eq, spec, 4);
    ScriptedLinkState health;
    health.set(0, 1, LinkState::Down);
    health.set(0, 2, LinkState::Congested, 1.0);
    health.set(0, 3, LinkState::Congested, 4.0);

    ReroutePolicy flat;
    flat.queueWeightedCongestion = false;
    Rerouter rr(eq, fabric, health, flat);
    const auto &plan = rr.plan(0, 1);
    ASSERT_EQ(plan.size(), 2u);
    // The flat congestedPenalty cannot tell a barely-congested relay
    // from a drowning one: both get the same share.
    EXPECT_DOUBLE_EQ(relayFraction(plan, 2), relayFraction(plan, 3));
}

TEST(QueueWeightedReroute, QueueWeightShedsLoadFromDeepBacklogs)
{
    EventQueue eq;
    FabricSpec spec = sharedVolta().fabric;
    Interconnect fabric(eq, spec, 4);
    ScriptedLinkState health;
    health.set(0, 1, LinkState::Down);
    health.set(0, 2, LinkState::Congested, 1.0);
    health.set(0, 3, LinkState::Congested, 4.0);

    ReroutePolicy weighted;
    weighted.queueWeightedCongestion = true;
    Rerouter rr(eq, fabric, health, weighted);
    const auto &plan = rr.plan(0, 1);
    ASSERT_EQ(plan.size(), 2u);
    const double quiet = relayFraction(plan, 2);
    const double deep = relayFraction(plan, 3);
    // Scores divide by (1 + queueRatio): relay 2 weighs 1/2, relay 3
    // weighs 1/5, so the split is 5:2 toward the shallower queue.
    EXPECT_GT(quiet, deep);
    EXPECT_NEAR(quiet / deep, 2.5, 1e-9);
    EXPECT_NEAR(quiet + deep, 1.0, 1e-9);
}
