/**
 * @file
 * Unit tests for the compile-time profiler (paper Sec. III-A).
 */

#include "proact/profiler.hh"
#include "proact/runtime.hh"
#include "tests/toy_workload.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;
using proact::test::ToyWorkload;

namespace {

Profiler::Options
tinyOptions()
{
    Profiler::Options options;
    options.chunkSizes = {16 * KiB, 64 * KiB, 1 * MiB};
    options.threadCounts = {256, 2048};
    options.profileIterations = 1;
    return options;
}

} // namespace

TEST(Profiler, SweepCoversFullGrid)
{
    ToyWorkload workload;
    workload.setup(4);
    Profiler profiler(voltaPlatform(), tinyOptions());
    const ProfileResult result = profiler.profile(workload);
    // 2 mechanisms x 3 chunk sizes x 2 thread counts.
    EXPECT_EQ(result.entries.size(), 12u);
    EXPECT_GT(result.inlineTicks, 0u);
}

TEST(Profiler, BestIsMinimumOverSweep)
{
    ToyWorkload workload;
    workload.setup(4);
    Profiler profiler(voltaPlatform(), tinyOptions());
    const ProfileResult result = profiler.profile(workload);
    for (const auto &entry : result.entries)
        EXPECT_LE(result.bestTicks, entry.ticks);
    EXPECT_LE(result.bestTicks, result.inlineTicks);
    EXPECT_EQ(result.bestDecoupled().ticks,
              [&] {
                  Tick best = ~Tick(0);
                  for (const auto &e : result.entries)
                      best = std::min(best, e.ticks);
                  return best;
              }());
}

TEST(Profiler, MeasureMatchesDirectRun)
{
    ToyWorkload workload;
    workload.setup(4);
    Profiler profiler(voltaPlatform(), tinyOptions());
    TransferConfig config;
    config.mechanism = TransferMechanism::Polling;
    config.chunkBytes = 64 * KiB;
    config.transferThreads = 2048;
    const Tick measured = profiler.measure(workload, config);

    MultiGpuSystem system(voltaPlatform());
    system.setFunctional(false);
    ProactRuntime::Options options;
    options.config = config;
    options.maxIterations = 1;
    ProactRuntime runtime(system, options);
    EXPECT_EQ(measured, runtime.run(workload));
}

TEST(Profiler, TimingOnlyLeavesFunctionalStateUntouched)
{
    ToyWorkload workload;
    workload.setup(4);
    Profiler profiler(voltaPlatform(), tinyOptions());
    profiler.profile(workload);
    // No functional writes happened: verify() must FAIL (data still
    // zero), proving the sweep did not corrupt workload state.
    EXPECT_FALSE(workload.verify());
}

TEST(Profiler, ChunkCountGuardSkipsPathologicalConfigs)
{
    ToyWorkload::Params params;
    params.partitionBytes = 8 * MiB;
    ToyWorkload workload(params);
    workload.setup(4);

    auto options = tinyOptions();
    options.chunkSizes = {4 * KiB, 1 * MiB};
    options.maxChunksPerGpu = 256; // Excludes the 4 kB point.
    Profiler profiler(voltaPlatform(), options);
    const ProfileResult result = profiler.profile(workload);
    EXPECT_EQ(result.entries.size(), 4u); // 2 mech x 1 chunk x 2 thr.
    for (const auto &entry : result.entries)
        EXPECT_EQ(entry.config.chunkBytes, 1 * MiB);
}

TEST(Profiler, RejectsGpuCountMismatch)
{
    ToyWorkload workload;
    workload.setup(2);
    Profiler profiler(voltaPlatform(), tinyOptions());
    EXPECT_THROW(profiler.profile(workload), FatalError);
}

TEST(Profiler, InlineCanWinForDenseTraffic)
{
    // Dense 256B stores with tiny transfer volume: inline avoids all
    // tracking overhead and should beat decoupled.
    ToyWorkload::Params params;
    params.partitionBytes = 64 * KiB;
    params.ctaLocalBytes = 1 * MiB; // Compute-heavy.
    params.inlineStoreBytes = 256;
    ToyWorkload workload(params);
    workload.setup(4);

    Profiler profiler(voltaPlatform(), tinyOptions());
    const ProfileResult result = profiler.profile(workload);
    EXPECT_EQ(result.best.mechanism, TransferMechanism::Inline);
}

TEST(Profiler, DecoupledWinsForScatteredTraffic)
{
    // 4B effective stores and communication-heavy shape: inline's
    // wire blowup must lose to the decoupled agents.
    ToyWorkload::Params params;
    params.partitionBytes = 8 * MiB;
    params.ctaLocalBytes = 16 * KiB;
    params.inlineStoreBytes = 4;
    ToyWorkload workload(params);
    workload.setup(4);

    Profiler profiler(voltaPlatform(), tinyOptions());
    const ProfileResult result = profiler.profile(workload);
    EXPECT_TRUE(result.best.decoupled());
    EXPECT_LT(result.bestTicks, result.inlineTicks);
}

TEST(Profiler, ConfigRendering)
{
    TransferConfig inline_cfg;
    inline_cfg.mechanism = TransferMechanism::Inline;
    EXPECT_EQ(inline_cfg.toString(), "I");

    TransferConfig decoupled;
    decoupled.mechanism = TransferMechanism::Polling;
    decoupled.chunkBytes = 128 * KiB;
    decoupled.transferThreads = 2048;
    EXPECT_EQ(decoupled.toString(), "D 128kB 2048 Poll");

    decoupled.mechanism = TransferMechanism::Cdp;
    decoupled.chunkBytes = 1 * MiB;
    EXPECT_EQ(decoupled.toString(), "D 1MB 2048 CDP");
}

TEST(Profiler, SweepRangesMatchPaper)
{
    const auto chunks = chunkSizeSweep();
    EXPECT_EQ(chunks.front(), 4 * KiB);
    EXPECT_EQ(chunks.back(), 16 * MiB);
    const auto threads = threadCountSweep();
    EXPECT_EQ(threads.front(), 32u);
    EXPECT_EQ(threads.back(), 8192u);
}
