/**
 * @file
 * Unit and property tests for the protocol packetization model
 * (paper Figure 2).
 */

#include "interconnect/packet_model.hh"

#include <gtest/gtest.h>

using namespace proact;

TEST(PacketModel, PaperFigure2AnchorPoints)
{
    const PacketModel pcie = packetModelFor(Protocol::PCIe3);
    const PacketModel nvlink = packetModelFor(Protocol::NVLink1);

    // "transfer efficiency falls as low as 8% on NVLink and 14% on
    // PCIe for 4-byte stores" (paper Sec. II-C).
    EXPECT_NEAR(pcie.efficiency(4), 0.14, 0.01);
    EXPECT_NEAR(nvlink.efficiency(4), 0.08, 0.005);

    // "high efficiency for transfers with greater than 128 bytes".
    EXPECT_GT(pcie.efficiency(256), 0.85);
    EXPECT_GT(nvlink.efficiency(256), 0.85);
}

TEST(PacketModel, NvlinkGenerationsShareFraming)
{
    const PacketModel a = packetModelFor(Protocol::NVLink1);
    const PacketModel b = packetModelFor(Protocol::NVLink2);
    const PacketModel c = packetModelFor(Protocol::NVSwitch);
    EXPECT_EQ(a.headerBytes, b.headerBytes);
    EXPECT_EQ(b.headerBytes, c.headerBytes);
    EXPECT_EQ(a.wordBytes, c.wordBytes);
}

TEST(PacketModel, PayloadPaddedToWord)
{
    const PacketModel nvlink = packetModelFor(Protocol::NVLink1);
    // 1-byte payload pads to a full 16B flit plus 32B header.
    EXPECT_EQ(nvlink.packetWireBytes(1), 48u);
    EXPECT_EQ(nvlink.packetWireBytes(16), 48u);
    EXPECT_EQ(nvlink.packetWireBytes(17), 64u);
    EXPECT_EQ(nvlink.packetWireBytes(0), 0u);
}

TEST(PacketModel, WireBytesSplitsAtMaxPayload)
{
    const PacketModel nvlink = packetModelFor(Protocol::NVLink1);
    // 512B at 256B granularity = 2 packets of 256+32.
    EXPECT_EQ(nvlink.wireBytes(512, 256), 2 * 288u);
    // Granularity above max payload clamps to max payload.
    EXPECT_EQ(nvlink.wireBytes(512, 4096), 2 * 288u);
}

TEST(PacketModel, ShortTailPacket)
{
    const PacketModel pcie = packetModelFor(Protocol::PCIe3);
    // 260B at 256B: one full packet (256+24) + one 4B packet (4+24).
    EXPECT_EQ(pcie.wireBytes(260, 256), 280u + 28u);
}

TEST(PacketModel, ZeroPayloadZeroWire)
{
    const PacketModel pcie = packetModelFor(Protocol::PCIe3);
    EXPECT_EQ(pcie.wireBytes(0, 256), 0u);
}

TEST(PacketModel, ZeroGranularityIsError)
{
    const PacketModel pcie = packetModelFor(Protocol::PCIe3);
    EXPECT_THROW(pcie.wireBytes(100, 0), std::logic_error);
    EXPECT_DOUBLE_EQ(pcie.efficiency(0), 0.0);
}

TEST(PacketModel, ProtocolNames)
{
    EXPECT_EQ(protocolName(Protocol::PCIe3), "PCIe3");
    EXPECT_EQ(protocolName(Protocol::NVLink1), "NVLink");
    EXPECT_EQ(protocolName(Protocol::NVLink2), "NVLink2");
    EXPECT_EQ(protocolName(Protocol::NVSwitch), "NVSwitch");
}

/** Property sweep over protocols and granularities. */
class PacketModelProperty
    : public ::testing::TestWithParam<Protocol>
{
};

TEST_P(PacketModelProperty, EfficiencyMonotoneUpToMaxPayload)
{
    const PacketModel m = packetModelFor(GetParam());
    double prev = 0.0;
    for (std::uint32_t s = m.wordBytes; s <= m.maxPayloadBytes;
         s *= 2) {
        const double e = m.efficiency(s);
        EXPECT_GE(e, prev) << "granularity " << s;
        EXPECT_GT(e, 0.0);
        EXPECT_LT(e, 1.0);
        prev = e;
    }
    // Beyond max payload the efficiency saturates.
    EXPECT_DOUBLE_EQ(m.efficiency(m.maxPayloadBytes * 4), prev);
}

TEST_P(PacketModelProperty, WireAtLeastPayload)
{
    const PacketModel m = packetModelFor(GetParam());
    for (std::uint64_t payload : {1ull, 100ull, 4096ull, 1000000ull}) {
        for (std::uint32_t g : {1u, 4u, 64u, 256u}) {
            EXPECT_GE(m.wireBytes(payload, g), payload);
        }
    }
}

TEST_P(PacketModelProperty, CoarserGranularityNeverCostsMoreWire)
{
    const PacketModel m = packetModelFor(GetParam());
    const std::uint64_t payload = 1 << 20;
    std::uint64_t prev_wire = ~std::uint64_t(0);
    for (std::uint32_t g = 4; g <= m.maxPayloadBytes; g *= 2) {
        const std::uint64_t wire = m.wireBytes(payload, g);
        EXPECT_LE(wire, prev_wire) << "granularity " << g;
        prev_wire = wire;
    }
}

TEST_P(PacketModelProperty, EfficiencyConsistentWithWireBytes)
{
    const PacketModel m = packetModelFor(GetParam());
    // For payloads that are exact multiples of the granularity,
    // payload/wire == efficiency(granularity).
    for (std::uint32_t g : {4u, 16u, 64u, 256u}) {
        const std::uint64_t payload = std::uint64_t(g) * 1000;
        const double ratio = static_cast<double>(payload)
            / static_cast<double>(m.wireBytes(payload, g));
        EXPECT_NEAR(ratio, m.efficiency(g), 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PacketModelProperty,
                         ::testing::Values(Protocol::PCIe3,
                                           Protocol::NVLink1,
                                           Protocol::NVLink2,
                                           Protocol::NVSwitch),
                         [](const auto &info) {
                             return protocolName(info.param);
                         });
