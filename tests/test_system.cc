/**
 * @file
 * Unit tests for platform presets, the host model and system wiring.
 */

#include "system/multi_gpu_system.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;

TEST(Platform, TableOnePresets)
{
    const PlatformSpec kepler = keplerPlatform();
    EXPECT_EQ(kepler.numGpus, 4);
    EXPECT_EQ(kepler.gpu.arch, GpuArch::Kepler);
    EXPECT_EQ(kepler.fabric.protocol, Protocol::PCIe3);

    const PlatformSpec pascal = pascalPlatform();
    EXPECT_EQ(pascal.fabric.protocol, Protocol::NVLink1);

    const PlatformSpec volta = voltaPlatform();
    EXPECT_EQ(volta.fabric.protocol, Protocol::NVLink2);
    EXPECT_EQ(volta.gpu.memCapacity, 16 * GiB);

    const PlatformSpec dgx2 = dgx2Platform();
    EXPECT_EQ(dgx2.numGpus, 16);
    EXPECT_EQ(dgx2.fabric.protocol, Protocol::NVSwitch);
    EXPECT_EQ(dgx2.gpu.memCapacity, 32 * GiB);
}

TEST(Platform, PlatformLists)
{
    EXPECT_EQ(quadPlatforms().size(), 3u);
    EXPECT_EQ(allPlatforms().size(), 4u);
}

TEST(Platform, WithGpuCount)
{
    const PlatformSpec p = dgx2Platform().withGpuCount(8);
    EXPECT_EQ(p.numGpus, 8);
    EXPECT_EQ(p.name, "8x Volta");
    EXPECT_EQ(p.gpu.name, dgx2Platform().gpu.name);
}

TEST(Host, SerializesApiCalls)
{
    EventQueue eq;
    Host host(eq, 2 * ticksPerMicrosecond);
    const Tick t1 = host.issue();
    const Tick t2 = host.issue();
    const Tick t3 = host.issue(10 * ticksPerMicrosecond);
    EXPECT_EQ(t1, 2 * ticksPerMicrosecond);
    EXPECT_EQ(t2, 4 * ticksPerMicrosecond);
    EXPECT_EQ(t3, 16 * ticksPerMicrosecond);
}

TEST(Host, CatchesUpWithSimulatedTime)
{
    EventQueue eq;
    Host host(eq);
    host.issue();
    eq.schedule(1000 * ticksPerMicrosecond, [] {});
    eq.run();
    const Tick t = host.issue();
    EXPECT_GE(t, 1000 * ticksPerMicrosecond);
}

TEST(MultiGpuSystem, WiresComponentsPerPlatform)
{
    MultiGpuSystem system(voltaPlatform());
    EXPECT_EQ(system.numGpus(), 4);
    for (int g = 0; g < 4; ++g) {
        EXPECT_EQ(system.gpu(g).id(), g);
        EXPECT_EQ(system.gpu(g).spec().arch, GpuArch::Volta);
    }
    EXPECT_EQ(system.fabric().numGpus(), 4);
    EXPECT_EQ(system.fabric().spec().protocol, Protocol::NVLink2);
    EXPECT_THROW(system.gpu(4), std::out_of_range);
}

TEST(MultiGpuSystem, RejectsEmptySystem)
{
    EXPECT_THROW(MultiGpuSystem(voltaPlatform().withGpuCount(0)),
                 FatalError);
}

TEST(MultiGpuSystem, SetFunctionalReachesAllGpus)
{
    MultiGpuSystem system(voltaPlatform());
    system.setFunctional(false);
    for (int g = 0; g < 4; ++g)
        EXPECT_FALSE(system.gpu(g).functional());
    system.setFunctional(true);
    for (int g = 0; g < 4; ++g)
        EXPECT_TRUE(system.gpu(g).functional());
}
