/**
 * @file
 * Seeded-random fuzz tests of the readiness-tracking core: random
 * partition sizes, chunk granularities and CTA tilings must always
 * produce exact counter accounting, and random traffic on the fabric
 * must conserve bytes.
 */

#include "faults/fault_plan.hh"
#include "health/device_health.hh"
#include "interconnect/interconnect.hh"
#include "interconnect/rerouter.hh"
#include "proact/region.hh"
#include "proact/transfer_agent.hh"
#include "sim/random.hh"
#include "sim/sharded_engine.hh"
#include "system/platform.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <tuple>
#include <vector>

using namespace proact;

namespace {

/** Random contiguous tiling of [0, partition) into cta ranges. */
std::vector<ByteRange>
randomTiling(Rng &rng, std::uint64_t partition, int num_ctas)
{
    std::vector<std::uint64_t> cuts{0, partition};
    for (int i = 1; i < num_ctas; ++i)
        cuts.push_back(rng.below(partition + 1));
    std::sort(cuts.begin(), cuts.end());
    std::vector<ByteRange> ranges;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i)
        ranges.push_back(ByteRange{cuts[i], cuts[i + 1]});
    return ranges;
}

} // namespace

class TrackingFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TrackingFuzz, RandomTilingsAccountExactly)
{
    Rng rng(GetParam());
    for (int round = 0; round < 50; ++round) {
        const std::uint64_t partition = 1 + rng.below(1 << 20);
        const std::uint64_t chunk = 1 + rng.below(128 * KiB);
        const int num_ctas = 1 + static_cast<int>(rng.below(64));

        const auto ranges = randomTiling(rng, partition, num_ctas);
        RegionTracker tracker(partition, chunk);
        tracker.initCounters(
            static_cast<int>(ranges.size()),
            [&ranges](int cta) { return ranges[cta]; });

        // Deliver CTAs in a random order.
        std::vector<int> order(ranges.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = static_cast<int>(i);
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);

        std::vector<int> ready;
        std::uint64_t decrements = 0;
        std::uint64_t ready_bytes = 0;
        for (const int cta : order) {
            ready.clear();
            decrements += static_cast<std::uint64_t>(
                tracker.ctaArrived(ranges[cta], ready));
            for (const int c : ready)
                ready_bytes += tracker.chunkSize(c);
        }

        ASSERT_TRUE(tracker.allReady())
            << "seed " << GetParam() << " round " << round;
        ASSERT_EQ(decrements, tracker.decrementsPerIteration());
        ASSERT_EQ(ready_bytes, partition);
    }
}

TEST_P(TrackingFuzz, RandomFabricTrafficConservesBytes)
{
    Rng rng(GetParam() + 1000);
    EventQueue eq;
    Interconnect fabric(eq, nvlink2Fabric(), 4);

    std::uint64_t submitted = 0;
    long delivered_events = 0;
    std::uint64_t delivered_bytes = 0;
    const int transfers = 200;

    for (int i = 0; i < transfers; ++i) {
        Interconnect::Request req;
        req.src = static_cast<int>(rng.below(4));
        req.dst = static_cast<int>(rng.below(4));
        if (req.dst == req.src)
            req.dst = (req.dst + 1) % 4;
        req.bytes = 1 + rng.below(1 << 18);
        req.writeGranularity =
            static_cast<std::uint32_t>(1 + rng.below(512));
        req.threads = static_cast<std::uint32_t>(rng.below(4096));
        const std::uint64_t bytes = req.bytes;
        req.onComplete = [&, bytes] {
            ++delivered_events;
            delivered_bytes += bytes;
        };
        submitted += bytes;
        fabric.transfer(req);
    }
    eq.run();

    EXPECT_EQ(delivered_events, transfers);
    EXPECT_EQ(delivered_bytes, submitted);
    EXPECT_EQ(fabric.totalPayloadBytes(), submitted);
    EXPECT_GE(fabric.totalWireBytes(), submitted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackingFuzz,
                         ::testing::Values(1u, 42u, 20260706u));

/**
 * Seeded random fault campaigns on the full 16-GPU DGX-2 with the
 * whole adaptive stack armed: whatever combination of link deaths,
 * degradations and correlated plane events the generator draws, every
 * chunk must land on every peer exactly once — across retries,
 * multi-relay reroutes and reliable fallbacks — and the entire run
 * must replay tick-for-tick from the same seed.
 */
class Dgx2FaultFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    /**
     * Campaign seed. Each case re-derives its own independent stream
     * from (campaign, case index) instead of feeding the raw index to
     * the generator: consecutive integers make correlated SplitMix64
     * expansions, and growing the campaign must never perturb the
     * fault plans (and golden replays) of existing cases.
     */
    static constexpr std::uint64_t kCampaign = 0x64677832u;

    std::uint64_t caseSeed() const
    {
        return deriveSeed(kCampaign, GetParam());
    }
};

TEST_P(Dgx2FaultFuzz, ExactlyOnceDeliveryAndDeterministicReplay)
{
    auto run_once = [](std::uint64_t seed) {
        MultiGpuSystem system(dgx2Platform());
        system.setFunctional(false);
        system.enableHealth();
        Rerouter &rr = system.enableReroute();

        RandomFaultOptions options;
        options.numEvents = 6;
        options.planeProbability = 0.3;
        options.planeSize = 4;
        system.installFaults(
            randomFaultPlan(seed, system.numGpus(), options));

        StatSet stats;
        int deliveries = 0;
        Tick last = 0;
        TransferAgent::Context ctx;
        ctx.system = &system;
        ctx.gpuId = 0;
        ctx.config.mechanism = TransferMechanism::Polling;
        ctx.config.chunkBytes = 64 * KiB;
        ctx.config.transferThreads = 2048;
        ctx.config.retry.enabled = true;
        ctx.config.retry.maxAttempts = 6;
        ctx.config.retry.rerouteAfterAttempts = 2;
        ctx.stats = &stats;
        ctx.onDelivered = [&deliveries, &last,
                           &system](std::uint64_t) {
            ++deliveries;
            last = system.now();
        };
        PollingAgent agent(ctx);

        const int chunks = 6;
        auto &eq = system.eventQueue();
        for (int c = 0; c < chunks; ++c) {
            eq.schedule(
                static_cast<Tick>(c) * 40 * ticksPerMicrosecond,
                [&agent, c] { agent.chunkReady(c, 64 * KiB); });
        }
        system.run();

        // Exactly once: a lost chunk and a duplicated chunk both
        // break the equality.
        EXPECT_EQ(deliveries, chunks * (system.numGpus() - 1))
            << "seed " << seed;

        return std::make_tuple(
            last, deliveries, stats.get("transfers.retried"),
            stats.get("transfers.replanned"),
            stats.get("fallback.activations"),
            rr.stats().get("reroute.detours")
                + rr.stats().get("reroute.splits"),
            rr.stats().get("reroute.relay_hops"),
            system.health()->stats().get("health.transitions"));
    };

    const auto a = run_once(caseSeed());
    const auto b = run_once(caseSeed());
    EXPECT_EQ(a, b) << "case " << GetParam()
                    << " did not replay deterministically";
}

TEST_P(Dgx2FaultFuzz, MixedDeviceLossAndFlappingLeaveNoFlights)
{
    // Link flapping and a mid-run device death in one campaign: the
    // retry layer keeps working the flapping links while the watchdog
    // declares the victim LOST and the fabric quiesces it. Whatever
    // the seed draws, every tracked in-flight request must end the
    // run delivered, rebooked or quiesced — never leaked — and the
    // whole run must replay tick-for-tick.
    auto run_once = [](std::uint64_t seed) {
        MultiGpuSystem system(dgx2Platform());
        system.setFunctional(false);
        system.enableHealth();
        system.enableReroute();
        system.fabric().setRebooking(true);
        system.enableDeviceHealth({});

        LinkLifecycleOptions flaps;
        flaps.downProbability = 0.5;
        FaultPlan plan =
            mtbfFaultPlan(seed, system.numGpus(), 4, flaps);
        Rng rng(deriveSeed(seed, 0xdeadu));
        const int victim = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(system.numGpus())));
        const Tick death =
            (40 + rng.below(160)) * ticksPerMicrosecond;
        plan.downGpu(death, maxTick, victim);
        system.installFaults(std::move(plan));

        StatSet stats;
        int deliveries = 0;
        Tick last = 0;
        TransferAgent::Context ctx;
        ctx.system = &system;
        ctx.gpuId = 0;
        ctx.config.mechanism = TransferMechanism::Polling;
        ctx.config.chunkBytes = 64 * KiB;
        ctx.config.transferThreads = 2048;
        ctx.config.retry.enabled = true;
        ctx.config.retry.maxAttempts = 6;
        ctx.config.retry.rerouteAfterAttempts = 2;
        ctx.stats = &stats;
        ctx.onDelivered = [&deliveries, &last,
                           &system](std::uint64_t) {
            ++deliveries;
            last = system.now();
        };
        PollingAgent agent(ctx);

        const int chunks = 6;
        auto &eq = system.eventQueue();
        for (int c = 0; c < chunks; ++c) {
            eq.schedule(
                static_cast<Tick>(c) * 40 * ticksPerMicrosecond,
                [&agent, c] { agent.chunkReady(c, 64 * KiB); });
        }
        system.run();

        const Interconnect &fabric = system.fabric();

        // The death is unconditional and the horizon unbounded, so
        // the watchdog must have declared the victim by drain time.
        EXPECT_TRUE(system.anyDeviceLost()) << "seed " << seed;

        // No leaked flying requests: after the quiesce every tracked
        // flight was delivered, rebooked or explicitly aborted.
        EXPECT_EQ(fabric.numTrackedFlights(), 0u) << "seed " << seed;

        // A dead endpoint only loses traffic through the accounted
        // paths; survivors still deliver at most exactly-once.
        EXPECT_LE(deliveries, chunks * (system.numGpus() - 1))
            << "seed " << seed;

        return std::make_tuple(
            last, deliveries, stats.get("transfers.retried"),
            stats.get("transfers.orphaned"),
            fabric.refusedDeliveries(), fabric.quiescedFlights(),
            system.deviceHealth()->transitions().size());
    };

    const auto a = run_once(deriveSeed(caseSeed(), 1));
    const auto b = run_once(deriveSeed(caseSeed(), 1));
    EXPECT_EQ(a, b) << "case " << GetParam()
                    << " did not replay deterministically";
}

INSTANTIATE_TEST_SUITE_P(Cases, Dgx2FaultFuzz,
                         ::testing::Range<std::uint64_t>(0u, 24u));

/**
 * Seeded cross-shard fault fuzz: random pairwise topologies under the
 * sharded execution engine, with mixed device-loss and link-flap
 * campaigns. Every case must drain with zero leaked flights and zero
 * orphaned retries on every sender, and the full counter tuple must
 * be identical at 1, 2 and 4 shards — retries, reroute relays and the
 * device quiesce are exactly the paths that cross shards.
 */
class ShardedFaultFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    /** Fresh campaign constant: see Dgx2FaultFuzz::kCampaign. */
    static constexpr std::uint64_t kCampaign = 0x73686472u;

    std::uint64_t caseSeed() const
    {
        return deriveSeed(kCampaign, GetParam());
    }
};

TEST_P(ShardedFaultFuzz, CrossShardFaultsLeaveNoFlightsOrRetries)
{
    auto run_once = [](std::uint64_t seed, int shards) {
        // Random topology: 2..8 GPUs on a pairwise-links machine so
        // the sharded engine engages (shared ports degrade serial).
        Rng topo(deriveSeed(seed, 0x10b0u));
        const int gpus = 2 + static_cast<int>(topo.below(7));
        PlatformSpec platform = voltaPlatform().withGpuCount(gpus);
        platform.fabric.topology = FabricTopology::PairwiseLinks;

        MultiGpuSystem system(platform, shards);
        EXPECT_TRUE(system.sharded()) << shards << " shards";
        system.setFunctional(false);
        system.enableHealth();
        system.enableReroute();
        system.enableDeviceHealth({});

        LinkLifecycleOptions flaps;
        flaps.downProbability = 0.5;
        const int links = std::min(4, gpus * (gpus - 1));
        FaultPlan plan = mtbfFaultPlan(seed, gpus, links, flaps);
        Rng rng(deriveSeed(seed, 0xdeadu));
        const int victim = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(gpus)));
        const Tick death =
            (40 + rng.below(160)) * ticksPerMicrosecond;
        plan.downGpu(death, maxTick, victim);
        system.installFaults(std::move(plan));

        // Delivery callbacks fire on the destination's shard, so all
        // shared progress state is atomic; the last-delivery tick is
        // a max over completions (an N-invariant quantity, unlike
        // "the tick of whichever callback ran last").
        StatSet stats;
        std::atomic<int> deliveries{0};
        std::atomic<Tick> last{0};
        TransferAgent::Context ctx;
        ctx.system = &system;
        ctx.gpuId = 0;
        ctx.queue = &system.queueFor(0);
        ctx.config.mechanism = TransferMechanism::Polling;
        ctx.config.chunkBytes = 64 * KiB;
        ctx.config.transferThreads = 2048;
        ctx.config.retry.enabled = true;
        ctx.config.retry.maxAttempts = 6;
        ctx.config.retry.rerouteAfterAttempts = 2;
        ctx.stats = &stats;
        ctx.onDelivered = [&deliveries, &last](std::uint64_t) {
            deliveries.fetch_add(1, std::memory_order_relaxed);
            const Tick now =
                ShardedEventEngine::currentQueue()->curTick();
            Tick seen = last.load(std::memory_order_relaxed);
            while (seen < now &&
                   !last.compare_exchange_weak(
                       seen, now, std::memory_order_relaxed)) {
            }
        };
        PollingAgent agent(ctx);

        // Chained relay hops must be submitted from the relay's own
        // shard; the runtime installs these per-GPU forwarding
        // senders itself, a direct-system test has to follow suit.
        std::vector<StatSet> hop_stats(
            static_cast<std::size_t>(gpus));
        std::vector<std::unique_ptr<RetryingSender>> hop_senders;
        std::vector<Rerouter::Submit> submitters;
        for (int g = 0; g < gpus; ++g) {
            hop_senders.push_back(std::make_unique<RetryingSender>(
                system.queueFor(g), system.fabric(),
                ctx.config.retry,
                &hop_stats[static_cast<std::size_t>(g)], nullptr));
            RetryingSender *hs = hop_senders.back().get();
            submitters.push_back(
                [hs](const Interconnect::Request &leg) {
                    return hs->send(leg);
                });
        }
        system.rerouter()->setHopSubmitters(std::move(submitters));

        const int chunks = 6;
        auto &eq = system.queueFor(0);
        for (int c = 0; c < chunks; ++c) {
            eq.schedule(
                static_cast<Tick>(c) * 40 * ticksPerMicrosecond,
                [&agent, c] { agent.chunkReady(c, 64 * KiB); });
        }
        system.run();

        const Interconnect &fabric = system.fabric();

        // The death is unconditional, so the watchdog must have
        // declared the victim by drain time.
        EXPECT_TRUE(system.anyDeviceLost()) << "seed " << seed;

        // Zero leaked flights and zero orphaned retries: every
        // submission was delivered, refused, quiesced or given up —
        // and every sender's in-flight ledger returned to zero.
        EXPECT_EQ(fabric.numTrackedFlights(), 0u) << "seed " << seed;
        EXPECT_EQ(agent.sender().inFlight(), 0u) << "seed " << seed;
        for (int g = 0; g < gpus; ++g) {
            EXPECT_EQ(hop_senders[static_cast<std::size_t>(g)]
                          ->inFlight(),
                      0u)
                << "seed " << seed << " hop sender " << g;
        }

        // Survivors deliver at most exactly-once.
        EXPECT_LE(deliveries.load(), chunks * (gpus - 1))
            << "seed " << seed;

        double hop_retried = 0.0;
        double hop_orphaned = 0.0;
        for (const StatSet &hs : hop_stats) {
            hop_retried += hs.get("transfers.retried");
            hop_orphaned += hs.get("transfers.orphaned");
        }
        return std::make_tuple(
            gpus, victim, last.load(), deliveries.load(),
            stats.get("transfers.retried"),
            stats.get("transfers.orphaned"), hop_retried,
            hop_orphaned, fabric.refusedDeliveries(),
            fabric.quiescedFlights(),
            system.deviceHealth()->transitions().size());
    };

    // The 1-shard engine is the reference; higher shard counts and a
    // straight replay must reproduce its tuple exactly.
    const auto ref = run_once(caseSeed(), 1);
    EXPECT_EQ(ref, run_once(caseSeed(), 2))
        << "case " << GetParam() << " diverged at 2 shards";
    EXPECT_EQ(ref, run_once(caseSeed(), 4))
        << "case " << GetParam() << " diverged at 4 shards";
    EXPECT_EQ(ref, run_once(caseSeed(), 1))
        << "case " << GetParam()
        << " did not replay deterministically";
}

INSTANTIATE_TEST_SUITE_P(Cases, ShardedFaultFuzz,
                         ::testing::Range<std::uint64_t>(0u, 24u));
