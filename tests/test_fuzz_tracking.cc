/**
 * @file
 * Seeded-random fuzz tests of the readiness-tracking core: random
 * partition sizes, chunk granularities and CTA tilings must always
 * produce exact counter accounting, and random traffic on the fabric
 * must conserve bytes.
 */

#include "interconnect/interconnect.hh"
#include "proact/region.hh"
#include "sim/random.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace proact;

namespace {

/** Random contiguous tiling of [0, partition) into cta ranges. */
std::vector<ByteRange>
randomTiling(Rng &rng, std::uint64_t partition, int num_ctas)
{
    std::vector<std::uint64_t> cuts{0, partition};
    for (int i = 1; i < num_ctas; ++i)
        cuts.push_back(rng.below(partition + 1));
    std::sort(cuts.begin(), cuts.end());
    std::vector<ByteRange> ranges;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i)
        ranges.push_back(ByteRange{cuts[i], cuts[i + 1]});
    return ranges;
}

} // namespace

class TrackingFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TrackingFuzz, RandomTilingsAccountExactly)
{
    Rng rng(GetParam());
    for (int round = 0; round < 50; ++round) {
        const std::uint64_t partition = 1 + rng.below(1 << 20);
        const std::uint64_t chunk = 1 + rng.below(128 * KiB);
        const int num_ctas = 1 + static_cast<int>(rng.below(64));

        const auto ranges = randomTiling(rng, partition, num_ctas);
        RegionTracker tracker(partition, chunk);
        tracker.initCounters(
            static_cast<int>(ranges.size()),
            [&ranges](int cta) { return ranges[cta]; });

        // Deliver CTAs in a random order.
        std::vector<int> order(ranges.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = static_cast<int>(i);
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);

        std::vector<int> ready;
        std::uint64_t decrements = 0;
        std::uint64_t ready_bytes = 0;
        for (const int cta : order) {
            ready.clear();
            decrements += static_cast<std::uint64_t>(
                tracker.ctaArrived(ranges[cta], ready));
            for (const int c : ready)
                ready_bytes += tracker.chunkSize(c);
        }

        ASSERT_TRUE(tracker.allReady())
            << "seed " << GetParam() << " round " << round;
        ASSERT_EQ(decrements, tracker.decrementsPerIteration());
        ASSERT_EQ(ready_bytes, partition);
    }
}

TEST_P(TrackingFuzz, RandomFabricTrafficConservesBytes)
{
    Rng rng(GetParam() + 1000);
    EventQueue eq;
    Interconnect fabric(eq, nvlink2Fabric(), 4);

    std::uint64_t submitted = 0;
    long delivered_events = 0;
    std::uint64_t delivered_bytes = 0;
    const int transfers = 200;

    for (int i = 0; i < transfers; ++i) {
        Interconnect::Request req;
        req.src = static_cast<int>(rng.below(4));
        req.dst = static_cast<int>(rng.below(4));
        if (req.dst == req.src)
            req.dst = (req.dst + 1) % 4;
        req.bytes = 1 + rng.below(1 << 18);
        req.writeGranularity =
            static_cast<std::uint32_t>(1 + rng.below(512));
        req.threads = static_cast<std::uint32_t>(rng.below(4096));
        const std::uint64_t bytes = req.bytes;
        req.onComplete = [&, bytes] {
            ++delivered_events;
            delivered_bytes += bytes;
        };
        submitted += bytes;
        fabric.transfer(req);
    }
    eq.run();

    EXPECT_EQ(delivered_events, transfers);
    EXPECT_EQ(delivered_bytes, submitted);
    EXPECT_EQ(fabric.totalPayloadBytes(), submitted);
    EXPECT_GE(fabric.totalWireBytes(), submitted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackingFuzz,
                         ::testing::Values(1u, 42u, 20260706u));
