/**
 * @file
 * Unit tests for fabric specs and the interconnect transfer engine.
 */

#include "interconnect/interconnect.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;

namespace {

Interconnect::Request
request(int src, int dst, std::uint64_t bytes,
        std::uint32_t gran = 256, std::uint32_t threads = 0)
{
    Interconnect::Request req;
    req.src = src;
    req.dst = dst;
    req.bytes = bytes;
    req.writeGranularity = gran;
    req.threads = threads;
    return req;
}

} // namespace

TEST(FabricSpec, TableOneBandwidths)
{
    EXPECT_DOUBLE_EQ(pcie3Fabric().perGpuBidirBandwidth, 16.0e9);
    EXPECT_DOUBLE_EQ(nvlink1Fabric().perGpuBidirBandwidth, 150.0e9);
    EXPECT_DOUBLE_EQ(nvlink2Fabric().perGpuBidirBandwidth, 300.0e9);
    EXPECT_DOUBLE_EQ(nvswitchFabric().perGpuBidirBandwidth, 300.0e9);
}

TEST(FabricSpec, EgressIsHalfBidirectional)
{
    const FabricSpec f = nvlink2Fabric();
    EXPECT_DOUBLE_EQ(f.egressRate(), 150.0e9);
    EXPECT_DOUBLE_EQ(f.ingressRate(), 150.0e9);
}

TEST(FabricSpec, OnlyPcieHasTreeCore)
{
    EXPECT_GT(pcie3Fabric().coreBandwidth, 0.0);
    EXPECT_DOUBLE_EQ(nvlink1Fabric().coreBandwidth, 0.0);
    EXPECT_DOUBLE_EQ(nvswitchFabric().coreBandwidth, 0.0);
}

TEST(FabricSpec, FabricForMatchesFactories)
{
    EXPECT_EQ(fabricFor(Protocol::PCIe3).name, pcie3Fabric().name);
    EXPECT_EQ(fabricFor(Protocol::NVSwitch).name,
              nvswitchFabric().name);
}

TEST(Interconnect, RejectsBadEndpoints)
{
    EventQueue eq;
    Interconnect fab(eq, nvlink2Fabric(), 4);
    EXPECT_THROW(fab.transfer(request(0, 4, 100)), FatalError);
    EXPECT_THROW(fab.transfer(request(-1, 0, 100)), FatalError);
    EXPECT_THROW(fab.transfer(request(2, 2, 100)), FatalError);
    EXPECT_THROW(fab.transfer(request(0, 1, 100, 0)), FatalError);
    EXPECT_THROW(Interconnect(eq, nvlink2Fabric(), 0), FatalError);
}

TEST(Interconnect, ZeroByteTransferCompletesImmediately)
{
    EventQueue eq;
    Interconnect fab(eq, nvlink2Fabric(), 2);
    bool done = false;
    auto req = request(0, 1, 0);
    req.onComplete = [&] { done = true; };
    const Tick t = fab.transfer(req);
    EXPECT_EQ(t, 0u);
    eq.run();
    EXPECT_TRUE(done);
}

TEST(Interconnect, DeliveryIncludesFabricLatency)
{
    EventQueue eq;
    const FabricSpec spec = nvlink2Fabric();
    Interconnect fab(eq, spec, 2);
    const Tick t = fab.transfer(request(0, 1, 256, 256));
    // One 288B packet at 150 GB/s on egress and ingress (cut
    // through), plus spec latency.
    const Tick wire_time = transferTicks(288, spec.egressRate());
    EXPECT_EQ(t, wire_time + spec.latency);
}

TEST(Interconnect, ThreadCapLimitsBandwidth)
{
    EventQueue eq;
    const FabricSpec spec = nvlink2Fabric();
    Interconnect fab(eq, spec, 2);

    // Few threads -> proportionally slower than the full rate.
    const Tick slow = fab.transfer(request(0, 1, 1 << 20, 256, 32));

    EventQueue eq2;
    Interconnect fab2(eq2, spec, 2);
    const Tick fast = fab2.transfer(request(0, 1, 1 << 20, 256, 0));
    EXPECT_GT(slow, fast);

    // Saturating thread count matches the engine rate.
    EventQueue eq3;
    Interconnect fab3(eq3, spec, 2);
    const Tick sat = fab3.transfer(
        request(0, 1, 1 << 20, 256, spec.saturationThreads));
    EXPECT_EQ(sat, fast);
}

TEST(Interconnect, EffectiveEgressRateModel)
{
    EventQueue eq;
    const FabricSpec spec = nvlink2Fabric();
    Interconnect fab(eq, spec, 2);
    EXPECT_DOUBLE_EQ(fab.effectiveEgressRate(0), spec.egressRate());
    EXPECT_DOUBLE_EQ(
        fab.effectiveEgressRate(spec.saturationThreads),
        spec.egressRate());
    EXPECT_NEAR(fab.effectiveEgressRate(spec.saturationThreads / 2),
                spec.egressRate() / 2, 1.0);
}

TEST(Interconnect, EgressSerializesSameSourceTransfers)
{
    EventQueue eq;
    Interconnect fab(eq, nvlink2Fabric(), 3);
    const Tick t1 = fab.transfer(request(0, 1, 1 << 20));
    const Tick t2 = fab.transfer(request(0, 2, 1 << 20));
    EXPECT_GT(t2, t1);
}

TEST(Interconnect, DistinctSourcesProceedInParallel)
{
    EventQueue eq;
    Interconnect fab(eq, nvlink2Fabric(), 4);
    const Tick t1 = fab.transfer(request(0, 1, 1 << 20));
    const Tick t2 = fab.transfer(request(2, 3, 1 << 20));
    EXPECT_EQ(t1, t2);
}

TEST(Interconnect, SharedCoreConstrainsAllToAll)
{
    EventQueue eq;
    const FabricSpec pcie = pcie3Fabric();
    Interconnect fab(eq, pcie, 4);
    // Four simultaneous disjoint transfers share the 32 GB/s core,
    // which is equal to 4 x 8 GB/s egress, so it just keeps pace;
    // totals on the core must equal the sum of all wire bytes.
    for (int g = 0; g < 4; ++g)
        fab.transfer(request(g, (g + 1) % 4, 1 << 20));
    eq.run();
    EXPECT_TRUE(fab.hasCore());
    EXPECT_EQ(fab.core().payloadBytes(), 4u << 20);
}

TEST(Interconnect, StoreTransactionAccounting)
{
    EventQueue eq;
    Interconnect fab(eq, nvlink2Fabric(), 2);
    // 1024B at 256B granularity = 4 packets.
    fab.transfer(request(0, 1, 1024, 256));
    EXPECT_EQ(fab.storeTransactions(0), 4u);
    // 1024B at 8B granularity = 128 packets.
    fab.transfer(request(0, 1, 1024, 8));
    EXPECT_EQ(fab.storeTransactions(0), 132u);
    EXPECT_EQ(fab.totalStoreTransactions(), 132u);
    EXPECT_EQ(fab.storeTransactions(1), 0u);
}

TEST(Interconnect, PayloadAndWireTotals)
{
    EventQueue eq;
    Interconnect fab(eq, nvlink2Fabric(), 2);
    fab.transfer(request(0, 1, 1024, 256));
    eq.run();
    EXPECT_EQ(fab.totalPayloadBytes(), 1024u);
    EXPECT_EQ(fab.totalWireBytes(), 4 * 288u);
    EXPECT_EQ(fab.writeSizes().samples(), 4u);

    fab.resetStats();
    EXPECT_EQ(fab.totalPayloadBytes(), 0u);
    EXPECT_EQ(fab.totalStoreTransactions(), 0u);
    EXPECT_EQ(fab.writeSizes().samples(), 0u);
}

TEST(Interconnect, NotBeforeDefersEntry)
{
    EventQueue eq;
    const FabricSpec spec = nvlink2Fabric();
    Interconnect fab(eq, spec, 2);
    auto req = request(0, 1, 256, 256);
    req.notBefore = 1000000;
    const Tick t = fab.transfer(req);
    EXPECT_GE(t, req.notBefore + spec.latency);
}

TEST(Interconnect, FineGranularityCostsMoreWireTime)
{
    EventQueue eq;
    Interconnect fab(eq, nvlink1Fabric(), 2);
    const Tick coarse = fab.transfer(request(0, 1, 1 << 20, 256));

    EventQueue eq2;
    Interconnect fab2(eq2, nvlink1Fabric(), 2);
    const Tick fine = fab2.transfer(request(0, 1, 1 << 20, 4));

    // 4B NVLink efficiency is 12x worse than 256B.
    EXPECT_GT(fine, 8 * coarse);
}

TEST(Interconnect, ObserverListAllFireAndRemoveByHandle)
{
    EventQueue eq;
    Interconnect fab(eq, nvlink2Fabric(), 2);
    int first = 0;
    int second = 0;
    const auto h1 = fab.addDeliveryObserver(
        [&](const Interconnect::Request &,
            const Interconnect::DeliverySample &) { ++first; });
    const auto h2 = fab.addDeliveryObserver(
        [&](const Interconnect::Request &,
            const Interconnect::DeliverySample &) { ++second; });
    EXPECT_NE(h1, h2);
    EXPECT_EQ(fab.numDeliveryObservers(), 2u);

    fab.transfer(request(0, 1, 1024));
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 1);

    fab.removeDeliveryObserver(h1);
    EXPECT_EQ(fab.numDeliveryObservers(), 1u);
    fab.transfer(request(0, 1, 1024));
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 2);

    // Removing an unknown/stale handle is a harmless no-op.
    fab.removeDeliveryObserver(h1);
    fab.removeDeliveryObserver(12345u);
    EXPECT_EQ(fab.numDeliveryObservers(), 1u);
}

TEST(Interconnect, ObserverMayRemoveItselfMidDispatch)
{
    EventQueue eq;
    Interconnect fab(eq, nvlink2Fabric(), 2);
    int one_shot = 0;
    int steady = 0;
    Interconnect::ObserverHandle self = 0;
    self = fab.addDeliveryObserver(
        [&](const Interconnect::Request &,
            const Interconnect::DeliverySample &) {
            ++one_shot;
            fab.removeDeliveryObserver(self);
        });
    fab.addDeliveryObserver(
        [&](const Interconnect::Request &,
            const Interconnect::DeliverySample &) { ++steady; });

    fab.transfer(request(0, 1, 1024));
    fab.transfer(request(0, 1, 1024));
    EXPECT_EQ(one_shot, 1);
    EXPECT_EQ(steady, 2);
    EXPECT_EQ(fab.numDeliveryObservers(), 1u);
}
