/**
 * @file
 * End-to-end determinism: identical seeds and configurations must
 * produce identical simulated times and identical numerical results
 * across repeated runs, for every application and paradigm. The
 * profiler's brute-force search depends on this (noise-free
 * comparisons between configurations).
 */

#include "harness/paradigm.hh"
#include "tests/small_workloads.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;
using namespace proact::test;

namespace {

struct RunOutcome
{
    Tick ticks;
    std::uint64_t wireBytes;
};

RunOutcome
runOnce(const std::string &app, Paradigm paradigm)
{
    auto workload = makeSmallWorkload(app);
    workload->setup(4);
    MultiGpuSystem system(voltaPlatform());
    system.setFunctional(false);
    TransferConfig config;
    config.mechanism = TransferMechanism::Polling;
    config.chunkBytes = 64 * KiB;
    config.transferThreads = 2048;
    const Tick t = makeRuntime(paradigm, system, config)
                       ->run(*workload);
    return RunOutcome{t, system.fabric().totalWireBytes()};
}

} // namespace

class DeterminismSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, Paradigm>>
{
};

TEST_P(DeterminismSweep, RepeatedRunsAreIdentical)
{
    const auto &[app, paradigm] = GetParam();
    const RunOutcome a = runOnce(app, paradigm);
    const RunOutcome b = runOnce(app, paradigm);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
}

INSTANTIATE_TEST_SUITE_P(
    AppsByParadigm, DeterminismSweep,
    ::testing::Combine(
        ::testing::Values("Jacobi", "Pagerank", "ALS"),
        ::testing::Values(Paradigm::CudaMemcpy,
                          Paradigm::UnifiedMemory,
                          Paradigm::ProactInline,
                          Paradigm::ProactDecoupled)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) + "_"
            + paradigmName(std::get<1>(info.param));
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(Determinism, FaultedRunsAreSeedStable)
{
    // A seeded fault plan is part of the configuration: repeated runs
    // replay every drop and degradation identically, so simulated
    // time, wire traffic and retry counts all match.
    auto run_once = [] {
        auto workload = makeSmallWorkload("Pagerank");
        workload->setup(4);
        MultiGpuSystem system(voltaPlatform());
        system.setFunctional(false);

        FaultPlan plan;
        plan.seed = 99;
        plan.dropDeliveries(0, maxTick, 0.02);
        plan.degradeLink(ticksPerMillisecond, 3 * ticksPerMillisecond,
                         0.5);
        system.installFaults(std::move(plan));

        TransferConfig config;
        config.mechanism = TransferMechanism::Polling;
        config.chunkBytes = 64 * KiB;
        config.transferThreads = 2048;
        config.retry.enabled = true;

        const Tick t = makeRuntime(Paradigm::ProactDecoupled, system,
                                   config)
                           ->run(*workload);
        return std::tuple<Tick, std::uint64_t, double>(
            t, system.fabric().totalWireBytes(),
            system.faults()->stats().get("faults.dropped"));
    };

    const auto a = run_once();
    const auto b = run_once();
    EXPECT_GT(std::get<2>(a), 0.0);
    EXPECT_EQ(a, b);
}

TEST(Determinism, FunctionalResultsAreSeedStable)
{
    // Two functional runs from identical seeds produce bitwise-equal
    // solutions (SSSP verifies against its serial reference, which
    // pins both runs to the same answer).
    for (int repeat = 0; repeat < 2; ++repeat) {
        auto workload = makeSmallWorkload("SSSP");
        workload->setup(4);
        MultiGpuSystem system(voltaPlatform());
        makeRuntime(Paradigm::InfiniteBw, system)->run(*workload);
        ASSERT_TRUE(workload->verify());
    }
}
