/**
 * @file
 * Multi-node fabric battery (`ctest -L multinode`).
 *
 * Gates the hierarchical N-node platform: topology invariants of the
 * two-tier fabric (per-tier link counts, bandwidth/latency symmetry,
 * builder validation), hierarchical-routing properties (healthy
 * cross-node pairs never detour through a third node, per-tier
 * packetization goodput is monotone in transfer size, the BFS
 * minimizes network-tier hops before edge count, and the tier-masked
 * plan cache lets cross-node link epochs invalidate independently of
 * intra-node ones), the cross-shard determinism gate at 2x16 and
 * 4x16 GPUs, and a 24-seed fault fuzz mixing inter-node link flaps
 * with device loss that must drain with zero leaked flights.
 */

#include "faults/fault_plan.hh"
#include "harness/session.hh"
#include "health/device_health.hh"
#include "health/link_health.hh"
#include "interconnect/interconnect.hh"
#include "interconnect/rerouter.hh"
#include "proact/transfer_agent.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/sharded_engine.hh"
#include "system/multi_gpu_system.hh"
#include "system/platform.hh"
#include "tests/small_workloads.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

using namespace proact;

namespace {

/** Drive a link into DOWN through the monitor's own hysteresis. */
void
killLink(LinkHealthMonitor &mon, int src, int dst)
{
    for (int i = 0; i < mon.policy().downAfterLosses; ++i)
        mon.recordLoss(src, dst);
    ASSERT_EQ(mon.linkState(src, dst), LinkState::Down);
}

/** Every ParadigmRun field (and the summary line) in one string. */
std::string
runDigest(const ParadigmRun &r)
{
    std::ostringstream os;
    os << "ticks=" << r.ticks << " wire=" << r.wireBytes
       << " payload=" << r.payloadBytes
       << " stores=" << r.storeTransactions
       << " dropped=" << r.faultsDropped << " retries=" << r.retries
       << " fallbacks=" << r.fallbacks
       << " transitions=" << r.linkTransitions << "/"
       << r.wireTransitions << " congested=" << r.congestionEvents
       << " reroutes=" << r.reroutes << " swaps=" << r.configSwaps
       << " aborted=" << r.aborted << " lost=" << r.lostGpu
       << " iters=" << r.completedIterations
       << " ckpt=" << r.checkpointIteration << "/" << r.checkpoints
       << "/" << r.checkpointTicks
       << " refused=" << r.refusedDeliveries
       << " quiesced=" << r.quiescedFlights
       << " orphaned=" << r.orphanedTransfers << " ["
       << r.faultSummary() << "]";
    return os.str();
}

Session::RunOptions
batteryOptions(int shards)
{
    Session::RunOptions options;
    options.functional = false;
    options.config.mechanism = TransferMechanism::Polling;
    options.config.chunkBytes = 64 * KiB;
    options.config.transferThreads = 2048;
    options.simShards = shards;
    return options;
}

/** Node membership of @p gpu's every planned relay must satisfy
 * @p allowed; flattens the plan's legs into one via list. */
std::vector<int>
plannedVias(const Rerouter &rr, int src, int dst)
{
    std::vector<int> vias;
    for (const auto &leg : rr.plan(src, dst))
        vias.insert(vias.end(), leg.vias.begin(), leg.vias.end());
    return vias;
}

} // namespace

TEST(MultiNodeTopology, BuilderValidatesShape)
{
    EXPECT_THROW(multiNodePlatform(1, 16), FatalError);
    EXPECT_THROW(multiNodePlatform(2, 1), FatalError);

    const PlatformSpec p = multiNodePlatform(2, 16);
    EXPECT_EQ(p.numGpus, 32);
    EXPECT_TRUE(p.fabric.multiNode());
    EXPECT_EQ(p.fabric.gpusPerNode, 16);
    EXPECT_EQ(p.fabric.topology, FabricTopology::PairwiseLinks);
    EXPECT_EQ(p.fabric.nodeOf(15), 0);
    EXPECT_EQ(p.fabric.nodeOf(16), 1);
    EXPECT_TRUE(p.fabric.sameNode(0, 15));
    EXPECT_FALSE(p.fabric.sameNode(15, 16));

    // The network tier is strictly slower and farther than the
    // chassis tier, and the base latency stays the intra minimum —
    // it is the sharded engine's conservative lookahead floor.
    EXPECT_LT(p.fabric.interPerGpuBidirBandwidth,
              p.fabric.perGpuBidirBandwidth);
    EXPECT_GT(p.fabric.interLatency, p.fabric.latency);
}

TEST(MultiNodeTopology, LinkCountsAndTierSymmetry)
{
    EventQueue eq;
    const PlatformSpec platform = multiNodePlatform(2, 4);
    Interconnect fab(eq, platform.fabric, platform.numGpus);
    const int n = platform.numGpus;

    int intra = 0;
    int inter = 0;
    double intra_rate = -1.0;
    double inter_rate = -1.0;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            if (i == j)
                continue;
            // Tier symmetry: forward and reverse carry identical
            // bandwidth and latency, and every pair of a tier is
            // uniform.
            EXPECT_EQ(fab.pairLink(i, j).rate(),
                      fab.pairLink(j, i).rate())
                << i << "<->" << j;
            EXPECT_EQ(fab.pairLatency(i, j), fab.pairLatency(j, i))
                << i << "<->" << j;
            double &tier_rate =
                fab.interNodePair(i, j) ? inter_rate : intra_rate;
            if (tier_rate < 0.0)
                tier_rate = fab.nominalPairRate(i, j);
            EXPECT_DOUBLE_EQ(tier_rate, fab.nominalPairRate(i, j))
                << i << "->" << j;
            ++(fab.interNodePair(i, j) ? inter : intra);
        }
    }

    // 2 nodes x 4 GPUs: 2 x (4*3) intra directed pairs, 4*4 inter
    // directed pairs each way.
    EXPECT_EQ(intra, 24);
    EXPECT_EQ(inter, 32);
    EXPECT_LT(inter_rate, intra_rate);
}

TEST(MultiNodeTopology, PerTierGoodputMonotoneInTransferSize)
{
    EventQueue eq;
    const PlatformSpec platform = multiNodePlatform(2, 4);
    Interconnect fab(eq, platform.fabric, platform.numGpus);

    // Goodput (payload / wire) at the tier's best granularity must
    // be monotone over power-of-two transfer sizes. (It is NOT
    // monotone over arbitrary sizes: one byte past a packet boundary
    // adds a whole header, e.g. 4096 -> 4097 on the IB tier.)
    for (const auto &model : {fab.pairPacketModel(0, 1),
                              fab.pairPacketModel(0, 4)}) {
        double prev = 0.0;
        for (std::uint64_t bytes = 512; bytes <= 16 * MiB;
             bytes *= 2) {
            const double goodput =
                static_cast<double>(bytes)
                / static_cast<double>(
                      model.wireBytes(bytes,
                                      model.bestGranularity()));
            EXPECT_GE(goodput, prev)
                << bytes << "B at payload "
                << model.maxPayloadBytes;
            prev = goodput;
        }
        EXPECT_GT(prev, 0.85);
    }
}

TEST(MultiNodeRouting, HealthyCrossNodePairsTakeTheDirectPath)
{
    // A HEALTHY inter-node link is the plan, full stop: no relay
    // fan-out, no third node, regardless of the tier's lower
    // bandwidth.
    MultiGpuSystem system(multiNodePlatform(4, 4));
    system.enableHealth();
    Rerouter &rr = system.enableReroute();

    for (const auto &[src, dst] : {std::pair{0, 4}, {0, 13},
                                   {5, 11}, {15, 2}}) {
        const auto &legs = rr.plan(src, dst);
        ASSERT_EQ(legs.size(), 1u) << src << "->" << dst;
        EXPECT_TRUE(legs.front().direct()) << src << "->" << dst;
    }
}

TEST(MultiNodeRouting, DetoursStayOnEndpointNodes)
{
    // 3 nodes x 4 GPUs: node 0 = {0..3}, node 1 = {4..7},
    // node 2 = {8..11} is foreign to the 0->5 pair.
    MultiGpuSystem system(multiNodePlatform(3, 4));
    LinkHealthMonitor &mon = system.enableHealth();
    Rerouter &rr = system.enableReroute();

    // Dead direct inter-node link: every relay candidate and every
    // planned via sits on one of the two endpoint nodes (one network
    // hop), never on the foreign node (two network hops).
    killLink(mon, 0, 5);
    for (const int via : rr.relayCandidates(0, 5))
        EXPECT_TRUE(via < 8 && via != 0 && via != 5) << via;
    EXPECT_FALSE(rr.relayCandidates(0, 5).empty());
    for (const int via : plannedVias(rr, 0, 5))
        EXPECT_LT(via, 8) << via;

    // Dead intra-node link: the detour stays inside the node.
    killLink(mon, 0, 1);
    const auto intra_relays = rr.relayCandidates(0, 1);
    EXPECT_FALSE(intra_relays.empty());
    for (const int via : intra_relays)
        EXPECT_TRUE(via == 2 || via == 3) << via;

    // Only once every endpoint-node relay is unusable may the plan
    // consult the foreign node.
    for (const int k : {2, 3})
        killLink(mon, 0, k);
    for (const int k : {4, 6, 7})
        killLink(mon, k, 5);
    const auto foreign = rr.relayCandidates(0, 5);
    EXPECT_FALSE(foreign.empty());
    for (const int via : foreign)
        EXPECT_TRUE(via >= 8 && via < 12) << via;
}

TEST(MultiNodeRouting, BfsMinimizesNetworkHopsBeforeEdgeCount)
{
    // 2 nodes x 8 GPUs, pair 0->2. Kill links so that no single
    // relay survives and exactly two multi-relay detours remain:
    //   intra: 0->1->3->5->2   (4 edges, 0 network hops)
    //   cross: 0->1->f->2      (3 edges, 2 network hops, f >= 8)
    // An edge-count BFS would take the 3-edge path through the
    // remote node; the hierarchical search must pay the extra edge
    // to stay on the chassis tier.
    MultiGpuSystem system(multiNodePlatform(2, 8));
    LinkHealthMonitor &mon = system.enableHealth();
    Rerouter &rr = system.enableReroute();

    for (int k = 2; k < 16; ++k)
        killLink(mon, 0, k); // Only 0->1 leaves GPU 0.
    for (const int k : {2, 4, 5, 6, 7})
        killLink(mon, 1, k); // Keep 1->3 and 1->{8..15}.
    for (const int k : {3, 4, 6, 7})
        killLink(mon, k, 2); // Keep 5->2 and {8..15}->2.

    EXPECT_TRUE(rr.relayCandidates(0, 2).empty());
    const auto &legs = rr.plan(0, 2);
    ASSERT_EQ(legs.size(), 1u);
    EXPECT_EQ(legs.front().vias, (std::vector<int>{1, 3, 5}));
}

TEST(MultiNodeRouting, TierMaskedCacheInvalidatesIndependently)
{
    // Push-invalidation mode (the product wiring): a cached plan is
    // evicted by a row/column link transition only when the plan
    // actually read that link's tier.
    MultiGpuSystem system(multiNodePlatform(2, 4));
    LinkHealthMonitor &mon = system.enableHealth();
    Rerouter &rr = system.enableReroute();
    const auto computes = [&rr] {
        return rr.stats().get("reroute.plan_computes");
    };

    // Intra-only relay plan for 0->1 (relays {2, 3} never leave the
    // node, so the plan depends on chassis-tier links alone).
    killLink(mon, 0, 1);
    (void)rr.plan(0, 1);
    const double intra_cached = computes();

    // An inter-node transition in the same row must NOT evict it...
    killLink(mon, 0, 6);
    (void)rr.plan(0, 1);
    EXPECT_EQ(computes(), intra_cached)
        << "inter-node flap evicted an intra-only plan";

    // ...but an intra-node transition in its column must.
    killLink(mon, 2, 1);
    (void)rr.plan(0, 1);
    EXPECT_EQ(computes(), intra_cached + 1.0)
        << "intra-node flap failed to evict an intra plan";

    // A cross-node relay plan reads both tiers (each relay leg pairs
    // one chassis link with one network link), so an inter-node
    // transition in its row evicts it.
    killLink(mon, 0, 5);
    (void)rr.plan(0, 5);
    const double inter_cached = computes();
    killLink(mon, 0, 7);
    (void)rr.plan(0, 5);
    EXPECT_EQ(computes(), inter_cached + 1.0)
        << "inter-node flap failed to evict a cross-node plan";
}

TEST(MultiNodePdes, ShardedEngineEngagesAtMultiNodeScale)
{
    // Guard against a silent serial degrade, which would make every
    // digest comparison below vacuously true: the two-tier pairwise
    // fabric must satisfy the sharding contract.
    for (const int shards : {2, 4, 8}) {
        MultiGpuSystem system(multiNodePlatform(2, 16), shards);
        EXPECT_TRUE(system.sharded()) << shards << " shards";
    }
}

namespace {

/** All five workloads at a multi-node scale, shards {1,2,4,8}
 * bit-identical to the 1-shard sequential reference. */
void
multiNodeDeterminismBattery(int nodes)
{
    Session session(multiNodePlatform(nodes, 16));
    const int gpus = session.platform().numGpus;
    for (const std::string &name : test::smallWorkloadNames()) {
        auto run_once = [&](int shards) {
            auto workload = test::makeSmallWorkload(name);
            workload->setup(gpus);
            return runDigest(session.run(*workload,
                                         Paradigm::ProactDecoupled,
                                         batteryOptions(shards)));
        };
        const std::string ref = run_once(1);
        for (const int shards : {2, 4, 8}) {
            EXPECT_EQ(ref, run_once(shards))
                << name << " at " << gpus << " GPUs, " << shards
                << " shards";
        }
    }
}

} // namespace

TEST(MultiNodePdes, TwoNodeAllWorkloadsBitIdenticalAcrossShards)
{
    multiNodeDeterminismBattery(2);
}

TEST(MultiNodePdes, FourNodeAllWorkloadsBitIdenticalAcrossShards)
{
    multiNodeDeterminismBattery(4);
}

/**
 * Seeded multi-node fault fuzz: a 2x16 fabric under flapping
 * inter-node links plus an unconditional device loss. Every case
 * must drain with zero leaked flights and zero orphaned retries on
 * every sender, and the counter tuple must be identical at 1 and 4
 * shards — cross-node relays, retries and the device quiesce are
 * exactly the paths that cross both shard and node boundaries.
 */
class MultiNodeFaultFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static constexpr std::uint64_t kCampaign = 0x6d6e6f64u;

    std::uint64_t caseSeed() const
    {
        return deriveSeed(kCampaign, GetParam());
    }
};

TEST_P(MultiNodeFaultFuzz, InterNodeFlapsAndDeviceLossLeaveNoFlights)
{
    auto run_once = [](std::uint64_t seed, int shards) {
        const PlatformSpec platform = multiNodePlatform(2, 16);
        const int gpus = platform.numGpus;

        MultiGpuSystem system(platform, shards);
        if (shards > 1) {
            EXPECT_TRUE(system.sharded()) << shards << " shards";
        }
        system.setFunctional(false);
        system.enableHealth();
        system.enableReroute();
        system.enableDeviceHealth({});

        // Two flapping inter-node links (one per direction of the
        // node boundary) and one unconditional device loss.
        Rng rng(deriveSeed(seed, 0xfab5u));
        FaultPlan plan;
        LinkLifecycleOptions flaps;
        flaps.downProbability = 0.5;
        const int a = static_cast<int>(rng.below(16));
        const int b = 16 + static_cast<int>(rng.below(16));
        plan.flapLink(deriveSeed(seed, 1), a, b, flaps);
        plan.flapLink(deriveSeed(seed, 2), b, a, flaps);
        const int victim =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(
                gpus)));
        const Tick death =
            (40 + rng.below(160)) * ticksPerMicrosecond;
        plan.downGpu(death, maxTick, victim);
        system.installFaults(std::move(plan));

        StatSet stats;
        std::atomic<int> deliveries{0};
        std::atomic<Tick> last{0};
        TransferAgent::Context ctx;
        ctx.system = &system;
        ctx.gpuId = 0;
        ctx.queue = &system.queueFor(0);
        ctx.config.mechanism = TransferMechanism::Polling;
        ctx.config.chunkBytes = 64 * KiB;
        ctx.config.transferThreads = 2048;
        ctx.config.retry.enabled = true;
        ctx.config.retry.maxAttempts = 6;
        ctx.config.retry.rerouteAfterAttempts = 2;
        ctx.stats = &stats;
        ctx.onDelivered = [&deliveries, &last](std::uint64_t) {
            deliveries.fetch_add(1, std::memory_order_relaxed);
            const Tick now =
                ShardedEventEngine::currentQueue()->curTick();
            Tick seen = last.load(std::memory_order_relaxed);
            while (seen < now &&
                   !last.compare_exchange_weak(
                       seen, now, std::memory_order_relaxed)) {
            }
        };
        PollingAgent agent(ctx);

        // Chained relay hops must be submitted from the relay's own
        // shard (the runtime installs these itself; a direct-system
        // test follows suit).
        std::vector<StatSet> hop_stats(
            static_cast<std::size_t>(gpus));
        std::vector<std::unique_ptr<RetryingSender>> hop_senders;
        std::vector<Rerouter::Submit> submitters;
        for (int g = 0; g < gpus; ++g) {
            hop_senders.push_back(std::make_unique<RetryingSender>(
                system.queueFor(g), system.fabric(),
                ctx.config.retry,
                &hop_stats[static_cast<std::size_t>(g)], nullptr));
            RetryingSender *hs = hop_senders.back().get();
            submitters.push_back(
                [hs](const Interconnect::Request &leg) {
                    return hs->send(leg);
                });
        }
        system.rerouter()->setHopSubmitters(std::move(submitters));

        const int chunks = 4;
        auto &eq = system.queueFor(0);
        for (int c = 0; c < chunks; ++c) {
            eq.schedule(
                static_cast<Tick>(c) * 40 * ticksPerMicrosecond,
                [&agent, c] { agent.chunkReady(c, 64 * KiB); });
        }
        system.run();

        const Interconnect &fabric = system.fabric();

        // The death is unconditional, so the watchdog must have
        // declared the victim by drain time.
        EXPECT_TRUE(system.anyDeviceLost()) << "seed " << seed;

        // Zero leaked flights and zero orphaned retries: every
        // submission was delivered, refused, quiesced or given up —
        // and every sender's in-flight ledger returned to zero.
        EXPECT_EQ(fabric.numTrackedFlights(), 0u) << "seed " << seed;
        EXPECT_EQ(agent.sender().inFlight(), 0u) << "seed " << seed;
        for (int g = 0; g < gpus; ++g) {
            EXPECT_EQ(hop_senders[static_cast<std::size_t>(g)]
                          ->inFlight(),
                      0u)
                << "seed " << seed << " hop sender " << g;
        }

        double hop_retried = 0.0;
        double hop_orphaned = 0.0;
        for (const StatSet &hs : hop_stats) {
            hop_retried += hs.get("transfers.retried");
            hop_orphaned += hs.get("transfers.orphaned");
        }
        return std::make_tuple(
            victim, last.load(), deliveries.load(),
            stats.get("transfers.retried"),
            stats.get("transfers.orphaned"), hop_retried,
            hop_orphaned, fabric.refusedDeliveries(),
            fabric.quiescedFlights(),
            system.deviceHealth()->transitions().size());
    };

    const auto ref = run_once(caseSeed(), 1);
    EXPECT_EQ(ref, run_once(caseSeed(), 4))
        << "case " << GetParam()
        << " diverged between 1 and 4 shards";
}

INSTANTIATE_TEST_SUITE_P(Cases, MultiNodeFaultFuzz,
                         ::testing::Range<std::uint64_t>(0u, 24u));
