/**
 * @file
 * Parameterized property tests for the Unified Memory subsystem:
 * page accounting must be exact for any page size, repeated accesses
 * must be idempotent, and fault-path costs must order sensibly.
 */

#include "memory/um_driver.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;

class PageTableProperty
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PageTableProperty, MissingPlusResidentCoversRange)
{
    const std::uint32_t page = GetParam();
    const std::uint64_t region = 64ull * page + page / 2;
    PageTable pt(3, region, page);

    // Make a stripe resident on gpu 0.
    pt.writeRangeBy(0, 2 * page, 5 * page);
    const std::uint64_t total_pages = pt.numPages();
    const std::uint64_t missing0 = pt.missingPages(0, 0, region);
    const std::uint64_t missing1 = pt.missingPages(1, 0, region);
    EXPECT_EQ(missing0, total_pages - 5);
    EXPECT_EQ(missing1, total_pages);

    // Residency is per page, never fractional.
    std::uint64_t resident = 0;
    for (std::uint64_t p = 0; p < total_pages; ++p)
        resident += pt.isResident(0, p) ? 1 : 0;
    EXPECT_EQ(resident + missing0, total_pages);
}

TEST_P(PageTableProperty, WriteInvalidationIsExact)
{
    const std::uint32_t page = GetParam();
    PageTable pt(4, 64 * page, page);
    for (std::uint64_t p = 0; p < pt.numPages(); ++p) {
        for (int g = 0; g < 4; ++g)
            pt.replicate(g, p);
    }
    pt.writeRangeBy(2, 10 * page, 3 * page);
    for (std::uint64_t p = 0; p < pt.numPages(); ++p) {
        const bool written = p >= 10 && p < 13;
        EXPECT_EQ(pt.replicaCount(p), written ? 1 : 4) << p;
        if (written)
            EXPECT_TRUE(pt.isResident(2, p));
    }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, PageTableProperty,
                         ::testing::Values(4096u, 65536u,
                                           2u * 1024 * 1024),
                         [](const auto &info) {
                             return "page"
                                 + std::to_string(info.param);
                         });

TEST(UmProperties, AccessIsIdempotentPerProducerRound)
{
    MultiGpuSystem system(voltaPlatform());
    UmDriver driver(system, 8 << 20);
    driver.producerWrote(1, 0, 8 << 20);

    UmHints hints;
    hints.prefetch = true;
    const Tick t1 =
        driver.access(0, 1, 0, 8 << 20, true, hints, 0);
    const double migrated_once =
        driver.stats.get("prefetched_bytes");
    driver.access(0, 1, 0, 8 << 20, true, hints, t1);
    EXPECT_DOUBLE_EQ(driver.stats.get("prefetched_bytes"),
                     migrated_once);
}

TEST(UmProperties, FaultCostScalesWithMissingPages)
{
    auto access_time = [](std::uint64_t bytes) {
        MultiGpuSystem system(voltaPlatform());
        UmDriver driver(system, 32 << 20);
        driver.producerWrote(1, 0, 32 << 20);
        UmHints hints; // Fault path.
        return driver.access(0, 1, 0, bytes, false, hints, 0);
    };
    const Tick small = access_time(1 << 20);
    const Tick big = access_time(16 << 20);
    // Sporadic fault cost is roughly linear in pages (16x data ->
    // at least 8x time).
    EXPECT_GT(big, 8 * small);
}

TEST(UmProperties, PartialAccessMigratesOnlyTouchedPages)
{
    MultiGpuSystem system(voltaPlatform());
    UmDriver driver(system, 8 << 20);
    driver.producerWrote(1, 0, 8 << 20);

    UmHints hints;
    hints.prefetch = true;
    driver.access(0, 1, 0, 1 << 20, true, hints, 0);
    const auto page = system.platform().gpu.umPageBytes;
    EXPECT_DOUBLE_EQ(driver.stats.get("prefetched_bytes"),
                     static_cast<double>(1 << 20));
    EXPECT_EQ(driver.pageTable().missingPages(0, 0, 8 << 20),
              (7ull << 20) / page);
}
