/**
 * @file
 * Unit tests for the baseline runtimes (cudaMemcpy, UM, infinite-BW).
 */

#include "baselines/runner.hh"
#include "tests/toy_workload.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;
using proact::test::ToyWorkload;

TEST(IdealRuntime, RunsKernelsOnly)
{
    ToyWorkload workload;
    workload.setup(4);
    MultiGpuSystem system(voltaPlatform());
    IdealRuntime runtime(system);
    EXPECT_GT(runtime.run(workload), 0u);
    EXPECT_EQ(system.fabric().totalPayloadBytes(), 0u);
    EXPECT_TRUE(workload.verify());
}

TEST(BulkMemcpyRuntime, DuplicatesEveryPartition)
{
    ToyWorkload::Params params;
    params.iterations = 2;
    ToyWorkload workload(params);
    workload.setup(4);
    MultiGpuSystem system(voltaPlatform());
    BulkMemcpyRuntime runtime(system);
    runtime.run(workload);

    EXPECT_EQ(system.fabric().totalPayloadBytes(),
              4ull * 3ull * params.partitionBytes * 2ull);
    EXPECT_DOUBLE_EQ(runtime.stats().get("memcpy_calls"),
                     4.0 * 3.0 * 2.0);
    EXPECT_TRUE(workload.verify());
}

TEST(BulkMemcpyRuntime, NoComputeTransferOverlap)
{
    // The bulk paradigm's copy time is fully exposed: runtime ==
    // ideal + copyTicks (modulo the host-serialization slack counted
    // inside copyTicks).
    ToyWorkload::Params params;
    params.partitionBytes = 4 * MiB;
    params.iterations = 2;

    ToyWorkload w1(params);
    w1.setup(4);
    MultiGpuSystem s1(voltaPlatform());
    IdealRuntime ideal(s1);
    const Tick t_ideal = ideal.run(w1);

    ToyWorkload w2(params);
    w2.setup(4);
    MultiGpuSystem s2(voltaPlatform());
    BulkMemcpyRuntime memcpy_rt(s2);
    const Tick t_memcpy = memcpy_rt.run(w2);

    EXPECT_GT(memcpy_rt.copyTicks(), 0u);
    EXPECT_NEAR(static_cast<double>(t_memcpy),
                static_cast<double>(t_ideal + memcpy_rt.copyTicks()),
                static_cast<double>(t_memcpy) * 0.02);
}

TEST(BulkMemcpyRuntime, SingleGpuCopiesNothing)
{
    ToyWorkload workload;
    workload.setup(1);
    MultiGpuSystem system(voltaPlatform().withGpuCount(1));
    BulkMemcpyRuntime runtime(system);
    EXPECT_GT(runtime.run(workload), 0u);
    EXPECT_EQ(system.fabric().totalPayloadBytes(), 0u);
    EXPECT_EQ(runtime.copyTicks(), 0u);
}

TEST(BulkMemcpyRuntime, HostSerializationScalesWithGpuCount)
{
    // Per-copy host cost makes N*(N-1) copies increasingly painful —
    // the paper's Fig. 10 flattening mechanism: 2 GPUs issue 2
    // copies, 8 GPUs issue 56, so the exposed copy section grows
    // far faster than linearly in GPU count.
    auto copy_ticks = [](int gpus) {
        ToyWorkload::Params params;
        params.partitionBytes = 512 * KiB;
        params.iterations = 1;
        ToyWorkload workload(params);
        workload.setup(gpus);
        MultiGpuSystem system(dgx2Platform().withGpuCount(gpus));
        BulkMemcpyRuntime runtime(system);
        runtime.run(workload);
        return runtime.copyTicks();
    };
    EXPECT_GT(copy_ticks(8), 6 * copy_ticks(2));
}

TEST(UnifiedMemoryRuntime, RunsAndMigrates)
{
    ToyWorkload::Params params;
    params.iterations = 3;
    ToyWorkload workload(params);
    workload.setup(4);
    MultiGpuSystem system(voltaPlatform());
    UnifiedMemoryRuntime runtime(system);
    EXPECT_GT(runtime.run(workload), 0u);
    // Iterations beyond the first pull peer partitions.
    EXPECT_GT(runtime.stats().get("um_accesses"), 0.0);
    EXPECT_GT(system.fabric().totalPayloadBytes(), 0u);
    EXPECT_TRUE(workload.verify());
}

TEST(UnifiedMemoryRuntime, SequentialBeatsSporadicAccess)
{
    auto run = [](bool sequential) {
        ToyWorkload::Params params;
        params.partitionBytes = 4 * MiB;
        params.iterations = 3;
        params.sequential = sequential;
        ToyWorkload workload(params);
        workload.setup(4);
        MultiGpuSystem system(voltaPlatform());
        UnifiedMemoryRuntime runtime(system);
        return runtime.run(workload);
    };
    EXPECT_LT(run(true), run(false));
}

TEST(UnifiedMemoryRuntime, LegacyModeOnKepler)
{
    ToyWorkload::Params params;
    params.iterations = 2;
    ToyWorkload workload(params);
    workload.setup(4);
    MultiGpuSystem system(keplerPlatform());
    UnifiedMemoryRuntime runtime(system);
    EXPECT_GT(runtime.run(workload), 0u);
    EXPECT_GT(runtime.stats().get("legacy_migrations"), 0.0);
    EXPECT_DOUBLE_EQ(runtime.stats().get("faults"), 0.0);
}

TEST(UnifiedMemoryRuntime, SingleGpuDoesNotMigrate)
{
    ToyWorkload workload;
    workload.setup(1);
    MultiGpuSystem system(voltaPlatform().withGpuCount(1));
    UnifiedMemoryRuntime runtime(system);
    EXPECT_GT(runtime.run(workload), 0u);
    EXPECT_DOUBLE_EQ(runtime.stats().get("um_accesses"), 0.0);
}

TEST(Baselines, ParadigmsComputeIdenticalResults)
{
    auto data_after = [](auto make_runtime) {
        ToyWorkload workload;
        workload.setup(4);
        MultiGpuSystem system(voltaPlatform());
        auto runtime = make_runtime(system);
        runtime->run(workload);
        return workload.verify();
    };
    EXPECT_TRUE(data_after([](MultiGpuSystem &s) {
        return std::make_unique<IdealRuntime>(s);
    }));
    EXPECT_TRUE(data_after([](MultiGpuSystem &s) {
        return std::make_unique<BulkMemcpyRuntime>(s);
    }));
    EXPECT_TRUE(data_after([](MultiGpuSystem &s) {
        return std::make_unique<UnifiedMemoryRuntime>(s);
    }));
}

TEST(Baselines, LaunchPlainKernelsJoinsAll)
{
    ToyWorkload workload;
    workload.setup(4);
    MultiGpuSystem system(voltaPlatform());
    bool done = false;
    launchPlainKernels(system, workload.phase(0),
                       [&] { done = true; });
    system.run();
    EXPECT_TRUE(done);
}

TEST(Baselines, LaunchPlainKernelsValidatesShape)
{
    ToyWorkload workload;
    workload.setup(2);
    MultiGpuSystem system(voltaPlatform()); // 4 GPUs vs 2 described.
    EXPECT_THROW(
        launchPlainKernels(system, workload.phase(0), nullptr),
        FatalError);
}
