/**
 * @file
 * Unit tests for time/unit conversion helpers.
 */

#include "sim/types.hh"

#include <gtest/gtest.h>

using namespace proact;

TEST(Types, TickConstantsAreConsistent)
{
    EXPECT_EQ(ticksPerNanosecond, 1000u);
    EXPECT_EQ(ticksPerMicrosecond, 1000u * 1000u);
    EXPECT_EQ(ticksPerSecond, 1000000000000ull);
    EXPECT_EQ(MiB, 1024u * KiB);
    EXPECT_EQ(GiB, 1024u * MiB);
}

TEST(Types, SecondsRoundTrip)
{
    EXPECT_EQ(ticksFromSeconds(1.0), ticksPerSecond);
    EXPECT_EQ(ticksFromSeconds(0.0), 0u);
    EXPECT_DOUBLE_EQ(secondsFromTicks(ticksPerSecond), 1.0);
    EXPECT_DOUBLE_EQ(secondsFromTicks(ticksPerMicrosecond), 1e-6);
    // Round-trip within a tick.
    const double t = 3.14159e-3;
    EXPECT_NEAR(secondsFromTicks(ticksFromSeconds(t)), t, 1e-12);
}

TEST(Types, TransferTicksMatchesRate)
{
    // 1 GB at 1 GB/s = 1 second.
    EXPECT_EQ(transferTicks(1000000000, 1.0e9), ticksPerSecond);
    // 300 bytes at 300 GB/s = 1 ns.
    EXPECT_EQ(transferTicks(300, 300.0e9), ticksPerNanosecond);
}

TEST(Types, TransferTicksEdgeCases)
{
    EXPECT_EQ(transferTicks(0, 1e9), 0u);
    EXPECT_EQ(transferTicks(100, 0.0), 0u);
    EXPECT_EQ(transferTicks(100, -5.0), 0u);
    // Non-zero payloads always make forward progress.
    EXPECT_GE(transferTicks(1, 1e18), 1u);
}

TEST(Types, BytesPerSecondInverse)
{
    const Tick ticks = transferTicks(1 << 20, 150.0e9);
    EXPECT_NEAR(bytesPerSecond(1 << 20, ticks), 150.0e9, 0.01e9);
    EXPECT_DOUBLE_EQ(bytesPerSecond(100, 0), 0.0);
}

TEST(Types, SubNanosecondTransfersRepresentable)
{
    // A single 288B NVLink2 packet at 150 GB/s takes ~1.9 ns; the
    // picosecond tick resolves it without collapsing to zero.
    const Tick t = transferTicks(288, 150.0e9);
    EXPECT_GT(t, ticksPerNanosecond);
    EXPECT_LT(t, 3 * ticksPerNanosecond);
}
