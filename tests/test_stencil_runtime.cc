/**
 * @file
 * Runtime behaviour with overlapping (stencil/halo) CTA footprints:
 * counters must account for multiple writers per chunk, chunks must
 * still fire exactly once, and all bytes must reach all peers.
 */

#include "proact/region.hh"
#include "proact/runtime.hh"
#include "system/multi_gpu_system.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;

namespace {

/** Workload whose CTA footprints overlap by a halo on both sides. */
class StencilWorkload : public Workload
{
  public:
    static constexpr std::uint64_t partitionBytes = 256 * KiB;
    static constexpr std::uint64_t haloBytes = 4 * KiB;
    static constexpr int ctasPerGpu = 16;

    std::string name() const override { return "Stencil"; }
    void setup(int num_gpus) override { _numGpus = num_gpus; }
    int numIterations() const override { return 2; }

    TrafficProfile
    traffic() const override
    {
        return TrafficProfile{256, true};
    }

    bool verify() const override { return true; }

  protected:
    Phase
    buildPhase(int) override
    {
        Phase p;
        p.perGpu.resize(_numGpus);
        for (int g = 0; g < _numGpus; ++g) {
            GpuPhaseWork &work = p.perGpu[g];
            work.kernel.name = "stencil";
            work.kernel.numCtas = ctasPerGpu;
            work.kernel.body = [](const CtaContext &) {
                CtaWork w;
                w.localBytes = 64 * KiB;
                return w;
            };
            work.bytesProduced = partitionBytes;
            work.ctaRange = mappings::stencil(partitionBytes,
                                              ctasPerGpu, haloBytes);
        }
        return p;
    }
};

} // namespace

TEST(StencilRuntime, InteriorChunksHaveMultipleWriters)
{
    RegionTracker tracker(StencilWorkload::partitionBytes, 16 * KiB);
    tracker.initCounters(
        StencilWorkload::ctasPerGpu,
        mappings::stencil(StencilWorkload::partitionBytes,
                          StencilWorkload::ctasPerGpu,
                          StencilWorkload::haloBytes));
    // Each 16 kB slice is written by its owner CTA plus the halo of
    // at least one neighbour.
    int multi_writer = 0;
    for (int c = 0; c < tracker.numChunks(); ++c) {
        if (tracker.counters().expected(c) > 1)
            ++multi_writer;
    }
    EXPECT_GT(multi_writer, 0);
}

TEST(StencilRuntime, DecoupledDeliversEverythingOnce)
{
    StencilWorkload workload;
    workload.setup(4);
    MultiGpuSystem system(voltaPlatform());
    system.setFunctional(false);

    ProactRuntime::Options options;
    options.config.mechanism = TransferMechanism::Polling;
    options.config.chunkBytes = 16 * KiB;
    options.config.transferThreads = 2048;
    ProactRuntime runtime(system, options);
    runtime.run(workload);

    // Chunk payload is delivered once per (chunk, peer) even though
    // chunks have several writers.
    EXPECT_EQ(system.fabric().totalPayloadBytes(),
              4ull * 3ull * StencilWorkload::partitionBytes * 2ull);

    // Decrements exceed CTA count: halo writers decrement their
    // neighbours' chunks too.
    EXPECT_GT(runtime.stats().get("counter_decrements"),
              4.0 * StencilWorkload::ctasPerGpu * 2.0);
}

TEST(StencilRuntime, AllMechanismsAgreeOnPayload)
{
    std::uint64_t payload[3];
    int i = 0;
    for (const auto mech :
         {TransferMechanism::Polling, TransferMechanism::Cdp,
          TransferMechanism::Hardware}) {
        StencilWorkload workload;
        workload.setup(2);
        MultiGpuSystem system(voltaPlatform().withGpuCount(2));
        system.setFunctional(false);
        ProactRuntime::Options options;
        options.config.mechanism = mech;
        options.config.chunkBytes = 32 * KiB;
        ProactRuntime runtime(system, options);
        runtime.run(workload);
        payload[i++] = system.fabric().totalPayloadBytes();
    }
    EXPECT_EQ(payload[0], payload[1]);
    EXPECT_EQ(payload[1], payload[2]);
}
