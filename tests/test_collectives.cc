/**
 * @file
 * Unit tests for the collective-communication layer.
 */

#include "collectives/collectives.hh"

#include "faults/fault_plan.hh"
#include "sim/logging.hh"

#include <gtest/gtest.h>

#include <tuple>

using namespace proact;

namespace {

TransferConfig
proactConfig()
{
    TransferConfig config;
    config.chunkBytes = 64 * KiB;
    config.transferThreads = 2048;
    return config;
}

} // namespace

TEST(Collectives, BackendNames)
{
    EXPECT_EQ(collectiveBackendName(CollectiveBackend::BulkDma),
              "bulk-DMA");
    EXPECT_EQ(collectiveBackendName(CollectiveBackend::Proact),
              "PROACT");
}

TEST(Collectives, RejectsZeroChunk)
{
    MultiGpuSystem system(voltaPlatform());
    TransferConfig config;
    config.chunkBytes = 0;
    EXPECT_THROW(Collectives(system, config), FatalError);
}

TEST(Collectives, BroadcastDeliversToEveryPeer)
{
    for (const auto backend :
         {CollectiveBackend::BulkDma, CollectiveBackend::Proact}) {
        MultiGpuSystem system(voltaPlatform());
        Collectives coll(system, proactConfig());
        bool done = false;
        const Tick t = coll.broadcast(0, 1 << 20, backend,
                                      [&] { done = true; });
        system.run();
        EXPECT_TRUE(done);
        EXPECT_GT(t, 0u);
        EXPECT_EQ(system.fabric().totalPayloadBytes(),
                  3ull << 20)
            << collectiveBackendName(backend);
    }
}

TEST(Collectives, BroadcastValidatesRoot)
{
    MultiGpuSystem system(voltaPlatform());
    Collectives coll(system);
    EXPECT_THROW(coll.broadcast(4, 100, CollectiveBackend::Proact),
                 FatalError);
    EXPECT_THROW(coll.broadcast(-1, 100, CollectiveBackend::BulkDma),
                 FatalError);
}

TEST(Collectives, AllGatherMovesAllPartitions)
{
    MultiGpuSystem system(voltaPlatform());
    Collectives coll(system, proactConfig());
    coll.allGather(1 << 20, CollectiveBackend::Proact);
    system.run();
    // 4 contributors x 3 destinations x 1 MiB.
    EXPECT_EQ(system.fabric().totalPayloadBytes(), 12ull << 20);
}

TEST(Collectives, ProactBeatsBulkDmaAtSmallSizes)
{
    // Host issue + DMA initiation dominate small collectives; the
    // PROACT transport avoids both (the library-backend argument).
    for (const std::uint64_t size : {64 * KiB, 1 * MiB}) {
        MultiGpuSystem bulk_system(dgx2Platform());
        Collectives bulk(bulk_system, proactConfig());
        const Tick t_bulk =
            bulk.allGather(size, CollectiveBackend::BulkDma);
        bulk_system.run();

        MultiGpuSystem proact_system(dgx2Platform());
        Collectives proact(proact_system, proactConfig());
        const Tick t_proact =
            proact.allGather(size, CollectiveBackend::Proact);
        proact_system.run();

        EXPECT_LT(t_proact, t_bulk) << "size " << size;
    }
}

TEST(Collectives, BackendsConvergeAtLargeSizes)
{
    const std::uint64_t size = 256 * MiB;
    MultiGpuSystem bulk_system(voltaPlatform());
    Collectives bulk(bulk_system, proactConfig());
    const Tick t_bulk =
        bulk.broadcast(0, size, CollectiveBackend::BulkDma);

    MultiGpuSystem proact_system(voltaPlatform());
    Collectives proact(proact_system, proactConfig());
    const Tick t_proact =
        proact.broadcast(0, size, CollectiveBackend::Proact);

    const double ratio = static_cast<double>(t_bulk)
        / static_cast<double>(t_proact);
    EXPECT_GT(ratio, 0.95);
    EXPECT_LT(ratio, 1.25);
}

TEST(Collectives, ZeroBytesCompleteImmediately)
{
    MultiGpuSystem system(voltaPlatform());
    Collectives coll(system);
    EXPECT_EQ(coll.broadcast(0, 0, CollectiveBackend::Proact),
              system.now());
    EXPECT_EQ(system.fabric().totalPayloadBytes(), 0u);
}

TEST(Collectives, SingleGpuIsNoop)
{
    MultiGpuSystem system(voltaPlatform().withGpuCount(1));
    Collectives coll(system);
    EXPECT_EQ(coll.allGather(1 << 20, CollectiveBackend::Proact),
              system.now());
    system.run();
    EXPECT_EQ(system.fabric().totalPayloadBytes(), 0u);
}

TEST(Collectives, BroadcastSurvivesDeliveryDrops)
{
    // 1 % chunk loss on every link: with retry enabled the broadcast
    // must land every chunk on every peer exactly once (the bitwise-
    // correctness proxy of the chunk-count model) and still complete.
    MultiGpuSystem system(voltaPlatform());
    FaultPlan plan;
    plan.seed = 11;
    plan.dropDeliveries(0, maxTick, 0.01);
    system.installFaults(std::move(plan));

    TransferConfig config = proactConfig();
    config.chunkBytes = 16 * KiB;
    config.retry.enabled = true;
    config.retry.maxAttempts = 8;
    Collectives coll(system, config);

    const std::uint64_t bytes = 4 * MiB;
    bool done = false;
    coll.broadcast(0, bytes, CollectiveBackend::Proact,
                   [&] { done = true; });
    system.run();

    EXPECT_TRUE(done);
    const std::uint64_t chunks = bytes / config.chunkBytes;
    EXPECT_EQ(coll.chunksDelivered(),
              chunks * (system.numGpus() - 1));
    EXPECT_GT(coll.stats().get("transfers.retried"), 0.0);
    EXPECT_DOUBLE_EQ(coll.stats().get("transfers.abandoned"), 0.0);
}

TEST(Collectives, AllGatherSurvivesDeliveryDropsDeterministically)
{
    auto run_once = [] {
        MultiGpuSystem system(voltaPlatform());
        FaultPlan plan;
        plan.seed = 23;
        plan.dropDeliveries(0, maxTick, 0.01);
        system.installFaults(std::move(plan));

        TransferConfig config = proactConfig();
        config.chunkBytes = 32 * KiB;
        config.retry.enabled = true;
        config.retry.maxAttempts = 8;
        Collectives coll(system, config);

        bool done = false;
        const Tick t = coll.allGather(2 * MiB,
                                      CollectiveBackend::Proact,
                                      [&] { done = true; });
        system.run();
        EXPECT_TRUE(done);

        // 4 contributors x 64 chunks x 3 destinations, each once.
        EXPECT_EQ(coll.chunksDelivered(), 4u * 64u * 3u);
        EXPECT_GT(coll.stats().get("transfers.retried"), 0.0);
        return std::tuple<Tick, double, double>(
            t, coll.stats().get("transfers.retried"),
            system.faults()->stats().get("faults.dropped"));
    };

    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a, b); // Same seed -> same drops, retries, final tick.
}

TEST(Collectives, BusBandwidthMetric)
{
    EXPECT_DOUBLE_EQ(Collectives::busBandwidth(0, 0), 0.0);
    EXPECT_NEAR(
        Collectives::busBandwidth(1000000000, ticksPerSecond),
        1.0e9, 1.0);
}

TEST(Collectives, ThreadCountGatesProactTransport)
{
    auto time_with = [](std::uint32_t threads) {
        MultiGpuSystem system(voltaPlatform());
        TransferConfig config;
        config.chunkBytes = 256 * KiB;
        config.transferThreads = threads;
        Collectives coll(system, config);
        const Tick t =
            coll.broadcast(0, 32 * MiB, CollectiveBackend::Proact);
        system.run();
        return t;
    };
    EXPECT_GT(time_with(32), 2 * time_with(4096));
}
