/**
 * @file
 * Unit tests for the discrete-event engine.
 */

#include "sim/event_queue.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

using namespace proact;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runNext());
}

TEST(EventQueue, DispatchAdvancesClock)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(100, [&] { fired = true; });
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.runNext());
    EXPECT_TRUE(fired);
    EXPECT_EQ(eq.curTick(), 100u);
}

TEST(EventQueue, EventsRunInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] { order.push_back(2); }, 1);
    eq.schedule(50, [&] { order.push_back(0); }, 0);
    eq.schedule(50, [&] { order.push_back(3); }, 1);
    eq.schedule(50, [&] { order.push_back(1); }, 0);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, SchedulingInThePastThrows)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, CallbackMayScheduleAtCurrentTick)
{
    EventQueue eq;
    bool nested = false;
    eq.schedule(10, [&] {
        eq.schedule(eq.curTick(), [&] { nested = true; });
    });
    eq.run();
    EXPECT_TRUE(nested);
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    bool fired = false;
    const EventId id = eq.schedule(100, [&] { fired = true; });
    EXPECT_TRUE(eq.deschedule(id));
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleUnknownIdIsNoop)
{
    EventQueue eq;
    EXPECT_FALSE(eq.deschedule(12345));
}

TEST(EventQueue, DescheduleFiredEventIsNoop)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(200, [&] { ++fired; });
    eq.schedule(300, [&] { ++fired; });
    eq.runUntil(200);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 200u);
    EXPECT_EQ(eq.pendingEvents(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockOnIdleQueue)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.curTick(), 500u);
}

TEST(EventQueue, PendingAndDispatchedCounts)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pendingEvents(), 2u);
    eq.run();
    EXPECT_EQ(eq.pendingEvents(), 0u);
    EXPECT_EQ(eq.dispatchedEvents(), 2u);
}

TEST(EventQueue, ManyEventsDeterministicOrder)
{
    // The same schedule must dispatch identically across runs.
    auto run_once = [] {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 1000; ++i) {
            eq.schedule((i * 37) % 251, [&order, i] {
                order.push_back(i);
            });
        }
        eq.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(EventQueue, CancelledEventsDoNotBlockRunUntil)
{
    EventQueue eq;
    const EventId id = eq.schedule(100, [] {});
    eq.schedule(300, [] {});
    eq.deschedule(id);
    eq.runUntil(200);
    EXPECT_EQ(eq.curTick(), 200u);
    EXPECT_EQ(eq.pendingEvents(), 1u);
}

TEST(EventQueue, DescheduleDuringDispatch)
{
    // A callback cancels a later same-tick event mid-dispatch; the
    // victim must not fire and the bookkeeping must stay exact.
    EventQueue eq;
    bool victim_fired = false;
    bool after_fired = false;
    EventId victim = 0;
    eq.schedule(50, [&] { eq.deschedule(victim); });
    victim = eq.schedule(50, [&] { victim_fired = true; });
    eq.schedule(50, [&] { after_fired = true; });
    eq.run();
    EXPECT_FALSE(victim_fired);
    EXPECT_TRUE(after_fired);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.dispatchedEvents(), 2u);
}

TEST(EventQueue, DescheduleOwnLaterScheduleDuringDispatch)
{
    // Schedule-then-cancel inside one callback: the id minted during
    // dispatch must be immediately cancellable.
    EventQueue eq;
    bool fired = false;
    eq.schedule(10, [&] {
        const EventId id =
            eq.schedule(eq.curTick(), [&] { fired = true; });
        EXPECT_TRUE(eq.deschedule(id));
    });
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, RescheduleStormAtOneTick)
{
    // Retry storms reschedule at the current tick thousands of times;
    // order must stay insertion-stable and nothing may leak.
    EventQueue eq;
    std::vector<int> order;
    int remaining = 2000;
    std::function<void()> step = [&] {
        order.push_back(2000 - remaining);
        if (--remaining > 0)
            eq.schedule(eq.curTick(), step);
    };
    eq.schedule(7, step);
    eq.run();
    ASSERT_EQ(order.size(), 2000u);
    for (int i = 0; i < 2000; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(eq.curTick(), 7u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, EventIdReuseAfterGenerationBump)
{
    // Descheduling frees the slot; the recycled slot must mint a
    // *different* id, and the stale id must stay dead even though it
    // aliases the same slot.
    EventQueue eq;
    const EventId first = eq.schedule(100, [] {});
    EXPECT_TRUE(eq.deschedule(first));

    bool second_fired = false;
    const EventId second =
        eq.schedule(100, [&] { second_fired = true; });
    EXPECT_NE(first, second);

    // The stale handle is a no-op and must not kill the new event.
    EXPECT_FALSE(eq.deschedule(first));
    eq.run();
    EXPECT_TRUE(second_fired);

    // After firing, the second handle is stale too.
    EXPECT_FALSE(eq.deschedule(second));
}

TEST(EventQueue, FiredSlotReuseInvalidatesOldId)
{
    EventQueue eq;
    const EventId first = eq.schedule(10, [] {});
    eq.run();

    bool fired = false;
    const EventId second = eq.schedule(20, [&] { fired = true; });
    EXPECT_NE(first, second);
    EXPECT_FALSE(eq.deschedule(first));
    eq.run();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, TombstoneCompactionKeepsOrderAndCounts)
{
    // Cancel far more events than survive: compaction must fire (the
    // tombstone count stays bounded) without disturbing live order.
    EventQueue eq;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 5000; ++i) {
        ids.push_back(eq.schedule(
            static_cast<Tick>((i * 37) % 997),
            [&order, i] { order.push_back(i); }));
    }
    // Cancel ~90%: keep only every 10th event.
    std::uint64_t cancelled = 0;
    for (int i = 0; i < 5000; ++i) {
        if (i % 10 != 0) {
            EXPECT_TRUE(
                eq.deschedule(ids[static_cast<std::size_t>(i)]));
            ++cancelled;
        }
    }
    EXPECT_EQ(eq.pendingEvents(), 5000u - cancelled);
    // Compaction triggered: dead entries cannot outnumber the living
    // by more than the compaction threshold allows.
    EXPECT_LE(eq.tombstones(), eq.pendingEvents() + 64u);

    eq.run();
    EXPECT_EQ(order.size(), 500u);
    // Survivors still run in (tick, seq) order.
    std::vector<int> expected;
    for (int i = 0; i < 5000; i += 10)
        expected.push_back(i);
    std::sort(expected.begin(), expected.end(), [](int a, int b) {
        const int ta = (a * 37) % 997, tb = (b * 37) % 997;
        return ta != tb ? ta < tb : a < b;
    });
    EXPECT_EQ(order, expected);
}

TEST(EventQueue, NextEventTickPeeksWithoutDispatch)
{
    EventQueue eq;
    eq.schedule(42, [] {});
    EXPECT_EQ(eq.nextEventTick(), 42u);
    EXPECT_EQ(eq.dispatchedEvents(), 0u);

    EventQueue empty;
    EXPECT_EQ(empty.nextEventTick(), maxTick);
}

TEST(EventQueue, RunUntilBeforeStopsAtWindowEnd)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(199, [&] { ++fired; });
    eq.schedule(200, [&] { ++fired; }); // At the window end: excluded.
    EXPECT_EQ(eq.runUntilBefore(200), 2u);
    EXPECT_EQ(fired, 2);
    // Clock rests on the last dispatched event, not the window end.
    EXPECT_EQ(eq.curTick(), 199u);
    EXPECT_EQ(eq.pendingEvents(), 1u);
}

TEST(EventQueue, CallbackCapturesBeyondInlineBufferStillWork)
{
    // Oversized captures take SmallFn's heap fallback; semantics must
    // be unchanged.
    EventQueue eq;
    std::array<std::uint64_t, 16> payload{};
    payload[15] = 99;
    std::uint64_t seen = 0;
    eq.schedule(5, [payload, &seen] { seen = payload[15]; });
    eq.run();
    EXPECT_EQ(seen, 99u);
}
