/**
 * @file
 * Unit tests for the discrete-event engine.
 */

#include "sim/event_queue.hh"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

using namespace proact;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runNext());
}

TEST(EventQueue, DispatchAdvancesClock)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(100, [&] { fired = true; });
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.runNext());
    EXPECT_TRUE(fired);
    EXPECT_EQ(eq.curTick(), 100u);
}

TEST(EventQueue, EventsRunInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] { order.push_back(2); }, 1);
    eq.schedule(50, [&] { order.push_back(0); }, 0);
    eq.schedule(50, [&] { order.push_back(3); }, 1);
    eq.schedule(50, [&] { order.push_back(1); }, 0);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, SchedulingInThePastThrows)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, CallbackMayScheduleAtCurrentTick)
{
    EventQueue eq;
    bool nested = false;
    eq.schedule(10, [&] {
        eq.schedule(eq.curTick(), [&] { nested = true; });
    });
    eq.run();
    EXPECT_TRUE(nested);
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    bool fired = false;
    const EventId id = eq.schedule(100, [&] { fired = true; });
    EXPECT_TRUE(eq.deschedule(id));
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleUnknownIdIsNoop)
{
    EventQueue eq;
    EXPECT_FALSE(eq.deschedule(12345));
}

TEST(EventQueue, DescheduleFiredEventIsNoop)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(200, [&] { ++fired; });
    eq.schedule(300, [&] { ++fired; });
    eq.runUntil(200);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 200u);
    EXPECT_EQ(eq.pendingEvents(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockOnIdleQueue)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.curTick(), 500u);
}

TEST(EventQueue, PendingAndDispatchedCounts)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pendingEvents(), 2u);
    eq.run();
    EXPECT_EQ(eq.pendingEvents(), 0u);
    EXPECT_EQ(eq.dispatchedEvents(), 2u);
}

TEST(EventQueue, ManyEventsDeterministicOrder)
{
    // The same schedule must dispatch identically across runs.
    auto run_once = [] {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 1000; ++i) {
            eq.schedule((i * 37) % 251, [&order, i] {
                order.push_back(i);
            });
        }
        eq.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(EventQueue, CancelledEventsDoNotBlockRunUntil)
{
    EventQueue eq;
    const EventId id = eq.schedule(100, [] {});
    eq.schedule(300, [] {});
    eq.deschedule(id);
    eq.runUntil(200);
    EXPECT_EQ(eq.curTick(), 200u);
    EXPECT_EQ(eq.pendingEvents(), 1u);
}
