/**
 * @file
 * Unit tests for the error-reporting helpers.
 */

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;

TEST(Logging, FatalErrorCarriesStreamedMessage)
{
    try {
        fatalError("bad value ", 42, " in ", "config");
        FAIL() << "fatalError returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: bad value 42 in config");
    }
}

TEST(Logging, PanicErrorCarriesStreamedMessage)
{
    try {
        panicError("invariant ", 1.5, " violated");
        FAIL() << "panicError returned";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: invariant 1.5 violated");
    }
}

TEST(Logging, FatalIsRuntimePanicIsLogicError)
{
    // fatal() = user error, panic() = internal bug (gem5 semantics);
    // the exception taxonomy mirrors that split.
    EXPECT_THROW(fatalError("x"), std::runtime_error);
    EXPECT_THROW(panicError("x"), std::logic_error);
}

TEST(Logging, QuietModeSuppressesWarnings)
{
    // warn()/inform() must never throw, quiet or not.
    setQuiet(true);
    EXPECT_NO_THROW(warn("suppressed"));
    EXPECT_NO_THROW(inform("suppressed"));
    setQuiet(false);
    testing::internal::CaptureStderr();
    warn("visible warning");
    inform("visible info");
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: visible warning"), std::string::npos);
    EXPECT_NE(err.find("info: visible info"), std::string::npos);
}
