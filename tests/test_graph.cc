/**
 * @file
 * Unit and property tests for the graph substrate.
 */

#include "workloads/graph.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

#include <numeric>

using namespace proact;

TEST(Graph, RingStructure)
{
    const Graph g = generateRing(10, 2);
    EXPECT_EQ(g.numVertices, 10);
    EXPECT_EQ(g.numEdges(), 20);
    for (std::int64_t v = 0; v < 10; ++v) {
        EXPECT_EQ(g.inDegree(v), 2);
        EXPECT_EQ(g.outDegree[v], 2);
    }
    // Vertex 0 receives edges from 8 and 9.
    std::vector<int> sources(g.inNeighbors.begin() + g.inOffsets[0],
                             g.inNeighbors.begin() + g.inOffsets[1]);
    std::sort(sources.begin(), sources.end());
    EXPECT_EQ(sources, (std::vector<int>{8, 9}));
}

TEST(Graph, RingRejectsBadShapes)
{
    EXPECT_THROW(generateRing(0, 1), FatalError);
    EXPECT_THROW(generateRing(4, 0), FatalError);
    EXPECT_THROW(generateRing(4, 4), FatalError);
}

TEST(Graph, RmatShapeAndConservation)
{
    RmatParams params;
    params.numVertices = 1 << 12;
    params.numEdges = 1 << 15;
    const Graph g = generateRmat(params);

    EXPECT_EQ(g.numVertices, params.numVertices);
    EXPECT_EQ(g.numEdges(), params.numEdges);
    // In-degrees and out-degrees both sum to the edge count.
    EXPECT_EQ(g.inOffsets.back(), params.numEdges);
    EXPECT_EQ(std::accumulate(g.outDegree.begin(), g.outDegree.end(),
                              std::int64_t(0)),
              params.numEdges);
    // Weights within the configured range.
    for (const float w : g.inWeights) {
        EXPECT_GE(w, 1.0f);
        EXPECT_LE(w, static_cast<float>(params.maxWeight));
    }
}

TEST(Graph, RmatDeterministicForSeed)
{
    RmatParams params;
    params.numVertices = 1 << 10;
    params.numEdges = 1 << 13;
    const Graph a = generateRmat(params);
    const Graph b = generateRmat(params);
    EXPECT_EQ(a.inOffsets, b.inOffsets);
    EXPECT_EQ(a.inNeighbors, b.inNeighbors);
    EXPECT_EQ(a.inWeights, b.inWeights);

    params.seed = 43;
    const Graph c = generateRmat(params);
    EXPECT_NE(a.inNeighbors, c.inNeighbors);
}

TEST(Graph, RmatIsSkewed)
{
    RmatParams params;
    params.numVertices = 1 << 14;
    params.numEdges = 1 << 17;
    params.shuffleVertices = false;
    const Graph g = generateRmat(params);
    std::int64_t max_deg = 0;
    for (std::int64_t v = 0; v < g.numVertices; ++v)
        max_deg = std::max(max_deg, g.inDegree(v));
    const double mean_deg = static_cast<double>(g.numEdges())
        / static_cast<double>(g.numVertices);
    EXPECT_GT(static_cast<double>(max_deg), 20.0 * mean_deg);
}

TEST(Graph, ShufflingBalancesContiguousRanges)
{
    RmatParams params;
    params.numVertices = 1 << 14;
    params.numEdges = 1 << 17;

    auto quarter_imbalance = [](const Graph &g) {
        const std::int64_t q = g.numVertices / 4;
        std::int64_t max_edges = 0;
        for (int p = 0; p < 4; ++p) {
            max_edges = std::max(
                max_edges, g.edgesInRange(p * q, (p + 1) * q));
        }
        return static_cast<double>(max_edges)
            / (static_cast<double>(g.numEdges()) / 4.0);
    };

    params.shuffleVertices = false;
    const double skewed = quarter_imbalance(generateRmat(params));
    params.shuffleVertices = true;
    const double shuffled = quarter_imbalance(generateRmat(params));
    EXPECT_LT(shuffled, skewed);
    EXPECT_LT(shuffled, 1.2);
}

TEST(Graph, RmatRejectsInvalidParams)
{
    RmatParams params;
    params.numVertices = 1000; // Not a power of two.
    EXPECT_THROW(generateRmat(params), FatalError);
    params.numVertices = 1024;
    params.numEdges = 0;
    EXPECT_THROW(generateRmat(params), FatalError);
    params.numEdges = 100;
    params.a = 0.5;
    params.b = 0.3;
    params.c = 0.3;
    EXPECT_THROW(generateRmat(params), FatalError);
}

TEST(Graph, PartitionByEdgesBalances)
{
    RmatParams params;
    params.numVertices = 1 << 13;
    params.numEdges = 1 << 16;
    const Graph g = generateRmat(params);
    const auto bounds = partitionByEdges(g, 4);

    ASSERT_EQ(bounds.size(), 5u);
    EXPECT_EQ(bounds.front(), 0);
    EXPECT_EQ(bounds.back(), g.numVertices);
    for (int p = 0; p < 4; ++p) {
        ASSERT_LE(bounds[p], bounds[p + 1]);
        const double share = static_cast<double>(
            g.edgesInRange(bounds[p], bounds[p + 1]));
        EXPECT_NEAR(share / static_cast<double>(g.numEdges()), 0.25,
                    0.08);
    }
}

TEST(Graph, PartitionSinglePart)
{
    const Graph g = generateRing(100, 2);
    const auto bounds = partitionByEdges(g, 1);
    EXPECT_EQ(bounds, (std::vector<std::int64_t>{0, 100}));
    EXPECT_THROW(partitionByEdges(g, 0), FatalError);
}

TEST(Graph, BalanceByWeightRespectsTargets)
{
    const Graph g = generateRing(1000, 4); // Uniform weight 4/row.
    const auto bounds =
        balanceByWeight(g.inOffsets, 0, 1000, 40, 100);
    // 40 weight / 4 per row = 10 rows per CTA.
    ASSERT_GE(bounds.size(), 2u);
    EXPECT_EQ(bounds.front(), 0);
    EXPECT_EQ(bounds.back(), 1000);
    for (std::size_t i = 1; i + 1 < bounds.size(); ++i)
        EXPECT_EQ(bounds[i] - bounds[i - 1], 10);
}

TEST(Graph, BalanceByWeightCapsRows)
{
    std::vector<std::int64_t> offsets(101, 0); // All-zero weights.
    const auto bounds = balanceByWeight(offsets, 0, 100, 1000, 25);
    // Weight never binds; the row cap does.
    ASSERT_EQ(bounds.size(), 5u);
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_EQ(bounds[i] - bounds[i - 1], 25);
}

TEST(Graph, BalanceByWeightHandlesHeavyRows)
{
    // One row heavier than the target still forms its own CTA.
    std::vector<std::int64_t> offsets = {0, 1000, 1001, 1002};
    const auto bounds = balanceByWeight(offsets, 0, 3, 10, 100);
    EXPECT_EQ(bounds.front(), 0);
    EXPECT_EQ(bounds.back(), 3);
    EXPECT_EQ(bounds[1], 1); // Heavy row isolated.
}

TEST(Graph, BalanceByWeightEmptyRange)
{
    std::vector<std::int64_t> offsets = {0, 1, 2};
    const auto bounds = balanceByWeight(offsets, 1, 1, 10, 10);
    ASSERT_EQ(bounds.size(), 2u);
    EXPECT_EQ(bounds[0], 1);
    EXPECT_EQ(bounds[1], 1);
    EXPECT_THROW(balanceByWeight(offsets, 2, 1, 10, 10), FatalError);
}
