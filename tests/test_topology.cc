/**
 * @file
 * Tests for fabric topologies (shared ports vs. statically
 * partitioned pairwise NVLink links) and the agents' sys-scope
 * flush semantics.
 */

#include "interconnect/interconnect.hh"
#include "proact/transfer_agent.hh"
#include "gpu/gpu_spec.hh"
#include "system/platform.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;

namespace {

FabricSpec
pairwiseNvlink2()
{
    FabricSpec spec = nvlink2Fabric();
    spec.topology = FabricTopology::PairwiseLinks;
    return spec;
}

Interconnect::Request
request(int src, int dst, std::uint64_t bytes)
{
    Interconnect::Request req;
    req.src = src;
    req.dst = dst;
    req.bytes = bytes;
    req.writeGranularity = 256;
    return req;
}

} // namespace

TEST(Topology, PairLinkAccessorsGuarded)
{
    EventQueue eq;
    Interconnect shared(eq, nvlink2Fabric(), 4);
    EXPECT_FALSE(shared.pairwise());
    EXPECT_THROW(shared.pairLink(0, 1), PanicError);

    Interconnect pairwise(eq, pairwiseNvlink2(), 4);
    EXPECT_TRUE(pairwise.pairwise());
    EXPECT_NO_THROW(pairwise.pairLink(0, 1));
    EXPECT_THROW(pairwise.pairLink(0, 0), PanicError);
    EXPECT_THROW(pairwise.pairLink(0, 4), PanicError);
}

TEST(Topology, PairLinksCarryFractionalBandwidth)
{
    EventQueue eq;
    Interconnect fab(eq, pairwiseNvlink2(), 4);
    // Each directed pair gets egress/3.
    EXPECT_NEAR(fab.pairLink(0, 1).rate(),
                nvlink2Fabric().egressRate() / 3.0, 1.0);
}

TEST(Topology, SinglePairFlowIsSlowerThanSharedPorts)
{
    // A lone src->dst stream uses only that pair's links under the
    // pairwise topology, but the whole port under shared ports.
    EventQueue eq1;
    Interconnect shared(eq1, nvlink2Fabric(), 4);
    const Tick t_shared = shared.transfer(request(0, 1, 8 << 20));

    EventQueue eq2;
    Interconnect pairwise(eq2, pairwiseNvlink2(), 4);
    const Tick t_pair = pairwise.transfer(request(0, 1, 8 << 20));

    EXPECT_GT(t_pair, 2 * t_shared);
}

TEST(Topology, BroadcastAggregateMatchesSharedPorts)
{
    // Broadcasting to every peer exercises all links, so both
    // topologies finish in (approximately) the same time.
    auto broadcast_end = [](const FabricSpec &spec) {
        EventQueue eq;
        Interconnect fab(eq, spec, 4);
        Tick last = 0;
        for (int dst = 1; dst < 4; ++dst)
            last = std::max(last,
                            fab.transfer(request(0, dst, 8 << 20)));
        return last;
    };
    const Tick shared = broadcast_end(nvlink2Fabric());
    const Tick pairwise = broadcast_end(pairwiseNvlink2());
    // Pairwise streams concurrently; shared ports serialize on the
    // egress but at 3x the pair rate. Same aggregate within latency
    // differences.
    EXPECT_NEAR(static_cast<double>(pairwise),
                static_cast<double>(shared),
                static_cast<double>(shared) * 0.05);
}

TEST(Topology, PairwiseStatsAggregateAcrossLinks)
{
    EventQueue eq;
    Interconnect fab(eq, pairwiseNvlink2(), 4);
    fab.transfer(request(0, 1, 4096));
    fab.transfer(request(2, 3, 4096));
    eq.run();
    EXPECT_EQ(fab.totalPayloadBytes(), 8192u);
    EXPECT_GT(fab.totalWireBytes(), 8192u);
    fab.resetStats();
    EXPECT_EQ(fab.totalPayloadBytes(), 0u);
}

TEST(Topology, SingleGpuPairwiseHasNoLinks)
{
    EventQueue eq;
    EXPECT_NO_THROW(Interconnect(eq, pairwiseNvlink2(), 1));
}

TEST(Topology, MultiNodeTierAccessors)
{
    EventQueue eq;
    const PlatformSpec platform = multiNodePlatform(2, 4);
    Interconnect fab(eq, platform.fabric, platform.numGpus);
    ASSERT_TRUE(fab.pairwise());

    // Node membership: GPUs 0..3 vs 4..7.
    EXPECT_FALSE(fab.interNodePair(0, 3));
    EXPECT_TRUE(fab.interNodePair(0, 4));
    EXPECT_TRUE(fab.interNodePair(7, 0));

    // The network tier is slower, farther, and coarser than the
    // chassis tier — and the per-pair channels carry exactly that.
    EXPECT_LT(fab.nominalPairRate(0, 4), fab.nominalPairRate(0, 1));
    EXPECT_GT(fab.pairLatency(0, 4), fab.pairLatency(0, 1));
    EXPECT_GT(fab.pairPacketModel(0, 4).maxPayloadBytes,
              fab.pairPacketModel(0, 1).maxPayloadBytes);
    EXPECT_EQ(fab.pairLink(0, 4).rate(), fab.nominalPairRate(0, 4));
    EXPECT_EQ(fab.pairLink(0, 4).latency(), fab.pairLatency(0, 4));

    // The base latency stays the intra (minimum) latency: it is the
    // sharded engine's conservative lookahead floor.
    EXPECT_EQ(platform.fabric.latency, nvswitchFabric().latency);
    EXPECT_GE(platform.fabric.interLatency, platform.fabric.latency);
}

namespace {

struct FlushHarness
{
    MultiGpuSystem system{voltaPlatform()};
    int deliveries = 0;
    Tick lastDelivery = 0;

    TransferAgent::Context
    context(TransferMechanism mech)
    {
        TransferAgent::Context ctx;
        ctx.system = &system;
        ctx.gpuId = 0;
        ctx.config.mechanism = mech;
        ctx.config.chunkBytes = 64 * KiB;
        ctx.config.transferThreads = 2048;
        ctx.onDelivered = [this](std::uint64_t) {
            ++deliveries;
            lastDelivery = system.now();
        };
        return ctx;
    }
};

} // namespace

TEST(Flush, PollingFlushBypassesPollInterval)
{
    auto last_delivery = [](bool flush) {
        FlushHarness h;
        PollingAgent agent(h.context(TransferMechanism::Polling));
        agent.chunkReady(0, 4096);
        if (flush)
            agent.flush(); // Dispatch now, not at the next poll.
        h.system.run();
        EXPECT_EQ(h.deliveries, 3);
        return h.lastDelivery;
    };
    const Tick flushed = last_delivery(true);
    const Tick polled = last_delivery(false);
    EXPECT_LE(flushed + voltaSpec().pollInterval, polled + 1);
}

TEST(Flush, CdpFlushDrainsBeyondWindow)
{
    FlushHarness h;
    CdpAgent agent(h.context(TransferMechanism::Cdp));
    const int chunks = 2 * CdpAgent::maxConcurrentChildren;
    for (int c = 0; c < chunks; ++c)
        agent.chunkReady(c, 4096);
    agent.flush();
    h.system.run();
    EXPECT_EQ(h.deliveries, chunks * 3);
    EXPECT_EQ(agent.activeChildren(), 0);
}

TEST(Flush, FlushOnEmptyAgentIsNoop)
{
    FlushHarness h;
    PollingAgent polling(h.context(TransferMechanism::Polling));
    CdpAgent cdp(h.context(TransferMechanism::Cdp));
    HardwareAgent hw(h.context(TransferMechanism::Hardware));
    EXPECT_NO_THROW(polling.flush());
    EXPECT_NO_THROW(cdp.flush());
    EXPECT_NO_THROW(hw.flush());
    h.system.run();
    EXPECT_EQ(h.deliveries, 0);
}
