/**
 * @file
 * Tests for kernels producing multiple PROACT-enabled regions per
 * iteration (Listing 1's region1, region2, ...).
 */

#include "harness/paradigm.hh"
#include "proact/region.hh"
#include "proact/runtime.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;

namespace {

/**
 * Each iteration every GPU produces two regions of different sizes
 * (think: solution vector + residual norm block), with contiguous
 * CTA mappings on both.
 */
class TwoRegionWorkload : public Workload
{
  public:
    static constexpr std::uint64_t regionABytes = 256 * KiB;
    static constexpr std::uint64_t regionBBytes = 64 * KiB;
    static constexpr int ctasPerGpu = 16;
    static constexpr int iterations = 2;

    std::string name() const override { return "TwoRegion"; }

    void setup(int num_gpus) override { _numGpus = num_gpus; }

    int numIterations() const override { return iterations; }

    TrafficProfile
    traffic() const override
    {
        return TrafficProfile{256, true};
    }

    bool verify() const override { return true; }

  protected:
    Phase
    buildPhase(int) override
    {
        Phase p;
        p.perGpu.resize(_numGpus);
        for (int g = 0; g < _numGpus; ++g) {
            GpuPhaseWork &work = p.perGpu[g];
            work.kernel.name = "two_region";
            work.kernel.numCtas = ctasPerGpu;
            work.kernel.body = [](const CtaContext &) {
                CtaWork w;
                w.localBytes = 32 * KiB;
                return w;
            };
            work.bytesProduced = regionABytes;
            work.ctaRange =
                mappings::contiguous(regionABytes, ctasPerGpu);
            work.extraOutputs.push_back(RegionOutput{
                regionBBytes,
                mappings::contiguous(regionBBytes, ctasPerGpu)});
        }
        return p;
    }
};

} // namespace

TEST(MultiRegion, AllOutputsEnumeratesNonEmptyRegions)
{
    TwoRegionWorkload workload;
    workload.setup(2);
    const Phase phase = workload.phase(0);
    const auto outputs = phase.perGpu[0].allOutputs();
    ASSERT_EQ(outputs.size(), 2u);
    EXPECT_EQ(outputs[0].bytesProduced,
              TwoRegionWorkload::regionABytes);
    EXPECT_EQ(outputs[1].bytesProduced,
              TwoRegionWorkload::regionBBytes);
    EXPECT_EQ(phase.perGpu[0].totalBytesProduced(),
              TwoRegionWorkload::regionABytes
                  + TwoRegionWorkload::regionBBytes);
}

TEST(MultiRegion, DecoupledTransfersBothRegions)
{
    for (const auto mech :
         {TransferMechanism::Polling, TransferMechanism::Cdp,
          TransferMechanism::Hardware}) {
        TwoRegionWorkload workload;
        workload.setup(4);
        MultiGpuSystem system(voltaPlatform());
        system.setFunctional(false);
        ProactRuntime::Options options;
        options.config.mechanism = mech;
        options.config.chunkBytes = 32 * KiB;
        ProactRuntime runtime(system, options);
        runtime.run(workload);

        const std::uint64_t per_iter = 4ull * 3ull
            * (TwoRegionWorkload::regionABytes
               + TwoRegionWorkload::regionBBytes);
        EXPECT_EQ(system.fabric().totalPayloadBytes(),
                  per_iter * TwoRegionWorkload::iterations)
            << mechanismName(mech);
    }
}

TEST(MultiRegion, InlineMirrorsBothRegions)
{
    TwoRegionWorkload workload;
    workload.setup(4);
    MultiGpuSystem system(voltaPlatform());
    system.setFunctional(false);
    ProactRuntime::Options options;
    options.config.mechanism = TransferMechanism::Inline;
    ProactRuntime runtime(system, options);
    runtime.run(workload);

    const std::uint64_t per_iter = 4ull * 3ull
        * (TwoRegionWorkload::regionABytes
           + TwoRegionWorkload::regionBBytes);
    EXPECT_EQ(system.fabric().totalPayloadBytes(),
              per_iter * TwoRegionWorkload::iterations);
}

TEST(MultiRegion, BaselinesDuplicateTotalBytes)
{
    for (const Paradigm p :
         {Paradigm::CudaMemcpy, Paradigm::UnifiedMemory}) {
        TwoRegionWorkload workload;
        workload.setup(4);
        MultiGpuSystem system(voltaPlatform());
        system.setFunctional(false);
        makeRuntime(p, system)->run(workload);
        EXPECT_GT(system.fabric().totalPayloadBytes(), 0u)
            << paradigmName(p);
    }
}

TEST(MultiRegion, CountersTrackedIndependentlyPerRegion)
{
    TwoRegionWorkload workload;
    workload.setup(2);
    MultiGpuSystem system(voltaPlatform().withGpuCount(2));
    system.setFunctional(false);
    ProactRuntime::Options options;
    options.config.mechanism = TransferMechanism::Polling;
    options.config.chunkBytes = 32 * KiB;
    ProactRuntime runtime(system, options);
    runtime.run(workload);

    // Each CTA decrements one counter in each region it writes.
    EXPECT_DOUBLE_EQ(
        runtime.stats().get("counter_decrements"),
        2.0 /* gpus */ * 2.0 /* regions */
            * TwoRegionWorkload::ctasPerGpu
            * TwoRegionWorkload::iterations);
}

TEST(MultiRegion, FootprintScaleAppliesToExtraOutputs)
{
    TwoRegionWorkload workload;
    workload.setFootprintScale(4);
    workload.setup(2);
    const Phase phase = workload.phase(0);
    const auto outputs = phase.perGpu[0].allOutputs();
    ASSERT_EQ(outputs.size(), 2u);
    EXPECT_EQ(outputs[1].bytesProduced,
              4 * TwoRegionWorkload::regionBBytes);
    EXPECT_EQ(outputs[1].ctaRange(0).hi * TwoRegionWorkload::ctasPerGpu,
              4 * TwoRegionWorkload::regionBBytes
                  * TwoRegionWorkload::ctasPerGpu
                  / TwoRegionWorkload::ctasPerGpu);
}

TEST(MultiRegion, EmptyPrimaryWithExtraStillTransfers)
{
    class ExtraOnly : public TwoRegionWorkload
    {
      protected:
        Phase
        buildPhase(int iter) override
        {
            Phase p = TwoRegionWorkload::buildPhase(iter);
            for (auto &work : p.perGpu) {
                work.bytesProduced = 0;
                work.ctaRange = nullptr;
            }
            return p;
        }
    };

    ExtraOnly workload;
    workload.setup(2);
    MultiGpuSystem system(voltaPlatform().withGpuCount(2));
    system.setFunctional(false);
    ProactRuntime::Options options;
    options.config.mechanism = TransferMechanism::Polling;
    options.config.chunkBytes = 32 * KiB;
    ProactRuntime runtime(system, options);
    runtime.run(workload);
    EXPECT_EQ(system.fabric().totalPayloadBytes(),
              2ull * 1ull * TwoRegionWorkload::regionBBytes
                  * TwoRegionWorkload::iterations);
}
