/**
 * @file
 * DGX-2 scale tests for the fault-adaptive stack: topology
 * invariants of the 16-GPU NVSwitch fabric (every directed pair
 * reachable even with its direct link dead, redundant disjoint relay
 * candidates, bandwidth symmetry), multi-relay BFS detours when the
 * single-relay fan-out is wiped out, chassis-level fault-plan
 * builders, epoch-keyed plan-cache invalidation, and end-to-end
 * delivery across a dead baseboard.
 */

#include "health/link_health.hh"
#include "interconnect/rerouter.hh"
#include "proact/transfer_agent.hh"
#include "sim/logging.hh"
#include "system/platform.hh"

#include <gtest/gtest.h>

using namespace proact;

namespace {

constexpr int numGpus = 16;

/** Drive a link into DOWN through the monitor's own hysteresis. */
void
killLink(LinkHealthMonitor &mon, int src, int dst)
{
    for (int i = 0; i < mon.policy().downAfterLosses; ++i)
        mon.recordLoss(src, dst);
    ASSERT_EQ(mon.linkState(src, dst), LinkState::Down);
}

/** Walk a DOWN link back to HEALTHY with a clean delivery streak. */
void
reviveLink(LinkHealthMonitor &mon, int src, int dst)
{
    for (int i = 0; i < mon.policy().recoverAfterDeliveries + 1; ++i)
        mon.recordDelivery(src, dst, 64 * KiB, 0, 1);
    ASSERT_EQ(mon.linkState(src, dst), LinkState::Healthy);
}

/** Agent-level harness mirroring tests/test_health.cc. */
struct Dgx2Harness
{
    MultiGpuSystem system;
    int deliveries = 0;
    Tick lastDelivery = 0;
    StatSet stats;

    Dgx2Harness() : system(dgx2Platform()) {}

    TransferAgent::Context
    context(RetryPolicy retry)
    {
        TransferAgent::Context ctx;
        ctx.system = &system;
        ctx.gpuId = 0;
        ctx.config.mechanism = TransferMechanism::Polling;
        ctx.config.chunkBytes = 64 * KiB;
        ctx.config.transferThreads = 2048;
        ctx.config.retry = retry;
        ctx.stats = &stats;
        ctx.onDelivered = [this](std::uint64_t) {
            ++deliveries;
            lastDelivery = system.now();
        };
        return ctx;
    }

    int peers() const { return system.numGpus() - 1; }
};

} // namespace

TEST(Dgx2TopologyTest, PlatformShape)
{
    const PlatformSpec p = dgx2Platform();
    EXPECT_EQ(p.numGpus, numGpus);
    EXPECT_EQ(dgx2GpusPerBaseboard * 2, numGpus);
    EXPECT_EQ(dgx2Baseboard(0).front(), 0);
    EXPECT_EQ(dgx2Baseboard(0).back(), 7);
    EXPECT_EQ(dgx2Baseboard(1).front(), 8);
    EXPECT_EQ(dgx2Baseboard(1).back(), 15);
    EXPECT_THROW(dgx2Baseboard(2), FatalError);
}

TEST(Dgx2TopologyTest, AllDirectedPairsSurviveTheirDirectLinkDying)
{
    // For every one of the 16*15 = 240 directed pairs: kill that
    // pair's direct link, and the rerouter must still plan a complete
    // detour (every leg off the dead wire, fractions summing to 1).
    // The link is then revived before the next pair, which also
    // exercises DOWN -> HEALTHY recovery 240 times.
    MultiGpuSystem system(dgx2Platform());
    LinkHealthMonitor &mon = system.enableHealth();
    Rerouter &rr = system.enableReroute();

    for (int s = 0; s < numGpus; ++s) {
        for (int d = 0; d < numGpus; ++d) {
            if (s == d)
                continue;
            killLink(mon, s, d);

            const auto &legs = rr.plan(s, d);
            ASSERT_FALSE(legs.empty()) << s << "->" << d;
            double total = 0.0;
            for (const auto &leg : legs) {
                EXPECT_FALSE(leg.direct()) << s << "->" << d;
                total += leg.fraction;
            }
            EXPECT_NEAR(total, 1.0, 1e-9) << s << "->" << d;

            reviveLink(mon, s, d);
        }
    }
}

TEST(Dgx2TopologyTest, EveryPairHasRedundantDisjointRelays)
{
    // Distinct single-relay candidates are vertex-disjoint detours by
    // construction; the ISSUE floor is two per pair even after the
    // direct link died (a healthy DGX-2 offers all 14).
    MultiGpuSystem system(dgx2Platform());
    LinkHealthMonitor &mon = system.enableHealth();
    Rerouter &rr = system.enableReroute();

    for (int s = 0; s < numGpus; ++s) {
        for (int d = 0; d < numGpus; ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(rr.relayCandidates(s, d).size(),
                      static_cast<std::size_t>(numGpus - 2));
        }
    }

    killLink(mon, 0, 1);
    EXPECT_GE(rr.relayCandidates(0, 1).size(), 2u);
}

TEST(Dgx2TopologyTest, BandwidthIsSymmetricAcrossAllPairs)
{
    // The NVSwitch fabric is non-blocking and symmetric: an isolated
    // transfer of the same size must take exactly as long in both
    // directions of every pair. Each probe runs on a fresh system so
    // earlier bookings can't skew the later measurements.
    auto isolated_duration = [](int src, int dst) {
        MultiGpuSystem system(dgx2Platform());
        Interconnect::Request req;
        req.src = src;
        req.dst = dst;
        req.bytes = 256 * KiB;
        req.writeGranularity = static_cast<std::uint32_t>(
            system.fabric().packetModel().maxPayloadBytes);
        req.threads = 2048;
        return system.fabric().transfer(req);
    };

    const Tick reference = isolated_duration(0, 1);
    EXPECT_GT(reference, 0);
    for (int s = 0; s < numGpus; ++s) {
        for (int d = s + 1; d < numGpus; ++d) {
            const Tick forward = isolated_duration(s, d);
            const Tick reverse = isolated_duration(d, s);
            EXPECT_EQ(forward, reverse) << s << "<->" << d;
            EXPECT_EQ(forward, reference) << s << "->" << d;
        }
    }
}

TEST(Dgx2RerouteTest, MultiRelayDetourWhenEverySingleRelayIsDead)
{
    // Wipe out every single-relay candidate for 0 -> 2: gpu0 can only
    // reach gpu1, and gpu1 cannot reach gpu2. The shortest surviving
    // route needs two relays (0 -> 1 -> x -> 2); the BFS fallback
    // must find it, deterministically picking the lowest-id x = 3.
    MultiGpuSystem system(dgx2Platform());
    LinkHealthMonitor &mon = system.enableHealth();
    Rerouter &rr = system.enableReroute();

    for (int k = 2; k < numGpus; ++k)
        killLink(mon, 0, k);
    killLink(mon, 1, 2);

    const auto &legs = rr.plan(0, 2);
    ASSERT_EQ(legs.size(), 1u);
    ASSERT_EQ(legs[0].vias.size(), 2u);
    EXPECT_EQ(legs[0].vias[0], 1);
    EXPECT_EQ(legs[0].vias[1], 3);
    EXPECT_DOUBLE_EQ(legs[0].fraction, 1.0);

    // The planned chain actually delivers, and exactly once.
    int completions = 0;
    Interconnect::Request req;
    req.src = 0;
    req.dst = 2;
    req.bytes = 64 * KiB;
    req.writeGranularity = static_cast<std::uint32_t>(
        system.fabric().packetModel().maxPayloadBytes);
    req.threads = 2048;
    req.onComplete = [&completions] { ++completions; };
    rr.send([&](const Interconnect::Request &leg) {
        return system.fabric().transfer(leg);
    }, req);
    system.run();

    EXPECT_EQ(completions, 1);
    EXPECT_GT(rr.stats().get("reroute.relay_hops"), 1.0);
    EXPECT_GT(rr.stats().get("reroute.detours"), 0.0);
}

TEST(Dgx2FaultPlanTest, ChassisBuildersExpandCorrectly)
{
    {
        // Three of six planes: every directed pair degrades by 1/2,
        // correlated as one group.
        FaultPlan plan;
        dgx2DownSwitchPlanes(plan, 0, maxTick,
                             dgx2NumSwitchPlanes / 2);
        EXPECT_NO_THROW(plan.validate(numGpus));
        EXPECT_EQ(plan.episodes.size(),
                  static_cast<std::size_t>(numGpus * (numGpus - 1)));
        EXPECT_EQ(plan.numGroups(), 1);
        for (const auto &e : plan.episodes) {
            EXPECT_EQ(e.kind, FaultKind::LinkDegrade);
            EXPECT_DOUBLE_EQ(e.severity, 0.5);
        }
    }
    {
        // All six planes dead is a dead chassis, not a degradation.
        FaultPlan plan;
        EXPECT_THROW(
            dgx2DownSwitchPlanes(plan, 0, maxTick,
                                 dgx2NumSwitchPlanes),
            FatalError);
    }
    {
        // Board 1 down: every intra-board pair of GPUs 8..15 is dead
        // (8 * 7 directed pairs); cross-board pairs are untouched.
        FaultPlan plan;
        dgx2DownBaseboard(plan, 0, maxTick, 1);
        EXPECT_NO_THROW(plan.validate(numGpus));
        EXPECT_EQ(plan.episodes.size(),
                  static_cast<std::size_t>(dgx2GpusPerBaseboard
                                           * (dgx2GpusPerBaseboard
                                              - 1)));
        for (const auto &e : plan.episodes) {
            EXPECT_EQ(e.kind, FaultKind::LinkDown);
            EXPECT_GE(e.src, dgx2GpusPerBaseboard);
            EXPECT_GE(e.dst, dgx2GpusPerBaseboard);
        }
    }
}

TEST(Dgx2FaultPlanTest, ChassisBuildersComposeWithNodeOffset)
{
    // The same chassis builders target the second node of a 2x16
    // platform through the first_gpu offset.
    const int offset = numGpus;
    EXPECT_EQ(dgx2Baseboard(0, offset).front(), 16);
    EXPECT_EQ(dgx2Baseboard(0, offset).back(), 23);
    EXPECT_EQ(dgx2Baseboard(1, offset).front(), 24);
    EXPECT_EQ(dgx2Baseboard(1, offset).back(), 31);
    EXPECT_THROW(dgx2Baseboard(0, -1), FatalError);

    {
        FaultPlan plan;
        dgx2DownBaseboard(plan, 0, maxTick, 1, offset);
        EXPECT_NO_THROW(plan.validate(2 * numGpus));
        EXPECT_EQ(plan.episodes.size(),
                  static_cast<std::size_t>(dgx2GpusPerBaseboard
                                           * (dgx2GpusPerBaseboard
                                              - 1)));
        for (const auto &e : plan.episodes) {
            EXPECT_GE(e.src, offset + dgx2GpusPerBaseboard);
            EXPECT_GE(e.dst, offset + dgx2GpusPerBaseboard);
            EXPECT_LT(e.src, 2 * numGpus);
            EXPECT_LT(e.dst, 2 * numGpus);
        }
        // An offset plan names GPUs a single chassis does not have.
        EXPECT_THROW(plan.validate(numGpus), FatalError);
    }
    {
        FaultPlan plan;
        dgx2DownSwitchPlanes(plan, 0, maxTick,
                             dgx2NumSwitchPlanes / 2, offset);
        EXPECT_NO_THROW(plan.validate(2 * numGpus));
        EXPECT_EQ(plan.episodes.size(),
                  static_cast<std::size_t>(numGpus * (numGpus - 1)));
        for (const auto &e : plan.episodes) {
            EXPECT_GE(e.src, offset);
            EXPECT_GE(e.dst, offset);
        }
    }
}

TEST(Dgx2FaultPlanTest, NodeDownBuilder)
{
    const PlatformSpec platform = multiNodePlatform(2, numGpus);
    FaultPlan plan;
    nodeDown(plan, platform, 0, maxTick, 1);
    EXPECT_NO_THROW(plan.validate(platform.numGpus));
    EXPECT_EQ(plan.episodes.size(), static_cast<std::size_t>(numGpus));
    for (const auto &e : plan.episodes) {
        EXPECT_EQ(e.kind, FaultKind::GpuDown);
        EXPECT_GE(e.gpu, numGpus);
        EXPECT_LT(e.gpu, 2 * numGpus);
    }

    FaultPlan bad;
    EXPECT_THROW(nodeDown(bad, dgx2Platform(), 0, maxTick, 0),
                 FatalError);
    EXPECT_THROW(nodeDown(bad, platform, 0, maxTick, 2), FatalError);
    EXPECT_THROW(nodeDown(bad, platform, 0, maxTick, -1), FatalError);
}

TEST(Dgx2RerouteTest, EpochCacheInvalidatesExactly)
{
    MultiGpuSystem system(dgx2Platform());
    LinkHealthMonitor &mon = system.enableHealth();
    ReroutePolicy policy;
    policy.planTtl = 0; // Every relay-side change recomputes.
    Rerouter &rr = system.enableReroute(policy);

    auto computes = [&rr] {
        return rr.stats().get("reroute.plan_computes");
    };
    auto hits = [&rr] {
        return rr.stats().get("reroute.plan_cache_hits");
    };

    // First lookup computes, the second is served from the cache.
    rr.plan(0, 1);
    EXPECT_DOUBLE_EQ(computes(), 1.0);
    rr.plan(0, 1);
    EXPECT_DOUBLE_EQ(computes(), 1.0);
    EXPECT_DOUBLE_EQ(hits(), 1.0);

    // A transition on an unrelated link (4 -> 5 touches neither row 0
    // nor column 1) must not invalidate the healthy direct plan.
    killLink(mon, 4, 5);
    rr.plan(0, 1);
    EXPECT_DOUBLE_EQ(computes(), 1.0);

    // A transition of the direct link itself invalidates immediately.
    killLink(mon, 0, 1);
    const auto &legs = rr.plan(0, 1);
    EXPECT_DOUBLE_EQ(computes(), 2.0);
    EXPECT_FALSE(legs[0].direct());

    // The plan is now relay-based, so it reads row 0: a transition on
    // another 0 -> x link invalidates it (relay x just died) ...
    killLink(mon, 0, 9);
    rr.plan(0, 1);
    EXPECT_DOUBLE_EQ(computes(), 3.0);

    // ... but a second unrelated transition still does not.
    killLink(mon, 4, 6);
    rr.plan(0, 1);
    EXPECT_DOUBLE_EQ(computes(), 3.0);

    // Bookkeeping: every lookup was either a compute or a hit.
    EXPECT_DOUBLE_EQ(rr.stats().get("reroute.plan_requests"),
                     computes() + hits());
}

TEST(Dgx2RerouteTest, DeadBaseboardTrafficLandsExactlyOnce)
{
    // gpu0 sits on the dead board: its seven intra-board links are
    // gone, the eight cross-board ones survive. Reroute-aware retry
    // must land every chunk on every peer exactly once, moving the
    // intra-board payload through cross-board relays.
    Dgx2Harness h;
    h.system.enableHealth();
    Rerouter &rr = h.system.enableReroute();

    FaultPlan plan;
    dgx2DownBaseboard(plan, 0, maxTick, 0);
    h.system.installFaults(std::move(plan));

    RetryPolicy retry;
    retry.enabled = true;
    retry.maxAttempts = 8;
    retry.rerouteAfterAttempts = 2;
    PollingAgent agent(h.context(retry));

    const int chunks = 8;
    auto &eq = h.system.eventQueue();
    for (int c = 0; c < chunks; ++c) {
        eq.schedule(static_cast<Tick>(c) * 50 * ticksPerMicrosecond,
                    [&agent, c] { agent.chunkReady(c, 64 * KiB); });
    }
    h.system.run();

    EXPECT_EQ(h.deliveries, chunks * h.peers());
    EXPECT_GT(rr.stats().get("reroute.bytes_detoured"), 0.0);
    EXPECT_GT(rr.stats().get("reroute.plan_cache_hits"),
              rr.stats().get("reroute.plan_computes"));
}
