/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include "sim/random.hh"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace proact;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of 10k uniforms is within ~4 sigma of 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(99);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.between(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator)
{
    static_assert(Rng::min() == 0);
    static_assert(Rng::max() == ~std::uint64_t(0));
    Rng rng(1);
    (void)rng();
}
