/**
 * @file
 * Unit tests for the compile-time-style instrumentation layer
 * (paper Listing 1).
 */

#include "proact/instrumentation.hh"
#include "tests/toy_workload.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;
using proact::test::ToyWorkload;

namespace {

struct Fixture
{
    MultiGpuSystem system{voltaPlatform()};
    StatSet stats;
    int deliveries = 0;
    ToyWorkload workload;
    GpuPhaseWork work;

    Fixture()
    {
        workload.setup(4);
        work = workload.phase(0).perGpu[0];
    }

    TransferAgent::Context
    agentContext()
    {
        TransferAgent::Context ctx;
        ctx.system = &system;
        ctx.gpuId = 0;
        ctx.config.mechanism = TransferMechanism::Hardware;
        ctx.config.chunkBytes = 64 * KiB;
        ctx.stats = &stats;
        ctx.onDelivered = [this](std::uint64_t) { ++deliveries; };
        return ctx;
    }
};

} // namespace

TEST(Instrumentation, DecoupledWiresTrackingHooks)
{
    Fixture f;
    RegionTracker tracker(f.work.bytesProduced, 64 * KiB);
    tracker.initCounters(f.work.kernel.numCtas, f.work.ctaRange);
    HardwareAgent agent(f.agentContext());

    bool kernel_done = false;
    KernelLaunch launch = instrumentDecoupled(
        f.work, tracker, agent, f.system.gpu(0), &f.stats,
        [&] { kernel_done = true; });

    // Hardware agents skip the software atomic path.
    EXPECT_FALSE(launch.instrumented);
    EXPECT_EQ(launch.extraCtaTicks, 0u);
    EXPECT_DOUBLE_EQ(launch.hbmTrafficOverhead, 0.0);

    f.system.gpu(0).launch(launch);
    f.system.run();
    EXPECT_TRUE(kernel_done);
    EXPECT_TRUE(tracker.allReady());
    EXPECT_EQ(f.deliveries,
              tracker.numChunks() * (f.system.numGpus() - 1));
    EXPECT_DOUBLE_EQ(f.stats.get("counter_decrements"),
                     f.work.kernel.numCtas);
}

TEST(Instrumentation, SoftwareAgentsPayTrackingCosts)
{
    Fixture f;
    RegionTracker tracker(f.work.bytesProduced, 64 * KiB);
    tracker.initCounters(f.work.kernel.numCtas, f.work.ctaRange);
    auto ctx = f.agentContext();
    ctx.config.mechanism = TransferMechanism::Polling;
    PollingAgent agent(ctx);

    const KernelLaunch launch = instrumentDecoupled(
        f.work, tracker, agent, f.system.gpu(0), &f.stats, nullptr);
    EXPECT_TRUE(launch.instrumented);
    EXPECT_EQ(launch.extraCtaTicks, trackingFenceCost);
    EXPECT_DOUBLE_EQ(launch.hbmTrafficOverhead, trackingHbmOverhead);
}

TEST(Instrumentation, AtomicFanoutScalesDecrementTraffic)
{
    Fixture f;
    RegionTracker tracker(f.work.bytesProduced, 64 * KiB);
    tracker.initCounters(f.work.kernel.numCtas, f.work.ctaRange);
    auto ctx = f.agentContext();
    ctx.config.mechanism = TransferMechanism::Polling;
    PollingAgent agent(ctx);

    KernelLaunch launch = instrumentDecoupled(
        f.work, tracker, agent, f.system.gpu(0), &f.stats, nullptr,
        /*atomic_fanout=*/16);
    f.system.gpu(0).launch(launch);
    f.system.run();
    EXPECT_DOUBLE_EQ(f.stats.get("counter_decrements"),
                     16.0 * f.work.kernel.numCtas);
}

TEST(Instrumentation, InlineMirrorsWritesToPeers)
{
    Fixture f;
    bool kernel_done = false;
    std::uint64_t delivered_bytes = 0;
    int deliveries = 0;
    KernelLaunch launch = instrumentInline(
        f.work, f.system, 0, /*store_bytes=*/8,
        /*elide_transfers=*/false,
        [&](std::uint64_t bytes) {
            ++deliveries;
            delivered_bytes += bytes;
        },
        &f.stats, [&] { kernel_done = true; });

    EXPECT_FALSE(launch.instrumented);
    f.system.gpu(0).launch(launch);
    f.system.run();

    EXPECT_TRUE(kernel_done);
    EXPECT_EQ(deliveries,
              f.work.kernel.numCtas * (f.system.numGpus() - 1));
    EXPECT_EQ(delivered_bytes,
              f.work.bytesProduced * (f.system.numGpus() - 1));
    // 8-byte effective stores hit the wire with heavy packet
    // overhead: wire >> payload.
    EXPECT_GT(f.system.fabric().totalWireBytes(),
              4 * f.system.fabric().totalPayloadBytes());
}

TEST(Instrumentation, InlineElideSkipsFabric)
{
    Fixture f;
    int deliveries = 0;
    KernelLaunch launch = instrumentInline(
        f.work, f.system, 0, 256, /*elide_transfers=*/true,
        [&](std::uint64_t) { ++deliveries; }, &f.stats, nullptr);
    f.system.gpu(0).launch(launch);
    f.system.run();
    EXPECT_EQ(deliveries,
              f.work.kernel.numCtas * (f.system.numGpus() - 1));
    EXPECT_EQ(f.system.fabric().totalPayloadBytes(), 0u);
}

TEST(Instrumentation, RejectsMissingFootprints)
{
    Fixture f;
    GpuPhaseWork work = f.work;
    work.ctaRange = nullptr;
    RegionTracker tracker(1024, 1024);
    HardwareAgent agent(f.agentContext());
    EXPECT_THROW(instrumentDecoupled(work, tracker, agent,
                                     f.system.gpu(0), nullptr,
                                     nullptr),
                 FatalError);
    EXPECT_THROW(instrumentInline(work, f.system, 0, 256, false,
                                  nullptr, nullptr, nullptr),
                 FatalError);
    EXPECT_THROW(instrumentInline(f.work, f.system, 0, 0, false,
                                  nullptr, nullptr, nullptr),
                 FatalError);
}
