/**
 * @file
 * Unit tests for the serializing bandwidth channel.
 */

#include "sim/channel.hh"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace proact;

namespace {

/** 1 GB/s: 1 byte per millisecond of... no — 1e9 B/s. */
constexpr double gigabytePerSec = 1.0e9;

} // namespace

TEST(Channel, RejectsNonPositiveRate)
{
    EventQueue eq;
    EXPECT_THROW(Channel(eq, "bad", 0.0), std::invalid_argument);
    EXPECT_THROW(Channel(eq, "bad", -1.0), std::invalid_argument);
}

TEST(Channel, ServiceTimeMatchesRate)
{
    EventQueue eq;
    Channel ch(eq, "ch", gigabytePerSec);
    // 1e9 B at 1e9 B/s = 1 s = 1e12 ticks.
    const Tick done = ch.submit(1000000000, 1000000000);
    EXPECT_EQ(done, ticksPerSecond);
}

TEST(Channel, LatencyDelaysDeliveryNotOccupancy)
{
    EventQueue eq;
    Channel ch(eq, "ch", gigabytePerSec, 500);
    const Tick d1 = ch.submit(1000, 1000);
    // Service = 1000 ns = 1e6 ticks, delivery 500 ticks later.
    EXPECT_EQ(d1, 1000 * ticksPerNanosecond + 500);
    // Occupancy ends at service end, so the next submission starts
    // at 1e6, not 1e6+500.
    const Tick d2 = ch.submit(1000, 1000);
    EXPECT_EQ(d2, 2000 * ticksPerNanosecond + 500);
}

TEST(Channel, FifoQueueing)
{
    EventQueue eq;
    Channel ch(eq, "ch", gigabytePerSec);
    const Tick d1 = ch.submit(500, 500);
    const Tick d2 = ch.submit(500, 500);
    EXPECT_EQ(d2, 2 * d1);
    EXPECT_EQ(ch.busyUntil(), d2);
}

TEST(Channel, SubmitAfterHonorsNotBefore)
{
    EventQueue eq;
    Channel ch(eq, "ch", gigabytePerSec);
    const Tick done = ch.submitAfter(10000, 1000, 1000);
    EXPECT_EQ(done, 10000 + 1000 * ticksPerNanosecond);
}

TEST(Channel, NextStartMatchesSubmitAfter)
{
    EventQueue eq;
    Channel ch(eq, "ch", gigabytePerSec);
    ch.submit(1000, 1000);
    const Tick start = ch.nextStart(0);
    EXPECT_EQ(start, ch.busyUntil());
    const Tick start_late = ch.nextStart(start + 77);
    EXPECT_EQ(start_late, start + 77);
}

TEST(Channel, DeliveryCallbackFiresAtDeliveryTick)
{
    EventQueue eq;
    Channel ch(eq, "ch", gigabytePerSec, 123);
    Tick seen = 0;
    const Tick expected =
        ch.submit(1000, 1000, [&] { seen = eq.curTick(); });
    eq.run();
    EXPECT_EQ(seen, expected);
}

TEST(Channel, ZeroBytesTakeNoTime)
{
    EventQueue eq;
    Channel ch(eq, "ch", gigabytePerSec);
    EXPECT_EQ(ch.submit(0, 0), 0u);
    EXPECT_EQ(ch.busyTicks(), 0u);
}

TEST(Channel, NonZeroBytesTakeAtLeastOneTick)
{
    EventQueue eq;
    Channel ch(eq, "ch", 1e15); // Faster than 1 B/tick.
    EXPECT_GE(ch.submit(1, 1), 1u);
}

TEST(Channel, StatsAccumulate)
{
    EventQueue eq;
    Channel ch(eq, "ch", gigabytePerSec);
    ch.submit(600, 500);
    ch.submit(400, 300);
    EXPECT_EQ(ch.numTransfers(), 2u);
    EXPECT_EQ(ch.wireBytes(), 1000u);
    EXPECT_EQ(ch.payloadBytes(), 800u);
    EXPECT_DOUBLE_EQ(ch.goodput(), 0.8);
    EXPECT_EQ(ch.busyTicks(), 1000 * ticksPerNanosecond);
}

TEST(Channel, ResetStatsKeepsConfiguration)
{
    EventQueue eq;
    Channel ch(eq, "ch", gigabytePerSec, 42);
    ch.submit(1000, 1000);
    ch.resetStats();
    EXPECT_EQ(ch.numTransfers(), 0u);
    EXPECT_EQ(ch.wireBytes(), 0u);
    EXPECT_EQ(ch.busyTicks(), 0u);
    EXPECT_DOUBLE_EQ(ch.rate(), gigabytePerSec);
    EXPECT_EQ(ch.latency(), 42u);
}

TEST(Channel, UtilizationIsBusyFraction)
{
    EventQueue eq;
    Channel ch(eq, "ch", gigabytePerSec);
    ch.submit(1000, 1000); // 1 us busy.
    EXPECT_DOUBLE_EQ(ch.utilization(2000 * ticksPerNanosecond), 0.5);
    EXPECT_DOUBLE_EQ(ch.utilization(0), 0.0);
}

TEST(Channel, SetRateAffectsFutureSubmissions)
{
    EventQueue eq;
    Channel ch(eq, "ch", gigabytePerSec);
    const Tick d1 = ch.submit(1000, 1000);
    ch.setRate(2.0 * gigabytePerSec);
    const Tick d2 = ch.submit(1000, 1000);
    EXPECT_EQ(d2 - d1, (1000 * ticksPerNanosecond) / 2);
    EXPECT_THROW(ch.setRate(0.0), std::invalid_argument);
}

TEST(Channel, GoodputIsOneWhenIdle)
{
    EventQueue eq;
    Channel ch(eq, "ch", gigabytePerSec);
    EXPECT_DOUBLE_EQ(ch.goodput(), 1.0);
}
