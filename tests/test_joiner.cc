/**
 * @file
 * Unit tests for the completion joiner.
 */

#include "sim/joiner.hh"

#include <gtest/gtest.h>

using namespace proact;

TEST(Joiner, FiresOnLastArrival)
{
    int fired = 0;
    Joiner j(3, [&] { ++fired; });
    j.arrive();
    j.arrive();
    EXPECT_EQ(fired, 0);
    j.arrive();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(j.remaining(), 0);
}

TEST(Joiner, ZeroExpectedFiresImmediately)
{
    int fired = 0;
    Joiner j(0, [&] { ++fired; });
    EXPECT_EQ(fired, 1);
}

TEST(Joiner, ExtraArrivalPanics)
{
    Joiner j(1, nullptr);
    j.arrive();
    EXPECT_THROW(j.arrive(), PanicError);
}

TEST(Joiner, NegativeExpectedPanics)
{
    EXPECT_THROW(Joiner(-1, nullptr), PanicError);
}

TEST(Joiner, SharedArrivalsKeepJoinerAlive)
{
    EventQueue eq;
    bool fired = false;
    {
        auto joiner = Joiner::make(2, [&] { fired = true; });
        eq.schedule(10, Joiner::arrival(joiner));
        eq.schedule(20, Joiner::arrival(joiner));
        // The local shared_ptr goes out of scope here; the pending
        // callbacks must keep the joiner alive.
    }
    eq.run();
    EXPECT_TRUE(fired);
}
