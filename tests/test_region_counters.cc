/**
 * @file
 * Unit and property tests for readiness counters, region tracking
 * and the block-to-address mappings (paper Sec. III-B, Listing 1).
 */

#include "proact/region.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;

TEST(CounterArray, ExpectAndDecrement)
{
    CounterArray counters(3);
    counters.expectWriter(0);
    counters.expectWriter(0);
    counters.expectWriter(1);

    EXPECT_EQ(counters.expected(0), 2);
    EXPECT_EQ(counters.remaining(0), 2);
    // Chunk 2 has no writers: born ready.
    EXPECT_TRUE(counters.ready(2));
    EXPECT_EQ(counters.readyChunks(), 1);

    EXPECT_FALSE(counters.decrement(0));
    EXPECT_TRUE(counters.decrement(0));
    EXPECT_TRUE(counters.ready(0));
    EXPECT_TRUE(counters.decrement(1));
    EXPECT_TRUE(counters.allReady());
    EXPECT_EQ(counters.totalDecrements(), 3u);
}

TEST(CounterArray, DecrementBelowZeroPanics)
{
    CounterArray counters(1);
    counters.expectWriter(0);
    counters.decrement(0);
    EXPECT_THROW(counters.decrement(0), PanicError);
}

TEST(CounterArray, ExpectAfterDecrementPanics)
{
    CounterArray counters(1);
    counters.expectWriter(0);
    counters.decrement(0);
    EXPECT_THROW(counters.expectWriter(0), PanicError);
}

TEST(CounterArray, RearmRestoresExpected)
{
    CounterArray counters(2);
    counters.expectWriter(0);
    counters.expectWriter(1);
    counters.decrement(0);
    counters.decrement(1);
    EXPECT_TRUE(counters.allReady());
    counters.rearm();
    EXPECT_FALSE(counters.allReady());
    EXPECT_EQ(counters.remaining(0), 1);
    EXPECT_EQ(counters.totalExpected(), 2u);
}

TEST(CounterArray, BoundsChecked)
{
    CounterArray counters(2);
    EXPECT_THROW(counters.expectWriter(2), PanicError);
    EXPECT_THROW(counters.remaining(-1), PanicError);
    EXPECT_THROW(CounterArray(0), FatalError);
}

TEST(RegionTracker, ChunkGeometry)
{
    RegionTracker tracker(10000, 4096);
    EXPECT_EQ(tracker.numChunks(), 3);
    EXPECT_EQ(tracker.chunkSize(0), 4096u);
    EXPECT_EQ(tracker.chunkSize(1), 4096u);
    EXPECT_EQ(tracker.chunkSize(2), 10000u - 8192u);
}

TEST(RegionTracker, ChunkBytesClampedToPartition)
{
    RegionTracker tracker(1000, 1 << 20);
    EXPECT_EQ(tracker.numChunks(), 1);
    EXPECT_EQ(tracker.chunkSize(0), 1000u);
}

TEST(RegionTracker, ChunkSpan)
{
    RegionTracker tracker(16384, 4096);
    auto [first, last] = tracker.chunkSpan({0, 4096});
    EXPECT_EQ(first, 0);
    EXPECT_EQ(last, 0);
    std::tie(first, last) = tracker.chunkSpan({4000, 8200});
    EXPECT_EQ(first, 0);
    EXPECT_EQ(last, 2);
    std::tie(first, last) = tracker.chunkSpan({100, 100});
    EXPECT_GT(first, last); // Empty range.
    EXPECT_THROW(tracker.chunkSpan({0, 999999}), PanicError);
}

TEST(RegionTracker, CountersMatchFootprintsAndFireOnce)
{
    const std::uint64_t partition = 64 * 1024;
    const int num_ctas = 16;
    RegionTracker tracker(partition, 16 * 1024);
    auto range = mappings::contiguous(partition, num_ctas);
    tracker.initCounters(num_ctas, range);

    // 4 CTAs per chunk.
    for (int c = 0; c < tracker.numChunks(); ++c)
        EXPECT_EQ(tracker.counters().expected(c), 4);

    std::vector<int> ready;
    int decrements = 0;
    for (int cta = 0; cta < num_ctas; ++cta)
        decrements += tracker.ctaArrived(range(cta), ready);
    EXPECT_TRUE(tracker.allReady());
    EXPECT_EQ(decrements, num_ctas);
    // Each chunk became ready exactly once.
    std::sort(ready.begin(), ready.end());
    EXPECT_EQ(ready, (std::vector<int>{0, 1, 2, 3}));
}

TEST(RegionTracker, ZeroChunkSizeRejected)
{
    EXPECT_THROW(RegionTracker(1000, 0), FatalError);
}

TEST(Mappings, ContiguousTilesExactly)
{
    const std::uint64_t partition = 1000;
    const int num_ctas = 7;
    auto range = mappings::contiguous(partition, num_ctas);
    std::uint64_t covered = 0;
    std::uint64_t prev_hi = 0;
    for (int cta = 0; cta < num_ctas; ++cta) {
        const ByteRange r = range(cta);
        EXPECT_EQ(r.lo, prev_hi);
        prev_hi = r.hi;
        covered += r.size();
    }
    EXPECT_EQ(prev_hi, partition);
    EXPECT_EQ(covered, partition);
}

TEST(Mappings, StridedSpansWholePartition)
{
    auto range = mappings::strided(4096, 4);
    for (int cta = 0; cta < 4; ++cta) {
        EXPECT_EQ(range(cta).lo, 0u);
        EXPECT_EQ(range(cta).hi, 4096u);
    }
}

TEST(Mappings, StencilAddsHalo)
{
    auto range = mappings::stencil(4000, 4, 100);
    // Interior CTA: halo on both sides.
    const ByteRange mid = range(1);
    EXPECT_EQ(mid.lo, 1000u - 100u);
    EXPECT_EQ(mid.hi, 2000u + 100u);
    // Border CTAs clamp.
    EXPECT_EQ(range(0).lo, 0u);
    EXPECT_EQ(range(3).hi, 4000u);
}

TEST(Mappings, InvalidCtaCountRejected)
{
    EXPECT_THROW(mappings::contiguous(100, 0), FatalError);
    EXPECT_THROW(mappings::strided(100, -1), FatalError);
    EXPECT_THROW(mappings::stencil(100, 0, 10), FatalError);
}

/**
 * Property: for any (partition, chunk, CTAs) combination, after all
 * CTAs arrive every chunk is ready, total decrements equal the
 * counters' expected total, and each chunk fires exactly once.
 */
struct TrackerCase
{
    std::uint64_t partition;
    std::uint64_t chunk;
    int ctas;
};

class RegionTrackerProperty
    : public ::testing::TestWithParam<TrackerCase>
{
};

TEST_P(RegionTrackerProperty, ExactReadinessAccounting)
{
    const auto param = GetParam();
    RegionTracker tracker(param.partition, param.chunk);
    auto range = mappings::contiguous(param.partition, param.ctas);
    tracker.initCounters(param.ctas, range);

    const std::uint64_t expected_total =
        tracker.decrementsPerIteration();

    std::vector<int> ready;
    std::uint64_t decrements = 0;
    for (int cta = 0; cta < param.ctas; ++cta) {
        decrements += static_cast<std::uint64_t>(
            tracker.ctaArrived(range(cta), ready));
    }

    EXPECT_TRUE(tracker.allReady());
    EXPECT_EQ(decrements, expected_total);
    std::sort(ready.begin(), ready.end());
    ready.erase(std::unique(ready.begin(), ready.end()), ready.end());
    EXPECT_EQ(static_cast<int>(ready.size()), tracker.numChunks());

    // Rearm supports the next iteration identically.
    tracker.rearm();
    EXPECT_FALSE(tracker.allReady());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegionTrackerProperty,
    ::testing::Values(TrackerCase{4096, 4096, 1},
                      TrackerCase{4096, 512, 4},
                      TrackerCase{10000, 3000, 7},
                      TrackerCase{1 << 20, 4096, 64},
                      TrackerCase{999983, 8192, 13},
                      TrackerCase{64, 4096, 5},
                      TrackerCase{1 << 22, 1 << 16, 640}));
