/**
 * @file
 * Small-instance factories for the five applications, sized so
 * functional runs finish in milliseconds (tests exercise behaviour,
 * not scale).
 */

#ifndef PROACT_TESTS_SMALL_WORKLOADS_HH
#define PROACT_TESTS_SMALL_WORKLOADS_HH

#include "workloads/als.hh"
#include "workloads/jacobi.hh"
#include "workloads/mbir.hh"
#include "workloads/pagerank.hh"
#include "workloads/sssp.hh"

#include <memory>
#include <string>
#include <vector>

namespace proact::test {

inline std::vector<std::string>
smallWorkloadNames()
{
    return {"X-ray CT", "Jacobi", "Pagerank", "SSSP", "ALS"};
}

inline std::unique_ptr<Workload>
makeSmallWorkload(const std::string &name)
{
    if (name == "Jacobi") {
        JacobiWorkload::Params p;
        p.numUnknowns = 1 << 14;
        p.halfBand = 4;
        p.iterations = 4;
        return std::make_unique<JacobiWorkload>(p);
    }
    if (name == "Pagerank") {
        PagerankWorkload::Params p;
        p.graph.numVertices = 1 << 12;
        p.graph.numEdges = 1 << 15;
        p.iterations = 4;
        return std::make_unique<PagerankWorkload>(p);
    }
    if (name == "SSSP") {
        SsspWorkload::Params p;
        p.graph.numVertices = 1 << 12;
        p.graph.numEdges = 1 << 15;
        p.iterations = 4;
        return std::make_unique<SsspWorkload>(p);
    }
    if (name == "ALS") {
        AlsWorkload::Params p;
        p.numUsers = 1 << 10;
        p.numItems = 1 << 10;
        p.numRatings = 1 << 13;
        p.iterations = 4;
        return std::make_unique<AlsWorkload>(p);
    }
    if (name == "X-ray CT") {
        MbirWorkload::Params p;
        p.numPixels = 1 << 13;
        p.halfBand = 8;
        p.iterations = 4;
        return std::make_unique<MbirWorkload>(p);
    }
    return nullptr;
}

} // namespace proact::test

#endif // PROACT_TESTS_SMALL_WORKLOADS_HH
