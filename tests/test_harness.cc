/**
 * @file
 * Unit tests for the harness layer (paradigm factory + session).
 */

#include "harness/session.hh"
#include "tests/toy_workload.hh"

#include "sim/logging.hh"

#include <gtest/gtest.h>

using namespace proact;
using proact::test::ToyWorkload;

TEST(Paradigm, NamesAndOrder)
{
    EXPECT_EQ(paradigmName(Paradigm::CudaMemcpy), "cudaMemcpy");
    EXPECT_EQ(paradigmName(Paradigm::ProactDecoupled),
              "PROACT-decoupled");
    const auto all = allParadigms();
    EXPECT_EQ(all.size(), 5u);
    EXPECT_EQ(all.front(), Paradigm::UnifiedMemory);
    EXPECT_EQ(all.back(), Paradigm::InfiniteBw);
}

TEST(Paradigm, FactoryBuildsEachRuntime)
{
    MultiGpuSystem system(voltaPlatform());
    for (const Paradigm p : allParadigms()) {
        auto runtime = makeRuntime(p, system);
        ASSERT_NE(runtime, nullptr) << paradigmName(p);
        EXPECT_FALSE(runtime->name().empty());
    }
}

TEST(Paradigm, DecoupledFactoryHonorsConfig)
{
    MultiGpuSystem system(voltaPlatform());
    TransferConfig config;
    config.mechanism = TransferMechanism::Cdp;
    config.chunkBytes = 1 * MiB;
    config.transferThreads = 512;
    auto runtime =
        makeRuntime(Paradigm::ProactDecoupled, system, config);
    EXPECT_NE(runtime->name().find("1MB"), std::string::npos);
    EXPECT_NE(runtime->name().find("CDP"), std::string::npos);

    // An inline config passed to the decoupled paradigm falls back
    // to a decoupled mechanism rather than silently going inline.
    TransferConfig inline_cfg;
    inline_cfg.mechanism = TransferMechanism::Inline;
    auto fallback =
        makeRuntime(Paradigm::ProactDecoupled, system, inline_cfg);
    EXPECT_NE(fallback->name().find("PROACT-decoupled"),
              std::string::npos);
}

TEST(Session, RunExecutesAndCollectsFabricStats)
{
    Session session(voltaPlatform());
    ToyWorkload workload;
    workload.setup(4);
    const ParadigmRun run =
        session.run(workload, Paradigm::CudaMemcpy, {},
                    /*functional=*/true);
    EXPECT_GT(run.ticks, 0u);
    EXPECT_GT(run.payloadBytes, 0u);
    EXPECT_GE(run.wireBytes, run.payloadBytes);
    EXPECT_GT(run.storeTransactions, 0u);
}

TEST(Session, FunctionalRunVerifiesOrThrows)
{
    Session session(voltaPlatform());
    ToyWorkload workload;
    workload.setup(4);
    // Paradigm runs verify internally; a timing-only run must not.
    EXPECT_NO_THROW(session.run(workload, Paradigm::InfiniteBw, {},
                                /*functional=*/false));
    EXPECT_FALSE(workload.verify()); // No math happened.
    EXPECT_NO_THROW(session.run(workload, Paradigm::InfiniteBw, {},
                                /*functional=*/true));
    EXPECT_TRUE(workload.verify());
}

TEST(Session, CompareParadigmsNormalizesAgainstSingleGpu)
{
    Session session(voltaPlatform());
    const WorkloadFactory factory = [](int gpus) {
        ToyWorkload::Params params;
        params.partitionBytes = 1 * MiB;
        params.ctaLocalBytes = 256 * KiB;
        auto workload = std::make_unique<ToyWorkload>(params);
        workload->setup(gpus);
        return workload;
    };

    Profiler::Options quick;
    quick.chunkSizes = {128 * KiB};
    quick.threadCounts = {2048};
    quick.profileIterations = 1;

    const auto results = session.compareParadigms(
        factory, /*functional=*/false, quick);
    ASSERT_EQ(results.size(), allParadigms().size());
    for (const auto &run : results) {
        EXPECT_GT(run.speedup, 0.0)
            << paradigmName(run.paradigm);
        EXPECT_LT(run.speedup, 4.2)
            << paradigmName(run.paradigm);
    }

    // The limit study must dominate every real paradigm.
    double ideal = 0.0;
    for (const auto &run : results) {
        if (run.paradigm == Paradigm::InfiniteBw)
            ideal = run.speedup;
    }
    for (const auto &run : results)
        EXPECT_LE(run.speedup, ideal + 1e-9)
            << paradigmName(run.paradigm);
}

TEST(Session, SingleGpuTicksUsesOneGpu)
{
    Session session(voltaPlatform());
    int seen_gpus = -1;
    const WorkloadFactory factory = [&](int gpus) {
        seen_gpus = gpus;
        auto workload = std::make_unique<ToyWorkload>();
        workload->setup(gpus);
        return workload;
    };
    EXPECT_GT(session.singleGpuTicks(factory), 0u);
    EXPECT_EQ(seen_gpus, 1);
}
