/**
 * @file
 * Tests for device-loss tolerance: GpuDown fault episodes and seeded
 * device-MTBF campaigns, the fabric's dead-endpoint refuse/quiesce
 * paths, the device heartbeat watchdog's hysteresis, checkpointed
 * abort/resume through the harness, reprofile-sweep timeline
 * charging, and the fleet layer's quarantine -> shrink -> restart
 * recovery pipeline.
 */

#include "faults/fault_plan.hh"
#include "fleet/fleet_session.hh"
#include "fleet/job.hh"
#include "fleet/placement.hh"
#include "harness/session.hh"
#include "health/device_health.hh"
#include "proact/config.hh"
#include "proact/reprofiler.hh"
#include "proact/runtime.hh"
#include "sim/logging.hh"
#include "system/multi_gpu_system.hh"
#include "system/platform.hh"
#include "tests/small_workloads.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

using namespace proact;
using namespace proact::fleet;
using namespace proact::test;

namespace {

constexpr Tick us = ticksPerMicrosecond;

TransferConfig
decoupledConfig()
{
    TransferConfig config;
    config.mechanism = TransferMechanism::Polling;
    config.chunkBytes = 64 * KiB;
    config.transferThreads = 2048;
    return config;
}

RetryPolicy
testRetry(int max_attempts = 5)
{
    RetryPolicy policy;
    policy.enabled = true;
    policy.maxAttempts = max_attempts;
    return policy;
}

JobSpec
fixedJob(int id, const std::string &workload, int gpus,
         Tick arrival = 0, int priority = 0)
{
    JobSpec job;
    job.id = id;
    job.workload = workload;
    job.gpus = gpus;
    job.arrival = arrival;
    job.priority = priority;
    return job;
}

} // namespace

TEST(DeviceFaultPlan, DownGpuValidationAndDescribe)
{
    EXPECT_EQ(faultKindName(FaultKind::GpuDown), "gpu-down");

    {
        FaultPlan plan;
        plan.downGpu(0, maxTick, -1); // Wildcard device: nonsense.
        EXPECT_THROW(plan.validate(4), FatalError);
    }
    {
        FaultPlan plan;
        plan.downGpu(0, maxTick, 7); // GPU 7 of 4.
        EXPECT_THROW(plan.validate(4), FatalError);
    }
    {
        FaultPlan plan;
        plan.downGpu(100, 100, 2); // Empty window.
        EXPECT_THROW(plan.validate(4), FatalError);
    }
    {
        FaultPlan plan;
        plan.downGpu(10 * us, maxTick, 2);
        EXPECT_NO_THROW(plan.validate(4));
        EXPECT_EQ(plan.episodes.at(0).kind, FaultKind::GpuDown);
        EXPECT_EQ(plan.episodes.at(0).gpu, 2);
    }
}

TEST(DeviceFaultPlan, MtbfCampaignIsSeededAndBounded)
{
    DeviceLifecycleOptions options;
    options.mtbf = 400 * us;
    options.horizon = 2000 * us;
    options.maxLosses = 2;

    const FaultPlan a = deviceMtbfFaultPlan(17, 8, options);
    const FaultPlan b = deviceMtbfFaultPlan(17, 8, options);
    ASSERT_EQ(a.episodes.size(), b.episodes.size());
    for (std::size_t i = 0; i < a.episodes.size(); ++i) {
        EXPECT_EQ(a.episodes[i].start, b.episodes[i].start);
        EXPECT_EQ(a.episodes[i].gpu, b.episodes[i].gpu);
    }

    // Losses are permanent GpuDown episodes, capped at maxLosses,
    // targeting in-range devices.
    EXPECT_LE(a.episodes.size(), 2u);
    for (const FaultEpisode &ep : a.episodes) {
        EXPECT_EQ(ep.kind, FaultKind::GpuDown);
        EXPECT_EQ(ep.end, maxTick);
        EXPECT_GE(ep.gpu, 0);
        EXPECT_LT(ep.gpu, 8);
    }

    // Per-device derived streams: enlarging the machine never
    // rewrites the fate of devices already in it (uncapped so the
    // budget cannot evict an early death).
    options.maxLosses = 3;
    const FaultPlan small = deviceMtbfFaultPlan(23, 4, options);
    options.maxLosses = 15;
    const FaultPlan large = deviceMtbfFaultPlan(23, 16, options);
    std::map<int, Tick> large_deaths;
    for (const FaultEpisode &ep : large.episodes)
        large_deaths[ep.gpu] = ep.start;
    for (const FaultEpisode &ep : small.episodes) {
        ASSERT_TRUE(large_deaths.count(ep.gpu));
        EXPECT_EQ(large_deaths.at(ep.gpu), ep.start);
    }

    // A campaign must leave a survivor.
    options.maxLosses = 4;
    EXPECT_THROW(deviceMtbfFaultPlan(1, 4, options), FatalError);
}

TEST(RecoveryPlacement, QuarantineWithdrawsGpusPermanently)
{
    PlacementAllocator alloc(voltaPlatform(),
                             PlacementMode::PlaneSharing, 4);
    ASSERT_EQ(alloc.numPlanes(), 1);
    EXPECT_EQ(alloc.maxAllocatableGpus(), 4);

    const auto full = alloc.tryAllocate(4);
    ASSERT_TRUE(full);

    // Quarantining a granted GPU: releasing the placement later is
    // fine, but the slot never comes back.
    alloc.quarantine(2);
    alloc.quarantine(2); // Idempotent.
    EXPECT_TRUE(alloc.isQuarantined(2));
    EXPECT_FALSE(alloc.isQuarantined(1));
    EXPECT_EQ(alloc.quarantinedGpus(), 1);
    EXPECT_EQ(alloc.maxAllocatableGpus(), 3);

    alloc.release(*full);
    EXPECT_FALSE(alloc.tryAllocate(4).has_value());
    const auto shrunk = alloc.tryAllocate(3);
    ASSERT_TRUE(shrunk);
    EXPECT_EQ(std::count(shrunk->gpus.begin(), shrunk->gpus.end(), 2),
              0);

    EXPECT_THROW(alloc.quarantine(99), FatalError);
}

TEST(RecoveryPlacement, QuarantineOnOnePlaneLeavesTheOtherWhole)
{
    PlacementAllocator alloc(dgx2Platform(), PlacementMode::Disjoint);
    alloc.quarantine(3); // Plane 0.
    EXPECT_EQ(alloc.maxAllocatableGpus(), 8);
    EXPECT_EQ(alloc.freeGpusOnPlane(0), 7);
    EXPECT_EQ(alloc.freeGpusOnPlane(1), 8);

    // An 8-GPU tenant still fits -- on the intact plane.
    const auto p = alloc.tryAllocate(8);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->planes.at(0), 1);
}

TEST(RecoveryFabric, DeadEndpointRefusesAndQuiesces)
{
    MultiGpuSystem system(voltaPlatform());
    Interconnect &fabric = system.fabric();
    fabric.setRebooking(true); // Quiesce works on tracked flights.

    // A flight to a live peer, then the peer dies mid-flight:
    // quiesce aborts the tracked delivery and the callback never
    // fires.
    int delivered = 0;
    Interconnect::Request req;
    req.src = 0;
    req.dst = 1;
    req.bytes = 1 * MiB;
    req.writeGranularity = 256;
    req.onComplete = [&] { ++delivered; };
    fabric.transfer(req);
    EXPECT_GT(fabric.numTrackedFlights(), 0u);

    fabric.setDeviceDown(1, true);
    const std::size_t aborted = fabric.quiesceDevice(1);
    EXPECT_GT(aborted, 0u);
    EXPECT_EQ(fabric.quiescedFlights(), aborted);
    EXPECT_EQ(fabric.numTrackedFlights(), 0u);

    // New submissions touching the dead device -- either endpoint,
    // reliable or not -- are refused at the door.
    Interconnect::Request to_dead = req;
    to_dead.onComplete = [&] { ++delivered; };
    fabric.transfer(to_dead);
    Interconnect::Request from_dead = req;
    from_dead.src = 1;
    from_dead.dst = 2;
    from_dead.reliable = true;
    from_dead.onComplete = [&] { ++delivered; };
    fabric.transfer(from_dead);
    EXPECT_EQ(fabric.refusedDeliveries(), 2u);

    system.run();
    EXPECT_EQ(delivered, 0);
}

TEST(RecoveryWatchdog, PermanentLossIsDeclaredWithHysteresis)
{
    MultiGpuSystem system(voltaPlatform());
    FaultPlan plan;
    plan.downGpu(12 * us, maxTick, 2);
    system.installFaults(std::move(plan));
    DeviceHealthMonitor &mon = system.enableDeviceHealth();

    system.run(); // Terminates: the watchdog never pins the queue.
    EXPECT_EQ(system.eventQueue().pendingEvents(), 0u);

    EXPECT_EQ(mon.deviceState(2), DeviceState::Lost);
    EXPECT_TRUE(system.anyDeviceLost());
    ASSERT_EQ(system.lostDevices(), std::vector<int>{2});
    EXPECT_GT(mon.lostAt(2), Tick{12 * us});

    // Hysteresis: SUSPECT strictly precedes LOST.
    ASSERT_GE(mon.transitions().size(), 2u);
    bool saw_suspect = false;
    for (const auto &t : mon.transitions()) {
        if (t.gpu != 2)
            continue;
        if (t.to == DeviceState::Suspect)
            saw_suspect = true;
        if (t.to == DeviceState::Lost) {
            EXPECT_TRUE(saw_suspect);
        }
    }
    EXPECT_TRUE(saw_suspect);

    // Survivors stay healthy.
    for (const int g : {0, 1, 3})
        EXPECT_EQ(mon.deviceState(g), DeviceState::Healthy);
}

TEST(RecoveryWatchdog, TransientOutageRecoversWithoutLost)
{
    MultiGpuSystem system(voltaPlatform());
    const DeviceHealthPolicy policy; // 5us beat, lost after 3 misses.

    // Down for ~1.5 beats: enough to turn SUSPECT, never LOST.
    FaultPlan plan;
    plan.downGpu(12 * us, 19 * us, 1);
    system.installFaults(std::move(plan));
    DeviceHealthMonitor &mon = system.enableDeviceHealth(policy);

    system.run();

    EXPECT_EQ(mon.deviceState(1), DeviceState::Healthy);
    EXPECT_FALSE(mon.anyLost());
    bool suspected = false, recovered = false;
    for (const auto &t : mon.transitions()) {
        suspected |= t.gpu == 1 && t.to == DeviceState::Suspect;
        recovered |= t.gpu == 1 && t.from == DeviceState::Suspect
            && t.to == DeviceState::Healthy;
    }
    EXPECT_TRUE(suspected);
    EXPECT_TRUE(recovered);
}

TEST(RecoverySession, CheckpointsChargeTheTimeline)
{
    auto run_once = [](const CheckpointPolicy &checkpoint) {
        auto workload = makeSmallWorkload("Jacobi");
        workload->setup(4);
        Session session(voltaPlatform());
        Session::RunOptions options;
        options.config = decoupledConfig();
        options.checkpoint = checkpoint;
        return session.run(*workload, Paradigm::ProactDecoupled,
                           options);
    };

    const ParadigmRun off = run_once({});
    EXPECT_EQ(off.checkpoints, 0);
    EXPECT_EQ(off.checkpointTicks, Tick{0});

    CheckpointPolicy every;
    every.enabled = true;
    every.interval = 1;
    every.cost = 50 * us;
    const ParadigmRun on = run_once(every);
    EXPECT_EQ(on.checkpoints, 4); // One per Jacobi iteration.
    EXPECT_EQ(on.checkpointIteration, 3);
    EXPECT_EQ(on.checkpointTicks, Tick{4 * 50 * us});
    // The charge is real simulated time, not a side counter.
    EXPECT_EQ(on.ticks, off.ticks + 4 * 50 * us);

    CheckpointPolicy sparse = every;
    sparse.interval = 3;
    const ParadigmRun few = run_once(sparse);
    EXPECT_EQ(few.checkpoints, 1); // After iteration index 2 only.
    EXPECT_EQ(few.checkpointIteration, 2);
}

TEST(RecoverySession, DeviceLossAbortsAndResumesFromCheckpoint)
{
    auto make = [] {
        auto w = makeSmallWorkload("Jacobi");
        w->setup(4);
        return w;
    };
    Session session(voltaPlatform());

    CheckpointPolicy every;
    every.enabled = true;
    every.interval = 1;

    Session::RunOptions clean;
    clean.config = decoupledConfig();
    clean.checkpoint = every;
    const ParadigmRun healthy = session.run(
        *make(), Paradigm::ProactDecoupled, clean);
    ASSERT_FALSE(healthy.aborted);
    ASSERT_EQ(healthy.completedIterations, 4);

    // Kill GPU 3 halfway through the run.
    Session::RunOptions faulty = clean;
    faulty.faults.downGpu(healthy.ticks / 2, maxTick, 3);
    faulty.retry = testRetry();
    faulty.deviceHealth = true;
    const ParadigmRun lost = session.run(
        *make(), Paradigm::ProactDecoupled, faulty);

    EXPECT_TRUE(lost.aborted);
    EXPECT_EQ(lost.lostGpu, 3);
    EXPECT_LT(lost.completedIterations, 4);
    // Interval-1 checkpoints cover every completed iteration.
    EXPECT_EQ(lost.checkpointIteration, lost.completedIterations - 1);
    EXPECT_GT(lost.refusedDeliveries + lost.orphanedTransfers
                  + lost.quiescedFlights,
              0u);

    // Restart on a healthy system from the latest checkpoint: the
    // resumed instance only executes the remaining iterations.
    Session::RunOptions resume = clean;
    resume.firstIteration = lost.checkpointIteration + 1;
    const ParadigmRun resumed = session.run(
        *make(), Paradigm::ProactDecoupled, resume);
    EXPECT_FALSE(resumed.aborted);
    EXPECT_EQ(resumed.completedIterations, 4);
    EXPECT_LT(resumed.ticks, healthy.ticks);

    // A restart point past the workload is rejected.
    Session::RunOptions bogus = clean;
    bogus.firstIteration = 5;
    EXPECT_THROW(session.run(*make(), Paradigm::ProactDecoupled,
                             bogus),
                 FatalError);
}

TEST(RecoveryReprofile, SweepChargeLandsOnTheTimeline)
{
    auto run_once = [](bool charge) {
        auto workload = makeSmallWorkload("Jacobi");
        workload->setup(4);

        MultiGpuSystem system(voltaPlatform());
        system.enableHealth();
        FaultPlan plan;
        plan.downLink(0, maxTick, 0, 1);
        system.installFaults(std::move(plan));

        auto factory = [](int gpus) {
            auto w = makeSmallWorkload("Jacobi");
            w->setup(gpus);
            return w;
        };
        TransferConfig initial = decoupledConfig();
        initial.retry = testRetry();
        AdaptiveReprofiler::Options ropts;
        ropts.chargeTimeline = charge;
        AdaptiveReprofiler reprofiler(system, factory, initial,
                                      ropts);

        ProactRuntime::Options options;
        options.config = initial;
        options.reprofiler = &reprofiler;
        ProactRuntime runtime(system, options);
        const Tick ticks = runtime.run(*workload);
        return std::tuple<Tick, Tick, double>(
            ticks,
            static_cast<Tick>(
                runtime.stats().get("reprofile.charged_ticks")),
            reprofiler.stats().get("reprofile.sweep_ticks"));
    };

    const auto [free_ticks, free_charged, free_swept] =
        run_once(false);
    EXPECT_EQ(free_charged, Tick{0});
    EXPECT_GT(free_swept, 0.0); // Sweeps ran but cost nothing.

    const auto [paid_ticks, paid_charged, paid_swept] =
        run_once(true);
    EXPECT_GT(paid_swept, 0.0);
    EXPECT_GT(paid_charged, Tick{0});
    // Charging makes the run strictly longer, by at least the
    // first boundary's sweep (later sweeps may differ once the
    // timeline shifts).
    EXPECT_GT(paid_ticks, free_ticks);

    // Deterministic under replay, charge included.
    const auto again = run_once(true);
    EXPECT_EQ(std::get<0>(again), paid_ticks);
    EXPECT_EQ(std::get<1>(again), paid_charged);
}

TEST(RecoveryFleet, ElectionSweepsChargeTenantsWhenAsked)
{
    const std::vector<JobSpec> jobs = {fixedJob(0, "Jacobi", 4)};

    FleetSession::Options options;
    options.chargeElections = true;
    FleetSession session(voltaPlatform(), options);

    // First serve misses the elector cache: the sweep is charged.
    const FleetReport first = session.serve(jobs);
    ASSERT_EQ(first.tenants.size(), 1u);
    EXPECT_GT(first.tenants.at(0).electionSweepTicks, Tick{0});
    EXPECT_EQ(first.tenants.at(0).serviceTicks,
              first.tenants.at(0).run.ticks
                  + first.tenants.at(0).electionSweepTicks);

    // Second serve hits the cache: election is free, which is the
    // point of the persistent profiler cache.
    const FleetReport second = session.serve(jobs);
    EXPECT_EQ(second.tenants.at(0).electionSweepTicks, Tick{0});
    EXPECT_LT(second.tenants.at(0).serviceTicks,
              first.tenants.at(0).serviceTicks);
}

TEST(RecoveryFleet, ElectedAtTickMovesWhenChargingIsOn)
{
    const std::vector<JobSpec> jobs = {fixedJob(0, "Jacobi", 4)};

    auto serve_one = [&](bool charge) {
        FleetSession::Options options;
        options.chargeElections = charge;
        FleetSession session(voltaPlatform(), options);
        const FleetReport report = session.serve(jobs);
        return report.tenants.at(0);
    };

    // Free sweeps: the decision lands at admission.
    const TenantRecord free_rec = serve_one(false);
    EXPECT_EQ(free_rec.electedAt, free_rec.admitted);

    // Charged: the cache-miss sweep runs on the timeline before the
    // tenant's kernels, so the elected-at tick moves past admission
    // by exactly the charged cost.
    const TenantRecord paid = serve_one(true);
    EXPECT_GT(paid.electionSweepTicks, Tick{0});
    EXPECT_GT(paid.electedAt, paid.admitted);
    EXPECT_EQ(paid.electedAt,
              paid.admitted + paid.electionSweepTicks);
}

TEST(RecoveryFleet, ElectionChargeDefaultsFromEnvironment)
{
    // The fleet face of PROACT_REPROFILE_CHARGE: the option's default
    // follows the environment so benches arm it without plumbing.
    setenv("PROACT_REPROFILE_CHARGE", "1", 1);
    const FleetSession::Options armed;
    EXPECT_TRUE(armed.chargeElections);

    setenv("PROACT_REPROFILE_CHARGE", "0", 1);
    const FleetSession::Options disarmed;
    EXPECT_FALSE(disarmed.chargeElections);

    unsetenv("PROACT_REPROFILE_CHARGE");
    const FleetSession::Options unset;
    EXPECT_FALSE(unset.chargeElections);
}

namespace {

/** Fleet options arming recovery with a mid-run GPU loss for
 * attempt 0 of @p victim. */
FleetSession::Options
recoveryOptions(int victim, Tick loss_tick, int lost_gpu)
{
    FleetSession::Options options;
    options.recovery.enabled = true;
    options.recovery.checkpoint.interval = 1;
    options.faultPlanFor = [=](const JobSpec &job, int attempt) {
        FaultPlan plan;
        if (job.id == victim && attempt == 0)
            plan.downGpu(loss_tick, maxTick, lost_gpu);
        return plan;
    };
    return options;
}

} // namespace

TEST(RecoveryFleet, DeviceLossQuarantinesShrinksAndRestarts)
{
    const std::vector<JobSpec> jobs = {fixedJob(0, "Jacobi", 4)};

    // Measure the clean service time so the loss lands mid-run.
    Tick clean_service = 0;
    {
        FleetSession::Options options;
        options.recovery.enabled = true;
        options.recovery.checkpoint.interval = 1;
        FleetSession session(voltaPlatform(), options);
        const FleetReport clean = session.serve(jobs);
        ASSERT_EQ(clean.tenants.size(), 1u);
        EXPECT_TRUE(clean.recoveries.empty());
        clean_service = clean.tenants.at(0).serviceTicks;
    }

    FleetSession session(voltaPlatform(),
                         recoveryOptions(0, clean_service / 2, 2));
    const FleetReport report = session.serve(jobs);

    ASSERT_EQ(report.recoveries.size(), 1u);
    const RecoveryEvent &ev = report.recoveries.at(0);
    EXPECT_EQ(ev.jobId, 0);
    EXPECT_EQ(ev.attempt, 0);
    EXPECT_EQ(ev.lostGpu, 2);
    EXPECT_GE(ev.readmitTick, ev.abortTick);
    EXPECT_EQ(report.quarantinedGpus, 1u);
    EXPECT_EQ(report.recoveryLatencyP95,
              ev.readmitTick - ev.abortTick);

    // The job finished on its second attempt, shrunk onto the three
    // survivors (the single volta plane lost a GPU for good), resumed
    // at the checkpointed iteration, and paid the restore cost.
    ASSERT_EQ(report.tenants.size(), 1u);
    const TenantRecord &tenant = report.tenants.at(0);
    EXPECT_FALSE(tenant.run.aborted);
    EXPECT_EQ(tenant.attempt, 1);
    EXPECT_EQ(tenant.job.gpus, 3);
    EXPECT_EQ(tenant.firstIteration, ev.resumeIteration);
    EXPECT_EQ(std::count(tenant.placement.gpus.begin(),
                         tenant.placement.gpus.end(), 2),
              0);
    if (tenant.firstIteration > 0) {
        EXPECT_GT(tenant.restoreTicks, Tick{0});
    }
    EXPECT_GE(tenant.run.completedIterations, tenant.firstIteration);
    EXPECT_GT(tenant.run.completedIterations, 0);

    // The whole-life latency spans both attempts.
    EXPECT_GE(tenant.latency, tenant.serviceTicks);
}

TEST(RecoveryFleet, MultiPlaneMachineRestartsAtFullWidth)
{
    const std::vector<JobSpec> jobs = {fixedJob(0, "Jacobi", 8)};

    Tick clean_service = 0;
    {
        FleetSession::Options options;
        options.recovery.enabled = true;
        options.recovery.checkpoint.interval = 1;
        FleetSession session(dgx2Platform(), options);
        clean_service =
            session.serve(jobs).tenants.at(0).serviceTicks;
    }

    FleetSession session(dgx2Platform(),
                         recoveryOptions(0, clean_service / 2, 5));
    const FleetReport report = session.serve(jobs);

    ASSERT_EQ(report.recoveries.size(), 1u);
    EXPECT_EQ(report.quarantinedGpus, 1u);
    ASSERT_EQ(report.tenants.size(), 1u);
    const TenantRecord &tenant = report.tenants.at(0);
    EXPECT_FALSE(tenant.run.aborted);
    EXPECT_EQ(tenant.attempt, 1);

    // Only one of the two 8-GPU planes lost a device: the restart
    // keeps its full width on the intact plane, avoiding the
    // quarantined GPU entirely.
    EXPECT_EQ(tenant.job.gpus, 8);
    EXPECT_EQ(std::count(tenant.placement.gpus.begin(),
                         tenant.placement.gpus.end(), 5),
              0);
}

TEST(RecoveryFleet, RecoveryServesAreBitIdentical)
{
    const std::vector<JobSpec> jobs = {fixedJob(0, "Jacobi", 4),
                                       fixedJob(1, "SSSP", 2, 10)};

    // Fresh sessions (a shared one would elect from a warm cache on
    // the second serve and legitimately time differently when
    // election charging is on).
    auto serve_once = [&] {
        FleetSession session(
            voltaPlatform(), recoveryOptions(0, 400 * us, 1));
        return session.serve(jobs);
    };
    const FleetReport a = serve_once();
    const FleetReport b = serve_once();

    EXPECT_EQ(a.percentileTable(), b.percentileTable());
    EXPECT_EQ(a.toJson("volta", 0), b.toJson("volta", 0));
    ASSERT_EQ(a.recoveries.size(), b.recoveries.size());
    for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
        EXPECT_EQ(a.recoveries[i].abortTick,
                  b.recoveries[i].abortTick);
        EXPECT_EQ(a.recoveries[i].lostWork,
                  b.recoveries[i].lostWork);
        EXPECT_EQ(a.recoveries[i].readmitTick,
                  b.recoveries[i].readmitTick);
    }
}

TEST(RecoveryEnv, PoliciesClampAndDefaultOff)
{
    // Defaults: everything off, nothing charged.
    EXPECT_FALSE(envCheckpointEnabled());
    EXPECT_FALSE(envDeviceHealthEnabled());
    EXPECT_FALSE(envReprofileChargeEnabled());
    EXPECT_FALSE(envRecoveryPolicy().enabled);

    setenv("PROACT_CHECKPOINT", "1", 1);
    setenv("PROACT_CHECKPOINT_INTERVAL", "0", 1); // Clamped up to 1.
    setenv("PROACT_CHECKPOINT_COST_US", "10", 1);
    const CheckpointPolicy cp = envCheckpointPolicy();
    EXPECT_TRUE(cp.enabled);
    EXPECT_EQ(cp.interval, 1);
    EXPECT_EQ(cp.cost, Tick{10 * us});

    setenv("PROACT_DEVICE_HEALTH_SUSPECT_MISSES", "9", 1);
    setenv("PROACT_DEVICE_HEALTH_LOST_MISSES", "4", 1);
    const DeviceHealthPolicy dh = envDeviceHealthPolicy();
    EXPECT_EQ(dh.lostAfterMisses, 4);
    EXPECT_LE(dh.suspectAfterMisses, dh.lostAfterMisses);

    setenv("PROACT_RECOVERY", "1", 1);
    setenv("PROACT_RECOVERY_MIN_GPUS", "1", 1); // Clamped up to 2.
    setenv("PROACT_RECOVERY_MAX_ATTEMPTS", "99", 1);
    const RecoveryPolicy rp = envRecoveryPolicy();
    EXPECT_TRUE(rp.enabled);
    EXPECT_TRUE(rp.checkpoint.enabled); // Forced on with recovery.
    EXPECT_EQ(rp.minGpus, 2);
    EXPECT_EQ(rp.maxAttempts, 16);

    unsetenv("PROACT_CHECKPOINT");
    unsetenv("PROACT_CHECKPOINT_INTERVAL");
    unsetenv("PROACT_CHECKPOINT_COST_US");
    unsetenv("PROACT_DEVICE_HEALTH_SUSPECT_MISSES");
    unsetenv("PROACT_DEVICE_HEALTH_LOST_MISSES");
    unsetenv("PROACT_RECOVERY");
    unsetenv("PROACT_RECOVERY_MIN_GPUS");
    unsetenv("PROACT_RECOVERY_MAX_ATTEMPTS");
}
