/**
 * @file
 * Tests for the fault-adaptive runtime: link-health classification
 * (hysteresis, bounded DOWN-detection latency, recovery), rerouting
 * around unhealthy links, adaptive re-profiling, and tick-for-tick
 * determinism of the whole stack under identical seeds.
 */

#include "health/link_health.hh"
#include "interconnect/rerouter.hh"
#include "proact/reprofiler.hh"
#include "proact/runtime.hh"
#include "proact/transfer_agent.hh"
#include "sim/logging.hh"
#include "tests/small_workloads.hh"

#include <gtest/gtest.h>

#include <memory>

using namespace proact;
using namespace proact::test;

namespace {

/** Volta platform with statically partitioned pair links, so a
 * detour around a dead pair uses physically distinct wires. */
PlatformSpec
pairwiseVolta()
{
    PlatformSpec p = voltaPlatform();
    p.fabric.topology = FabricTopology::PairwiseLinks;
    return p;
}

RetryPolicy
testRetry(int max_attempts = 6)
{
    RetryPolicy policy;
    policy.enabled = true;
    policy.maxAttempts = max_attempts;
    return policy;
}

/** Agent-level harness mirroring tests/test_faults.cc. */
struct HealthHarness
{
    MultiGpuSystem system;
    int deliveries = 0;
    Tick lastDelivery = 0;
    StatSet stats;

    explicit HealthHarness(const PlatformSpec &platform)
        : system(platform)
    {
    }

    TransferAgent::Context
    context(TransferMechanism mech, RetryPolicy retry = {})
    {
        TransferAgent::Context ctx;
        ctx.system = &system;
        ctx.gpuId = 0;
        ctx.config.mechanism = mech;
        ctx.config.chunkBytes = 64 * KiB;
        ctx.config.transferThreads = 2048;
        ctx.config.retry = retry;
        ctx.stats = &stats;
        ctx.onDelivered = [this](std::uint64_t) {
            ++deliveries;
            lastDelivery = system.now();
        };
        return ctx;
    }

    int peers() const { return system.numGpus() - 1; }
};

} // namespace

TEST(LinkHealthTest, LossStreakBelowThresholdDoesNotFlap)
{
    MultiGpuSystem system(voltaPlatform());
    LinkHealthMonitor &mon = system.enableHealth();
    const int threshold = mon.policy().downAfterLosses;
    ASSERT_GE(threshold, 2);

    // One short of the streak: still healthy, no transition recorded.
    for (int i = 0; i < threshold - 1; ++i)
        mon.recordLoss(0, 1);
    EXPECT_EQ(mon.linkState(0, 1), LinkState::Healthy);
    EXPECT_TRUE(mon.transitions().empty());

    // A clean delivery resets the streak; the same number of losses
    // again still must not trip the link.
    mon.recordDelivery(0, 1, 4 * KiB, 0, 1);
    for (int i = 0; i < threshold - 1; ++i)
        mon.recordLoss(0, 1);
    EXPECT_EQ(mon.linkState(0, 1), LinkState::Healthy);

    // The full streak does.
    mon.recordDelivery(0, 1, 4 * KiB, 0, 1);
    for (int i = 0; i < threshold; ++i)
        mon.recordLoss(0, 1);
    EXPECT_EQ(mon.linkState(0, 1), LinkState::Down);
    ASSERT_EQ(mon.transitions().size(), 1u);
    EXPECT_EQ(mon.transitions()[0].to, LinkState::Down);
}

TEST(LinkHealthTest, OneSlowDeliveryDoesNotDegrade)
{
    MultiGpuSystem system(voltaPlatform());
    LinkHealthMonitor &mon = system.enableHealth();
    const HealthPolicy &policy = mon.policy();

    // Prime the EWMA with nominal-speed samples (actual == 1 tick
    // makes the achieved fraction saturate at 1.0).
    for (int i = 0; i < policy.minSamples; ++i)
        mon.recordDelivery(0, 1, 64 * KiB, 0, 1);
    EXPECT_EQ(mon.linkState(0, 1), LinkState::Healthy);

    // One pathologically slow delivery: the EWMA absorbs the spike
    // (1 - alpha stays above the degrade threshold), no flap.
    mon.recordDelivery(0, 1, 64 * KiB, 0, ticksPerSecond);
    EXPECT_EQ(mon.linkState(0, 1), LinkState::Healthy);
    EXPECT_TRUE(mon.transitions().empty());

    // A sustained slowdown does degrade.
    for (int i = 0; i < 16; ++i)
        mon.recordDelivery(0, 1, 64 * KiB, 0, ticksPerSecond);
    EXPECT_EQ(mon.linkState(0, 1), LinkState::Degraded);
    EXPECT_LT(mon.residualFraction(0, 1), policy.degradedBwFraction);
}

TEST(LinkHealthTest, DegradedRecoveryRequiresStreakAndBandwidth)
{
    MultiGpuSystem system(voltaPlatform());
    LinkHealthMonitor &mon = system.enableHealth();

    for (int i = 0; i < 16; ++i)
        mon.recordDelivery(0, 1, 64 * KiB, 0, ticksPerSecond);
    ASSERT_EQ(mon.linkState(0, 1), LinkState::Degraded);

    // Hysteresis: a couple of fast deliveries are not enough — the
    // EWMA must cross the *higher* healthy threshold with a streak.
    mon.recordDelivery(0, 1, 64 * KiB, 0, 1);
    EXPECT_EQ(mon.linkState(0, 1), LinkState::Degraded);

    for (int i = 0; i < 32; ++i)
        mon.recordDelivery(0, 1, 64 * KiB, 0, 1);
    EXPECT_EQ(mon.linkState(0, 1), LinkState::Healthy);

    // Exactly two transitions: in and out. No flapping in between.
    ASSERT_EQ(mon.transitions().size(), 2u);
    EXPECT_EQ(mon.transitions()[0].to, LinkState::Degraded);
    EXPECT_EQ(mon.transitions()[1].to, LinkState::Healthy);
    EXPECT_DOUBLE_EQ(mon.residualFraction(0, 1), 1.0);
}

TEST(LinkHealthTest, DownDetectionLatencyIsBounded)
{
    // A link that dies mid-run must be declared DOWN after exactly
    // downAfterLosses consecutive losses — no earlier, no later.
    HealthHarness h((voltaPlatform()));
    LinkHealthMonitor &mon = h.system.enableHealth();

    FaultPlan plan;
    plan.downLink(0, maxTick, 0, 1);
    h.system.installFaults(std::move(plan));

    std::uint64_t losses_at_down = 0;
    Tick down_tick = 0;
    mon.addListener([&](int s, int d, LinkState, LinkState to) {
        if (s == 0 && d == 1 && to == LinkState::Down) {
            losses_at_down = static_cast<std::uint64_t>(
                mon.stats().get("health.losses"));
            down_tick = h.system.now();
        }
    });

    HardwareAgent agent(
        h.context(TransferMechanism::Hardware, testRetry(8)));
    for (int c = 0; c < 8; ++c)
        agent.chunkReady(c, 16 * KiB);
    h.system.run();

    EXPECT_EQ(mon.linkState(0, 1), LinkState::Down);
    // Only 0->1 deliveries are lost, so the monitor's loss count at
    // the transition is the detection latency in observations.
    EXPECT_EQ(losses_at_down, static_cast<std::uint64_t>(
                                  mon.policy().downAfterLosses));
    // Drops are observed when the transfer is booked (cut-through
    // fabric), so detection can land at the submission tick itself —
    // only the upper bound is meaningful.
    EXPECT_LE(down_tick, h.lastDelivery);
    // Retry + fallback still landed every chunk everywhere.
    EXPECT_EQ(h.deliveries, 8 * h.peers());
}

TEST(LinkHealthTest, FlappingLinkRecoversToHealthyUnderLoad)
{
    // A link that dies and later recovers mid-run must be walked all
    // the way back to HEALTHY purely through observed deliveries —
    // the monitor gets no out-of-band signal that the fault cleared.
    HealthHarness h((voltaPlatform()));
    LinkHealthMonitor &mon = h.system.enableHealth();

    FaultPlan plan;
    plan.downLink(0, 400 * ticksPerMicrosecond, 0, 1);
    h.system.installFaults(std::move(plan));

    // Chunks keep streaming across the outage window, so the link
    // sees losses while dead and fresh clean samples once it heals.
    PollingAgent agent(
        h.context(TransferMechanism::Polling, testRetry(6)));
    auto &eq = h.system.eventQueue();
    const int chunks = 32;
    for (int c = 0; c < chunks; ++c) {
        eq.schedule(static_cast<Tick>(c) * 50 * ticksPerMicrosecond,
                    [&agent, c] { agent.chunkReady(c, 64 * KiB); });
    }
    h.system.run();

    // The link flapped: declared DOWN during the outage, recovered
    // after it, and settled HEALTHY by the end of the run.
    bool went_down = false;
    bool recovered = false;
    for (const auto &t : mon.transitions()) {
        if (t.src != 0 || t.dst != 1)
            continue;
        if (t.to == LinkState::Down)
            went_down = true;
        else if (went_down)
            recovered = true;
    }
    EXPECT_TRUE(went_down);
    EXPECT_TRUE(recovered);
    EXPECT_EQ(mon.linkState(0, 1), LinkState::Healthy);

    // No chunk was lost or double-counted across the flap.
    EXPECT_EQ(h.deliveries, chunks * h.peers());
}

TEST(LinkHealthTest, TransitionHoldoffDampensBorderlineFlapping)
{
    // A link straddling the degrade threshold flips at delivery rate
    // without a holdoff; with one, the classification may change at
    // most once per holdoff window.
    auto flap_count = [](Tick holdoff) {
        MultiGpuSystem system(voltaPlatform());
        HealthPolicy policy;
        policy.transitionHoldoff = holdoff;
        LinkHealthMonitor &mon = system.enableHealth(policy);
        auto &eq = system.eventQueue();

        // Alternate bursts of slow and fast samples (one sample per
        // microsecond, eight per burst): the EWMA swings across both
        // hysteresis thresholds once per burst.
        for (int i = 0; i < 64; ++i) {
            const bool slow = (i / 8) % 2 == 0;
            eq.schedule(static_cast<Tick>(i) * ticksPerMicrosecond,
                        [&mon, slow] {
                            mon.recordDelivery(0, 1, 64 * KiB, 0,
                                               slow ? ticksPerSecond
                                                    : 1);
                        });
        }
        system.run();
        return mon.transitions().size();
    };

    const auto free_running = flap_count(0);
    const auto held = flap_count(32 * ticksPerMicrosecond);
    ASSERT_GT(free_running, 2u);
    EXPECT_LT(held, free_running);
    // 64 us of samples, 32 us holdoff: at most the initial transition
    // plus two holdoff expiries.
    EXPECT_LE(held, 3u);
}

TEST(LinkHealthTest, ProbingGivesUpOnAPermanentlyDeadLink)
{
    HealthHarness h((voltaPlatform()));
    HealthPolicy policy;
    policy.probeInterval = 5 * ticksPerMicrosecond;
    policy.maxProbeFailures = 4;
    LinkHealthMonitor &mon = h.system.enableHealth(policy);

    FaultPlan plan;
    plan.downLink(0, maxTick, 0, 1);
    h.system.installFaults(std::move(plan));

    HardwareAgent agent(
        h.context(TransferMechanism::Hardware, testRetry(4)));
    agent.chunkReady(0, 4 * KiB);
    h.system.run(); // Must terminate: probing is bounded.

    EXPECT_EQ(mon.linkState(0, 1), LinkState::Down);
    EXPECT_GT(mon.stats().get("health.probes"), 0.0);
    EXPECT_LE(mon.stats().get("health.probes"),
              static_cast<double>(policy.maxProbeFailures));
}

TEST(LinkHealthTest, ToFaultPlanMirrorsObservedState)
{
    MultiGpuSystem system(voltaPlatform());
    LinkHealthMonitor &mon = system.enableHealth();

    for (int i = 0; i < mon.policy().downAfterLosses; ++i)
        mon.recordLoss(0, 1);
    for (int i = 0; i < 16; ++i)
        mon.recordDelivery(2, 3, 64 * KiB, 0, ticksPerSecond);
    ASSERT_EQ(mon.linkState(0, 1), LinkState::Down);
    ASSERT_EQ(mon.linkState(2, 3), LinkState::Degraded);

    const FaultPlan plan = mon.toFaultPlan();
    ASSERT_EQ(plan.episodes.size(), 2u);
    EXPECT_NO_THROW(plan.validate(system.numGpus()));
    EXPECT_EQ(plan.episodes[0].kind, FaultKind::LinkDown);
    EXPECT_EQ(plan.episodes[0].src, 0);
    EXPECT_EQ(plan.episodes[0].dst, 1);
    EXPECT_EQ(plan.episodes[1].kind, FaultKind::LinkDegrade);
    EXPECT_GT(plan.episodes[1].severity, 0.0);
}

TEST(RerouterTest, PlansDetourAroundDownLink)
{
    MultiGpuSystem system(pairwiseVolta());
    LinkHealthMonitor &mon = system.enableHealth();
    Rerouter &rr = system.enableReroute();

    // Healthy: one direct leg.
    auto legs = rr.plan(0, 1);
    ASSERT_EQ(legs.size(), 1u);
    EXPECT_TRUE(legs[0].direct());

    for (int i = 0; i < mon.policy().downAfterLosses; ++i)
        mon.recordLoss(0, 1);
    legs = rr.plan(0, 1);
    // On 4 GPUs both healthy relays (2 and 3) survive, so the detour
    // fans out across them; deterministic tie-break orders by id.
    ASSERT_EQ(legs.size(), 2u);
    EXPECT_EQ(legs[0].via(), 2);
    EXPECT_EQ(legs[1].via(), 3);
    EXPECT_NEAR(legs[0].fraction + legs[1].fraction, 1.0, 1e-9);
}

TEST(RerouterTest, SplitsProportionallyOnDegradedLink)
{
    MultiGpuSystem system(pairwiseVolta());
    LinkHealthMonitor &mon = system.enableHealth();
    Rerouter &rr = system.enableReroute();

    for (int i = 0; i < 16; ++i)
        mon.recordDelivery(0, 1, 64 * KiB, 0, ticksPerSecond);
    ASSERT_EQ(mon.linkState(0, 1), LinkState::Degraded);

    // This link is degraded so badly (residual ~1%) that its share of
    // a proportional split falls below the floor: the payload moves
    // entirely to the relay fan-out, split across both relays.
    const auto legs = rr.plan(0, 1);
    ASSERT_EQ(legs.size(), 2u);
    EXPECT_GE(legs[0].via(), 0);
    EXPECT_GE(legs[1].via(), 0);
    EXPECT_NEAR(legs[0].fraction + legs[1].fraction, 1.0, 1e-9);
    for (const auto &leg : legs)
        EXPECT_GE(leg.fraction, rr.policy().minSplitFraction);
}

TEST(RerouterTest, AgentTrafficDetoursAndAllChunksLand)
{
    HealthHarness h((pairwiseVolta()));
    h.system.enableHealth();
    Rerouter &rr = h.system.enableReroute();

    FaultPlan plan;
    plan.downLink(0, maxTick, 0, 1); // gpu0 -> gpu1 dead forever.
    h.system.installFaults(std::move(plan));

    // Chunks become ready over time (as a real producer kernel
    // drains), so sends issued after the DOWN verdict can detour.
    PollingAgent agent(
        h.context(TransferMechanism::Polling, testRetry(6)));
    const int chunks = 16;
    auto &eq = h.system.eventQueue();
    for (int c = 0; c < chunks; ++c) {
        eq.schedule(static_cast<Tick>(c) * 50 * ticksPerMicrosecond,
                    [&agent, c] { agent.chunkReady(c, 64 * KiB); });
    }
    h.system.run();

    // Exactly-once delivery accounting survives the detours (the
    // DOWN link's payload fans out across both relays, so the moves
    // show up as splits).
    EXPECT_EQ(h.deliveries, chunks * h.peers());
    EXPECT_GT(rr.stats().get("reroute.splits"), 0.0);
    EXPECT_GT(rr.stats().get("reroute.relay_hops"), 0.0);
    EXPECT_GT(rr.stats().get("reroute.bytes_detoured"), 0.0);
    EXPECT_EQ(h.system.health()->linkState(0, 1), LinkState::Down);
}

TEST(RerouterTest, ReroutedRunBeatsRetryOnly)
{
    // With gpu0->gpu1 dead from the start, a retry-only run burns its
    // attempt budget per chunk before the reliable fallback; the
    // rerouted run walks around the corpse. Detours must win.
    auto run_scenario = [](bool reroute) {
        HealthHarness h((pairwiseVolta()));
        if (reroute)
            h.system.enableReroute();
        FaultPlan plan;
        plan.downLink(0, maxTick, 0, 1);
        h.system.installFaults(std::move(plan));

        PollingAgent agent(
            h.context(TransferMechanism::Polling, testRetry(6)));
        auto &eq = h.system.eventQueue();
        for (int c = 0; c < 16; ++c) {
            eq.schedule(
                static_cast<Tick>(c) * 50 * ticksPerMicrosecond,
                [&agent, c] { agent.chunkReady(c, 64 * KiB); });
        }
        h.system.run();
        EXPECT_EQ(h.deliveries, 16 * h.peers());
        return h.lastDelivery;
    };

    const Tick retry_only = run_scenario(false);
    const Tick rerouted = run_scenario(true);
    EXPECT_LT(rerouted, retry_only);
}

TEST(RerouterTest, IdenticalSeedsReplayTickForTick)
{
    auto run_once = [] {
        HealthHarness h((pairwiseVolta()));
        h.system.enableReroute();
        FaultPlan plan;
        plan.seed = 99;
        plan.downLink(0, maxTick, 0, 1);
        plan.dropDeliveries(0, maxTick, 0.05, 2, 3);
        h.system.installFaults(std::move(plan));

        PollingAgent agent(
            h.context(TransferMechanism::Polling, testRetry(6)));
        auto &eq = h.system.eventQueue();
        for (int c = 0; c < 16; ++c) {
            eq.schedule(
                static_cast<Tick>(c) * 50 * ticksPerMicrosecond,
                [&agent, c] { agent.chunkReady(c, 64 * KiB); });
        }
        h.system.run();

        return std::tuple<Tick, int, double, double, double>(
            h.lastDelivery, h.deliveries,
            h.system.rerouter()->stats().get("reroute.splits"),
            h.system.rerouter()->stats().get("reroute.relay_hops"),
            h.system.health()->stats().get("health.transitions"));
    };

    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a, b);
    EXPECT_GT(std::get<2>(a), 0.0);
}

TEST(LinkHealthTest, MttrLifecycleRepromotesAndDropsDetours)
{
    // A seeded MTTR/MTBF lifecycle kills the 0->1 link at least once
    // inside its horizon and repairs it. Under continuous load the
    // monitor must walk the link back to HEALTHY and the rerouter
    // must drop its detour plans once the wire re-promotes — traffic
    // after recovery rides the direct link again.
    HealthHarness h((pairwiseVolta()));
    h.system.enableHealth();
    Rerouter &rr = h.system.enableReroute();

    // Seed 1 draws two outages, [97, 244) and [283, 500) us: long
    // enough for the loss streak to trip DOWN, with over a
    // millisecond of clean traffic after the last repair.
    LinkLifecycleOptions lifecycle;
    lifecycle.mtbf = 80 * ticksPerMicrosecond;
    lifecycle.mttr = 200 * ticksPerMicrosecond;
    lifecycle.horizon = 500 * ticksPerMicrosecond;
    FaultPlan plan;
    plan.flapLink(1, 0, 1, lifecycle);
    ASSERT_FALSE(plan.empty());
    h.system.installFaults(std::move(plan));

    // Chunks stream well past the lifecycle horizon, so the link
    // sees losses while dead and clean samples after every repair.
    PollingAgent agent(
        h.context(TransferMechanism::Polling, testRetry(6)));
    auto &eq = h.system.eventQueue();
    const int chunks = 40;
    for (int c = 0; c < chunks; ++c) {
        eq.schedule(static_cast<Tick>(c) * 40 * ticksPerMicrosecond,
                    [&agent, c] { agent.chunkReady(c, 64 * KiB); });
    }
    h.system.run();

    bool went_down = false;
    bool recovered = false;
    for (const auto &t : h.system.health()->transitions()) {
        if (t.src != 0 || t.dst != 1)
            continue;
        if (t.to == LinkState::Down)
            went_down = true;
        else if (went_down && t.to == LinkState::Healthy)
            recovered = true;
    }
    EXPECT_TRUE(went_down);
    EXPECT_TRUE(recovered);
    EXPECT_EQ(h.system.health()->linkState(0, 1), LinkState::Healthy);

    // Re-promotion evicted the detour: the post-recovery plan is the
    // plain direct link, and no chunk was lost or duplicated.
    const auto &legs = rr.plan(0, 1);
    ASSERT_EQ(legs.size(), 1u);
    EXPECT_TRUE(legs[0].direct());
    EXPECT_EQ(h.deliveries, chunks * h.peers());
}

TEST(RerouterTest, PushInvalidatesExactlyOncePerWireTransition)
{
    MultiGpuSystem system(pairwiseVolta());
    LinkHealthMonitor &mon = system.enableHealth();
    Rerouter &rr = system.enableReroute();
    ASSERT_TRUE(rr.pushInvalidation());

    // Congestion round trip: HEALTHY -> CONGESTED -> HEALTHY. Both
    // flips reach the push listener and both are ignored.
    for (int i = 0; i < 8; ++i)
        mon.recordSample(0, 1, 64 * KiB, ticksPerSecond, 1);
    ASSERT_EQ(mon.linkState(0, 1), LinkState::Congested);
    for (int i = 0; i < 48; ++i)
        mon.recordSample(0, 1, 64 * KiB, 0, 1);
    ASSERT_EQ(mon.linkState(0, 1), LinkState::Healthy);
    EXPECT_EQ(rr.stats().get("reroute.push_invalidations"), 0.0);
    EXPECT_EQ(rr.stats().get("reroute.push_ignored"), 2.0);

    // Wire round trip: HEALTHY -> DOWN -> HEALTHY. Each wire
    // transition invalidates exactly once — the counters stay equal.
    for (int i = 0; i < mon.policy().downAfterLosses; ++i)
        mon.recordLoss(0, 1);
    ASSERT_EQ(mon.linkState(0, 1), LinkState::Down);
    EXPECT_EQ(rr.stats().get("reroute.push_invalidations"),
              mon.stats().get("health.wire_transitions"));

    for (int i = 0; i < 16; ++i)
        mon.recordSample(0, 1, 64 * KiB, 0, 1);
    ASSERT_EQ(mon.linkState(0, 1), LinkState::Healthy);
    EXPECT_EQ(mon.stats().get("health.wire_transitions"), 2.0);
    EXPECT_EQ(rr.stats().get("reroute.push_invalidations"), 2.0);
    EXPECT_EQ(rr.stats().get("reroute.push_ignored"), 2.0);
}

TEST(RerouterTest, QuietFabricServesPlansWithZeroEpochReads)
{
    MultiGpuSystem system(pairwiseVolta());
    system.enableHealth();
    Rerouter &rr = system.enableReroute(); // Push-invalidation mode.

    const int n = system.numGpus();
    const int pairs = n * (n - 1);
    const int rounds = 100;
    for (int round = 0; round < rounds; ++round) {
        for (int s = 0; s < n; ++s) {
            for (int d = 0; d < n; ++d) {
                if (s != d) {
                    ASSERT_TRUE(rr.plan(s, d)[0].direct());
                }
            }
        }
    }
    // Quiet fabric: one compute per pair, everything else a flag
    // check — and not a single provider epoch read on the send path.
    EXPECT_EQ(rr.stats().get("reroute.epoch_reads"), 0.0);
    EXPECT_EQ(rr.stats().get("reroute.plan_computes"),
              static_cast<double>(pairs));
    EXPECT_EQ(rr.stats().get("reroute.plan_cache_hits"),
              static_cast<double>((rounds - 1) * pairs));

    // Contrast: a pull-mode rerouter on the same monitor pays epoch
    // reads on every validated lookup.
    Rerouter pull(system.eventQueue(), system.fabric(),
                  *system.health());
    for (int round = 0; round < 10; ++round)
        pull.plan(0, 1);
    EXPECT_GT(pull.stats().get("reroute.epoch_reads"), 0.0);
}

TEST(ReprofilerTest, RequiresHealthMonitor)
{
    MultiGpuSystem system(voltaPlatform());
    auto factory = [](int gpus) {
        auto w = makeSmallWorkload("SSSP");
        w->setup(gpus);
        return w;
    };
    EXPECT_THROW(AdaptiveReprofiler(system, factory, TransferConfig{}),
                 FatalError);
}

TEST(ReprofilerTest, RefreshOnlyAfterLinkStateChange)
{
    MultiGpuSystem system(voltaPlatform());
    LinkHealthMonitor &mon = system.enableHealth();
    auto factory = [](int gpus) {
        auto w = makeSmallWorkload("SSSP");
        w->setup(gpus);
        return w;
    };
    TransferConfig initial;
    initial.mechanism = TransferMechanism::Polling;
    initial.chunkBytes = 64 * KiB;
    initial.transferThreads = 2048;
    initial.retry = testRetry();
    AdaptiveReprofiler reprofiler(system, factory, initial);

    // Quiet fabric: refresh is a no-op and costs nothing.
    EXPECT_FALSE(reprofiler.dirty());
    EXPECT_FALSE(reprofiler.refresh());
    EXPECT_DOUBLE_EQ(reprofiler.stats().get("reprofile.sweeps"), 0.0);

    // A link dies: the next refresh runs a narrowed sweep.
    for (int i = 0; i < mon.policy().downAfterLosses; ++i)
        mon.recordLoss(0, 1);
    EXPECT_TRUE(reprofiler.dirty());
    reprofiler.refresh();
    EXPECT_FALSE(reprofiler.dirty());
    EXPECT_DOUBLE_EQ(reprofiler.stats().get("reprofile.sweeps"), 1.0);
    EXPECT_GT(reprofiler.stats().get("reprofile.candidates"), 0.0);
    // The adopted config keeps the runtime's retry policy.
    EXPECT_TRUE(reprofiler.current().retry.enabled);
}

TEST(ReprofilerTest, RuntimeHotSwapsAtIterationBoundary)
{
    auto run_once = [] {
        auto workload = makeSmallWorkload("Jacobi");
        workload->setup(4);

        MultiGpuSystem system(voltaPlatform());
        system.enableHealth();
        FaultPlan plan;
        plan.downLink(0, maxTick, 0, 1);
        system.installFaults(std::move(plan));

        auto factory = [](int gpus) {
            auto w = makeSmallWorkload("Jacobi");
            w->setup(gpus);
            return w;
        };
        TransferConfig initial;
        initial.mechanism = TransferMechanism::Polling;
        initial.chunkBytes = 64 * KiB;
        initial.transferThreads = 2048;
        initial.retry = testRetry();
        AdaptiveReprofiler reprofiler(system, factory, initial);

        ProactRuntime::Options options;
        options.config = initial;
        options.reprofiler = &reprofiler;
        ProactRuntime runtime(system, options);
        const Tick ticks = runtime.run(*workload);

        EXPECT_GT(reprofiler.stats().get("reprofile.sweeps"), 0.0);
        return std::pair<Tick, double>(
            ticks, reprofiler.stats().get("reprofile.sweeps"));
    };

    // Deterministic under replay, including the nested online sweeps.
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a, b);
}
