/**
 * @file
 * Minimal configurable workload for runtime/profiler/baseline tests.
 *
 * Each GPU produces a fixed-size partition per iteration with a
 * contiguous CTA mapping; the functional body writes a recognizable
 * pattern into a shared array so tests can assert that every
 * paradigm executes the same computation.
 */

#ifndef PROACT_TESTS_TOY_WORKLOAD_HH
#define PROACT_TESTS_TOY_WORKLOAD_HH

#include "proact/region.hh"
#include "workloads/workload.hh"

#include <cstdint>
#include <vector>

namespace proact::test {

class ToyWorkload : public Workload
{
  public:
    struct Params
    {
        std::uint64_t partitionBytes = 256 * KiB;
        int ctasPerGpu = 32;
        int iterations = 3;
        double ctaFlops = 1.0e5;
        std::uint64_t ctaLocalBytes = 64 * KiB;
        std::uint32_t inlineStoreBytes = 256;
        bool sequential = true;
    };

    ToyWorkload() : ToyWorkload(Params{}) {}
    explicit ToyWorkload(Params params) : _params(params) {}

    std::string name() const override { return "Toy"; }

    void
    setup(int num_gpus) override
    {
        _numGpus = num_gpus;
        _data.assign(
            num_gpus * _params.partitionBytes / sizeof(double), 0.0);
        _ctaRuns = 0;
    }

    int numIterations() const override { return _params.iterations; }

    TrafficProfile
    traffic() const override
    {
        return TrafficProfile{_params.inlineStoreBytes,
                              _params.sequential};
    }

    bool
    verify() const override
    {
        // After the run every element holds the last iteration's id.
        const double expect = _params.iterations;
        for (const double v : _data) {
            if (v != expect)
                return false;
        }
        return true;
    }

    /** Total CTA body invocations observed (functional or not). */
    long ctaRuns() const { return _ctaRuns; }

  protected:
    Phase
    buildPhase(int iter) override
    {
        Phase p;
        p.perGpu.resize(_numGpus);
        const std::uint64_t doubles_per_gpu =
            _params.partitionBytes / sizeof(double);

        for (int g = 0; g < _numGpus; ++g) {
            GpuPhaseWork &work = p.perGpu[g];
            work.kernel.name = "toy";
            work.kernel.numCtas = _params.ctasPerGpu;
            work.kernel.body = [this, g, iter,
                                doubles_per_gpu](const CtaContext &ctx) {
                ++_ctaRuns;
                if (ctx.functional) {
                    const std::uint64_t lo = g * doubles_per_gpu
                        + doubles_per_gpu * ctx.ctaId / ctx.numCtas;
                    const std::uint64_t hi = g * doubles_per_gpu
                        + doubles_per_gpu * (ctx.ctaId + 1)
                            / ctx.numCtas;
                    for (std::uint64_t i = lo; i < hi; ++i)
                        _data[i] = iter + 1;
                }
                CtaWork w;
                w.flops = _params.ctaFlops;
                w.localBytes = _params.ctaLocalBytes;
                return w;
            };
            work.bytesProduced = _params.partitionBytes;
            work.ctaRange = mappings::contiguous(
                _params.partitionBytes, _params.ctasPerGpu);
        }
        return p;
    }

  private:
    Params _params;
    std::vector<double> _data;
    long _ctaRuns = 0;
};

} // namespace proact::test

#endif // PROACT_TESTS_TOY_WORKLOAD_HH
