/**
 * @file
 * Uniform handle on the paper's communication paradigms
 * (Sec. IV-B): construct any of them behind the common Runtime
 * interface so harnesses, examples and tests can sweep paradigms
 * without duplicating wiring.
 */

#ifndef PROACT_HARNESS_PARADIGM_HH
#define PROACT_HARNESS_PARADIGM_HH

#include "proact/config.hh"
#include "system/multi_gpu_system.hh"
#include "workloads/workload.hh"

#include <memory>
#include <string>
#include <vector>

namespace proact {

/** The evaluated design alternatives (paper Sec. IV-B). */
enum class Paradigm
{
    CudaMemcpy,      ///< Bulk-synchronous DMA duplication.
    UnifiedMemory,   ///< UM with best-effort hints.
    ProactInline,    ///< P2P stores injected into the kernel.
    ProactDecoupled, ///< Full PROACT with a decoupled agent.
    InfiniteBw,      ///< Limit study: free data movement.
};

std::string paradigmName(Paradigm paradigm);

/** All paradigms in the paper's Figure 7 presentation order. */
std::vector<Paradigm> allParadigms();

class AdaptiveReprofiler;

/**
 * Build a runtime executing @p paradigm on @p system.
 *
 * @param config Transfer configuration for ProactDecoupled (ignored
 *        by the other paradigms; a non-decoupled mechanism falls
 *        back to polling).
 * @param reprofiler Optional fault-adaptive reprofiler, consulted at
 *        iteration boundaries by the PROACT runtimes (ignored by the
 *        baselines). Not owned; may be nullptr.
 * @param checkpoint Iteration-boundary checkpoint policy for the
 *        PROACT runtimes (the baselines have no consistent boundary
 *        to checkpoint at and ignore it).
 * @param first_iteration Resume point for a recovery restart (PROACT
 *        runtimes only; 0 = run from the start).
 */
std::unique_ptr<Runtime>
makeRuntime(Paradigm paradigm, MultiGpuSystem &system,
            const TransferConfig &config = {},
            AdaptiveReprofiler *reprofiler = nullptr,
            const CheckpointPolicy &checkpoint = {},
            int first_iteration = 0);

} // namespace proact

#endif // PROACT_HARNESS_PARADIGM_HH
