#include "harness/paradigm.hh"

#include "baselines/runner.hh"
#include "proact/runtime.hh"
#include "sim/logging.hh"

namespace proact {

std::string
paradigmName(Paradigm paradigm)
{
    switch (paradigm) {
      case Paradigm::CudaMemcpy:
        return "cudaMemcpy";
      case Paradigm::UnifiedMemory:
        return "UM";
      case Paradigm::ProactInline:
        return "PROACT-inline";
      case Paradigm::ProactDecoupled:
        return "PROACT-decoupled";
      case Paradigm::InfiniteBw:
        return "Infinite-BW";
    }
    return "unknown";
}

std::vector<Paradigm>
allParadigms()
{
    return {Paradigm::UnifiedMemory, Paradigm::CudaMemcpy,
            Paradigm::ProactInline, Paradigm::ProactDecoupled,
            Paradigm::InfiniteBw};
}

std::unique_ptr<Runtime>
makeRuntime(Paradigm paradigm, MultiGpuSystem &system,
            const TransferConfig &config,
            AdaptiveReprofiler *reprofiler,
            const CheckpointPolicy &checkpoint, int first_iteration)
{
    switch (paradigm) {
      case Paradigm::CudaMemcpy:
        return std::make_unique<BulkMemcpyRuntime>(system);
      case Paradigm::UnifiedMemory:
        return std::make_unique<UnifiedMemoryRuntime>(system);
      case Paradigm::ProactInline: {
        ProactRuntime::Options options;
        // Inline ignores chunk/thread knobs but keeps the retry
        // policy so fault-tolerant sweeps cover it too.
        options.config = config;
        options.config.mechanism = TransferMechanism::Inline;
        options.checkpoint = checkpoint;
        options.firstIteration = first_iteration;
        // The reprofiler sweeps decoupled configurations only; a
        // hot-swap out of inline mid-run is not modeled.
        return std::make_unique<ProactRuntime>(system, options);
      }
      case Paradigm::ProactDecoupled: {
        ProactRuntime::Options options;
        options.config = config;
        if (!options.config.decoupled())
            options.config.mechanism = TransferMechanism::Polling;
        options.reprofiler = reprofiler;
        options.checkpoint = checkpoint;
        options.firstIteration = first_iteration;
        return std::make_unique<ProactRuntime>(system, options);
      }
      case Paradigm::InfiniteBw:
        return std::make_unique<IdealRuntime>(system);
    }
    panicError("makeRuntime: unknown paradigm");
}

} // namespace proact
