/**
 * @file
 * One-stop facade over the PROACT stack.
 *
 * A Session fixes a platform and exposes the full workflow of the
 * paper — profile a workload's configuration space, execute it under
 * any paradigm (fresh system per run so statistics never leak), and
 * produce side-by-side paradigm comparisons normalized to a
 * single-GPU baseline. Examples and benchmarks build on this.
 */

#ifndef PROACT_HARNESS_SESSION_HH
#define PROACT_HARNESS_SESSION_HH

#include "harness/paradigm.hh"
#include "proact/profiler.hh"
#include "system/platform.hh"
#include "workloads/workload.hh"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace proact {

/** Outcome of one paradigm execution. */
struct ParadigmRun
{
    Paradigm paradigm;
    Tick ticks = 0;

    /** Speedup over the single-GPU reference (0 when unknown). */
    double speedup = 0.0;

    /** Wire traffic the run put on the fabric. */
    std::uint64_t wireBytes = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t storeTransactions = 0;

    /**
     * @{ @name Fault-adaptive runtime counters
     * All zero on a fault-free run; harvested from the injector, the
     * retry layer, the health monitor, the rerouter and the adaptive
     * reprofiler when those are armed (PROACT_FAULTS and friends).
     */
    std::uint64_t faultsDropped = 0;    ///< Deliveries the plan lost.
    std::uint64_t retries = 0;          ///< Re-pushes after ack loss.
    std::uint64_t fallbacks = 0;        ///< Reliable-path activations.
    std::uint64_t linkTransitions = 0;  ///< Health state changes.
    std::uint64_t wireTransitions = 0;  ///< ... involving DEGRADED/DOWN.
    std::uint64_t congestionEvents = 0; ///< Links classified CONGESTED.
    std::uint64_t reroutes = 0;         ///< Detours + splits applied.
    std::uint64_t reprofileSweeps = 0;  ///< Narrowed sweeps run.
    std::uint64_t configSwaps = 0;      ///< Hot-swapped configs.
    /** @} */

    /**
     * @{ @name Device-loss / checkpoint outcome
     * Populated by the PROACT runtimes when the device watchdog or
     * checkpointing is armed (RunOptions::deviceHealth / checkpoint).
     */
    bool aborted = false;              ///< A GPU was declared LOST.
    int lostGpu = -1;                  ///< The LOST GPU (-1 = none).
    int completedIterations = 0;       ///< Iterations fully done.
    int checkpointIteration = -1;      ///< Latest checkpointed iter.
    int checkpoints = 0;               ///< Checkpoints written.
    Tick checkpointTicks = 0;          ///< Ticks spent checkpointing.
    std::uint64_t refusedDeliveries = 0; ///< Dead-endpoint refusals.
    std::uint64_t quiescedFlights = 0; ///< In-flight DMA aborted.
    std::uint64_t orphanedTransfers = 0; ///< Given-up dead transfers.
    Tick reprofileChargedTicks = 0;    ///< Sweep cost on timeline.
    /** @} */

    /**
     * One-line fault/health digest ("retries=3 reroutes=5 ...");
     * empty when every fault-adaptive counter is zero.
     */
    std::string faultSummary() const;
};

/** Factory producing fresh, set-up workload instances. */
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(int num_gpus)>;

/** Fixed-platform driver for profiling and paradigm comparisons. */
class Session
{
  public:
    /**
     * Programmatic control over one paradigm execution. The
     * env-driven run() overload builds one of these from the
     * PROACT_* environment; multi-tenant drivers (src/fleet) build
     * them directly so every tenant can carry its own fault plan and
     * tracing without touching global state.
     */
    struct RunOptions
    {
        TransferConfig config;

        /** Run the real math (verifiable) or timing-only (fast). */
        bool functional = true;

        /**
         * Fault schedule armed on the fresh system. Empty = perfect
         * fabric unless @c armFaults forces an (inert) injector.
         */
        FaultPlan faults;
        bool armFaults = false;

        /** Retry policy forced onto the config when faults are armed. */
        RetryPolicy retry;

        /** Link health monitoring on the fresh system. */
        bool health = false;
        HealthPolicy healthPolicy;

        /** Detours/splits around unhealthy links (implies health). */
        bool reroute = false;
        ReroutePolicy reroutePolicy;

        /**
         * Adaptive re-profiling at iteration boundaries (implies
         * health; needs reprofileFactory and ProactDecoupled).
         */
        bool reprofile = false;
        WorkloadFactory reprofileFactory;

        /**
         * Charge each narrowed re-profiling sweep's simulated cost to
         * the run's timeline (AdaptiveReprofiler's chargeTimeline —
         * PROACT_REPROFILE_CHARGE in the env overload).
         */
        bool reprofileCharge = false;

        /**
         * Device heartbeat watchdog on the fresh system: declares
         * GPUs LOST with hysteresis, quiesces their in-flight DMA and
         * poisons their links. Required for checkpointed recovery —
         * without it a device loss panics on missing deliveries.
         */
        bool deviceHealth = false;
        DeviceHealthPolicy deviceHealthPolicy;

        /** Iteration-boundary checkpoints (PROACT paradigms only). */
        CheckpointPolicy checkpoint;

        /**
         * Resume a recovery restart at this iteration (normally the
         * previous attempt's checkpointIteration + 1).
         */
        int firstIteration = 0;

        /**
         * Shard the paradigm execution's event engine across this
         * many cores (0 = serial; 1 = single-shard engine, the
         * determinism-gate reference). Engages only for PROACT
         * paradigms on PairwiseLinks platforms with a non-zero link
         * latency and at least two GPUs; everything else silently
         * runs serial. The env overload reads PROACT_SIM_SHARDS.
         * Stats and summaries are bit-identical at every shard
         * count; only wall-clock changes.
         */
        int simShards = 0;

        /**
         * Extra delivery observer registered on the fresh system's
         * fabric for the duration of the run — per-tenant tracing
         * riding alongside the health monitor's own observer.
         */
        Interconnect::DeliveryObserver deliveryObserver;
    };

    explicit Session(PlatformSpec platform);

    const PlatformSpec &platform() const { return _platform; }

    /**
     * Run the brute-force profiler on @p workload (timing-only).
     * The workload must be set up for the platform's GPU count.
     */
    ProfileResult profile(Workload &workload,
                          const Profiler::Options &options = {});

    /**
     * Execute @p workload under @p paradigm on a fresh system.
     *
     * With PROACT_FAULTS on, the env fault plan is armed and the
     * enabled fault-adaptive layers (health / reroute / reprofile,
     * see config.hh) are wired into the fresh system; the run result
     * carries the fault counters.
     *
     * @param functional Run the real math (verifiable) or
     *        timing-only (fast).
     * @param reprofile_factory Builds the short profiling workload
     *        the adaptive reprofiler re-sweeps on link-state changes;
     *        without one, re-profiling stays off for this run.
     */
    ParadigmRun run(Workload &workload, Paradigm paradigm,
                    const TransferConfig &config = {},
                    bool functional = true,
                    const WorkloadFactory &reprofile_factory = {});

    /**
     * Execute @p workload under @p paradigm with every knob given
     * programmatically — no environment reads. The fleet serving
     * layer runs each tenant through this overload.
     */
    ParadigmRun run(Workload &workload, Paradigm paradigm,
                    const RunOptions &options);

    /**
     * Full paper-style comparison: profile, run every paradigm, and
     * normalize against a single-GPU run built by @p factory.
     *
     * @param factory Creates a workload set up for the requested GPU
     *        count (called for the platform count and for 1).
     * @param functional Verify numerics on every paradigm run.
     */
    std::vector<ParadigmRun> compareParadigms(
        const WorkloadFactory &factory, bool functional = false,
        const Profiler::Options &profiler_options = {});

    /** Single-GPU reference time for @p factory's workload. */
    Tick singleGpuTicks(const WorkloadFactory &factory,
                        bool functional = false);

  private:
    PlatformSpec _platform;
};

} // namespace proact

#endif // PROACT_HARNESS_SESSION_HH
