/**
 * @file
 * One-stop facade over the PROACT stack.
 *
 * A Session fixes a platform and exposes the full workflow of the
 * paper — profile a workload's configuration space, execute it under
 * any paradigm (fresh system per run so statistics never leak), and
 * produce side-by-side paradigm comparisons normalized to a
 * single-GPU baseline. Examples and benchmarks build on this.
 */

#ifndef PROACT_HARNESS_SESSION_HH
#define PROACT_HARNESS_SESSION_HH

#include "harness/paradigm.hh"
#include "proact/profiler.hh"
#include "system/platform.hh"
#include "workloads/workload.hh"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace proact {

/** Outcome of one paradigm execution. */
struct ParadigmRun
{
    Paradigm paradigm;
    Tick ticks = 0;

    /** Speedup over the single-GPU reference (0 when unknown). */
    double speedup = 0.0;

    /** Wire traffic the run put on the fabric. */
    std::uint64_t wireBytes = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t storeTransactions = 0;
};

/** Factory producing fresh, set-up workload instances. */
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(int num_gpus)>;

/** Fixed-platform driver for profiling and paradigm comparisons. */
class Session
{
  public:
    explicit Session(PlatformSpec platform);

    const PlatformSpec &platform() const { return _platform; }

    /**
     * Run the brute-force profiler on @p workload (timing-only).
     * The workload must be set up for the platform's GPU count.
     */
    ProfileResult profile(Workload &workload,
                          const Profiler::Options &options = {});

    /**
     * Execute @p workload under @p paradigm on a fresh system.
     *
     * @param functional Run the real math (verifiable) or
     *        timing-only (fast).
     */
    ParadigmRun run(Workload &workload, Paradigm paradigm,
                    const TransferConfig &config = {},
                    bool functional = true);

    /**
     * Full paper-style comparison: profile, run every paradigm, and
     * normalize against a single-GPU run built by @p factory.
     *
     * @param factory Creates a workload set up for the requested GPU
     *        count (called for the platform count and for 1).
     * @param functional Verify numerics on every paradigm run.
     */
    std::vector<ParadigmRun> compareParadigms(
        const WorkloadFactory &factory, bool functional = false,
        const Profiler::Options &profiler_options = {});

    /** Single-GPU reference time for @p factory's workload. */
    Tick singleGpuTicks(const WorkloadFactory &factory,
                        bool functional = false);

  private:
    PlatformSpec _platform;
};

} // namespace proact

#endif // PROACT_HARNESS_SESSION_HH
