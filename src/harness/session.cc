#include "harness/session.hh"

#include "baselines/runner.hh"
#include "sim/logging.hh"

namespace proact {

Session::Session(PlatformSpec platform)
    : _platform(std::move(platform))
{
}

ProfileResult
Session::profile(Workload &workload,
                 const Profiler::Options &options)
{
    Profiler profiler(_platform, options);
    return profiler.profile(workload);
}

ParadigmRun
Session::run(Workload &workload, Paradigm paradigm,
             const TransferConfig &config, bool functional)
{
    MultiGpuSystem system(_platform);
    system.setFunctional(functional);

    // PROACT_FAULTS=1 turns any session run into a fault-injection
    // run: the env-described plan is armed on the fresh system and
    // the PROACT paths get the matching retry policy (a lossy fabric
    // without acknowledged delivery would lose deliveries).
    TransferConfig effective = config;
    if (envFaultsEnabled()) {
        system.installFaults(envFaultPlan());
        effective.retry = envRetryPolicy();
    }

    auto runtime = makeRuntime(paradigm, system, effective);

    ParadigmRun result;
    result.paradigm = paradigm;
    result.ticks = runtime->run(workload);
    result.wireBytes = system.fabric().totalWireBytes();
    result.payloadBytes = system.fabric().totalPayloadBytes();
    result.storeTransactions =
        system.fabric().totalStoreTransactions();

    if (functional && !workload.verify())
        fatalError("Session: '", workload.name(),
                   "' failed verification under ", runtime->name());
    return result;
}

Tick
Session::singleGpuTicks(const WorkloadFactory &factory,
                        bool functional)
{
    auto workload = factory(1);
    if (!workload)
        fatalError("Session: workload factory returned null");
    MultiGpuSystem system(_platform.withGpuCount(1));
    system.setFunctional(functional);
    IdealRuntime runtime(system);
    const Tick ticks = runtime.run(*workload);
    if (functional && !workload->verify())
        fatalError("Session: single-GPU '", workload->name(),
                   "' failed verification");
    return ticks;
}

std::vector<ParadigmRun>
Session::compareParadigms(const WorkloadFactory &factory,
                          bool functional,
                          const Profiler::Options &profiler_options)
{
    const Tick single = singleGpuTicks(factory, functional);

    // Profile on a dedicated (timing-only) instance.
    auto profile_workload = factory(_platform.numGpus);
    const ProfileResult prof =
        profile(*profile_workload, profiler_options);
    const TransferConfig decoupled_cfg = prof.bestDecoupled().config;

    std::vector<ParadigmRun> results;
    for (const Paradigm paradigm : allParadigms()) {
        auto workload = factory(_platform.numGpus);
        ParadigmRun run_result =
            run(*workload, paradigm, decoupled_cfg, functional);
        run_result.speedup = static_cast<double>(single)
            / static_cast<double>(run_result.ticks);
        results.push_back(run_result);
    }
    return results;
}

} // namespace proact
