#include "harness/session.hh"

#include "baselines/runner.hh"
#include "proact/reprofiler.hh"
#include "proact/runtime.hh"
#include "sim/logging.hh"

#include <sstream>

namespace proact {

std::string
ParadigmRun::faultSummary() const
{
    std::ostringstream oss;
    auto field = [&](const char *name, std::uint64_t value) {
        if (value == 0)
            return;
        if (oss.tellp() > 0)
            oss << " ";
        oss << name << "=" << value;
    };
    field("dropped", faultsDropped);
    field("retries", retries);
    field("fallbacks", fallbacks);
    field("transitions", linkTransitions);
    field("wire_transitions", wireTransitions);
    field("congested", congestionEvents);
    field("reroutes", reroutes);
    field("sweeps", reprofileSweeps);
    field("swaps", configSwaps);
    field("refused", refusedDeliveries);
    field("quiesced", quiescedFlights);
    field("orphaned", orphanedTransfers);
    field("checkpoints", static_cast<std::uint64_t>(checkpoints));
    if (aborted) {
        if (oss.tellp() > 0)
            oss << " ";
        oss << "lost_gpu=" << lostGpu;
    }
    return oss.str();
}

Session::Session(PlatformSpec platform)
    : _platform(std::move(platform))
{
}

ProfileResult
Session::profile(Workload &workload,
                 const Profiler::Options &options)
{
    Profiler profiler(_platform, options);
    return profiler.profile(workload);
}

ParadigmRun
Session::run(Workload &workload, Paradigm paradigm,
             const TransferConfig &config, bool functional,
             const WorkloadFactory &reprofile_factory)
{
    // PROACT_FAULTS=1 turns any session run into a fault-injection
    // run: the env-described plan is armed on the fresh system and
    // the PROACT paths get the matching retry policy (a lossy fabric
    // without acknowledged delivery would lose deliveries). The
    // fault-adaptive layers stack on top, each behind its own knob.
    RunOptions options;
    options.config = config;
    options.functional = functional;
    options.reprofileFactory = reprofile_factory;
    if (envFaultsEnabled()) {
        options.armFaults = true;
        options.faults = envFaultPlan();
        options.retry = envRetryPolicy();
        options.health = envHealthEnabled();
        options.healthPolicy = envHealthPolicy();
        options.reroute = envRerouteEnabled();
        options.reroutePolicy = envReroutePolicy();
        options.reprofile = envReprofileEnabled();
        options.reprofileCharge = envReprofileChargeEnabled();
        options.deviceHealth = envDeviceHealthEnabled();
        options.deviceHealthPolicy = envDeviceHealthPolicy();
    }
    // Checkpointing is independent of fault injection: a fault-free
    // run can still measure the checkpoint overhead.
    options.checkpoint = envCheckpointPolicy();
    // PROACT_SIM_SHARDS>1 shards the paradigm execution itself (the
    // same knob that fans out profiler sweeps); results stay
    // bit-identical to the serial-shard run.
    options.simShards = envSimShards();
    return run(workload, paradigm, options);
}

ParadigmRun
Session::run(Workload &workload, Paradigm paradigm,
             const RunOptions &options)
{
    // Sharding only covers the PROACT paradigms (their agents and
    // senders are shard-aware); the baselines keep the serial
    // engine. The system itself degrades to serial when the platform
    // cannot satisfy the conservative contract (see MultiGpuSystem).
    const bool proact = paradigm == Paradigm::ProactInline ||
        paradigm == Paradigm::ProactDecoupled;
    MultiGpuSystem system(_platform,
                          proact ? options.simShards : 0);
    system.setFunctional(options.functional);

    TransferConfig effective = options.config;
    std::unique_ptr<AdaptiveReprofiler> reprofiler;
    const bool armed = options.armFaults || !options.faults.empty();
    if (armed) {
        system.installFaults(options.faults);
        effective.retry = options.retry;
    }
    if (options.health || options.reroute || options.reprofile) {
        system.enableHealth(options.healthPolicy);
        // Boundary-aware bookings: in-flight transfers follow
        // degradation windows instead of keeping their stale
        // delivery tick. A shard-bound fabric has no rebookable
        // flights — losses are discovered synchronously — so the
        // knob stays off there (it would fatal).
        if (!system.sharded())
            system.fabric().setRebooking(true);
    }
    if (options.deviceHealth)
        system.enableDeviceHealth(options.deviceHealthPolicy);
    if (options.reroute)
        system.enableReroute(options.reroutePolicy);
    if (options.reprofile && options.reprofileFactory &&
        paradigm == Paradigm::ProactDecoupled) {
        TransferConfig initial = effective;
        if (!initial.decoupled())
            initial.mechanism = TransferMechanism::Polling;
        AdaptiveReprofiler::Options ropts;
        ropts.chargeTimeline = options.reprofileCharge;
        reprofiler = std::make_unique<AdaptiveReprofiler>(
            system, options.reprofileFactory, initial, ropts);
    }

    // Per-tenant tracing rides the observer list next to the health
    // monitor's slot — exactly what the single-slot setter forbade.
    if (options.deliveryObserver)
        system.fabric().addDeliveryObserver(options.deliveryObserver);

    auto runtime = makeRuntime(paradigm, system, effective,
                               reprofiler.get(), options.checkpoint,
                               options.firstIteration);

    ParadigmRun result;
    result.paradigm = paradigm;
    result.ticks = runtime->run(workload);
    result.wireBytes = system.fabric().totalWireBytes();
    result.payloadBytes = system.fabric().totalPayloadBytes();
    result.storeTransactions =
        system.fabric().totalStoreTransactions();

    // Fault-adaptive counters for the summary line.
    auto u64 = [](double v) {
        return static_cast<std::uint64_t>(v);
    };
    if (const FaultInjector *faults = system.faults())
        result.faultsDropped = u64(faults->stats().get("faults.dropped"));
    if (const auto *pr = dynamic_cast<ProactRuntime *>(runtime.get())) {
        result.retries = u64(pr->stats().get("transfers.retried"));
        result.fallbacks =
            u64(pr->stats().get("fallback.activations"));
        result.configSwaps = u64(pr->stats().get("config_swaps"));
        result.aborted = pr->aborted();
        result.lostGpu = pr->lostGpu();
        result.completedIterations = pr->completedIterations();
        result.checkpointIteration = pr->checkpointIteration();
        result.checkpoints = pr->checkpoints();
        result.checkpointTicks = pr->checkpointTicks();
        result.orphanedTransfers =
            u64(pr->stats().get("transfers.orphaned"));
        result.reprofileChargedTicks = static_cast<Tick>(
            pr->stats().get("reprofile.charged_ticks"));
    }
    result.refusedDeliveries = system.fabric().refusedDeliveries();
    result.quiescedFlights = system.fabric().quiescedFlights();
    if (const LinkHealthMonitor *health = system.health()) {
        result.linkTransitions =
            u64(health->stats().get("health.transitions"));
        result.wireTransitions =
            u64(health->stats().get("health.wire_transitions"));
        result.congestionEvents =
            u64(health->stats().get("health.to_congested"));
    }
    if (const Rerouter *rerouter = system.rerouter()) {
        result.reroutes = u64(rerouter->stats().get("reroute.detours")
                              + rerouter->stats().get("reroute.splits"));
    }
    if (reprofiler) {
        result.reprofileSweeps =
            u64(reprofiler->stats().get("reprofile.sweeps"));
    }

    // An aborted run legitimately leaves the math unfinished, and a
    // resumed run never executed the iterations before its restart
    // point on this instance — neither can pass full verification.
    if (options.functional && !result.aborted &&
        options.firstIteration == 0 && !workload.verify()) {
        fatalError("Session: '", workload.name(),
                   "' failed verification under ", runtime->name());
    }
    return result;
}

Tick
Session::singleGpuTicks(const WorkloadFactory &factory,
                        bool functional)
{
    auto workload = factory(1);
    if (!workload)
        fatalError("Session: workload factory returned null");
    MultiGpuSystem system(_platform.withGpuCount(1));
    system.setFunctional(functional);
    IdealRuntime runtime(system);
    const Tick ticks = runtime.run(*workload);
    if (functional && !workload->verify())
        fatalError("Session: single-GPU '", workload->name(),
                   "' failed verification");
    return ticks;
}

std::vector<ParadigmRun>
Session::compareParadigms(const WorkloadFactory &factory,
                          bool functional,
                          const Profiler::Options &profiler_options)
{
    const Tick single = singleGpuTicks(factory, functional);

    // Profile on a dedicated (timing-only) instance. The factory
    // doubles as the sweep factory, so PROACT_SIM_SHARDS>1 fans the
    // candidate measurements out over a worker pool (results are
    // bit-identical to the serial sweep either way).
    auto profile_workload = factory(_platform.numGpus);
    Profiler::Options sweep_options = profiler_options;
    if (!sweep_options.sweepFactory)
        sweep_options.sweepFactory = factory;
    const ProfileResult prof =
        profile(*profile_workload, sweep_options);
    const TransferConfig decoupled_cfg = prof.bestDecoupled().config;

    std::vector<ParadigmRun> results;
    for (const Paradigm paradigm : allParadigms()) {
        auto workload = factory(_platform.numGpus);
        ParadigmRun run_result =
            run(*workload, paradigm, decoupled_cfg, functional,
                factory);
        run_result.speedup = static_cast<double>(single)
            / static_cast<double>(run_result.ticks);
        results.push_back(run_result);
    }
    return results;
}

} // namespace proact
