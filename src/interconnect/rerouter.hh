/**
 * @file
 * Topology-aware detours and route-splitting around unhealthy links.
 *
 * The Rerouter consults a LinkStateProvider (normally the
 * LinkHealthMonitor) before a transfer books wire time. A DOWN direct
 * link means the payload detours through the relay GPU whose two legs
 * have the most residual bandwidth (e.g. GPU0 -> GPU2 -> GPU1 when
 * the 0<->1 link died); a DEGRADED direct link means the payload is
 * split between the direct link and the best relay, proportionally to
 * their residual bandwidth. Relay paths cost double wire, so their
 * score is discounted before comparing against the direct link.
 *
 * The rerouter never submits traffic itself: callers hand it a submit
 * functor (RetryingSender::send, Interconnect::transfer, ...) and the
 * rerouter decomposes the request into legs, forwarding each through
 * that functor. The original onComplete fires exactly once, when the
 * last leg has fully landed, so delivery accounting upstream (e.g.
 * ProactRuntime's expected-vs-seen counters) is preserved. All
 * decisions are pure functions of the health snapshot, so runs
 * replay tick-for-tick.
 */

#ifndef PROACT_INTERCONNECT_REROUTER_HH
#define PROACT_INTERCONNECT_REROUTER_HH

#include "interconnect/interconnect.hh"
#include "interconnect/link_state.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

#include <cstdint>
#include <functional>
#include <vector>

namespace proact {

/** Route-selection knobs. */
struct ReroutePolicy
{
    /**
     * Don't bother splitting when the relay would carry less than
     * this fraction of the payload (overhead beats benefit).
     */
    double minSplitFraction = 0.15;

    /** Don't split payloads smaller than this. */
    std::uint64_t minSplitBytes = 4 * KiB;

    /**
     * Relay paths consume wire on two links; their residual-bandwidth
     * score is multiplied by this before competing with the direct
     * link.
     */
    double relayDiscount = 0.5;
};

/**
 * Plans alternate routes from the live link-health classification.
 *
 * Stats (read via stats()):
 *  - reroute.detours:        transfers moved entirely off a DOWN link
 *  - reroute.splits:         transfers split across direct + relay
 *  - reroute.relay_hops:     second-leg submissions via a relay GPU
 *  - reroute.bytes_detoured: payload bytes that avoided the direct link
 *  - reroute.no_path:        DOWN link with no usable relay (sent
 *                            direct; the retry fallback guarantees it)
 */
class Rerouter
{
  public:
    /** One planned leg: direct (via < 0) or relayed through @c via. */
    struct Leg
    {
        int via = -1;
        double fraction = 1.0;
    };

    /** Functor that actually books a (single-link) transfer. */
    using Submit = std::function<Tick(const Interconnect::Request &)>;

    Rerouter(Interconnect &fabric, const LinkStateProvider &health,
             ReroutePolicy policy = {});

    /**
     * Current route decision for src -> dst: one direct leg when the
     * link is healthy (or nothing better exists), a single relay leg
     * when it is DOWN, or a proportional direct+relay split when it
     * is DEGRADED.
     */
    std::vector<Leg> plan(int src, int dst) const;

    /**
     * Decompose @p req along plan(src, dst) and forward every leg
     * through @p submit. The request's onComplete fires exactly once,
     * after all legs (including relay second hops) have landed.
     *
     * @return Predicted delivery tick of the slowest first-hop leg —
     *         exact for direct routes, a lower bound when a relay's
     *         second hop extends past it.
     */
    Tick send(const Submit &submit, Interconnect::Request req);

    const ReroutePolicy &policy() const { return _policy; }

    StatSet &stats() { return _stats; }
    const StatSet &stats() const { return _stats; }

  private:
    Interconnect &_fabric;
    const LinkStateProvider &_health;
    ReroutePolicy _policy;
    StatSet _stats;

    /**
     * Relay GPU with the best min-residual on both legs (discounted);
     * -1 when no relay has usable bandwidth. Ties break to the lowest
     * GPU id for determinism.
     */
    int bestVia(int src, int dst, double *score = nullptr) const;

    /** Submit one leg carrying @p bytes; joins via @p arrived. */
    Tick sendLeg(const Submit &submit,
                 const Interconnect::Request &base, const Leg &leg,
                 std::uint64_t bytes,
                 const std::function<void()> &arrived);
};

} // namespace proact

#endif // PROACT_INTERCONNECT_REROUTER_HH
