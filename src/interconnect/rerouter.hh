/**
 * @file
 * Topology-aware detours and route-splitting around unhealthy links.
 *
 * The Rerouter consults a LinkStateProvider (normally the
 * LinkHealthMonitor) before a transfer books wire time. A DOWN direct
 * link means the payload detours around it: the fan-out of healthy
 * single-relay candidates splits the payload proportionally to their
 * residual bandwidth (GPU0 -> GPUk -> GPU1 for several k when the
 * 0<->1 link died), and when no single relay survives — a whole
 * NVSwitch plane or baseboard down — a bounded BFS over the
 * health-filtered topology finds the shortest multi-relay path. A
 * DEGRADED direct link splits the payload between the direct link and
 * the relay fan-out, proportionally to residual bandwidth. Relay
 * paths cost extra wire, so their score is discounted per hop before
 * competing with the direct link.
 *
 * Plans are cached per (src, dst) and keyed on exactly what they
 * read. A plan computed while the direct link was HEALTHY read only
 * that link, so it revalidates against the provider's linkEpoch (its
 * transition count); any other plan read the whole row/column (relay
 * scores) and revalidates against routeEpoch, which changes only when
 * a link leaving src or entering dst transitions. On a 16-GPU DGX-2
 * under a dead baseboard this means the 184 still-healthy pairs never
 * recompute while relay-loaded links flap, and a transition
 * invalidates at most 2n-1 of the n^2 plans — all at one integer
 * compare per lookup.
 *
 * The rerouter never submits traffic itself: callers hand it a submit
 * functor (RetryingSender::send, Interconnect::transfer, ...) and the
 * rerouter decomposes the request into legs, forwarding each hop
 * through that functor. The original onComplete fires exactly once,
 * when the last leg has fully landed, so delivery accounting upstream
 * (e.g. ProactRuntime's expected-vs-seen counters) is preserved. All
 * decisions are pure functions of the health snapshot, so runs
 * replay tick-for-tick.
 */

#ifndef PROACT_INTERCONNECT_REROUTER_HH
#define PROACT_INTERCONNECT_REROUTER_HH

#include "interconnect/interconnect.hh"
#include "interconnect/link_state.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

#include <cstdint>
#include <functional>
#include <vector>

namespace proact {

/** Route-selection knobs. */
struct ReroutePolicy
{
    /**
     * Don't bother splitting when a leg would carry less than this
     * fraction of the payload (overhead beats benefit).
     */
    double minSplitFraction = 0.15;

    /** Don't split payloads smaller than this. */
    std::uint64_t minSplitBytes = 4 * KiB;

    /**
     * Relay paths consume wire on multiple links; their
     * residual-bandwidth score is multiplied by this once per hop
     * beyond the first before competing with the direct link.
     */
    double relayDiscount = 0.5;

    /**
     * Longest detour the BFS fallback may plan, counted in relay
     * GPUs (a path src -> a -> b -> dst has two). Bounds planning
     * cost and keeps pathological detours off large fabrics.
     */
    int maxRelayHops = 3;

    /**
     * How many single-relay candidates a detour or split fans out
     * across. On a DGX-2 a dead pair leaves 14 healthy relays;
     * spreading the payload over several of them multiplies the
     * detour bandwidth instead of hammering one relay's wires.
     */
    int maxRelayFanout = 4;

    /**
     * A relay only joins a DEGRADED-link split when its discounted
     * bottleneck score beats the direct residual by this factor. A
     * relay leg consumes egress wire at the source AND at the relay,
     * so a marginal win is a real loss — notably when the whole
     * fabric degrades uniformly (a dead NVSwitch plane) and
     * momentarily-healthy relay legs would otherwise siphon payload
     * onto equally-degraded wires and congest them further. The
     * split stays reserved for severe degradation, where the direct
     * link is nearly useless; DOWN-link detours are unaffected.
     */
    double relayAdvantage = 2.0;

    /**
     * Staleness tolerance for cached relay plans. A direct-link state
     * change always invalidates immediately (the plan's shape is
     * wrong); drift in *relay* conditions — endpoint congestion
     * flapping links between HEALTHY and CONGESTED — only re-weights
     * split fractions, so a relay plan tolerates it for up to this
     * long before recomputing. 0 recomputes on every relay-side
     * transition (epoch-validated mode) or never expires by time
     * (push-invalidated mode, where wire transitions already evict).
     */
    Tick planTtl = 200 * ticksPerMicrosecond;

    /**
     * Spread-don't-detour: a CONGESTED link is never by itself a
     * reason to leave the direct route (the backlog drains when the
     * competing flows do), but when a DOWN or DEGRADED link forces a
     * relay fan-out, each congested relay leg multiplies the relay's
     * score by this factor so payload spreads toward quiet relays
     * first without abandoning congested ones. 1.0 makes scoring
     * congestion-blind.
     */
    double congestedPenalty = 0.5;

    /**
     * Queueing-theoretic congestion weighting: instead of the flat
     * congestedPenalty discount, each CONGESTED leg's score divides
     * by (1 + queueRatio) — the provider's EWMA of queueing delay
     * over service time — so a leg that is twice as backed up takes
     * proportionally less of the spread. Under sustained multi-
     * tenant hotspots the flat discount treats a barely-congested
     * and a drowning relay identically; the queue weight splits
     * between them by their actual backlogs. Enabled from the
     * environment via PROACT_REROUTE_QUEUE_WEIGHT=1.
     */
    bool queueWeightedCongestion = false;
};

/**
 * Plans alternate routes from the live link-health classification.
 *
 * Stats (read via stats()):
 *  - reroute.detours:          transfers moved entirely off a DOWN link
 *  - reroute.splits:           transfers split across multiple legs
 *  - reroute.relay_hops:       relay-hop submissions (one per via)
 *  - reroute.bytes_detoured:   payload bytes that avoided the direct link
 *  - reroute.no_path:          DOWN link with no usable route at all
 *                              (sent direct; the retry fallback
 *                              guarantees it)
 *  - reroute.plan_requests:    route lookups (one per send)
 *  - reroute.plan_computes:    lookups that had to compute the plan
 *  - reroute.plan_cache_hits:  lookups served from the cache
 *  - reroute.epoch_reads:      provider epoch reads made to validate
 *                              cached plans (zero in push mode)
 *  - reroute.push_invalidations: wire transitions that evicted cache
 *                              entries via the monitor listener
 *  - reroute.push_ignored:     congestion-only transitions the push
 *                              listener left the cache alone for
 */
class Rerouter
{
  public:
    /**
     * One planned leg: a relay chain src -> vias... -> dst carrying a
     * fraction of the payload. An empty via list is the direct link.
     */
    struct Leg
    {
        std::vector<int> vias;
        double fraction = 1.0;

        bool direct() const { return vias.empty(); }

        /** First relay GPU, or -1 for the direct leg. */
        int via() const { return vias.empty() ? -1 : vias.front(); }
    };

    /** Functor that actually books a (single-link) transfer. */
    using Submit = std::function<Tick(const Interconnect::Request &)>;

    Rerouter(EventQueue &eq, Interconnect &fabric,
             const LinkStateProvider &health,
             ReroutePolicy policy = {});

    /**
     * Current route decision for src -> dst: one direct leg when the
     * link is healthy (or nothing better exists), a relay fan-out
     * (or, failing that, one BFS multi-relay path) when it is DOWN,
     * or a proportional direct+relay split when it is DEGRADED.
     *
     * Served from the epoch-keyed cache: the plan is recomputed when
     * the direct link changes state, and otherwise at most once per
     * planTtl while relay conditions drift. Split fractions therefore
     * reflect the residual bandwidth observed at the last recompute,
     * not the per-delivery EWMA drift in between.
     */
    const std::vector<Leg> &plan(int src, int dst) const;

    /**
     * Healthy single-relay candidates for src -> dst, best first.
     * Equal scores order by a deterministic per-pair rotation, so
     * different pairs spread their detours across different relays
     * instead of all hammering the lowest ids. Distinct relays are
     * vertex-disjoint detours by construction, so candidates.size()
     * counts the fabric's redundancy for this pair.
     */
    std::vector<int> relayCandidates(int src, int dst) const;

    /**
     * Decompose @p req along plan(src, dst) and forward every leg
     * through @p submit. The request's onComplete fires exactly once,
     * after all legs (including relay hops) have landed.
     *
     * @return Predicted delivery tick of the slowest first-hop leg —
     *         exact for direct routes, a lower bound when a relay's
     *         later hops extend past it.
     */
    Tick send(const Submit &submit, Interconnect::Request req);

    /**
     * Switch the plan cache from per-lookup epoch validation to
     * listener-driven push invalidation: the owner routes the health
     * monitor's transition fan-out into onLinkTransition(), and
     * plan() stops reading provider epochs entirely — a quiet fabric
     * serves every lookup with a flag check. One-way; the whole
     * cache is dropped at the switch so no stale epoch-keyed entry
     * survives into push mode.
     */
    void enablePushInvalidation();

    bool pushInvalidation() const { return _pushInvalidation; }

    /**
     * Health-transition listener entry (push mode). Wire transitions
     * (DEGRADED/DOWN on either side) evict exactly the entries that
     * could have read the link: the pair itself, plus every non-
     * direct-only plan in row @p src or column @p dst. Congestion-
     * only flips (HEALTHY <-> CONGESTED) leave the cache alone —
     * that is what makes pure congestion produce zero recomputes.
     */
    void onLinkTransition(int src, int dst, LinkState from,
                          LinkState to);

    const ReroutePolicy &policy() const { return _policy; }

    /** Rerouting statistics (sharded fabrics: folded over per-source
     * lanes on every read). */
    const StatSet &stats() const;

    /**
     * Sharded execution: per-source-GPU hop submitters for relay
     * chains, indexed by GPU id. A relay hop is submitted from the
     * previous hop's delivery, which fires on the *hop source's*
     * shard — the original caller's submit functor (its sender) is
     * bound to the original source and must not run there. When set,
     * sendLeg routes every chained hop through the submitter of the
     * hop's source GPU; the first hop still uses the caller's
     * functor. Install before any sharded sends; entries must be
     * non-null for every GPU.
     */
    void setHopSubmitters(std::vector<Submit> submitters);

  private:
    EventQueue &_eq;
    Interconnect &_fabric;
    const LinkStateProvider &_health;
    ReroutePolicy _policy;
    mutable StatSet _stats;
    mutable StatSet _mergedStats;

    /** Per-source stat lanes on a shard-bound fabric: the send path
     * runs on the source's shard, so shared bumps would race. Serial
     * paths (push invalidation) keep using _stats. */
    mutable std::vector<StatSet> _srcStats;

    /** See setHopSubmitters. */
    std::vector<Submit> _hopSubmitters;

    /**
     * Epoch-keyed plan cache, indexed src * numGpus + dst. Entries
     * computed on a HEALTHY direct link key on linkEpoch (they read
     * nothing else); the rest key on linkEpoch + routeEpoch with the
     * planTtl staleness window for relay-side drift.
     */
    mutable std::vector<std::vector<Leg>> _cachedPlans;
    mutable std::vector<std::uint64_t> _cachedLinkEpochs;
    mutable std::vector<std::uint64_t> _cachedRouteEpochs;
    mutable std::vector<Tick> _cachedTicks;
    mutable std::vector<char> _cacheDirectOnly;
    mutable std::vector<char> _cacheValid;

    /**
     * Which fabric tiers the cached plan read, as a bitmask of
     * kTierIntra / kTierInter. On a multi-node fabric an intra-node
     * pair whose plan never consulted a foreign-node relay carries
     * kTierIntra alone, so push invalidation skips it when a network-
     * tier link flaps — cross-node epochs invalidate independently of
     * intra-node ones. Single-node fabrics always read kTierIntra.
     */
    mutable std::vector<unsigned char> _cacheTierMask;
    bool _pushInvalidation = false;

    static constexpr unsigned char kTierIntra = 1;
    static constexpr unsigned char kTierInter = 2;

    /** Tier bit of the (a, b) link on this fabric. */
    unsigned char tierBit(int a, int b) const;

    std::vector<Leg> computePlan(int src, int dst,
                                 unsigned char &tier_mask) const;

    /** Clock of the calling context: the executing shard's during
     * windows, the serial queue's otherwise. */
    Tick nowTick() const;

    /** Statistic sink for send-path bumps attributed to @p src. */
    StatSet &sink(int src) const;

    /**
     * Score multiplier a leg pays for congestion on src -> dst: 1 on
     * a non-congested link, the flat congestedPenalty by default, or
     * 1 / (1 + queueRatio) under queueWeightedCongestion.
     */
    double congestionWeight(int src, int dst) const;

    /**
     * Scored single-relay candidates (relay id, discounted score),
     * best first; empty when no relay has usable bandwidth on both
     * legs. Ties break by a deterministic per-pair rotation of the
     * relay ids (load spreading without randomness).
     *
     * On a multi-node fabric candidates are hierarchical: relays in
     * the endpoints' own nodes are scored first (one network hop for
     * a cross-node pair, zero for an intra-node one), and foreign-
     * node relays are consulted only when no endpoint-node relay has
     * usable bandwidth. @p used_foreign, when non-null, reports
     * whether foreign-node relays were consulted at all — even an
     * empty fallback read network-tier links, which widens the
     * plan's tier mask.
     */
    std::vector<std::pair<int, double>>
    scoredRelays(int src, int dst,
                 bool *used_foreign = nullptr) const;

    /**
     * Shortest src -> dst relay chain over non-DOWN links, at most
     * maxRelayHops vias, lowest-id-first tie-break; empty when the
     * destination is unreachable within the bound. Multi-node fabrics
     * minimize network-tier hops first, then edge count, so a detour
     * never crosses a node boundary more often than the surviving
     * topology forces it to.
     */
    std::vector<int> bfsVias(int src, int dst) const;

    /**
     * Proportional fractions for weighted legs, collapsing legs below
     * minSplitFraction and renormalizing the survivors.
     */
    static std::vector<double>
    splitFractions(const std::vector<double> &weights,
                   double min_fraction);

    /** Submit one leg carrying @p bytes; joins via @p arrived. */
    Tick sendLeg(const Submit &submit,
                 const Interconnect::Request &base, const Leg &leg,
                 std::uint64_t bytes,
                 const std::function<void()> &arrived);
};

} // namespace proact

#endif // PROACT_INTERCONNECT_REROUTER_HH
