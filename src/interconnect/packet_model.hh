/**
 * @file
 * Protocol packetization and goodput model (paper Figure 2).
 *
 * Both PCIe and NVLink wrap every write transaction in fixed header
 * overhead and pad payloads to the protocol's flit/word granularity,
 * so 4-byte stores achieve only ~14 % (PCIe) and ~8 % (NVLink) of
 * peak goodput while >=128-byte transfers approach peak. This module
 * converts a payload at a given per-packet write granularity into
 * wire bytes, which every transfer in the simulator is charged.
 */

#ifndef PROACT_INTERCONNECT_PACKET_MODEL_HH
#define PROACT_INTERCONNECT_PACKET_MODEL_HH

#include <cstdint>
#include <string>

namespace proact {

/** Link protocol families evaluated in the paper (Table I). */
enum class Protocol
{
    PCIe3,    ///< 4x Kepler system fabric.
    NVLink1,  ///< 4x Pascal system fabric.
    NVLink2,  ///< 4x Volta system fabric.
    NVSwitch, ///< 16x Volta DGX-2 fabric (NVLink2 links via switch).
    IB,       ///< Inter-node HDR InfiniBand-class network tier.
};

std::string protocolName(Protocol protocol);

/**
 * Per-packet framing parameters for one protocol.
 *
 * A write of s payload bytes costs
 *   header_bytes + roundUp(s, word_bytes)
 * on the wire, and payloads larger than max_payload_bytes are split
 * into multiple packets.
 */
struct PacketModel
{
    std::uint32_t headerBytes;   ///< Fixed per-packet overhead.
    std::uint32_t wordBytes;     ///< Payload padding granularity.
    std::uint32_t maxPayloadBytes; ///< Largest payload per packet.

    /** Wire bytes for a single packet carrying @p payload bytes. */
    std::uint64_t packetWireBytes(std::uint32_t payload) const;

    /**
     * Wire bytes for @p payload bytes sent as writes of
     * @p write_granularity bytes each (the last write may be short).
     * Granularities above maxPayloadBytes are clamped.
     */
    std::uint64_t wireBytes(std::uint64_t payload,
                            std::uint32_t write_granularity) const;

    /**
     * Fraction of wire bandwidth that is useful payload when writing
     * at @p write_granularity (the Figure 2 y-axis).
     */
    double efficiency(std::uint32_t write_granularity) const;

    /** Goodput-maximizing write granularity (== maxPayloadBytes). */
    std::uint32_t bestGranularity() const { return maxPayloadBytes; }
};

/** Framing parameters for the given protocol. */
PacketModel packetModelFor(Protocol protocol);

} // namespace proact

#endif // PROACT_INTERCONNECT_PACKET_MODEL_HH
