/**
 * @file
 * Fabric-level parameters for the four evaluated interconnects.
 *
 * Bandwidths come from the paper's Table I ("bidirectional BW per GPU
 * aggregate"). Latencies and thread-saturation points are not given in
 * the paper; they are set to public-literature magnitudes and are the
 * knobs that position (not reshape) the reproduced curves.
 */

#ifndef PROACT_INTERCONNECT_FABRIC_HH
#define PROACT_INTERCONNECT_FABRIC_HH

#include "interconnect/packet_model.hh"
#include "sim/types.hh"

#include <cstdint>
#include <string>

namespace proact {

/**
 * How the per-GPU bandwidth is organized.
 *
 * SharedPorts models a switch-attached GPU (NVSwitch, PCIe): the
 * full egress rate can target any single peer. PairwiseLinks models
 * direct-attached NVLink topologies where a GPU's links are
 * statically partitioned across peers, so any single pair only gets
 * egressRate/(N-1) even when the other links idle.
 */
enum class FabricTopology
{
    SharedPorts,
    PairwiseLinks,
};

/**
 * Static description of one multi-GPU fabric.
 *
 * Each GPU owns an egress and an ingress channel of
 * perGpuBidirBandwidth/2 each; an optional shared core channel models
 * tree fabrics (the PCIe root complex) that cannot carry full
 * all-to-all traffic.
 */
struct FabricSpec
{
    Protocol protocol;
    std::string name;

    /** Table I bidirectional aggregate per GPU (bytes/s). */
    double perGpuBidirBandwidth;

    /** Shared-core capacity for tree fabrics; 0 = full crossbar. */
    double coreBandwidth;

    /** End-to-end delivery latency per transfer. */
    Tick latency;

    /**
     * GPU transfer threads needed to saturate one egress direction
     * with P2P stores (the knee in the paper's Figure 4). Per-thread
     * sustainable store bandwidth is egress rate / this.
     */
    std::uint32_t saturationThreads;

    /** Port organization (see FabricTopology). */
    FabricTopology topology = FabricTopology::SharedPorts;

    // -----------------------------------------------------------------
    // Hierarchical (multi-node) tier. gpusPerNode == 0 means a single
    // chassis and every inter* field is ignored. When > 0, GPUs
    // [k*gpusPerNode, (k+1)*gpusPerNode) form node k: pairs inside a
    // node ride this spec's intra-node parameters; pairs crossing a
    // node boundary ride the inter-node protocol/bandwidth/latency
    // below, with their own packetization curve (packetModelFor).
    // `latency` stays the intra-node (minimum) hop delay, so the
    // sharded engine's lookahead contract is untouched: interLatency
    // must be >= latency.
    // -----------------------------------------------------------------

    /** GPUs per node; 0 = single-node fabric (the default). */
    int gpusPerNode = 0;

    /** Inter-node link protocol (packetization tier). */
    Protocol interProtocol = Protocol::IB;

    /** Table-I-style bidirectional inter-node aggregate per GPU. */
    double interPerGpuBidirBandwidth = 0.0;

    /** End-to-end delivery latency of one cross-node transfer. */
    Tick interLatency = 0;

    double egressRate() const { return perGpuBidirBandwidth / 2.0; }
    double ingressRate() const { return perGpuBidirBandwidth / 2.0; }

    /** Whether this fabric spans more than one node. */
    bool multiNode() const { return gpusPerNode > 0; }

    /** Node index of GPU @p gpu (0 on single-node fabrics). */
    int
    nodeOf(int gpu) const
    {
        return multiNode() ? gpu / gpusPerNode : 0;
    }

    /** Whether @p a and @p b sit in the same node. */
    bool sameNode(int a, int b) const { return nodeOf(a) == nodeOf(b); }

    /** Egress half of the inter-node bidirectional aggregate. */
    double
    interEgressRate() const
    {
        return interPerGpuBidirBandwidth / 2.0;
    }

    double
    perThreadStoreBandwidth() const
    {
        return egressRate() / static_cast<double>(saturationThreads);
    }
};

/** PCIe 3.0 fabric of the 4x Kepler system (16 GB/s per GPU). */
FabricSpec pcie3Fabric();

/** NVLink fabric of the 4x Pascal system (150 GB/s per GPU). */
FabricSpec nvlink1Fabric();

/** NVLink2 fabric of the 4x Volta system (300 GB/s per GPU). */
FabricSpec nvlink2Fabric();

/** NVSwitch fabric of the 16x Volta DGX-2 (300 GB/s per GPU). */
FabricSpec nvswitchFabric();

/**
 * HDR InfiniBand-class inter-node network tier (the DGX-2's 8x
 * HDR100 NICs: 100 GB/s bidirectional aggregate per chassis, spread
 * evenly across its GPUs by ibFabricFor). Used standalone only in
 * unit tests; multi-node platforms embed it as the inter* tier of an
 * NVSwitch fabric.
 */
FabricSpec ibFabric();

/** Fabric spec by protocol enum. */
FabricSpec fabricFor(Protocol protocol);

} // namespace proact

#endif // PROACT_INTERCONNECT_FABRIC_HH
