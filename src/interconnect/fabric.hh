/**
 * @file
 * Fabric-level parameters for the four evaluated interconnects.
 *
 * Bandwidths come from the paper's Table I ("bidirectional BW per GPU
 * aggregate"). Latencies and thread-saturation points are not given in
 * the paper; they are set to public-literature magnitudes and are the
 * knobs that position (not reshape) the reproduced curves.
 */

#ifndef PROACT_INTERCONNECT_FABRIC_HH
#define PROACT_INTERCONNECT_FABRIC_HH

#include "interconnect/packet_model.hh"
#include "sim/types.hh"

#include <cstdint>
#include <string>

namespace proact {

/**
 * How the per-GPU bandwidth is organized.
 *
 * SharedPorts models a switch-attached GPU (NVSwitch, PCIe): the
 * full egress rate can target any single peer. PairwiseLinks models
 * direct-attached NVLink topologies where a GPU's links are
 * statically partitioned across peers, so any single pair only gets
 * egressRate/(N-1) even when the other links idle.
 */
enum class FabricTopology
{
    SharedPorts,
    PairwiseLinks,
};

/**
 * Static description of one multi-GPU fabric.
 *
 * Each GPU owns an egress and an ingress channel of
 * perGpuBidirBandwidth/2 each; an optional shared core channel models
 * tree fabrics (the PCIe root complex) that cannot carry full
 * all-to-all traffic.
 */
struct FabricSpec
{
    Protocol protocol;
    std::string name;

    /** Table I bidirectional aggregate per GPU (bytes/s). */
    double perGpuBidirBandwidth;

    /** Shared-core capacity for tree fabrics; 0 = full crossbar. */
    double coreBandwidth;

    /** End-to-end delivery latency per transfer. */
    Tick latency;

    /**
     * GPU transfer threads needed to saturate one egress direction
     * with P2P stores (the knee in the paper's Figure 4). Per-thread
     * sustainable store bandwidth is egress rate / this.
     */
    std::uint32_t saturationThreads;

    /** Port organization (see FabricTopology). */
    FabricTopology topology = FabricTopology::SharedPorts;

    double egressRate() const { return perGpuBidirBandwidth / 2.0; }
    double ingressRate() const { return perGpuBidirBandwidth / 2.0; }

    double
    perThreadStoreBandwidth() const
    {
        return egressRate() / static_cast<double>(saturationThreads);
    }
};

/** PCIe 3.0 fabric of the 4x Kepler system (16 GB/s per GPU). */
FabricSpec pcie3Fabric();

/** NVLink fabric of the 4x Pascal system (150 GB/s per GPU). */
FabricSpec nvlink1Fabric();

/** NVLink2 fabric of the 4x Volta system (300 GB/s per GPU). */
FabricSpec nvlink2Fabric();

/** NVSwitch fabric of the 16x Volta DGX-2 (300 GB/s per GPU). */
FabricSpec nvswitchFabric();

/** Fabric spec by protocol enum. */
FabricSpec fabricFor(Protocol protocol);

} // namespace proact

#endif // PROACT_INTERCONNECT_FABRIC_HH
