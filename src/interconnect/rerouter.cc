#include "interconnect/rerouter.hh"

#include "sim/logging.hh"

#include <algorithm>
#include <memory>

namespace proact {

Rerouter::Rerouter(Interconnect &fabric,
                   const LinkStateProvider &health,
                   ReroutePolicy policy)
    : _fabric(fabric), _health(health), _policy(policy)
{
    if (_policy.relayDiscount <= 0.0 || _policy.relayDiscount > 1.0)
        fatalError("Rerouter: relayDiscount must be in (0, 1]");
}

int
Rerouter::bestVia(int src, int dst, double *score) const
{
    int best = -1;
    double best_score = 0.0;
    for (int k = 0; k < _fabric.numGpus(); ++k) {
        if (k == src || k == dst)
            continue;
        const double s =
            std::min(_health.residualFraction(src, k),
                     _health.residualFraction(k, dst))
            * _policy.relayDiscount;
        if (s > best_score) {
            best_score = s;
            best = k;
        }
    }
    if (score)
        *score = best_score;
    return best;
}

std::vector<Rerouter::Leg>
Rerouter::plan(int src, int dst) const
{
    const LinkState direct = _health.linkState(src, dst);
    if (direct == LinkState::Healthy)
        return {Leg{-1, 1.0}};

    double relay_score = 0.0;
    const int via = bestVia(src, dst, &relay_score);

    if (direct == LinkState::Down) {
        if (via < 0)
            return {Leg{-1, 1.0}}; // No path: direct + retry fallback.
        return {Leg{via, 1.0}};
    }

    // DEGRADED: split proportionally to residual bandwidth, relay
    // discounted for its double wire cost.
    const double residual = _health.residualFraction(src, dst);
    if (via < 0 || relay_score <= 0.0)
        return {Leg{-1, 1.0}};
    const double relay_fraction =
        relay_score / (residual + relay_score);
    if (relay_fraction < _policy.minSplitFraction)
        return {Leg{-1, 1.0}};
    return {Leg{-1, 1.0 - relay_fraction}, Leg{via, relay_fraction}};
}

Tick
Rerouter::sendLeg(const Submit &submit,
                  const Interconnect::Request &base, const Leg &leg,
                  std::uint64_t bytes,
                  const std::function<void()> &arrived)
{
    Interconnect::Request req = base;
    req.bytes = bytes;

    if (leg.via < 0) {
        req.onComplete = arrived;
        return submit(req);
    }

    // Relay: first hop src -> via; on its delivery the second hop
    // via -> dst is submitted through the same functor, and only its
    // delivery counts as arrival.
    _stats.inc("reroute.relay_hops");
    _stats.inc("reroute.bytes_detoured", bytes);
    Interconnect::Request first = req;
    first.dst = leg.via;
    Interconnect::Request second = req;
    second.src = leg.via;
    second.notBefore = 0;
    second.onComplete = arrived;
    first.onComplete = [submit, second] { submit(second); };
    return submit(first);
}

Tick
Rerouter::send(const Submit &submit, Interconnect::Request req)
{
    std::vector<Leg> legs = plan(req.src, req.dst);

    const bool splittable = req.bytes >= _policy.minSplitBytes;
    if (legs.size() > 1 && !splittable)
        legs = {Leg{-1, 1.0}};

    if (legs.size() == 1 && legs[0].via < 0) {
        if (_health.linkState(req.src, req.dst) == LinkState::Down)
            _stats.inc("reroute.no_path");
        return submit(req); // Healthy or no better route: unchanged.
    }

    if (legs.size() == 1) {
        _stats.inc("reroute.detours");
    } else {
        _stats.inc("reroute.splits");
    }

    // Join: the original completion fires once, at the last arrival.
    auto remaining = std::make_shared<int>(
        static_cast<int>(legs.size()));
    const EventQueue::Callback on_complete = req.onComplete;
    const std::function<void()> arrived =
        [remaining, on_complete] {
            if (--*remaining == 0 && on_complete)
                on_complete();
        };

    // Byte split: integer shares, remainder on the first leg; a leg
    // rounded to zero bytes still submits (zero-byte transfers
    // complete immediately) so the join count stays exact.
    std::vector<std::uint64_t> shares(legs.size(), 0);
    std::uint64_t assigned = 0;
    for (std::size_t i = 1; i < legs.size(); ++i) {
        shares[i] = static_cast<std::uint64_t>(
            static_cast<double>(req.bytes) * legs[i].fraction);
        assigned += shares[i];
    }
    shares[0] = req.bytes - assigned;

    Tick predicted = 0;
    for (std::size_t i = 0; i < legs.size(); ++i) {
        predicted = std::max(
            predicted,
            sendLeg(submit, req, legs[i], shares[i], arrived));
    }
    return predicted;
}

} // namespace proact
