#include "interconnect/rerouter.hh"

#include "sim/logging.hh"

#include <algorithm>
#include <memory>
#include <queue>
#include <tuple>

namespace proact {

Rerouter::Rerouter(EventQueue &eq, Interconnect &fabric,
                   const LinkStateProvider &health,
                   ReroutePolicy policy)
    : _eq(eq), _fabric(fabric), _health(health), _policy(policy)
{
    if (_policy.relayDiscount <= 0.0 || _policy.relayDiscount > 1.0)
        fatalError("Rerouter: relayDiscount must be in (0, 1]");
    if (_policy.maxRelayHops < 1)
        fatalError("Rerouter: maxRelayHops must be positive");
    if (_policy.maxRelayFanout < 1)
        fatalError("Rerouter: maxRelayFanout must be positive");
    if (_policy.congestedPenalty <= 0.0 ||
        _policy.congestedPenalty > 1.0) {
        fatalError("Rerouter: congestedPenalty must be in (0, 1]");
    }

    const std::size_t pairs =
        static_cast<std::size_t>(fabric.numGpus()) * fabric.numGpus();
    _cachedPlans.resize(pairs);
    _cachedLinkEpochs.assign(pairs, 0);
    _cachedRouteEpochs.assign(pairs, 0);
    _cachedTicks.assign(pairs, 0);
    _cacheDirectOnly.assign(pairs, 0);
    _cacheValid.assign(pairs, 0);
    _cacheTierMask.assign(pairs, 0);

    // Shard-bound fabric: the send path runs on each source's shard.
    // Cache entries are already race-free (row src has a single
    // writer), but the stats need per-source lanes.
    if (fabric.sharded()) {
        _srcStats.resize(
            static_cast<std::size_t>(fabric.numGpus()));
    }
}

Tick
Rerouter::nowTick() const
{
    if (!_srcStats.empty()) {
        if (EventQueue *cur = ShardedEventEngine::currentQueue())
            return cur->curTick();
    }
    return _eq.curTick();
}

StatSet &
Rerouter::sink(int src) const
{
    if (_srcStats.empty())
        return _stats;
    return _srcStats[static_cast<std::size_t>(src)];
}

const StatSet &
Rerouter::stats() const
{
    if (_srcStats.empty())
        return _stats;
    _mergedStats = _stats;
    for (const StatSet &lane : _srcStats)
        _mergedStats.merge(lane);
    return _mergedStats;
}

void
Rerouter::setHopSubmitters(std::vector<Submit> submitters)
{
    if (static_cast<int>(submitters.size()) != _fabric.numGpus())
        fatalError("Rerouter: need one hop submitter per GPU");
    _hopSubmitters = std::move(submitters);
}

unsigned char
Rerouter::tierBit(int a, int b) const
{
    return _fabric.interNodePair(a, b) ? kTierInter : kTierIntra;
}

double
Rerouter::congestionWeight(int src, int dst) const
{
    if (_health.linkState(src, dst) != LinkState::Congested)
        return 1.0;
    if (!_policy.queueWeightedCongestion)
        return _policy.congestedPenalty;
    return 1.0 / (1.0 + _health.queueRatio(src, dst));
}

std::vector<std::pair<int, double>>
Rerouter::scoredRelays(int src, int dst, bool *used_foreign) const
{
    if (used_foreign)
        *used_foreign = false;

    const auto score = [this](int s, int k, int d) {
        double v = std::min(_health.residualFraction(s, k),
                            _health.residualFraction(k, d))
            * _policy.relayDiscount;
        // Spread-don't-detour: congested relay legs keep their full
        // residual (the wire is fine) but score lower, so the fan-out
        // leans toward quiet relays instead of piling onto a port
        // that is already backed up. The flat penalty treats every
        // backlog alike; queue weighting scales each leg by
        // 1 / (1 + queueDelay ratio) so sustained hotspots shed load
        // in proportion to how deep their queues actually are.
        v *= congestionWeight(s, k);
        v *= congestionWeight(k, d);
        return v;
    };

    const FabricSpec &spec = _fabric.spec();
    std::vector<std::pair<int, double>> relays;
    const auto collect = [&](bool endpoint_nodes) {
        for (int k = 0; k < _fabric.numGpus(); ++k) {
            if (k == src || k == dst)
                continue;
            const bool local = !spec.multiNode()
                || spec.sameNode(k, src) || spec.sameNode(k, dst);
            if (local != endpoint_nodes)
                continue;
            const double s = score(src, k, dst);
            if (s > 0.0)
                relays.emplace_back(k, s);
        }
    };

    // Hierarchical candidate classes: relays confined to the
    // endpoints' own nodes first. For a cross-node pair a relay in
    // either endpoint node keeps the detour at one network hop (the
    // same as the direct path), while a third-node relay pays the
    // network tier twice; for an intra-node pair a same-node relay
    // keeps the detour inside the chassis entirely. Foreign-node
    // relays are consulted only when no endpoint-node relay has
    // usable bandwidth — the health model justifying the boundary
    // crossing.
    collect(true);
    if (relays.empty() && spec.multiNode()) {
        // Reading foreign-node scores — even ones that come back
        // unusable — makes the resulting plan depend on network-tier
        // links, so the flag reports the consultation, not its yield.
        if (used_foreign)
            *used_foreign = true;
        collect(false);
    }

    // Equal-score ties order by a per-pair rotation of the relay id:
    // when a dead board leaves every pair the same healthy relay set,
    // different pairs still pick different relays first, spreading
    // detour load across the fabric instead of saturating the lowest
    // ids. Still a pure function of (src, dst, health) — replays are
    // tick-for-tick identical.
    const int n = _fabric.numGpus();
    const auto rotated = [n, src, dst](int id) {
        return (id + n - (src + dst) % n) % n;
    };
    std::sort(relays.begin(), relays.end(),
              [&rotated](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return rotated(a.first) < rotated(b.first);
              });
    return relays;
}

std::vector<int>
Rerouter::relayCandidates(int src, int dst) const
{
    std::vector<int> ids;
    for (const auto &[id, score] : scoredRelays(src, dst))
        ids.push_back(id);
    return ids;
}

std::vector<int>
Rerouter::bfsVias(int src, int dst) const
{
    const int n = _fabric.numGpus();
    const int max_edges = _policy.maxRelayHops + 1;

    if (_fabric.spec().multiNode()) {
        // Lexicographic (network hops, edges) shortest path: a chain
        // that crosses the node boundary twice is never preferred
        // over one that crosses once, no matter how many chassis hops
        // the in-node portion takes within the maxRelayHops bound.
        // Strict-improvement relaxation with the heap keyed
        // (cost, node id) and neighbours visited in id order is fully
        // deterministic — replays stay tick-for-tick identical.
        struct Cost
        {
            int inter;
            int edges;
        };
        std::vector<Cost> best(n, Cost{n + 1, n + 1});
        std::vector<int> parent(n, -1);
        using Key = std::tuple<int, int, int>;
        std::priority_queue<Key, std::vector<Key>,
                            std::greater<Key>> heap;
        best[src] = Cost{0, 0};
        heap.push({0, 0, src});
        while (!heap.empty()) {
            const auto [ci, ce, node] = heap.top();
            heap.pop();
            if (ci != best[node].inter || ce != best[node].edges)
                continue;
            if (node == dst)
                break;
            if (ce >= max_edges)
                continue;
            for (int next = 0; next < n; ++next) {
                if (next == node)
                    continue;
                if (_health.linkState(node, next) == LinkState::Down)
                    continue;
                const int ninter =
                    ci + (_fabric.interNodePair(node, next) ? 1 : 0);
                const int nedges = ce + 1;
                if (ninter > best[next].inter ||
                    (ninter == best[next].inter &&
                     nedges >= best[next].edges)) {
                    continue;
                }
                best[next] = Cost{ninter, nedges};
                parent[next] = node;
                heap.push({ninter, nedges, next});
            }
        }
        if (parent[dst] < 0)
            return {};
        std::vector<int> vias;
        for (int node = parent[dst]; node != src;
             node = parent[node]) {
            vias.push_back(node);
        }
        std::reverse(vias.begin(), vias.end());
        return vias;
    }

    // Shortest path over non-DOWN links, visiting neighbours in id
    // order so the first path found is the lexicographically smallest
    // among the shortest — deterministic across replays.
    std::vector<int> parent(n, -1);
    std::vector<int> dist(n, -1);
    std::queue<int> frontier;
    dist[src] = 0;
    frontier.push(src);

    while (!frontier.empty()) {
        const int node = frontier.front();
        frontier.pop();
        if (node == dst)
            break;
        if (dist[node] >= max_edges)
            continue;
        for (int next = 0; next < n; ++next) {
            if (next == node || dist[next] >= 0)
                continue;
            if (_health.linkState(node, next) == LinkState::Down)
                continue;
            dist[next] = dist[node] + 1;
            parent[next] = node;
            frontier.push(next);
        }
    }

    if (dist[dst] < 0 || dist[dst] > max_edges)
        return {};
    std::vector<int> vias;
    for (int node = parent[dst]; node != src; node = parent[node])
        vias.push_back(node);
    std::reverse(vias.begin(), vias.end());
    return vias;
}

std::vector<double>
Rerouter::splitFractions(const std::vector<double> &weights,
                         double min_fraction)
{
    std::vector<double> fractions(weights.size(), 0.0);
    double total = 0.0;
    for (const double w : weights)
        total += w;
    if (total <= 0.0)
        return fractions;

    // Collapse legs below the split floor and renormalize the
    // survivors; the heaviest leg always survives.
    std::vector<char> keep(weights.size(), 1);
    for (std::size_t i = 0; i < weights.size(); ++i)
        keep[i] = weights[i] / total >= min_fraction ? 1 : 0;
    const std::size_t heaviest = static_cast<std::size_t>(
        std::max_element(weights.begin(), weights.end())
        - weights.begin());
    keep[heaviest] = 1;

    double kept_total = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i)
        if (keep[i])
            kept_total += weights[i];
    for (std::size_t i = 0; i < weights.size(); ++i)
        if (keep[i])
            fractions[i] = weights[i] / kept_total;
    return fractions;
}

std::vector<Rerouter::Leg>
Rerouter::computePlan(int src, int dst,
                      unsigned char &tier_mask) const
{
    tier_mask = tierBit(src, dst);
    const LinkState direct = _health.linkState(src, dst);
    if (direct == LinkState::Healthy ||
        direct == LinkState::Congested) {
        // Congestion is never a reason to detour: the backlog is
        // other flows' traffic and drains with them, while a relay
        // would spend wire on two more ports to dodge it.
        return {Leg{{}, 1.0}};
    }

    const bool multi = _fabric.spec().multiNode();
    bool foreign = false;
    auto relays = scoredRelays(src, dst, &foreign);
    // A cross-node pair's relay legs each pair one chassis link with
    // one network link, and an intra-node pair that had to consult
    // foreign-node relays read the network tier too; either way the
    // plan now depends on both tiers.
    if (multi && (tier_mask == kTierInter || foreign))
        tier_mask = kTierIntra | kTierInter;
    if (static_cast<int>(relays.size()) > _policy.maxRelayFanout)
        relays.resize(static_cast<std::size_t>(_policy.maxRelayFanout));

    if (direct == LinkState::Down) {
        if (relays.empty()) {
            // No single relay survives (a dead plane can sever every
            // two-hop detour): fall back to the shortest multi-relay
            // chain the health-filtered topology still offers.
            if (multi) {
                // The BFS scans the whole health-filtered graph.
                tier_mask = kTierIntra | kTierInter;
            }
            std::vector<int> vias = bfsVias(src, dst);
            if (vias.empty())
                return {Leg{{}, 1.0}}; // No path: direct + retry.
            return {Leg{std::move(vias), 1.0}};
        }
        std::vector<double> weights;
        for (const auto &[id, score] : relays)
            weights.push_back(score);
        const auto fractions =
            splitFractions(weights, _policy.minSplitFraction);
        std::vector<Leg> legs;
        for (std::size_t i = 0; i < relays.size(); ++i) {
            if (fractions[i] > 0.0)
                legs.push_back(Leg{{relays[i].first}, fractions[i]});
        }
        return legs;
    }

    // DEGRADED: split between the direct link and the relay fan-out,
    // proportionally to residual bandwidth (relays discounted for
    // their extra wire cost). A relay only joins when its discounted
    // bottleneck beats the direct residual by relayAdvantage — when
    // the whole fabric is degraded uniformly (a dead NVSwitch
    // plane), every detour pays double wire for the same bandwidth
    // and the plan stays direct.
    const double residual = _health.residualFraction(src, dst);
    while (!relays.empty() &&
           relays.back().second
               <= residual * _policy.relayAdvantage) {
        relays.pop_back();
    }
    if (relays.empty())
        return {Leg{{}, 1.0}};
    std::vector<double> weights{residual};
    for (const auto &[id, score] : relays)
        weights.push_back(score);
    const auto fractions =
        splitFractions(weights, _policy.minSplitFraction);

    std::vector<Leg> legs;
    if (fractions[0] > 0.0)
        legs.push_back(Leg{{}, fractions[0]});
    for (std::size_t i = 0; i < relays.size(); ++i) {
        if (fractions[i + 1] > 0.0)
            legs.push_back(Leg{{relays[i].first}, fractions[i + 1]});
    }
    if (legs.empty())
        return {Leg{{}, 1.0}};
    return legs;
}

const std::vector<Rerouter::Leg> &
Rerouter::plan(int src, int dst) const
{
    StatSet &stats = sink(src);
    stats.inc("reroute.plan_requests");

    const std::size_t idx =
        static_cast<std::size_t>(src) * _fabric.numGpus() + dst;

    bool valid = _cacheValid.at(idx);
    if (_pushInvalidation) {
        // Push mode: wire transitions already evicted everything they
        // touched, so a set valid flag is authoritative — no provider
        // epoch reads at all on the send path. Relay plans still
        // refresh on the TTL so split weights track slow drift
        // (congestion flips don't evict by design).
        if (valid && !_cacheDirectOnly[idx] && _policy.planTtl > 0) {
            valid =
                nowTick() - _cachedTicks[idx] < _policy.planTtl;
        }
    } else if (valid) {
        stats.inc("reroute.epoch_reads");
        if (_health.linkEpoch(src, dst) != _cachedLinkEpochs[idx]) {
            // The direct link changed state: the plan's shape (direct
            // vs detour vs split) is wrong, not just its weights.
            // Always recompute.
            valid = false;
        } else if (!_cacheDirectOnly[idx]) {
            stats.inc("reroute.epoch_reads");
            if (_health.routeEpoch(src, dst)
                    != _cachedRouteEpochs[idx]) {
                // Only relay conditions drifted: tolerate the stale
                // split weights for up to planTtl before recomputing,
                // so endpoint congestion flapping relay links can't
                // force a recompute per transfer.
                valid = _policy.planTtl > 0
                    && nowTick() - _cachedTicks[idx]
                           < _policy.planTtl;
            }
        }
    }

    if (valid) {
        stats.inc("reroute.plan_cache_hits");
    } else {
        stats.inc("reroute.plan_computes");
        unsigned char tier_mask = kTierIntra;
        _cachedPlans[idx] = computePlan(src, dst, tier_mask);
        _cacheTierMask[idx] = tier_mask;
        // A plan computed on a HEALTHY or CONGESTED direct link read
        // nothing but that link; marking it direct-only exempts it
        // from the routeEpoch check (and from push row/column
        // eviction) so relay flapping elsewhere in its row/column
        // can't evict it.
        const LinkState direct = _health.linkState(src, dst);
        _cacheDirectOnly[idx] = (direct == LinkState::Healthy ||
                                 direct == LinkState::Congested)
                                    ? 1
                                    : 0;
        if (!_pushInvalidation) {
            _cachedLinkEpochs[idx] = _health.linkEpoch(src, dst);
            _cachedRouteEpochs[idx] = _health.routeEpoch(src, dst);
        }
        _cachedTicks[idx] = nowTick();
        _cacheValid[idx] = 1;
    }
    return _cachedPlans[idx];
}

void
Rerouter::enablePushInvalidation()
{
    if (_pushInvalidation)
        return;
    _pushInvalidation = true;
    // Epoch-keyed entries were validated against a provider we will
    // no longer consult; start push mode from an empty cache.
    std::fill(_cacheValid.begin(), _cacheValid.end(), 0);
}

void
Rerouter::onLinkTransition(int src, int dst, LinkState from,
                           LinkState to)
{
    if (!_pushInvalidation)
        return;
    if (!isWireTransition(from, to)) {
        // HEALTHY <-> CONGESTED: every cached plan is still the plan
        // we would compute (congestion never changes a plan's shape,
        // only relay tie-breaking weights, which the TTL refreshes).
        _stats.inc("reroute.push_ignored");
        return;
    }
    _stats.inc("reroute.push_invalidations");

    const int n = _fabric.numGpus();
    const std::size_t direct =
        static_cast<std::size_t>(src) * n + dst;
    _cacheValid.at(direct) = 0;
    // Any plan that read this link beyond its own direct entry is a
    // relay plan in row src (a leg leaving src) or column dst (a leg
    // entering dst); direct-only plans elsewhere never read it. The
    // tier mask narrows that further on multi-node fabrics: a relay
    // plan that never read the transitioned link's tier (an in-node
    // detour vs a network-tier flap, or vice versa) kept no stale
    // state, so cross-node epochs invalidate independently of
    // intra-node ones.
    const unsigned char bit = tierBit(src, dst);
    for (int d = 0; d < n; ++d) {
        const std::size_t i = static_cast<std::size_t>(src) * n + d;
        if (!_cacheDirectOnly[i] && (_cacheTierMask[i] & bit))
            _cacheValid[i] = 0;
    }
    for (int s = 0; s < n; ++s) {
        const std::size_t i = static_cast<std::size_t>(s) * n + dst;
        if (!_cacheDirectOnly[i] && (_cacheTierMask[i] & bit))
            _cacheValid[i] = 0;
    }
}

Tick
Rerouter::sendLeg(const Submit &submit,
                  const Interconnect::Request &base, const Leg &leg,
                  std::uint64_t bytes,
                  const std::function<void()> &arrived)
{
    Interconnect::Request req = base;
    req.bytes = bytes;

    if (leg.direct()) {
        req.onComplete = arrived;
        return submit(req);
    }

    StatSet &stats = sink(base.src);
    stats.inc("reroute.relay_hops",
              static_cast<double>(leg.vias.size()));
    stats.inc("reroute.bytes_detoured", bytes);

    // Node sequence src -> vias... -> dst; every hop after the first
    // is submitted on the previous hop's delivery, and only the final
    // hop's delivery counts as arrival. Build the chain back to
    // front.
    std::vector<int> nodes;
    nodes.push_back(req.src);
    for (const int via : leg.vias)
        nodes.push_back(via);
    nodes.push_back(req.dst);

    std::function<void()> tail = arrived;
    for (std::size_t i = nodes.size() - 1; i >= 2; --i) {
        Interconnect::Request hop = req;
        hop.src = nodes[i - 1];
        hop.dst = nodes[i];
        hop.notBefore = 0;
        hop.onComplete = tail;
        if (_hopSubmitters.empty()) {
            tail = [submit, hop] { submit(hop); };
        } else {
            // Sharded: this continuation fires on hop.src's shard
            // (the previous hop delivers there), so it must submit
            // through that GPU's own sender, not the caller's.
            const Submit *hop_submit =
                &_hopSubmitters[static_cast<std::size_t>(hop.src)];
            tail = [hop_submit, hop] { (*hop_submit)(hop); };
        }
    }

    Interconnect::Request first = req;
    first.dst = nodes[1];
    first.onComplete = tail;
    return submit(first);
}

Tick
Rerouter::send(const Submit &submit, Interconnect::Request req)
{
    std::vector<Leg> legs = plan(req.src, req.dst);

    // Payloads too small to split ride the best single leg whole:
    // the direct link on a DEGRADED split (legs[0]), the best relay
    // on a DOWN fan-out.
    if (legs.size() > 1 && req.bytes < _policy.minSplitBytes)
        legs = {Leg{legs[0].vias, 1.0}};

    if (legs.size() == 1 && legs[0].direct()) {
        if (_health.linkState(req.src, req.dst) == LinkState::Down)
            sink(req.src).inc("reroute.no_path");
        return submit(req); // Healthy or no better route: unchanged.
    }

    if (legs.size() == 1) {
        sink(req.src).inc("reroute.detours");
    } else {
        sink(req.src).inc("reroute.splits");
    }

    // Join: the original completion fires once, at the last arrival.
    auto remaining = std::make_shared<int>(
        static_cast<int>(legs.size()));
    const EventQueue::Callback on_complete = req.onComplete;
    const std::function<void()> arrived =
        [remaining, on_complete] {
            if (--*remaining == 0 && on_complete)
                on_complete();
        };

    // Byte split: integer shares, remainder on the first leg; a leg
    // rounded to zero bytes still submits (zero-byte transfers
    // complete immediately) so the join count stays exact.
    std::vector<std::uint64_t> shares(legs.size(), 0);
    std::uint64_t assigned = 0;
    for (std::size_t i = 1; i < legs.size(); ++i) {
        shares[i] = static_cast<std::uint64_t>(
            static_cast<double>(req.bytes) * legs[i].fraction);
        assigned += shares[i];
    }
    shares[0] = req.bytes - assigned;

    Tick predicted = 0;
    for (std::size_t i = 0; i < legs.size(); ++i) {
        predicted = std::max(
            predicted,
            sendLeg(submit, req, legs[i], shares[i], arrived));
    }
    return predicted;
}

} // namespace proact
