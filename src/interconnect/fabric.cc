#include "interconnect/fabric.hh"

#include "sim/logging.hh"

namespace proact {

FabricSpec
pcie3Fabric()
{
    return FabricSpec{
        Protocol::PCIe3,
        "PCIe3.0",
        16.0e9,                    // Table I: 16 GB/s bidirectional.
        32.0e9,                    // Dual-root-port tree core.
        1200 * ticksPerNanosecond, // P2P store latency over PCIe.
        192,                       // Fig. 4: ~128-256 threads saturate.
    };
}

FabricSpec
nvlink1Fabric()
{
    return FabricSpec{
        Protocol::NVLink1,
        "NVLink",
        150.0e9,                  // Table I: 150 GB/s bidirectional.
        0.0,                      // Direct P2P links.
        700 * ticksPerNanosecond,
        3000,                     // Table II best configs use 4096.
    };
}

FabricSpec
nvlink2Fabric()
{
    return FabricSpec{
        Protocol::NVLink2,
        "NVLink2",
        300.0e9,                  // Table I: 300 GB/s bidirectional.
        0.0,
        600 * ticksPerNanosecond,
        1800,                     // Table II best configs use 2048.
    };
}

FabricSpec
nvswitchFabric()
{
    return FabricSpec{
        Protocol::NVSwitch,
        "NVSwitch",
        300.0e9,                  // Table I: 300 GB/s bidirectional.
        0.0,                      // Full-bisection switch.
        800 * ticksPerNanosecond, // Extra switch hop.
        1800,
    };
}

FabricSpec
ibFabric()
{
    return FabricSpec{
        Protocol::IB,
        "IB-HDR",
        12.5e9,                    // 100 GB/s chassis NIC aggregate / 8.
        0.0,                       // Fat-tree core not modeled.
        2500 * ticksPerNanosecond, // RDMA one-sided write latency.
        1800,
    };
}

FabricSpec
fabricFor(Protocol protocol)
{
    switch (protocol) {
      case Protocol::PCIe3:
        return pcie3Fabric();
      case Protocol::NVLink1:
        return nvlink1Fabric();
      case Protocol::NVLink2:
        return nvlink2Fabric();
      case Protocol::NVSwitch:
        return nvswitchFabric();
      case Protocol::IB:
        return ibFabric();
    }
    panicError("fabricFor: unknown protocol");
}

} // namespace proact
