#include "interconnect/packet_model.hh"

#include "sim/logging.hh"

#include <algorithm>

namespace proact {

std::string
protocolName(Protocol protocol)
{
    switch (protocol) {
      case Protocol::PCIe3:
        return "PCIe3";
      case Protocol::NVLink1:
        return "NVLink";
      case Protocol::NVLink2:
        return "NVLink2";
      case Protocol::NVSwitch:
        return "NVSwitch";
      case Protocol::IB:
        return "IB";
    }
    return "unknown";
}

std::uint64_t
PacketModel::packetWireBytes(std::uint32_t payload) const
{
    if (payload == 0)
        return 0;
    const std::uint64_t padded =
        (static_cast<std::uint64_t>(payload) + wordBytes - 1)
        / wordBytes * wordBytes;
    return headerBytes + padded;
}

std::uint64_t
PacketModel::wireBytes(std::uint64_t payload,
                       std::uint32_t write_granularity) const
{
    if (payload == 0)
        return 0;
    if (write_granularity == 0)
        panicError("PacketModel: zero write granularity");

    const std::uint32_t gran =
        std::min(write_granularity, maxPayloadBytes);
    const std::uint64_t full_packets = payload / gran;
    const std::uint32_t tail =
        static_cast<std::uint32_t>(payload % gran);

    std::uint64_t wire = full_packets * packetWireBytes(gran);
    if (tail != 0)
        wire += packetWireBytes(tail);
    return wire;
}

double
PacketModel::efficiency(std::uint32_t write_granularity) const
{
    if (write_granularity == 0)
        return 0.0;
    const std::uint32_t gran =
        std::min(write_granularity, maxPayloadBytes);
    return static_cast<double>(gran)
        / static_cast<double>(packetWireBytes(gran));
}

PacketModel
packetModelFor(Protocol protocol)
{
    switch (protocol) {
      case Protocol::PCIe3:
        // 24B TLP+framing overhead per transaction, dword payload
        // granularity, 256B max payload: a 4B store achieves
        // 4/28 = 14 % goodput, matching the paper's Figure 2.
        return PacketModel{24, 4, 256};
      case Protocol::NVLink1:
      case Protocol::NVLink2:
      case Protocol::NVSwitch:
        // Two 16B header/control flits per packet, 16B data flits,
        // 256B max payload: a 4B store achieves 4/48 = 8 % goodput,
        // matching the paper's Figure 2.
        return PacketModel{32, 16, 256};
      case Protocol::IB:
        // Cross-node packets carry transport + network headers (LRH,
        // GRH, BTH, ICRC plus RDMA framing: ~66B rounded up), pad to
        // 32B, and ride a 4 KiB MTU. Fine-grained stores are far
        // costlier than on any intra-node tier (4B store: 4/128 = 3 %
        // goodput) while >= 2 KiB packets approach peak — the tier's
        // own Figure 2 curve.
        return PacketModel{96, 32, 4096};
    }
    panicError("packetModelFor: unknown protocol");
}

} // namespace proact
