#include "interconnect/interconnect.hh"

#include "sim/logging.hh"

#include <algorithm>
#include <numeric>

namespace proact {

Interconnect::Interconnect(EventQueue &eq, const FabricSpec &spec,
                           int num_gpus)
    : _eq(eq), _spec(spec), _packet(packetModelFor(spec.protocol)),
      _interPacket(packetModelFor(spec.multiNode()
                                      ? spec.interProtocol
                                      : spec.protocol)),
      _numGpus(num_gpus), _storeTransactions(num_gpus, 0),
      _deadDevice(static_cast<std::size_t>(num_gpus), 0)
{
    if (num_gpus < 1)
        fatalError("Interconnect: need at least one GPU, got ",
                   num_gpus);
    if (spec.multiNode()) {
        if (spec.topology != FabricTopology::PairwiseLinks) {
            fatalError("Interconnect: multi-node fabrics need "
                       "PairwiseLinks (per-pair tier parameters)");
        }
        if (spec.interLatency < spec.latency) {
            fatalError("Interconnect: inter-node latency (",
                       spec.interLatency, ") below the intra-node "
                       "latency (", spec.latency,
                       ") breaks the lookahead floor");
        }
        if (spec.interEgressRate() <= 0.0 && num_gpus > spec.gpusPerNode)
            fatalError("Interconnect: multi-node fabric with zero "
                       "inter-node bandwidth");
    }

    _egress.reserve(num_gpus);
    _ingress.reserve(num_gpus);
    for (int g = 0; g < num_gpus; ++g) {
        _egress.push_back(std::make_unique<Channel>(
            eq, spec.name + ".gpu" + std::to_string(g) + ".egress",
            spec.egressRate()));
        _ingress.push_back(std::make_unique<Channel>(
            eq, spec.name + ".gpu" + std::to_string(g) + ".ingress",
            spec.ingressRate(), spec.latency));
    }
    if (spec.coreBandwidth > 0.0) {
        _core = std::make_unique<Channel>(eq, spec.name + ".core",
                                          spec.coreBandwidth);
    }

    if (spec.topology == FabricTopology::PairwiseLinks &&
        num_gpus > 1) {
        // Links statically partitioned across peers: each directed
        // pair gets an equal slice of its tier's egress rate —
        // intra-node pairs split the chassis links across local
        // peers, inter-node pairs split the NIC aggregate across
        // remote peers at the network tier's latency.
        _pairs.resize(static_cast<std::size_t>(num_gpus) * num_gpus);
        for (int s = 0; s < num_gpus; ++s) {
            for (int d = 0; d < num_gpus; ++d) {
                if (s == d)
                    continue;
                _pairs[s * num_gpus + d] = std::make_unique<Channel>(
                    eq,
                    spec.name + ".link" + std::to_string(s) + "to"
                        + std::to_string(d),
                    nominalPairRate(s, d), pairLatency(s, d));
            }
        }
    }
}

int
Interconnect::nodeSpan(int gpu) const
{
    if (!_spec.multiNode())
        return _numGpus;
    const int first = _spec.nodeOf(gpu) * _spec.gpusPerNode;
    return std::min(_numGpus, first + _spec.gpusPerNode) - first;
}

double
Interconnect::nominalPairRate(int src, int dst) const
{
    if (!pairwise())
        return _spec.egressRate();
    if (interNodePair(src, dst)) {
        const int remote_peers = _numGpus - nodeSpan(src);
        return _spec.interEgressRate()
            / static_cast<double>(remote_peers);
    }
    const int local_peers = nodeSpan(src) - 1;
    return _spec.egressRate() / static_cast<double>(local_peers);
}

Channel &
Interconnect::pairLink(int src, int dst)
{
    if (!pairwise())
        panicError("Interconnect: pairLink on a SharedPorts fabric");
    if (src < 0 || src >= _numGpus || dst < 0 || dst >= _numGpus ||
        src == dst) {
        panicError("Interconnect: bad pair ", src, " -> ", dst);
    }
    return *_pairs[static_cast<std::size_t>(src) * _numGpus + dst];
}

void
Interconnect::validate(const Request &req) const
{
    if (req.src < 0 || req.src >= _numGpus || req.dst < 0 ||
        req.dst >= _numGpus) {
        fatalError("Interconnect: bad endpoints ", req.src, " -> ",
                   req.dst, " with ", _numGpus, " GPUs");
    }
    if (req.src == req.dst)
        fatalError("Interconnect: src == dst (", req.src,
                   "); local copies bypass the fabric");
    if (req.bytes > 0 && req.writeGranularity == 0)
        fatalError("Interconnect: zero write granularity");
}

double
Interconnect::effectiveEgressRate(std::uint32_t threads) const
{
    const double peak = _spec.egressRate();
    if (threads == 0)
        return peak;
    return std::min(peak, threads * _spec.perThreadStoreBandwidth());
}

Tick
Interconnect::transfer(const Request &req)
{
    if (_engine)
        return transferSharded(req);

    validate(req);

    if (_deadDevice[static_cast<std::size_t>(req.src)] ||
        _deadDevice[static_cast<std::size_t>(req.dst)]) {
        // Dead endpoint: refuse at submission, reliable or not. No
        // wire occupancy, no completion — the observers get a dropped
        // zero-wire sample so the health layer counts the loss, and
        // the returned tick is "now" (there is no delivery horizon to
        // wait out on a transfer that never entered the fabric).
        ++_refusedDeliveries;
        const Tick now = _eq.curTick();
        DeliverySample sample;
        sample.enqueued = now;
        sample.start = now;
        sample.delivered = now;
        sample.dropped = true;
        notifyObservers(req, sample);
        if (_trace) {
            _trace->record(now, now, "fault",
                           "gpu" + std::to_string(req.src) + "->gpu"
                               + std::to_string(req.dst)
                               + " refused (device down)");
        }
        return now;
    }

    if (req.bytes == 0) {
        const Tick when = std::max(_eq.curTick(), req.notBefore);
        if (req.onComplete)
            _eq.schedule(when, req.onComplete);
        return when;
    }

    const PacketModel &packet = pairwise()
        ? pairPacketModel(req.src, req.dst)
        : _packet;
    const std::uint64_t wire =
        packet.wireBytes(req.bytes, req.writeGranularity);

    // Thread-limited issue keeps the link partially idle; we model it
    // by inflating egress occupancy so achieved bandwidth matches
    // threads x per-thread store rate (see DESIGN.md).
    const double eff_rate = effectiveEgressRate(req.threads);
    const double inflate = _spec.egressRate() / eff_rate;
    const auto wire_eq =
        static_cast<std::uint64_t>(static_cast<double>(wire) * inflate);

    const std::uint32_t gran =
        std::min(req.writeGranularity, packet.maxPayloadBytes);
    const std::uint64_t packets =
        (req.bytes + gran - 1) / gran;
    _storeTransactions[req.src] += packets;
    _writeSizes.record(gran, packets);

    const Tick nb = std::max(_eq.curTick(), req.notBefore);

    DeliverySample sample;
    sample.enqueued = nb;
    sample.wireBytes = wire;

    if (pairwise()) {
        // Direct-attached link: single hop at the pair's rate; the
        // thread cap still applies against what the threads could
        // sustain overall.
        Channel &link = pairLink(req.src, req.dst);
        const double pair_eff =
            std::min(link.rate(), effectiveEgressRate(req.threads));
        const auto pair_wire_eq = static_cast<std::uint64_t>(
            static_cast<double>(wire) * link.rate() / pair_eff);
        const Channel::Timing t =
            link.submitTimed(nb, pair_wire_eq, req.bytes);

        sample.start = t.start;
        sample.delivered = t.delivered;
        sample.queueDelay = t.queueDelay();
        sample.serviceTime = t.serviceTicks() + link.latency();

        std::vector<Hop> hops;
        if (_rebooking) {
            hops.push_back(Hop{&link, link.lastBookingId(),
                               link.latency(), t.serviceEnd});
        }
        return finishDelivery(req, sample, std::move(hops));
    }

    // Cut-through booking: each hop starts once the previous hop
    // begins streaming; delivery waits for the slowest hop to drain
    // plus the fabric latency (carried by the ingress channel).
    const Channel::Timing e =
        _egress[req.src]->submitTimed(nb, wire_eq, req.bytes);

    std::vector<Hop> hops;
    if (_rebooking) {
        hops.push_back(Hop{_egress[req.src].get(),
                           _egress[req.src]->lastBookingId(),
                           _spec.latency, e.serviceEnd});
    }

    Tick c_end = e.start;
    Tick c_dur = 0;
    Tick i_nb = e.start;
    if (_core) {
        const Channel::Timing c =
            _core->submitTimed(e.start, wire, req.bytes);
        i_nb = c.start;
        c_end = c.serviceEnd;
        c_dur = c.serviceTicks();
        if (_rebooking) {
            hops.push_back(Hop{_core.get(), _core->lastBookingId(),
                               _spec.latency, c.serviceEnd});
        }
    }
    const Channel::Timing i =
        _ingress[req.dst]->submitTimed(i_nb, wire, req.bytes);
    if (_rebooking) {
        hops.push_back(Hop{_ingress[req.dst].get(),
                           _ingress[req.dst]->lastBookingId(),
                           _ingress[req.dst]->latency(),
                           i.serviceEnd});
    }

    const Tick delivered =
        std::max({e.serviceEnd + _spec.latency,
                  c_end + _spec.latency, i.delivered});

    // Attribution: what this delivery would have taken on an
    // otherwise-idle fabric at the hops' *current* (fault-scaled)
    // rates is wire service time; everything beyond that is queueing
    // behind other flows at the shared ports. Wire slowdowns lengthen
    // the hop service times and land in the first component;
    // contention only moves hop start ticks and lands in the second.
    sample.start = e.start;
    sample.delivered = delivered;
    sample.serviceTime =
        std::max({e.serviceTicks(), c_dur, i.serviceTicks()})
        + _spec.latency;
    sample.queueDelay = delivered - nb - sample.serviceTime;
    return finishDelivery(req, sample, std::move(hops));
}

Tick
Interconnect::finishDelivery(const Request &req, DeliverySample sample,
                             std::vector<Hop> hops)
{
    Tick delivered = sample.delivered;
    bool dropped = false;
    Tick extra_delay = 0;
    if (_faultFilter && !req.reliable) {
        const FaultVerdict verdict = _faultFilter(req, delivered);
        dropped = verdict.drop;
        extra_delay = verdict.extraDelay;
        delivered += extra_delay;
        // A delay spike is a wire symptom (retransmit, replay, lane
        // retrain), not queueing behind a neighbor — charge it to the
        // service component the monitor classifies DEGRADED from.
        sample.delivered = delivered;
        sample.serviceTime += extra_delay;
    }
    sample.dropped = dropped;
    const Tick start = sample.start;

    if (dropped) {
        ++_droppedDeliveries;
    } else if (_rebooking && !hops.empty() &&
               (req.onComplete || req.onRebook)) {
        // Track the flight so a mid-run rate change can move its
        // completion. Dropped deliveries are not tracked: their wire
        // occupancy still re-times, but there is nothing to fire.
        const std::uint64_t fid = _nextFlightId++;
        Flight flight;
        flight.src = req.src;
        flight.dst = req.dst;
        flight.hops = std::move(hops);
        flight.extraDelay = extra_delay;
        flight.delivered = delivered;
        flight.onComplete = req.onComplete;
        flight.onRebook = req.onRebook;
        if (req.onComplete) {
            flight.event = _eq.schedule(
                delivered, [this, fid] { completeFlight(fid); });
        }
        for (const Hop &hop : flight.hops)
            _hopIndex[hop.channel][hop.booking] = fid;
        _flights.emplace(fid, std::move(flight));
    } else if (req.onComplete) {
        _eq.schedule(delivered, req.onComplete);
    }

    notifyObservers(req, sample);

    if (_trace) {
        _trace->record(start, delivered,
                       dropped ? "fault" : "transfer",
                       "gpu" + std::to_string(req.src) + "->gpu"
                           + std::to_string(req.dst)
                           + (dropped ? " dropped" : ""));
    }
    // A dropped transfer still occupied the wire: the returned tick
    // is when the delivery would have completed, which the retry
    // layer uses as its acknowledgement horizon.
    return delivered;
}

void
Interconnect::notifyObservers(const Request &req,
                              const DeliverySample &sample)
{
    // An observer may deregister (but not register) from inside its
    // callback: removal mid-dispatch only nulls the slot, so the
    // index walk stays valid; nulled slots compact afterwards.
    if (_observers.empty())
        return;
    _dispatchingObservers = true;
    for (std::size_t i = 0; i < _observers.size(); ++i) {
        if (_observers[i].observer)
            _observers[i].observer(req, sample);
    }
    _dispatchingObservers = false;
    std::erase_if(_observers, [](const ObserverSlot &slot) {
        return slot.observer == nullptr;
    });
}

void
Interconnect::setDeviceDown(int gpu, bool down)
{
    if (gpu < 0 || gpu >= _numGpus)
        fatalError("Interconnect: setDeviceDown on bad gpu ", gpu);
    _deadDevice[static_cast<std::size_t>(gpu)] = down ? 1 : 0;
}

bool
Interconnect::deviceDown(int gpu) const
{
    if (gpu < 0 || gpu >= _numGpus)
        fatalError("Interconnect: deviceDown on bad gpu ", gpu);
    return _deadDevice[static_cast<std::size_t>(gpu)] != 0;
}

std::size_t
Interconnect::quiesceDevice(int gpu)
{
    if (gpu < 0 || gpu >= _numGpus)
        fatalError("Interconnect: quiesceDevice on bad gpu ", gpu);
    std::size_t aborted = 0;
    for (auto it = _flights.begin(); it != _flights.end();) {
        Flight &flight = it->second;
        if (flight.src != gpu && flight.dst != gpu) {
            ++it;
            continue;
        }
        if (flight.event != 0)
            _eq.deschedule(flight.event);
        for (const Hop &hop : flight.hops) {
            const auto per_channel = _hopIndex.find(hop.channel);
            if (per_channel != _hopIndex.end())
                per_channel->second.erase(hop.booking);
        }
        it = _flights.erase(it);
        ++aborted;
    }
    _quiescedFlights += aborted;
    return aborted;
}

void
Interconnect::bindShards(ShardedEventEngine &engine,
                         std::vector<int> shard_of)
{
    if (!pairwise())
        fatalError("Interconnect: bindShards needs a PairwiseLinks "
                   "topology");
    if (_rebooking)
        fatalError("Interconnect: bindShards is incompatible with "
                   "rebooking");
    if (static_cast<int>(shard_of.size()) != _numGpus)
        fatalError("Interconnect: bindShards map covers ",
                   shard_of.size(), " GPUs, fabric has ", _numGpus);
    if (_engine)
        fatalError("Interconnect: shards already bound");

    _engine = &engine;
    _shardOf = std::move(shard_of);

    // Re-home each directed pair link onto its source GPU's shard:
    // submissions run there, so the channel's FIFO state and clock
    // reference must live there too. Tier parameters carry over —
    // inter-node pairs keep their slower rate and longer latency
    // (which, being >= the intra-node latency, still clears the
    // engine's lookahead).
    for (int s = 0; s < _numGpus; ++s) {
        EventQueue &queue = engine.shard(_shardOf[s]);
        for (int d = 0; d < _numGpus; ++d) {
            if (s == d)
                continue;
            _pairs[static_cast<std::size_t>(s) * _numGpus + d] =
                std::make_unique<Channel>(
                    queue,
                    _spec.name + ".link" + std::to_string(s) + "to"
                        + std::to_string(d),
                    nominalPairRate(s, d), pairLatency(s, d));
        }
    }

    _lanes.clear();
    _lanes.reserve(static_cast<std::size_t>(_numGpus));
    for (int g = 0; g < _numGpus; ++g)
        _lanes.push_back(std::make_unique<Lane>());

    engine.addBarrierHook([this] { flushDeferredSamples(); });
}

bool
Interconnect::lastSubmissionDropped(int src) const
{
    if (!_engine)
        panicError("Interconnect: lastSubmissionDropped needs a "
                   "shard-bound fabric");
    return _lanes.at(static_cast<std::size_t>(src))->lastDropped;
}

Tick
Interconnect::transferSharded(const Request &req)
{
    validate(req);
    Lane &lane = *_lanes[static_cast<std::size_t>(req.src)];
    EventQueue *cur = ShardedEventEngine::currentQueue();
    const Tick now = cur ? cur->curTick() : _eq.curTick();

    if (_deadDevice[static_cast<std::size_t>(req.src)] ||
        _deadDevice[static_cast<std::size_t>(req.dst)]) {
        // Dead endpoint: refuse at submission (see transfer()); the
        // observer sample waits for the barrier like every other.
        ++lane.refused;
        lane.lastDropped = true;
        DeliverySample sample;
        sample.enqueued = now;
        sample.start = now;
        sample.delivered = now;
        sample.dropped = true;
        lane.pendingSamples.push_back({req, sample});
        return now;
    }

    const Tick nb = std::max(now, req.notBefore);

    if (req.bytes == 0) {
        // Even empty hand-offs cross GPUs, so they pay their pair's
        // link latency — which keeps the delivery outside the
        // lookahead window (inter-node latency >= intra-node
        // latency == lookahead; the serial engine books them
        // latency-free, and the determinism gate compares shard
        // counts, not engines).
        lane.lastDropped = false;
        const Tick when = nb + pairLatency(req.src, req.dst);
        if (req.onComplete)
            postDelivery(req, when);
        return when;
    }

    const PacketModel &packet = pairPacketModel(req.src, req.dst);
    const std::uint64_t wire =
        packet.wireBytes(req.bytes, req.writeGranularity);
    const double eff_rate = effectiveEgressRate(req.threads);
    const std::uint32_t gran =
        std::min(req.writeGranularity, packet.maxPayloadBytes);
    const std::uint64_t packets = (req.bytes + gran - 1) / gran;
    _storeTransactions[req.src] += packets; // Per-src: single writer.
    lane.writeSizes.record(gran, packets);

    Channel &link = pairLink(req.src, req.dst);
    const double pair_eff = std::min(link.rate(), eff_rate);
    const auto pair_wire_eq = static_cast<std::uint64_t>(
        static_cast<double>(wire) * link.rate() / pair_eff);
    const Channel::Timing t =
        link.submitTimed(nb, pair_wire_eq, req.bytes);

    DeliverySample sample;
    sample.enqueued = nb;
    sample.wireBytes = wire;
    sample.start = t.start;
    sample.delivered = t.delivered;
    sample.queueDelay = t.queueDelay();
    sample.serviceTime = t.serviceTicks() + link.latency();

    // The verdict is synchronous: the source learns the loss here,
    // via lastSubmissionDropped(), instead of waiting out an ack
    // horizon that would have to cross shards backwards.
    Tick delivered = t.delivered;
    bool dropped = false;
    if (_faultFilter && !req.reliable) {
        const FaultVerdict verdict = _faultFilter(req, delivered);
        dropped = verdict.drop;
        delivered += verdict.extraDelay;
        sample.delivered = delivered;
        sample.serviceTime += verdict.extraDelay;
    }
    sample.dropped = dropped;
    lane.lastDropped = dropped;

    if (dropped)
        ++lane.dropped;
    else if (req.onComplete)
        postDelivery(req, delivered);

    lane.pendingSamples.push_back({req, std::move(sample)});
    return delivered;
}

void
Interconnect::postDelivery(const Request &req, Tick when)
{
    Lane *lane = _lanes[static_cast<std::size_t>(req.src)].get();
    lane->outstanding.fetch_add(1, std::memory_order_relaxed);
    const int dst = req.dst;
    _engine->postStream(
        req.src, _shardOf[static_cast<std::size_t>(dst)], when,
        [this, lane, dst, cb = req.onComplete,
         orphan = req.onOrphaned]() mutable {
            lane->outstanding.fetch_sub(1, std::memory_order_relaxed);
            if (_deadDevice[static_cast<std::size_t>(dst)]) {
                // The destination died while this delivery was
                // crossing shards: orphan it instead of completing.
                lane->orphaned.fetch_add(1, std::memory_order_relaxed);
                if (orphan)
                    orphan();
                return;
            }
            cb();
        });
}

void
Interconnect::flushDeferredSamples()
{
    for (auto &lane : _lanes) {
        for (Lane::Deferred &deferred : lane->pendingSamples)
            notifyObservers(deferred.req, deferred.sample);
        lane->pendingSamples.clear();
    }
}

Interconnect::ObserverHandle
Interconnect::addDeliveryObserver(DeliveryObserver observer)
{
    if (!observer)
        fatalError("Interconnect: null delivery observer");
    const ObserverHandle handle = _nextObserverHandle++;
    _observers.push_back({handle, std::move(observer)});
    return handle;
}

void
Interconnect::removeDeliveryObserver(ObserverHandle handle)
{
    // While a delivery is being dispatched only the slot is nulled
    // (erasing would shift the slots under the dispatch loop's feet);
    // the loop compacts nulled slots when it finishes.
    for (auto it = _observers.begin(); it != _observers.end(); ++it) {
        if (it->handle == handle) {
            it->observer = nullptr;
            if (!_dispatchingObservers)
                _observers.erase(it);
            return;
        }
    }
}

void
Interconnect::forEachChannel(const std::function<void(Channel &)> &f)
{
    for (auto &ch : _egress)
        f(*ch);
    for (auto &ch : _ingress)
        f(*ch);
    if (_core)
        f(*_core);
    for (auto &ch : _pairs) {
        if (ch)
            f(*ch);
    }
}

void
Interconnect::setRebooking(bool on)
{
    if (on && _engine) {
        // Rebooking tracks flights in shared maps and moves their
        // completion events from serial context — neither survives
        // sharded execution, where deliveries are fire-time posts.
        fatalError("Interconnect: rebooking is incompatible with a "
                   "shard-bound fabric");
    }
    if (on == _rebooking)
        return;
    _rebooking = on;
    forEachChannel([this, on](Channel &ch) {
        ch.setRebookable(on);
        if (on) {
            Channel *cp = &ch;
            ch.setRebookListener(
                [this, cp](Channel::BookingId id, Tick end) {
                    onHopRebooked(cp, id, end);
                });
        } else {
            ch.setRebookListener(nullptr);
        }
    });
    if (!on) {
        // Pending completion events stay scheduled at their current
        // ticks; they just can no longer move.
        _flights.clear();
        _hopIndex.clear();
    }
}

void
Interconnect::onHopRebooked(Channel *channel,
                            Channel::BookingId booking,
                            Tick new_service_end)
{
    const auto per_channel = _hopIndex.find(channel);
    if (per_channel == _hopIndex.end())
        return;
    const auto entry = per_channel->second.find(booking);
    if (entry == per_channel->second.end())
        return;
    const auto fit = _flights.find(entry->second);
    if (fit == _flights.end())
        return;
    Flight &flight = fit->second;

    Tick delivered = 0;
    for (Hop &hop : flight.hops) {
        if (hop.channel == channel && hop.booking == booking)
            hop.serviceEnd = new_service_end;
        delivered = std::max(delivered,
                             hop.serviceEnd + hop.latencyAdd);
    }
    delivered = std::max(delivered + flight.extraDelay,
                         _eq.curTick());
    if (delivered == flight.delivered)
        return;

    flight.delivered = delivered;
    ++_rebookedDeliveries;
    if (flight.event != 0) {
        _eq.deschedule(flight.event);
        const std::uint64_t fid = entry->second;
        flight.event = _eq.schedule(
            delivered, [this, fid] { completeFlight(fid); });
    }
    if (flight.onRebook)
        flight.onRebook(delivered);
}

void
Interconnect::completeFlight(std::uint64_t id)
{
    const auto fit = _flights.find(id);
    if (fit == _flights.end())
        return;
    EventQueue::Callback cb = std::move(fit->second.onComplete);
    for (const Hop &hop : fit->second.hops) {
        const auto per_channel = _hopIndex.find(hop.channel);
        if (per_channel != _hopIndex.end())
            per_channel->second.erase(hop.booking);
    }
    _flights.erase(fit);
    if (cb)
        cb();
}

std::uint64_t
Interconnect::storeTransactions(int src) const
{
    return _storeTransactions.at(src);
}

std::uint64_t
Interconnect::totalStoreTransactions() const
{
    return std::accumulate(_storeTransactions.begin(),
                           _storeTransactions.end(),
                           std::uint64_t(0));
}

std::uint64_t
Interconnect::totalPayloadBytes() const
{
    std::uint64_t total = 0;
    for (const auto &ch : _ingress)
        total += ch->payloadBytes();
    for (const auto &ch : _pairs) {
        if (ch)
            total += ch->payloadBytes();
    }
    return total;
}

std::uint64_t
Interconnect::totalWireBytes() const
{
    std::uint64_t total = 0;
    for (const auto &ch : _ingress)
        total += ch->wireBytes();
    for (const auto &ch : _pairs) {
        if (ch)
            total += ch->wireBytes();
    }
    return total;
}

std::uint64_t
Interconnect::droppedDeliveries() const
{
    std::uint64_t total = _droppedDeliveries;
    for (const auto &lane : _lanes)
        total += lane->dropped;
    return total;
}

std::uint64_t
Interconnect::refusedDeliveries() const
{
    std::uint64_t total = _refusedDeliveries;
    for (const auto &lane : _lanes)
        total += lane->refused;
    return total;
}

std::uint64_t
Interconnect::quiescedFlights() const
{
    std::uint64_t total = _quiescedFlights;
    for (const auto &lane : _lanes)
        total += lane->orphaned.load(std::memory_order_relaxed);
    return total;
}

std::size_t
Interconnect::numTrackedFlights() const
{
    std::size_t total = _flights.size();
    for (const auto &lane : _lanes) {
        total += static_cast<std::size_t>(
            lane->outstanding.load(std::memory_order_relaxed));
    }
    return total;
}

const Histogram &
Interconnect::writeSizes() const
{
    if (!_engine)
        return _writeSizes;
    _mergedWriteSizes.clear();
    _mergedWriteSizes.merge(_writeSizes);
    for (const auto &lane : _lanes)
        _mergedWriteSizes.merge(lane->writeSizes);
    return _mergedWriteSizes;
}

void
Interconnect::resetStats()
{
    for (auto &ch : _egress)
        ch->resetStats();
    for (auto &ch : _ingress)
        ch->resetStats();
    if (_core)
        _core->resetStats();
    for (auto &ch : _pairs) {
        if (ch)
            ch->resetStats();
    }
    std::fill(_storeTransactions.begin(), _storeTransactions.end(), 0);
    _writeSizes.clear();
}

} // namespace proact
