/**
 * @file
 * Link-health classification shared between the fabric layer and the
 * health subsystem.
 *
 * The LinkHealthMonitor (src/health) classifies every directed GPU
 * pair from delivery observations; the Rerouter (this directory)
 * consumes that classification to steer traffic. Keeping the
 * classification behind this small interface lets the interconnect
 * library stay independent of the monitor's implementation.
 */

#ifndef PROACT_INTERCONNECT_LINK_STATE_HH
#define PROACT_INTERCONNECT_LINK_STATE_HH

#include <cstdint>
#include <string>

namespace proact {

/** Health classification of one directed link. */
enum class LinkState
{
    /** Delivering at (close to) nominal bandwidth. */
    Healthy,

    /**
     * The wire is fine, but deliveries queue behind other flows at a
     * shared port. Transient by nature: the backlog drains when the
     * competing flows do. Routing spreads load where it has a choice
     * but never detours — a detour would add wire time on two more
     * ports to dodge a queue that is already moving.
     */
    Congested,

    /** Delivering, but at a fraction of nominal bandwidth. */
    Degraded,

    /** Consecutive losses; assume nothing gets through. */
    Down,
};

inline std::string
linkStateName(LinkState state)
{
    switch (state) {
      case LinkState::Healthy:
        return "healthy";
      case LinkState::Congested:
        return "congested";
      case LinkState::Degraded:
        return "degraded";
      case LinkState::Down:
        return "down";
    }
    return "unknown";
}

/**
 * Whether @p state indicates a genuine wire problem (degraded rate or
 * loss) as opposed to queueing behind other flows.
 */
inline bool
isWireFaultState(LinkState state)
{
    return state == LinkState::Degraded || state == LinkState::Down;
}

/**
 * Whether a state transition involves the wire-slowdown signal on
 * either side. Healthy <-> Congested flips are congestion-only: plan
 * caches stay valid and the reprofiler stays quiet across them.
 */
inline bool
isWireTransition(LinkState from, LinkState to)
{
    return from != to &&
           (isWireFaultState(from) || isWireFaultState(to));
}

/** Read-only view of per-link health used for routing decisions. */
class LinkStateProvider
{
  public:
    virtual ~LinkStateProvider() = default;

    /** Current classification of the directed link src -> dst. */
    virtual LinkState linkState(int src, int dst) const = 0;

    /**
     * Estimated usable fraction of the link's nominal bandwidth:
     * 1.0 for a healthy link, the EWMA-observed fraction for a
     * degraded one, 0.0 when down.
     */
    virtual double residualFraction(int src, int dst) const = 0;

    /**
     * Observed ratio of per-delivery queueing delay (time spent
     * behind other flows at shared ports) to expected service time:
     * 0 on a quiet link, > 1 when the average delivery waits longer
     * than its own wire time. Queue-weighted routing divides
     * congested legs' scores by (1 + this ratio) so sustained
     * multi-tenant hotspots shed load proportionally to how backed
     * up they actually are. Static default: always quiet.
     */
    virtual double
    queueRatio(int src, int dst) const
    {
        (void)src;
        (void)dst;
        return 0.0;
    }

    /**
     * Monotonic counter bumped on every link-state transition.
     * Routing layers key plan caches on it: while the epoch is
     * unchanged, every linkState() answer is unchanged too, so a
     * cached route stays valid. Providers whose classification can
     * change over time must override this; the default (a constant)
     * is only correct for providers frozen at construction.
     */
    virtual std::uint64_t healthEpoch() const { return 0; }

    /**
     * Transition count of one directed link. A plan computed while
     * its direct link was HEALTHY read nothing else, so it stays
     * valid exactly until this changes. Static default: 0, never
     * changes.
     */
    virtual std::uint64_t
    linkEpoch(int src, int dst) const
    {
        (void)src;
        (void)dst;
        return 0;
    }

    /**
     * Epoch of everything a route plan for src -> dst can depend on.
     * A plan only reads links leaving @p src or entering @p dst, so a
     * provider that versions its rows and columns lets cached plans
     * for unrelated pairs survive a transition elsewhere. The static
     * default (0, never changes) suits fixed-state providers.
     */
    virtual std::uint64_t
    routeEpoch(int src, int dst) const
    {
        (void)src;
        (void)dst;
        return 0;
    }
};

} // namespace proact

#endif // PROACT_INTERCONNECT_LINK_STATE_HH
