/**
 * @file
 * Inter-GPU fabric with packetization, per-GPU ports and an optional
 * shared core.
 *
 * Every remote byte in the simulator — P2P stores (inline or agent
 * issued), DMA copies, UM page migrations — passes through
 * Interconnect::transfer(), which charges protocol wire overhead for
 * the request's write granularity, applies the transfer-thread
 * saturation model, and books the egress -> (core) -> ingress path on
 * the fabric's FIFO channels.
 */

#ifndef PROACT_INTERCONNECT_INTERCONNECT_HH
#define PROACT_INTERCONNECT_INTERCONNECT_HH

#include "interconnect/fabric.hh"
#include "interconnect/packet_model.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_engine.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

namespace proact {

/**
 * The multi-GPU interconnect.
 *
 * Per-GPU egress and ingress channels each carry half the Table I
 * bidirectional aggregate. Transfers are booked cut-through: each hop
 * starts no earlier than the previous hop's completion, so the exact
 * delivery tick is known at submission time.
 */
class Interconnect
{
  public:
    /** One transfer submission. */
    struct Request
    {
        int src;                   ///< Source GPU id.
        int dst;                   ///< Destination GPU id.
        std::uint64_t bytes;       ///< Useful payload bytes.

        /**
         * Per-write payload granularity on the wire, i.e. how well the
         * traffic coalesced before hitting the fabric. DMA engines and
         * decoupled agents use the protocol max; sparse inline stores
         * can be as small as 4 bytes.
         */
        std::uint32_t writeGranularity;

        /**
         * GPU threads issuing the stores; caps achieved bandwidth at
         * threads x per-thread store bandwidth. 0 means engine-driven
         * (DMA/UM) with no thread cap.
         */
        std::uint32_t threads = 0;

        /** Invoked at the delivery tick (optional). */
        EventQueue::Callback onComplete = nullptr;

        /**
         * Earliest tick the transfer may enter the fabric (0 = now).
         * Lets initiation latencies (DMA setup, CDP launch) be booked
         * synchronously together with the wire time.
         */
        Tick notBefore = 0;

        /**
         * Hardware-reliable path (DMA engines, UM page migration,
         * the retry layer's fallback): exempt from delivery drop and
         * delay faults. Degraded link rates still apply — reliability
         * buys guaranteed delivery, not nominal bandwidth.
         */
        bool reliable = false;

        /**
         * Invoked with the updated delivery tick whenever rebooking
         * (see setRebooking) moves this transfer's completion after a
         * mid-flight rate change. Lets the retry layer push its ack
         * horizon out instead of declaring a slowed delivery lost.
         */
        std::function<void(Tick)> onRebook = nullptr;

        /**
         * Sharded fabrics (bindShards) decide survival at fire time:
         * when the destination dies while this delivery is crossing
         * shards, the delivery is orphaned and this fires in place of
         * onComplete (optional). The retry layer uses it to release
         * its in-flight accounting without an acknowledgement.
         */
        EventQueue::Callback onOrphaned = nullptr;
    };

    /** What fault injection decided about one delivery. */
    struct FaultVerdict
    {
        bool drop = false;    ///< Delivery is lost (callback never fires).
        Tick extraDelay = 0;  ///< Added to the delivery tick.
    };

    /**
     * Hook consulted once per non-reliable transfer at submission,
     * with the fault-free delivery tick. Installed by the
     * FaultInjector (src/faults); nullptr means a perfect fabric.
     */
    using FaultFilter =
        std::function<FaultVerdict(const Request &, Tick delivered)>;

    /**
     * Timing breakdown of one delivery, split into two attributable
     * components. @c queueDelay is time the request spent waiting
     * behind *other* flows at shared ports (egress/core/ingress FIFO
     * backlogs); @c serviceTime is what the delivery would have taken
     * on an otherwise-idle fabric at the links' current (possibly
     * fault-scaled) rates, plus any fault-injected delay spike. The
     * two always satisfy enqueued + queueDelay + serviceTime ==
     * delivered. The health layer classifies CONGESTED from the first
     * component and DEGRADED/DOWN from the second only.
     */
    struct DeliverySample
    {
        Tick enqueued = 0;     ///< When the request entered the fabric.
        Tick start = 0;        ///< First hop's service-start tick.
        Tick delivered = 0;    ///< Final (fault-delayed) delivery tick.
        Tick queueDelay = 0;   ///< Waiting behind other flows.
        Tick serviceTime = 0;  ///< Idle-fabric wire time + fault delay.
        std::uint64_t wireBytes = 0; ///< Protocol bytes on the wire.
        bool dropped = false;  ///< Fault filter dropped the delivery.
    };

    /**
     * Observer of every submission's outcome, called once per
     * transfer at submission time with the full timing breakdown,
     * including whether the fault filter dropped the delivery. The
     * LinkHealthMonitor feeds from one; per-tenant tracers attach
     * their own alongside it (addDeliveryObserver).
     */
    using DeliveryObserver = std::function<void(
        const Request &, const DeliverySample &)>;

    /** Token identifying one registered delivery observer. */
    using ObserverHandle = std::uint64_t;

    Interconnect(EventQueue &eq, const FabricSpec &spec, int num_gpus);

    /**
     * Submit a transfer; returns the absolute delivery tick.
     *
     * @throws FatalError on invalid endpoints or zero granularity.
     */
    Tick transfer(const Request &req);

    int numGpus() const { return _numGpus; }
    const FabricSpec &spec() const { return _spec; }
    const PacketModel &packetModel() const { return _packet; }

    /**
     * @{ @name Hierarchical tiers
     *
     * On a multi-node fabric (FabricSpec::multiNode) directed pairs
     * crossing a node boundary ride the inter-node tier: their own
     * nominal rate (the inter-node egress split across remote peers),
     * their own delivery latency (>= the intra-node latency, which
     * stays the sharded engine's lookahead floor), and their own
     * packetization curve. Single-node fabrics answer with the base
     * tier for every pair, so callers need no special-casing.
     */

    /** Whether the directed pair crosses a node boundary. */
    bool
    interNodePair(int src, int dst) const
    {
        return _spec.multiNode() && !_spec.sameNode(src, dst);
    }

    /** Nominal fault-free rate of one directed pair's link. */
    double nominalPairRate(int src, int dst) const;

    /** Delivery latency of one directed pair's tier. */
    Tick
    pairLatency(int src, int dst) const
    {
        return interNodePair(src, dst) ? _spec.interLatency
                                       : _spec.latency;
    }

    /** Packetization model of one directed pair's tier. */
    const PacketModel &
    pairPacketModel(int src, int dst) const
    {
        return interNodePair(src, dst) ? _interPacket : _packet;
    }
    /** @} */

    /**
     * Egress bandwidth achievable by @p threads transfer threads
     * (before packetization losses); 0 threads = full rate.
     */
    double effectiveEgressRate(std::uint32_t threads) const;

    Channel &egress(int gpu) { return *_egress.at(gpu); }
    Channel &ingress(int gpu) { return *_ingress.at(gpu); }
    bool hasCore() const { return _core != nullptr; }
    Channel &core() { return *_core; }

    /** Whether the fabric uses statically partitioned pair links. */
    bool
    pairwise() const
    {
        return _spec.topology == FabricTopology::PairwiseLinks;
    }

    /** Directed pair link (PairwiseLinks topologies only). */
    Channel &pairLink(int src, int dst);

    /** Total wire-level write transactions issued by @p src. */
    std::uint64_t storeTransactions(int src) const;
    /** Total wire-level write transactions across the fabric. */
    std::uint64_t totalStoreTransactions() const;

    /** Total payload bytes delivered across the fabric. */
    std::uint64_t totalPayloadBytes() const;
    /** Total wire bytes consumed across the fabric. */
    std::uint64_t totalWireBytes() const;

    /** Distribution of write granularities seen on the wire
     * (sharded: folded over the per-source lanes on every read). */
    const Histogram &writeSizes() const;

    void resetStats();

    /** Attach a span tracer (nullptr disables tracing). */
    void setTrace(Trace *trace) { _trace = trace; }

    /** Install the fault filter (nullptr restores the perfect fabric). */
    void setFaultFilter(FaultFilter filter)
    {
        _faultFilter = std::move(filter);
    }

    bool hasFaultFilter() const { return _faultFilter != nullptr; }

    /** Deliveries the fault filter dropped so far. */
    std::uint64_t droppedDeliveries() const;

    /**
     * Register a delivery observer alongside any already installed.
     * Observers fire in registration order, once per submission.
     *
     * @return Handle for removeDeliveryObserver. @p observer must be
     *         non-null.
     */
    ObserverHandle addDeliveryObserver(DeliveryObserver observer);

    /** Deregister a previously added observer (idempotent). */
    void removeDeliveryObserver(ObserverHandle handle);

    /** Registered observers (all slots). */
    std::size_t numDeliveryObservers() const
    {
        return _observers.size();
    }

    /**
     * Boundary-aware in-flight transfers: when enabled, a mid-flight
     * rate-scale change (fault window boundary) re-books the remaining
     * wire time of already-submitted transfers at the new rate, moving
     * their completion callbacks accordingly, instead of honoring the
     * submission-tick rate to the end. Off by default — the cheaper
     * submission-rate model is exact whenever fault windows don't cut
     * through live transfers.
     */
    void setRebooking(bool on);

    bool rebooking() const { return _rebooking; }

    /** Completions moved by mid-flight rebooking so far. */
    std::uint64_t rebookedDeliveries() const
    {
        return _rebookedDeliveries;
    }

    /**
     * @{ @name Device loss
     *
     * A down device refuses every new transfer touching it — reliable
     * traffic included, since hardware reliability protects the wire,
     * not a dead endpoint. Refused submissions occupy no wire,
     * schedule no completion, and are reported to observers as
     * dropped zero-wire samples so the health layer sees the losses.
     * Transfers already in flight are untouched until quiesceDevice()
     * aborts them.
     */
    void setDeviceDown(int gpu, bool down);

    bool deviceDown(int gpu) const;

    /**
     * Abort every tracked in-flight transfer (rebooking mode) whose
     * source or destination is @p gpu: completion events are
     * descheduled and the flights forgotten, so their callbacks never
     * fire. The wire occupancy already booked stays — the bytes were
     * committed to the fabric before the device died.
     *
     * @return Number of flights aborted.
     */
    std::size_t quiesceDevice(int gpu);

    /** Submissions refused because an endpoint device was down. */
    std::uint64_t refusedDeliveries() const;

    /**
     * Flights that never completed because a device died under them:
     * aborted by quiesceDevice (serial rebooking mode) or orphaned at
     * fire time by a dead destination (sharded mode).
     */
    std::uint64_t quiescedFlights() const;

    /** Live in-flight transfers (rebooking flights, or posted
     * cross-shard deliveries not yet fired when sharded). */
    std::size_t numTrackedFlights() const;
    /** @} */

    /**
     * @{ @name Sharded execution (DESIGN.md Sec. 13)
     *
     * bindShards() re-homes the fabric onto a sharded engine: each
     * directed pair link moves to its source GPU's shard (submissions
     * run there), per-source lanes take over the submission-side
     * statistics, and every delivery crosses to the destination's
     * shard via a stream-keyed post at >= one link latency — which is
     * exactly the engine's lookahead, so the conservative contract
     * holds by construction. Fault verdicts become synchronous: the
     * sender reads lastSubmissionDropped() right after transfer()
     * instead of waiting out an acknowledgement horizon. Delivery
     * observers are dispatched serially at window barriers, in
     * source-GPU order. PairwiseLinks topologies only; mutually
     * exclusive with setRebooking.
     */
    void bindShards(ShardedEventEngine &engine,
                    std::vector<int> shard_of);

    /** Whether bindShards re-homed this fabric. */
    bool sharded() const { return _engine != nullptr; }

    /** Synchronous verdict of @p src's most recent submission:
     * true when it was dropped or refused (sharded mode only). */
    bool lastSubmissionDropped(int src) const;
    /** @} */

  private:
    EventQueue &_eq;
    FabricSpec _spec;
    PacketModel _packet;
    /** Inter-node tier packetization (multi-node fabrics only). */
    PacketModel _interPacket;
    int _numGpus;

    /** GPUs of @p gpu's node present on this fabric instance. */
    int nodeSpan(int gpu) const;

    std::vector<std::unique_ptr<Channel>> _egress;
    std::vector<std::unique_ptr<Channel>> _ingress;
    std::unique_ptr<Channel> _core;

    /** Directed pair links, indexed src * numGpus + dst. */
    std::vector<std::unique_ptr<Channel>> _pairs;

    std::vector<std::uint64_t> _storeTransactions;
    Histogram _writeSizes;
    Trace *_trace = nullptr;
    FaultFilter _faultFilter;

    /** Registered delivery observers, fired in registration order. */
    struct ObserverSlot
    {
        ObserverHandle handle;
        DeliveryObserver observer;
    };
    std::vector<ObserverSlot> _observers;
    ObserverHandle _nextObserverHandle = 1;

    /** Guard so observer removal mid-dispatch stays index-safe. */
    bool _dispatchingObservers = false;

    std::uint64_t _droppedDeliveries = 0;

    /** One channel hop of a tracked in-flight transfer. */
    struct Hop
    {
        Channel *channel;
        Channel::BookingId booking;
        Tick latencyAdd;   ///< Post-service latency this hop adds.
        Tick serviceEnd;   ///< Current service end on the channel.
    };

    /** A live transfer whose completion may move under rebooking. */
    struct Flight
    {
        int src = -1;                   ///< Endpoints, for quiesce.
        int dst = -1;
        std::vector<Hop> hops;
        Tick extraDelay = 0;            ///< Fault-injected delay.
        Tick delivered = 0;             ///< Current delivery tick.
        EventId event = 0;              ///< Completion event (0=none).
        EventQueue::Callback onComplete;
        std::function<void(Tick)> onRebook;
    };

    bool _rebooking = false;
    std::uint64_t _nextFlightId = 1;
    std::uint64_t _rebookedDeliveries = 0;
    std::uint64_t _refusedDeliveries = 0;
    std::uint64_t _quiescedFlights = 0;

    /** Per-GPU down flags (see setDeviceDown). Sharded: written only
     * serially between windows; fire-time reads are ordered by the
     * engine's window barrier. */
    std::vector<char> _deadDevice;
    std::unordered_map<std::uint64_t, Flight> _flights;

    /**
     * Per-source shard lane. Non-atomic members are written only by
     * the source GPU's shard during windows (or serially between
     * them); the atomics are additionally touched by destination
     * shards at delivery fire time.
     */
    struct alignas(64) Lane
    {
        Histogram writeSizes;
        std::uint64_t dropped = 0;
        std::uint64_t refused = 0;
        bool lastDropped = false;

        /** Submissions awaiting serial observer dispatch. */
        struct Deferred
        {
            Request req;
            DeliverySample sample;
        };
        std::vector<Deferred> pendingSamples;

        /** Posted deliveries not yet fired. */
        std::atomic<std::uint64_t> outstanding{0};

        /** Deliveries orphaned at fire time by a dead destination. */
        std::atomic<std::uint64_t> orphaned{0};
    };

    ShardedEventEngine *_engine = nullptr;
    std::vector<int> _shardOf;
    std::vector<std::unique_ptr<Lane>> _lanes;
    mutable Histogram _mergedWriteSizes;

    /** (channel, booking) -> flight id, per channel. */
    std::unordered_map<Channel *,
                       std::unordered_map<Channel::BookingId,
                                          std::uint64_t>> _hopIndex;

    void validate(const Request &req) const;

    /** Fire every registered observer for one submission. */
    void notifyObservers(const Request &req,
                         const DeliverySample &sample);

    /** Apply @p f to every channel of the fabric. */
    void forEachChannel(const std::function<void(Channel &)> &f);

    /** Channel rebook listener: move the owning flight's delivery. */
    void onHopRebooked(Channel *channel, Channel::BookingId booking,
                       Tick new_service_end);

    /** Fire and garbage-collect a tracked flight's completion. */
    void completeFlight(std::uint64_t id);

    /**
     * Consult the fault filter, schedule the completion callback
     * (unless the delivery was dropped), notify the delivery
     * observer, and trace the span. @p sample carries the pre-fault
     * timing split; fault delay spikes are charged to its service
     * component (they are a wire symptom, not queueing). Under
     * rebooking @p hops carries the channel bookings so the
     * completion can later move.
     * @return The (possibly delayed) delivery tick.
     */
    Tick finishDelivery(const Request &req, DeliverySample sample,
                        std::vector<Hop> hops = {});

    /** transfer() body for a bound fabric (see bindShards). */
    Tick transferSharded(const Request &req);

    /** Post one delivery to the destination's shard at @p when. */
    void postDelivery(const Request &req, Tick when);

    /** Barrier hook: serial observer dispatch in source order. */
    void flushDeferredSamples();
};

} // namespace proact

#endif // PROACT_INTERCONNECT_INTERCONNECT_HH
