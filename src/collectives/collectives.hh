/**
 * @file
 * Collective communication primitives with pluggable transports.
 *
 * The paper notes that "the PROACT technique could be implemented as
 * a new back end to many of these commonly used libraries" (NCCL,
 * NVSHMEM, GPU-aware MPI; Sec. II-B). This module demonstrates that:
 * broadcast and all-gather over the simulated fabric with either a
 * bulk-DMA transport (per-copy host issue + DMA initiation, like
 * cudaMemcpy-based libraries) or a PROACT transport (chunked,
 * agent-issued pushes that pipeline through the fabric with no host
 * involvement).
 */

#ifndef PROACT_COLLECTIVES_COLLECTIVES_HH
#define PROACT_COLLECTIVES_COLLECTIVES_HH

#include "faults/retry.hh"
#include "proact/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "system/multi_gpu_system.hh"

#include <cstdint>
#include <memory>

namespace proact {

/** Data-movement backend for a collective operation. */
enum class CollectiveBackend
{
    /** Host-driven DMA copies (cudaMemcpy-library style). */
    BulkDma,

    /** PROACT chunked pushes from device-side agents. */
    Proact,
};

std::string collectiveBackendName(CollectiveBackend backend);

/**
 * Collective operations over one system's fabric.
 *
 * Operations are one-shot: they book all their traffic when invoked
 * and report the completion tick (run the event queue to fire the
 * callbacks). Latencies compose with whatever else occupies the
 * fabric, so collectives can overlap application phases.
 */
class Collectives
{
  public:
    /**
     * @param config PROACT transport parameters (chunk granularity
     *        and transfer threads; the mechanism field is ignored).
     *        When config.retry is enabled, every chunked push is an
     *        acknowledged delivery — lost chunks are re-pushed with
     *        backoff and eventually fall back to the reliable bulk
     *        path, so broadcast/all-gather survive faulted fabrics.
     */
    Collectives(MultiGpuSystem &system, TransferConfig config = {});

    /**
     * Broadcast @p bytes from @p root to every other GPU.
     *
     * With the Proact backend, @p on_complete fires when the last
     * chunk has *actually* landed (later than the returned tick when
     * retries were needed); with BulkDma it fires at the returned
     * (reliable) delivery tick.
     *
     * @return Tick at which the last GPU holds the data, assuming no
     *         delivery is lost (first-attempt prediction).
     */
    Tick broadcast(int root, std::uint64_t bytes,
                   CollectiveBackend backend,
                   EventQueue::Callback on_complete = nullptr);

    /**
     * All-gather: every GPU contributes @p bytes_per_gpu and ends up
     * with every other GPU's contribution.
     * @return Tick at which the last contribution lands.
     */
    Tick allGather(std::uint64_t bytes_per_gpu,
                   CollectiveBackend backend,
                   EventQueue::Callback on_complete = nullptr);

    /**
     * Achieved bus bandwidth of an operation that moved
     * @p total_payload in @p ticks (the NCCL-style metric).
     */
    static double busBandwidth(std::uint64_t total_payload,
                               Tick ticks);

    /** Chunk deliveries observed (exactly one per chunk x peer). */
    std::uint64_t chunksDelivered() const { return _chunksDelivered; }

    /** Retry/fallback statistics of the chunked transport. */
    const StatSet &stats() const { return _stats; }

  private:
    /** Completion bookkeeping of one in-flight operation. */
    struct PendingOp
    {
        std::uint64_t remaining = 0;
        EventQueue::Callback onComplete;
    };

    MultiGpuSystem &_system;
    TransferConfig _config;
    RetryingSender _sender;
    StatSet _stats;
    std::uint64_t _chunksDelivered = 0;

    Tick pushPartition(int src, std::uint64_t bytes,
                       CollectiveBackend backend, Tick not_before,
                       const std::shared_ptr<PendingOp> &op);

    /** Submit one chunk via retry (and the rerouter when enabled). */
    Tick sendChunk(Interconnect::Request req);
};

} // namespace proact

#endif // PROACT_COLLECTIVES_COLLECTIVES_HH
