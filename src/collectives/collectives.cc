#include "collectives/collectives.hh"

#include "interconnect/rerouter.hh"
#include "sim/logging.hh"

#include <algorithm>

namespace proact {

std::string
collectiveBackendName(CollectiveBackend backend)
{
    switch (backend) {
      case CollectiveBackend::BulkDma:
        return "bulk-DMA";
      case CollectiveBackend::Proact:
        return "PROACT";
    }
    return "unknown";
}

Collectives::Collectives(MultiGpuSystem &system, TransferConfig config)
    : _system(system), _config(config),
      _sender(system.eventQueue(), system.fabric(), config.retry,
              &_stats, system.trace())
{
    if (_config.chunkBytes == 0)
        fatalError("Collectives: zero chunk granularity");
}

Tick
Collectives::sendChunk(Interconnect::Request req)
{
    // Every chunk flows through the retrying sender (a disabled
    // policy passes straight to the fabric); with the fault-adaptive
    // runtime on, the rerouter may additionally detour or split the
    // chunk around unhealthy links, and the sender can re-plan a
    // chunk mid-retry (refreshed per chunk because enableReroute()
    // may run after construction).
    _sender.setRerouter(_system.rerouter());
    if (Rerouter *rr = _system.rerouter()) {
        return rr->send(
            [this](const Interconnect::Request &leg) {
                return _sender.send(leg);
            },
            std::move(req));
    }
    return _sender.send(std::move(req));
}

Tick
Collectives::pushPartition(int src, std::uint64_t bytes,
                           CollectiveBackend backend, Tick not_before,
                           const std::shared_ptr<PendingOp> &op)
{
    const int n = _system.numGpus();
    Tick last = std::max(_system.now(), not_before);
    if (bytes == 0 || n < 2)
        return last;

    if (backend == CollectiveBackend::BulkDma) {
        // One host-issued DMA per destination, serialized on the
        // host thread exactly like cudaMemcpy-based libraries.
        for (int dst = 0; dst < n; ++dst) {
            if (dst == src)
                continue;
            const Tick issue = _system.host().issue();
            last = std::max(
                last, _system.dma(src).copyToPeer(
                          dst, bytes, nullptr,
                          std::max(issue, not_before)));
        }
        return last;
    }

    // PROACT transport: the partition is pushed chunk by chunk by a
    // device-side agent — no host involvement, chunks pipeline
    // through egress/ingress, bandwidth gated by the transfer
    // threads.
    const std::uint64_t chunk_bytes =
        std::min(_config.chunkBytes, bytes);
    for (std::uint64_t off = 0; off < bytes; off += chunk_bytes) {
        const std::uint64_t payload =
            std::min(chunk_bytes, bytes - off);
        for (int dst = 0; dst < n; ++dst) {
            if (dst == src)
                continue;
            Interconnect::Request req;
            req.src = src;
            req.dst = dst;
            req.bytes = payload;
            req.writeGranularity =
                _system.fabric().packetModel().maxPayloadBytes;
            req.threads = _config.transferThreads;
            req.notBefore = not_before;
            ++op->remaining;
            req.onComplete = [this, op] {
                ++_chunksDelivered;
                if (--op->remaining == 0 && op->onComplete)
                    op->onComplete();
            };
            last = std::max(last, sendChunk(std::move(req)));
        }
    }
    return last;
}

Tick
Collectives::broadcast(int root, std::uint64_t bytes,
                       CollectiveBackend backend,
                       EventQueue::Callback on_complete)
{
    if (root < 0 || root >= _system.numGpus())
        fatalError("Collectives: bad broadcast root ", root);

    auto op = std::make_shared<PendingOp>();
    op->onComplete = std::move(on_complete);
    const Tick done =
        pushPartition(root, bytes, backend, _system.now(), op);
    // Chunked pushes complete the op at the last actual delivery;
    // DMA (or an empty op) completes at the reliable predicted tick.
    if (op->remaining == 0 && op->onComplete)
        _system.eventQueue().schedule(done, std::move(op->onComplete));
    return done;
}

Tick
Collectives::allGather(std::uint64_t bytes_per_gpu,
                       CollectiveBackend backend,
                       EventQueue::Callback on_complete)
{
    auto op = std::make_shared<PendingOp>();
    op->onComplete = std::move(on_complete);
    Tick done = _system.now();
    for (int src = 0; src < _system.numGpus(); ++src) {
        done = std::max(done, pushPartition(src, bytes_per_gpu,
                                            backend,
                                            _system.now(), op));
    }
    if (op->remaining == 0 && op->onComplete)
        _system.eventQueue().schedule(done, std::move(op->onComplete));
    return done;
}

double
Collectives::busBandwidth(std::uint64_t total_payload, Tick ticks)
{
    if (ticks == 0)
        return 0.0;
    return bytesPerSecond(total_payload, ticks);
}

} // namespace proact
