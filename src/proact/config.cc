#include "proact/config.hh"

#include <sstream>

namespace proact {

std::string
mechanismName(TransferMechanism mechanism)
{
    switch (mechanism) {
      case TransferMechanism::Inline:
        return "inline";
      case TransferMechanism::Polling:
        return "polling";
      case TransferMechanism::Cdp:
        return "cdp";
      case TransferMechanism::Hardware:
        return "hardware";
    }
    return "unknown";
}

std::string
mechanismCode(TransferMechanism mechanism)
{
    switch (mechanism) {
      case TransferMechanism::Inline:
        return "I";
      case TransferMechanism::Polling:
        return "Poll";
      case TransferMechanism::Cdp:
        return "CDP";
      case TransferMechanism::Hardware:
        return "HW";
    }
    return "?";
}

std::string
formatBytes(std::uint64_t bytes)
{
    std::ostringstream oss;
    if (bytes >= GiB && bytes % GiB == 0)
        oss << bytes / GiB << "GB";
    else if (bytes >= MiB && bytes % MiB == 0)
        oss << bytes / MiB << "MB";
    else if (bytes >= KiB && bytes % KiB == 0)
        oss << bytes / KiB << "kB";
    else
        oss << bytes << "B";
    return oss.str();
}

std::string
TransferConfig::toString() const
{
    if (mechanism == TransferMechanism::Inline)
        return "I";
    std::ostringstream oss;
    oss << "D " << formatBytes(chunkBytes) << " " << transferThreads
        << " " << mechanismCode(mechanism);
    return oss.str();
}

std::vector<std::uint64_t>
chunkSizeSweep()
{
    return {4 * KiB,   16 * KiB,  64 * KiB, 128 * KiB,
            256 * KiB, 1 * MiB,   4 * MiB,  16 * MiB};
}

std::vector<std::uint32_t>
threadCountSweep()
{
    return {32, 128, 256, 512, 1024, 2048, 4096, 8192};
}

} // namespace proact
