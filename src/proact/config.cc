#include "proact/config.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace proact {

std::string
mechanismName(TransferMechanism mechanism)
{
    switch (mechanism) {
      case TransferMechanism::Inline:
        return "inline";
      case TransferMechanism::Polling:
        return "polling";
      case TransferMechanism::Cdp:
        return "cdp";
      case TransferMechanism::Hardware:
        return "hardware";
    }
    return "unknown";
}

std::string
mechanismCode(TransferMechanism mechanism)
{
    switch (mechanism) {
      case TransferMechanism::Inline:
        return "I";
      case TransferMechanism::Polling:
        return "Poll";
      case TransferMechanism::Cdp:
        return "CDP";
      case TransferMechanism::Hardware:
        return "HW";
    }
    return "?";
}

std::string
formatBytes(std::uint64_t bytes)
{
    std::ostringstream oss;
    if (bytes >= GiB && bytes % GiB == 0)
        oss << bytes / GiB << "GB";
    else if (bytes >= MiB && bytes % MiB == 0)
        oss << bytes / MiB << "MB";
    else if (bytes >= KiB && bytes % KiB == 0)
        oss << bytes / KiB << "kB";
    else
        oss << bytes << "B";
    return oss.str();
}

std::string
TransferConfig::toString() const
{
    if (mechanism == TransferMechanism::Inline)
        return "I";
    std::ostringstream oss;
    oss << "D " << formatBytes(chunkBytes) << " " << transferThreads
        << " " << mechanismCode(mechanism);
    return oss.str();
}

std::vector<std::uint64_t>
chunkSizeSweep()
{
    return {4 * KiB,   16 * KiB,  64 * KiB, 128 * KiB,
            256 * KiB, 1 * MiB,   4 * MiB,  16 * MiB};
}

std::vector<std::uint32_t>
threadCountSweep()
{
    return {32, 128, 256, 512, 1024, 2048, 4096, 8192};
}

namespace {

double
envDouble(const char *name, double fallback, double lo, double hi)
{
    const char *env = std::getenv(name);
    if (env == nullptr || *env == '\0')
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env)
        return fallback;
    return std::clamp(v, lo, hi);
}

} // namespace

bool
envFaultsEnabled()
{
    const char *env = std::getenv("PROACT_FAULTS");
    return env != nullptr && *env != '\0'
        && std::string(env) != "0";
}

FaultPlan
envFaultPlan()
{
    FaultPlan plan;
    if (!envFaultsEnabled())
        return plan;

    const char *seed_env = std::getenv("PROACT_FAULT_SEED");
    if (seed_env != nullptr && *seed_env != '\0')
        plan.seed = std::strtoull(seed_env, nullptr, 10);

    const double drop =
        envDouble("PROACT_FAULT_DROP_RATE", 0.01, 0.0, 1.0);
    if (drop > 0.0)
        plan.dropDeliveries(0, maxTick, drop);

    const double degrade =
        envDouble("PROACT_FAULT_DEGRADE", 0.0, 0.0, 0.95);
    if (degrade > 0.0)
        plan.degradeLink(0, maxTick, degrade);

    return plan;
}

namespace {

/** A fault-adaptive layer: on by default when faults are on. */
bool
envLayerEnabled(const char *name)
{
    if (!envFaultsEnabled())
        return false;
    const char *env = std::getenv(name);
    if (env == nullptr || *env == '\0')
        return true;
    return std::string(env) != "0";
}

} // namespace

bool
envHealthEnabled()
{
    return envLayerEnabled("PROACT_HEALTH") || envRerouteEnabled()
        || envReprofileEnabled();
}

bool
envRerouteEnabled()
{
    return envLayerEnabled("PROACT_REROUTE");
}

bool
envReprofileEnabled()
{
    return envLayerEnabled("PROACT_REPROFILE");
}

ReroutePolicy
envReroutePolicy()
{
    ReroutePolicy policy;
    const char *env = std::getenv("PROACT_REROUTE_QUEUE_WEIGHT");
    if (env != nullptr && *env != '\0')
        policy.queueWeightedCongestion = std::string(env) != "0";
    return policy;
}

HealthPolicy
envHealthPolicy()
{
    HealthPolicy policy;
    policy.congestedQueueRatio = envDouble(
        "PROACT_HEALTH_CONGEST_RATIO", policy.congestedQueueRatio,
        0.1, 1000.0);
    policy.clearQueueRatio =
        envDouble("PROACT_HEALTH_CLEAR_RATIO", policy.clearQueueRatio,
                  0.0, 1000.0);
    if (policy.clearQueueRatio >= policy.congestedQueueRatio)
        policy.clearQueueRatio = policy.congestedQueueRatio * 0.5;
    const double holdoff_us =
        envDouble("PROACT_HEALTH_HOLDOFF_US", 0.0, 0.0, 1e6);
    policy.transitionHoldoff = static_cast<Tick>(
        holdoff_us * static_cast<double>(ticksPerMicrosecond));
    return policy;
}

namespace {

/** Opt-in flag: off unless the variable is set to something != "0". */
bool
envFlagEnabled(const char *name)
{
    const char *env = std::getenv(name);
    return env != nullptr && *env != '\0' && std::string(env) != "0";
}

} // namespace

bool
envCheckpointEnabled()
{
    return envFlagEnabled("PROACT_CHECKPOINT");
}

CheckpointPolicy
envCheckpointPolicy()
{
    CheckpointPolicy policy;
    policy.enabled = envCheckpointEnabled();
    policy.interval = static_cast<int>(
        envDouble("PROACT_CHECKPOINT_INTERVAL",
                  static_cast<double>(policy.interval), 1.0, 1e6));
    const double cost_us = envDouble(
        "PROACT_CHECKPOINT_COST_US",
        static_cast<double>(policy.cost)
            / static_cast<double>(ticksPerMicrosecond),
        0.0, 1e9);
    policy.cost = static_cast<Tick>(
        cost_us * static_cast<double>(ticksPerMicrosecond));
    return policy;
}

bool
envDeviceHealthEnabled()
{
    return envFlagEnabled("PROACT_DEVICE_HEALTH");
}

DeviceHealthPolicy
envDeviceHealthPolicy()
{
    DeviceHealthPolicy policy;
    const double interval_us = envDouble(
        "PROACT_DEVICE_HEALTH_INTERVAL_US",
        static_cast<double>(policy.heartbeatInterval)
            / static_cast<double>(ticksPerMicrosecond),
        1.0, 1e6);
    policy.heartbeatInterval = static_cast<Tick>(
        interval_us * static_cast<double>(ticksPerMicrosecond));
    policy.suspectAfterMisses = static_cast<int>(envDouble(
        "PROACT_DEVICE_HEALTH_SUSPECT_MISSES",
        static_cast<double>(policy.suspectAfterMisses), 1.0, 1e3));
    policy.lostAfterMisses = static_cast<int>(envDouble(
        "PROACT_DEVICE_HEALTH_LOST_MISSES",
        static_cast<double>(policy.lostAfterMisses), 1.0, 1e3));
    if (policy.suspectAfterMisses > policy.lostAfterMisses)
        policy.suspectAfterMisses = policy.lostAfterMisses;
    return policy;
}

bool
envReprofileChargeEnabled()
{
    return envFlagEnabled("PROACT_REPROFILE_CHARGE");
}

int
envNodes()
{
    return static_cast<int>(envDouble("PROACT_NODES", 1.0, 1.0, 64.0));
}

PlatformSpec
envMultiNodePlatform(int gpus_per_node)
{
    const int nodes = envNodes();
    if (nodes <= 1)
        return dgx2Platform();
    PlatformSpec platform = multiNodePlatform(nodes, gpus_per_node);
    FabricSpec &fabric = platform.fabric;

    const double bw_gbps = envDouble(
        "PROACT_INTER_BW_GBPS",
        fabric.interPerGpuBidirBandwidth / 1e9, 1.0, 400.0);
    fabric.interPerGpuBidirBandwidth = bw_gbps * 1e9;

    const double latency_us = envDouble(
        "PROACT_INTER_LATENCY_US",
        static_cast<double>(fabric.interLatency)
            / static_cast<double>(ticksPerMicrosecond),
        0.0, 1e6);
    Tick latency = static_cast<Tick>(
        latency_us * static_cast<double>(ticksPerMicrosecond));
    // The network tier must never undercut the intra-node latency:
    // that is the sharded engine's conservative lookahead floor.
    if (latency < fabric.latency)
        latency = fabric.latency;
    fabric.interLatency = latency;
    return platform;
}

RetryPolicy
envRetryPolicy()
{
    RetryPolicy policy;
    policy.enabled = envFaultsEnabled();

    const char *env = std::getenv("PROACT_RETRY_MAX_ATTEMPTS");
    if (env != nullptr && *env != '\0')
        policy.maxAttempts = std::clamp(std::atoi(env), 1, 16);

    // Reroute-aware retry defaults on whenever rerouting itself is
    // on: two lost attempts is exactly the streak that can flip a
    // link to DOWN (the first loss plus downAfterLosses reached while
    // retries overlap), so consulting the rerouter then is cheap and
    // never earlier than the health picture can change.
    if (envRerouteEnabled()) {
        policy.rerouteAfterAttempts = 2;
        const char *after = std::getenv("PROACT_RETRY_REROUTE_AFTER");
        if (after != nullptr && *after != '\0') {
            policy.rerouteAfterAttempts =
                std::clamp(std::atoi(after), 0, 16);
        }
    }
    return policy;
}

} // namespace proact
