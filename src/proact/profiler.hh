/**
 * @file
 * Compile-time profiler (paper Sec. III-A, Fig. 4, Table II).
 *
 * The profiler brute-force sweeps PROACT's configuration space —
 * transfer mechanism x chunk granularity x transfer thread count —
 * by executing the application in timing-only mode (kernels report
 * their footprints without doing the math) on a fresh system per
 * candidate, then selects the configuration with the best runtime.
 * The full sweep is retained so harnesses can print the Fig. 4
 * throughput surface and the Table II best-configuration rows.
 */

#ifndef PROACT_PROACT_PROFILER_HH
#define PROACT_PROACT_PROFILER_HH

#include "proact/config.hh"
#include "sim/types.hh"
#include "system/platform.hh"
#include "workloads/workload.hh"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace proact {

/**
 * Builds fresh, set-up workload instances for concurrent sweep
 * workers (same contract as harness WorkloadFactory; redeclared here
 * so the profiler layer doesn't depend on the harness).
 */
using SweepWorkloadFactory =
    std::function<std::unique_ptr<Workload>(int num_gpus)>;

/** One measured point of the profiling sweep. */
struct ProfileEntry
{
    TransferConfig config;
    Tick ticks;
};

/** Outcome of a profiling run. */
struct ProfileResult
{
    /** Best configuration over the whole space (incl. inline). */
    TransferConfig best;
    Tick bestTicks = 0;

    /** Inline variant's runtime (always measured). */
    Tick inlineTicks = 0;

    /**
     * Total simulated ticks the sweep itself consumed (every
     * candidate measurement, inline included). This is what an
     * *online* sweep would cost if its transfers were charged to the
     * live timeline — the adaptation-latency price of re-profiling.
     */
    Tick sweepTicks = 0;

    /** Every decoupled point measured, in sweep order. */
    std::vector<ProfileEntry> entries;

    /** Best decoupled point (ignoring inline). */
    ProfileEntry bestDecoupled() const;
};

/** Brute-force configuration search for one platform. */
class Profiler
{
  public:
    struct Options
    {
        std::vector<std::uint64_t> chunkSizes = chunkSizeSweep();
        std::vector<std::uint32_t> threadCounts = threadCountSweep();
        /**
         * Candidates in tie-break order: at equal runtime the
         * earlier mechanism wins. CDP precedes polling because it
         * consumes SM resources only while transferring (a free win
         * when times tie, as on communication-bound PCIe systems).
         */
        std::vector<TransferMechanism> mechanisms = {
            TransferMechanism::Cdp, TransferMechanism::Polling};

        /** Also measure the inline variant. */
        bool includeInline = true;

        /** Iterations per candidate (short prefix of the workload). */
        int profileIterations = 2;

        /**
         * Skip configurations whose per-GPU chunk count exceeds this
         * (readiness-counter storage and bitmap-scan cost become
         * unreasonable; cf. the paper's Sec. III-B storage remark).
         */
        int maxChunksPerGpu = 65536;

        /** @{ @name Fault-aware sweeps
         *
         * A faulted platform is just another platform: installing a
         * FaultPlan on every candidate's fresh system makes the sweep
         * optimize for the fabric as it actually behaves (retry
         * overhead shifts the optimum toward coarser chunks). The
         * retry policy is forced onto each measured config whenever
         * the plan is non-empty.
         */
        FaultPlan faults;
        RetryPolicy retry;

        /** Monitor link health during each measurement. */
        bool health = false;

        /** Reroute around unhealthy links during each measurement
         * (implies health). */
        bool reroute = false;
        /** @} */

        /** @{ @name Parallel sweep
         *
         * Every candidate is an independent simulation on a fresh
         * system, so the sweep parallelizes embarrassingly: with
         * @c shards > 1 and a @c sweepFactory, candidates are
         * measured by a worker pool (each worker on its own workload
         * instance) and the results merge back in sweep order —
         * bit-identical to the serial sweep, including best-config
         * tie-breaking. Without a factory the sweep stays serial
         * (workers cannot share one Workload).
         */

        /** Sweep worker count; 0 = read PROACT_SIM_SHARDS, 1 =
         * serial. */
        int shards = 0;

        /** Produces a fresh set-up workload per worker; must create
         * instances equivalent to the one passed to profile(). */
        SweepWorkloadFactory sweepFactory;
        /** @} */
    };

    explicit Profiler(PlatformSpec platform);
    Profiler(PlatformSpec platform, Options options);

    /**
     * Sweep the space for @p workload.
     *
     * The workload must already be set up for platform.numGpus GPUs;
     * its functional state is not modified (timing-only execution).
     */
    ProfileResult profile(Workload &workload);

    /** Timing-only runtime of a single candidate configuration. */
    Tick measure(Workload &workload, const TransferConfig &config);

    const Options &options() const { return _options; }

  private:
    PlatformSpec _platform;
    Options _options;
};

} // namespace proact

#endif // PROACT_PROACT_PROFILER_HH
