#include "proact/runtime.hh"

#include "proact/instrumentation.hh"
#include "proact/reprofiler.hh"
#include "sim/logging.hh"

#include <algorithm>
#include <atomic>
#include <vector>

namespace proact {

ProactRuntime::ProactRuntime(MultiGpuSystem &system, Options options)
    : _system(system), _options(std::move(options))
{
    if (_options.config.decoupled() &&
        _options.config.chunkBytes == 0) {
        fatalError("ProactRuntime: zero chunk granularity");
    }
}

std::string
ProactRuntime::name() const
{
    return _options.config.mechanism == TransferMechanism::Inline
        ? "PROACT-inline"
        : "PROACT-decoupled(" + _options.config.toString() + ")";
}

Tick
ProactRuntime::run(Workload &workload)
{
    if (workload.numGpus() != _system.numGpus())
        fatalError("ProactRuntime: workload set up for ",
                   workload.numGpus(), " GPUs, system has ",
                   _system.numGpus());

    int iterations = workload.numIterations();
    if (_options.maxIterations >= 0)
        iterations = std::min(iterations, _options.maxIterations);
    if (_options.firstIteration < 0 ||
        _options.firstIteration > iterations) {
        fatalError("ProactRuntime: firstIteration ",
                   _options.firstIteration, " outside [0, ",
                   iterations, "]");
    }
    if (_options.checkpoint.enabled &&
        _options.checkpoint.interval < 1) {
        fatalError("ProactRuntime: checkpoint interval must be >= 1");
    }

    const TrafficProfile traffic = workload.traffic();
    _atomicFanout = workload.footprintScale();
    _completedIterations = _options.firstIteration;
    const Tick start = _system.now();
    for (int iter = _options.firstIteration; iter < iterations;
         ++iter) {
        // Region boundary: adopt a re-profiled config before the next
        // iteration launches (mid-iteration state is never disturbed).
        if (_options.reprofiler) {
            if (_options.reprofiler->refresh()) {
                _options.config = _options.reprofiler->current();
                _stats.inc("config_swaps");
            }
            // When the reprofiler charges its narrowed sweep, the
            // adaptation latency lands on this run's timeline — the
            // run stalls at the boundary while the sweep's transfers
            // would occupy the (idle) fabric. A sweep that ends up
            // keeping the current config still cost its measurements,
            // so the charge is consumed outside the refresh() branch.
            const Tick charge =
                _options.reprofiler->consumeChargeTicks();
            if (charge > 0) {
                _stats.inc("reprofile.charged_ticks",
                           static_cast<double>(charge));
                advanceTimeline(charge);
            }
        }
        const Phase phase = workload.phase(iter);
        if (_system.numGpus() == 1)
            runPhaseSingleGpu(phase);
        else
            runPhase(phase, traffic);

        // A device declared LOST mid-phase aborts at the boundary:
        // the phase's surviving traffic drained (lost transfers were
        // orphaned or quiesced), nothing new launches, and the caller
        // restarts from the latest checkpoint on surviving GPUs.
        if (_system.anyDeviceLost()) {
            _aborted = true;
            _lostGpu = _system.lostDevices().front();
            _stats.inc("aborts");
            break;
        }

        _completedIterations = iter + 1;
        if (_options.checkpoint.enabled &&
            (iter + 1) % _options.checkpoint.interval == 0) {
            _checkpointIteration = iter;
            ++_checkpoints;
            _checkpointTicks += _options.checkpoint.cost;
            _stats.inc("checkpoints");
            _stats.inc("checkpoint_ticks",
                       static_cast<double>(_options.checkpoint.cost));
            advanceTimeline(_options.checkpoint.cost);
        }
    }
    // A loss declared after the last boundary check (e.g. during the
    // final checkpoint's drain) still poisons the run: iterations
    // that overlapped the death ran with orphaned transfers, so the
    // result cannot be trusted or verified. The caller restarts from
    // the latest checkpoint as usual.
    if (!_aborted && _system.anyDeviceLost()) {
        _aborted = true;
        _lostGpu = _system.lostDevices().front();
        _stats.inc("aborts");
    }
    _stats.set("iterations",
               _completedIterations - _options.firstIteration);
    return _system.now() - start;
}

void
ProactRuntime::advanceTimeline(Tick cost)
{
    if (cost == 0)
        return;
    // Bounded drain: concurrent machinery (fault boundaries,
    // watchdog beats) observes the span, but events past the window
    // stay queued — a run() here would pull a far-future device-loss
    // boundary into this checkpoint and distort the timeline.
    _system.runTimelineTo(_system.now() + cost);
}

void
ProactRuntime::runPhaseSingleGpu(const Phase &phase)
{
    // No peers: PROACT degenerates to plain kernel execution.
    auto &eq = _system.eventQueue();
    KernelLaunch launch;
    launch.desc = phase.perGpu.at(0).kernel;
    const Tick issue = _system.host().issue();
    eq.schedule(issue, [this, launch] {
        _system.gpu(0).launch(launch);
    });
    eq.run();
}

void
ProactRuntime::runPhase(const Phase &phase,
                        const TrafficProfile &traffic)
{
    const int n = _system.numGpus();
    if (static_cast<int>(phase.perGpu.size()) != n)
        fatalError("ProactRuntime: phase describes ",
                   phase.perGpu.size(), " GPUs, system has ", n);

    auto &serial = _system.serialQueue();
    const bool sharded = _system.sharded();
    const bool inline_mode =
        _options.config.mechanism == TransferMechanism::Inline;

    // Per-phase tracking state (one tracker per produced region per
    // GPU); must outlive the drain below. Inline mode gets a
    // per-GPU retrying sender when the retry policy is on, giving the
    // inline store stream the same loss tolerance as the agents.
    std::vector<std::vector<std::unique_ptr<RegionTracker>>>
        trackers(n);
    std::vector<std::unique_ptr<TransferAgent>> agents(n);
    std::vector<std::unique_ptr<RetryingSender>> senders(n);

    // Sharded, every per-delivery bump lands on the firing GPU's
    // shard: plain counters become order-sensitive races. The shared
    // progress state is therefore atomic (sums and maxima — both
    // invariant under the shard count), and per-delivery stats go to
    // per-GPU lanes folded into _stats, in source order, after the
    // drain. The serial path uses the exact same code; with one
    // thread the atomics degenerate to the old plain counters.
    std::uint64_t expected_deliveries = 0;
    std::atomic<std::uint64_t> seen_deliveries{0};
    std::atomic<int> kernels_remaining{n};
    std::atomic<Tick> kernels_done{0};
    std::atomic<Tick> last_delivery{0};
    std::atomic<std::uint64_t> delivered_bytes{0};
    const double orphaned_before = _stats.get("transfers.orphaned");
    const std::uint64_t refused_before =
        _system.fabric().refusedDeliveries();
    const std::uint64_t quiesced_before =
        _system.fabric().quiescedFlights();

    std::vector<StatSet> gpu_stats(
        sharded ? static_cast<std::size_t>(n) : 0);
    auto sinkFor = [&](int g) -> StatSet * {
        return sharded ? &gpu_stats[static_cast<std::size_t>(g)]
                       : &_stats;
    };

    auto tickHere = [&serial]() -> Tick {
        EventQueue *cur = ShardedEventEngine::currentQueue();
        return cur ? cur->curTick() : serial.curTick();
    };
    auto atomicMax = [](std::atomic<Tick> &slot, Tick value) {
        Tick prev = slot.load(std::memory_order_relaxed);
        while (prev < value &&
               !slot.compare_exchange_weak(
                   prev, value, std::memory_order_relaxed)) {
        }
    };

    auto on_delivered = [&, atomicMax](std::uint64_t bytes) {
        seen_deliveries.fetch_add(1, std::memory_order_relaxed);
        atomicMax(last_delivery, tickHere());
        delivered_bytes.fetch_add(bytes, std::memory_order_relaxed);
    };
    auto on_kernel_done = [&, atomicMax] {
        atomicMax(kernels_done, tickHere());
        kernels_remaining.fetch_sub(1, std::memory_order_relaxed);
    };

    std::vector<KernelLaunch> launches;
    launches.reserve(n);

    for (int g = 0; g < n; ++g) {
        const GpuPhaseWork &work = phase.perGpu[g];
        const auto outputs = work.allOutputs();

        if (outputs.empty()) {
            // Nothing to communicate: run the kernel untouched.
            KernelLaunch launch;
            launch.desc = work.kernel;
            launch.onComplete = on_kernel_done;
            launches.push_back(std::move(launch));
            continue;
        }

        if (inline_mode) {
            expected_deliveries +=
                static_cast<std::uint64_t>(work.kernel.numCtas)
                * outputs.size() * (n - 1);
            RetryingSender *sender = nullptr;
            if (_options.config.retry.enabled) {
                // Trace spans are serial-only machinery; skipped on a
                // shard-bound sender (see TransferAgent).
                senders[g] = std::make_unique<RetryingSender>(
                    _system.queueFor(g), _system.fabric(),
                    _options.config.retry, sinkFor(g),
                    sharded ? nullptr : _system.trace());
                senders[g]->setRerouter(_system.rerouter());
                sender = senders[g].get();
            }
            launches.push_back(instrumentInline(
                work, _system, g, traffic.inlineStoreBytes,
                _options.elideTransfers, on_delivered, sinkFor(g),
                on_kernel_done, sender));
            continue;
        }

        TransferAgent::Context ctx;
        ctx.system = &_system;
        ctx.gpuId = g;
        ctx.config = _options.config;
        ctx.elideTransfers = _options.elideTransfers;
        ctx.onDelivered = on_delivered;
        ctx.stats = sinkFor(g);
        ctx.queue = &_system.queueFor(g);
        agents[g] = makeAgent(_options.config.mechanism,
                              std::move(ctx));

        std::vector<TrackedRegion> tracked;
        for (const RegionOutput &output : outputs) {
            auto tracker = std::make_unique<RegionTracker>(
                output.bytesProduced, _options.config.chunkBytes);
            tracker->initCounters(work.kernel.numCtas,
                                  output.ctaRange);

            expected_deliveries +=
                static_cast<std::uint64_t>(tracker->numChunks())
                * (n - 1);
            _stats.inc("chunks_total", tracker->numChunks());

            // Chunks no CTA writes (possible under user-defined
            // mappings) are ready from the start.
            for (int c = 0; c < tracker->numChunks(); ++c) {
                if (tracker->counters().expected(c) == 0) {
                    agents[g]->chunkReady(c, tracker->chunkSize(c));
                    warn("PROACT: chunk with no writer CTAs in "
                         "kernel '" + work.kernel.name + "'");
                }
            }

            tracked.push_back(
                TrackedRegion{tracker.get(), output.ctaRange});
            trackers[g].push_back(std::move(tracker));
        }

        launches.push_back(instrumentDecoupled(
            work.kernel, std::move(tracked), *agents[g],
            _system.gpu(g), sinkFor(g), on_kernel_done,
            _atomicFanout));
    }

    // On a shard-bound rerouter every chained relay hop must be
    // submitted from the relay's own shard; install one forwarding
    // sender per GPU for the rerouter to dispatch through. (Serial,
    // the tail re-enters the originating sender directly.)
    std::vector<std::unique_ptr<RetryingSender>> hop_senders;
    if (sharded && _system.rerouter()) {
        std::vector<Rerouter::Submit> submitters;
        hop_senders.reserve(static_cast<std::size_t>(n));
        submitters.reserve(static_cast<std::size_t>(n));
        for (int g = 0; g < n; ++g) {
            hop_senders.push_back(std::make_unique<RetryingSender>(
                _system.queueFor(g), _system.fabric(),
                _options.config.retry, sinkFor(g), nullptr));
            RetryingSender *hs = hop_senders.back().get();
            submitters.push_back(
                [hs](const Interconnect::Request &leg) {
                    return hs->send(leg);
                });
        }
        _system.rerouter()->setHopSubmitters(std::move(submitters));
    }

    // Host issues the per-GPU launches back-to-back, each onto its
    // GPU's home queue. The floor keeps the issue tick valid for
    // every shard clock (they are window-quantized, never ahead of
    // now()) and is itself invariant under the shard count.
    const Tick floor = _system.now();
    for (int g = 0; g < n; ++g) {
        const Tick issue = std::max(_system.host().issue(), floor);
        const KernelLaunch &launch = launches[g];
        _system.queueFor(g).schedule(issue, [this, g, launch] {
            _system.gpu(g).launch(launch);
        });
    }

    if (_system.deviceHealth()) {
        // Bounded drain under the device watchdog: stop once the
        // phase's own work is accounted for (kernels done; every
        // expected delivery seen, orphaned, or refused at a dead
        // endpoint). A plain run() would also drain *future* fault
        // boundaries — scheduled at absolute ticks when the plan was
        // armed — dragging the clock to the loss tick inside the
        // first phase, so a mid-run death would always abort at
        // iteration 0 with no checkpointed progress to preserve.
        // Background events left behind (heartbeats, boundaries,
        // stale ack timeouts) fire during later phase or checkpoint
        // drains at their proper ticks.
        // Sharded, the fabric additionally orphans deliveries already
        // on the wire when their destination dies (quiescedFlights) —
        // those never reach a sender's ladder, so they are accounted
        // here directly. The predicate runs serially: between events
        // on the serial engine, at window barriers when sharded.
        auto accounted = [&] {
            double orphaned_stat = _stats.get("transfers.orphaned");
            for (const StatSet &gs : gpu_stats)
                orphaned_stat += gs.get("transfers.orphaned");
            const auto orphaned = static_cast<std::uint64_t>(
                orphaned_stat - orphaned_before);
            std::uint64_t refused =
                _system.fabric().refusedDeliveries() - refused_before;
            if (sharded) {
                refused += _system.fabric().quiescedFlights()
                    - quiesced_before;
            }
            return kernels_remaining.load(std::memory_order_relaxed)
                == 0
                && seen_deliveries.load(std::memory_order_relaxed)
                    + orphaned + refused
                >= expected_deliveries;
        };
        _system.drainWhile([&] { return !accounted(); });
    } else {
        _system.run();
    }

    // Fold the per-GPU stat lanes (ascending source order — a fixed,
    // shard-count-invariant order) before the books are balanced.
    for (const StatSet &gs : gpu_stats)
        _stats.merge(gs);
    const std::uint64_t delivered =
        delivered_bytes.load(std::memory_order_relaxed);
    if (delivered > 0)
        _stats.inc("delivered_bytes", static_cast<double>(delivered));

    // A device loss legitimately leaves deliveries missing (orphaned
    // or quiesced); the abort path in run() deals with it. A
    // transient device-down window that never reached LOST also
    // orphans transfers — those are accounted one-for-one, so the
    // conservation law still closes. On a healthy system the
    // invariants hold as ever.
    if (!_system.anyDeviceLost()) {
        auto orphaned = static_cast<std::uint64_t>(
            _stats.get("transfers.orphaned") - orphaned_before);
        if (sharded) {
            orphaned += _system.fabric().quiescedFlights()
                - quiesced_before;
        }
        const std::uint64_t seen =
            seen_deliveries.load(std::memory_order_relaxed);
        const int remaining =
            kernels_remaining.load(std::memory_order_relaxed);
        if (seen + orphaned != expected_deliveries)
            panicError("ProactRuntime: expected ",
                       expected_deliveries, " deliveries, saw ",
                       seen, " (+", orphaned, " orphaned)");
        if (remaining != 0)
            panicError("ProactRuntime: ", remaining,
                       " kernels never completed");
    }

    const Tick last = last_delivery.load(std::memory_order_relaxed);
    const Tick done = kernels_done.load(std::memory_order_relaxed);
    if (last > done)
        _tailTicks += last - done;
    _stats.inc("phases");
}

} // namespace proact
