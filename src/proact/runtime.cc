#include "proact/runtime.hh"

#include "proact/instrumentation.hh"
#include "proact/reprofiler.hh"
#include "sim/logging.hh"

#include <algorithm>
#include <vector>

namespace proact {

ProactRuntime::ProactRuntime(MultiGpuSystem &system, Options options)
    : _system(system), _options(std::move(options))
{
    if (_options.config.decoupled() &&
        _options.config.chunkBytes == 0) {
        fatalError("ProactRuntime: zero chunk granularity");
    }
}

std::string
ProactRuntime::name() const
{
    return _options.config.mechanism == TransferMechanism::Inline
        ? "PROACT-inline"
        : "PROACT-decoupled(" + _options.config.toString() + ")";
}

Tick
ProactRuntime::run(Workload &workload)
{
    if (workload.numGpus() != _system.numGpus())
        fatalError("ProactRuntime: workload set up for ",
                   workload.numGpus(), " GPUs, system has ",
                   _system.numGpus());

    int iterations = workload.numIterations();
    if (_options.maxIterations >= 0)
        iterations = std::min(iterations, _options.maxIterations);

    const TrafficProfile traffic = workload.traffic();
    _atomicFanout = workload.footprintScale();
    const Tick start = _system.now();
    for (int iter = 0; iter < iterations; ++iter) {
        // Region boundary: adopt a re-profiled config before the next
        // iteration launches (mid-iteration state is never disturbed).
        if (_options.reprofiler && _options.reprofiler->refresh()) {
            _options.config = _options.reprofiler->current();
            _stats.inc("config_swaps");
        }
        const Phase phase = workload.phase(iter);
        if (_system.numGpus() == 1)
            runPhaseSingleGpu(phase);
        else
            runPhase(phase, traffic);
    }
    _stats.set("iterations", iterations);
    return _system.now() - start;
}

void
ProactRuntime::runPhaseSingleGpu(const Phase &phase)
{
    // No peers: PROACT degenerates to plain kernel execution.
    auto &eq = _system.eventQueue();
    KernelLaunch launch;
    launch.desc = phase.perGpu.at(0).kernel;
    const Tick issue = _system.host().issue();
    eq.schedule(issue, [this, launch] {
        _system.gpu(0).launch(launch);
    });
    eq.run();
}

void
ProactRuntime::runPhase(const Phase &phase,
                        const TrafficProfile &traffic)
{
    const int n = _system.numGpus();
    if (static_cast<int>(phase.perGpu.size()) != n)
        fatalError("ProactRuntime: phase describes ",
                   phase.perGpu.size(), " GPUs, system has ", n);

    auto &eq = _system.eventQueue();
    const bool inline_mode =
        _options.config.mechanism == TransferMechanism::Inline;

    // Per-phase tracking state (one tracker per produced region per
    // GPU); must outlive eq.run() below. Inline mode gets a
    // per-GPU retrying sender when the retry policy is on, giving the
    // inline store stream the same loss tolerance as the agents.
    std::vector<std::vector<std::unique_ptr<RegionTracker>>>
        trackers(n);
    std::vector<std::unique_ptr<TransferAgent>> agents(n);
    std::vector<std::unique_ptr<RetryingSender>> senders(n);

    std::uint64_t expected_deliveries = 0;
    std::uint64_t seen_deliveries = 0;
    int kernels_remaining = n;
    Tick kernels_done = 0;
    Tick last_delivery = 0;

    auto on_delivered = [&](std::uint64_t bytes) {
        ++seen_deliveries;
        last_delivery = eq.curTick();
        _stats.inc("delivered_bytes", static_cast<double>(bytes));
    };
    auto on_kernel_done = [&] {
        if (--kernels_remaining == 0)
            kernels_done = eq.curTick();
    };

    std::vector<KernelLaunch> launches;
    launches.reserve(n);

    for (int g = 0; g < n; ++g) {
        const GpuPhaseWork &work = phase.perGpu[g];
        const auto outputs = work.allOutputs();

        if (outputs.empty()) {
            // Nothing to communicate: run the kernel untouched.
            KernelLaunch launch;
            launch.desc = work.kernel;
            launch.onComplete = on_kernel_done;
            launches.push_back(std::move(launch));
            continue;
        }

        if (inline_mode) {
            expected_deliveries +=
                static_cast<std::uint64_t>(work.kernel.numCtas)
                * outputs.size() * (n - 1);
            RetryingSender *sender = nullptr;
            if (_options.config.retry.enabled) {
                senders[g] = std::make_unique<RetryingSender>(
                    _system.eventQueue(), _system.fabric(),
                    _options.config.retry, &_stats,
                    _system.trace());
                senders[g]->setRerouter(_system.rerouter());
                sender = senders[g].get();
            }
            launches.push_back(instrumentInline(
                work, _system, g, traffic.inlineStoreBytes,
                _options.elideTransfers, on_delivered, &_stats,
                on_kernel_done, sender));
            continue;
        }

        TransferAgent::Context ctx;
        ctx.system = &_system;
        ctx.gpuId = g;
        ctx.config = _options.config;
        ctx.elideTransfers = _options.elideTransfers;
        ctx.onDelivered = on_delivered;
        ctx.stats = &_stats;
        agents[g] = makeAgent(_options.config.mechanism,
                              std::move(ctx));

        std::vector<TrackedRegion> tracked;
        for (const RegionOutput &output : outputs) {
            auto tracker = std::make_unique<RegionTracker>(
                output.bytesProduced, _options.config.chunkBytes);
            tracker->initCounters(work.kernel.numCtas,
                                  output.ctaRange);

            expected_deliveries +=
                static_cast<std::uint64_t>(tracker->numChunks())
                * (n - 1);
            _stats.inc("chunks_total", tracker->numChunks());

            // Chunks no CTA writes (possible under user-defined
            // mappings) are ready from the start.
            for (int c = 0; c < tracker->numChunks(); ++c) {
                if (tracker->counters().expected(c) == 0) {
                    agents[g]->chunkReady(c, tracker->chunkSize(c));
                    warn("PROACT: chunk with no writer CTAs in "
                         "kernel '" + work.kernel.name + "'");
                }
            }

            tracked.push_back(
                TrackedRegion{tracker.get(), output.ctaRange});
            trackers[g].push_back(std::move(tracker));
        }

        launches.push_back(instrumentDecoupled(
            work.kernel, std::move(tracked), *agents[g],
            _system.gpu(g), &_stats, on_kernel_done, _atomicFanout));
    }

    // Host issues the per-GPU launches back-to-back.
    for (int g = 0; g < n; ++g) {
        const Tick issue = _system.host().issue();
        const KernelLaunch &launch = launches[g];
        eq.schedule(issue, [this, g, launch] {
            _system.gpu(g).launch(launch);
        });
    }

    eq.run();

    if (seen_deliveries != expected_deliveries)
        panicError("ProactRuntime: expected ", expected_deliveries,
                   " deliveries, saw ", seen_deliveries);
    if (kernels_remaining != 0)
        panicError("ProactRuntime: ", kernels_remaining,
                   " kernels never completed");

    if (last_delivery > kernels_done)
        _tailTicks += last_delivery - kernels_done;
    _stats.inc("phases");
}

} // namespace proact
