/**
 * @file
 * Readiness counter array (paper Sec. III-B).
 *
 * One atomic counter per transfer chunk, initialized to the number of
 * CTAs that write the chunk (a compiler-derived constant). Producer
 * CTAs decrement the counters of every chunk they touch; a counter
 * reaching zero marks its chunk ready for transfer. This class is the
 * functional ledger; the *timing* of decrements flows through the
 * GPU's L2 atomic-unit channel.
 */

#ifndef PROACT_PROACT_COUNTERS_HH
#define PROACT_PROACT_COUNTERS_HH

#include <cstdint>
#include <vector>

namespace proact {

/** Per-chunk CTA-arrival counters for one GPU's region partition. */
class CounterArray
{
  public:
    /** Create @p num_chunks counters, all initially zero-expected. */
    explicit CounterArray(int num_chunks);

    int numChunks() const { return static_cast<int>(_expected.size()); }

    /** Add one expected writer CTA to @p chunk (init phase). */
    void expectWriter(int chunk);

    /** Expected writers of @p chunk. */
    int expected(int chunk) const;

    /** Remaining (undecremented) writers of @p chunk. */
    int remaining(int chunk) const;

    /**
     * Decrement @p chunk's counter (one writer CTA arrived).
     * @return true iff this decrement made the chunk ready.
     */
    bool decrement(int chunk);

    bool ready(int chunk) const { return remaining(chunk) == 0; }

    /** Chunks whose counters have reached zero. */
    int readyChunks() const { return _readyChunks; }

    bool allReady() const { return _readyChunks == numChunks(); }

    /** Total decrements performed (== atomic ops issued). */
    std::uint64_t totalDecrements() const { return _decrements; }

    /** Sum of expected counts (== decrements a full run will issue). */
    std::uint64_t totalExpected() const;

    /** Re-arm every counter to its expected value (next iteration). */
    void rearm();

  private:
    std::vector<int> _expected;
    std::vector<int> _remaining;
    int _readyChunks = 0;
    std::uint64_t _decrements = 0;

    void checkChunk(int chunk) const;
};

} // namespace proact

#endif // PROACT_PROACT_COUNTERS_HH
