#include "proact/counters.hh"

#include "sim/logging.hh"

#include <numeric>

namespace proact {

CounterArray::CounterArray(int num_chunks)
    : _expected(num_chunks, 0), _remaining(num_chunks, 0)
{
    if (num_chunks <= 0)
        fatalError("CounterArray: need at least one chunk");
    // Chunks with zero expected writers are born ready.
    _readyChunks = num_chunks;
}

void
CounterArray::checkChunk(int chunk) const
{
    if (chunk < 0 || chunk >= numChunks())
        panicError("CounterArray: chunk ", chunk, " out of ",
                   numChunks());
}

void
CounterArray::expectWriter(int chunk)
{
    checkChunk(chunk);
    if (_remaining[chunk] != _expected[chunk])
        panicError("CounterArray: expectWriter after decrements began");
    if (_expected[chunk] == 0)
        --_readyChunks; // No longer born-ready.
    ++_expected[chunk];
    ++_remaining[chunk];
}

int
CounterArray::expected(int chunk) const
{
    checkChunk(chunk);
    return _expected[chunk];
}

int
CounterArray::remaining(int chunk) const
{
    checkChunk(chunk);
    return _remaining[chunk];
}

bool
CounterArray::decrement(int chunk)
{
    checkChunk(chunk);
    if (_remaining[chunk] <= 0)
        panicError("CounterArray: decrement below zero on chunk ",
                   chunk);
    ++_decrements;
    if (--_remaining[chunk] == 0) {
        ++_readyChunks;
        return true;
    }
    return false;
}

std::uint64_t
CounterArray::totalExpected() const
{
    return std::accumulate(_expected.begin(), _expected.end(),
                           std::uint64_t(0));
}

void
CounterArray::rearm()
{
    _remaining = _expected;
    _readyChunks = 0;
    for (int e : _expected) {
        if (e == 0)
            ++_readyChunks;
    }
}

} // namespace proact
