/**
 * @file
 * PROACT transfer configuration (the profiler's search space).
 *
 * A configuration is the triple the paper's Table II reports per
 * application and platform: transfer scheme (inline vs. decoupled),
 * decoupled mechanism (polling vs. CDP vs. future hardware), transfer
 * granularity, and transfer thread count.
 */

#ifndef PROACT_PROACT_CONFIG_HH
#define PROACT_PROACT_CONFIG_HH

#include "sim/types.hh"

#include <cstdint>
#include <string>
#include <vector>

namespace proact {

/** How ready chunks travel to peer GPUs (paper Sec. III-C). */
enum class TransferMechanism
{
    /** P2P stores issued directly from producer threads. */
    Inline,

    /** Persistent warp-specialized kernel polling readiness bitmaps. */
    Polling,

    /** CUDA Dynamic Parallelism child kernel per ready chunk. */
    Cdp,

    /** Proposed hardware agent (Sec. III-D): counters and transfer
     * triggering in dedicated hardware, no SM overhead. */
    Hardware,
};

std::string mechanismName(TransferMechanism mechanism);

/** Short Table II-style code: I, Poll, CDP, HW. */
std::string mechanismCode(TransferMechanism mechanism);

/** One point in the profiler's configuration space. */
struct TransferConfig
{
    TransferMechanism mechanism = TransferMechanism::Cdp;

    /** Decoupled transfer granularity (paper range: 4 kB - 16 MB). */
    std::uint64_t chunkBytes = 64 * KiB;

    /** Transfer threads (paper range: 32 - 8192). */
    std::uint32_t transferThreads = 256;

    /** Table II-style rendering, e.g. "D 128kB 2048 Poll" or "I". */
    std::string toString() const;

    bool decoupled() const
    {
        return mechanism != TransferMechanism::Inline;
    }
};

/** Human-readable byte size (4kB, 1MB, ...). */
std::string formatBytes(std::uint64_t bytes);

/** Paper's studied chunk-granularity sweep: 4 kB ... 16 MB. */
std::vector<std::uint64_t> chunkSizeSweep();

/** Paper's studied transfer-thread sweep: 32 ... 8192. */
std::vector<std::uint32_t> threadCountSweep();

} // namespace proact

#endif // PROACT_PROACT_CONFIG_HH
