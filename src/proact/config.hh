/**
 * @file
 * PROACT transfer configuration (the profiler's search space).
 *
 * A configuration is the triple the paper's Table II reports per
 * application and platform: transfer scheme (inline vs. decoupled),
 * decoupled mechanism (polling vs. CDP vs. future hardware), transfer
 * granularity, and transfer thread count.
 */

#ifndef PROACT_PROACT_CONFIG_HH
#define PROACT_PROACT_CONFIG_HH

#include "faults/fault_plan.hh"
#include "faults/retry.hh"
#include "health/device_health.hh"
#include "health/link_health.hh"
#include "interconnect/rerouter.hh"
#include "sim/types.hh"
#include "system/platform.hh"

#include <cstdint>
#include <string>
#include <vector>

namespace proact {

/** How ready chunks travel to peer GPUs (paper Sec. III-C). */
enum class TransferMechanism
{
    /** P2P stores issued directly from producer threads. */
    Inline,

    /** Persistent warp-specialized kernel polling readiness bitmaps. */
    Polling,

    /** CUDA Dynamic Parallelism child kernel per ready chunk. */
    Cdp,

    /** Proposed hardware agent (Sec. III-D): counters and transfer
     * triggering in dedicated hardware, no SM overhead. */
    Hardware,
};

std::string mechanismName(TransferMechanism mechanism);

/** Short Table II-style code: I, Poll, CDP, HW. */
std::string mechanismCode(TransferMechanism mechanism);

/** One point in the profiler's configuration space. */
struct TransferConfig
{
    TransferMechanism mechanism = TransferMechanism::Cdp;

    /** Decoupled transfer granularity (paper range: 4 kB - 16 MB). */
    std::uint64_t chunkBytes = 64 * KiB;

    /** Transfer threads (paper range: 32 - 8192). */
    std::uint32_t transferThreads = 256;

    /**
     * Delivery acknowledgement / retry policy for the push traffic.
     * Disabled by default (a fault-free fabric needs none); must be
     * enabled when the system has a FaultPlan installed.
     */
    RetryPolicy retry;

    /** Table II-style rendering, e.g. "D 128kB 2048 Poll" or "I". */
    std::string toString() const;

    bool decoupled() const
    {
        return mechanism != TransferMechanism::Inline;
    }
};

/**
 * Iteration-boundary checkpointing. Region boundaries are the only
 * points where no chunk is mid-flight (the paper's sys-scope release
 * flushes all PROACT buffers there), so a checkpoint taken at one is
 * consistent by construction — the runtime models it as a fixed cost
 * charged to the simulated timeline every @c interval iterations.
 * After a device loss, a job restarts from the latest checkpointed
 * iteration (ProactRuntime::Options::firstIteration) instead of from
 * zero.
 */
struct CheckpointPolicy
{
    bool enabled = false;

    /** Iterations between checkpoints (>= 1). */
    int interval = 1;

    /** Simulated cost of writing one checkpoint. */
    Tick cost = 50 * ticksPerMicrosecond;
};

/** Human-readable byte size (4kB, 1MB, ...). */
std::string formatBytes(std::uint64_t bytes);

/** Paper's studied chunk-granularity sweep: 4 kB ... 16 MB. */
std::vector<std::uint64_t> chunkSizeSweep();

/** Paper's studied transfer-thread sweep: 32 ... 8192. */
std::vector<std::uint32_t> threadCountSweep();

/** @{ @name Environment-variable fault knobs
 *
 * Benchmarks enable fault injection without recompiling:
 *  - PROACT_FAULTS=1            master switch (0/unset = off)
 *  - PROACT_FAULT_DROP_RATE     delivery-loss probability
 *                               (default 0.01, clamped to [0, 1])
 *  - PROACT_FAULT_DEGRADE       fabric bandwidth fraction removed for
 *                               the whole run (default 0, clamp
 *                               [0, 0.95]; 0 = no degradation window)
 *  - PROACT_FAULT_SEED          drop-decision seed (default 1)
 *  - PROACT_RETRY_MAX_ATTEMPTS  retry budget before the reliable
 *                               fallback (default 5, clamp [1, 16])
 *  - PROACT_RETRY_REROUTE_AFTER lost attempts before a retrying
 *                               transfer consults the rerouter for an
 *                               alternate route (default 2 when
 *                               rerouting is on, clamp [0, 16];
 *                               0 = never re-plan mid-retry)
 *
 * Fault-adaptive runtime knobs (each defaults to on whenever
 * PROACT_FAULTS is on; set to 0 to ablate one layer):
 *  - PROACT_HEALTH=0/1          per-link health monitoring
 *  - PROACT_REROUTE=0/1         detours/splits around unhealthy links
 *                               (implies health monitoring)
 *  - PROACT_REPROFILE=0/1       re-profile + config hot-swap at
 *                               iteration boundaries on link-state
 *                               changes (implies health monitoring)
 *  - PROACT_REROUTE_QUEUE_WEIGHT=0/1 weight CONGESTED legs by
 *                               1/(1 + queueDelay ratio) instead of
 *                               the flat congestedPenalty, so
 *                               sustained multi-tenant hotspots
 *                               spread proportionally (default 0)
 *
 * Health-classification thresholds (read by envHealthPolicy when the
 * monitor is enabled from the environment):
 *  - PROACT_HEALTH_CONGEST_RATIO enter CONGESTED when the EWMA of
 *                               queueing delay over expected service
 *                               time exceeds this (default 2.0,
 *                               clamp [0.1, 1000])
 *  - PROACT_HEALTH_CLEAR_RATIO  leave CONGESTED below this (default
 *                               0.75, clamped under the enter
 *                               threshold to preserve hysteresis)
 *  - PROACT_HEALTH_HOLDOFF_US   minimum microseconds between state
 *                               changes of one link, DOWN exempt
 *                               (default 0 = off, clamp [0, 1e6])
 */

/** Whether PROACT_FAULTS enables fault injection. */
bool envFaultsEnabled();

/**
 * Fault schedule from the environment: empty when disabled, else a
 * whole-run delivery-drop episode (and, with PROACT_FAULT_DEGRADE, a
 * whole-run bandwidth-degradation episode), seeded by
 * PROACT_FAULT_SEED.
 */
FaultPlan envFaultPlan();

/**
 * Retry policy matching envFaultPlan(): enabled iff faults are, with
 * the PROACT_RETRY_MAX_ATTEMPTS budget applied.
 */
RetryPolicy envRetryPolicy();

/** Whether link health monitoring is enabled (PROACT_HEALTH). */
bool envHealthEnabled();

/** Whether fault-adaptive rerouting is enabled (PROACT_REROUTE). */
bool envRerouteEnabled();

/** Whether adaptive re-profiling is enabled (PROACT_REPROFILE). */
bool envReprofileEnabled();

/**
 * Route-selection knobs from the environment: library defaults with
 * PROACT_REROUTE_QUEUE_WEIGHT applied (queueing-theoretic congestion
 * split instead of the flat congestedPenalty discount).
 */
ReroutePolicy envReroutePolicy();

/**
 * Monitor thresholds from the environment: library defaults with the
 * PROACT_HEALTH_CONGEST_RATIO / PROACT_HEALTH_CLEAR_RATIO /
 * PROACT_HEALTH_HOLDOFF_US overrides applied (and the congestion
 * hysteresis gap re-established if the overrides inverted it).
 */
HealthPolicy envHealthPolicy();
/** @} */

/** @{ @name Device-loss tolerance knobs
 *
 * All default OFF so existing golden timings are untouched:
 *  - PROACT_CHECKPOINT=1              iteration-boundary checkpoints
 *  - PROACT_CHECKPOINT_INTERVAL       iterations between checkpoints
 *                                     (default 1, clamp [1, 1e6])
 *  - PROACT_CHECKPOINT_COST_US        simulated microseconds per
 *                                     checkpoint (default 50, clamp
 *                                     [0, 1e9])
 *  - PROACT_DEVICE_HEALTH=1           device heartbeat watchdog
 *  - PROACT_DEVICE_HEALTH_INTERVAL_US heartbeat period (default 5,
 *                                     clamp [1, 1e6])
 *  - PROACT_DEVICE_HEALTH_SUSPECT_MISSES consecutive missed beats
 *                                     before SUSPECT (default 1)
 *  - PROACT_DEVICE_HEALTH_LOST_MISSES consecutive missed beats before
 *                                     LOST (default 3)
 *  - PROACT_REPROFILE_CHARGE=1        charge the adaptive reprofiler's
 *                                     narrowed sweeps (and the fleet
 *                                     elector's cache-miss sweeps) to
 *                                     the simulated timeline
 */

/** Whether PROACT_CHECKPOINT enables checkpointing. */
bool envCheckpointEnabled();

/** Checkpoint policy from the environment (enabled iff
 * envCheckpointEnabled()). */
CheckpointPolicy envCheckpointPolicy();

/** Whether PROACT_DEVICE_HEALTH enables the device watchdog. */
bool envDeviceHealthEnabled();

/** Watchdog thresholds from the environment. */
DeviceHealthPolicy envDeviceHealthPolicy();

/** Whether PROACT_REPROFILE_CHARGE charges online sweeps. */
bool envReprofileChargeEnabled();
/** @} */

/** @{ @name Multi-node fabric knobs
 *
 * Benchmarks scale from one DGX-2 chassis to a hierarchical N-node
 * fabric without recompiling:
 *  - PROACT_NODES            chassis count for environment-built
 *                            platforms (default 1 = one DGX-2,
 *                            clamp [1, 64])
 *  - PROACT_INTER_BW_GBPS    per-GPU bidirectional network-tier
 *                            bandwidth in GB/s (default 12.5, clamp
 *                            [1, 400])
 *  - PROACT_INTER_LATENCY_US network-tier one-way latency in
 *                            microseconds (default 2.5; clamped up
 *                            to the intra-node latency so the
 *                            sharded engine's lookahead floor holds)
 */

/** Node count from PROACT_NODES. */
int envNodes();

/**
 * Environment-selected platform: one DGX-2 when PROACT_NODES is
 * unset or 1, otherwise multiNodePlatform(envNodes(), gpus_per_node)
 * with the PROACT_INTER_* network-tier overrides applied.
 */
PlatformSpec envMultiNodePlatform(int gpus_per_node = 16);
/** @} */

} // namespace proact

#endif // PROACT_PROACT_CONFIG_HH
