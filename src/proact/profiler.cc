#include "proact/profiler.hh"

#include "proact/runtime.hh"
#include "sim/logging.hh"
#include "sim/sharded_engine.hh"
#include "system/multi_gpu_system.hh"

#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace proact {

ProfileEntry
ProfileResult::bestDecoupled() const
{
    if (entries.empty())
        fatalError("ProfileResult: empty sweep");
    const ProfileEntry *best = &entries.front();
    for (const auto &e : entries) {
        if (e.ticks < best->ticks)
            best = &e;
    }
    return *best;
}

Profiler::Profiler(PlatformSpec platform)
    : Profiler(std::move(platform), Options{})
{
}

Profiler::Profiler(PlatformSpec platform, Options options)
    : _platform(std::move(platform)), _options(std::move(options))
{
}

Tick
Profiler::measure(Workload &workload, const TransferConfig &config)
{
    MultiGpuSystem system(_platform);
    system.setFunctional(false);

    ProactRuntime::Options opts;
    opts.config = config;
    opts.maxIterations = _options.profileIterations;

    // Fault-aware sweep: reproduce the (observed or scripted) fabric
    // conditions on the candidate's fresh system.
    if (!_options.faults.empty()) {
        system.installFaults(_options.faults);
        opts.config.retry = _options.retry;
        opts.config.retry.enabled = true;
    }
    if (_options.reroute)
        system.enableReroute();
    else if (_options.health)
        system.enableHealth();

    ProactRuntime runtime(system, opts);
    return runtime.run(workload);
}

ProfileResult
Profiler::profile(Workload &workload)
{
    if (workload.numGpus() != _platform.numGpus)
        fatalError("Profiler: workload set up for ",
                   workload.numGpus(), " GPUs, platform has ",
                   _platform.numGpus);

    ProfileResult result;
    Tick best_ticks = std::numeric_limits<Tick>::max();

    // Largest per-GPU partition determines the chunk-count guard.
    std::uint64_t max_partition = 0;
    {
        const Phase first = workload.phase(0);
        for (const auto &work : first.perGpu) {
            for (const auto &output : work.allOutputs())
                max_partition = std::max(max_partition,
                                         output.bytesProduced);
        }
    }

    // Enumerate the candidate space up front so serial and parallel
    // sweeps measure the identical list in the identical order.
    std::vector<TransferConfig> candidates;
    for (const auto mech : _options.mechanisms) {
        for (const auto chunk : _options.chunkSizes) {
            if (max_partition / chunk
                    > static_cast<std::uint64_t>(
                          _options.maxChunksPerGpu)) {
                continue;
            }
            for (const auto threads : _options.threadCounts) {
                TransferConfig config;
                config.mechanism = mech;
                config.chunkBytes = chunk;
                config.transferThreads = threads;
                candidates.push_back(config);
            }
        }
    }

    const int shards =
        _options.shards > 0 ? _options.shards : envSimShards();
    const std::size_t workers = std::min<std::size_t>(
        shards > 1 && _options.sweepFactory ? shards : 1,
        candidates.empty() ? 1 : candidates.size());

    std::vector<Tick> measured(candidates.size(), 0);
    if (workers <= 1) {
        for (std::size_t i = 0; i < candidates.size(); ++i)
            measured[i] = measure(workload, candidates[i]);
    } else {
        // Each worker measures on its own workload instance (fresh
        // system per candidate as always); ticks land in sweep order
        // so the fold below is bit-identical to the serial path.
        std::atomic<std::size_t> next{0};
        std::exception_ptr failure;
        std::mutex failure_mutex;
        auto sweep_worker = [&] {
            try {
                auto local = _options.sweepFactory(_platform.numGpus);
                if (!local)
                    fatalError("Profiler: sweep factory returned "
                               "null");
                for (;;) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= candidates.size())
                        break;
                    measured[i] = measure(*local, candidates[i]);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(failure_mutex);
                if (!failure)
                    failure = std::current_exception();
            }
        };
        std::vector<std::thread> pool;
        for (std::size_t w = 1; w < workers; ++w)
            pool.emplace_back(sweep_worker);
        sweep_worker();
        for (std::thread &t : pool)
            t.join();
        if (failure)
            std::rethrow_exception(failure);
    }

    for (std::size_t i = 0; i < candidates.size(); ++i) {
        result.entries.push_back({candidates[i], measured[i]});
        result.sweepTicks += measured[i];
        if (measured[i] < best_ticks) {
            best_ticks = measured[i];
            result.best = candidates[i];
        }
    }

    if (_options.includeInline) {
        TransferConfig config;
        config.mechanism = TransferMechanism::Inline;
        result.inlineTicks = measure(workload, config);
        result.sweepTicks += result.inlineTicks;
        if (result.inlineTicks < best_ticks) {
            best_ticks = result.inlineTicks;
            result.best = config;
        }
    }

    result.bestTicks = best_ticks;
    return result;
}

} // namespace proact
