#include "proact/profiler.hh"

#include "proact/runtime.hh"
#include "sim/logging.hh"
#include "system/multi_gpu_system.hh"

#include <limits>

namespace proact {

ProfileEntry
ProfileResult::bestDecoupled() const
{
    if (entries.empty())
        fatalError("ProfileResult: empty sweep");
    const ProfileEntry *best = &entries.front();
    for (const auto &e : entries) {
        if (e.ticks < best->ticks)
            best = &e;
    }
    return *best;
}

Profiler::Profiler(PlatformSpec platform)
    : Profiler(std::move(platform), Options{})
{
}

Profiler::Profiler(PlatformSpec platform, Options options)
    : _platform(std::move(platform)), _options(std::move(options))
{
}

Tick
Profiler::measure(Workload &workload, const TransferConfig &config)
{
    MultiGpuSystem system(_platform);
    system.setFunctional(false);

    ProactRuntime::Options opts;
    opts.config = config;
    opts.maxIterations = _options.profileIterations;

    // Fault-aware sweep: reproduce the (observed or scripted) fabric
    // conditions on the candidate's fresh system.
    if (!_options.faults.empty()) {
        system.installFaults(_options.faults);
        opts.config.retry = _options.retry;
        opts.config.retry.enabled = true;
    }
    if (_options.reroute)
        system.enableReroute();
    else if (_options.health)
        system.enableHealth();

    ProactRuntime runtime(system, opts);
    return runtime.run(workload);
}

ProfileResult
Profiler::profile(Workload &workload)
{
    if (workload.numGpus() != _platform.numGpus)
        fatalError("Profiler: workload set up for ",
                   workload.numGpus(), " GPUs, platform has ",
                   _platform.numGpus);

    ProfileResult result;
    Tick best_ticks = std::numeric_limits<Tick>::max();

    // Largest per-GPU partition determines the chunk-count guard.
    std::uint64_t max_partition = 0;
    {
        const Phase first = workload.phase(0);
        for (const auto &work : first.perGpu) {
            for (const auto &output : work.allOutputs())
                max_partition = std::max(max_partition,
                                         output.bytesProduced);
        }
    }

    for (const auto mech : _options.mechanisms) {
        for (const auto chunk : _options.chunkSizes) {
            if (max_partition / chunk
                    > static_cast<std::uint64_t>(
                          _options.maxChunksPerGpu)) {
                continue;
            }
            for (const auto threads : _options.threadCounts) {
                TransferConfig config;
                config.mechanism = mech;
                config.chunkBytes = chunk;
                config.transferThreads = threads;

                const Tick ticks = measure(workload, config);
                result.entries.push_back({config, ticks});
                if (ticks < best_ticks) {
                    best_ticks = ticks;
                    result.best = config;
                }
            }
        }
    }

    if (_options.includeInline) {
        TransferConfig config;
        config.mechanism = TransferMechanism::Inline;
        result.inlineTicks = measure(workload, config);
        if (result.inlineTicks < best_ticks) {
            best_ticks = result.inlineTicks;
            result.best = config;
        }
    }

    result.bestTicks = best_ticks;
    return result;
}

} // namespace proact
