/**
 * @file
 * The PROACT runtime: orchestration of instrumented kernels, region
 * tracking, and decoupled/inline transfers across iterations.
 *
 * One runtime instance executes a workload on a system under a fixed
 * TransferConfig (normally the profiler's pick). Per iteration it
 * mirrors proact_init() + the instrumented kernels of Listing 1:
 * build a RegionTracker per GPU, initialize readiness counters from
 * the CTA footprints, launch the instrumented producer kernels, let
 * agents push ready chunks while computation continues, and declare
 * the iteration done when every kernel retired and every chunk
 * arrived at every peer (the paper's sys-scope release flushes all
 * PROACT buffers at this boundary).
 */

#ifndef PROACT_PROACT_RUNTIME_HH
#define PROACT_PROACT_RUNTIME_HH

#include "proact/config.hh"
#include "proact/region.hh"
#include "proact/transfer_agent.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "system/multi_gpu_system.hh"
#include "workloads/workload.hh"

#include <memory>
#include <string>

namespace proact {

class AdaptiveReprofiler;

/** Executes workloads under PROACT (inline or decoupled). */
class ProactRuntime : public Runtime
{
  public:
    struct Options
    {
        TransferConfig config;

        /**
         * Keep tracking + initiation, skip the actual stores (used to
         * measure overhead and overlap, paper Figs. 8/9).
         */
        bool elideTransfers = false;

        /** Cap iterations (profiling runs use a short prefix). */
        int maxIterations = -1;

        /**
         * Fault-adaptive runtime: consulted at every iteration
         * boundary; when a link-state change is pending, the
         * reprofiler's narrowed sweep runs and the winning config is
         * hot-swapped in for the following iterations (stat
         * "config_swaps"). Not owned; may be nullptr. When the
         * reprofiler charges its sweeps (chargeTimeline), the sweep
         * cost advances this run's timeline too (stat
         * "reprofile.charged_ticks").
         */
        AdaptiveReprofiler *reprofiler = nullptr;

        /** Iteration-boundary checkpoints (see CheckpointPolicy). */
        CheckpointPolicy checkpoint;

        /**
         * First iteration to execute (a recovery restart resumes at
         * checkpointIteration + 1; fresh runs start at 0). Iterations
         * before it are considered already done — they neither run
         * nor checkpoint.
         */
        int firstIteration = 0;
    };

    ProactRuntime(MultiGpuSystem &system, Options options);

    Tick run(Workload &workload) override;

    std::string name() const override;

    const Options &options() const { return _options; }

    /** Accumulated run statistics (decrements, chunks, tail time). */
    const StatSet &stats() const { return _stats; }

    /**
     * Total time the fabric was still draining after the last
     * producer CTA retired, summed over iterations (the paper's
     * "tail transfers", Sec. V-A).
     */
    Tick tailTicks() const { return _tailTicks; }

    /**
     * @{ @name Device-loss outcome
     *
     * When the system's device watchdog declares a GPU LOST, the run
     * aborts at the next iteration boundary instead of panicking on
     * the (correctly) missing deliveries: completed iterations stay
     * completed, and the caller recovers from the latest checkpoint.
     */
    bool aborted() const { return _aborted; }

    /** GPU whose loss aborted the run (-1 = none). */
    int lostGpu() const { return _lostGpu; }

    /** Iterations fully completed (includes resumed-past ones). */
    int completedIterations() const { return _completedIterations; }

    /** Latest checkpointed iteration (-1 = no checkpoint taken). */
    int checkpointIteration() const { return _checkpointIteration; }

    /** Checkpoints written this run. */
    int checkpoints() const { return _checkpoints; }

    /** Simulated ticks spent writing checkpoints this run. */
    Tick checkpointTicks() const { return _checkpointTicks; }
    /** @} */

  private:
    MultiGpuSystem &_system;
    Options _options;
    StatSet _stats;
    Tick _tailTicks = 0;
    std::uint64_t _atomicFanout = 1;
    bool _aborted = false;
    int _lostGpu = -1;
    int _completedIterations = 0;
    int _checkpointIteration = -1;
    int _checkpoints = 0;
    Tick _checkpointTicks = 0;

    void runPhase(const Phase &phase, const TrafficProfile &traffic);
    void runPhaseSingleGpu(const Phase &phase);

    /** Charge @p cost to the simulated timeline and drain it. */
    void advanceTimeline(Tick cost);
};

} // namespace proact

#endif // PROACT_PROACT_RUNTIME_HH
