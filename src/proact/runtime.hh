/**
 * @file
 * The PROACT runtime: orchestration of instrumented kernels, region
 * tracking, and decoupled/inline transfers across iterations.
 *
 * One runtime instance executes a workload on a system under a fixed
 * TransferConfig (normally the profiler's pick). Per iteration it
 * mirrors proact_init() + the instrumented kernels of Listing 1:
 * build a RegionTracker per GPU, initialize readiness counters from
 * the CTA footprints, launch the instrumented producer kernels, let
 * agents push ready chunks while computation continues, and declare
 * the iteration done when every kernel retired and every chunk
 * arrived at every peer (the paper's sys-scope release flushes all
 * PROACT buffers at this boundary).
 */

#ifndef PROACT_PROACT_RUNTIME_HH
#define PROACT_PROACT_RUNTIME_HH

#include "proact/config.hh"
#include "proact/region.hh"
#include "proact/transfer_agent.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "system/multi_gpu_system.hh"
#include "workloads/workload.hh"

#include <memory>
#include <string>

namespace proact {

class AdaptiveReprofiler;

/** Executes workloads under PROACT (inline or decoupled). */
class ProactRuntime : public Runtime
{
  public:
    struct Options
    {
        TransferConfig config;

        /**
         * Keep tracking + initiation, skip the actual stores (used to
         * measure overhead and overlap, paper Figs. 8/9).
         */
        bool elideTransfers = false;

        /** Cap iterations (profiling runs use a short prefix). */
        int maxIterations = -1;

        /**
         * Fault-adaptive runtime: consulted at every iteration
         * boundary; when a link-state change is pending, the
         * reprofiler's narrowed sweep runs and the winning config is
         * hot-swapped in for the following iterations (stat
         * "config_swaps"). Not owned; may be nullptr.
         */
        AdaptiveReprofiler *reprofiler = nullptr;
    };

    ProactRuntime(MultiGpuSystem &system, Options options);

    Tick run(Workload &workload) override;

    std::string name() const override;

    const Options &options() const { return _options; }

    /** Accumulated run statistics (decrements, chunks, tail time). */
    const StatSet &stats() const { return _stats; }

    /**
     * Total time the fabric was still draining after the last
     * producer CTA retired, summed over iterations (the paper's
     * "tail transfers", Sec. V-A).
     */
    Tick tailTicks() const { return _tailTicks; }

  private:
    MultiGpuSystem &_system;
    Options _options;
    StatSet _stats;
    Tick _tailTicks = 0;
    std::uint64_t _atomicFanout = 1;

    void runPhase(const Phase &phase, const TrafficProfile &traffic);
    void runPhaseSingleGpu(const Phase &phase);
};

} // namespace proact

#endif // PROACT_PROACT_RUNTIME_HH
