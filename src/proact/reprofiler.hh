/**
 * @file
 * Online mechanism re-selection for the fault-adaptive runtime.
 *
 * The profiler's {mechanism, granularity, thread-count} pick is only
 * optimal for the platform it was measured on — and a fabric that
 * just lost a link is a different platform. The AdaptiveReprofiler
 * subscribes to LinkHealthMonitor state changes and, at the next
 * region (iteration) boundary, re-runs a *narrowed* profiler sweep
 * with the observed fault state reproduced on each candidate's fresh
 * system (Profiler::Options::faults = monitor.toFaultPlan()), then
 * hot-swaps the runtime's transfer config to the new winner. The
 * sweep is narrowed to a window around the current config (and, by
 * default, the current mechanism) so the online cost stays a small
 * fraction of a full compile-time sweep.
 *
 * Nested profiling runs execute on their own event queues while the
 * outer simulation is between events, so they cost zero simulated
 * time and preserve tick-for-tick determinism.
 */

#ifndef PROACT_PROACT_REPROFILER_HH
#define PROACT_PROACT_REPROFILER_HH

#include "proact/config.hh"
#include "proact/profiler.hh"
#include "sim/stats.hh"
#include "workloads/workload.hh"

#include <functional>
#include <memory>
#include <vector>

namespace proact {

class MultiGpuSystem;

/** Re-runs narrowed fault-aware sweeps on link-state changes. */
class AdaptiveReprofiler
{
  public:
    /** Builds a fresh workload instance for a profiling run. */
    using WorkloadFactory =
        std::function<std::unique_ptr<Workload>(int num_gpus)>;

    struct Options
    {
        /** Iterations per candidate in the online sweep. */
        int profileIterations = 1;

        /**
         * Explicit sweep axes; when empty, a window of this radius
         * around the current config's position in the paper sweeps is
         * used (index +- radius in chunkSizeSweep() /
         * threadCountSweep()).
         */
        std::vector<std::uint64_t> chunkSizes;
        std::vector<std::uint32_t> threadCounts;
        int chunkRadius = 2;
        int threadRadius = 2;

        /**
         * Mechanisms to re-consider; empty = keep the current
         * mechanism (cheapest) — the granularity/thread shift is
         * where most of the fault adaptation lives.
         */
        std::vector<TransferMechanism> mechanisms;

        /**
         * Charge each narrowed sweep's simulated cost (the sum of
         * its candidate measurements) to the live run's timeline:
         * after a refresh the runtime stalls for lastSweepCost()
         * ticks at the region boundary, exposing the
         * adaptation-latency trade-off instead of re-profiling for
         * free. Off by default (PROACT_REPROFILE_CHARGE enables it
         * via env wiring); off preserves historical timings.
         */
        bool chargeTimeline = false;
    };

    /**
     * Subscribe to @p system's health monitor (enableHealth must have
     * been called) and adapt from @p initial.
     */
    AdaptiveReprofiler(MultiGpuSystem &system, WorkloadFactory factory,
                       TransferConfig initial, Options options);

    /** Same, with default Options (overload: a nested class's member
     * initializers cannot appear in a default argument). */
    AdaptiveReprofiler(MultiGpuSystem &system, WorkloadFactory factory,
                       TransferConfig initial);

    AdaptiveReprofiler(const AdaptiveReprofiler &) = delete;
    AdaptiveReprofiler &operator=(const AdaptiveReprofiler &) = delete;

    /**
     * Narrowed sweep space centred on @p around: the window of
     * chunk sizes / thread counts (index +- radius in the paper
     * sweeps) and the mechanism set @p options describes, with
     * inline excluded. Shared machinery: the reprofiler adds the
     * observed fault state on top, and the fleet strategy elector
     * uses it as-is for cache-miss elections.
     */
    static Profiler::Options narrowedOptions(
        const TransferConfig &around, const Options &options);

    /**
     * Called by the runtime at a region boundary: when a link-state
     * change is pending, run the narrowed fault-aware sweep and adopt
     * the winner.
     *
     * @return true iff the active config changed (the caller should
     *         re-read current()).
     */
    bool refresh();

    /** The currently best-known config. */
    const TransferConfig &current() const { return _current; }

    /** Whether a link-state change awaits the next refresh(). */
    bool dirty() const { return _dirty; }

    /** Simulated cost of the most recent narrowed sweep. */
    Tick lastSweepCost() const { return _lastSweepCost; }

    /**
     * Sweep cost accrued since the last consume (non-zero only with
     * chargeTimeline). The runtime drains this at the region
     * boundary and advances its timeline by the returned amount.
     */
    Tick
    consumeChargeTicks()
    {
        const Tick charge = _pendingCharge;
        _pendingCharge = 0;
        return charge;
    }

    /**
     * Stats: reprofile.sweeps (narrowed sweeps run), reprofile.swaps
     * (sweeps that changed the config), reprofile.candidates
     * (configurations measured online), reprofile.sweep_ticks
     * (simulated cost of all sweeps, charged or not).
     */
    StatSet &stats() { return _stats; }
    const StatSet &stats() const { return _stats; }

  private:
    MultiGpuSystem &_system;
    WorkloadFactory _factory;
    TransferConfig _current;
    Options _options;
    StatSet _stats;
    bool _dirty = false;
    Tick _lastSweepCost = 0;
    Tick _pendingCharge = 0;

    Profiler::Options sweepOptions() const;
};

} // namespace proact

#endif // PROACT_PROACT_REPROFILER_HH
