#include "proact/reprofiler.hh"

#include "sim/logging.hh"
#include "system/multi_gpu_system.hh"

#include <algorithm>

namespace proact {

namespace {

/** Window of @p radius sweep entries around @p current's position. */
template <typename T>
std::vector<T>
windowAround(const std::vector<T> &sweep, T current, int radius)
{
    std::size_t pos = 0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        if (sweep[i] == current) {
            pos = i;
            break;
        }
        // No exact hit: settle on the nearest smaller entry.
        if (sweep[i] < current)
            pos = i;
    }
    const std::size_t lo =
        pos > static_cast<std::size_t>(radius) ? pos - radius : 0;
    const std::size_t hi =
        std::min(sweep.size() - 1, pos + radius);
    return {sweep.begin() + lo, sweep.begin() + hi + 1};
}

} // namespace

AdaptiveReprofiler::AdaptiveReprofiler(MultiGpuSystem &system,
                                       WorkloadFactory factory,
                                       TransferConfig initial,
                                       Options options)
    : _system(system), _factory(std::move(factory)),
      _current(initial), _options(std::move(options))
{
    if (!_factory)
        fatalError("AdaptiveReprofiler: null workload factory");
    LinkHealthMonitor *health = _system.health();
    if (health == nullptr)
        fatalError("AdaptiveReprofiler: system has no health monitor "
                   "(call enableHealth first)");
    health->addListener([this](int, int, LinkState from,
                               LinkState to) {
        // Only wire transitions change what a sweep would measure:
        // toFaultPlan() maps CONGESTED links to a clean fabric, so a
        // HEALTHY <-> CONGESTED flip would re-profile on an identical
        // plan — pure waste, and worse, congestion caused by our own
        // detour traffic would keep the profiler thrashing.
        if (isWireTransition(from, to))
            _dirty = true;
    });
}

AdaptiveReprofiler::AdaptiveReprofiler(MultiGpuSystem &system,
                                       WorkloadFactory factory,
                                       TransferConfig initial)
    : AdaptiveReprofiler(system, std::move(factory), initial,
                         Options{})
{
}

Profiler::Options
AdaptiveReprofiler::narrowedOptions(const TransferConfig &around,
                                    const Options &options)
{
    Profiler::Options opts;
    opts.profileIterations = options.profileIterations;
    opts.includeInline = false;

    opts.chunkSizes = options.chunkSizes.empty()
        ? windowAround(chunkSizeSweep(), around.chunkBytes,
                       options.chunkRadius)
        : options.chunkSizes;
    opts.threadCounts = options.threadCounts.empty()
        ? windowAround(threadCountSweep(), around.transferThreads,
                       options.threadRadius)
        : options.threadCounts;

    if (!options.mechanisms.empty()) {
        opts.mechanisms = options.mechanisms;
    } else if (around.decoupled()) {
        opts.mechanisms = {around.mechanism};
    }
    // (Inline current: keep the default mechanism candidates — the
    // adaptation point of an inline config is switching to decoupled.)
    return opts;
}

Profiler::Options
AdaptiveReprofiler::sweepOptions() const
{
    Profiler::Options opts = narrowedOptions(_current, _options);

    // Reproduce the fabric as observed right now on every candidate.
    opts.faults = _system.health()->toFaultPlan();
    opts.retry = _current.retry;
    opts.retry.enabled = true;
    opts.health = true;
    opts.reroute = _system.rerouter() != nullptr;

    // Narrowed sweeps ride the same PROACT_SIM_SHARDS worker pool as
    // full sweeps; candidates are independent fresh systems.
    opts.sweepFactory = _factory;
    return opts;
}

bool
AdaptiveReprofiler::refresh()
{
    if (!_dirty)
        return false;
    _dirty = false;

    _stats.inc("reprofile.sweeps");
    const Profiler::Options opts = sweepOptions();
    Profiler profiler(_system.platform(), opts);
    auto workload = _factory(_system.numGpus());
    if (!workload)
        fatalError("AdaptiveReprofiler: factory returned null");
    const ProfileResult result = profiler.profile(*workload);
    _stats.inc("reprofile.candidates",
               static_cast<double>(result.entries.size()));
    _lastSweepCost = result.sweepTicks;
    _stats.inc("reprofile.sweep_ticks",
               static_cast<double>(result.sweepTicks));
    if (_options.chargeTimeline)
        _pendingCharge += result.sweepTicks;

    TransferConfig next = result.best;
    next.retry = _current.retry; // Policy is the runtime's, not swept.

    const bool changed = next.mechanism != _current.mechanism
        || next.chunkBytes != _current.chunkBytes
        || next.transferThreads != _current.transferThreads;
    if (!changed)
        return false;

    _stats.inc("reprofile.swaps");
    _current = next;
    return true;
}

} // namespace proact
