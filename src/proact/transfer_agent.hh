/**
 * @file
 * Decoupled transfer agents (paper Sec. III-C).
 *
 * An agent receives chunk-ready events from the readiness counters
 * and pushes the chunk from its GPU's staging region to every peer.
 * Three implementations mirror the paper's design space:
 *
 *  - PollingAgent: persistent warp-specialized kernel scanning a
 *    readiness bitmap. No per-chunk initiation cost beyond the poll
 *    period, but its loops permanently occupy SM and memory-bandwidth
 *    resources while resident.
 *  - CdpAgent: a CUDA-Dynamic-Parallelism child kernel launched per
 *    ready chunk. Consumes resources only during transfers, but pays
 *    the (architecture-dependent) dynamic launch latency per chunk.
 *  - HardwareAgent: the paper's proposed hardware support (Sec.
 *    III-D): counters and transfer triggering in dedicated hardware,
 *    zero SM overhead and near-zero initiation.
 */

#ifndef PROACT_PROACT_TRANSFER_AGENT_HH
#define PROACT_PROACT_TRANSFER_AGENT_HH

#include "faults/retry.hh"
#include "proact/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "system/multi_gpu_system.hh"

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

namespace proact {

/** Common machinery for the decoupled agents. */
class TransferAgent
{
  public:
    /** Wiring between an agent, its GPU, and the PROACT runtime. */
    struct Context
    {
        MultiGpuSystem *system = nullptr;
        int gpuId = 0;
        TransferConfig config;

        /**
         * Analysis mode (paper Figs. 8/9): keep tracking and
         * initiation costs but skip the stores that move data.
         */
        bool elideTransfers = false;

        /** Fires once per (chunk, peer) delivery. */
        std::function<void(std::uint64_t bytes)> onDelivered;

        /** Shared statistics sink (may be null). */
        StatSet *stats = nullptr;

        /**
         * Event queue the agent lives on. Null means the system's
         * serial queue (the only queue of an unsharded system); a
         * sharded runtime binds each agent to its GPU's home shard
         * so chunk dispatch runs concurrently across GPUs.
         */
        EventQueue *queue = nullptr;
    };

    // Trace spans are serial-only machinery: a shard-bound agent runs
    // concurrently with its peers, so the sender skips them there.
    explicit TransferAgent(Context ctx)
        : _ctx(std::move(ctx)),
          _sender(_ctx.queue ? *_ctx.queue
                             : _ctx.system->eventQueue(),
                  _ctx.system->fabric(), _ctx.config.retry,
                  _ctx.stats,
                  _ctx.system->sharded() ? nullptr
                                         : _ctx.system->trace())
    {
    }

    virtual ~TransferAgent() = default;

    TransferAgent(const TransferAgent &) = delete;
    TransferAgent &operator=(const TransferAgent &) = delete;

    /** A chunk's readiness counter reached zero. */
    virtual void chunkReady(int chunk, std::uint64_t bytes) = 0;

    /**
     * sys-scope release semantics (paper Sec. III-C): dispatch every
     * ready-but-unsent chunk immediately, bypassing discovery delays
     * and launch windows. (Unready chunks have unwritten data and
     * thus nothing to flush.)
     */
    virtual void flush() {}

    /** Mechanism this agent implements. */
    virtual TransferMechanism mechanism() const = 0;

    const Context &context() const { return _ctx; }

    /** The agent's retrying sender (for fault-injection tests). */
    const RetryingSender &sender() const { return _sender; }

  protected:
    /**
     * Push one chunk to every peer starting no earlier than
     * @p not_before, using @p threads transfer threads (0 = engine).
     *
     * When the retry policy is enabled, each per-peer push is an
     * acknowledged delivery: lost chunks are re-pushed with backoff
     * and eventually fall back to the reliable bulk path.
     *
     * @return Tick of the last peer's first-attempt delivery (retries
     *         may land later; onDelivered fires exactly once each).
     */
    Tick pushToPeers(std::uint64_t bytes, Tick not_before,
                     std::uint32_t threads);

    void bumpStat(const std::string &name, double delta = 1.0);

    /** The agent's home queue (its GPU's shard when sharded). */
    EventQueue &
    queue() const
    {
        return _ctx.queue ? *_ctx.queue : _ctx.system->eventQueue();
    }

    Context _ctx;
    RetryingSender _sender;
};

/** Persistent polling kernel (warp-specialized transfer loop). */
class PollingAgent : public TransferAgent
{
  public:
    /**
     * Creating the agent launches the persistent kernel: its SM and
     * memory-bandwidth shares are reserved for the agent's lifetime.
     */
    explicit PollingAgent(Context ctx);
    ~PollingAgent() override;

    void chunkReady(int chunk, std::uint64_t bytes) override;

    /** Dispatch the pending bitmap immediately (no poll wait). */
    void flush() override { poll(); }

    TransferMechanism
    mechanism() const override
    {
        return TransferMechanism::Polling;
    }

    /** Resource shares this agent's loops occupy (for tests). */
    double computeShare() const { return _computeShare; }
    double memBwShare() const { return _memBwShare; }

    /**
     * Per-chunk dispatch work of the transfer loop (bitmap clear,
     * address generation, store-issue setup), serialized within one
     * agent. Makes very fine granularities initiation-bound (the
     * left region of the paper's Fig. 6 curves).
     */
    static constexpr Tick chunkSetupCost = 1 * ticksPerMicrosecond;

  private:
    double _computeShare = 0.0;
    double _memBwShare = 0.0;
    Tick _nextFree = 0;

    /** Chunks set in the bitmap, awaiting the next poll. */
    std::deque<std::uint64_t> _pendingBytes;
    bool _pollScheduled = false;

    void schedulePoll();
    void poll();
};

/** CUDA Dynamic Parallelism child-kernel agent. */
class CdpAgent : public TransferAgent
{
  public:
    explicit CdpAgent(Context ctx) : TransferAgent(std::move(ctx)) {}

    void chunkReady(int chunk, std::uint64_t bytes) override;

    /** Launch everything queued, ignoring the concurrency window. */
    void flush() override;

    TransferMechanism
    mechanism() const override
    {
        return TransferMechanism::Cdp;
    }

    /**
     * Device-runtime limit on concurrently executing child kernels;
     * additional ready chunks queue behind the window (mirrors the
     * CUDA pending-launch/ HW-queue limits).
     */
    static constexpr int maxConcurrentChildren = 32;

    int activeChildren() const { return _active; }

  private:
    std::deque<std::uint64_t> _pendingBytes;
    int _active = 0;
    Tick _launchEngineFree = 0;

    void tryLaunch();
    void dispatch(std::uint64_t bytes, bool windowed);
};

/** Proposed dedicated-hardware agent (paper Sec. III-D). */
class HardwareAgent : public TransferAgent
{
  public:
    explicit HardwareAgent(Context ctx) : TransferAgent(std::move(ctx))
    {}

    void chunkReady(int chunk, std::uint64_t bytes) override;

    TransferMechanism
    mechanism() const override
    {
        return TransferMechanism::Hardware;
    }

    /** Trigger-to-transfer latency of the hardware engine. */
    static constexpr Tick triggerLatency = 100 * ticksPerNanosecond;
};

/** Factory for the decoupled mechanisms (Inline has no agent). */
std::unique_ptr<TransferAgent>
makeAgent(TransferMechanism mechanism, TransferAgent::Context ctx);

} // namespace proact

#endif // PROACT_PROACT_TRANSFER_AGENT_HH
