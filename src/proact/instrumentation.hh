/**
 * @file
 * Compile-time-style kernel instrumentation (paper Listing 1).
 *
 * The paper's compiler pass emits two variants of every producer
 * kernel: an *inline* variant whose stores are replicated to every
 * peer GPU as they are issued, and a *decoupled* variant whose first
 * thread per CTA decrements the readiness counters of the chunks the
 * CTA wrote (triggering the transfer agent on the final decrement).
 * This module performs the same transformation on our kernel IR: it
 * takes the user's KernelDesc plus the CTA write footprints of every
 * PROACT-enabled region the kernel produces (Listing 1's region1,
 * region2, ...) and returns a KernelLaunch with the tracking or
 * store-replication hooks attached.
 */

#ifndef PROACT_PROACT_INSTRUMENTATION_HH
#define PROACT_PROACT_INSTRUMENTATION_HH

#include "proact/region.hh"
#include "proact/transfer_agent.hh"
#include "sim/types.hh"
#include "workloads/workload.hh"

#include <cstdint>
#include <functional>
#include <vector>

namespace proact {

/** Memory-fence + counter-index cost added to each tracked CTA. */
/**
 * Memory-fence + counter-index cost added to each tracked CTA: a
 * gpu-scope membar draining the SM's store path plus the bounds and
 * chunk-id arithmetic of Listing 1, holding the CTA's SM slot. On a
 * loaded GPU this is microseconds, and it is part of the paper's
 * Fig. 8 software-tracking slowdown.
 */
constexpr Tick trackingFenceCost = 2 * ticksPerMicrosecond;

/**
 * Fraction of a tracked CTA's memory traffic lost to fence-drain
 * bubbles in the SM's memory pipeline (paper Fig. 8: 10-15 % mean
 * software-tracking slowdown).
 */
constexpr double trackingHbmOverhead = 0.12;

/** One region's tracker paired with its CTA write footprints. */
struct TrackedRegion
{
    RegionTracker *tracker = nullptr;
    std::function<ByteRange(int cta)> ctaRange;
};

/**
 * Build the decoupled variant: per-CTA readiness decrements (one per
 * region the CTA wrote) routed through the GPU's L2 atomic unit,
 * chunk-ready events forwarded to @p agent. The Hardware mechanism
 * skips the software atomic path (counters update in dedicated
 * hardware, Sec. III-D).
 *
 * The caller must keep every tracker and @p agent alive until the
 * launch completes.
 *
 * @param atomic_fanout Atomic operations per logical decrement: under
 *        footprint scaling one modeled CTA stands for that many real
 *        CTAs, each of which issues its own counter decrement.
 * @param on_complete Fires when the kernel's last CTA retires.
 */
KernelLaunch
instrumentDecoupled(const KernelDesc &kernel,
                    std::vector<TrackedRegion> regions,
                    TransferAgent &agent, Gpu &gpu, StatSet *stats,
                    EventQueue::Callback on_complete,
                    std::uint64_t atomic_fanout = 1);

/** Single-region convenience (the common case). */
KernelLaunch
instrumentDecoupled(const GpuPhaseWork &work, RegionTracker &tracker,
                    TransferAgent &agent, Gpu &gpu, StatSet *stats,
                    EventQueue::Callback on_complete,
                    std::uint64_t atomic_fanout = 1);

/**
 * Build the inline variant: each CTA's writes to every region are
 * mirrored to every peer at the workload's effective store
 * granularity (Listing 1's user_kernel_inline). No tracking state is
 * needed.
 *
 * @param store_bytes Effective per-store wire granularity after SM
 *        write coalescing (TrafficProfile::inlineStoreBytes).
 * @param elide_transfers Analysis mode: count deliveries instantly
 *        without touching the fabric.
 * @param on_delivered Fires once per (CTA, region, peer) delivery.
 * @param sender Optional retrying sender (fault-tolerant runs): the
 *        inline store stream gains the same acknowledged-delivery
 *        semantics as the decoupled agents. Must outlive the launch.
 */
KernelLaunch
instrumentInline(const GpuPhaseWork &work, MultiGpuSystem &system,
                 int gpu_id, std::uint32_t store_bytes,
                 bool elide_transfers,
                 std::function<void(std::uint64_t)> on_delivered,
                 StatSet *stats, EventQueue::Callback on_complete,
                 RetryingSender *sender = nullptr);

} // namespace proact

#endif // PROACT_PROACT_INSTRUMENTATION_HH
