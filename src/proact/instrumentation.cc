#include "proact/instrumentation.hh"

#include "gpu/gpu.hh"
#include "sim/logging.hh"

#include <vector>

namespace proact {

KernelLaunch
instrumentDecoupled(const KernelDesc &kernel,
                    std::vector<TrackedRegion> regions,
                    TransferAgent &agent, Gpu &gpu, StatSet *stats,
                    EventQueue::Callback on_complete,
                    std::uint64_t atomic_fanout)
{
    if (regions.empty())
        fatalError("instrumentDecoupled: kernel '", kernel.name,
                   "' has no tracked regions");
    for (const auto &region : regions) {
        if (region.tracker == nullptr || !region.ctaRange)
            fatalError("instrumentDecoupled: kernel '", kernel.name,
                       "' has a region without tracker/footprints");
    }

    const bool hardware =
        agent.mechanism() == TransferMechanism::Hardware;

    KernelLaunch launch;
    launch.desc = kernel;
    // Software tracking routes each CTA's retirement through the L2
    // atomic unit and pays the fence cost; the proposed hardware
    // support updates counters transparently (Sec. III-D).
    launch.instrumented = !hardware;
    launch.extraCtaTicks = hardware ? 0 : trackingFenceCost;
    launch.hbmTrafficOverhead = hardware ? 0.0 : trackingHbmOverhead;
    launch.onComplete = std::move(on_complete);

    launch.onCtaComplete = [regions = std::move(regions), &agent,
                            &gpu, stats, hardware,
                            atomic_fanout](int cta) {
        std::vector<int> ready;
        std::uint64_t decrements = 0;
        for (const auto &region : regions) {
            ready.clear();
            decrements += static_cast<std::uint64_t>(
                region.tracker->ctaArrived(region.ctaRange(cta),
                                           ready));
            for (int chunk : ready) {
                agent.chunkReady(chunk,
                                 region.tracker->chunkSize(chunk));
            }
        }
        if (stats) {
            stats->inc("counter_decrements",
                       static_cast<double>(decrements)
                           * static_cast<double>(atomic_fanout));
        }
        if (!hardware) {
            // The first decrement's latency is already modeled by
            // the instrumented CTA retirement; the remaining real
            // CTAs this modeled CTA stands for, and chunks beyond
            // the first, add atomic traffic that occupies (but does
            // not block on) the atomic unit.
            const std::uint64_t total_ops = decrements * atomic_fanout;
            if (total_ops > 1)
                gpu.atomicUnit().submit(total_ops - 1, total_ops - 1);
        }
    };
    return launch;
}

KernelLaunch
instrumentDecoupled(const GpuPhaseWork &work, RegionTracker &tracker,
                    TransferAgent &agent, Gpu &gpu, StatSet *stats,
                    EventQueue::Callback on_complete,
                    std::uint64_t atomic_fanout)
{
    if (!work.ctaRange)
        fatalError("instrumentDecoupled: kernel '", work.kernel.name,
                   "' lacks CTA write footprints");
    std::vector<TrackedRegion> regions{
        TrackedRegion{&tracker, work.ctaRange}};
    return instrumentDecoupled(work.kernel, std::move(regions), agent,
                               gpu, stats, std::move(on_complete),
                               atomic_fanout);
}

KernelLaunch
instrumentInline(const GpuPhaseWork &work, MultiGpuSystem &system,
                 int gpu_id, std::uint32_t store_bytes,
                 bool elide_transfers,
                 std::function<void(std::uint64_t)> on_delivered,
                 StatSet *stats, EventQueue::Callback on_complete,
                 RetryingSender *sender)
{
    const auto outputs = work.allOutputs();
    if (outputs.empty())
        fatalError("instrumentInline: kernel '", work.kernel.name,
                   "' produces no regions");
    for (const auto &output : outputs) {
        if (!output.ctaRange)
            fatalError("instrumentInline: kernel '",
                       work.kernel.name,
                       "' lacks CTA write footprints");
    }
    if (store_bytes == 0)
        fatalError("instrumentInline: zero store granularity");

    KernelLaunch launch;
    launch.desc = work.kernel;
    launch.instrumented = false;
    launch.onComplete = std::move(on_complete);

    launch.onCtaComplete = [&system, gpu_id, store_bytes,
                            elide_transfers, on_delivered, stats,
                            outputs, sender](int cta) {
        // CTA retirements fire on the producing GPU's queue (its home
        // shard when the engine is sharded); elided deliveries must
        // stay on that queue rather than the serial one.
        auto &eq = system.queueFor(gpu_id);
        std::uint64_t total_bytes = 0;

        for (const auto &output : outputs) {
            const std::uint64_t bytes = output.ctaRange(cta).size();
            total_bytes += bytes;

            for (int peer = 0; peer < system.numGpus(); ++peer) {
                if (peer == gpu_id)
                    continue;

                auto deliver = [on_delivered, bytes] {
                    if (on_delivered)
                        on_delivered(bytes);
                };

                if (elide_transfers || bytes == 0) {
                    eq.schedule(eq.curTick(), std::move(deliver));
                    continue;
                }

                Interconnect::Request req;
                req.src = gpu_id;
                req.dst = peer;
                req.bytes = bytes;
                req.writeGranularity = store_bytes;
                req.threads = 0; // Every producer thread stores.
                req.onComplete = std::move(deliver);
                if (sender)
                    sender->send(std::move(req));
                else
                    system.fabric().transfer(req);
            }
        }
        if (stats) {
            stats->inc("inline_store_bytes",
                       static_cast<double>(total_bytes)
                           * (system.numGpus() - 1));
        }
    };
    return launch;
}

} // namespace proact
