#include "proact/transfer_agent.hh"

#include "gpu/gpu.hh"
#include "interconnect/rerouter.hh"
#include "sim/logging.hh"

#include <algorithm>

namespace proact {

void
TransferAgent::bumpStat(const std::string &name, double delta)
{
    if (_ctx.stats)
        _ctx.stats->inc(name, delta);
}

Tick
TransferAgent::pushToPeers(std::uint64_t bytes, Tick not_before,
                           std::uint32_t threads)
{
    auto &system = *_ctx.system;
    auto &eq = queue();
    const Tick start = std::max(eq.curTick(), not_before);
    Tick last = start;

    for (int peer = 0; peer < system.numGpus(); ++peer) {
        if (peer == _ctx.gpuId)
            continue;

        auto deliver = [this, bytes] {
            if (_ctx.onDelivered)
                _ctx.onDelivered(bytes);
        };

        if (_ctx.elideTransfers) {
            eq.schedule(start, std::move(deliver));
            last = std::max(last, start);
            continue;
        }

        Interconnect::Request req;
        req.src = _ctx.gpuId;
        req.dst = peer;
        req.bytes = bytes;
        req.writeGranularity =
            system.fabric().packetModel().maxPayloadBytes;
        req.threads = threads;
        req.notBefore = start;
        req.onComplete = std::move(deliver);

        // With the fault-adaptive runtime on, the rerouter may detour
        // this push around a DOWN link or split it across a DEGRADED
        // one; every leg still flows through the retrying sender and
        // onDelivered fires exactly once, at the last leg's landing.
        // The sender also holds the rerouter so a loss streak can
        // re-plan mid-retry (refreshed here because enableReroute()
        // may run after agent construction).
        _sender.setRerouter(system.rerouter());
        if (Rerouter *rr = system.rerouter()) {
            last = std::max(
                last, rr->send(
                          [this](const Interconnect::Request &leg) {
                              return _sender.send(leg);
                          },
                          std::move(req)));
        } else {
            last = std::max(last, _sender.send(std::move(req)));
        }
    }

    bumpStat("chunks_pushed");
    bumpStat("bytes_pushed",
             static_cast<double>(bytes) * (system.numGpus() - 1));
    return last;
}

PollingAgent::PollingAgent(Context ctx)
    : TransferAgent(std::move(ctx))
{
    auto &system = *_ctx.system;
    auto &gpu = system.gpu(_ctx.gpuId);
    const GpuSpec &spec = gpu.spec();

    // The persistent kernel's poll loops occupy SM lanes (scaling
    // with the transfer thread count) and burn memory bandwidth
    // scanning the readiness bitmap — a cost of the scan loop itself,
    // independent of how many threads will move data (paper Fig. 4:
    // extra threads beyond saturation neither help nor hurt).
    _computeShare = std::min(
        0.5, _ctx.config.transferThreads / spec.maxResidentThreads());
    _memBwShare = spec.pollMemBwShare;

    gpu.reserveCompute(_computeShare);
    gpu.reserveMemBw(_memBwShare);
}

PollingAgent::~PollingAgent()
{
    auto &gpu = _ctx.system->gpu(_ctx.gpuId);
    gpu.releaseCompute(_computeShare);
    gpu.releaseMemBw(_memBwShare);
}

void
PollingAgent::chunkReady(int /*chunk*/, std::uint64_t bytes)
{
    // The producer sets the chunk's bitmap bit; the polling kernel
    // discovers it on its next bitmap scan.
    _pendingBytes.push_back(bytes);
    bumpStat("bitmap_sets");
    schedulePoll();
}

void
PollingAgent::schedulePoll()
{
    if (_pollScheduled)
        return;
    _pollScheduled = true;

    auto &eq = queue();
    const Tick interval =
        _ctx.system->gpu(_ctx.gpuId).spec().pollInterval;
    // Discovery happens at the poll loop's next pass over the bitmap.
    const Tick next = (eq.curTick() / interval + 1) * interval;
    eq.schedule(next, [this] { poll(); });
}

void
PollingAgent::poll()
{
    _pollScheduled = false;
    bumpStat("polls");
    while (!_pendingBytes.empty()) {
        const std::uint64_t bytes = _pendingBytes.front();
        _pendingBytes.pop_front();
        const Tick start =
            std::max(queue().curTick(), _nextFree) + chunkSetupCost;
        _nextFree = start;
        pushToPeers(bytes, start, _ctx.config.transferThreads);
    }
}

void
CdpAgent::chunkReady(int /*chunk*/, std::uint64_t bytes)
{
    _pendingBytes.push_back(bytes);
    tryLaunch();
}

void
CdpAgent::flush()
{
    // The release stalls the producer until everything queued has
    // been launched, so the steady-state window does not apply.
    while (!_pendingBytes.empty()) {
        const std::uint64_t bytes = _pendingBytes.front();
        _pendingBytes.pop_front();
        dispatch(bytes, /*windowed=*/false);
    }
}

void
CdpAgent::tryLaunch()
{
    if (_active >= maxConcurrentChildren || _pendingBytes.empty())
        return;

    const std::uint64_t bytes = _pendingBytes.front();
    _pendingBytes.pop_front();
    ++_active;
    dispatch(bytes, /*windowed=*/true);
}

void
CdpAgent::dispatch(std::uint64_t bytes, bool windowed)
{
    auto &system = *_ctx.system;
    auto &eq = queue();
    auto &gpu = system.gpu(_ctx.gpuId);
    const GpuSpec &spec = gpu.spec();

    bumpStat("cdp_launches");

    // Dynamic launches serialize through the device runtime's launch
    // engine (one every cdpLaunchLatency), and the child kernel
    // occupies its transfer threads' SM share for the duration of
    // the copy.
    const Tick start =
        std::max(eq.curTick(), _launchEngineFree)
        + spec.cdpLaunchLatency;
    _launchEngineFree = start;
    const double share = std::min(
        0.5, _ctx.config.transferThreads / spec.maxResidentThreads());

    eq.schedule(start, [&gpu, share] { gpu.reserveCompute(share); });
    const Tick done =
        pushToPeers(bytes, start, _ctx.config.transferThreads);
    eq.schedule(done, [this, &gpu, share, windowed] {
        gpu.releaseCompute(share);
        if (windowed) {
            --_active;
            tryLaunch();
        }
    });
}

void
HardwareAgent::chunkReady(int /*chunk*/, std::uint64_t bytes)
{
    bumpStat("hw_triggers");
    // Dedicated engine: descriptor prepared in advance, trigger fires
    // without SM or driver involvement.
    pushToPeers(bytes, queue().curTick() + triggerLatency, 0);
}

std::unique_ptr<TransferAgent>
makeAgent(TransferMechanism mechanism, TransferAgent::Context ctx)
{
    switch (mechanism) {
      case TransferMechanism::Polling:
        return std::make_unique<PollingAgent>(std::move(ctx));
      case TransferMechanism::Cdp:
        return std::make_unique<CdpAgent>(std::move(ctx));
      case TransferMechanism::Hardware:
        return std::make_unique<HardwareAgent>(std::move(ctx));
      case TransferMechanism::Inline:
        fatalError("makeAgent: inline transfers have no agent");
    }
    fatalError("makeAgent: unknown mechanism");
}

} // namespace proact
