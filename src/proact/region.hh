/**
 * @file
 * PROACT-enabled region tracking (paper Sec. III-B, Fig. 5).
 *
 * A RegionTracker covers one GPU's partition of a PROACT-enabled
 * region for one iteration: it chops the partition into transfer
 * chunks of the profiler-chosen granularity, derives per-chunk writer
 * counts from the kernel's CTA write footprints (the compiler's job
 * in the paper), and turns CTA arrivals into chunk-ready events.
 *
 * The mappings namespace provides the utility block-to-address
 * mappings Listing 1 mentions (one-to-one/contiguous, strided,
 * stencil) plus support for user-defined mappings via arbitrary
 * footprint functions.
 */

#ifndef PROACT_PROACT_REGION_HH
#define PROACT_PROACT_REGION_HH

#include "proact/counters.hh"
#include "workloads/workload.hh"

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace proact {

/** Chunked readiness tracking of one GPU's region partition. */
class RegionTracker
{
  public:
    /**
     * @param partition_bytes Bytes this GPU produces.
     * @param chunk_bytes Transfer granularity (last chunk may be
     *        short). Clamped to partition_bytes.
     */
    RegionTracker(std::uint64_t partition_bytes,
                  std::uint64_t chunk_bytes);

    std::uint64_t partitionBytes() const { return _partitionBytes; }
    std::uint64_t chunkBytes() const { return _chunkBytes; }
    int numChunks() const { return _counters.numChunks(); }

    /** Payload size of chunk @p chunk (short tail allowed). */
    std::uint64_t chunkSize(int chunk) const;

    /** Inclusive chunk index span touched by @p range. */
    std::pair<int, int> chunkSpan(const ByteRange &range) const;

    /**
     * Register every CTA's write footprint (the compile-time counter
     * initialization of proact_init() in Listing 1).
     */
    void initCounters(int num_ctas,
                      const std::function<ByteRange(int)> &cta_range);

    /**
     * Record a CTA's arrival: decrements the counter of every chunk
     * its range touches.
     *
     * @param range The CTA's write footprint.
     * @param ready_out Receives indices of chunks that became ready.
     * @return Number of atomic decrements performed.
     */
    int ctaArrived(const ByteRange &range, std::vector<int> &ready_out);

    const CounterArray &counters() const { return _counters; }

    bool allReady() const { return _counters.allReady(); }

    /** Atomic decrements one full iteration will issue. */
    std::uint64_t decrementsPerIteration() const
    {
        return _counters.totalExpected();
    }

    /** Reset counters for the next iteration. */
    void rearm() { _counters.rearm(); }

  private:
    std::uint64_t _partitionBytes;
    std::uint64_t _chunkBytes;
    CounterArray _counters;
};

namespace mappings {

/** One-to-one: CTA i writes the i-th equal slice of the partition. */
std::function<ByteRange(int)>
contiguous(std::uint64_t partition_bytes, int num_ctas);

/**
 * Strided: each CTA's writes interleave across the whole partition,
 * so every CTA's footprint spans the full partition and chunks become
 * ready only as the kernel drains (the worst case for overlap).
 */
std::function<ByteRange(int)>
strided(std::uint64_t partition_bytes, int num_ctas);

/**
 * Stencil: like contiguous but each CTA also writes @p halo_bytes
 * into both neighbouring slices (ranges overlap chunk boundaries).
 */
std::function<ByteRange(int)>
stencil(std::uint64_t partition_bytes, int num_ctas,
        std::uint64_t halo_bytes);

} // namespace mappings

} // namespace proact

#endif // PROACT_PROACT_REGION_HH
