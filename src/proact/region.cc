#include "proact/region.hh"

#include "sim/logging.hh"

#include <algorithm>

namespace proact {

namespace {

int
chunkCount(std::uint64_t partition_bytes, std::uint64_t chunk_bytes)
{
    if (partition_bytes == 0)
        return 1;
    return static_cast<int>((partition_bytes + chunk_bytes - 1)
                            / chunk_bytes);
}

} // namespace

RegionTracker::RegionTracker(std::uint64_t partition_bytes,
                             std::uint64_t chunk_bytes)
    : _partitionBytes(partition_bytes),
      _chunkBytes(std::max<std::uint64_t>(
          1, std::min(chunk_bytes,
                      std::max<std::uint64_t>(1, partition_bytes)))),
      _counters(chunkCount(partition_bytes, _chunkBytes))
{
    if (chunk_bytes == 0)
        fatalError("RegionTracker: zero chunk size");
}

std::uint64_t
RegionTracker::chunkSize(int chunk) const
{
    if (chunk < 0 || chunk >= numChunks())
        panicError("RegionTracker: chunk ", chunk, " out of ",
                   numChunks());
    const std::uint64_t lo = static_cast<std::uint64_t>(chunk)
        * _chunkBytes;
    return std::min(_chunkBytes, _partitionBytes - lo);
}

std::pair<int, int>
RegionTracker::chunkSpan(const ByteRange &range) const
{
    if (range.empty())
        return {0, -1};
    if (range.hi > _partitionBytes)
        panicError("RegionTracker: range [", range.lo, ", ", range.hi,
                   ") exceeds partition of ", _partitionBytes);
    const int first = static_cast<int>(range.lo / _chunkBytes);
    const int last = static_cast<int>((range.hi - 1) / _chunkBytes);
    return {first, last};
}

void
RegionTracker::initCounters(
    int num_ctas, const std::function<ByteRange(int)> &cta_range)
{
    for (int cta = 0; cta < num_ctas; ++cta) {
        const auto [first, last] = chunkSpan(cta_range(cta));
        for (int c = first; c <= last; ++c)
            _counters.expectWriter(c);
    }
}

int
RegionTracker::ctaArrived(const ByteRange &range,
                          std::vector<int> &ready_out)
{
    const auto [first, last] = chunkSpan(range);
    int decrements = 0;
    for (int c = first; c <= last; ++c) {
        ++decrements;
        if (_counters.decrement(c))
            ready_out.push_back(c);
    }
    return decrements;
}

namespace mappings {

std::function<ByteRange(int)>
contiguous(std::uint64_t partition_bytes, int num_ctas)
{
    if (num_ctas <= 0)
        fatalError("mappings::contiguous: need at least one CTA");
    return [partition_bytes, num_ctas](int cta) {
        const std::uint64_t n = static_cast<std::uint64_t>(num_ctas);
        const std::uint64_t lo =
            partition_bytes * static_cast<std::uint64_t>(cta) / n;
        const std::uint64_t hi =
            partition_bytes * (static_cast<std::uint64_t>(cta) + 1) / n;
        return ByteRange{lo, hi};
    };
}

std::function<ByteRange(int)>
strided(std::uint64_t partition_bytes, int num_ctas)
{
    if (num_ctas <= 0)
        fatalError("mappings::strided: need at least one CTA");
    return [partition_bytes](int) {
        return ByteRange{0, partition_bytes};
    };
}

std::function<ByteRange(int)>
stencil(std::uint64_t partition_bytes, int num_ctas,
        std::uint64_t halo_bytes)
{
    if (num_ctas <= 0)
        fatalError("mappings::stencil: need at least one CTA");
    auto base = contiguous(partition_bytes, num_ctas);
    return [base, partition_bytes, halo_bytes](int cta) {
        ByteRange r = base(cta);
        r.lo = r.lo >= halo_bytes ? r.lo - halo_bytes : 0;
        r.hi = std::min(partition_bytes, r.hi + halo_bytes);
        return r;
    };
}

} // namespace mappings

} // namespace proact
