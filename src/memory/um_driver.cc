#include "memory/um_driver.hh"

#include "sim/logging.hh"

#include <algorithm>
#include <cmath>

namespace proact {

namespace {

/** Pages the driver speculatively pulls behind one sequential fault. */
constexpr std::uint64_t seqPrefetchWindow = 8;

/** Fraction of sequential-fault latency hidden by prefetch-ahead. */
constexpr double seqFaultOverlap = 0.5;

/** Host-side cost of one cudaMemPrefetchAsync call. */
constexpr Tick prefetchCallCost = 10 * ticksPerMicrosecond;

} // namespace

UmDriver::UmDriver(MultiGpuSystem &system, std::uint64_t region_bytes)
    : _system(system)
{
    _pages = std::make_unique<PageTable>(
        system.numGpus(), region_bytes,
        system.platform().gpu.umPageBytes);
}

bool
UmDriver::hardwareFaulting() const
{
    return _system.platform().gpu.umPageFaulting;
}

void
UmDriver::producerWrote(int gpu, std::uint64_t offset,
                        std::uint64_t bytes)
{
    _pages->writeRangeBy(gpu, offset, bytes);
    stats.inc("producer_write_ranges");
}

void
UmDriver::markResident(int gpu, std::uint64_t offset,
                       std::uint64_t bytes, bool replicate)
{
    if (bytes == 0)
        return;
    const std::uint64_t first = _pages->pageOf(offset);
    const std::uint64_t last = _pages->pageOf(offset + bytes - 1);
    for (std::uint64_t p = first; p <= last; ++p) {
        if (replicate)
            _pages->replicate(gpu, p);
        else
            _pages->migrate(gpu, p);
    }
}

Tick
UmDriver::access(int gpu, int owner, std::uint64_t offset,
                 std::uint64_t bytes, bool sequential,
                 const UmHints &hints, Tick not_before,
                 EventQueue::Callback on_complete)
{
    if (!hardwareFaulting())
        return legacyMigrate(gpu, owner, bytes, not_before,
                             std::move(on_complete));

    auto &eq = _system.eventQueue();
    const std::uint64_t missing =
        _pages->missingPages(gpu, offset, bytes);

    if (missing == 0 || gpu == owner) {
        const Tick when = std::max(eq.curTick(), not_before);
        if (on_complete)
            eq.schedule(when, on_complete);
        return when;
    }

    markResident(gpu, offset, bytes, hints.readDuplicate);

    if (hints.prefetch) {
        return prefetchPath(gpu, owner, missing, sequential,
                            not_before, std::move(on_complete));
    }
    return faultPath(gpu, owner, missing, sequential,
                     hints.readDuplicate, not_before,
                     std::move(on_complete));
}

Tick
UmDriver::faultPath(int gpu, int owner, std::uint64_t missing_pages,
                    bool sequential, bool /*replicate*/,
                    Tick not_before,
                    EventQueue::Callback on_complete)
{
    const GpuSpec &spec = _system.platform().gpu;
    auto &eq = _system.eventQueue();

    // Sequential streams let the driver prefetch a window of pages
    // behind every fault; sporadic access faults on every page.
    const std::uint64_t faults = sequential
        ? (missing_pages + seqPrefetchWindow - 1) / seqPrefetchWindow
        : missing_pages;
    // Sequential streams batch fault service across the driver's
    // queues; sporadic faults arrive dependently and mostly
    // serialize (the fault storms behind the paper's PageRank UM
    // collapse).
    const std::uint64_t seq_conc = spec.umFaultConcurrency;
    const std::uint64_t sporadic_conc = 1;
    const std::uint64_t conc = sequential ? seq_conc : sporadic_conc;
    const std::uint64_t rounds = (faults + conc - 1) / conc;
    Tick fault_latency = rounds * spec.umFaultLatency;
    if (sequential) {
        fault_latency = static_cast<Tick>(
            static_cast<double>(fault_latency)
            * (1.0 - seqFaultOverlap));
    }

    stats.inc("faults", static_cast<double>(faults));
    stats.inc("migrated_pages", static_cast<double>(missing_pages));

    Interconnect::Request req;
    req.src = owner;
    req.dst = gpu;
    req.bytes = missing_pages * spec.umPageBytes;
    req.writeGranularity =
        _system.fabric().packetModel().maxPayloadBytes;
    req.threads = 0;
    req.notBefore = not_before;
    // Page migration is driver-retried until it lands: reliable path.
    req.reliable = true;
    const Tick wire_done = _system.fabric().transfer(req);

    // Exposed fault-service latency extends past the wire time.
    const Tick done = wire_done + fault_latency;
    if (on_complete)
        eq.schedule(done, std::move(on_complete));
    return done;
}

Tick
UmDriver::prefetchPath(int gpu, int owner,
                       std::uint64_t missing_pages, bool /*sequential*/,
                       Tick not_before,
                       EventQueue::Callback on_complete)
{
    const GpuSpec &spec = _system.platform().gpu;

    stats.inc("prefetch_calls");
    stats.inc("prefetched_bytes",
              static_cast<double>(missing_pages * spec.umPageBytes));

    Interconnect::Request req;
    req.src = owner;
    req.dst = gpu;
    req.bytes = missing_pages * spec.umPageBytes;
    req.writeGranularity =
        _system.fabric().packetModel().maxPayloadBytes;
    req.threads = 0;
    req.notBefore =
        std::max(_system.now(), not_before) + prefetchCallCost;
    req.onComplete = std::move(on_complete);
    req.reliable = true;
    return _system.fabric().transfer(req);
}

Tick
UmDriver::legacyMigrate(int gpu, int owner, std::uint64_t bytes,
                        Tick not_before,
                        EventQueue::Callback on_complete)
{
    // Pre-Pascal UM: the region bounces through host memory around
    // each kernel launch. We book the device->device leg on the
    // fabric and add the host leg as additional serial time on the
    // tree core (PCIe systems always have one).
    auto &eq = _system.eventQueue();
    const FabricSpec &fab = _system.platform().fabric;
    // The host leg runs at one PCIe direction's rate, not the
    // aggregate tree capacity.
    const double host_rate = fab.egressRate();

    stats.inc("legacy_migrations");
    stats.inc("legacy_bytes", static_cast<double>(bytes));

    Interconnect::Request req;
    req.src = owner;
    req.dst = gpu;
    req.bytes = bytes;
    req.writeGranularity =
        _system.fabric().packetModel().maxPayloadBytes;
    req.threads = 0;
    req.notBefore = not_before;
    req.reliable = true;
    const Tick wire_done = _system.fabric().transfer(req);

    const Tick done = wire_done + transferTicks(bytes, host_rate);
    if (on_complete)
        eq.schedule(done, std::move(on_complete));
    return done;
}

} // namespace proact
