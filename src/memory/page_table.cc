#include "memory/page_table.hh"

#include "sim/logging.hh"

namespace proact {

PageTable::PageTable(int num_gpus, std::uint64_t region_bytes,
                     std::uint32_t page_bytes)
    : _numGpus(num_gpus), _pageBytes(page_bytes)
{
    if (num_gpus < 1)
        fatalError("PageTable: need at least one GPU");
    if (page_bytes == 0)
        fatalError("PageTable: zero page size");
    _numPages = (region_bytes + page_bytes - 1) / page_bytes;
    _resident.assign(num_gpus,
                     std::vector<bool>(_numPages, false));
}

void
PageTable::checkPage(std::uint64_t page) const
{
    if (page >= _numPages)
        panicError("PageTable: page ", page, " out of ", _numPages);
}

void
PageTable::checkGpu(int gpu) const
{
    if (gpu < 0 || gpu >= _numGpus)
        panicError("PageTable: bad GPU id ", gpu);
}

std::uint64_t
PageTable::pageOf(std::uint64_t offset) const
{
    return offset / _pageBytes;
}

bool
PageTable::isResident(int gpu, std::uint64_t page) const
{
    checkGpu(gpu);
    checkPage(page);
    return _resident[gpu][page];
}

void
PageTable::replicate(int gpu, std::uint64_t page)
{
    checkGpu(gpu);
    checkPage(page);
    _resident[gpu][page] = true;
}

void
PageTable::migrate(int gpu, std::uint64_t page)
{
    checkGpu(gpu);
    checkPage(page);
    for (int g = 0; g < _numGpus; ++g)
        _resident[g][page] = (g == gpu);
}

void
PageTable::writeBy(int gpu, std::uint64_t page)
{
    // Writes invalidate all peer replicas (single-writer protocol).
    migrate(gpu, page);
}

void
PageTable::writeRangeBy(int gpu, std::uint64_t offset,
                        std::uint64_t bytes)
{
    if (bytes == 0)
        return;
    const std::uint64_t first = pageOf(offset);
    const std::uint64_t last = pageOf(offset + bytes - 1);
    for (std::uint64_t p = first; p <= last; ++p)
        writeBy(gpu, p);
}

std::uint64_t
PageTable::missingPages(int gpu, std::uint64_t offset,
                        std::uint64_t bytes) const
{
    checkGpu(gpu);
    if (bytes == 0)
        return 0;
    const std::uint64_t first = pageOf(offset);
    const std::uint64_t last = pageOf(offset + bytes - 1);
    std::uint64_t missing = 0;
    for (std::uint64_t p = first; p <= last; ++p) {
        checkPage(p);
        if (!_resident[gpu][p])
            ++missing;
    }
    return missing;
}

int
PageTable::replicaCount(std::uint64_t page) const
{
    checkPage(page);
    int count = 0;
    for (int g = 0; g < _numGpus; ++g)
        count += _resident[g][page] ? 1 : 0;
    return count;
}

} // namespace proact
