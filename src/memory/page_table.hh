/**
 * @file
 * Page residency tracking for the Unified Memory model.
 *
 * A PageTable covers one managed region and records, per page, which
 * GPUs hold a valid copy. Producer writes invalidate peer replicas;
 * consumer accesses replicate (read-duplication) or migrate pages.
 * The UM driver uses residency counts to decide how many pages an
 * access must fault in or prefetch.
 */

#ifndef PROACT_MEMORY_PAGE_TABLE_HH
#define PROACT_MEMORY_PAGE_TABLE_HH

#include <cstdint>
#include <vector>

namespace proact {

/** Residency bitmap of one managed region across GPUs. */
class PageTable
{
  public:
    /**
     * @param num_gpus GPUs in the system.
     * @param region_bytes Size of the managed region.
     * @param page_bytes UM page granularity (e.g. 64 KiB).
     */
    PageTable(int num_gpus, std::uint64_t region_bytes,
              std::uint32_t page_bytes);

    std::uint64_t numPages() const { return _numPages; }
    std::uint32_t pageBytes() const { return _pageBytes; }
    int numGpus() const { return _numGpus; }

    /** Page index covering byte @p offset. */
    std::uint64_t pageOf(std::uint64_t offset) const;

    bool isResident(int gpu, std::uint64_t page) const;

    /** Give @p gpu a valid copy (read-duplication). */
    void replicate(int gpu, std::uint64_t page);

    /** Make @p gpu the sole owner (exclusive migration). */
    void migrate(int gpu, std::uint64_t page);

    /**
     * Record a write by @p gpu: invalidates every other replica and
     * makes the writer resident.
     */
    void writeBy(int gpu, std::uint64_t page);

    /** Apply writeBy() to all pages in [offset, offset+bytes). */
    void writeRangeBy(int gpu, std::uint64_t offset,
                      std::uint64_t bytes);

    /** Pages in [offset, offset+bytes) NOT resident on @p gpu. */
    std::uint64_t missingPages(int gpu, std::uint64_t offset,
                               std::uint64_t bytes) const;

    /** Total valid copies of @p page across all GPUs. */
    int replicaCount(std::uint64_t page) const;

  private:
    int _numGpus;
    std::uint32_t _pageBytes;
    std::uint64_t _numPages;

    /** _resident[gpu][page] */
    std::vector<std::vector<bool>> _resident;

    void checkPage(std::uint64_t page) const;
    void checkGpu(int gpu) const;
};

} // namespace proact

#endif // PROACT_MEMORY_PAGE_TABLE_HH
