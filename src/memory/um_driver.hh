/**
 * @file
 * Unified Memory driver model.
 *
 * Reproduces the three UM behaviours the paper evaluates (Sec. IV-B):
 *
 *  - fault path: consumer threads fault on non-resident pages; faults
 *    are serviced umFaultConcurrency at a time at umFaultLatency each
 *    plus page migration wire time. Sequentially accessed data earns
 *    an overlap credit (the driver's speculative prefetch-ahead);
 *    sporadic access exposes every fault.
 *  - hinted prefetch: cudaMemPrefetchAsync-style bulk migration at
 *    DMA granularity with one driver call per peer; sequential data
 *    again earns partial overlap with the consumer kernel.
 *  - legacy (pre-Pascal): no hardware faulting; the managed region
 *    bounces through host memory around each kernel launch.
 *
 * Residency is tracked for real in a PageTable so repeated accesses
 * to already-resident (read-duplicated) pages cost nothing.
 */

#ifndef PROACT_MEMORY_UM_DRIVER_HH
#define PROACT_MEMORY_UM_DRIVER_HH

#include "memory/page_table.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "system/multi_gpu_system.hh"

#include <cstdint>
#include <memory>

namespace proact {

/** Programmer-supplied cudaMemAdvise-style hints. */
struct UmHints
{
    /** Prefetch each peer partition before the consumer kernel. */
    bool prefetch = false;

    /** Mark the region read-mostly (replicate instead of migrate). */
    bool readDuplicate = false;
};

/** UM management of one managed region on one system. */
class UmDriver
{
  public:
    /**
     * @param system The machine; supplies fabric, specs and clock.
     * @param region_bytes Size of the managed region.
     */
    UmDriver(MultiGpuSystem &system, std::uint64_t region_bytes);

    PageTable &pageTable() { return *_pages; }

    /** Record producer writes (invalidates peer replicas). */
    void producerWrote(int gpu, std::uint64_t offset,
                       std::uint64_t bytes);

    /**
     * Make [offset, offset+bytes) usable on @p gpu, where the valid
     * copy lives on @p owner.
     *
     * @param sequential Whether the consumer touches pages in address
     *        order (enables driver prefetch-ahead overlap).
     * @param not_before Earliest start (e.g. producer completion).
     * @return Tick at which the data is resident on @p gpu.
     */
    Tick access(int gpu, int owner, std::uint64_t offset,
                std::uint64_t bytes, bool sequential,
                const UmHints &hints, Tick not_before,
                EventQueue::Callback on_complete = nullptr);

    /**
     * Pre-Pascal legacy mode: bounce the whole region through host
     * memory (used automatically when the GPU lacks page faulting).
     */
    Tick legacyMigrate(int gpu, int owner, std::uint64_t bytes,
                       Tick not_before,
                       EventQueue::Callback on_complete = nullptr);

    /** Whether this system's GPUs support hardware page faulting. */
    bool hardwareFaulting() const;

    StatSet stats;

  private:
    MultiGpuSystem &_system;
    std::unique_ptr<PageTable> _pages;

    Tick faultPath(int gpu, int owner, std::uint64_t missing_pages,
                   bool sequential, bool replicate, Tick not_before,
                   EventQueue::Callback on_complete);
    Tick prefetchPath(int gpu, int owner,
                      std::uint64_t missing_pages, bool sequential,
                      Tick not_before,
                      EventQueue::Callback on_complete);

    void markResident(int gpu, std::uint64_t offset,
                      std::uint64_t bytes, bool replicate);
};

} // namespace proact

#endif // PROACT_MEMORY_UM_DRIVER_HH
