/**
 * @file
 * Acknowledged delivery with timeout, bounded exponential backoff and
 * a reliable-path fallback.
 *
 * PROACT's fine-grained push traffic has no hardware delivery
 * guarantee, so on a faulty fabric a chunk can simply vanish. The
 * RetryingSender wraps Interconnect::transfer() with per-transfer
 * acknowledgement bookkeeping: every submission schedules an ack
 * timeout; if the ack never arrives the transfer is re-pushed after a
 * backoff that doubles per attempt, and once the retry budget is
 * exhausted the sender degrades gracefully — the payload is re-sent
 * over the hardware-reliable bulk path (the same path DMA and UM
 * migrations use) instead of hanging the simulation.
 *
 * The sender is omniscient about the fault-free delivery tick (the
 * fabric returns it at submission), so the ack timeout is modeled as
 * max(predicted delivery + 1, submission + ackTimeout): a timeout
 * only ever fires for a genuinely lost delivery, which keeps retries
 * duplicate-free and runs deterministic.
 *
 * With a Rerouter attached (setRerouter) the sender is additionally
 * reroute-aware: after rerouteAfterAttempts lost attempts on the
 * original path it consults the rerouter once, and when the current
 * health picture offers a better route (a relay fan-out or a
 * multi-relay chain) the remaining attempts ride that route instead
 * of burning the rest of the budget on a link the monitor has since
 * declared DOWN. Only when the re-planned route also keeps losing
 * does the reliable fallback activate.
 */

#ifndef PROACT_FAULTS_RETRY_HH
#define PROACT_FAULTS_RETRY_HH

#include "interconnect/interconnect.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

#include <atomic>
#include <cstdint>

namespace proact {

class Rerouter;

/** Knobs of the retry state machine. */
struct RetryPolicy
{
    /** Off by default: a perfect fabric needs no acknowledgements. */
    bool enabled = false;

    /** Minimum wait for an ack before declaring a delivery lost. */
    Tick ackTimeout = 5 * ticksPerMicrosecond;

    /** Backoff before attempt k+1 is base << (k-1), capped below. */
    Tick backoffBase = 2 * ticksPerMicrosecond;
    Tick backoffMax = 64 * ticksPerMicrosecond;

    /** Total send attempts (including the first) before fallback. */
    int maxAttempts = 5;

    /**
     * Lost attempts on the original path before the sender consults
     * the rerouter (when one is attached via setRerouter) for an
     * alternate route. 0 disables reroute-aware retry; the attempt
     * budget and the reliable fallback are unaffected either way.
     */
    int rerouteAfterAttempts = 0;

    /** Backoff after failed attempt @p attempt (1-based), capped. */
    Tick
    backoff(int attempt) const
    {
        Tick b = backoffBase;
        for (int i = 1; i < attempt && b < backoffMax; ++i)
            b *= 2;
        return b < backoffMax ? b : backoffMax;
    }
};

/**
 * Retrying wrapper around one fabric.
 *
 * Stats recorded into the shared StatSet (when present):
 *  - transfers.retried:    re-pushes after a lost delivery
 *  - transfers.replanned:  retries moved to a rerouter-planned route
 *  - transfers.abandoned:  (transfer, attempt-budget) exhaustions
 *  - transfers.orphaned:   transfers given up because an endpoint
 *                          device is down (no retry, no fallback —
 *                          a dead GPU can neither send nor receive)
 *  - fallback.activations: reliable-path re-sends after abandonment
 *
 * Trace spans (when a Trace is attached): category "retry" from the
 * lost attempt's submission to its timeout, and a "fallback" span
 * covering the reliable re-send.
 */
class RetryingSender
{
  public:
    RetryingSender(EventQueue &eq, Interconnect &fabric,
                   RetryPolicy policy, StatSet *stats = nullptr,
                   Trace *trace = nullptr)
        : _eq(eq), _fabric(fabric), _policy(policy), _stats(stats),
          _trace(trace)
    {
    }

    RetryingSender(const RetryingSender &) = delete;
    RetryingSender &operator=(const RetryingSender &) = delete;

    /**
     * Submit @p req with retry-on-loss semantics. The request's
     * onComplete fires exactly once, at whichever attempt (or the
     * fallback) finally lands.
     *
     * @return Predicted delivery tick of the first attempt. Retries
     *         extend beyond it; eventual delivery is guaranteed.
     */
    Tick send(Interconnect::Request req);

    const RetryPolicy &policy() const { return _policy; }

    /**
     * Attach the route planner consulted after
     * rerouteAfterAttempts lost attempts (nullptr detaches; retries
     * then stay on the original path as before).
     */
    void setRerouter(Rerouter *rerouter) { _rerouter = rerouter; }

    /** Transfers currently awaiting an acknowledgement. */
    std::uint64_t
    inFlight() const
    {
        return _inFlight.load(std::memory_order_relaxed);
    }

  private:
    EventQueue &_eq;
    Interconnect &_fabric;
    RetryPolicy _policy;
    StatSet *_stats;
    Trace *_trace;
    Rerouter *_rerouter = nullptr;

    /**
     * Outstanding-attempt count. Atomic because on a shard-bound
     * fabric the decrement fires on the destination's shard (the
     * delivery callback) while the owning source shard increments;
     * everything else about the sender stays single-writer.
     */
    std::atomic<std::uint64_t> _inFlight{0};

    /**
     * Submit attempt @p attempt_no of @p req. @p replanned marks
     * legs already moved to a rerouter-planned route: they never
     * re-plan again, bounding the recursion.
     */
    Tick attempt(const Interconnect::Request &req, int attempt_no,
                 bool replanned = false);

    /**
     * Attempt path for a shard-bound fabric. There are no ack events:
     * the fabric's drop verdict is synchronous at submission
     * (lastSubmissionDropped), so a lost attempt schedules its retry
     * locally — on the sender's own shard — at the tick the ack
     * horizon would have fired, and a surviving attempt needs no
     * bookkeeping beyond the in-flight count. Dead-endpoint
     * deliveries already on the wire are orphaned by the fabric at
     * fire time (Request::onOrphaned keeps the count honest).
     */
    Tick attemptSharded(const Interconnect::Request &req,
                        int attempt_no, bool replanned);

    /**
     * Re-plan @p req through the rerouter after @p attempt_no lost
     * attempts. @return false when the rerouter has nothing better
     * than the direct path (the caller then retries as usual).
     */
    bool replan(const Interconnect::Request &req, int attempt_no);

    void fallback(const Interconnect::Request &req, Tick first_submit);
    void bumpStat(const std::string &name);
    std::string label(const Interconnect::Request &req) const;
};

} // namespace proact

#endif // PROACT_FAULTS_RETRY_HH
