/**
 * @file
 * Declarative fault schedules for the simulated fabric.
 *
 * A FaultPlan is a reproducible description of everything that goes
 * wrong during a run: which links degrade or go down, when deliveries
 * are dropped or delayed, and which DMA engines stall. The plan is
 * pure data — the FaultInjector arms it on a live system — so the
 * same plan can be replayed against different mechanisms and
 * platforms, and two runs with the same plan (and seed) are
 * tick-for-tick identical.
 */

#ifndef PROACT_FAULTS_FAULT_PLAN_HH
#define PROACT_FAULTS_FAULT_PLAN_HH

#include "sim/types.hh"

#include <cstdint>
#include <string>
#include <vector>

namespace proact {

/** The modeled failure modes. */
enum class FaultKind
{
    /** Link runs at (1 - severity) x nominal bandwidth. */
    LinkDegrade,

    /** Link delivers nothing; every matching delivery is lost. */
    LinkDown,

    /** Each matching delivery is lost with probability = severity. */
    DeliveryDrop,

    /** Each matching delivery lands @c delay ticks late. */
    DeliveryDelay,

    /** The GPU's DMA engine accepts no new copies in the window. */
    DmaStall,

    /**
     * The whole GPU dies: every transfer touching it (either
     * endpoint, reliable or not) is refused and its DMA engine
     * stalls. An episode ending at maxTick is a permanent loss.
     */
    GpuDown,
};

std::string faultKindName(FaultKind kind);

/**
 * One fault episode: a kind, an active window [start, end), a target
 * (link endpoints or GPU; -1 = wildcard), and a severity.
 */
struct FaultEpisode
{
    FaultKind kind = FaultKind::DeliveryDrop;

    /** Active window [start, end). */
    Tick start = 0;
    Tick end = maxTick;

    /** Link targets: -1 matches any source / destination GPU. */
    int src = -1;
    int dst = -1;

    /** DmaStall target GPU (-1 = every engine). */
    int gpu = -1;

    /**
     * LinkDegrade: fraction of nominal bandwidth removed, in (0, 1).
     * DeliveryDrop: loss probability, in (0, 1].
     */
    double severity = 0.0;

    /** DeliveryDelay: spike added to the delivery tick. */
    Tick delay = 0;

    /**
     * Correlation group: episodes born from one physical event (an
     * NVSwitch plane dying takes out every port pair riding it) share
     * a group id and must share a window. -1 = independent episode.
     */
    int group = -1;

    bool active(Tick t) const { return t >= start && t < end; }

    bool
    matchesLink(int s, int d) const
    {
        return (src < 0 || src == s) && (dst < 0 || dst == d);
    }

    /** Diagnostic one-liner, e.g. "drop p=0.01 gpu*->gpu2". */
    std::string describe() const;
};

/**
 * A seeded schedule of fault episodes.
 *
 * The fluent builders cover the common cases; episodes can also be
 * pushed directly. validate() rejects nonsense before a run starts.
 */
struct FaultPlan
{
    /** Seed for probabilistic decisions (delivery drops). */
    std::uint64_t seed = 1;

    std::vector<FaultEpisode> episodes;

    bool empty() const { return episodes.empty(); }

    /**
     * Check every episode against a system of @p num_gpus GPUs.
     * @throws FatalError on invalid windows, targets or severities.
     */
    void validate(int num_gpus) const;

    /** @{ @name Fluent episode builders (return *this for chaining) */
    FaultPlan &degradeLink(Tick start, Tick end, double fraction,
                           int src = -1, int dst = -1);
    FaultPlan &downLink(Tick start, Tick end, int src = -1,
                        int dst = -1);
    FaultPlan &dropDeliveries(Tick start, Tick end, double probability,
                              int src = -1, int dst = -1);
    FaultPlan &delayDeliveries(Tick start, Tick end, Tick delay,
                               int src = -1, int dst = -1);
    FaultPlan &stallDma(Tick start, Tick end, int gpu = -1);
    FaultPlan &downGpu(Tick start, Tick end, int gpu);
    /** @} */

    /**
     * @{ @name Correlated (grouped) episode builders
     *
     * A "plane" failure models one switch plane or backplane event
     * taking out every directed link among @p gpus at once: one
     * episode per ordered pair, all sharing a fresh correlation
     * group and the same [start, end) window.
     */
    FaultPlan &downPlane(Tick start, Tick end,
                         const std::vector<int> &gpus);
    FaultPlan &degradePlane(Tick start, Tick end, double fraction,
                            const std::vector<int> &gpus);
    /** @} */

    /**
     * Probabilistic link recovery: generate an MTTR/MTBF-style
     * outage/repair lifecycle for one directed link (see
     * LinkLifecycleOptions). Seeded and flapping-capable — the link
     * alternates exponentially distributed up times (mean @c mtbf)
     * and outage episodes (mean @c mttr) over the options' horizon,
     * so the monitor's DOWN -> HEALTHY path gets exercised repeatedly
     * rather than once.
     */
    FaultPlan &flapLink(std::uint64_t seed, int src, int dst,
                        const struct LinkLifecycleOptions &options);

    /** Number of distinct correlation groups in the plan. */
    int numGroups() const { return _nextGroup; }

  private:
    int _nextGroup = 0;

    /** Expand one grouped plane event to all directed pairs. */
    FaultPlan &addPlane(FaultEpisode proto,
                        const std::vector<int> &gpus);
};

/**
 * Knobs for MTTR/MTBF link-lifecycle generation (FaultPlan::flapLink
 * and mtbfFaultPlan). Up times and repair times are exponentially
 * distributed — the classic memoryless failure/repair model — so a
 * link can flap several times in one horizon or not at all,
 * deterministically per seed.
 */
struct LinkLifecycleOptions
{
    /** Mean time between failures (mean up time before an outage). */
    Tick mtbf = 300 * ticksPerMicrosecond;

    /** Mean time to repair (mean outage duration). */
    Tick mttr = 80 * ticksPerMicrosecond;

    /** Episodes are generated inside [0, horizon). */
    Tick horizon = 2000 * ticksPerMicrosecond;

    /**
     * Probability an outage is a hard LinkDown; otherwise it is a
     * LinkDegrade at a severity drawn from [minSeverity, maxSeverity].
     */
    double downProbability = 1.0;
    double minSeverity = 0.5;
    double maxSeverity = 0.9;

    /** Safety bound on episodes per link (pathological mtbf ~ 0). */
    int maxEpisodes = 64;
};

/**
 * Deterministically generate an MTTR/MTBF lifecycle plan flapping
 * @p num_links distinct directed links of a @p num_gpus system. Each
 * link's episode stream is derived independently from @p seed (via
 * deriveSeed), so enlarging num_links never perturbs the episodes of
 * links already in the plan.
 */
FaultPlan mtbfFaultPlan(std::uint64_t seed, int num_gpus,
                        int num_links,
                        const LinkLifecycleOptions &options = {});

/**
 * Knobs for seeded device-MTBF campaigns (deviceMtbfFaultPlan). Each
 * GPU draws an exponentially distributed up time; the GPUs whose
 * draws land inside the horizon die — permanently — earliest first,
 * capped at @c maxLosses so a campaign never kills the whole machine.
 */
struct DeviceLifecycleOptions
{
    /** Mean up time before a device loss. */
    Tick mtbf = 1500 * ticksPerMicrosecond;

    /** Losses are generated inside [earliest, horizon). */
    Tick earliest = 0;
    Tick horizon = 2000 * ticksPerMicrosecond;

    /** Upper bound on GPUs lost in one campaign. */
    int maxLosses = 1;
};

/**
 * Deterministically generate a device-loss campaign for @p num_gpus
 * GPUs. Each device's up-time draw comes from its own deriveSeed
 * stream, so enlarging the system never perturbs the fate of GPUs
 * already in it. Losses are permanent (episodes end at maxTick).
 */
FaultPlan deviceMtbfFaultPlan(std::uint64_t seed, int num_gpus,
                              const DeviceLifecycleOptions &options =
                                  {});

/** Knobs for the seeded random fault-plan generator. */
struct RandomFaultOptions
{
    /** Total number of fault events to generate. */
    int numEvents = 4;

    /** Window in which event start ticks are drawn. */
    Tick earliestStart = 0;
    Tick latestStart = 1000 * ticksPerMicrosecond;

    /** Episode duration range, drawn uniformly. */
    Tick minDuration = 10 * ticksPerMicrosecond;
    Tick maxDuration = 200 * ticksPerMicrosecond;

    /** Probability an event is a correlated plane (vs one link). */
    double planeProbability = 0.25;

    /** GPUs per generated plane (clamped to the system size). */
    int planeSize = 2;

    /** Degrade severity range, drawn uniformly. */
    double minSeverity = 0.3;
    double maxSeverity = 0.9;

    /** Probability a (non-plane) event is LinkDown vs LinkDegrade. */
    double downProbability = 0.5;
};

/**
 * Deterministically generate a valid FaultPlan for @p num_gpus GPUs.
 *
 * Same (seed, num_gpus, options) always yields an identical plan, so
 * randomized fault campaigns replay tick-for-tick. The plan's own
 * seed is set to @p seed too, fixing probabilistic drop decisions.
 */
FaultPlan randomFaultPlan(std::uint64_t seed, int num_gpus,
                          const RandomFaultOptions &options = {});

} // namespace proact

#endif // PROACT_FAULTS_FAULT_PLAN_HH
