/**
 * @file
 * Arms a FaultPlan on a live system.
 *
 * The injector turns the declarative plan into simulator behaviour:
 * link-degradation windows become scheduled rate-scale changes on the
 * fabric's channels, DMA-stall windows become engine stalls, and
 * drop/delay/down episodes become a fault filter consulted by
 * Interconnect::transfer() for every non-reliable delivery. All
 * probabilistic decisions come from one Rng seeded by the plan, and
 * decisions are made in event order, so identical (plan, workload)
 * pairs replay identically.
 */

#ifndef PROACT_FAULTS_FAULT_INJECTOR_HH
#define PROACT_FAULTS_FAULT_INJECTOR_HH

#include "faults/fault_plan.hh"
#include "interconnect/interconnect.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

#include <functional>
#include <set>
#include <vector>

namespace proact {

class DmaEngine;

/**
 * Applies a FaultPlan to one fabric (and optionally DMA engines).
 *
 * Stats (read via stats()):
 *  - faults.injected:        every applied fault action
 *  - faults.dropped:         deliveries lost (drop + down episodes)
 *  - faults.delayed:         deliveries that took a delay spike
 *  - faults.degrade_windows: degradation windows that began
 *  - faults.stall_windows:   DMA-stall windows that began
 *  - faults.device_down:     GpuDown windows that began
 *  - faults.correlated_groups: correlated groups that began (counted
 *    once per group, not per member episode)
 *
 * Trace spans (when attached): category "fault", one span per
 * episode window plus an instant span per dropped delivery (the
 * latter recorded by the fabric itself).
 */
class FaultInjector
{
  public:
    /**
     * @param eq The system's event queue.
     * @param fabric Fabric whose deliveries the plan perturbs.
     * @param plan Schedule to arm; validated against the fabric.
     */
    FaultInjector(EventQueue &eq, Interconnect &fabric, FaultPlan plan);

    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Register a DMA engine as a DmaStall target (its GPU's id). */
    void addDmaEngine(int gpu_id, DmaEngine &dma);

    /**
     * Install the fault filter and schedule every episode boundary.
     * Must be called before the run; calling twice is an error.
     */
    void arm();

    /** Remove the fault filter (future transfers are fault-free). */
    void disarm();

    bool armed() const { return _armed; }

    const FaultPlan &plan() const { return _plan; }

    /** Injector statistics (sharded: folded over per-source lanes
     * on every read, so the sums match the serial run bit-for-bit). */
    const StatSet &stats() const;

    /** Attach a span tracer for fault/episode spans. */
    void setTrace(Trace *trace) { _trace = trace; }

    /**
     * @{ @name Device-loss notification
     *
     * GpuDown episodes kill the device in the fabric directly (every
     * transfer touching it is refused, its DMA stalls); listeners let
     * the owning system layer react — watchdog discovery, quiesce,
     * placement — without the injector knowing about it.
     */
    using DeviceDownListener = std::function<void(int gpu, Tick until)>;
    using DeviceUpListener = std::function<void(int gpu)>;
    void addDeviceDownListener(DeviceDownListener listener);
    void addDeviceUpListener(DeviceUpListener listener);
    /** @} */

  private:
    EventQueue &_eq;
    Interconnect &_fabric;
    FaultPlan _plan;
    Rng _rng;
    StatSet _stats;
    mutable StatSet _mergedStats;

    /**
     * @{ @name Sharded filter state
     *
     * On a shard-bound fabric the filter runs on the submitting
     * GPU's shard, so serial-RNG draws and a shared StatSet would
     * race (and their order would depend on the shard count). Drop
     * verdicts instead hash (plan seed, episode, pair, per-pair
     * submission sequence) — a single-writer counter per directed
     * pair — and per-delivery stats land in per-source lanes folded
     * on read. Boundary events stay on the serial queue and keep
     * using _stats directly.
     */
    std::vector<std::uint64_t> _pairSeq;
    std::vector<StatSet> _srcStats;
    /** @} */

    Trace *_trace = nullptr;
    std::vector<std::pair<int, DmaEngine *>> _dmas;
    std::vector<DeviceDownListener> _deviceDownListeners;
    std::vector<DeviceUpListener> _deviceUpListeners;
    std::set<int> _begunGroups;
    bool _armed = false;

    Interconnect::FaultVerdict onTransfer(
        const Interconnect::Request &req, Tick delivered);

    /** Apply an episode's start-of-window effects. */
    void beginEpisode(const FaultEpisode &ep);

    /** Recompute rate scales from the episodes active right now. */
    void applyRateScales();

    /** End-of-window handler for transient GpuDown episodes. */
    void endGpuDown(int gpu);

    /** Channels a link-targeted episode maps onto. */
    template <typename Fn>
    void forEachTargetChannel(const FaultEpisode &ep, Fn &&fn);
};

} // namespace proact

#endif // PROACT_FAULTS_FAULT_INJECTOR_HH
