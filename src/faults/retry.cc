#include "faults/retry.hh"

#include "interconnect/rerouter.hh"

#include <algorithm>
#include <memory>
#include <utility>

namespace proact {

void
RetryingSender::bumpStat(const std::string &name)
{
    if (_stats)
        _stats->inc(name);
}

std::string
RetryingSender::label(const Interconnect::Request &req) const
{
    return "gpu" + std::to_string(req.src) + "->gpu"
        + std::to_string(req.dst);
}

Tick
RetryingSender::send(Interconnect::Request req)
{
    if (!_policy.enabled)
        return _fabric.transfer(req);
    return attempt(req, 1);
}

namespace {

/** Shared ack-timeout bookkeeping so rebooking can push it out. */
struct TimeoutState
{
    EventId event = 0;
    Tick when = 0;
    Tick floor = 0;
    EventQueue::Callback cb;
};

} // namespace

bool
RetryingSender::replan(const Interconnect::Request &req,
                       int attempt_no)
{
    const auto &legs = _rerouter->plan(req.src, req.dst);
    if (legs.size() == 1 && legs[0].direct())
        return false; // Nothing better than the path we are on.

    bumpStat("transfers.replanned");
    if (_trace) {
        _trace->record(_eq.curTick(), _eq.curTick(), "replan",
                       label(req) + " rerouted after attempt"
                           + std::to_string(attempt_no));
    }

    // The rerouter decomposes the payload into legs; every leg (and
    // relay hop) re-enters the retry machinery with the attempt
    // counter carried over, so the total budget still bounds the
    // chain, and replanned legs never re-plan again.
    Interconnect::Request again = req;
    again.notBefore = _eq.curTick() + _policy.backoff(attempt_no);
    _rerouter->send(
        [this, attempt_no](const Interconnect::Request &leg) {
            return attempt(leg, attempt_no + 1, true);
        },
        std::move(again));
    return true;
}

Tick
RetryingSender::attempt(const Interconnect::Request &req,
                        int attempt_no, bool replanned)
{
    if (_fabric.sharded())
        return attemptSharded(req, attempt_no, replanned);

    // A dead endpoint is not a lossy link: no number of retries (or
    // the reliable fallback) can land a byte on it, so the transfer
    // is orphaned outright. This is what lets the event queue drain
    // after a device loss instead of grinding through the backoff
    // ladder toward a fallback that would also be refused.
    if (_fabric.deviceDown(req.src) || _fabric.deviceDown(req.dst)) {
        bumpStat("transfers.orphaned");
        return _eq.curTick();
    }

    auto acked = std::make_shared<bool>(false);
    auto tstate = std::make_shared<TimeoutState>();

    Interconnect::Request wire = req;
    wire.onComplete = [this, acked, cb = req.onComplete] {
        *acked = true;
        --_inFlight;
        if (cb)
            cb();
    };
    // Boundary-aware fabrics can move a live delivery when a fault
    // window re-books wire time mid-flight; follow it with the ack
    // horizon so a slowed (not lost) delivery never looks like a
    // loss. The horizon only ever moves out: a delivery that speeds
    // up simply acks before the (now pessimistic) timeout fires.
    wire.onRebook = [this, acked, tstate](Tick new_delivered) {
        if (*acked || tstate->event == 0)
            return;
        const Tick want = std::max(new_delivered + 1, tstate->floor);
        if (want <= tstate->when)
            return;
        _eq.deschedule(tstate->event);
        tstate->when = want;
        tstate->event = _eq.schedule(want, tstate->cb);
    };

    const Tick submit = _eq.curTick();
    const Tick predicted = _fabric.transfer(wire);
    ++_inFlight;

    // The ack horizon: a surviving delivery always lands at the
    // predicted tick (delay faults are folded into it), so a timeout
    // one tick past it can only mean loss. The ackTimeout floor
    // models the real cost of discovering the loss, counted from the
    // moment the transfer enters the fabric (after any backoff hold).
    const Tick entered = std::max(submit, req.notBefore);
    const Tick timeout =
        std::max(predicted + 1, entered + _policy.ackTimeout);

    tstate->floor = entered + _policy.ackTimeout;
    tstate->when = timeout;
    tstate->cb = [this, req, attempt_no, replanned, acked, submit] {
        if (*acked)
            return;
        --_inFlight;
        if (_trace) {
            _trace->record(submit, _eq.curTick(), "retry",
                           label(req) + " attempt"
                               + std::to_string(attempt_no)
                               + " lost");
        }
        // The endpoint may have died while this attempt was on the
        // wire; orphan instead of escalating (see above).
        if (_fabric.deviceDown(req.src) ||
            _fabric.deviceDown(req.dst)) {
            bumpStat("transfers.orphaned");
            return;
        }
        if (attempt_no >= _policy.maxAttempts) {
            fallback(req, submit);
            return;
        }
        // Reroute-aware retry: once the loss streak has given the
        // health monitor a chance to reclassify the link, ask the
        // rerouter for a better route before burning more attempts
        // on the original path.
        if (!replanned && _rerouter
            && _policy.rerouteAfterAttempts > 0
            && attempt_no >= _policy.rerouteAfterAttempts
            && replan(req, attempt_no)) {
            return;
        }
        bumpStat("transfers.retried");
        Interconnect::Request again = req;
        again.notBefore =
            _eq.curTick() + _policy.backoff(attempt_no);
        attempt(again, attempt_no + 1, replanned);
    };
    tstate->event = _eq.schedule(timeout, tstate->cb);

    return predicted;
}

Tick
RetryingSender::attemptSharded(const Interconnect::Request &req,
                               int attempt_no, bool replanned)
{
    // Dead endpoint: orphan outright, exactly as in attempt(). The
    // death flags only change in serial context (between windows), so
    // this read is stable for the whole window.
    if (_fabric.deviceDown(req.src) || _fabric.deviceDown(req.dst)) {
        bumpStat("transfers.orphaned");
        return _eq.curTick();
    }

    Interconnect::Request wire = req;
    wire.onComplete = [this, cb = req.onComplete] {
        _inFlight.fetch_sub(1, std::memory_order_relaxed);
        if (cb)
            cb();
    };
    // The destination can die while the delivery is on the wire; the
    // fabric orphans it at fire time and tells us, so the in-flight
    // count still drains. The orphan itself is counted by the fabric
    // (quiescedFlights) — bumping our stats here would race with the
    // source shard.
    wire.onOrphaned = [this] {
        _inFlight.fetch_sub(1, std::memory_order_relaxed);
    };

    const Tick submit = _eq.curTick();
    const Tick predicted = _fabric.transfer(wire);

    if (!_fabric.lastSubmissionDropped(req.src)) {
        // Delivered: the fabric posted the completion at least one
        // full lookahead window out, so this increment always
        // happens-before the matching decrement.
        _inFlight.fetch_add(1, std::memory_order_relaxed);
        return predicted;
    }

    // Lost. The verdict is synchronous, but *discovering* the loss
    // still costs what the ack horizon models, so the retry ladder is
    // scheduled locally — on the sender's own shard — at the exact
    // tick the legacy ack timeout would have fired. No acks cross
    // shards, and the ladder below mirrors the legacy timeout
    // callback step for step.
    const Tick entered = std::max(submit, req.notBefore);
    const Tick horizon =
        std::max(predicted + 1, entered + _policy.ackTimeout);
    _eq.schedule(horizon, [this, req, attempt_no, replanned, submit] {
        // The endpoint may have died while the loss was being
        // discovered; orphan instead of escalating.
        if (_fabric.deviceDown(req.src) ||
            _fabric.deviceDown(req.dst)) {
            bumpStat("transfers.orphaned");
            return;
        }
        if (attempt_no >= _policy.maxAttempts) {
            fallback(req, submit);
            return;
        }
        if (!replanned && _rerouter
            && _policy.rerouteAfterAttempts > 0
            && attempt_no >= _policy.rerouteAfterAttempts
            && replan(req, attempt_no)) {
            return;
        }
        bumpStat("transfers.retried");
        Interconnect::Request again = req;
        again.notBefore = _eq.curTick() + _policy.backoff(attempt_no);
        attemptSharded(again, attempt_no + 1, replanned);
    });
    return predicted;
}

void
RetryingSender::fallback(const Interconnect::Request &req,
                         Tick first_submit)
{
    bumpStat("transfers.abandoned");
    bumpStat("fallback.activations");

    // Degraded mode: hand the payload to the hardware-reliable bulk
    // path (engine granularity, no thread cap) — the same guarantee
    // DMA and UM migrations enjoy. Delivery may be slow under link
    // degradation but can no longer be lost.
    Interconnect::Request bulk = req;
    bulk.reliable = true;
    bulk.writeGranularity = _fabric.packetModel().maxPayloadBytes;
    bulk.threads = 0;
    bulk.notBefore = _eq.curTick();
    const Tick done = _fabric.transfer(bulk);

    if (_trace) {
        _trace->record(first_submit, done, "fallback",
                       label(req) + " reliable re-send");
    }
}

} // namespace proact
