#include "faults/fault_injector.hh"

#include "gpu/dma_engine.hh"
#include "sim/logging.hh"

#include <algorithm>
#include <map>

namespace proact {

/**
 * Boundary events (rate changes, stalls) run before any same-tick
 * transfer submission sees the new state.
 */
constexpr int faultEventPriority = -100;

FaultInjector::FaultInjector(EventQueue &eq, Interconnect &fabric,
                             FaultPlan plan)
    : _eq(eq), _fabric(fabric), _plan(std::move(plan)),
      _rng(_plan.seed)
{
}

FaultInjector::~FaultInjector()
{
    if (_armed)
        disarm();
}

void
FaultInjector::addDmaEngine(int gpu_id, DmaEngine &dma)
{
    _dmas.emplace_back(gpu_id, &dma);
}

void
FaultInjector::addDeviceDownListener(DeviceDownListener listener)
{
    _deviceDownListeners.push_back(std::move(listener));
}

void
FaultInjector::addDeviceUpListener(DeviceUpListener listener)
{
    _deviceUpListeners.push_back(std::move(listener));
}

template <typename Fn>
void
FaultInjector::forEachTargetChannel(const FaultEpisode &ep, Fn &&fn)
{
    const int n = _fabric.numGpus();
    if (_fabric.pairwise()) {
        for (int s = 0; s < n; ++s) {
            for (int d = 0; d < n; ++d) {
                if (s != d && ep.matchesLink(s, d))
                    fn(_fabric.pairLink(s, d));
            }
        }
        return;
    }
    // Shared-port fabrics have no per-pair channel: a directed-link
    // episode degrades the source's egress and the destination's
    // ingress; wildcards widen to every port (and the core).
    for (int g = 0; g < n; ++g) {
        if (ep.src < 0 || ep.src == g)
            fn(_fabric.egress(g));
        if (ep.dst < 0 || ep.dst == g)
            fn(_fabric.ingress(g));
    }
    if (ep.src < 0 && ep.dst < 0 && _fabric.hasCore())
        fn(_fabric.core());
}

void
FaultInjector::applyRateScales()
{
    const Tick now = _eq.curTick();

    // Recompute from scratch so ended windows restore cleanly and
    // overlapping windows compose (most severe wins).
    std::map<Channel *, double> scales;
    for (const FaultEpisode &ep : _plan.episodes) {
        if (ep.kind != FaultKind::LinkDegrade)
            continue;
        forEachTargetChannel(ep, [&](Channel &ch) {
            auto [it, inserted] = scales.emplace(&ch, 1.0);
            if (ep.active(now))
                it->second = std::min(it->second, 1.0 - ep.severity);
        });
    }
    for (const auto &[ch, scale] : scales)
        ch->setRateScale(scale);
}

void
FaultInjector::arm()
{
    if (_armed)
        fatalError("FaultInjector: arm() called twice");
    _plan.validate(_fabric.numGpus());
    _armed = true;

    _fabric.setFaultFilter(
        [this](const Interconnect::Request &req, Tick delivered) {
            return onTransfer(req, delivered);
        });

    for (const FaultEpisode &ep : _plan.episodes) {
        // Windows already open when the plan is armed take effect
        // right now: work submitted synchronously before the queue
        // runs must not see a pristine fabric.
        if (ep.start <= _eq.curTick()) {
            beginEpisode(ep);
        } else {
            _eq.schedule(ep.start, [this, ep] { beginEpisode(ep); },
                         faultEventPriority);
        }

        // An end boundary only matters for state that must be
        // restored; open-ended windows (end == maxTick) must not pin
        // an event on the queue forever.
        if (ep.kind == FaultKind::LinkDegrade && ep.end != maxTick) {
            _eq.schedule(ep.end, [this] { applyRateScales(); },
                         faultEventPriority);
        }
        if (ep.kind == FaultKind::GpuDown && ep.end != maxTick) {
            _eq.schedule(ep.end,
                         [this, gpu = ep.gpu] { endGpuDown(gpu); },
                         faultEventPriority);
        }
    }
}

void
FaultInjector::beginEpisode(const FaultEpisode &ep)
{
    _stats.inc("faults.injected");
    if (ep.group >= 0 && _begunGroups.insert(ep.group).second)
        _stats.inc("faults.correlated_groups");
    if (_trace) {
        _trace->record(_eq.curTick(),
                       ep.end == maxTick ? _eq.curTick() : ep.end,
                       "fault", ep.describe());
    }
    switch (ep.kind) {
      case FaultKind::LinkDegrade:
        _stats.inc("faults.degrade_windows");
        applyRateScales();
        break;
      case FaultKind::LinkDown:
        _stats.inc("faults.down_windows");
        break;
      case FaultKind::DmaStall:
        _stats.inc("faults.stall_windows");
        for (auto &[gpu_id, dma] : _dmas) {
            if (ep.gpu < 0 || ep.gpu == gpu_id)
                dma->stall(ep.end);
        }
        break;
      case FaultKind::GpuDown:
        _stats.inc("faults.device_down");
        // The fabric refuses everything touching the device from this
        // tick on (reliable fallbacks included — a dead GPU protects
        // nothing); its DMA engine stalls for the window.
        _fabric.setDeviceDown(ep.gpu, true);
        for (auto &[gpu_id, dma] : _dmas) {
            if (ep.gpu == gpu_id)
                dma->stall(ep.end);
        }
        for (const DeviceDownListener &l : _deviceDownListeners)
            l(ep.gpu, ep.end);
        break;
      case FaultKind::DeliveryDrop:
      case FaultKind::DeliveryDelay:
        // Applied per delivery by the fault filter.
        break;
    }
}

void
FaultInjector::endGpuDown(int gpu)
{
    // Overlapping windows on one device compose: the device comes
    // back only when no GpuDown episode still covers it.
    const Tick now = _eq.curTick();
    for (const FaultEpisode &ep : _plan.episodes) {
        if (ep.kind == FaultKind::GpuDown && ep.gpu == gpu &&
            ep.active(now)) {
            return;
        }
    }
    _fabric.setDeviceDown(gpu, false);
    for (const DeviceUpListener &l : _deviceUpListeners)
        l(gpu);
}

void
FaultInjector::disarm()
{
    _fabric.setFaultFilter(nullptr);
    _armed = false;
}

Interconnect::FaultVerdict
FaultInjector::onTransfer(const Interconnect::Request &req,
                          Tick /*delivered*/)
{
    // Episodes judge a transfer at its submission tick — the
    // cut-through booking model decides the whole path up front, so
    // the wire state "now" is what the transfer experiences.
    const Tick now = _eq.curTick();
    Interconnect::FaultVerdict verdict;

    for (const FaultEpisode &ep : _plan.episodes) {
        if (!ep.active(now))
            continue;
        switch (ep.kind) {
          case FaultKind::LinkDown:
            if (ep.matchesLink(req.src, req.dst))
                verdict.drop = true;
            break;
          case FaultKind::DeliveryDrop:
            if (!verdict.drop && ep.matchesLink(req.src, req.dst) &&
                _rng.uniform() < ep.severity) {
                verdict.drop = true;
            }
            break;
          case FaultKind::DeliveryDelay:
            if (ep.matchesLink(req.src, req.dst))
                verdict.extraDelay += ep.delay;
            break;
          case FaultKind::LinkDegrade:
          case FaultKind::DmaStall:
          case FaultKind::GpuDown:
            // Device death is enforced by the fabric's refuse path
            // before the filter runs, reliable traffic included.
            break;
        }
    }

    if (verdict.drop) {
        _stats.inc("faults.injected");
        _stats.inc("faults.dropped");
        verdict.extraDelay = 0;
    } else if (verdict.extraDelay > 0) {
        _stats.inc("faults.injected");
        _stats.inc("faults.delayed");
    }
    return verdict;
}

} // namespace proact
