#include "faults/fault_injector.hh"

#include "gpu/dma_engine.hh"
#include "sim/logging.hh"

#include <algorithm>
#include <map>

namespace proact {

/**
 * Boundary events (rate changes, stalls) run before any same-tick
 * transfer submission sees the new state.
 */
constexpr int faultEventPriority = -100;

namespace {

/** splitmix64 finalizer: full-avalanche 64-bit mixing. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform [0, 1) from a mixed 64-bit value (53 mantissa bits). */
double
unitFromBits(std::uint64_t bits)
{
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

} // namespace

FaultInjector::FaultInjector(EventQueue &eq, Interconnect &fabric,
                             FaultPlan plan)
    : _eq(eq), _fabric(fabric), _plan(std::move(plan)),
      _rng(_plan.seed)
{
    if (_fabric.sharded()) {
        const std::size_t n =
            static_cast<std::size_t>(_fabric.numGpus());
        _pairSeq.assign(n * n, 0);
        _srcStats.resize(n);
    }
}

const StatSet &
FaultInjector::stats() const
{
    if (_srcStats.empty())
        return _stats;
    _mergedStats = _stats;
    for (const StatSet &lane : _srcStats)
        _mergedStats.merge(lane);
    return _mergedStats;
}

FaultInjector::~FaultInjector()
{
    if (_armed)
        disarm();
}

void
FaultInjector::addDmaEngine(int gpu_id, DmaEngine &dma)
{
    _dmas.emplace_back(gpu_id, &dma);
}

void
FaultInjector::addDeviceDownListener(DeviceDownListener listener)
{
    _deviceDownListeners.push_back(std::move(listener));
}

void
FaultInjector::addDeviceUpListener(DeviceUpListener listener)
{
    _deviceUpListeners.push_back(std::move(listener));
}

template <typename Fn>
void
FaultInjector::forEachTargetChannel(const FaultEpisode &ep, Fn &&fn)
{
    const int n = _fabric.numGpus();
    if (_fabric.pairwise()) {
        for (int s = 0; s < n; ++s) {
            for (int d = 0; d < n; ++d) {
                if (s != d && ep.matchesLink(s, d))
                    fn(_fabric.pairLink(s, d));
            }
        }
        return;
    }
    // Shared-port fabrics have no per-pair channel: a directed-link
    // episode degrades the source's egress and the destination's
    // ingress; wildcards widen to every port (and the core).
    for (int g = 0; g < n; ++g) {
        if (ep.src < 0 || ep.src == g)
            fn(_fabric.egress(g));
        if (ep.dst < 0 || ep.dst == g)
            fn(_fabric.ingress(g));
    }
    if (ep.src < 0 && ep.dst < 0 && _fabric.hasCore())
        fn(_fabric.core());
}

void
FaultInjector::applyRateScales()
{
    const Tick now = _eq.curTick();

    // Recompute from scratch so ended windows restore cleanly and
    // overlapping windows compose (most severe wins).
    std::map<Channel *, double> scales;
    for (const FaultEpisode &ep : _plan.episodes) {
        if (ep.kind != FaultKind::LinkDegrade)
            continue;
        forEachTargetChannel(ep, [&](Channel &ch) {
            auto [it, inserted] = scales.emplace(&ch, 1.0);
            if (ep.active(now))
                it->second = std::min(it->second, 1.0 - ep.severity);
        });
    }
    for (const auto &[ch, scale] : scales)
        ch->setRateScale(scale);
}

void
FaultInjector::arm()
{
    if (_armed)
        fatalError("FaultInjector: arm() called twice");
    _plan.validate(_fabric.numGpus());
    _armed = true;

    _fabric.setFaultFilter(
        [this](const Interconnect::Request &req, Tick delivered) {
            return onTransfer(req, delivered);
        });

    for (const FaultEpisode &ep : _plan.episodes) {
        // Windows already open when the plan is armed take effect
        // right now: work submitted synchronously before the queue
        // runs must not see a pristine fabric.
        if (ep.start <= _eq.curTick()) {
            beginEpisode(ep);
        } else {
            _eq.schedule(ep.start, [this, ep] { beginEpisode(ep); },
                         faultEventPriority);
        }

        // An end boundary only matters for state that must be
        // restored; open-ended windows (end == maxTick) must not pin
        // an event on the queue forever.
        if (ep.kind == FaultKind::LinkDegrade && ep.end != maxTick) {
            _eq.schedule(ep.end, [this] { applyRateScales(); },
                         faultEventPriority);
        }
        if (ep.kind == FaultKind::GpuDown && ep.end != maxTick) {
            _eq.schedule(ep.end,
                         [this, gpu = ep.gpu] { endGpuDown(gpu); },
                         faultEventPriority);
        }
    }
}

void
FaultInjector::beginEpisode(const FaultEpisode &ep)
{
    _stats.inc("faults.injected");
    if (ep.group >= 0 && _begunGroups.insert(ep.group).second)
        _stats.inc("faults.correlated_groups");
    if (_trace) {
        _trace->record(_eq.curTick(),
                       ep.end == maxTick ? _eq.curTick() : ep.end,
                       "fault", ep.describe());
    }
    switch (ep.kind) {
      case FaultKind::LinkDegrade:
        _stats.inc("faults.degrade_windows");
        applyRateScales();
        break;
      case FaultKind::LinkDown:
        _stats.inc("faults.down_windows");
        break;
      case FaultKind::DmaStall:
        _stats.inc("faults.stall_windows");
        for (auto &[gpu_id, dma] : _dmas) {
            if (ep.gpu < 0 || ep.gpu == gpu_id)
                dma->stall(ep.end);
        }
        break;
      case FaultKind::GpuDown:
        _stats.inc("faults.device_down");
        // The fabric refuses everything touching the device from this
        // tick on (reliable fallbacks included — a dead GPU protects
        // nothing); its DMA engine stalls for the window.
        _fabric.setDeviceDown(ep.gpu, true);
        for (auto &[gpu_id, dma] : _dmas) {
            if (ep.gpu == gpu_id)
                dma->stall(ep.end);
        }
        for (const DeviceDownListener &l : _deviceDownListeners)
            l(ep.gpu, ep.end);
        break;
      case FaultKind::DeliveryDrop:
      case FaultKind::DeliveryDelay:
        // Applied per delivery by the fault filter.
        break;
    }
}

void
FaultInjector::endGpuDown(int gpu)
{
    // Overlapping windows on one device compose: the device comes
    // back only when no GpuDown episode still covers it.
    const Tick now = _eq.curTick();
    for (const FaultEpisode &ep : _plan.episodes) {
        if (ep.kind == FaultKind::GpuDown && ep.gpu == gpu &&
            ep.active(now)) {
            return;
        }
    }
    _fabric.setDeviceDown(gpu, false);
    for (const DeviceUpListener &l : _deviceUpListeners)
        l(gpu);
}

void
FaultInjector::disarm()
{
    _fabric.setFaultFilter(nullptr);
    _armed = false;
}

Interconnect::FaultVerdict
FaultInjector::onTransfer(const Interconnect::Request &req,
                          Tick /*delivered*/)
{
    // Episodes judge a transfer at its submission tick — the
    // cut-through booking model decides the whole path up front, so
    // the wire state "now" is what the transfer experiences. On a
    // shard-bound fabric the submission runs on the source's shard,
    // so "now" is that shard's clock.
    const bool sharded = !_srcStats.empty();
    EventQueue *cur =
        sharded ? ShardedEventEngine::currentQueue() : nullptr;
    const Tick now = cur ? cur->curTick() : _eq.curTick();
    Interconnect::FaultVerdict verdict;

    // One draw index per submission, consumed whether or not a drop
    // episode is active, so verdicts depend only on the source's
    // serial submission order — never on cross-shard interleaving or
    // the shard count.
    std::uint64_t draw_seq = 0;
    if (sharded) {
        const std::size_t n =
            static_cast<std::size_t>(_fabric.numGpus());
        draw_seq = _pairSeq[static_cast<std::size_t>(req.src) * n
                            + static_cast<std::size_t>(req.dst)]++;
    }

    for (std::size_t i = 0; i < _plan.episodes.size(); ++i) {
        const FaultEpisode &ep = _plan.episodes[i];
        if (!ep.active(now))
            continue;
        switch (ep.kind) {
          case FaultKind::LinkDown:
            if (ep.matchesLink(req.src, req.dst))
                verdict.drop = true;
            break;
          case FaultKind::DeliveryDrop:
            if (verdict.drop || !ep.matchesLink(req.src, req.dst))
                break;
            if (sharded) {
                // Hash-derived verdict: a pure function of (plan
                // seed, episode, pair, per-pair sequence), identical
                // at every shard count.
                const std::uint64_t bits = mix64(
                    mix64(_plan.seed ^ draw_seq)
                    ^ (static_cast<std::uint64_t>(i)
                           * 0x100000001b3ull
                       + static_cast<std::uint64_t>(req.src)
                             * 0x10001ull
                       + static_cast<std::uint64_t>(req.dst)));
                if (unitFromBits(bits) < ep.severity)
                    verdict.drop = true;
            } else if (_rng.uniform() < ep.severity) {
                verdict.drop = true;
            }
            break;
          case FaultKind::DeliveryDelay:
            if (ep.matchesLink(req.src, req.dst))
                verdict.extraDelay += ep.delay;
            break;
          case FaultKind::LinkDegrade:
          case FaultKind::DmaStall:
          case FaultKind::GpuDown:
            // Device death is enforced by the fabric's refuse path
            // before the filter runs, reliable traffic included.
            break;
        }
    }

    StatSet &sink = sharded
        ? _srcStats[static_cast<std::size_t>(req.src)]
        : _stats;
    if (verdict.drop) {
        sink.inc("faults.injected");
        sink.inc("faults.dropped");
        verdict.extraDelay = 0;
    } else if (verdict.extraDelay > 0) {
        sink.inc("faults.injected");
        sink.inc("faults.delayed");
    }
    return verdict;
}

} // namespace proact
