#include "faults/fault_plan.hh"

#include "sim/logging.hh"

#include <sstream>

namespace proact {

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LinkDegrade:
        return "degrade";
      case FaultKind::LinkDown:
        return "down";
      case FaultKind::DeliveryDrop:
        return "drop";
      case FaultKind::DeliveryDelay:
        return "delay";
      case FaultKind::DmaStall:
        return "dma-stall";
    }
    return "unknown";
}

namespace {

std::string
endpoint(int id)
{
    return id < 0 ? "*" : std::to_string(id);
}

} // namespace

std::string
FaultEpisode::describe() const
{
    std::ostringstream oss;
    oss << faultKindName(kind);
    switch (kind) {
      case FaultKind::LinkDegrade:
      case FaultKind::DeliveryDrop:
        oss << " p=" << severity;
        break;
      case FaultKind::DeliveryDelay:
        oss << " +" << delay << "t";
        break;
      default:
        break;
    }
    if (kind == FaultKind::DmaStall)
        oss << " gpu" << endpoint(gpu);
    else
        oss << " gpu" << endpoint(src) << "->gpu" << endpoint(dst);
    return oss.str();
}

void
FaultPlan::validate(int num_gpus) const
{
    for (const FaultEpisode &ep : episodes) {
        const std::string what = ep.describe();
        if (ep.start >= ep.end)
            fatalError("FaultPlan: empty window for episode ", what);
        if (ep.src >= num_gpus || ep.dst >= num_gpus ||
            ep.gpu >= num_gpus) {
            fatalError("FaultPlan: target out of range for episode ",
                       what, " (", num_gpus, " GPUs)");
        }
        if (ep.src >= 0 && ep.src == ep.dst)
            fatalError("FaultPlan: src == dst for episode ", what);
        switch (ep.kind) {
          case FaultKind::LinkDegrade:
            if (ep.severity <= 0.0 || ep.severity >= 1.0)
                fatalError("FaultPlan: degrade fraction must be in "
                           "(0, 1), got ", ep.severity);
            break;
          case FaultKind::DeliveryDrop:
            if (ep.severity <= 0.0 || ep.severity > 1.0)
                fatalError("FaultPlan: drop probability must be in "
                           "(0, 1], got ", ep.severity);
            break;
          case FaultKind::DeliveryDelay:
            if (ep.delay == 0)
                fatalError("FaultPlan: zero delay spike");
            break;
          case FaultKind::LinkDown:
          case FaultKind::DmaStall:
            break;
        }
    }
}

FaultPlan &
FaultPlan::degradeLink(Tick start, Tick end, double fraction, int src,
                       int dst)
{
    FaultEpisode ep;
    ep.kind = FaultKind::LinkDegrade;
    ep.start = start;
    ep.end = end;
    ep.severity = fraction;
    ep.src = src;
    ep.dst = dst;
    episodes.push_back(ep);
    return *this;
}

FaultPlan &
FaultPlan::downLink(Tick start, Tick end, int src, int dst)
{
    FaultEpisode ep;
    ep.kind = FaultKind::LinkDown;
    ep.start = start;
    ep.end = end;
    ep.src = src;
    ep.dst = dst;
    episodes.push_back(ep);
    return *this;
}

FaultPlan &
FaultPlan::dropDeliveries(Tick start, Tick end, double probability,
                          int src, int dst)
{
    FaultEpisode ep;
    ep.kind = FaultKind::DeliveryDrop;
    ep.start = start;
    ep.end = end;
    ep.severity = probability;
    ep.src = src;
    ep.dst = dst;
    episodes.push_back(ep);
    return *this;
}

FaultPlan &
FaultPlan::delayDeliveries(Tick start, Tick end, Tick delay, int src,
                           int dst)
{
    FaultEpisode ep;
    ep.kind = FaultKind::DeliveryDelay;
    ep.start = start;
    ep.end = end;
    ep.delay = delay;
    ep.src = src;
    ep.dst = dst;
    episodes.push_back(ep);
    return *this;
}

FaultPlan &
FaultPlan::stallDma(Tick start, Tick end, int gpu)
{
    FaultEpisode ep;
    ep.kind = FaultKind::DmaStall;
    ep.start = start;
    ep.end = end;
    ep.gpu = gpu;
    episodes.push_back(ep);
    return *this;
}

} // namespace proact
