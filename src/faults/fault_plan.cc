#include "faults/fault_plan.hh"

#include "sim/logging.hh"
#include "sim/random.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace proact {

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LinkDegrade:
        return "degrade";
      case FaultKind::LinkDown:
        return "down";
      case FaultKind::DeliveryDrop:
        return "drop";
      case FaultKind::DeliveryDelay:
        return "delay";
      case FaultKind::DmaStall:
        return "dma-stall";
      case FaultKind::GpuDown:
        return "gpu-down";
    }
    return "unknown";
}

namespace {

std::string
endpoint(int id)
{
    return id < 0 ? "*" : std::to_string(id);
}

} // namespace

std::string
FaultEpisode::describe() const
{
    std::ostringstream oss;
    oss << faultKindName(kind);
    switch (kind) {
      case FaultKind::LinkDegrade:
      case FaultKind::DeliveryDrop:
        oss << " p=" << severity;
        break;
      case FaultKind::DeliveryDelay:
        oss << " +" << delay << "t";
        break;
      default:
        break;
    }
    if (kind == FaultKind::DmaStall || kind == FaultKind::GpuDown)
        oss << " gpu" << endpoint(gpu);
    else
        oss << " gpu" << endpoint(src) << "->gpu" << endpoint(dst);
    if (group >= 0)
        oss << " [group " << group << "]";
    return oss.str();
}

void
FaultPlan::validate(int num_gpus) const
{
    for (const FaultEpisode &ep : episodes) {
        const std::string what = ep.describe();
        if (ep.start >= ep.end)
            fatalError("FaultPlan: empty window for episode ", what);
        if (ep.src >= num_gpus || ep.dst >= num_gpus ||
            ep.gpu >= num_gpus) {
            fatalError("FaultPlan: target out of range for episode ",
                       what, " (", num_gpus, " GPUs)");
        }
        if (ep.src >= 0 && ep.src == ep.dst)
            fatalError("FaultPlan: src == dst for episode ", what);
        switch (ep.kind) {
          case FaultKind::LinkDegrade:
            if (ep.severity <= 0.0 || ep.severity >= 1.0)
                fatalError("FaultPlan: degrade fraction must be in "
                           "(0, 1), got ", ep.severity);
            break;
          case FaultKind::DeliveryDrop:
            if (ep.severity <= 0.0 || ep.severity > 1.0)
                fatalError("FaultPlan: drop probability must be in "
                           "(0, 1], got ", ep.severity);
            break;
          case FaultKind::DeliveryDelay:
            if (ep.delay == 0)
                fatalError("FaultPlan: zero delay spike");
            break;
          case FaultKind::LinkDown:
          case FaultKind::DmaStall:
            break;
          case FaultKind::GpuDown:
            // A whole-device loss needs a concrete victim; a wildcard
            // would kill every GPU and leave nothing to recover onto.
            if (ep.gpu < 0)
                fatalError("FaultPlan: GpuDown requires a concrete "
                           "gpu target, got wildcard");
            break;
        }
    }

    // Correlated episodes model ONE physical event; a group whose
    // members disagree on the window would be two events wearing one
    // id, which breaks replay reasoning.
    std::map<int, std::pair<Tick, Tick>> windows;
    for (const FaultEpisode &ep : episodes) {
        if (ep.group < 0)
            continue;
        auto [it, inserted] = windows.emplace(
            ep.group, std::make_pair(ep.start, ep.end));
        if (!inserted && (it->second.first != ep.start ||
                          it->second.second != ep.end)) {
            fatalError("FaultPlan: group ", ep.group,
                       " episodes disagree on the fault window");
        }
    }
}

FaultPlan &
FaultPlan::degradeLink(Tick start, Tick end, double fraction, int src,
                       int dst)
{
    FaultEpisode ep;
    ep.kind = FaultKind::LinkDegrade;
    ep.start = start;
    ep.end = end;
    ep.severity = fraction;
    ep.src = src;
    ep.dst = dst;
    episodes.push_back(ep);
    return *this;
}

FaultPlan &
FaultPlan::downLink(Tick start, Tick end, int src, int dst)
{
    FaultEpisode ep;
    ep.kind = FaultKind::LinkDown;
    ep.start = start;
    ep.end = end;
    ep.src = src;
    ep.dst = dst;
    episodes.push_back(ep);
    return *this;
}

FaultPlan &
FaultPlan::dropDeliveries(Tick start, Tick end, double probability,
                          int src, int dst)
{
    FaultEpisode ep;
    ep.kind = FaultKind::DeliveryDrop;
    ep.start = start;
    ep.end = end;
    ep.severity = probability;
    ep.src = src;
    ep.dst = dst;
    episodes.push_back(ep);
    return *this;
}

FaultPlan &
FaultPlan::delayDeliveries(Tick start, Tick end, Tick delay, int src,
                           int dst)
{
    FaultEpisode ep;
    ep.kind = FaultKind::DeliveryDelay;
    ep.start = start;
    ep.end = end;
    ep.delay = delay;
    ep.src = src;
    ep.dst = dst;
    episodes.push_back(ep);
    return *this;
}

FaultPlan &
FaultPlan::stallDma(Tick start, Tick end, int gpu)
{
    FaultEpisode ep;
    ep.kind = FaultKind::DmaStall;
    ep.start = start;
    ep.end = end;
    ep.gpu = gpu;
    episodes.push_back(ep);
    return *this;
}

FaultPlan &
FaultPlan::downGpu(Tick start, Tick end, int gpu)
{
    FaultEpisode ep;
    ep.kind = FaultKind::GpuDown;
    ep.start = start;
    ep.end = end;
    ep.gpu = gpu;
    episodes.push_back(ep);
    return *this;
}

FaultPlan &
FaultPlan::addPlane(FaultEpisode proto, const std::vector<int> &gpus)
{
    if (gpus.size() < 2)
        fatalError("FaultPlan: a plane needs at least 2 GPUs, got ",
                   gpus.size());
    proto.group = _nextGroup++;
    for (int s : gpus) {
        for (int d : gpus) {
            if (s == d)
                continue;
            proto.src = s;
            proto.dst = d;
            episodes.push_back(proto);
        }
    }
    return *this;
}

FaultPlan &
FaultPlan::downPlane(Tick start, Tick end, const std::vector<int> &gpus)
{
    FaultEpisode proto;
    proto.kind = FaultKind::LinkDown;
    proto.start = start;
    proto.end = end;
    return addPlane(proto, gpus);
}

FaultPlan &
FaultPlan::degradePlane(Tick start, Tick end, double fraction,
                        const std::vector<int> &gpus)
{
    FaultEpisode proto;
    proto.kind = FaultKind::LinkDegrade;
    proto.start = start;
    proto.end = end;
    proto.severity = fraction;
    return addPlane(proto, gpus);
}

FaultPlan &
FaultPlan::flapLink(std::uint64_t seed, int src, int dst,
                    const LinkLifecycleOptions &options)
{
    if (options.mtbf == 0 || options.mttr == 0 ||
        options.horizon == 0) {
        fatalError("FaultPlan: flapLink needs non-zero mtbf, mttr "
                   "and horizon");
    }

    Rng rng(seed);
    // Inverse-CDF exponential draw with mean @p mean, floored at one
    // tick so windows are never empty. 1 - uniform() keeps the
    // argument of log strictly positive.
    const auto exponential = [&rng](Tick mean) -> Tick {
        const double draw = -static_cast<double>(mean)
            * std::log(1.0 - rng.uniform());
        return std::max<Tick>(1, static_cast<Tick>(draw));
    };

    Tick t = 0;
    for (int i = 0; i < options.maxEpisodes; ++i) {
        t += exponential(options.mtbf); // Up time before the outage.
        if (t >= options.horizon)
            break;
        Tick repair = exponential(options.mttr);
        repair = std::min(repair, options.horizon - t);
        const Tick end = t + repair;
        if (rng.uniform() < options.downProbability) {
            downLink(t, end, src, dst);
        } else {
            const double f = options.minSeverity
                + rng.uniform()
                    * (options.maxSeverity - options.minSeverity);
            degradeLink(t, end, std::clamp(f, 0.01, 0.99), src, dst);
        }
        t = end;
    }
    return *this;
}

FaultPlan
mtbfFaultPlan(std::uint64_t seed, int num_gpus, int num_links,
              const LinkLifecycleOptions &options)
{
    if (num_gpus < 2)
        fatalError("mtbfFaultPlan: needs at least 2 GPUs, got ",
                   num_gpus);
    const int max_links = num_gpus * (num_gpus - 1);
    if (num_links < 1 || num_links > max_links) {
        fatalError("mtbfFaultPlan: num_links must be in [1, ",
                   max_links, "], got ", num_links);
    }

    FaultPlan plan;
    plan.seed = seed;

    // Pick the flapping links by a seeded partial shuffle of all
    // directed pairs, on a stream of its own so the per-link episode
    // streams below stay independent of the choice order.
    std::vector<std::pair<int, int>> links;
    for (int s = 0; s < num_gpus; ++s) {
        for (int d = 0; d < num_gpus; ++d) {
            if (s != d)
                links.emplace_back(s, d);
        }
    }
    Rng picker(deriveSeed(seed, 0));
    for (int k = 0; k < num_links; ++k) {
        const int j = k + static_cast<int>(
            picker.below(links.size() - static_cast<std::size_t>(k)));
        std::swap(links[static_cast<std::size_t>(k)],
                  links[static_cast<std::size_t>(j)]);
    }

    for (int k = 0; k < num_links; ++k) {
        const auto [src, dst] = links[static_cast<std::size_t>(k)];
        plan.flapLink(deriveSeed(seed, static_cast<std::uint64_t>(k)
                                           + 1),
                      src, dst, options);
    }
    plan.validate(num_gpus);
    return plan;
}

FaultPlan
deviceMtbfFaultPlan(std::uint64_t seed, int num_gpus,
                    const DeviceLifecycleOptions &options)
{
    if (num_gpus < 2)
        fatalError("deviceMtbfFaultPlan: needs at least 2 GPUs, got ",
                   num_gpus);
    if (options.mtbf == 0 || options.horizon <= options.earliest)
        fatalError("deviceMtbfFaultPlan: needs non-zero mtbf and a "
                   "non-empty [earliest, horizon) window");
    if (options.maxLosses < 0 || options.maxLosses >= num_gpus) {
        fatalError("deviceMtbfFaultPlan: maxLosses must leave at "
                   "least one survivor, got ", options.maxLosses,
                   " of ", num_gpus);
    }

    FaultPlan plan;
    plan.seed = seed;

    // Per-device exponential up-time draws on independent streams:
    // device g's fate depends only on (seed, g), never on num_gpus.
    std::vector<std::pair<Tick, int>> deaths;
    for (int g = 0; g < num_gpus; ++g) {
        Rng rng(deriveSeed(seed, static_cast<std::uint64_t>(g)));
        const double draw = -static_cast<double>(options.mtbf)
            * std::log(1.0 - rng.uniform());
        const Tick t = options.earliest
            + std::max<Tick>(1, static_cast<Tick>(draw));
        if (t < options.horizon)
            deaths.emplace_back(t, g);
    }

    // Earliest deaths win the maxLosses budget; ties break by GPU id
    // so the campaign is total-ordered and replayable.
    std::sort(deaths.begin(), deaths.end());
    if (static_cast<int>(deaths.size()) > options.maxLosses)
        deaths.resize(static_cast<std::size_t>(options.maxLosses));
    for (const auto &[t, g] : deaths)
        plan.downGpu(t, maxTick, g);

    plan.validate(num_gpus);
    return plan;
}

FaultPlan
randomFaultPlan(std::uint64_t seed, int num_gpus,
                const RandomFaultOptions &options)
{
    if (num_gpus < 2)
        fatalError("randomFaultPlan: needs at least 2 GPUs, got ",
                   num_gpus);
    if (options.latestStart < options.earliestStart ||
        options.maxDuration < options.minDuration ||
        options.minDuration == 0) {
        fatalError("randomFaultPlan: inverted or empty ranges");
    }

    FaultPlan plan;
    plan.seed = seed;
    Rng rng(seed);

    auto draw_window = [&](Tick &start, Tick &end) {
        start = options.earliestStart +
            rng.below(options.latestStart - options.earliestStart + 1);
        end = start + options.minDuration +
            rng.below(options.maxDuration - options.minDuration + 1);
    };
    auto draw_severity = [&] {
        const double f = options.minSeverity +
            rng.uniform() * (options.maxSeverity - options.minSeverity);
        return std::clamp(f, 0.01, 0.99);
    };

    for (int i = 0; i < options.numEvents; ++i) {
        Tick start, end;
        draw_window(start, end);

        if (rng.uniform() < options.planeProbability && num_gpus > 2) {
            // Correlated plane: a distinct random subset of GPUs.
            const int size = std::clamp(options.planeSize, 2, num_gpus);
            std::vector<int> gpus(num_gpus);
            for (int g = 0; g < num_gpus; ++g)
                gpus[g] = g;
            for (int k = 0; k < size; ++k) {
                const int j = k + static_cast<int>(
                    rng.below(gpus.size() - k));
                std::swap(gpus[k], gpus[j]);
            }
            gpus.resize(size);
            std::sort(gpus.begin(), gpus.end());
            if (rng.uniform() < options.downProbability)
                plan.downPlane(start, end, gpus);
            else
                plan.degradePlane(start, end, draw_severity(), gpus);
            continue;
        }

        // Single directed link.
        const int src = static_cast<int>(rng.below(num_gpus));
        int dst = static_cast<int>(rng.below(num_gpus - 1));
        if (dst >= src)
            ++dst;
        if (rng.uniform() < options.downProbability)
            plan.downLink(start, end, src, dst);
        else
            plan.degradeLink(start, end, draw_severity(), src, dst);
    }

    plan.validate(num_gpus);
    return plan;
}

} // namespace proact
