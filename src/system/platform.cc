#include "system/platform.hh"

#include "sim/logging.hh"

namespace proact {

PlatformSpec
keplerPlatform()
{
    return PlatformSpec{"4x Kepler", keplerSpec(), pcie3Fabric(), 4};
}

PlatformSpec
pascalPlatform()
{
    return PlatformSpec{"4x Pascal", pascalSpec(), nvlink1Fabric(), 4};
}

PlatformSpec
voltaPlatform()
{
    return PlatformSpec{"4x Volta", voltaSpec(), nvlink2Fabric(), 4};
}

PlatformSpec
dgx2Platform()
{
    return PlatformSpec{"16x Volta", volta32Spec(), nvswitchFabric(),
                        16};
}

std::vector<PlatformSpec>
quadPlatforms()
{
    return {keplerPlatform(), pascalPlatform(), voltaPlatform()};
}

std::vector<PlatformSpec>
allPlatforms()
{
    return {keplerPlatform(), pascalPlatform(), voltaPlatform(),
            dgx2Platform()};
}

std::vector<int>
dgx2Baseboard(int board)
{
    if (board < 0 || board > 1)
        fatalError("dgx2Baseboard: board must be 0 or 1, got ", board);
    std::vector<int> gpus;
    for (int g = 0; g < dgx2GpusPerBaseboard; ++g)
        gpus.push_back(board * dgx2GpusPerBaseboard + g);
    return gpus;
}

FaultPlan &
dgx2DownSwitchPlanes(FaultPlan &plan, Tick start, Tick end, int planes)
{
    if (planes < 1 || planes >= dgx2NumSwitchPlanes) {
        fatalError("dgx2DownSwitchPlanes: planes must be in [1, ",
                   dgx2NumSwitchPlanes - 1, "], got ", planes);
    }
    std::vector<int> all;
    for (int g = 0; g < dgx2Platform().numGpus; ++g)
        all.push_back(g);
    const double fraction =
        static_cast<double>(planes) / dgx2NumSwitchPlanes;
    return plan.degradePlane(start, end, fraction, all);
}

FaultPlan &
dgx2DownBaseboard(FaultPlan &plan, Tick start, Tick end, int board)
{
    return plan.downPlane(start, end, dgx2Baseboard(board));
}

} // namespace proact
