#include "system/platform.hh"

namespace proact {

PlatformSpec
keplerPlatform()
{
    return PlatformSpec{"4x Kepler", keplerSpec(), pcie3Fabric(), 4};
}

PlatformSpec
pascalPlatform()
{
    return PlatformSpec{"4x Pascal", pascalSpec(), nvlink1Fabric(), 4};
}

PlatformSpec
voltaPlatform()
{
    return PlatformSpec{"4x Volta", voltaSpec(), nvlink2Fabric(), 4};
}

PlatformSpec
dgx2Platform()
{
    return PlatformSpec{"16x Volta", volta32Spec(), nvswitchFabric(),
                        16};
}

std::vector<PlatformSpec>
quadPlatforms()
{
    return {keplerPlatform(), pascalPlatform(), voltaPlatform()};
}

std::vector<PlatformSpec>
allPlatforms()
{
    return {keplerPlatform(), pascalPlatform(), voltaPlatform(),
            dgx2Platform()};
}

} // namespace proact
