#include "system/platform.hh"

#include "sim/logging.hh"

namespace proact {

PlatformSpec
keplerPlatform()
{
    return PlatformSpec{"4x Kepler", keplerSpec(), pcie3Fabric(), 4};
}

PlatformSpec
pascalPlatform()
{
    return PlatformSpec{"4x Pascal", pascalSpec(), nvlink1Fabric(), 4};
}

PlatformSpec
voltaPlatform()
{
    return PlatformSpec{"4x Volta", voltaSpec(), nvlink2Fabric(), 4};
}

PlatformSpec
dgx2Platform()
{
    return PlatformSpec{"16x Volta", volta32Spec(), nvswitchFabric(),
                        16};
}

PlatformSpec
multiNodePlatform(int nodes, int gpus_per_node)
{
    if (nodes < 2)
        fatalError("multiNodePlatform: need >= 2 nodes, got ", nodes);
    if (gpus_per_node < 2) {
        fatalError("multiNodePlatform: need >= 2 GPUs per node, got ",
                   gpus_per_node);
    }

    FabricSpec fabric = nvswitchFabric();
    // Per-pair channels are what lets node tiers carry distinct
    // rate/latency/packet curves — and what the sharded engine's
    // conservative contract binds to.
    fabric.topology = FabricTopology::PairwiseLinks;
    fabric.gpusPerNode = gpus_per_node;

    const FabricSpec inter = ibFabric();
    fabric.interProtocol = inter.protocol;
    fabric.interPerGpuBidirBandwidth = inter.perGpuBidirBandwidth;
    fabric.interLatency = inter.latency;
    if (fabric.interLatency < fabric.latency) {
        fatalError("multiNodePlatform: inter-node latency below the "
                   "intra-node lookahead floor");
    }
    fabric.name = fabric.name + "+" + inter.name;

    PlatformSpec p{std::to_string(nodes) + "x" +
                       std::to_string(gpus_per_node) + " Volta",
                   volta32Spec(), fabric, nodes * gpus_per_node};
    return p;
}

std::vector<PlatformSpec>
quadPlatforms()
{
    return {keplerPlatform(), pascalPlatform(), voltaPlatform()};
}

std::vector<PlatformSpec>
allPlatforms()
{
    return {keplerPlatform(), pascalPlatform(), voltaPlatform(),
            dgx2Platform()};
}

std::vector<int>
dgx2Baseboard(int board, int first_gpu)
{
    if (board < 0 || board > 1)
        fatalError("dgx2Baseboard: board must be 0 or 1, got ", board);
    if (first_gpu < 0) {
        fatalError("dgx2Baseboard: node offset must be >= 0, got ",
                   first_gpu);
    }
    std::vector<int> gpus;
    for (int g = 0; g < dgx2GpusPerBaseboard; ++g)
        gpus.push_back(first_gpu + board * dgx2GpusPerBaseboard + g);
    return gpus;
}

FaultPlan &
dgx2DownSwitchPlanes(FaultPlan &plan, Tick start, Tick end, int planes,
                     int first_gpu)
{
    if (planes < 1 || planes >= dgx2NumSwitchPlanes) {
        fatalError("dgx2DownSwitchPlanes: planes must be in [1, ",
                   dgx2NumSwitchPlanes - 1, "], got ", planes);
    }
    if (first_gpu < 0) {
        fatalError("dgx2DownSwitchPlanes: node offset must be >= 0, "
                   "got ", first_gpu);
    }
    std::vector<int> all;
    for (int g = 0; g < dgx2Platform().numGpus; ++g)
        all.push_back(first_gpu + g);
    const double fraction =
        static_cast<double>(planes) / dgx2NumSwitchPlanes;
    return plan.degradePlane(start, end, fraction, all);
}

FaultPlan &
dgx2DownBaseboard(FaultPlan &plan, Tick start, Tick end, int board,
                  int first_gpu)
{
    return plan.downPlane(start, end,
                          dgx2Baseboard(board, first_gpu));
}

FaultPlan &
nodeDown(FaultPlan &plan, const PlatformSpec &platform, Tick start,
         Tick end, int node)
{
    const FabricSpec &fabric = platform.fabric;
    if (!fabric.multiNode())
        fatalError("nodeDown: platform has a single-node fabric");
    const int nodes = platform.numGpus / fabric.gpusPerNode;
    if (node < 0 || node >= nodes) {
        fatalError("nodeDown: node must be in [0, ", nodes - 1,
                   "], got ", node);
    }
    for (int g = 0; g < fabric.gpusPerNode; ++g)
        plan.downGpu(start, end, node * fabric.gpusPerNode + g);
    return plan;
}

} // namespace proact
