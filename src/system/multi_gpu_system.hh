/**
 * @file
 * Top-level container: N GPUs, their DMA engines, the fabric, and the
 * host.
 *
 * A MultiGpuSystem owns the event queue and everything timed against
 * it. Runtimes (PROACT, cudaMemcpy, UM) operate on a system instance;
 * benchmarks build a fresh system per measured configuration so stats
 * never leak across runs.
 */

#ifndef PROACT_SYSTEM_MULTI_GPU_SYSTEM_HH
#define PROACT_SYSTEM_MULTI_GPU_SYSTEM_HH

#include "faults/fault_injector.hh"
#include "faults/fault_plan.hh"
#include "gpu/dma_engine.hh"
#include "gpu/gpu.hh"
#include "health/device_health.hh"
#include "health/link_health.hh"
#include "interconnect/interconnect.hh"
#include "interconnect/rerouter.hh"
#include "sim/event_queue.hh"
#include "sim/sharded_engine.hh"
#include "system/platform.hh"

#include <algorithm>
#include <functional>
#include <memory>
#include <ostream>
#include <vector>

namespace proact {

/**
 * Host CPU model: API calls (kernel launches, memcpy issues) serialize
 * on the host thread at a fixed cost each, which is part of why bulk
 * DMA paradigms pay per-transfer overhead the paper calls out.
 */
class Host
{
  public:
    explicit Host(EventQueue &eq, Tick op_cost = 2 * ticksPerMicrosecond)
        : _eq(eq), _opCost(op_cost)
    {}

    /**
     * Occupy the host thread for one API call.
     *
     * @param extra_cost Additional serial host time beyond the base
     *        call cost (e.g. DMA-engine programming for
     *        cudaMemcpyPeer, the paper's Sec. II-B initiation
     *        overhead that "can consume several microseconds").
     * @return Tick at which the call has been issued to the device.
     */
    Tick
    issue(Tick extra_cost = 0)
    {
        const Tick start = std::max(_eq.curTick(), _nextFree);
        _nextFree = start + _opCost + extra_cost;
        return _nextFree;
    }

    Tick opCost() const { return _opCost; }

  private:
    EventQueue &_eq;
    Tick _opCost;
    Tick _nextFree = 0;
};

/** A complete simulated multi-GPU machine. */
class MultiGpuSystem
{
  public:
    /**
     * @param sim_shards Shard the paradigm execution across this many
     *        event cores (0 = serial; 1 = a single-shard engine, the
     *        reference side of the determinism gate). Sharding
     *        engages only where
     *        the conservative contract is satisfiable: PairwiseLinks
     *        topologies (per-pair channels bind cleanly to source
     *        shards) with a non-zero link latency to serve as the
     *        lookahead, and at least two GPUs; otherwise the request
     *        silently degrades to the serial engine.
     */
    explicit MultiGpuSystem(const PlatformSpec &platform,
                            int sim_shards = 0);

    MultiGpuSystem(const MultiGpuSystem &) = delete;
    MultiGpuSystem &operator=(const MultiGpuSystem &) = delete;

    const PlatformSpec &platform() const { return _platform; }
    int numGpus() const { return _platform.numGpus; }

    EventQueue &eventQueue() { return _eq; }

    /** Whether this system executes its paradigm runs sharded. */
    bool sharded() const { return _engine != nullptr; }

    /** The sharded engine, or nullptr on a serial system. */
    ShardedEventEngine *engine() { return _engine.get(); }
    const ShardedEventEngine *engine() const { return _engine.get(); }

    /** Home shard of GPU @p g (0 on a serial system). */
    int shardOf(int g) const { return _engine ? _shardOf.at(g) : 0; }

    /**
     * Event core GPU @p g's timed components live on: its home
     * shard's queue when sharded, the system queue otherwise. Agents
     * and instrumentation schedule all GPU-local work here.
     */
    EventQueue &
    queueFor(int g)
    {
        return _engine ? _engine->shard(_shardOf.at(g)) : _eq;
    }

    /**
     * Serial control queue: fault episode boundaries, health
     * monitors and watchdogs, host-issued launches. Runs between
     * windows when sharded; aliases the system queue otherwise.
     */
    EventQueue &
    serialQueue()
    {
        return _engine ? _engine->global() : _eq;
    }

    /**
     * Current simulated time. Sharded: the latest shard clock folded
     * with the global clock — an N-invariant quantity between
     * windows, where all serial model code runs.
     */
    Tick
    now() const
    {
        if (_engine) {
            return std::max(_engine->maxShardTick(),
                            _engine->global().curTick());
        }
        return _eq.curTick();
    }

    Gpu &gpu(int i) { return *_gpus.at(i); }
    DmaEngine &dma(int i) { return *_dmas.at(i); }
    Interconnect &fabric() { return *_fabric; }
    Host &host() { return _host; }

    /** Toggle timing-only mode on every GPU. */
    void setFunctional(bool functional);

    /**
     * Arm a fault schedule on this system: the injector registers
     * every DMA engine, installs the fabric fault filter, and
     * schedules the plan's episode boundaries. PROACT runs on a
     * faulted system need retry enabled (TransferConfig::retry) or
     * lost deliveries will be reported as missing at phase end.
     *
     * @return The owned injector (for stats/trace access).
     */
    FaultInjector &installFaults(FaultPlan plan);

    /** The armed injector, or nullptr on a fault-free system. */
    FaultInjector *faults() { return _faults.get(); }
    const FaultInjector *faults() const { return _faults.get(); }

    /**
     * Start per-link health monitoring: the monitor observes every
     * fabric delivery/drop and classifies links HEALTHY / DEGRADED /
     * DOWN with hysteresis. Idempotent; the policy of the first call
     * wins.
     */
    LinkHealthMonitor &enableHealth(HealthPolicy policy = {});

    /**
     * Enable topology-aware rerouting (implies enableHealth): agents,
     * collectives and DMA engines detour around DOWN links and split
     * traffic across DEGRADED ones. Idempotent.
     */
    Rerouter &enableReroute(ReroutePolicy policy = {});

    /** The health monitor, or nullptr when disabled. */
    LinkHealthMonitor *health() { return _health.get(); }
    const LinkHealthMonitor *health() const { return _health.get(); }

    /**
     * Start the whole-device watchdog (see device_health.hh). When a
     * device is declared LOST the system reacts as one unit: the
     * fabric quiesces every tracked in-flight transfer touching the
     * device, and the link monitor (when enabled) marks every link
     * touching it DOWN — which push-invalidates the rerouter's plan
     * cache. External layers (the harness's abort path, the fleet's
     * recovery policy) observe the same declaration via
     * deviceHealth()->addListener. Idempotent; the first policy wins.
     */
    DeviceHealthMonitor &enableDeviceHealth(
        DeviceHealthPolicy policy = {});

    /** The device watchdog, or nullptr when disabled. */
    DeviceHealthMonitor *deviceHealth() { return _deviceHealth.get(); }
    const DeviceHealthMonitor *deviceHealth() const
    {
        return _deviceHealth.get();
    }

    /** GPUs declared LOST (empty when the watchdog is off). */
    std::vector<int>
    lostDevices() const
    {
        return _deviceHealth ? _deviceHealth->lostDevices()
                             : std::vector<int>{};
    }

    bool
    anyDeviceLost() const
    {
        return _deviceHealth && _deviceHealth->anyLost();
    }

    /** The rerouter, or nullptr when disabled. */
    Rerouter *rerouter() { return _rerouter.get(); }
    const Rerouter *rerouter() const { return _rerouter.get(); }

    /** Drain the event queue (all shards and mail when sharded). */
    void
    run()
    {
        if (_engine)
            _engine->run();
        else
            _eq.run();
    }

    /**
     * Drain while @p pred holds. Sharded, the predicate is evaluated
     * at window barriers (the stop is window-quantized); serial, it
     * is re-checked before every event — the runtime's
     * "drain until accounted" loop in both shapes.
     */
    void drainWhile(const std::function<bool()> &pred);

    /**
     * Run every event at or before @p limit and leave all clocks at
     * exactly @p limit — the timeline-advance primitive behind
     * checkpoint and reprofile charges.
     */
    void runTimelineTo(Tick limit);

    /**
     * Dump per-GPU and fabric statistics (kernel counts, channel
     * utilization, goodput) for post-run inspection.
     */
    void dumpStats(std::ostream &os);

    /**
     * Attach a span tracer to every GPU and the fabric (nullptr
     * detaches). Used by the Fig. 1 timeline harness.
     */
    void setTrace(Trace *trace);

    /**
     * The attached tracer (nullptr when tracing is off). Agents read
     * this at construction, so attach the trace before building
     * runtimes that should record retry/fallback spans.
     */
    Trace *trace() const { return _trace; }

  private:
    PlatformSpec _platform;
    EventQueue _eq;
    /** Declared before _host so _host(serialQueue()) is safe. */
    std::unique_ptr<ShardedEventEngine> _engine;
    std::vector<int> _shardOf;
    std::unique_ptr<Interconnect> _fabric;
    std::vector<std::unique_ptr<Gpu>> _gpus;
    std::vector<std::unique_ptr<DmaEngine>> _dmas;
    std::unique_ptr<FaultInjector> _faults;
    std::unique_ptr<LinkHealthMonitor> _health;
    std::unique_ptr<DeviceHealthMonitor> _deviceHealth;
    std::unique_ptr<Rerouter> _rerouter;
    Host _host;
    Trace *_trace = nullptr;

    /** Injector GpuDown boundaries re-arm the watchdog promptly. */
    void wireDeviceWatchdog();
};

} // namespace proact

#endif // PROACT_SYSTEM_MULTI_GPU_SYSTEM_HH
