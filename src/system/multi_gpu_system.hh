/**
 * @file
 * Top-level container: N GPUs, their DMA engines, the fabric, and the
 * host.
 *
 * A MultiGpuSystem owns the event queue and everything timed against
 * it. Runtimes (PROACT, cudaMemcpy, UM) operate on a system instance;
 * benchmarks build a fresh system per measured configuration so stats
 * never leak across runs.
 */

#ifndef PROACT_SYSTEM_MULTI_GPU_SYSTEM_HH
#define PROACT_SYSTEM_MULTI_GPU_SYSTEM_HH

#include "faults/fault_injector.hh"
#include "faults/fault_plan.hh"
#include "gpu/dma_engine.hh"
#include "gpu/gpu.hh"
#include "health/device_health.hh"
#include "health/link_health.hh"
#include "interconnect/interconnect.hh"
#include "interconnect/rerouter.hh"
#include "sim/event_queue.hh"
#include "system/platform.hh"

#include <memory>
#include <ostream>
#include <vector>

namespace proact {

/**
 * Host CPU model: API calls (kernel launches, memcpy issues) serialize
 * on the host thread at a fixed cost each, which is part of why bulk
 * DMA paradigms pay per-transfer overhead the paper calls out.
 */
class Host
{
  public:
    explicit Host(EventQueue &eq, Tick op_cost = 2 * ticksPerMicrosecond)
        : _eq(eq), _opCost(op_cost)
    {}

    /**
     * Occupy the host thread for one API call.
     *
     * @param extra_cost Additional serial host time beyond the base
     *        call cost (e.g. DMA-engine programming for
     *        cudaMemcpyPeer, the paper's Sec. II-B initiation
     *        overhead that "can consume several microseconds").
     * @return Tick at which the call has been issued to the device.
     */
    Tick
    issue(Tick extra_cost = 0)
    {
        const Tick start = std::max(_eq.curTick(), _nextFree);
        _nextFree = start + _opCost + extra_cost;
        return _nextFree;
    }

    Tick opCost() const { return _opCost; }

  private:
    EventQueue &_eq;
    Tick _opCost;
    Tick _nextFree = 0;
};

/** A complete simulated multi-GPU machine. */
class MultiGpuSystem
{
  public:
    explicit MultiGpuSystem(const PlatformSpec &platform);

    MultiGpuSystem(const MultiGpuSystem &) = delete;
    MultiGpuSystem &operator=(const MultiGpuSystem &) = delete;

    const PlatformSpec &platform() const { return _platform; }
    int numGpus() const { return _platform.numGpus; }

    EventQueue &eventQueue() { return _eq; }
    Tick now() const { return _eq.curTick(); }

    Gpu &gpu(int i) { return *_gpus.at(i); }
    DmaEngine &dma(int i) { return *_dmas.at(i); }
    Interconnect &fabric() { return *_fabric; }
    Host &host() { return _host; }

    /** Toggle timing-only mode on every GPU. */
    void setFunctional(bool functional);

    /**
     * Arm a fault schedule on this system: the injector registers
     * every DMA engine, installs the fabric fault filter, and
     * schedules the plan's episode boundaries. PROACT runs on a
     * faulted system need retry enabled (TransferConfig::retry) or
     * lost deliveries will be reported as missing at phase end.
     *
     * @return The owned injector (for stats/trace access).
     */
    FaultInjector &installFaults(FaultPlan plan);

    /** The armed injector, or nullptr on a fault-free system. */
    FaultInjector *faults() { return _faults.get(); }
    const FaultInjector *faults() const { return _faults.get(); }

    /**
     * Start per-link health monitoring: the monitor observes every
     * fabric delivery/drop and classifies links HEALTHY / DEGRADED /
     * DOWN with hysteresis. Idempotent; the policy of the first call
     * wins.
     */
    LinkHealthMonitor &enableHealth(HealthPolicy policy = {});

    /**
     * Enable topology-aware rerouting (implies enableHealth): agents,
     * collectives and DMA engines detour around DOWN links and split
     * traffic across DEGRADED ones. Idempotent.
     */
    Rerouter &enableReroute(ReroutePolicy policy = {});

    /** The health monitor, or nullptr when disabled. */
    LinkHealthMonitor *health() { return _health.get(); }
    const LinkHealthMonitor *health() const { return _health.get(); }

    /**
     * Start the whole-device watchdog (see device_health.hh). When a
     * device is declared LOST the system reacts as one unit: the
     * fabric quiesces every tracked in-flight transfer touching the
     * device, and the link monitor (when enabled) marks every link
     * touching it DOWN — which push-invalidates the rerouter's plan
     * cache. External layers (the harness's abort path, the fleet's
     * recovery policy) observe the same declaration via
     * deviceHealth()->addListener. Idempotent; the first policy wins.
     */
    DeviceHealthMonitor &enableDeviceHealth(
        DeviceHealthPolicy policy = {});

    /** The device watchdog, or nullptr when disabled. */
    DeviceHealthMonitor *deviceHealth() { return _deviceHealth.get(); }
    const DeviceHealthMonitor *deviceHealth() const
    {
        return _deviceHealth.get();
    }

    /** GPUs declared LOST (empty when the watchdog is off). */
    std::vector<int>
    lostDevices() const
    {
        return _deviceHealth ? _deviceHealth->lostDevices()
                             : std::vector<int>{};
    }

    bool
    anyDeviceLost() const
    {
        return _deviceHealth && _deviceHealth->anyLost();
    }

    /** The rerouter, or nullptr when disabled. */
    Rerouter *rerouter() { return _rerouter.get(); }
    const Rerouter *rerouter() const { return _rerouter.get(); }

    /** Drain the event queue. */
    void run() { _eq.run(); }

    /**
     * Dump per-GPU and fabric statistics (kernel counts, channel
     * utilization, goodput) for post-run inspection.
     */
    void dumpStats(std::ostream &os);

    /**
     * Attach a span tracer to every GPU and the fabric (nullptr
     * detaches). Used by the Fig. 1 timeline harness.
     */
    void setTrace(Trace *trace);

    /**
     * The attached tracer (nullptr when tracing is off). Agents read
     * this at construction, so attach the trace before building
     * runtimes that should record retry/fallback spans.
     */
    Trace *trace() const { return _trace; }

  private:
    PlatformSpec _platform;
    EventQueue _eq;
    std::unique_ptr<Interconnect> _fabric;
    std::vector<std::unique_ptr<Gpu>> _gpus;
    std::vector<std::unique_ptr<DmaEngine>> _dmas;
    std::unique_ptr<FaultInjector> _faults;
    std::unique_ptr<LinkHealthMonitor> _health;
    std::unique_ptr<DeviceHealthMonitor> _deviceHealth;
    std::unique_ptr<Rerouter> _rerouter;
    Host _host;
    Trace *_trace = nullptr;

    /** Injector GpuDown boundaries re-arm the watchdog promptly. */
    void wireDeviceWatchdog();
};

} // namespace proact

#endif // PROACT_SYSTEM_MULTI_GPU_SYSTEM_HH
