/**
 * @file
 * The four test platforms of the paper's Table I.
 *
 * Each platform pairs a GPU model with its fabric and a default GPU
 * count; strong-scaling studies (Fig. 10) instantiate the same
 * platform at smaller GPU counts.
 */

#ifndef PROACT_SYSTEM_PLATFORM_HH
#define PROACT_SYSTEM_PLATFORM_HH

#include "gpu/gpu_spec.hh"
#include "interconnect/fabric.hh"

#include <string>
#include <vector>

namespace proact {

/** One row of Table I. */
struct PlatformSpec
{
    std::string name; ///< e.g. "4x Volta".
    GpuSpec gpu;
    FabricSpec fabric;
    int numGpus;

    /** Copy of this platform with a different GPU count. */
    PlatformSpec
    withGpuCount(int n) const
    {
        PlatformSpec p = *this;
        p.numGpus = n;
        p.name = std::to_string(n) + "x " + archName(gpu.arch);
        return p;
    }
};

/** 4x Tesla K40m over PCIe3 (Table I column 1). */
PlatformSpec keplerPlatform();

/** 4x Tesla P100 over NVLink (Table I column 2). */
PlatformSpec pascalPlatform();

/** 4x Tesla V100 over NVLink2 (Table I column 3). */
PlatformSpec voltaPlatform();

/** 16x Tesla V100-32GB over NVSwitch, i.e. DGX-2 (Table I column 4). */
PlatformSpec dgx2Platform();

/** The three 4-GPU platforms used in Figs. 6-9. */
std::vector<PlatformSpec> quadPlatforms();

/** All four Table I platforms. */
std::vector<PlatformSpec> allPlatforms();

} // namespace proact

#endif // PROACT_SYSTEM_PLATFORM_HH
