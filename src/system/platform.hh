/**
 * @file
 * The four test platforms of the paper's Table I.
 *
 * Each platform pairs a GPU model with its fabric and a default GPU
 * count; strong-scaling studies (Fig. 10) instantiate the same
 * platform at smaller GPU counts.
 */

#ifndef PROACT_SYSTEM_PLATFORM_HH
#define PROACT_SYSTEM_PLATFORM_HH

#include "faults/fault_plan.hh"
#include "gpu/gpu_spec.hh"
#include "interconnect/fabric.hh"

#include <string>
#include <vector>

namespace proact {

/** One row of Table I. */
struct PlatformSpec
{
    std::string name; ///< e.g. "4x Volta".
    GpuSpec gpu;
    FabricSpec fabric;
    int numGpus;

    /** Copy of this platform with a different GPU count. */
    PlatformSpec
    withGpuCount(int n) const
    {
        PlatformSpec p = *this;
        p.numGpus = n;
        p.name = std::to_string(n) + "x " + archName(gpu.arch);
        return p;
    }
};

/** 4x Tesla K40m over PCIe3 (Table I column 1). */
PlatformSpec keplerPlatform();

/** 4x Tesla P100 over NVLink (Table I column 2). */
PlatformSpec pascalPlatform();

/** 4x Tesla V100 over NVLink2 (Table I column 3). */
PlatformSpec voltaPlatform();

/** 16x Tesla V100-32GB over NVSwitch, i.e. DGX-2 (Table I column 4). */
PlatformSpec dgx2Platform();

/**
 * Hierarchical multi-node platform: @p nodes DGX-2-style chassis of
 * @p gpus_per_node V100s each. Pairs inside a node ride the chassis
 * NVSwitch tier; pairs crossing a node boundary ride an HDR-IB-class
 * network tier (ibFabric) with its own bandwidth, latency and
 * packetization curve. Built on PairwiseLinks so every directed pair
 * owns a channel and the sharded engine's conservative contract is
 * satisfiable: the fabric's base latency stays the intra-node
 * (minimum) hop delay, the inter-node latency is strictly larger.
 *
 * @p nodes must be >= 2 and @p gpus_per_node >= 2.
 */
PlatformSpec multiNodePlatform(int nodes, int gpus_per_node = 16);

/** The three 4-GPU platforms used in Figs. 6-9. */
std::vector<PlatformSpec> quadPlatforms();

/** All four Table I platforms. */
std::vector<PlatformSpec> allPlatforms();

/** @{ @name DGX-2 fault topology
 *
 * The DGX-2 chassis is two baseboards of 8 GPUs; each GPU's six
 * NVLink ports ride six parallel NVSwitch planes, each plane carrying
 * 1/6 of every pair's bandwidth. Physical failures are therefore
 * correlated: a plane dying shaves 1/6 off all 240 directed pairs at
 * once, and a baseboard's switch complex dying severs every
 * intra-board pair on that side while cross-board trunks (served by
 * the surviving board) live on. These helpers express those grouped
 * events as FaultPlan plane episodes so benchmarks and tests model
 * chassis-level faults instead of hand-picking links.
 */

/** Parallel NVSwitch planes per DGX-2 chassis. */
constexpr int dgx2NumSwitchPlanes = 6;

/** GPUs per DGX-2 baseboard. */
constexpr int dgx2GpusPerBaseboard = 8;

/**
 * GPU ids of baseboard @p board (0 => {0..7}, 1 => {8..15}), shifted
 * by @p first_gpu so the same chassis builder addresses node k of a
 * multi-node platform (first_gpu = k * gpusPerNode).
 */
std::vector<int> dgx2Baseboard(int board, int first_gpu = 0);

/**
 * @p planes of the six NVSwitch planes die for [start, end):
 * every directed pair among the chassis' 16 GPUs (ids first_gpu ..
 * first_gpu+15) loses planes/6 of its bandwidth, as one correlated
 * plane group. @p planes in [1, 5] — all six dying is a chassis loss
 * no reroute can survive.
 */
FaultPlan &dgx2DownSwitchPlanes(FaultPlan &plan, Tick start, Tick end,
                                int planes = 1, int first_gpu = 0);

/**
 * Baseboard @p board's switch complex dies for [start, end): all
 * intra-board directed pairs go DOWN as one correlated group.
 * Cross-board pairs survive on the other board's switches, so
 * multi-relay routes through the healthy board remain plannable.
 * @p first_gpu addresses the chassis of one node (see dgx2Baseboard).
 */
FaultPlan &dgx2DownBaseboard(FaultPlan &plan, Tick start, Tick end,
                             int board, int first_gpu = 0);

/**
 * Node @p node of @p platform dies whole for [start, end): every GPU
 * in the node goes down as one correlated device group (the fabric
 * refuses its deliveries, the watchdog declares the devices LOST, and
 * every link touching the node follows). Requires a multiNode fabric.
 */
FaultPlan &nodeDown(FaultPlan &plan, const PlatformSpec &platform,
                    Tick start, Tick end, int node);
/** @} */

} // namespace proact

#endif // PROACT_SYSTEM_PLATFORM_HH
