#include "system/multi_gpu_system.hh"

#include "sim/logging.hh"

namespace proact {

namespace {

/** See the MultiGpuSystem constructor doc for the gating rules. */
std::unique_ptr<ShardedEventEngine>
makeEngine(const PlatformSpec &platform, int sim_shards)
{
    // sim_shards == 1 still builds the (single-shard) engine: it is
    // the reference side of the determinism gate, and must run the
    // same posting discipline as every other shard count.
    if (sim_shards < 1 || platform.numGpus < 2)
        return nullptr;
    if (platform.fabric.topology != FabricTopology::PairwiseLinks)
        return nullptr;
    if (platform.fabric.latency == 0)
        return nullptr;

    ShardedEventEngine::Options opts;
    opts.numShards = std::min(sim_shards, platform.numGpus);
    // The minimum cross-GPU delay is one link latency (every
    // delivery, ack and zero-byte hand-off pays it), so it bounds
    // the conservative lookahead from below.
    opts.lookahead = platform.fabric.latency;
    opts.workers = opts.numShards;
    return std::make_unique<ShardedEventEngine>(opts);
}

} // namespace

MultiGpuSystem::MultiGpuSystem(const PlatformSpec &platform,
                               int sim_shards)
    : _platform(platform), _engine(makeEngine(platform, sim_shards)),
      _host(serialQueue())
{
    if (platform.numGpus < 1)
        fatalError("MultiGpuSystem: need at least one GPU");

    if (_engine) {
        _shardOf.resize(platform.numGpus);
        for (int g = 0; g < platform.numGpus; ++g)
            _shardOf[g] = g * _engine->numShards() / platform.numGpus;
        // One post stream per source GPU: the merge order of
        // cross-shard mail survives re-binding to a different shard
        // count, which is the determinism gate's whole premise.
        _engine->setStreamCount(platform.numGpus);
    }

    _fabric = std::make_unique<Interconnect>(
        serialQueue(), platform.fabric, platform.numGpus);
    if (_engine)
        _fabric->bindShards(*_engine, _shardOf);

    _gpus.reserve(platform.numGpus);
    _dmas.reserve(platform.numGpus);
    for (int g = 0; g < platform.numGpus; ++g) {
        _gpus.push_back(
            std::make_unique<Gpu>(queueFor(g), platform.gpu, g));
        _dmas.push_back(std::make_unique<DmaEngine>(
            queueFor(g), *_gpus.back(), *_fabric));
    }
}

void
MultiGpuSystem::drainWhile(const std::function<bool()> &pred)
{
    if (_engine) {
        _engine->runWhile(pred);
        return;
    }
    while (!_eq.empty() && pred())
        _eq.runNext();
}

void
MultiGpuSystem::runTimelineTo(Tick limit)
{
    if (_engine) {
        _engine->runUntil(limit);
        // Everything at or before the limit has dispatched, so these
        // floors never clamp short of it.
        for (int s = 0; s < _engine->numShards(); ++s)
            _engine->shard(s).advanceTo(limit);
        _engine->global().advanceTo(limit);
    } else {
        _eq.runUntil(limit);
    }
}

void
MultiGpuSystem::setFunctional(bool functional)
{
    for (auto &g : _gpus)
        g->setFunctional(functional);
}

FaultInjector &
MultiGpuSystem::installFaults(FaultPlan plan)
{
    if (_faults)
        fatalError("MultiGpuSystem: faults already installed");
    _faults = std::make_unique<FaultInjector>(serialQueue(), *_fabric,
                                              std::move(plan));
    for (int g = 0; g < numGpus(); ++g)
        _faults->addDmaEngine(g, *_dmas[g]);
    _faults->setTrace(_trace);
    _faults->arm();
    wireDeviceWatchdog();
    return *_faults;
}

void
MultiGpuSystem::wireDeviceWatchdog()
{
    if (!_faults || !_deviceHealth)
        return;
    // The watchdog discovers a death by sampling, but its heartbeat
    // is only armed while the run is live; the injector's episode
    // boundary re-arms it directly so a GpuDown window that opens in
    // a quiet stretch is still discovered within the miss budget.
    DeviceHealthMonitor *watchdog = _deviceHealth.get();
    _faults->addDeviceDownListener(
        [watchdog](int, Tick) { watchdog->poke(); });
    _faults->addDeviceUpListener([watchdog](int) {
        watchdog->poke();
    });
}

DeviceHealthMonitor &
MultiGpuSystem::enableDeviceHealth(DeviceHealthPolicy policy)
{
    if (!_deviceHealth) {
        _deviceHealth = std::make_unique<DeviceHealthMonitor>(
            serialQueue(), *_fabric, policy);
        // The watchdog's heartbeat re-arms on pending events of its
        // own (global) queue; sharded, the run's liveness signal is
        // the shards', so wire it in or the heartbeat dies while the
        // phase is still executing.
        if (_engine) {
            _deviceHealth->setLivenessProbe(
                [engine = _engine.get()] {
                    return engine->shardEventsPending();
                });
        }
        // A LOST declaration quiesces the fabric and shadows the loss
        // into the link monitor (forcing every touching link DOWN,
        // which push-invalidates the rerouter's plan cache). External
        // layers add their own listeners on top.
        _deviceHealth->addListener(
            [this](int gpu, DeviceState, DeviceState to) {
                if (to != DeviceState::Lost)
                    return;
                _fabric->quiesceDevice(gpu);
                if (_health)
                    _health->markDeviceLost(gpu);
            });
        wireDeviceWatchdog();
    }
    return *_deviceHealth;
}

LinkHealthMonitor &
MultiGpuSystem::enableHealth(HealthPolicy policy)
{
    if (!_health) {
        _health = std::make_unique<LinkHealthMonitor>(
            serialQueue(), *_fabric, policy);
    }
    return *_health;
}

Rerouter &
MultiGpuSystem::enableReroute(ReroutePolicy policy)
{
    if (!_rerouter) {
        enableHealth();
        _rerouter = std::make_unique<Rerouter>(serialQueue(), *_fabric,
                                               *_health, policy);
        // The monitor's transition fan-out drives the plan cache:
        // wire transitions push-evict exactly the plans that read the
        // link, and quiet-fabric sends stop reading health epochs
        // altogether. Congestion flips pass through without evicting.
        _rerouter->enablePushInvalidation();
        Rerouter *rerouter = _rerouter.get();
        _health->addListener(
            [rerouter](int src, int dst, LinkState from,
                       LinkState to) {
                rerouter->onLinkTransition(src, dst, from, to);
            });
        for (auto &dma : _dmas)
            dma->setRerouter(_rerouter.get());
    }
    return *_rerouter;
}

void
MultiGpuSystem::setTrace(Trace *trace)
{
    _trace = trace;
    for (auto &g : _gpus)
        g->setTrace(trace);
    _fabric->setTrace(trace);
    if (_faults)
        _faults->setTrace(trace);
}

void
MultiGpuSystem::dumpStats(std::ostream &os)
{
    const Tick now = this->now();
    os << "system: " << _platform.name << " @ "
       << secondsFromTicks(now) * 1e3 << " ms simulated\n";

    for (std::size_t g = 0; g < _gpus.size(); ++g) {
        os << "gpu" << g << ":\n";
        _gpus[g]->stats.dump(os, "  ");
        const Channel &hbm = _gpus[g]->hbm();
        os << "  hbm.bytes = " << hbm.payloadBytes() << "\n";
        os << "  hbm.utilization = " << hbm.utilization(now) << "\n";
    }

    Interconnect &fabric = *_fabric;
    os << "fabric: payload " << fabric.totalPayloadBytes()
       << " B, wire " << fabric.totalWireBytes() << " B, "
       << fabric.totalStoreTransactions() << " store transactions\n";
    for (int g = 0; g < _platform.numGpus; ++g) {
        os << "  gpu" << g
           << ".egress.util = " << fabric.egress(g).utilization(now)
           << "  ingress.util = "
           << fabric.ingress(g).utilization(now) << "\n";
    }
    if (fabric.hasCore()) {
        os << "  core.util = " << fabric.core().utilization(now)
           << "\n";
    }
    if (_faults) {
        os << "faults:\n";
        _faults->stats().dump(os, "  ");
        os << "  fabric.dropped_deliveries = "
           << fabric.droppedDeliveries() << "\n";
        if (fabric.rebooking()) {
            os << "  fabric.rebooked_deliveries = "
               << fabric.rebookedDeliveries() << "\n";
        }
    }
    if (_health) {
        os << "health:\n";
        _health->stats().dump(os, "  ");
        for (const auto &t : _health->transitions())
            os << "  " << t.describe() << "\n";
    }
    if (_deviceHealth) {
        os << "device_health:\n";
        _deviceHealth->stats().dump(os, "  ");
        for (const auto &t : _deviceHealth->transitions())
            os << "  " << t.describe() << "\n";
        os << "  fabric.refused_deliveries = "
           << fabric.refusedDeliveries() << "\n";
        os << "  fabric.quiesced_flights = "
           << fabric.quiescedFlights() << "\n";
    }
    if (_rerouter) {
        os << "reroute:\n";
        _rerouter->stats().dump(os, "  ");
    }
}

} // namespace proact
