#include "system/multi_gpu_system.hh"

#include "sim/logging.hh"

namespace proact {

MultiGpuSystem::MultiGpuSystem(const PlatformSpec &platform)
    : _platform(platform), _host(_eq)
{
    if (platform.numGpus < 1)
        fatalError("MultiGpuSystem: need at least one GPU");

    _fabric = std::make_unique<Interconnect>(_eq, platform.fabric,
                                             platform.numGpus);
    _gpus.reserve(platform.numGpus);
    _dmas.reserve(platform.numGpus);
    for (int g = 0; g < platform.numGpus; ++g) {
        _gpus.push_back(std::make_unique<Gpu>(_eq, platform.gpu, g));
        _dmas.push_back(
            std::make_unique<DmaEngine>(_eq, *_gpus.back(), *_fabric));
    }
}

void
MultiGpuSystem::setFunctional(bool functional)
{
    for (auto &g : _gpus)
        g->setFunctional(functional);
}

FaultInjector &
MultiGpuSystem::installFaults(FaultPlan plan)
{
    if (_faults)
        fatalError("MultiGpuSystem: faults already installed");
    _faults = std::make_unique<FaultInjector>(_eq, *_fabric,
                                              std::move(plan));
    for (int g = 0; g < numGpus(); ++g)
        _faults->addDmaEngine(g, *_dmas[g]);
    _faults->setTrace(_trace);
    _faults->arm();
    wireDeviceWatchdog();
    return *_faults;
}

void
MultiGpuSystem::wireDeviceWatchdog()
{
    if (!_faults || !_deviceHealth)
        return;
    // The watchdog discovers a death by sampling, but its heartbeat
    // is only armed while the run is live; the injector's episode
    // boundary re-arms it directly so a GpuDown window that opens in
    // a quiet stretch is still discovered within the miss budget.
    DeviceHealthMonitor *watchdog = _deviceHealth.get();
    _faults->addDeviceDownListener(
        [watchdog](int, Tick) { watchdog->poke(); });
    _faults->addDeviceUpListener([watchdog](int) {
        watchdog->poke();
    });
}

DeviceHealthMonitor &
MultiGpuSystem::enableDeviceHealth(DeviceHealthPolicy policy)
{
    if (!_deviceHealth) {
        _deviceHealth = std::make_unique<DeviceHealthMonitor>(
            _eq, *_fabric, policy);
        // A LOST declaration quiesces the fabric and shadows the loss
        // into the link monitor (forcing every touching link DOWN,
        // which push-invalidates the rerouter's plan cache). External
        // layers add their own listeners on top.
        _deviceHealth->addListener(
            [this](int gpu, DeviceState, DeviceState to) {
                if (to != DeviceState::Lost)
                    return;
                _fabric->quiesceDevice(gpu);
                if (_health)
                    _health->markDeviceLost(gpu);
            });
        wireDeviceWatchdog();
    }
    return *_deviceHealth;
}

LinkHealthMonitor &
MultiGpuSystem::enableHealth(HealthPolicy policy)
{
    if (!_health) {
        _health = std::make_unique<LinkHealthMonitor>(_eq, *_fabric,
                                                      policy);
    }
    return *_health;
}

Rerouter &
MultiGpuSystem::enableReroute(ReroutePolicy policy)
{
    if (!_rerouter) {
        enableHealth();
        _rerouter = std::make_unique<Rerouter>(_eq, *_fabric, *_health,
                                               policy);
        // The monitor's transition fan-out drives the plan cache:
        // wire transitions push-evict exactly the plans that read the
        // link, and quiet-fabric sends stop reading health epochs
        // altogether. Congestion flips pass through without evicting.
        _rerouter->enablePushInvalidation();
        Rerouter *rerouter = _rerouter.get();
        _health->addListener(
            [rerouter](int src, int dst, LinkState from,
                       LinkState to) {
                rerouter->onLinkTransition(src, dst, from, to);
            });
        for (auto &dma : _dmas)
            dma->setRerouter(_rerouter.get());
    }
    return *_rerouter;
}

void
MultiGpuSystem::setTrace(Trace *trace)
{
    _trace = trace;
    for (auto &g : _gpus)
        g->setTrace(trace);
    _fabric->setTrace(trace);
    if (_faults)
        _faults->setTrace(trace);
}

void
MultiGpuSystem::dumpStats(std::ostream &os)
{
    const Tick now = _eq.curTick();
    os << "system: " << _platform.name << " @ "
       << secondsFromTicks(now) * 1e3 << " ms simulated\n";

    for (std::size_t g = 0; g < _gpus.size(); ++g) {
        os << "gpu" << g << ":\n";
        _gpus[g]->stats.dump(os, "  ");
        const Channel &hbm = _gpus[g]->hbm();
        os << "  hbm.bytes = " << hbm.payloadBytes() << "\n";
        os << "  hbm.utilization = " << hbm.utilization(now) << "\n";
    }

    Interconnect &fabric = *_fabric;
    os << "fabric: payload " << fabric.totalPayloadBytes()
       << " B, wire " << fabric.totalWireBytes() << " B, "
       << fabric.totalStoreTransactions() << " store transactions\n";
    for (int g = 0; g < _platform.numGpus; ++g) {
        os << "  gpu" << g
           << ".egress.util = " << fabric.egress(g).utilization(now)
           << "  ingress.util = "
           << fabric.ingress(g).utilization(now) << "\n";
    }
    if (fabric.hasCore()) {
        os << "  core.util = " << fabric.core().utilization(now)
           << "\n";
    }
    if (_faults) {
        os << "faults:\n";
        _faults->stats().dump(os, "  ");
        os << "  fabric.dropped_deliveries = "
           << fabric.droppedDeliveries() << "\n";
        if (fabric.rebooking()) {
            os << "  fabric.rebooked_deliveries = "
               << fabric.rebookedDeliveries() << "\n";
        }
    }
    if (_health) {
        os << "health:\n";
        _health->stats().dump(os, "  ");
        for (const auto &t : _health->transitions())
            os << "  " << t.describe() << "\n";
    }
    if (_deviceHealth) {
        os << "device_health:\n";
        _deviceHealth->stats().dump(os, "  ");
        for (const auto &t : _deviceHealth->transitions())
            os << "  " << t.describe() << "\n";
        os << "  fabric.refused_deliveries = "
           << fabric.refusedDeliveries() << "\n";
        os << "  fabric.quiesced_flights = "
           << fabric.quiescedFlights() << "\n";
    }
    if (_rerouter) {
        os << "reroute:\n";
        _rerouter->stats().dump(os, "  ");
    }
}

} // namespace proact
