#include "health/device_health.hh"

#include "sim/logging.hh"

#include <sstream>

namespace proact {

std::string
deviceStateName(DeviceState state)
{
    switch (state) {
      case DeviceState::Healthy:
        return "HEALTHY";
      case DeviceState::Suspect:
        return "SUSPECT";
      case DeviceState::Lost:
        return "LOST";
    }
    return "unknown";
}

std::string
DeviceHealthMonitor::Transition::describe() const
{
    std::ostringstream oss;
    oss << "t=" << tick << " gpu" << gpu << " "
        << deviceStateName(from) << " -> " << deviceStateName(to);
    return oss.str();
}

DeviceHealthMonitor::DeviceHealthMonitor(EventQueue &eq,
                                         Interconnect &fabric,
                                         DeviceHealthPolicy policy)
    : _eq(eq), _fabric(fabric), _policy(policy),
      _devices(static_cast<std::size_t>(fabric.numGpus()))
{
    if (_policy.heartbeatInterval == 0)
        fatalError("DeviceHealthMonitor: zero heartbeat interval");
    if (_policy.suspectAfterMisses < 1 ||
        _policy.lostAfterMisses < _policy.suspectAfterMisses ||
        _policy.recoverAfterBeats < 1) {
        fatalError("DeviceHealthMonitor: streak thresholds must be "
                   "positive with suspectAfterMisses <= "
                   "lostAfterMisses");
    }

    // Any fabric activity re-arms the watchdog, so a run that drained
    // the queue between phases (stopping the beat) is sampled again
    // as soon as it starts moving bytes.
    _observerHandle = _fabric.addDeliveryObserver(
        [this](const Interconnect::Request &,
               const Interconnect::DeliverySample &) { poke(); });
    poke();
}

DeviceHealthMonitor::~DeviceHealthMonitor()
{
    _fabric.removeDeliveryObserver(_observerHandle);
}

DeviceState
DeviceHealthMonitor::deviceState(int gpu) const
{
    return _devices.at(static_cast<std::size_t>(gpu)).state;
}

Tick
DeviceHealthMonitor::lostAt(int gpu) const
{
    return _devices.at(static_cast<std::size_t>(gpu)).lostAt;
}

std::vector<int>
DeviceHealthMonitor::lostDevices() const
{
    std::vector<int> lost;
    for (std::size_t g = 0; g < _devices.size(); ++g) {
        if (_devices[g].state == DeviceState::Lost)
            lost.push_back(static_cast<int>(g));
    }
    return lost;
}

void
DeviceHealthMonitor::addListener(Listener listener)
{
    _listeners.push_back(std::move(listener));
}

void
DeviceHealthMonitor::poke()
{
    if (_beatScheduled)
        return;
    _beatScheduled = true;
    _eq.scheduleIn(_policy.heartbeatInterval, [this] { beat(); });
}

bool
DeviceHealthMonitor::anySuspect() const
{
    for (const Device &d : _devices) {
        if (d.state == DeviceState::Suspect)
            return true;
    }
    return false;
}

void
DeviceHealthMonitor::beat()
{
    _beatScheduled = false;
    _stats.inc("device_health.beats");
    const int n = _fabric.numGpus();
    for (int g = 0; g < n; ++g)
        sample(g);

    // Re-arm only while the queue holds other work (the run is live)
    // or a verdict is pending. With an empty queue liveness cannot
    // change (fault boundaries are events too), so pending SUSPECT
    // streaks resolve monotonically and the beat always stops.
    if (_eq.pendingEvents() > 0 || anySuspect() ||
        (_livenessProbe && _livenessProbe())) {
        poke();
    }
}

void
DeviceHealthMonitor::sample(int gpu)
{
    Device &d = _devices[static_cast<std::size_t>(gpu)];
    if (d.state == DeviceState::Lost)
        return; // Terminal for the run.

    if (_fabric.deviceDown(gpu)) {
        _stats.inc("device_health.misses");
        ++d.missStreak;
        d.beatStreak = 0;
        if (d.missStreak >= _policy.lostAfterMisses)
            setState(gpu, DeviceState::Lost);
        else if (d.missStreak >= _policy.suspectAfterMisses &&
                 d.state == DeviceState::Healthy) {
            setState(gpu, DeviceState::Suspect);
        }
        return;
    }

    ++d.beatStreak;
    d.missStreak = 0;
    if (d.state == DeviceState::Suspect &&
        d.beatStreak >= _policy.recoverAfterBeats) {
        setState(gpu, DeviceState::Healthy);
    }
}

void
DeviceHealthMonitor::setState(int gpu, DeviceState next)
{
    Device &d = _devices[static_cast<std::size_t>(gpu)];
    if (d.state == next)
        return;
    const DeviceState prev = d.state;
    d.state = next;

    _stats.inc("device_health.transitions");
    switch (next) {
      case DeviceState::Suspect:
        _stats.inc("device_health.to_suspect");
        break;
      case DeviceState::Lost:
        _stats.inc("device_health.to_lost");
        ++_numLost;
        d.lostAt = _eq.curTick();
        break;
      case DeviceState::Healthy:
        _stats.inc("device_health.to_healthy");
        break;
    }
    _transitions.push_back(
        Transition{_eq.curTick(), gpu, prev, next});

    for (const Listener &listener : _listeners)
        listener(gpu, prev, next);
}

} // namespace proact
