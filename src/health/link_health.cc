#include "health/link_health.hh"

#include "sim/logging.hh"

#include <algorithm>
#include <memory>
#include <sstream>

namespace proact {

std::string
LinkHealthMonitor::Transition::describe() const
{
    std::ostringstream oss;
    oss << "t=" << tick << " gpu" << src << "->gpu" << dst << " "
        << linkStateName(from) << " -> " << linkStateName(to);
    return oss.str();
}

LinkHealthMonitor::LinkHealthMonitor(EventQueue &eq,
                                     Interconnect &fabric,
                                     HealthPolicy policy)
    : _eq(eq), _fabric(fabric), _policy(std::move(policy)),
      _rowEpoch(static_cast<std::size_t>(fabric.numGpus()), 0),
      _colEpoch(static_cast<std::size_t>(fabric.numGpus()), 0),
      _links(static_cast<std::size_t>(fabric.numGpus())
             * fabric.numGpus())
{
    if (_policy.downAfterLosses < 1 ||
        _policy.recoverAfterDeliveries < 1) {
        fatalError("LinkHealthMonitor: streak thresholds must be "
                   "positive");
    }
    if (_policy.degradedBwFraction >= _policy.healthyBwFraction) {
        fatalError("LinkHealthMonitor: hysteresis gap requires "
                   "degradedBwFraction < healthyBwFraction");
    }
    if (_policy.clearQueueRatio >= _policy.congestedQueueRatio) {
        fatalError("LinkHealthMonitor: hysteresis gap requires "
                   "clearQueueRatio < congestedQueueRatio");
    }

    _observerHandle = _fabric.addDeliveryObserver(
        [this](const Interconnect::Request &req,
               const Interconnect::DeliverySample &sample) {
            // The hardware-reliable bulk path is fault-exempt by
            // construction; its deliveries say nothing about the
            // health of the unprotected fine-grained path, and
            // counting them would "recover" a link whose payload
            // only survives via the fallback.
            if (req.reliable)
                return;
            if (sample.dropped) {
                recordLoss(req.src, req.dst);
                return;
            }
            observe(req.src, req.dst, sample.wireBytes, req.threads,
                    sample.queueDelay, sample.serviceTime);
        });
}

LinkHealthMonitor::~LinkHealthMonitor()
{
    _fabric.removeDeliveryObserver(_observerHandle);
}

std::size_t
LinkHealthMonitor::index(int src, int dst) const
{
    const int n = _fabric.numGpus();
    if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst)
        fatalError("LinkHealthMonitor: bad link ", src, " -> ", dst);
    return static_cast<std::size_t>(src) * n + dst;
}

LinkHealthMonitor::Link &
LinkHealthMonitor::link(int src, int dst)
{
    return _links[index(src, dst)];
}

const LinkHealthMonitor::Link &
LinkHealthMonitor::link(int src, int dst) const
{
    return _links[index(src, dst)];
}

double
LinkHealthMonitor::nominalBandwidth(int src, int dst) const
{
    // Tier-aware: an inter-node pair's nominal is the (much lower)
    // network-tier slice — judging it against the intra-node rate
    // would misclassify every healthy cross-node link as DEGRADED.
    if (_fabric.pairwise())
        return _fabric.nominalPairRate(src, dst);
    (void)src;
    (void)dst;
    return _fabric.spec().egressRate();
}

LinkState
LinkHealthMonitor::linkState(int src, int dst) const
{
    return link(src, dst).state;
}

std::uint64_t
LinkHealthMonitor::linkEpoch(int src, int dst) const
{
    return link(src, dst).epoch;
}

std::uint64_t
LinkHealthMonitor::routeEpoch(int src, int dst) const
{
    index(src, dst); // Bounds check.
    return (static_cast<std::uint64_t>(
                _rowEpoch[static_cast<std::size_t>(src)])
            << 32)
        | _colEpoch[static_cast<std::size_t>(dst)];
}

double
LinkHealthMonitor::residualFraction(int src, int dst) const
{
    const Link &l = link(src, dst);
    switch (l.state) {
      case LinkState::Down:
        return 0.0;
      case LinkState::Healthy:
      case LinkState::Congested:
        // A congested link's wire is intact: its nominal rate is all
        // there once the competing flows drain.
        return 1.0;
      case LinkState::Degraded:
        break;
    }
    return std::clamp(l.ewmaFraction, 0.01, 1.0);
}

double
LinkHealthMonitor::ewmaQueueRatio(int src, int dst) const
{
    return link(src, dst).ewmaQueueRatio;
}

Tick
LinkHealthMonitor::ewmaLatency(int src, int dst) const
{
    return static_cast<Tick>(link(src, dst).ewmaLatency);
}

double
LinkHealthMonitor::ewmaBandwidth(int src, int dst) const
{
    const Link &l = link(src, dst);
    return l.ewmaFraction * nominalBandwidth(src, dst);
}

void
LinkHealthMonitor::addListener(Listener listener)
{
    _listeners.push_back(std::move(listener));
}

void
LinkHealthMonitor::recordDelivery(int src, int dst,
                                  std::uint64_t bytes,
                                  Tick submitted, Tick delivered)
{
    const PacketModel &packet = _fabric.pairPacketModel(src, dst);
    observe(src, dst,
            packet.wireBytes(bytes, packet.maxPayloadBytes),
            0, 0, delivered > submitted ? delivered - submitted : 1);
}

void
LinkHealthMonitor::recordSample(int src, int dst, std::uint64_t bytes,
                                Tick queue_delay, Tick service_time)
{
    const PacketModel &packet = _fabric.pairPacketModel(src, dst);
    observe(src, dst,
            packet.wireBytes(bytes, packet.maxPayloadBytes),
            0, queue_delay, service_time);
}

void
LinkHealthMonitor::observe(int src, int dst, std::uint64_t wire_bytes,
                           std::uint32_t threads, Tick queue_delay,
                           Tick service_time)
{
    Link &l = link(src, dst);
    _stats.inc("health.deliveries");
    ++l.deliveries;
    l.lossStreak = 0;
    ++l.deliverStreak;

    // Expected fault-free time of this delivery: wire occupancy at
    // the thread-capped rate plus the fabric latency. The ratio of
    // expected to observed *wire service* time is the link's achieved
    // fraction of nominal for this sample (1.0 = healthy); the ratio
    // of queueing delay to expected time is the sample's congestion
    // signal. Keeping the two apart is the whole point: a backlog of
    // other flows at a shared port stretches queue_delay but leaves
    // service_time — and hence the DEGRADED classification — alone.
    const double rate = std::min(_fabric.effectiveEgressRate(threads),
                                 nominalBandwidth(src, dst));
    const Tick expected = transferTicks(wire_bytes, rate)
        + (_fabric.pairwise() ? _fabric.pairLatency(src, dst)
                              : _fabric.spec().latency);
    const Tick actual = service_time > 0 ? service_time : 1;
    const double fraction =
        std::min(1.0, static_cast<double>(expected)
                          / static_cast<double>(actual));
    const double queue_ratio =
        static_cast<double>(queue_delay)
        / static_cast<double>(std::max<Tick>(expected, 1));

    const double a = _policy.ewmaAlpha;
    if (l.deliveries == 1) {
        l.ewmaLatency = static_cast<double>(actual);
        l.ewmaFraction = fraction;
        l.ewmaQueueRatio = queue_ratio;
    } else {
        l.ewmaLatency =
            (1.0 - a) * l.ewmaLatency + a * static_cast<double>(actual);
        l.ewmaFraction = (1.0 - a) * l.ewmaFraction + a * fraction;
        l.ewmaQueueRatio =
            (1.0 - a) * l.ewmaQueueRatio + a * queue_ratio;
    }

    reclassify(src, dst);
}

void
LinkHealthMonitor::recordLoss(int src, int dst)
{
    Link &l = link(src, dst);
    _stats.inc("health.losses");
    ++l.losses;
    ++l.lossStreak;
    l.deliverStreak = 0;
    reclassify(src, dst);
}

void
LinkHealthMonitor::markDeviceLost(int gpu)
{
    const int n = _fabric.numGpus();
    for (int other = 0; other < n; ++other) {
        if (other == gpu)
            continue;
        setState(gpu, other, LinkState::Down);
        setState(other, gpu, LinkState::Down);
    }
}

void
LinkHealthMonitor::reclassify(int src, int dst)
{
    Link &l = link(src, dst);

    if (l.lossStreak >= _policy.downAfterLosses) {
        setState(src, dst, LinkState::Down);
        return;
    }

    // Dampen flapping: after a recent transition the classification
    // freezes (DOWN above excepted) until the holdoff elapses, so a
    // link straddling a threshold can't oscillate at delivery rate.
    if (l.everTransitioned &&
        _eq.curTick() - l.lastTransition < _policy.transitionHoldoff) {
        return;
    }

    const bool enough_samples =
        l.deliveries >= static_cast<std::uint64_t>(_policy.minSamples);
    const bool congested =
        l.ewmaQueueRatio > _policy.congestedQueueRatio;

    switch (l.state) {
      case LinkState::Down:
        // Leave DOWN only after a streak of clean deliveries; land in
        // DEGRADED, CONGESTED or HEALTHY depending on what the two
        // signals say now.
        if (l.deliverStreak >= _policy.recoverAfterDeliveries) {
            setState(src, dst,
                     l.ewmaFraction < _policy.healthyBwFraction
                         ? LinkState::Degraded
                         : (congested ? LinkState::Congested
                                      : LinkState::Healthy));
        }
        break;
      case LinkState::Healthy:
        if (enough_samples &&
            l.ewmaFraction < _policy.degradedBwFraction) {
            setState(src, dst, LinkState::Degraded);
        } else if (enough_samples && congested) {
            setState(src, dst, LinkState::Congested);
        }
        break;
      case LinkState::Congested:
        // The wire signal always wins: a degraded rate underneath a
        // backlog is still a degraded rate.
        if (enough_samples &&
            l.ewmaFraction < _policy.degradedBwFraction) {
            setState(src, dst, LinkState::Degraded);
        } else if (l.ewmaQueueRatio < _policy.clearQueueRatio) {
            setState(src, dst, LinkState::Healthy);
        }
        break;
      case LinkState::Degraded:
        // Hysteresis: recovery needs both a clean streak and the
        // bandwidth estimate back above the (higher) exit threshold.
        if (l.deliverStreak >= _policy.recoverAfterDeliveries &&
            l.ewmaFraction > _policy.healthyBwFraction) {
            setState(src, dst,
                     congested ? LinkState::Congested
                               : LinkState::Healthy);
        }
        break;
    }
}

void
LinkHealthMonitor::setState(int src, int dst, LinkState next)
{
    Link &l = link(src, dst);
    if (l.state == next)
        return;
    const LinkState prev = l.state;
    l.state = next;
    ++_epoch;
    ++_rowEpoch[static_cast<std::size_t>(src)];
    ++_colEpoch[static_cast<std::size_t>(dst)];
    l.lastTransition = _eq.curTick();
    l.everTransitioned = true;
    ++l.epoch;

    _stats.inc("health.transitions");
    if (isWireTransition(prev, next))
        _stats.inc("health.wire_transitions");
    switch (next) {
      case LinkState::Down:
        _stats.inc("health.to_down");
        break;
      case LinkState::Degraded:
        _stats.inc("health.to_degraded");
        break;
      case LinkState::Congested:
        _stats.inc("health.to_congested");
        break;
      case LinkState::Healthy:
        _stats.inc("health.to_healthy");
        break;
    }
    _transitions.push_back(
        Transition{_eq.curTick(), src, dst, prev, next});

    if (next == LinkState::Down) {
        l.probeFailures = 0;
        scheduleProbe(src, dst);
    }

    for (const Listener &listener : _listeners)
        listener(src, dst, prev, next);
}

void
LinkHealthMonitor::scheduleProbe(int src, int dst)
{
    Link &l = link(src, dst);
    if (_policy.probeInterval == 0 || l.probeScheduled ||
        l.probeFailures >= _policy.maxProbeFailures) {
        return;
    }
    // No probe can revive a link whose endpoint device is dead, and
    // probing 2(N-1) dead links would pin the event queue for the
    // whole probe budget after a device loss.
    if (_fabric.deviceDown(src) || _fabric.deviceDown(dst))
        return;
    l.probeScheduled = true;
    _eq.scheduleIn(_policy.probeInterval,
                   [this, src, dst] { sendProbe(src, dst); });
}

void
LinkHealthMonitor::sendProbe(int src, int dst)
{
    Link &l = link(src, dst);
    l.probeScheduled = false;
    if (l.state != LinkState::Down)
        return; // Recovered through real traffic; probing is moot.

    _stats.inc("health.probes");
    auto landed = std::make_shared<bool>(false);

    Interconnect::Request req;
    req.src = src;
    req.dst = dst;
    req.bytes = _policy.probeBytes;
    req.writeGranularity = static_cast<std::uint32_t>(std::min<
        std::uint64_t>(
        _policy.probeBytes,
        _fabric.pairPacketModel(src, dst).maxPayloadBytes));
    req.threads = 1;
    req.onComplete = [landed] { *landed = true; };
    const Tick predicted = _fabric.transfer(req);

    // The probe's own delivery (or drop) already updated the link via
    // the fabric observer; this check only paces the probe loop.
    _eq.schedule(predicted + 1, [this, src, dst, landed] {
        Link &lk = link(src, dst);
        if (*landed) {
            lk.probeFailures = 0;
        } else {
            ++lk.probeFailures;
        }
        if (lk.state == LinkState::Down)
            scheduleProbe(src, dst);
    });
}

FaultPlan
LinkHealthMonitor::toFaultPlan() const
{
    FaultPlan plan;
    const int n = _fabric.numGpus();
    for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
            if (s == d)
                continue;
            const Link &l = link(s, d);
            switch (l.state) {
              case LinkState::Down:
                plan.downLink(0, maxTick, s, d);
                break;
              case LinkState::Degraded: {
                const double removed = std::clamp(
                    1.0 - l.ewmaFraction, 0.01, 0.99);
                plan.degradeLink(0, maxTick, removed, s, d);
                break;
              }
              case LinkState::Healthy:
              case LinkState::Congested:
                // Congestion is other flows' traffic, not a property
                // of the wire: the profiler should see a clean link.
                break;
            }
        }
    }
    return plan;
}

} // namespace proact
