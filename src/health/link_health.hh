/**
 * @file
 * Online per-link health tracking for the fault-adaptive runtime.
 *
 * The LinkHealthMonitor observes every delivery the fabric makes (or
 * drops) and keeps, per directed GPU pair, two separately attributed
 * EWMAs from the fabric's DeliverySample split: the achieved fraction
 * of nominal bandwidth computed from *wire service time only*, and
 * the ratio of time spent queued behind other flows to the expected
 * service time. From those it classifies each link HEALTHY /
 * CONGESTED / DEGRADED / DOWN with hysteresis — a single dropped
 * delivery or one slow transfer never flips the state, and recovery
 * requires a streak of clean deliveries — so transient spikes don't
 * make routing flap. DEGRADED and DOWN come from the wire signal
 * alone; a port backlog caused by *other* flows surfaces as
 * CONGESTED, which routing treats as spread-don't-detour and which
 * never invalidates route plans or triggers re-profiling.
 *
 * A link that has been declared DOWN stops carrying payload once the
 * Rerouter detours around it, so the monitor optionally sends small
 * probe transfers on DOWN links to discover recovery; probing gives
 * up after a bounded number of consecutive failures so the event
 * queue always drains. All decisions are pure functions of the
 * observation sequence, which the deterministic event queue fixes, so
 * identical (plan, seed, workload) runs replay tick-for-tick.
 */

#ifndef PROACT_HEALTH_LINK_HEALTH_HH
#define PROACT_HEALTH_LINK_HEALTH_HH

#include "faults/fault_plan.hh"
#include "interconnect/interconnect.hh"
#include "interconnect/link_state.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace proact {

/** Thresholds of the health state machine. */
struct HealthPolicy
{
    /** EWMA weight of the newest latency / bandwidth sample. */
    double ewmaAlpha = 0.25;

    /** Consecutive losses before a link is declared DOWN. */
    int downAfterLosses = 3;

    /** Consecutive clean deliveries before a state may improve. */
    int recoverAfterDeliveries = 4;

    /**
     * Enter DEGRADED when EWMA bandwidth falls below this fraction of
     * nominal; leave it only above healthyBwFraction (hysteresis gap).
     */
    double degradedBwFraction = 0.55;
    double healthyBwFraction = 0.8;

    /** Deliveries needed before bandwidth classification kicks in. */
    int minSamples = 3;

    /**
     * Enter CONGESTED when the EWMA of per-delivery queueing delay
     * exceeds this multiple of the expected service time (i.e. the
     * average delivery waits longer behind other flows than its own
     * wire time, several times over); leave CONGESTED only once the
     * EWMA falls below clearQueueRatio (hysteresis gap). Queueing
     * never feeds the DEGRADED/DOWN classification.
     */
    double congestedQueueRatio = 2.0;
    double clearQueueRatio = 0.75;

    /**
     * Minimum time between consecutive state changes of one link.
     * Transitions to DOWN are exempt (a loss streak means payload is
     * dying now). Congestion can masquerade as degradation when
     * detour traffic piles onto a link; a holdoff keeps such links
     * from flapping HEALTHY <-> DEGRADED at delivery rate. Off by
     * default: feed-forward harnesses classify whole observation
     * sequences at one tick, which a holdoff would freeze.
     */
    Tick transitionHoldoff = 0;

    /**
     * Probe period for DOWN links (0 disables probing). Probes are
     * tiny non-reliable transfers whose only job is to detect that a
     * link started delivering again.
     */
    Tick probeInterval = 20 * ticksPerMicrosecond;

    /** Probe payload on the wire. */
    std::uint64_t probeBytes = 64;

    /**
     * Consecutive failed probes before the monitor gives up on a DOWN
     * link (bounds event-queue lifetime; the link then stays DOWN).
     */
    int maxProbeFailures = 16;
};

/**
 * Observes one fabric and classifies every directed link.
 *
 * Stats (read via stats()):
 *  - health.transitions:  every state change
 *  - health.wire_transitions: state changes involving DEGRADED/DOWN
 *  - health.to_down / to_degraded / to_congested / to_healthy:
 *    per target state
 *  - health.probes:       probe transfers sent
 *  - health.losses / deliveries: raw observation counts
 */
class LinkHealthMonitor : public LinkStateProvider
{
  public:
    /** One recorded state change (for summaries and tests). */
    struct Transition
    {
        Tick tick;
        int src;
        int dst;
        LinkState from;
        LinkState to;

        std::string describe() const;
    };

    using Listener =
        std::function<void(int src, int dst, LinkState from,
                           LinkState to)>;

    /**
     * Create the monitor and register itself on the fabric's delivery
     * observer list (other observers — per-tenant tracers, tests —
     * coexist untouched). The fabric must outlive the monitor.
     */
    LinkHealthMonitor(EventQueue &eq, Interconnect &fabric,
                      HealthPolicy policy = {});

    ~LinkHealthMonitor() override;

    LinkHealthMonitor(const LinkHealthMonitor &) = delete;
    LinkHealthMonitor &operator=(const LinkHealthMonitor &) = delete;

    /** @{ @name LinkStateProvider */
    LinkState linkState(int src, int dst) const override;
    double residualFraction(int src, int dst) const override;

    /** Queueing-delay-over-service EWMA (== ewmaQueueRatio). */
    double queueRatio(int src, int dst) const override
    {
        return ewmaQueueRatio(src, dst);
    }

    /**
     * Bumped once per state transition (== transitions().size()), so
     * route caches keyed on it revalidate exactly when the observed
     * topology changed shape.
     */
    std::uint64_t healthEpoch() const override { return _epoch; }

    /** Transition count of one directed link. */
    std::uint64_t linkEpoch(int src, int dst) const override;

    /**
     * Row/column epoch signature: transitions of any link leaving
     * @p src or entering @p dst change it; transitions elsewhere
     * don't. Plans cached per pair stay valid across unrelated
     * flapping, which on a 16-GPU fabric is most of it.
     */
    std::uint64_t routeEpoch(int src, int dst) const override;
    /** @} */

    /**
     * Feed one observed delivery. The whole submitted -> delivered
     * span is attributed to wire service (zero queueing) — the entry
     * point for harnesses that don't track the split; the fabric hook
     * feeds the attributed DeliverySample instead.
     */
    void recordDelivery(int src, int dst, std::uint64_t bytes,
                        Tick submitted, Tick delivered);

    /**
     * Feed one observed delivery with an explicit queueing/service
     * attribution (what the fabric hook reports): @p queue_delay
     * ticks spent behind other flows, @p service_time ticks of wire
     * time for @p bytes of payload.
     */
    void recordSample(int src, int dst, std::uint64_t bytes,
                      Tick queue_delay, Tick service_time);

    /** Feed one observed loss. */
    void recordLoss(int src, int dst);

    /**
     * Force every link touching @p gpu DOWN at once — the link-level
     * shadow of a whole-device loss. Listeners fire per link, so the
     * rerouter's push-invalidated plan cache drops every plan through
     * the dead device; probing is suppressed (no probe can revive a
     * link whose endpoint is gone, and probing 2(N-1) dead links
     * would pin the event queue for the probe budget).
     */
    void markDeviceLost(int gpu);

    /** EWMA wire service latency of a link (0 before any delivery). */
    Tick ewmaLatency(int src, int dst) const;

    /** EWMA achieved bandwidth estimate (bytes/s), wire time only. */
    double ewmaBandwidth(int src, int dst) const;

    /** EWMA of queueing delay over expected service time (0 = quiet). */
    double ewmaQueueRatio(int src, int dst) const;

    /** Register a state-change listener (called after the change). */
    void addListener(Listener listener);

    /** Every state change so far, in tick order. */
    const std::vector<Transition> &transitions() const
    {
        return _transitions;
    }

    /**
     * Synthesize a FaultPlan describing the fabric as currently
     * observed: DOWN links become whole-run down episodes, DEGRADED
     * links whole-run degradation episodes at the observed residual
     * fraction. Feeding this plan to the profiler makes "the faulted
     * platform" just another platform to optimize for.
     */
    FaultPlan toFaultPlan() const;

    const HealthPolicy &policy() const { return _policy; }

    StatSet &stats() { return _stats; }
    const StatSet &stats() const { return _stats; }

  private:
    struct Link
    {
        LinkState state = LinkState::Healthy;
        double ewmaLatency = 0.0;

        /**
         * EWMA of the achieved fraction of nominal bandwidth, from
         * per-delivery expected-vs-wire-service time ratios (1.0 =
         * nominal). Queueing behind other flows is excluded: only the
         * wire signal classifies DEGRADED.
         */
        double ewmaFraction = 1.0;

        /**
         * EWMA of per-delivery queueing delay over expected service
         * time. High values mean the port is backed up with *other*
         * flows' traffic: a congestion signal, not a wire fault.
         */
        double ewmaQueueRatio = 0.0;

        int lossStreak = 0;
        int deliverStreak = 0;
        std::uint64_t deliveries = 0;
        std::uint64_t losses = 0;
        bool probeScheduled = false;
        int probeFailures = 0;

        /** Holdoff bookkeeping (see HealthPolicy::transitionHoldoff). */
        Tick lastTransition = 0;
        bool everTransitioned = false;

        /** Transition count of this link (linkEpoch). */
        std::uint32_t epoch = 0;
    };

    EventQueue &_eq;
    Interconnect &_fabric;
    Interconnect::ObserverHandle _observerHandle = 0;
    HealthPolicy _policy;
    StatSet _stats;
    std::uint64_t _epoch = 0;
    std::vector<std::uint32_t> _rowEpoch;
    std::vector<std::uint32_t> _colEpoch;
    std::vector<Link> _links;
    std::vector<Listener> _listeners;
    std::vector<Transition> _transitions;

    Link &link(int src, int dst);
    const Link &link(int src, int dst) const;
    std::size_t index(int src, int dst) const;

    /** Nominal single-pair bandwidth the observations compare against. */
    double nominalBandwidth(int src, int dst) const;

    /**
     * Fold one delivery into the link's EWMAs: the achieved fraction
     * is the ratio of the expected fault-free time (wire bytes at the
     * thread-capped rate, plus fabric latency) to the observed wire
     * service time; the queue ratio is the observed queueing delay
     * over that same expected time.
     */
    void observe(int src, int dst, std::uint64_t wire_bytes,
                 std::uint32_t threads, Tick queue_delay,
                 Tick service_time);

    void setState(int src, int dst, LinkState next);
    void reclassify(int src, int dst);
    void scheduleProbe(int src, int dst);
    void sendProbe(int src, int dst);
};

} // namespace proact

#endif // PROACT_HEALTH_LINK_HEALTH_HH
