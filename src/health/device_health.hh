/**
 * @file
 * Whole-device heartbeat/watchdog health tracking.
 *
 * Link health (link_health.hh) classifies individual wires; a lost
 * *device* is a different event: every link touching it dies at once,
 * its DMA engine stops, and any job running on it must be recovered,
 * not retried. The DeviceHealthMonitor samples each GPU's liveness on
 * a periodic heartbeat and declares devices LOST with hysteresis — a
 * single missed beat only makes a device SUSPECT; it takes a
 * configurable miss streak to declare LOST, and a SUSPECT device that
 * starts answering again recovers after a clean-beat streak. LOST is
 * terminal for the run: the declaration is the signal on which the
 * owning system quiesces in-flight traffic and the fleet layer
 * quarantines the device and re-admits the job from its checkpoint.
 *
 * The watchdog is a self-rescheduling event, which on a queue that
 * drains to empty (EventQueue::run) would pin the run forever. It
 * therefore only re-arms while the queue holds other work or a
 * verdict is still pending (some device is SUSPECT), and lazily
 * re-arms from fabric activity — so it always terminates, and a
 * death mid-run is still discovered within
 * lostAfterMisses * heartbeatInterval ticks, deterministically.
 */

#ifndef PROACT_HEALTH_DEVICE_HEALTH_HH
#define PROACT_HEALTH_DEVICE_HEALTH_HH

#include "interconnect/interconnect.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace proact {

/** Whole-device health states. */
enum class DeviceState
{
    Healthy,  ///< Answering heartbeats.
    Suspect,  ///< Missed beats, verdict pending.
    Lost,     ///< Declared dead; terminal for the run.
};

std::string deviceStateName(DeviceState state);

/** Thresholds of the device watchdog. */
struct DeviceHealthPolicy
{
    /** Liveness sampling period. */
    Tick heartbeatInterval = 5 * ticksPerMicrosecond;

    /** Missed beats before a device turns SUSPECT. */
    int suspectAfterMisses = 1;

    /** Missed beats before a SUSPECT device is declared LOST. */
    int lostAfterMisses = 3;

    /** Clean beats before a SUSPECT device recovers to HEALTHY. */
    int recoverAfterBeats = 2;
};

/**
 * Watches every GPU of one fabric and classifies each
 * HEALTHY / SUSPECT / LOST.
 *
 * Stats (read via stats()):
 *  - device_health.beats:       heartbeat rounds run
 *  - device_health.misses:      per-device missed beats
 *  - device_health.transitions: every state change
 *  - device_health.to_suspect / to_lost / to_healthy: per target
 */
class DeviceHealthMonitor
{
  public:
    /** One recorded state change (for summaries and tests). */
    struct Transition
    {
        Tick tick;
        int gpu;
        DeviceState from;
        DeviceState to;

        std::string describe() const;
    };

    using Listener = std::function<void(int gpu, DeviceState from,
                                        DeviceState to)>;

    /**
     * Create the monitor and arm the first heartbeat. Liveness is
     * sampled from the fabric's device-down flags; a fabric delivery
     * observer lazily re-arms the watchdog whenever traffic flows.
     * The fabric must outlive the monitor.
     */
    DeviceHealthMonitor(EventQueue &eq, Interconnect &fabric,
                        DeviceHealthPolicy policy = {});

    ~DeviceHealthMonitor();

    DeviceHealthMonitor(const DeviceHealthMonitor &) = delete;
    DeviceHealthMonitor &operator=(const DeviceHealthMonitor &) =
        delete;

    DeviceState deviceState(int gpu) const;

    /** Tick at which @p gpu was declared LOST (0 if it wasn't). */
    Tick lostAt(int gpu) const;

    /** GPUs declared LOST so far, ascending. */
    std::vector<int> lostDevices() const;

    bool anyLost() const { return _numLost > 0; }

    /** Register a state-change listener (called after the change). */
    void addListener(Listener listener);

    /** Every state change so far, in tick order. */
    const std::vector<Transition> &transitions() const
    {
        return _transitions;
    }

    /**
     * Re-arm the watchdog if it is not scheduled (idempotent). Called
     * from the fabric observer on traffic, and by harnesses at phase
     * boundaries so a quiet-but-armed run still gets sampled.
     */
    void poke();

    /**
     * Extra liveness signal ORed into the beat's re-arm condition.
     * On a sharded engine the monitor lives on the serial control
     * queue, which is empty whenever the shards hold all the work —
     * the probe (typically ShardedEventEngine::shardEventsPending)
     * keeps the watchdog alive while any shard still has events, and
     * lets it stop once the whole engine drains.
     */
    void setLivenessProbe(std::function<bool()> probe)
    {
        _livenessProbe = std::move(probe);
    }

    const DeviceHealthPolicy &policy() const { return _policy; }

    StatSet &stats() { return _stats; }
    const StatSet &stats() const { return _stats; }

  private:
    struct Device
    {
        DeviceState state = DeviceState::Healthy;
        int missStreak = 0;
        int beatStreak = 0;
        Tick lostAt = 0;
    };

    EventQueue &_eq;
    Interconnect &_fabric;
    Interconnect::ObserverHandle _observerHandle = 0;
    DeviceHealthPolicy _policy;
    StatSet _stats;
    std::vector<Device> _devices;
    std::vector<Listener> _listeners;
    std::vector<Transition> _transitions;
    std::function<bool()> _livenessProbe;
    int _numLost = 0;
    bool _beatScheduled = false;

    void beat();
    void sample(int gpu);
    void setState(int gpu, DeviceState next);
    bool anySuspect() const;
};

} // namespace proact

#endif // PROACT_HEALTH_DEVICE_HEALTH_HH
