/**
 * @file
 * Microbenchmark workload (paper Sec. IV-C, Figs. 4 and 6).
 *
 * A synthetic compute kernel on a *source GPU* produces data needed
 * in its entirety by every *destination GPU* for the next phase. Per
 * the paper, each source CTA generates 4 KB and the kernel's compute
 * time is tuned to match the cudaMemcpy transfer time on the target
 * platform, so an ideal interconnect yields exactly 2x speedup over
 * bulk transfers. The tuning is analytic against the platform's
 * memory bandwidth and fabric parameters (the paper tunes against
 * real hardware the same way).
 */

#ifndef PROACT_WORKLOADS_MICROBENCH_HH
#define PROACT_WORKLOADS_MICROBENCH_HH

#include "system/platform.hh"
#include "workloads/workload.hh"

#include <cstdint>
#include <vector>

namespace proact {

/** Producer/consumer microbenchmark with tunable compute weight. */
class MicrobenchWorkload : public Workload
{
  public:
    struct Params
    {
        /** Total data the source GPU produces per phase. */
        std::uint64_t totalBytes = 64 * MiB;

        /** Data each source CTA generates (paper: 4 KB). */
        std::uint64_t bytesPerCta = 4 * KiB;

        int iterations = 4;
        std::uint64_t seed = 2021;
    };

    /**
     * @param platform Target machine; the compute weight is tuned so
     *        the source kernel's duration matches the platform's
     *        cudaMemcpy duplication time for totalBytes.
     */
    explicit MicrobenchWorkload(PlatformSpec platform);
    MicrobenchWorkload(PlatformSpec platform, Params params);

    std::string name() const override { return "Microbenchmark"; }
    void setup(int num_gpus) override;
    int numIterations() const override { return _params.iterations; }
    Phase buildPhase(int iter) override;

    TrafficProfile
    traffic() const override
    {
        return TrafficProfile{256, true};
    }

    bool verify() const override;

    /** Tuned local traffic per CTA (bytes). */
    std::uint64_t ctaLocalBytes() const { return _ctaLocalBytes; }

    /** Analytic cudaMemcpy duplication time the kernel is tuned to. */
    Tick targetTransferTicks() const { return _targetTransfer; }

  private:
    PlatformSpec _platform;
    Params _params;
    std::vector<double> _data;
    std::uint64_t _ctaLocalBytes = 0;
    Tick _targetTransfer = 0;
    int _numCtas = 0;
    int _itersRun = 0;

    void computeCta(int cta, int iter);
};

} // namespace proact

#endif // PROACT_WORKLOADS_MICROBENCH_HH
