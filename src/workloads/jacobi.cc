#include "workloads/jacobi.hh"

#include "sim/logging.hh"
#include "sim/random.hh"

#include <algorithm>
#include <cmath>

namespace proact {

void
JacobiWorkload::setup(int num_gpus)
{
    if (num_gpus < 1)
        fatalError("JacobiWorkload: need at least one GPU");
    _numGpus = num_gpus;

    const std::int64_t n = _params.numUnknowns;
    const int bw = bandWidth();

    Rng rng(_params.seed);
    _band.assign(static_cast<std::size_t>(n) * bw, 0.0);
    _rhs.assign(n, 0.0);
    for (std::int64_t i = 0; i < n; ++i) {
        double off_sum = 0.0;
        for (int k = 0; k < bw; ++k) {
            if (k == _params.halfBand)
                continue;
            const double v = rng.uniform() - 0.5;
            _band[i * bw + k] = v;
            off_sum += std::abs(v);
        }
        // Strict diagonal dominance guarantees Jacobi convergence.
        _band[i * bw + _params.halfBand] = off_sum + 1.0
            + rng.uniform();
        _rhs[i] = rng.uniform() * 2.0 - 1.0;
    }

    _xOld.assign(n, 0.0);
    _xNew.assign(n, 0.0);

    _bounds.resize(num_gpus + 1);
    for (int p = 0; p <= num_gpus; ++p)
        _bounds[p] = n * p / num_gpus;

    _initialResidual = relativeResidual();
}

double
JacobiWorkload::rowUpdate(std::int64_t row) const
{
    const int bw = bandWidth();
    const int hb = _params.halfBand;
    const std::int64_t n = _params.numUnknowns;
    const std::vector<double> &src = _xOld;

    double acc = _rhs[row];
    for (int k = 0; k < bw; ++k) {
        if (k == hb)
            continue;
        const std::int64_t j = row + k - hb;
        if (j < 0 || j >= n)
            continue;
        acc -= _band[row * bw + k] * src[j];
    }
    return acc / _band[row * bw + hb];
}

void
JacobiWorkload::computeCta(int gpu, int cta)
{
    const std::int64_t lo =
        _bounds[gpu] + static_cast<std::int64_t>(cta)
            * _params.rowsPerCta;
    const std::int64_t hi =
        std::min<std::int64_t>(lo + _params.rowsPerCta,
                               _bounds[gpu + 1]);
    for (std::int64_t row = lo; row < hi; ++row)
        _xNew[row] = rowUpdate(row);
}

CtaWork
JacobiWorkload::ctaFootprint(int gpu, int cta) const
{
    const std::int64_t lo =
        _bounds[gpu] + static_cast<std::int64_t>(cta)
            * _params.rowsPerCta;
    const std::int64_t hi =
        std::min<std::int64_t>(lo + _params.rowsPerCta,
                               _bounds[gpu + 1]);
    const auto rows = static_cast<double>(std::max<std::int64_t>(
        0, hi - lo));
    const int bw = bandWidth();

    CtaWork work;
    work.flops = rows * 2.0 * bw;
    // Band row + x window reads, rhs read, x_new write.
    work.localBytes = static_cast<std::uint64_t>(
        rows * (bw * 8.0 * 2.0 + 16.0));
    return work;
}

Phase
JacobiWorkload::buildPhase(int iter)
{
    Phase p;
    p.perGpu.resize(_numGpus);

    // Double buffering by iteration parity: iteration i reads the
    // buffer written by iteration i-1. The swap is performed here
    // (functionally free) so phase() stays idempotent for the
    // profiler's timing-only replays.
    if (iter > 0)
        std::swap(_xOld, _xNew);
    (void)iter;

    for (int g = 0; g < _numGpus; ++g) {
        const std::int64_t rows = _bounds[g + 1] - _bounds[g];
        const int num_ctas = static_cast<int>(std::max<std::int64_t>(
            1, (rows + _params.rowsPerCta - 1) / _params.rowsPerCta));

        GpuPhaseWork &work = p.perGpu[g];
        work.kernel.name = "jacobi_sweep";
        work.kernel.numCtas = num_ctas;
        work.kernel.body = [this, g](const CtaContext &ctx) {
            if (ctx.functional)
                computeCta(g, ctx.ctaId);
            return ctaFootprint(g, ctx.ctaId);
        };
        work.bytesProduced = static_cast<std::uint64_t>(rows) * 8;

        const std::int64_t rows_per_cta = _params.rowsPerCta;
        work.ctaRange = [rows, rows_per_cta](int cta) {
            const std::uint64_t lo = static_cast<std::uint64_t>(cta)
                * rows_per_cta * 8;
            const std::uint64_t hi = std::min<std::uint64_t>(
                static_cast<std::uint64_t>(rows) * 8,
                lo + rows_per_cta * 8);
            return ByteRange{lo, hi};
        };
    }
    return p;
}

double
JacobiWorkload::relativeResidual() const
{
    const std::int64_t n = _params.numUnknowns;
    const int bw = bandWidth();
    const int hb = _params.halfBand;
    const std::vector<double> &x = _xNew;

    double res2 = 0.0, rhs2 = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        double ax = 0.0;
        for (int k = 0; k < bw; ++k) {
            const std::int64_t j = i + k - hb;
            if (j < 0 || j >= n)
                continue;
            ax += _band[i * bw + k] * x[j];
        }
        const double r = _rhs[i] - ax;
        res2 += r * r;
        rhs2 += _rhs[i] * _rhs[i];
    }
    return rhs2 > 0.0 ? std::sqrt(res2 / rhs2) : 0.0;
}

bool
JacobiWorkload::verify() const
{
    const double res = relativeResidual();
    return std::isfinite(res) && res < 0.1
        && res < _initialResidual;
}

} // namespace proact
