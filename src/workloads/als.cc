#include "workloads/als.hh"

#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/graph.hh"

#include <algorithm>
#include <cmath>

namespace proact {

void
AlsWorkload::setup(int num_gpus)
{
    if (num_gpus < 1)
        fatalError("AlsWorkload: need at least one GPU");
    _numGpus = num_gpus;

    const std::int64_t users = _params.numUsers;
    const std::int64_t items = _params.numItems;
    const std::int64_t nnz = _params.numRatings;
    const int k = _params.rank;

    Rng rng(_params.seed);

    // Synthetic low-rank ground truth + noise.
    std::vector<float> true_u(users * k), true_i(items * k);
    for (auto &v : true_u)
        v = static_cast<float>(rng.uniform());
    for (auto &v : true_i)
        v = static_cast<float>(rng.uniform());

    std::vector<std::int64_t> rating_users(nnz), rating_items(nnz);
    std::vector<float> rating_values(nnz);
    for (std::int64_t r = 0; r < nnz; ++r) {
        const auto u = static_cast<std::int64_t>(
            rng.below(static_cast<std::uint64_t>(users)));
        const auto i = static_cast<std::int64_t>(
            rng.below(static_cast<std::uint64_t>(items)));
        double dot = 0.0;
        for (int d = 0; d < k; ++d)
            dot += true_u[u * k + d] * true_i[i * k + d];
        rating_users[r] = u;
        rating_items[r] = i;
        rating_values[r] = static_cast<float>(
            dot / k + 0.05 * (rng.uniform() - 0.5));
    }

    // Build user-major CSR.
    _userOffsets.assign(users + 1, 0);
    for (std::int64_t r = 0; r < nnz; ++r)
        ++_userOffsets[rating_users[r] + 1];
    for (std::int64_t u = 0; u < users; ++u)
        _userOffsets[u + 1] += _userOffsets[u];
    _userItems.resize(nnz);
    _userRatings.resize(nnz);
    {
        std::vector<std::int64_t> cursor(_userOffsets.begin(),
                                         _userOffsets.end() - 1);
        for (std::int64_t r = 0; r < nnz; ++r) {
            const std::int64_t slot = cursor[rating_users[r]]++;
            _userItems[slot] =
                static_cast<std::int32_t>(rating_items[r]);
            _userRatings[slot] = rating_values[r];
        }
    }

    // Build item-major CSC.
    _itemOffsets.assign(items + 1, 0);
    for (std::int64_t r = 0; r < nnz; ++r)
        ++_itemOffsets[rating_items[r] + 1];
    for (std::int64_t i = 0; i < items; ++i)
        _itemOffsets[i + 1] += _itemOffsets[i];
    _itemUsers.resize(nnz);
    _itemRatings.resize(nnz);
    {
        std::vector<std::int64_t> cursor(_itemOffsets.begin(),
                                         _itemOffsets.end() - 1);
        for (std::int64_t r = 0; r < nnz; ++r) {
            const std::int64_t slot = cursor[rating_items[r]]++;
            _itemUsers[slot] =
                static_cast<std::int32_t>(rating_users[r]);
            _itemRatings[slot] = rating_values[r];
        }
    }

    // Small deterministic initial factors.
    _userFactors.resize(users * k);
    _itemFactors.resize(items * k);
    Rng init_rng(_params.seed + 1);
    for (auto &v : _userFactors)
        v = static_cast<float>(0.1 * init_rng.uniform());
    for (auto &v : _itemFactors)
        v = static_cast<float>(0.1 * init_rng.uniform());

    // Balance partitions by rating counts per side.
    auto balance = [num_gpus](const std::vector<std::int64_t> &off,
                              std::int64_t rows) {
        std::vector<std::int64_t> bounds(num_gpus + 1, 0);
        const std::int64_t total = off[rows];
        std::int64_t v = 0;
        for (int p = 1; p < num_gpus; ++p) {
            const std::int64_t target = total * p / num_gpus;
            while (v < rows && off[v] < target)
                ++v;
            bounds[p] = std::max(bounds[p - 1], v);
        }
        bounds[num_gpus] = rows;
        return bounds;
    };
    _userBounds = balance(_userOffsets, users);
    _itemBounds = balance(_itemOffsets, items);

    auto cta_split = [this, num_gpus](
                         const std::vector<std::int64_t> &off,
                         const std::vector<std::int64_t> &bounds) {
        std::vector<std::vector<std::int64_t>> out(num_gpus);
        for (int g = 0; g < num_gpus; ++g) {
            const std::int64_t rows = bounds[g + 1] - bounds[g];
            const std::int64_t target_ctas = std::max<std::int64_t>(
                1, rows / _params.rowsPerCta);
            const std::int64_t weight =
                off[bounds[g + 1]] - off[bounds[g]];
            out[g] = balanceByWeight(
                off, bounds[g], bounds[g + 1],
                std::max<std::int64_t>(1, weight / target_ctas),
                4 * _params.rowsPerCta);
        }
        return out;
    };
    _userCtaBounds = cta_split(_userOffsets, _userBounds);
    _itemCtaBounds = cta_split(_itemOffsets, _itemBounds);

    _initialRmse = rmse();
}

std::pair<std::int64_t, std::int64_t>
AlsWorkload::ctaRows(bool user_side, int gpu, int cta) const
{
    const auto &bounds =
        user_side ? _userCtaBounds[gpu] : _itemCtaBounds[gpu];
    return {bounds[cta], bounds[cta + 1]};
}

std::int64_t
AlsWorkload::ratingsInRows(bool user_side, std::int64_t lo,
                           std::int64_t hi) const
{
    const auto &off = user_side ? _userOffsets : _itemOffsets;
    return off[hi] - off[lo];
}

void
AlsWorkload::updateUserCta(int gpu, int cta)
{
    const auto [lo, hi] = ctaRows(true, gpu, cta);
    const int k = _params.rank;
    const auto lr = static_cast<float>(_params.learningRate);
    const auto reg = static_cast<float>(_params.regularization);

    for (std::int64_t u = lo; u < hi; ++u) {
        float *xu = &_userFactors[u * k];
        for (std::int64_t r = _userOffsets[u]; r < _userOffsets[u + 1];
             ++r) {
            const float *yi = &_itemFactors[_userItems[r] * k];
            float err = _userRatings[r];
            for (int d = 0; d < k; ++d)
                err -= xu[d] * yi[d];
            for (int d = 0; d < k; ++d)
                xu[d] += lr * (err * yi[d] - reg * xu[d]);
        }
    }
}

void
AlsWorkload::updateItemCta(int gpu, int cta)
{
    const auto [lo, hi] = ctaRows(false, gpu, cta);
    const int k = _params.rank;
    const auto lr = static_cast<float>(_params.learningRate);
    const auto reg = static_cast<float>(_params.regularization);

    for (std::int64_t i = lo; i < hi; ++i) {
        float *yi = &_itemFactors[i * k];
        for (std::int64_t r = _itemOffsets[i]; r < _itemOffsets[i + 1];
             ++r) {
            const float *xu = &_userFactors[_itemUsers[r] * k];
            float err = _itemRatings[r];
            for (int d = 0; d < k; ++d)
                err -= xu[d] * yi[d];
            for (int d = 0; d < k; ++d)
                yi[d] += lr * (err * xu[d] - reg * yi[d]);
        }
    }
}

CtaWork
AlsWorkload::ctaFootprint(bool user_side, int gpu, int cta) const
{
    const auto [lo, hi] = ctaRows(user_side, gpu, cta);
    const auto ratings =
        static_cast<double>(ratingsInRows(user_side, lo, hi));
    const int k = _params.rank;

    CtaWork work;
    work.flops = ratings * 6.0 * k;
    // Both factor rows + rating + index per rating, row store once.
    work.localBytes = static_cast<std::uint64_t>(
        ratings * (8.0 * k + 8.0)
        + static_cast<double>(hi - lo) * 4.0 * k);
    return work;
}

Phase
AlsWorkload::buildPhase(int iter)
{
    const bool user_side = (iter % 2) == 0;
    const auto &bounds = user_side ? _userBounds : _itemBounds;
    const int k = _params.rank;

    Phase p;
    p.perGpu.resize(_numGpus);
    const auto &cta_bounds_all =
        user_side ? _userCtaBounds : _itemCtaBounds;

    for (int g = 0; g < _numGpus; ++g) {
        const std::int64_t rows = bounds[g + 1] - bounds[g];
        const int num_ctas = std::max(
            1, static_cast<int>(cta_bounds_all[g].size()) - 1);

        GpuPhaseWork &work = p.perGpu[g];
        work.kernel.name =
            user_side ? "als_update_users" : "als_update_items";
        work.kernel.numCtas = num_ctas;
        work.kernel.body = [this, g, user_side](
                               const CtaContext &ctx) {
            if (ctx.functional) {
                if (user_side)
                    updateUserCta(g, ctx.ctaId);
                else
                    updateItemCta(g, ctx.ctaId);
            }
            return ctaFootprint(user_side, g, ctx.ctaId);
        };
        work.bytesProduced =
            static_cast<std::uint64_t>(rows) * 4 * k;

        const std::vector<std::int64_t> *cta_bounds =
            &cta_bounds_all[g];
        const std::int64_t base = bounds[g];
        const std::uint64_t row_bytes = 4ULL * k;
        work.ctaRange = [cta_bounds, base, row_bytes](int cta) {
            const std::uint64_t lo =
                ((*cta_bounds)[cta] - base) * row_bytes;
            const std::uint64_t hi =
                ((*cta_bounds)[cta + 1] - base) * row_bytes;
            return ByteRange{lo, hi};
        };
    }
    return p;
}

double
AlsWorkload::rmse() const
{
    const int k = _params.rank;
    double se = 0.0;
    const std::int64_t nnz = _params.numRatings;
    for (std::int64_t u = 0; u < _params.numUsers; ++u) {
        for (std::int64_t r = _userOffsets[u]; r < _userOffsets[u + 1];
             ++r) {
            const float *xu = &_userFactors[u * k];
            const float *yi = &_itemFactors[_userItems[r] * k];
            double pred = 0.0;
            for (int d = 0; d < k; ++d)
                pred += xu[d] * yi[d];
            const double e = _userRatings[r] - pred;
            se += e * e;
        }
    }
    return std::sqrt(se / static_cast<double>(nnz));
}

bool
AlsWorkload::verify() const
{
    const double final_rmse = rmse();
    return std::isfinite(final_rmse) && final_rmse < _initialRmse;
}

} // namespace proact
