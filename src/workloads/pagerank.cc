#include "workloads/pagerank.hh"

#include "sim/logging.hh"

#include <algorithm>
#include <cmath>

namespace proact {

void
PagerankWorkload::setup(int num_gpus)
{
    if (num_gpus < 1)
        fatalError("PagerankWorkload: need at least one GPU");
    _numGpus = num_gpus;

    _graph = generateRmat(_params.graph);
    const std::int64_t n = _graph.numVertices;
    _rankOld.assign(n, 1.0 / static_cast<double>(n));
    _rankNew.assign(n, 0.0);
    _bounds = partitionByEdges(_graph, num_gpus);

    // Edge-balanced CTA assignment (hubs would otherwise serialize
    // whole kernels behind one monster CTA).
    _ctaBounds.resize(num_gpus);
    for (int g = 0; g < num_gpus; ++g) {
        const std::int64_t verts = _bounds[g + 1] - _bounds[g];
        const std::int64_t target_ctas = std::max<std::int64_t>(
            1, verts / _params.vertsPerCta);
        const std::int64_t edges =
            _graph.edgesInRange(_bounds[g], _bounds[g + 1]);
        _ctaBounds[g] = balanceByWeight(
            _graph.inOffsets, _bounds[g], _bounds[g + 1],
            std::max<std::int64_t>(1, edges / target_ctas),
            4 * _params.vertsPerCta);
    }
}

std::pair<std::int64_t, std::int64_t>
PagerankWorkload::ctaVerts(int gpu, int cta) const
{
    return {_ctaBounds[gpu][cta], _ctaBounds[gpu][cta + 1]};
}

void
PagerankWorkload::computeCta(int gpu, int cta)
{
    const auto [lo, hi] = ctaVerts(gpu, cta);
    const double base = (1.0 - _params.damping)
        / static_cast<double>(_graph.numVertices);
    for (std::int64_t v = lo; v < hi; ++v) {
        double acc = 0.0;
        for (std::int64_t e = _graph.inOffsets[v];
             e < _graph.inOffsets[v + 1]; ++e) {
            const std::int32_t u = _graph.inNeighbors[e];
            const std::int32_t deg = _graph.outDegree[u];
            if (deg > 0)
                acc += _rankOld[u] / static_cast<double>(deg);
        }
        _rankNew[v] = base + _params.damping * acc;
    }
}

CtaWork
PagerankWorkload::ctaFootprint(int gpu, int cta) const
{
    const auto [lo, hi] = ctaVerts(gpu, cta);
    const auto verts = static_cast<double>(hi - lo);
    const auto edges =
        static_cast<double>(_graph.edgesInRange(lo, hi));

    CtaWork work;
    work.flops = 2.0 * edges + 2.0 * verts;
    // Per edge: neighbor id (4B), rank_old gather (8B), outdeg (4B);
    // per vertex: offsets (8B) + rank_new store (8B).
    work.localBytes =
        static_cast<std::uint64_t>(edges * 16.0 + verts * 16.0);
    return work;
}

Phase
PagerankWorkload::buildPhase(int iter)
{
    Phase p;
    p.perGpu.resize(_numGpus);

    if (iter > 0)
        std::swap(_rankOld, _rankNew);

    for (int g = 0; g < _numGpus; ++g) {
        const std::int64_t verts = _bounds[g + 1] - _bounds[g];
        const int num_ctas =
            static_cast<int>(_ctaBounds[g].size()) - 1;

        GpuPhaseWork &work = p.perGpu[g];
        work.kernel.name = "pagerank_pull";
        work.kernel.numCtas = std::max(1, num_ctas);
        work.kernel.body = [this, g](const CtaContext &ctx) {
            if (ctx.functional)
                computeCta(g, ctx.ctaId);
            return ctaFootprint(g, ctx.ctaId);
        };
        work.bytesProduced = static_cast<std::uint64_t>(verts) * 8;

        const std::vector<std::int64_t> *cta_bounds = &_ctaBounds[g];
        const std::int64_t base = _bounds[g];
        work.ctaRange = [cta_bounds, base](int cta) {
            const std::uint64_t lo =
                ((*cta_bounds)[cta] - base) * 8;
            const std::uint64_t hi =
                ((*cta_bounds)[cta + 1] - base) * 8;
            return ByteRange{lo, hi};
        };
    }
    return p;
}

bool
PagerankWorkload::verify() const
{
    // Dangling vertices leak mass, so the sum lies in
    // ((1 - d), 1]; it must be finite, positive everywhere, and the
    // distribution must no longer be uniform after iterating.
    double sum = 0.0, max_rank = 0.0;
    for (const double r : _rankNew) {
        if (!std::isfinite(r) || r < 0.0)
            return false;
        sum += r;
        max_rank = std::max(max_rank, r);
    }
    const double uniform =
        1.0 / static_cast<double>(_graph.numVertices);
    return sum > 1.0 - _params.damping && sum <= 1.0 + 1e-9
        && max_rank > 2.0 * uniform;
}

} // namespace proact
