/**
 * @file
 * Workload contract shared by every communication paradigm.
 *
 * A workload runs as a sequence of bulk-synchronous iterations. In
 * each iteration every GPU executes one producer kernel that writes
 * its partition of a shared, replicated data structure (the paper's
 * PROACT-enabled region); the next iteration may only start on a GPU
 * once every peer partition has arrived. Kernels perform the actual
 * computation on host-backed arrays — results are numerically
 * verifiable and identical under every paradigm — while the declared
 * footprints (bytes produced, per-CTA write ranges, effective inline
 * store granularity) drive the timing models.
 *
 * The paper requires applications to issue a deterministic number of
 * stores (Sec. III-B); correspondingly, footprints here are static
 * functions of the iteration structure, never of the evolving data.
 */

#ifndef PROACT_WORKLOADS_WORKLOAD_HH
#define PROACT_WORKLOADS_WORKLOAD_HH

#include "gpu/kernel.hh"
#include "sim/types.hh"

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace proact {

/** Byte range [lo, hi) within a GPU's partition of the region. */
struct ByteRange
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    std::uint64_t size() const { return hi - lo; }
    bool empty() const { return hi <= lo; }
};

/**
 * Communication character of a workload, used by the inline-store
 * coalescing model and the UM driver.
 */
struct TrafficProfile
{
    /**
     * Effective per-write payload once the SM's write-coalescer has
     * done what it can: >=128 B for dense address-ordered producers
     * (Jacobi, X-ray CT), as low as 4-8 B for random update orders
     * (PageRank, SSSP, ALS). Drives paper Figs. 1(c)/2 behaviour.
     */
    std::uint32_t inlineStoreBytes = 256;

    /** Consumers touch remote data in address order (UM model). */
    bool sequentialAccess = true;
};

/**
 * One PROACT-enabled region a kernel produces (Listing 1's
 * u_proact_ds.region1, region2, ...).
 */
struct RegionOutput
{
    /** Bytes of this region the GPU produces this iteration. */
    std::uint64_t bytesProduced = 0;

    /**
     * Contiguous byte range of the GPU's partition written by each
     * CTA. Ranges of distinct CTAs may overlap chunk boundaries but
     * must tile [0, bytesProduced) exactly across all CTAs.
     */
    std::function<ByteRange(int cta)> ctaRange;
};

/** One GPU's work within one iteration. */
struct GpuPhaseWork
{
    /** Producer kernel (functional body + footprint reporting). */
    KernelDesc kernel;

    /** @{ @name Primary region (the common single-region case) */
    std::uint64_t bytesProduced = 0;
    std::function<ByteRange(int cta)> ctaRange;
    /** @} */

    /**
     * Additional PROACT-enabled regions the same kernel produces
     * (a kernel is "often both the producer of some data and a
     * consumer of other data", paper Sec. II-B). Each is tracked
     * with its own readiness counters and pushed independently.
     */
    std::vector<RegionOutput> extraOutputs;

    /** All region outputs, primary first (empty primaries skipped). */
    std::vector<RegionOutput>
    allOutputs() const
    {
        std::vector<RegionOutput> outputs;
        if (bytesProduced > 0)
            outputs.push_back(RegionOutput{bytesProduced, ctaRange});
        for (const auto &extra : extraOutputs) {
            if (extra.bytesProduced > 0)
                outputs.push_back(extra);
        }
        return outputs;
    }

    /** Bytes produced across every region. */
    std::uint64_t
    totalBytesProduced() const
    {
        std::uint64_t total = bytesProduced;
        for (const auto &extra : extraOutputs)
            total += extra.bytesProduced;
        return total;
    }
};

/** One bulk-synchronous iteration across the whole system. */
struct Phase
{
    std::vector<GpuPhaseWork> perGpu;
};

/**
 * Abstract multi-GPU workload.
 *
 * Lifecycle: setup(numGpus) once; then for iter in [0, numIterations)
 * the driver requests phase(iter) and executes it under some
 * paradigm; finally verify() checks numerical correctness.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Allocate and initialize data for a run on @p num_gpus GPUs. */
    virtual void setup(int num_gpus) = 0;

    /** Bulk-synchronous iterations in one run. */
    virtual int numIterations() const = 0;

    /**
     * Iteration @p iter's kernels and footprints, with the footprint
     * scale applied (see setFootprintScale()).
     */
    Phase phase(int iter);

    /** Communication character (constant per workload). */
    virtual TrafficProfile traffic() const = 0;

    /**
     * Numerical correctness check after a functional run.
     * @return true when the computed solution matches the reference.
     */
    virtual bool verify() const = 0;

    /** Number of GPUs the workload was set up for. */
    int numGpus() const { return _numGpus; }

    /**
     * Simulate an instance @p factor times larger than the functional
     * one: every declared footprint (flops, local bytes, produced
     * bytes, CTA write ranges) is multiplied by the factor while the
     * verifiable math runs at the original size. All timing
     * quantities are linear in the instance size, so this is exactly
     * equivalent to simulating the larger problem with
     * proportionally coarser CTAs. Benchmarks use it to reach the
     * paper's multi-second application scales without multi-second
     * host compute.
     */
    void setFootprintScale(std::uint64_t factor);
    std::uint64_t footprintScale() const { return _footprintScale; }

  protected:
    /** Build iteration @p iter at the functional (unscaled) size. */
    virtual Phase buildPhase(int iter) = 0;

    int _numGpus = 0;

  private:
    std::uint64_t _footprintScale = 1;
};

/**
 * Abstract execution paradigm (cudaMemcpy, UM, PROACT variants,
 * infinite-BW limit): runs a workload on a system and reports the
 * simulated makespan.
 */
class Runtime
{
  public:
    virtual ~Runtime() = default;

    /** Execute every iteration; returns total simulated ticks. */
    virtual Tick run(Workload &workload) = 0;

    virtual std::string name() const = 0;
};

} // namespace proact

#endif // PROACT_WORKLOADS_WORKLOAD_HH
