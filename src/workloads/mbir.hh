/**
 * @file
 * Model-Based Iterative Reconstruction for X-ray CT
 * (paper Sec. IV-C).
 *
 * A simplified stand-in for the GE Veo-class MBIR system the paper
 * studies (see DESIGN.md): we reconstruct an image x from
 * measurements y = A x_true, where A is a shift-invariant banded
 * projection operator (normalized Gaussian footprint), by Landweber
 * iteration x <- x + alpha * A^T (y - A x). The image is partitioned
 * contiguously across GPUs; each iteration every GPU produces its
 * image slice — dense, address-ordered writes with excellent
 * coalescing, which is why the paper's profiler selects
 * PROACT-inline for X-ray CT on Pascal/Volta.
 */

#ifndef PROACT_WORKLOADS_MBIR_HH
#define PROACT_WORKLOADS_MBIR_HH

#include "workloads/workload.hh"

#include <cstdint>
#include <vector>

namespace proact {

/** Banded-operator MBIR (Landweber) reconstruction. */
class MbirWorkload : public Workload
{
  public:
    struct Params
    {
        std::int64_t numPixels = 1 << 19;
        int halfBand = 32;      ///< Projection footprint per side.
        double stepSize = 0.5;  ///< Landweber alpha (A normalized).
        int iterations = 12;
        int pixelsPerCta = 256;
        std::uint64_t seed = 5150;
    };

    MbirWorkload() : MbirWorkload(Params{}) {}
    explicit MbirWorkload(Params params) : _params(params) {}

    std::string name() const override { return "X-ray CT"; }
    void setup(int num_gpus) override;
    int numIterations() const override { return _params.iterations; }
    Phase buildPhase(int iter) override;

    TrafficProfile
    traffic() const override
    {
        // Dense in increasing address order (paper Sec. V-B).
        return TrafficProfile{256, true};
    }

    bool verify() const override;

    /** ||A x - y|| relative to ||y|| for the current iterate. */
    double relativeResidual() const;

    /** Relative reconstruction error vs. the ground-truth image. */
    double reconstructionError() const;

  private:
    Params _params;

    std::vector<double> _weights; ///< Normalized projection kernel.
    std::vector<double> _truth;
    std::vector<double> _sino;    ///< Measurements y = A truth.
    std::vector<double> _xOld;
    std::vector<double> _xNew;
    std::vector<std::int64_t> _bounds;
    double _initialError = 0.0;

    int bandWidth() const { return 2 * _params.halfBand + 1; }

    double project(const std::vector<double> &img,
                   std::int64_t j) const;
    void computeCta(int gpu, int cta);
    CtaWork ctaFootprint(int gpu, int cta) const;
};

} // namespace proact

#endif // PROACT_WORKLOADS_MBIR_HH
