/**
 * @file
 * Jacobi solver for banded linear systems (paper Sec. IV-C).
 *
 * Solves Ax = b for a diagonally dominant banded matrix by Jacobi
 * iteration: x_new[i] = (b[i] - sum_{j != i} A[i][j] x_old[j]) /
 * A[i][i]. Rows are partitioned contiguously across GPUs; each
 * iteration every GPU produces its slice of x_new (the shared
 * PROACT region) which all peers need next iteration. Writes are
 * dense in increasing address order, so the inline variant coalesces
 * perfectly (the paper picks "I" for Jacobi on Kepler/Pascal).
 */

#ifndef PROACT_WORKLOADS_JACOBI_HH
#define PROACT_WORKLOADS_JACOBI_HH

#include "workloads/workload.hh"

#include <cstdint>
#include <vector>

namespace proact {

/** Banded-matrix Jacobi workload. */
class JacobiWorkload : public Workload
{
  public:
    struct Params
    {
        std::int64_t numUnknowns = 1 << 20;
        int halfBand = 24;      ///< Off-diagonals per side (FEM-like band).
        int iterations = 12;
        int rowsPerCta = 256;
        std::uint64_t seed = 11;
    };

    JacobiWorkload() : JacobiWorkload(Params{}) {}
    explicit JacobiWorkload(Params params) : _params(params) {}

    std::string name() const override { return "Jacobi"; }
    void setup(int num_gpus) override;
    int numIterations() const override { return _params.iterations; }
    Phase buildPhase(int iter) override;

    TrafficProfile
    traffic() const override
    {
        // Dense, address-ordered stores: excellent SM coalescing.
        return TrafficProfile{256, true};
    }

    bool verify() const override;

    /** Relative residual ||Ax - b|| / ||b|| of the current iterate. */
    double relativeResidual() const;

    const std::vector<double> &solution() const { return _xOld; }

  private:
    Params _params;

    /** Band coefficients, row-major: row i at [i * bandWidth()]. */
    std::vector<double> _band;
    std::vector<double> _rhs;
    std::vector<double> _xOld;
    std::vector<double> _xNew;
    double _initialResidual = 0.0;

    std::vector<std::int64_t> _bounds; ///< Row partition boundaries.

    int bandWidth() const { return 2 * _params.halfBand + 1; }

    double rowUpdate(std::int64_t row) const;
    void computeCta(int gpu, int cta);
    CtaWork ctaFootprint(int gpu, int cta) const;
};

} // namespace proact

#endif // PROACT_WORKLOADS_JACOBI_HH
