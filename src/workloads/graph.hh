/**
 * @file
 * Graph substrate for the irregular workloads (PageRank, SSSP, ALS).
 *
 * The paper evaluates on Wikipedia and HV15R (UF sparse collection);
 * neither ships with this repository, so we substitute a synthetic
 * R-MAT (Kronecker) generator, which reproduces the heavy-tailed
 * degree distribution and community structure that drive the
 * irregular access patterns (see DESIGN.md). Graphs are stored in
 * CSR over incoming edges (pull-style iteration) with deterministic
 * generation from a seed.
 */

#ifndef PROACT_WORKLOADS_GRAPH_HH
#define PROACT_WORKLOADS_GRAPH_HH

#include "sim/random.hh"

#include <cstdint>
#include <vector>

namespace proact {

/** Directed graph in incoming-edge CSR form. */
struct Graph
{
    std::int64_t numVertices = 0;

    /** CSR row offsets over incoming edges, size numVertices+1. */
    std::vector<std::int64_t> inOffsets;

    /** Source vertex of each incoming edge. */
    std::vector<std::int32_t> inNeighbors;

    /** Edge weights aligned with inNeighbors (for SSSP). */
    std::vector<float> inWeights;

    /** Out-degree per vertex (for PageRank normalization). */
    std::vector<std::int32_t> outDegree;

    std::int64_t numEdges() const
    {
        return static_cast<std::int64_t>(inNeighbors.size());
    }

    std::int64_t
    inDegree(std::int64_t v) const
    {
        return inOffsets[v + 1] - inOffsets[v];
    }

    /** Incoming edges of the vertex range [lo, hi). */
    std::int64_t
    edgesInRange(std::int64_t lo, std::int64_t hi) const
    {
        return inOffsets[hi] - inOffsets[lo];
    }
};

/** R-MAT generator parameters. */
struct RmatParams
{
    std::int64_t numVertices = 1 << 18;
    std::int64_t numEdges = 1 << 21;

    /** Kronecker quadrant probabilities (a+b+c+d == 1). */
    double a = 0.57, b = 0.19, c = 0.19;

    std::uint64_t seed = 42;

    /** Max edge weight (weights uniform in [1, maxWeight]). */
    std::int32_t maxWeight = 16;

    /**
     * Relabel vertices by a random permutation. Kronecker generation
     * clusters hubs at low ids; shuffling spreads them so contiguous
     * range partitions are balanced in both edges and vertices (the
     * standard hash-partitioning practice real frameworks use).
     */
    bool shuffleVertices = true;
};

/**
 * Generate a deterministic R-MAT graph in incoming-edge CSR form.
 * Self-loops are permitted; multi-edges are kept (they only skew
 * weights slightly and keep generation O(E)).
 */
Graph generateRmat(const RmatParams &params);

/**
 * Uniform-degree ring-like graph (each vertex receives edges from
 * its @p degree predecessors). Deterministic; used by tests needing
 * hand-checkable structure.
 */
Graph generateRing(std::int64_t num_vertices, int degree);

/**
 * Partition [0, numVertices) into contiguous ranges with roughly
 * equal incoming-edge counts (load balance across GPUs).
 * @return num_parts+1 boundaries, first 0 and last numVertices.
 */
std::vector<std::int64_t>
partitionByEdges(const Graph &graph, int num_parts);

/**
 * Split rows [lo, hi) into CTA ranges balanced by the weight implied
 * by a CSR offsets array (edges, ratings, ...): a new CTA starts once
 * the running weight reaches @p target_weight or the range reaches
 * @p max_rows rows. This is the standard GPU practice of
 * edge-balanced thread-block assignment; without it, scale-free hubs
 * produce monster CTAs that serialize the kernel.
 *
 * @return CTA boundaries within [lo, hi], first lo and last hi.
 */
std::vector<std::int64_t>
balanceByWeight(const std::vector<std::int64_t> &offsets,
                std::int64_t lo, std::int64_t hi,
                std::int64_t target_weight, std::int64_t max_rows);

} // namespace proact

#endif // PROACT_WORKLOADS_GRAPH_HH
