/**
 * @file
 * PageRank workload (paper Sec. IV-C).
 *
 * Pull-style PageRank over a scale-free R-MAT graph (substituting
 * the paper's Wikipedia dump, see DESIGN.md): rank_new[v] =
 * (1-d)/N + d * sum_{u in in(v)} rank_old[u] / outdeg[u]. Vertices
 * are partitioned into contiguous ranges of roughly equal in-edge
 * counts; each iteration every GPU produces its slice of the rank
 * vector, which every peer reads next iteration. The heavy-tailed
 * in-neighbor accesses give the sporadic fine-grained update order
 * that makes inline P2P stores coalesce poorly and UM fault-thrash
 * (paper Secs. V-B and IV-B).
 */

#ifndef PROACT_WORKLOADS_PAGERANK_HH
#define PROACT_WORKLOADS_PAGERANK_HH

#include "workloads/graph.hh"
#include "workloads/workload.hh"

#include <cstdint>
#include <vector>

namespace proact {

/** Pull-based PageRank over R-MAT. */
class PagerankWorkload : public Workload
{
  public:
    struct Params
    {
        RmatParams graph{1 << 19, 1 << 24, 0.57, 0.19, 0.19, 42, 16};
        double damping = 0.85;
        int iterations = 10;
        int vertsPerCta = 256;
    };

    PagerankWorkload() : PagerankWorkload(Params{}) {}
    explicit PagerankWorkload(Params params) : _params(params) {}

    std::string name() const override { return "Pagerank"; }
    void setup(int num_gpus) override;
    int numIterations() const override { return _params.iterations; }
    Phase buildPhase(int iter) override;

    TrafficProfile
    traffic() const override
    {
        // Random update order: SM write coalescing largely fails and
        // remote stores hit the wire at element granularity.
        return TrafficProfile{8, false};
    }

    bool verify() const override;

    const std::vector<double> &ranks() const { return _rankNew; }
    const Graph &graph() const { return _graph; }

  private:
    Params _params;
    Graph _graph;
    std::vector<double> _rankOld;
    std::vector<double> _rankNew;
    std::vector<std::int64_t> _bounds;

    /** Edge-balanced CTA boundaries per GPU (within its range). */
    std::vector<std::vector<std::int64_t>> _ctaBounds;

    void computeCta(int gpu, int cta);
    CtaWork ctaFootprint(int gpu, int cta) const;
    std::pair<std::int64_t, std::int64_t> ctaVerts(int gpu,
                                                   int cta) const;
};

} // namespace proact

#endif // PROACT_WORKLOADS_PAGERANK_HH
