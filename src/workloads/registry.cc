#include "workloads/registry.hh"

#include "sim/logging.hh"
#include "workloads/als.hh"
#include "workloads/jacobi.hh"
#include "workloads/mbir.hh"
#include "workloads/pagerank.hh"
#include "workloads/sssp.hh"

#include <algorithm>
#include <cstdlib>

namespace proact {

std::vector<std::string>
standardWorkloadNames()
{
    return {"X-ray CT", "Jacobi", "Pagerank", "SSSP", "ALS"};
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, int scale_shift)
{
    const int s = std::clamp(scale_shift, 0, 8);

    if (name == "X-ray CT") {
        MbirWorkload::Params p;
        p.numPixels >>= s;
        return std::make_unique<MbirWorkload>(p);
    }
    if (name == "Jacobi") {
        JacobiWorkload::Params p;
        p.numUnknowns >>= s;
        return std::make_unique<JacobiWorkload>(p);
    }
    if (name == "Pagerank") {
        PagerankWorkload::Params p;
        p.graph.numVertices >>= s;
        p.graph.numEdges >>= s;
        return std::make_unique<PagerankWorkload>(p);
    }
    if (name == "SSSP") {
        SsspWorkload::Params p;
        p.graph.numVertices >>= s;
        p.graph.numEdges >>= s;
        return std::make_unique<SsspWorkload>(p);
    }
    if (name == "ALS") {
        AlsWorkload::Params p;
        p.numUsers >>= s;
        p.numItems >>= s;
        p.numRatings >>= s;
        return std::make_unique<AlsWorkload>(p);
    }
    fatalError("makeWorkload: unknown workload '", name, "'");
}

int
envScaleShift()
{
    const char *env = std::getenv("PROACT_SCALE_SHIFT");
    if (env == nullptr)
        return 0;
    const int v = std::atoi(env);
    return std::clamp(v, 0, 8);
}

} // namespace proact
