/**
 * @file
 * Single-Source Shortest Path workload (paper Sec. IV-C).
 *
 * Synchronous Bellman-Ford over a weighted R-MAT graph (substituting
 * the paper's HV15R matrix, see DESIGN.md): each iteration every
 * vertex recomputes dist_new[v] = min(dist_old[v], min over incoming
 * edges (u,v) of dist_old[u] + w(u,v)). Iterating V-1 times yields
 * exact shortest paths; the evaluated runs use a fixed iteration
 * budget, matching the paper's deterministic-store requirement
 * (every vertex writes every iteration). Verified against a serial
 * reference limited to the same hop count.
 */

#ifndef PROACT_WORKLOADS_SSSP_HH
#define PROACT_WORKLOADS_SSSP_HH

#include "workloads/graph.hh"
#include "workloads/workload.hh"

#include <cstdint>
#include <vector>

namespace proact {

/** Synchronous Bellman-Ford SSSP. */
class SsspWorkload : public Workload
{
  public:
    struct Params
    {
        RmatParams graph{1 << 19, 1 << 24, 0.57, 0.19, 0.19, 97, 16};
        std::int64_t source = 0;
        int iterations = 10;
        int vertsPerCta = 256;
    };

    SsspWorkload() : SsspWorkload(Params{}) {}
    explicit SsspWorkload(Params params) : _params(params) {}

    std::string name() const override { return "SSSP"; }
    void setup(int num_gpus) override;
    int numIterations() const override { return _params.iterations; }
    Phase buildPhase(int iter) override;

    TrafficProfile
    traffic() const override
    {
        // Distance updates land in data-dependent order.
        return TrafficProfile{8, false};
    }

    bool verify() const override;

    const std::vector<double> &distances() const { return _distNew; }

    /** Serial Bellman-Ford limited to @p hops relaxation rounds. */
    std::vector<double> referenceDistances(int hops) const;

  private:
    Params _params;
    Graph _graph;
    std::vector<double> _distOld;
    std::vector<double> _distNew;
    std::vector<std::int64_t> _bounds;

    /** Edge-balanced CTA boundaries per GPU (within its range). */
    std::vector<std::vector<std::int64_t>> _ctaBounds;

    void computeCta(int gpu, int cta);
    CtaWork ctaFootprint(int gpu, int cta) const;
    std::pair<std::int64_t, std::int64_t> ctaVerts(int gpu,
                                                   int cta) const;
};

} // namespace proact

#endif // PROACT_WORKLOADS_SSSP_HH
